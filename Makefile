# extremenc — build/test/reproduce targets. Everything is stdlib Go.

GO ?= go

.PHONY: all build vet test race bench bench-host figures examples clean

all: build vet test

build:
	$(GO) build ./...

# Static checks plus a race pass over the codec packages the host-kernel
# ladder touches (the worker pool and the gf256 kernels).
vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/rlnc/ ./internal/gf256/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rlnc/ ./internal/netio/ ./internal/core/ ./internal/stream/ .

# Regenerate every paper table and figure as aligned text tables.
figures:
	$(GO) run ./cmd/ncbench -fig all

# Regenerate the figures as CSV (for plotting).
figures-csv:
	$(GO) run ./cmd/ncbench -fig all -format csv

# Full benchmark suite: one testing.B benchmark per paper table/figure plus
# the host-codec microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Host-codec optimization-ladder benchmarks, captured as a committed JSON
# artifact (kernel rungs + batch-vs-single encode at n=128, k=4096).
bench-host:
	$(GO) test -run '^$$' -bench 'BenchmarkMulAddLadder|BenchmarkEncodeBatch' \
		-benchtime 100x -count 1 ./internal/gf256/ ./internal/rlnc/ \
		| $(GO) run ./cmd/benchjson > BENCH_host.json
	@cat BENCH_host.json

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gpusim
	$(GO) run ./examples/streaming
	$(GO) run ./examples/p2p
	$(GO) run ./examples/multisegment
	$(GO) run ./examples/filetransfer

# The captured artifacts referenced by EXPERIMENTS.md.
test_output.txt:
	$(GO) test -count=1 ./... 2>&1 | tee $@

bench_output.txt:
	$(GO) test -bench=. -benchmem -count=1 ./... 2>&1 | tee $@

clean:
	rm -f test_output.txt bench_output.txt
