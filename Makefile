# extremenc — build/test/reproduce targets. Everything is stdlib Go.

GO ?= go

# Packages covered by the race detector: the codec hot paths (worker pool,
# gf256 kernels, decode pipelines) plus everything that moves blocks across
# goroutines. One list, shared by `vet`'s quick pass and the `race` target,
# and mirrored by the CI workflow.
RACE_PKGS = ./internal/gf256/ ./internal/rlnc/ ./internal/netio/ ./internal/core/ ./internal/stream/ ./internal/obs/ ./internal/obs/trace/ .

.PHONY: all build fmt-check vet test race fuzz-regress chaos staticcheck serve-smoke metrics-smoke xor-smoke mesh-smoke load-smoke drain-chaos soak-smoke trace-smoke loadtest bench bench-host bench-smoke bench-check ci figures figures-csv examples clean

all: build vet test

build:
	$(GO) build ./...

# Fail when any tracked Go file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static checks. The race pass lives in the `race` target (over RACE_PKGS)
# so `ci` runs it exactly once.
vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# Replay the committed fuzz seed corpora as regression tests (no fuzzing
# time budget — just every F.Add case plus any checked-in corpus files).
fuzz-regress:
	$(GO) test -run 'Fuzz' -count=1 ./internal/gf256/ ./internal/rlnc/ ./internal/netio/

# Chaos acceptance gate: a full fetch through the deterministic
# fault-injection link (corruption, stalls, repeated resets) must complete
# byte-identical under the race detector without losing decoder rank.
chaos:
	$(GO) test -race -run 'TestChaos' -count=1 -v ./internal/netio/

# Deep static analysis. Skips gracefully when the staticcheck binary is not
# installed (we never install dependencies from a build target); CI installs
# the pinned version explicitly and runs this same target.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

# End-to-end serving gate: boot the session server against a loopback
# listener, fetch with concurrent clients, and check payloads and metrics
# accounting.
serve-smoke:
	$(GO) run ./cmd/ncserve smoke -clients 4

# Observability end-to-end gate: serve with the metrics endpoint on, fetch
# over loopback with a registry-attached client, scrape /metrics over HTTP,
# and validate the exposition with the in-repo parser — core series nonzero,
# stage histograms populated, /metrics.json and /debug/pprof/ routed.
metrics-smoke:
	$(GO) run ./cmd/ncserve metrics-smoke

# Systematic + XOR fast-path end-to-end gate: a systematic-mode server and a
# client fetch over loopback (clean, then through a lossy faultnet link), with
# the run rejected unless the rlnc.xor_absorb stage histogram recorded spans —
# the observable proof that the GF(2) XOR-only decode path actually engaged.
xor-smoke:
	$(GO) run ./cmd/ncserve xor-smoke

# Relay-mesh end-to-end gate, entirely under the race detector: origin →
# recoding relays → leaves over loopback TCP with faultnet chaos between the
# tiers, two of three relays killed mid-transfer, every leaf byte-identical
# with monotone per-segment rank, remediation counters nonzero in a scraped
# exposition, and the relay tier beating a capped origin on aggregate
# throughput. The whole package runs here (control-plane unit tests
# included), so ./internal/mesh/ needs no separate RACE_PKGS entry.
mesh-smoke:
	$(GO) test -race -count=1 -v -run 'TestMeshSmoke' ./internal/mesh/
	$(GO) test -race -count=1 -skip 'TestMeshSmoke|TestMeshRollingRestart' ./internal/mesh/

# Graceful-degradation drain gate, under the race detector: rolling relay
# restarts while leaves fetch through faultnet chaos. Each drained relay must
# REDIRECT its connected leaves to a survivor (rank carried over, redirects
# observed in leaf fetch stats), rejoin the rotation at a fresh address, and
# finish with zero failed leaves, byte-identical payloads, zero rank
# regressions, and exact offered == sent + shed ledgers for drained AND
# surviving relays in one scraped exposition.
drain-chaos:
	$(GO) test -race -count=1 -v -run 'TestMeshRollingRestart' ./internal/mesh/

# Randomized chaos soak, CI slice: a fixed-seed schedule of leaf waves,
# drain-restarts, kills, and slow-client brownout pressure against a
# chaos-wrapped mesh. ncsoak exits non-zero unless every transfer is
# byte-identical, rank never regresses, every relay ledger balances exactly,
# the brownout ladder engaged and stepped back down, and no goroutine
# outlives teardown.
soak-smoke:
	$(GO) run -race ./cmd/ncsoak -smoke -summary soak-summary.json

# Serving-capacity CI gate: one scaled-down 1k-session saturation wave under
# the race detector. ncload exits non-zero unless the ramp completes, every
# canary fetch is byte-identical, the windowed p99 record latency stays under
# its bound, and offered == sent + shed holds exactly in a scraped
# Prometheus exposition.
load-smoke:
	$(GO) run -race ./cmd/ncload -smoke -summary load-summary.json

# Distributed-tracing end-to-end gate, under the race detector: a traced
# chaos mesh run (origin → relays → leaves with faultnet corruption/resets
# and a brownout stall wave), then nctrace reassembles the flight-recorder
# dump into per-generation latency breakdowns. The run fails unless every
# span parents cleanly (zero orphans), the encode/absorb/recode stages all
# appear, at least one histogram exemplar links back to a recorded trace,
# the flight ring holds brownout + admission + reconnect events, the
# disabled-tracing path allocates nothing, and the encode-batch ratio stays
# within tolerance of the committed BENCH_host.json. On failure the raw
# flight dump lands in flight-trace.json for CI to upload.
trace-smoke:
	$(GO) run -race ./cmd/nctrace -smoke

# Full serving-capacity ladder, committed as BENCH_serve.json: ramped waves
# to 5120 concurrent sessions measuring the per-record single-pump baseline
# against the amortized fan-out at 1/2/4 pump shards (plus one
# systematic-wire wave at peak), with aggregate MB/s and windowed p50/p99
# record latency per wave. Takes tens of minutes at full depth.
loadtest:
	$(GO) run ./cmd/ncload -sessions 5120 -steps 3 -shards 1,2,4 \
		-window 3s -settle 1s -canaries 4 \
		| $(GO) run ./cmd/benchjson > BENCH_serve.json
	@cat BENCH_serve.json

# Regenerate every paper table and figure as aligned text tables.
figures:
	$(GO) run ./cmd/ncbench -fig all

# Regenerate the figures as CSV (for plotting).
figures-csv:
	$(GO) run ./cmd/ncbench -fig all -format csv

# Full benchmark suite: one testing.B benchmark per paper table/figure plus
# the host-codec microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Host-codec optimization-ladder benchmarks, captured as a committed JSON
# artifact: kernel rungs, batch-vs-single encode, and the decode ladder
# (progressive scalar / batched absorb / two-stage), all at n=128, k=4096.
# The kernel rungs are microsecond-scale, so they get a high iteration count
# for stable timings; the macro encode/decode benches are tens of
# milliseconds per op and keep a modest one.
bench-host:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMulAddLadder|BenchmarkXorLadder' \
		-benchtime 3000x -count 1 ./internal/gf256/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEncodeBatch|BenchmarkDecodeLadder' \
		-benchtime 100x -count 1 ./internal/rlnc/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkXorLadder' \
		-benchtime 200x -count 1 ./internal/rlnc/ ; } \
		| $(GO) run ./cmd/benchjson > BENCH_host.json
	@cat BENCH_host.json

# One-iteration pass over the ladder benchmarks, piped through benchjson: a
# cheap CI check that every rung still runs and parses. The parsed artifact
# is kept (untracked) so CI can upload it.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkMulAddLadder|BenchmarkXorLadder|BenchmarkEncodeBatch|BenchmarkDecodeLadder' \
		-benchtime 1x -count 1 ./internal/gf256/ ./internal/rlnc/ \
		| $(GO) run ./cmd/benchjson > BENCH_smoke.json
	@cat BENCH_smoke.json

# Re-run the ladder benchmarks at moderate iteration counts and gate the
# derived speedup ratios against the committed BENCH_host.json: every
# relative key (`_x` multiple, `_pct` percentage) must stay within tolerance
# of its committed value. Absolute MB/s numbers are machine-specific and are
# never gated; the 50% default tolerance absorbs runner-to-runner noise
# while still catching an optimization rung that actually regressed. The
# second stage re-runs a reduced serving ladder and gates its
# sharded-over-single multiple against BENCH_serve.json with a wider 70%
# tolerance: the committed ratio derives at the full ladder's 5120-session
# depth where the single per-record pump collapses (~5.9x), while the CI
# recheck stops at 2048 sessions where sharding's edge is structurally
# smaller (~2.2-2.4x) — the extra slack covers that depth mismatch, and a
# real fan-out regression (amortization broken, ratio near 1x) still lands
# well below the floor.
bench-check:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMulAddLadder|BenchmarkXorLadder' \
		-benchtime 1000x -count 1 ./internal/gf256/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkEncodeBatch|BenchmarkDecodeLadder' \
		-benchtime 30x -count 1 ./internal/rlnc/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkXorLadder' \
		-benchtime 50x -count 1 ./internal/rlnc/ ; } \
		| $(GO) run ./cmd/benchjson -check BENCH_host.json
	$(GO) run ./cmd/ncload -sessions 2048 -steps 1 -shards 4 \
		-window 2s -settle 500ms -canaries 2 -systematic=false \
		| $(GO) run ./cmd/benchjson -check BENCH_serve.json -tolerance 0.7

# Everything the CI workflow runs, reproducible locally with one command.
ci: build fmt-check vet staticcheck test race fuzz-regress chaos bench-smoke serve-smoke metrics-smoke xor-smoke mesh-smoke load-smoke drain-chaos soak-smoke trace-smoke

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gpusim
	$(GO) run ./examples/streaming
	$(GO) run ./examples/p2p
	$(GO) run ./examples/multisegment
	$(GO) run ./examples/filetransfer

# The captured artifacts referenced by EXPERIMENTS.md.
test_output.txt:
	$(GO) test -count=1 ./... 2>&1 | tee $@

bench_output.txt:
	$(GO) test -bench=. -benchmem -count=1 ./... 2>&1 | tee $@

clean:
	rm -f test_output.txt bench_output.txt BENCH_smoke.json \
		soak-summary.json load-summary.json flight-trace.json flight-soak.json flight-mesh.json
