# extremenc — build/test/reproduce targets. Everything is stdlib Go.

GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rlnc/ ./internal/netio/ ./internal/core/ ./internal/stream/ .

# Regenerate every paper table and figure as aligned text tables.
figures:
	$(GO) run ./cmd/ncbench -fig all

# Regenerate the figures as CSV (for plotting).
figures-csv:
	$(GO) run ./cmd/ncbench -fig all -format csv

# Full benchmark suite: one testing.B benchmark per paper table/figure plus
# the host-codec microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gpusim
	$(GO) run ./examples/streaming
	$(GO) run ./examples/p2p
	$(GO) run ./examples/multisegment
	$(GO) run ./examples/filetransfer

# The captured artifacts referenced by EXPERIMENTS.md.
test_output.txt:
	$(GO) test -count=1 ./... 2>&1 | tee $@

bench_output.txt:
	$(GO) test -bench=. -benchmem -count=1 ./... 2>&1 | tee $@

clean:
	rm -f test_output.txt bench_output.txt
