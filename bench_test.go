package extremenc_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its figure with the
// experiment harness, prints the series once (the same rows the paper
// plots), and reports the headline value as a custom metric in the paper's
// units (simulated MB/s on the reconstructed testbeds — see EXPERIMENTS.md
// for paper-vs-measured). Host-codec microbenchmarks (real wall-clock on
// this machine) live beside their packages: internal/gf256, internal/rlnc,
// internal/matrix.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"extremenc/internal/experiments"
)

// renderOnce prints each figure a single time regardless of b.N reruns.
var renderOnce sync.Map

func runFigure(b *testing.B, run experiments.Runner, headlineSeries, headlineKey string) {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, err := run()
		if err != nil {
			b.Fatal(err)
		}
		fig = f
	}
	if _, done := renderOnce.LoadOrStore(fig.ID, true); !done {
		if err := fig.Render(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
	if headlineSeries != "" && headlineKey != "" {
		v, err := fig.MustValue(headlineSeries, headlineKey)
		if err != nil {
			b.Fatal(err)
		}
		unit := fmt.Sprintf("%s@%s,%s", fig.Unit, headlineSeries, headlineKey)
		b.ReportMetric(v, strings.ReplaceAll(unit, " ", "_"))
	}
}

// BenchmarkFig4aEncodeLoopGPU regenerates Fig. 4(a): loop-based encoding on
// GTX 280 vs 8800 GT. Paper headline: 133 MB/s at n=128.
func BenchmarkFig4aEncodeLoopGPU(b *testing.B) {
	runFigure(b, experiments.Fig4aEncodeLoopBased, "GTX280 n=128", "4096")
}

// BenchmarkFig4bDecodeSingleSegment regenerates Fig. 4(b): single-segment
// decoding, GPU vs CPU, with the ≈8 KB crossover.
func BenchmarkFig4bDecodeSingleSegment(b *testing.B) {
	runFigure(b, experiments.Fig4bDecodeSingleSegment, "GTX280 n=128", "32768")
}

// BenchmarkFig6TableVsLoop regenerates Fig. 6: TB-1 vs loop-based (≥ +30%).
func BenchmarkFig6TableVsLoop(b *testing.B) {
	runFigure(b, experiments.Fig6TableVsLoop, "TB n=128", "4096")
}

// BenchmarkFig7Ladder regenerates Fig. 7: the scheme ladder at n=128.
// Paper headline: TB-5 at 294 MB/s, 2.2× loop-based.
func BenchmarkFig7Ladder(b *testing.B) {
	runFigure(b, experiments.Fig7OptimizationLadder, "GTX280 n=128", "table-based-5")
}

// BenchmarkFig8BestEncode regenerates Fig. 8: TB-5 across n up to 1024.
func BenchmarkFig8BestEncode(b *testing.B) {
	runFigure(b, experiments.Fig8BestEncode, "n=1024", "4096")
}

// BenchmarkFig9MultiSegment regenerates Fig. 9: multi-segment decoding.
// Paper headline: 254 MB/s at n=128, 2.7–27.6× over single-segment.
func BenchmarkFig9MultiSegment(b *testing.B) {
	runFigure(b, experiments.Fig9MultiSegmentDecode, "GTX280-30seg n=128", "32768")
}

// BenchmarkFig10CPUFullBlock regenerates Fig. 10: full-block vs
// partitioned-block CPU encoding.
func BenchmarkFig10CPUFullBlock(b *testing.B) {
	runFigure(b, experiments.Fig10CPUFullBlock, "FB n=128", "128")
}

// BenchmarkCPUTableBased regenerates the Sec. 5.1.3 CPU table-based
// regression (up to −43%).
func BenchmarkCPUTableBased(b *testing.B) {
	runFigure(b, experiments.MiscCPUTableBased, "table-based", "32768")
}

// BenchmarkVoDMultiSegmentEncode regenerates the Sec. 5.1.3 VoD experiment
// (−0.6% across 30 source segments).
func BenchmarkVoDMultiSegmentEncode(b *testing.B) {
	runFigure(b, experiments.MiscVoDMultiSegmentEncode, "GTX280", "vod-30-segments")
}

// BenchmarkDecodeAtomicMin regenerates Sec. 5.4.2 (≈0.6% decode gain).
func BenchmarkDecodeAtomicMin(b *testing.B) {
	runFigure(b, experiments.MiscAtomicMin, "gain", "4096")
}

// BenchmarkDecodeCoeffCache regenerates Sec. 5.4.3 (0.5–3.4% decode gain).
func BenchmarkDecodeCoeffCache(b *testing.B) {
	runFigure(b, experiments.MiscCoefficientCache, "gain", "128")
}

// BenchmarkCombinedEngine regenerates Sec. 5.4.1: GPU+CPU ≈ sum of rates,
// GPU ≈ 4.3× CPU.
func BenchmarkCombinedEngine(b *testing.B) {
	runFigure(b, experiments.MiscCombinedEngine, "rate", "combined")
}

// BenchmarkEncodeDummyInput regenerates the dummy-input memory-hiding check
// (≈0.5%).
func BenchmarkEncodeDummyInput(b *testing.B) {
	runFigure(b, experiments.MiscDummyInput, "gain", "4096")
}

// BenchmarkStreamServer regenerates the Sec. 5.1 streaming capacity table
// (1385 / 1844 / >3000 peers).
func BenchmarkStreamServer(b *testing.B) {
	runFigure(b, experiments.MiscStreamingCapacity, "peers-by-compute", "table-based-5")
}

// BenchmarkP2PDistribution runs the Avalanche-style comparison on the
// discrete-event network.
func BenchmarkP2PDistribution(b *testing.B) {
	runFigure(b, experiments.MiscP2PDistribution, "overhead-x", "rlnc")
}

// BenchmarkSparseDensity runs the sparsity ablation (Sec. 4.3: dense
// matrices are the worst case).
func BenchmarkSparseDensity(b *testing.B) {
	runFigure(b, experiments.MiscSparseDensity, "TB-5", "5")
}

// BenchmarkPlayback models the viewer experience (startup delay, stalls) as
// peers scale against the Sec. 5.1.2 buffering analysis.
func BenchmarkPlayback(b *testing.B) {
	runFigure(b, experiments.MiscPlayback, "startup-s", "")
}
