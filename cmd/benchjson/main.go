// Command benchjson converts `go test -bench` text output (stdin) into a
// stable JSON document (stdout), so benchmark runs can be committed and
// diffed as machine-readable artifacts. It also derives the headline
// host-codec ratios — most importantly the tiled batch encoder's speedup
// over the single-block path — when the relevant benchmarks are present,
// and the serving-capacity headline (sharded-pump aggregate throughput over
// the single-pump baseline) from ncload's BenchmarkServeLoad ladder.
//
// With -check it additionally compares the fresh run's derived ratios
// against a committed artifact and exits non-zero when a gate regressed.
// Only relative keys (speedup multiples `_x` and percentages `_pct`) are
// gated: absolute MB/s numbers are machine-specific, ratios travel.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkMulAddLadder|BenchmarkEncodeBatch|BenchmarkDecodeLadder' \
//	    -benchtime 100x ./internal/gf256/ ./internal/rlnc/ | go run ./cmd/benchjson
//	... | go run ./cmd/benchjson -check BENCH_host.json -tolerance 0.5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Extra holds every value/unit pair
// beyond the standard ns/op and MB/s columns, keyed by unit — the serving
// ladder reports per-wave record latencies this way (`p50-ns`, `p99-ns`,
// `shed-pct`).
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	MBPerS  float64            `json:"mb_per_s,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Packages   []string           `json:"packages,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	checkPath := fs.String("check", "", "committed artifact to gate the fresh run's derived ratios against")
	tolerance := fs.Float64("tolerance", 0.5, "allowed fractional slack below a committed ratio before -check fails")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := parse(bufio.NewScanner(stdin))
	if err != nil {
		return err
	}
	derive(doc)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}

	if *checkPath == "" {
		return nil
	}
	raw, err := os.ReadFile(*checkPath)
	if err != nil {
		return err
	}
	var committed Document
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("%s: %w", *checkPath, err)
	}
	failures := check(doc, &committed, *tolerance)
	if len(failures) > 0 {
		return fmt.Errorf("derived-ratio gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Packages = append(doc.Packages, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// parseLine handles the standard result shape:
//
//	BenchmarkName-8   123   4567 ns/op   89.01 MB/s  [extra columns ignored]
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Runs: runs, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "MB/s":
			b.MBPerS = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	return b, true
}

// derive records the headline ratios the docs and acceptance criteria cite.
// Each entry is a percentage speedup of the second benchmark over the first,
// computed from ns/op.
func derive(doc *Document) {
	byName := map[string]Benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	ratios := [][3]string{
		{"encode_batch_over_single_ref_pct", "BenchmarkEncodeBatch/single-ref", "BenchmarkEncodeBatch/batch"},
		{"encode_pool_full_block_over_single_ref_pct", "BenchmarkEncodeBatch/single-ref", "BenchmarkEncodeBatch/pool-full-block"},
		{"table_wide_over_scalar_k4096_pct", "BenchmarkMulAddLadder/table-scalar/k=4096", "BenchmarkMulAddLadder/table-wide/k=4096"},
		{"fused4x2_over_scalar_k4096_pct", "BenchmarkMulAddLadder/table-scalar/k=4096", "BenchmarkMulAddLadder/fused4x2/k=4096"},
		{"decode_batched_over_progressive_pct", "BenchmarkDecodeLadder/progressive-scalar", "BenchmarkDecodeLadder/progressive-batched/b=8"},
		{"decode_two_stage_over_progressive_pct", "BenchmarkDecodeLadder/progressive-scalar", "BenchmarkDecodeLadder/two-stage"},
	}
	set := func(key string, v float64) {
		if doc.Derived == nil {
			doc.Derived = map[string]float64{}
		}
		doc.Derived[key] = v
	}
	for _, r := range ratios {
		base, okB := byName[r[1]]
		next, okN := byName[r[2]]
		if !okB || !okN || next.NsPerOp == 0 {
			continue
		}
		var pct float64
		if base.MBPerS > 0 && next.MBPerS > 0 {
			// Throughput-based where available: fused rungs process more
			// bytes per op, so ns/op alone would mislead.
			pct = (next.MBPerS/base.MBPerS - 1) * 100
		} else {
			pct = (base.NsPerOp/next.NsPerOp - 1) * 100
		}
		set(r[0], pct)
	}

	// XOR fast-path headlines. The systematic-mode acceptance bar is a
	// multiple, not a percentage: the GF(2) repair-encode rung must run at
	// ≥ 3× the fused GF(2^8) rung at the same k.
	if base, ok := byName["BenchmarkMulAddLadder/fused4x2/k=4096"]; ok && base.MBPerS > 0 {
		if xor, ok := byName["BenchmarkXorLadder/xor-repair-encode/k=4096"]; ok && xor.MBPerS > 0 {
			set("xor_repair_encode_over_fused4x2_k4096_x", xor.MBPerS/base.MBPerS)
		}
	}
	// Blended systematic+XOR session recovery rates at simulated loss,
	// surfaced as headline numbers beside the ratio they contextualize.
	for key, name := range map[string]string{
		"xor_blended_loss_0_1pct_mb_s": "BenchmarkXorLadder/blended/loss=0.1pct",
		"xor_blended_loss_1pct_mb_s":   "BenchmarkXorLadder/blended/loss=1pct",
		"xor_blended_loss_5pct_mb_s":   "BenchmarkXorLadder/blended/loss=5pct",
	} {
		if b, ok := byName[name]; ok && b.MBPerS > 0 {
			set(key, b.MBPerS)
		}
	}

	deriveServe(doc, set, byName)
}

// deriveServe records the serving-capacity headline from ncload's ladder:
// at the deepest session count measured by both rungs, the sharded amortized
// server's aggregate MB/s over the single-pump per-record baseline (the
// pre-refactor cost profile, kept as a selectable rung exactly so this ratio
// is a measurement rather than a changelog claim). The gated key is the `_x`
// multiple; peak absolutes ride along ungated for the docs.
func deriveServe(doc *Document, set func(string, float64), byName map[string]Benchmark) {
	type wave struct {
		fanout   string
		shards   int
		sessions int
	}
	waves := map[wave]Benchmark{}
	deepest := 0
	for name, b := range byName {
		rest, ok := strings.CutPrefix(name, "BenchmarkServeLoad/")
		if !ok {
			continue
		}
		var w wave
		fields := strings.Split(rest, "/")
		if len(fields) != 3 {
			continue
		}
		bad := false
		for _, f := range fields {
			k, v, found := strings.Cut(f, "=")
			if !found {
				bad = true
				break
			}
			switch k {
			case "fanout":
				w.fanout = v
			case "shards":
				w.shards, _ = strconv.Atoi(v)
			case "sessions":
				w.sessions, _ = strconv.Atoi(v)
			default:
				bad = true
			}
		}
		if bad || w.fanout == "" || w.shards <= 0 || w.sessions <= 0 {
			continue
		}
		waves[w] = b
		if w.sessions > deepest {
			deepest = w.sessions
		}
	}
	if deepest == 0 {
		return
	}
	base, okBase := waves[wave{"record", 1, deepest}]
	var best Benchmark
	for w, b := range waves {
		if w.sessions == deepest && w.fanout == "amortized" && w.shards > 1 && b.MBPerS > best.MBPerS {
			best = b
		}
	}
	if okBase && base.MBPerS > 0 && best.MBPerS > 0 {
		set("serve_sharded_over_single_x", best.MBPerS/base.MBPerS)
		set("serve_peak_sessions", float64(deepest))
		set("serve_peak_agg_mb_s", best.MBPerS)
		if p99, ok := best.Extra["p99-ns"]; ok {
			set("serve_peak_p99_ms", p99/1e6)
		}
	}
}

// check gates fresh derived ratios against committed ones. Every relative
// committed key (`_x` speedup multiple or `_pct` percentage) must be present
// in the fresh run — a gate that silently stops being measured is itself a
// regression — and must not fall below committed·(1−tolerance). Percentages
// are compared as speedup multiples (1 + pct/100) so a near-zero committed
// percentage doesn't explode the relative comparison; absolute `_mb_s` keys
// are skipped entirely. The returned slice holds one message per violation.
func check(fresh, committed *Document, tolerance float64) []string {
	var failures []string
	keys := make([]string, 0, len(committed.Derived))
	for key := range committed.Derived {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		want := committed.Derived[key]
		var wantMult, floor, gotMult float64
		switch {
		case strings.HasSuffix(key, "_x"):
			wantMult = want
		case strings.HasSuffix(key, "_pct"):
			wantMult = 1 + want/100
		default:
			continue
		}
		if wantMult <= 0 {
			continue
		}
		got, ok := fresh.Derived[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from fresh run (committed %.3g)", key, want))
			continue
		}
		if strings.HasSuffix(key, "_x") {
			gotMult = got
		} else {
			gotMult = 1 + got/100
		}
		floor = wantMult * (1 - tolerance)
		if gotMult < floor {
			failures = append(failures, fmt.Sprintf("%s: fresh %.3g below floor %.3g (committed %.3g, tolerance %.0f%%)",
				key, got, floor, want, tolerance*100))
		}
	}
	return failures
}
