package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newScanner(s string) *bufio.Scanner {
	return bufio.NewScanner(strings.NewReader(s))
}

const benchText = `goos: linux
goarch: amd64
pkg: extremenc/internal/gf256
cpu: Test CPU
BenchmarkMulAddLadder/table-scalar/k=4096-8   1000   1000 ns/op   1000.00 MB/s
BenchmarkMulAddLadder/fused4x2/k=4096-8       1000    500 ns/op   1700.00 MB/s
BenchmarkXorLadder/xor-repair-encode/k=4096-8 1000    100 ns/op   5950.00 MB/s
garbage line that is not a benchmark
BenchmarkBroken   not-a-number   10 ns/op
`

func parseText(t *testing.T, text string) *Document {
	t.Helper()
	doc, err := parse(newScanner(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseAndDerive(t *testing.T) {
	doc := parseText(t, benchText)
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if doc.GOOS != "linux" || doc.CPU != "Test CPU" {
		t.Fatalf("host fields: %q %q", doc.GOOS, doc.CPU)
	}
	if doc.Benchmarks[0].Name != "BenchmarkMulAddLadder/table-scalar/k=4096" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", doc.Benchmarks[0].Name)
	}
	derive(doc)
	if got := doc.Derived["fused4x2_over_scalar_k4096_pct"]; got < 69 || got > 71 {
		t.Fatalf("fused4x2 pct = %v, want ~70", got)
	}
	if got := doc.Derived["xor_repair_encode_over_fused4x2_k4096_x"]; got < 3.4 || got > 3.6 {
		t.Fatalf("xor multiple = %v, want ~3.5", got)
	}
}

func TestCheckGates(t *testing.T) {
	fresh := parseText(t, benchText)
	derive(fresh)
	committed := &Document{Derived: map[string]float64{
		"xor_repair_encode_over_fused4x2_k4096_x": 3.2,
		"fused4x2_over_scalar_k4096_pct":          65,
		"xor_blended_loss_1pct_mb_s":              99999, // absolute: never gated
	}}

	if fails := check(fresh, committed, 0.25); len(fails) != 0 {
		t.Fatalf("healthy run failed the gate: %v", fails)
	}

	// A fresh ratio far below the committed one trips the gate.
	committed.Derived["xor_repair_encode_over_fused4x2_k4096_x"] = 50
	fails := check(fresh, committed, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "xor_repair_encode") {
		t.Fatalf("regression not caught: %v", fails)
	}

	// A committed ratio key missing from the fresh run is a failure too.
	committed.Derived["xor_repair_encode_over_fused4x2_k4096_x"] = 3.2
	committed.Derived["vanished_gate_x"] = 2
	fails = check(fresh, committed, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "vanished_gate_x: missing") {
		t.Fatalf("missing key not caught: %v", fails)
	}
}

func TestRunCheckMode(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_host.json")

	// Commit an artifact from one run, then re-check the same text: a
	// byte-identical rerun always passes its own gate.
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(benchText), &out); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifact, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("emitted artifact is not valid JSON: %v", err)
	}
	if err := run([]string{"-check", artifact}, strings.NewReader(benchText), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Degrade the fresh XOR rung 10×: the gate must fail even at a wide
	// tolerance, and pass when the tolerance admits anything.
	degraded := strings.Replace(benchText, "5950.00", "595.00", 1)
	err := run([]string{"-check", artifact, "-tolerance", "0.5"}, strings.NewReader(degraded), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "derived-ratio gate failed") {
		t.Fatalf("degraded run passed the gate: %v", err)
	}
	if err := run([]string{"-check", artifact, "-tolerance", "0.99"}, strings.NewReader(degraded), &bytes.Buffer{}); err != nil {
		t.Fatalf("0.99 tolerance still failed: %v", err)
	}

	if err := run([]string{"-check", filepath.Join(dir, "nope.json")}, strings.NewReader(benchText), &bytes.Buffer{}); err == nil {
		t.Fatal("missing artifact accepted")
	}
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}
