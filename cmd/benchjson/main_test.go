package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newScanner(s string) *bufio.Scanner {
	return bufio.NewScanner(strings.NewReader(s))
}

const benchText = `goos: linux
goarch: amd64
pkg: extremenc/internal/gf256
cpu: Test CPU
BenchmarkMulAddLadder/table-scalar/k=4096-8   1000   1000 ns/op   1000.00 MB/s
BenchmarkMulAddLadder/fused4x2/k=4096-8       1000    500 ns/op   1700.00 MB/s
BenchmarkXorLadder/xor-repair-encode/k=4096-8 1000    100 ns/op   5950.00 MB/s
garbage line that is not a benchmark
BenchmarkBroken   not-a-number   10 ns/op
`

func parseText(t *testing.T, text string) *Document {
	t.Helper()
	doc, err := parse(newScanner(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseAndDerive(t *testing.T) {
	doc := parseText(t, benchText)
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	if doc.GOOS != "linux" || doc.CPU != "Test CPU" {
		t.Fatalf("host fields: %q %q", doc.GOOS, doc.CPU)
	}
	if doc.Benchmarks[0].Name != "BenchmarkMulAddLadder/table-scalar/k=4096" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", doc.Benchmarks[0].Name)
	}
	derive(doc)
	if got := doc.Derived["fused4x2_over_scalar_k4096_pct"]; got < 69 || got > 71 {
		t.Fatalf("fused4x2 pct = %v, want ~70", got)
	}
	if got := doc.Derived["xor_repair_encode_over_fused4x2_k4096_x"]; got < 3.4 || got > 3.6 {
		t.Fatalf("xor multiple = %v, want ~3.5", got)
	}
}

const serveText = `goos: linux
pkg: extremenc/cmd/ncload
BenchmarkServeLoad/fanout=record/shards=1/sessions=1024        1  900000 ns/op  120.00 MB/s  40000 p50-ns  900000 p99-ns  1.25 shed-pct
BenchmarkServeLoad/fanout=amortized/shards=1/sessions=1024     1  800000 ns/op  160.00 MB/s  30000 p50-ns  700000 p99-ns  0.50 shed-pct
BenchmarkServeLoad/fanout=record/shards=1/sessions=4096        1  950000 ns/op  110.00 MB/s  50000 p50-ns  990000 p99-ns  2.00 shed-pct
BenchmarkServeLoad/fanout=amortized/shards=2/sessions=4096     1  700000 ns/op  150.00 MB/s  35000 p50-ns  750000 p99-ns  0.75 shed-pct
BenchmarkServeLoad/fanout=amortized/shards=4/sessions=4096     1  600000 ns/op  176.00 MB/s  30000 p50-ns  650000 p99-ns  0.60 shed-pct
`

// TestDeriveServe pins the serving-ladder schema: extra value/unit columns
// land in Extra, and the gated multiple compares the best sharded amortized
// wave against the single-pump per-record baseline at the deepest session
// count (4096 here — the shallower 1024-session waves must not be compared).
func TestDeriveServe(t *testing.T) {
	doc := parseText(t, serveText)
	if len(doc.Benchmarks) != 5 {
		t.Fatalf("parsed %d serve waves, want 5", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Extra["p99-ns"] != 900000 || b.Extra["p50-ns"] != 40000 || b.Extra["shed-pct"] != 1.25 {
		t.Fatalf("extra columns not captured: %+v", b.Extra)
	}
	derive(doc)
	got := doc.Derived["serve_sharded_over_single_x"]
	if got < 1.59 || got > 1.61 { // 176 / 110
		t.Fatalf("serve_sharded_over_single_x = %v, want 1.6", got)
	}
	if doc.Derived["serve_peak_sessions"] != 4096 {
		t.Fatalf("serve_peak_sessions = %v, want 4096", doc.Derived["serve_peak_sessions"])
	}
	if doc.Derived["serve_peak_agg_mb_s"] != 176 {
		t.Fatalf("serve_peak_agg_mb_s = %v, want 176", doc.Derived["serve_peak_agg_mb_s"])
	}
	if doc.Derived["serve_peak_p99_ms"] != 0.65 {
		t.Fatalf("serve_peak_p99_ms = %v, want 0.65", doc.Derived["serve_peak_p99_ms"])
	}

	// Without the single-pump baseline at the deepest depth, no serve keys
	// are derived at all: a half-measured ladder must not invent a gate.
	partial := parseText(t, strings.Replace(serveText,
		"BenchmarkServeLoad/fanout=record/shards=1/sessions=4096", "BenchmarkSomethingElse", 1))
	derive(partial)
	if _, ok := partial.Derived["serve_sharded_over_single_x"]; ok {
		t.Fatal("serve ratio derived without its baseline wave")
	}
}

func TestCheckGates(t *testing.T) {
	fresh := parseText(t, benchText)
	derive(fresh)
	committed := &Document{Derived: map[string]float64{
		"xor_repair_encode_over_fused4x2_k4096_x": 3.2,
		"fused4x2_over_scalar_k4096_pct":          65,
		"xor_blended_loss_1pct_mb_s":              99999, // absolute: never gated
	}}

	if fails := check(fresh, committed, 0.25); len(fails) != 0 {
		t.Fatalf("healthy run failed the gate: %v", fails)
	}

	// A fresh ratio far below the committed one trips the gate.
	committed.Derived["xor_repair_encode_over_fused4x2_k4096_x"] = 50
	fails := check(fresh, committed, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "xor_repair_encode") {
		t.Fatalf("regression not caught: %v", fails)
	}

	// A committed ratio key missing from the fresh run is a failure too.
	committed.Derived["xor_repair_encode_over_fused4x2_k4096_x"] = 3.2
	committed.Derived["vanished_gate_x"] = 2
	fails = check(fresh, committed, 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "vanished_gate_x: missing") {
		t.Fatalf("missing key not caught: %v", fails)
	}
}

func TestRunCheckMode(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "BENCH_host.json")

	// Commit an artifact from one run, then re-check the same text: a
	// byte-identical rerun always passes its own gate.
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(benchText), &out); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifact, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("emitted artifact is not valid JSON: %v", err)
	}
	if err := run([]string{"-check", artifact}, strings.NewReader(benchText), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Degrade the fresh XOR rung 10×: the gate must fail even at a wide
	// tolerance, and pass when the tolerance admits anything.
	degraded := strings.Replace(benchText, "5950.00", "595.00", 1)
	err := run([]string{"-check", artifact, "-tolerance", "0.5"}, strings.NewReader(degraded), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "derived-ratio gate failed") {
		t.Fatalf("degraded run passed the gate: %v", err)
	}
	if err := run([]string{"-check", artifact, "-tolerance", "0.99"}, strings.NewReader(degraded), &bytes.Buffer{}); err != nil {
		t.Fatalf("0.99 tolerance still failed: %v", err)
	}

	if err := run([]string{"-check", filepath.Join(dir, "nope.json")}, strings.NewReader(benchText), &bytes.Buffer{}); err == nil {
		t.Fatal("missing artifact accepted")
	}
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("empty input accepted")
	}
}
