// Command ncbench regenerates the paper's tables and figures on the
// simulated testbeds and prints them as aligned text tables.
//
// Usage:
//
//	ncbench -list            # list experiment IDs
//	ncbench -fig fig7        # one experiment
//	ncbench -fig all         # everything, in paper order
package main

import (
	"flag"
	"fmt"
	"os"

	"extremenc/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "experiment ID to run, or 'all'")
	format := fs.String("format", "table", "output format: table or csv")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return nil
	}

	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *fig != "all" {
		runner, ok := experiments.Lookup(*fig)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *fig)
		}
		return render(runner, *format)
	}
	for _, e := range experiments.Registry() {
		if err := render(e.Run, *format); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

func render(runner experiments.Runner, format string) error {
	f, err := runner()
	if err != nil {
		return err
	}
	if format == "csv" {
		return f.RenderCSV(os.Stdout)
	}
	return f.Render(os.Stdout)
}
