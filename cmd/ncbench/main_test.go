package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig7"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "combined", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "no-such"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
