// Command ncfile stores files as network-coded containers: any
// sufficiently large subset of intact records recovers the file, so
// dropped or corrupted records only consume redundancy.
//
// Usage:
//
//	ncfile encode  -in report.pdf -out report.xnc -n 32 -k 4096 -redundancy 1.2
//	ncfile corrupt -in report.xnc -out damaged.xnc -drop 0.1 -flip 0.05
//	ncfile decode  -in damaged.xnc -out report2.pdf
package main

import (
	"flag"
	"fmt"
	"os"

	"extremenc/internal/ncfile"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncfile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: ncfile encode|decode|corrupt [flags]")
	}
	switch args[0] {
	case "encode":
		return runEncode(args[1:])
	case "decode":
		return runDecode(args[1:])
	case "corrupt":
		return runCorrupt(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// openPair opens the -in and -out files.
func openPair(inPath, outPath string) (in, out *os.File, err error) {
	in, err = os.Open(inPath)
	if err != nil {
		return nil, nil, err
	}
	out, err = os.Create(outPath)
	if err != nil {
		in.Close()
		return nil, nil, err
	}
	return in, out, nil
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("ncfile encode", flag.ContinueOnError)
	inPath := fs.String("in", "", "input payload file")
	outPath := fs.String("out", "", "output container file")
	n := fs.Int("n", 32, "blocks per segment")
	k := fs.Int("k", 4096, "bytes per block")
	redundancy := fs.Float64("redundancy", 1.15, "coded blocks per source block (≥ 1)")
	seeded := fs.Bool("seeded", false, "store 8-byte coefficient seeds instead of full vectors")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" || *outPath == "" {
		return fmt.Errorf("encode requires -in and -out")
	}
	in, out, err := openPair(*inPath, *outPath)
	if err != nil {
		return err
	}
	defer in.Close()
	defer out.Close()

	sum, err := ncfile.Encode(out, in, rlnc.Params{BlockCount: *n, BlockSize: *k},
		ncfile.EncodeOptions{Redundancy: *redundancy, Seeded: *seeded, Seed: *seed})
	if err != nil {
		return err
	}
	overhead := float64(sum.RecordBytes)/float64(sum.PayloadBytes) - 1
	fmt.Printf("encoded %d bytes → %d records in %d segments (n=%d, k=%d, %+.1f%% overhead)\n",
		sum.PayloadBytes, sum.Records, sum.Header.Segments, *n, *k, overhead*100)
	return out.Sync()
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("ncfile decode", flag.ContinueOnError)
	inPath := fs.String("in", "", "input container file")
	outPath := fs.String("out", "", "output payload file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" || *outPath == "" {
		return fmt.Errorf("decode requires -in and -out")
	}
	in, out, err := openPair(*inPath, *outPath)
	if err != nil {
		return err
	}
	defer in.Close()
	defer out.Close()

	sum, err := ncfile.Decode(out, in)
	if err != nil {
		return err
	}
	fmt.Printf("decoded %d bytes from %d records (%d corrupt skipped, %d dependent)\n",
		sum.Header.Length, sum.Records, sum.CorruptRecords, sum.Dependent)
	return out.Sync()
}

func runCorrupt(args []string) error {
	fs := flag.NewFlagSet("ncfile corrupt", flag.ContinueOnError)
	inPath := fs.String("in", "", "input container file")
	outPath := fs.String("out", "", "output damaged container")
	drop := fs.Float64("drop", 0.1, "record drop probability")
	flip := fs.Float64("flip", 0.0, "record byte-flip probability")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" || *outPath == "" {
		return fmt.Errorf("corrupt requires -in and -out")
	}
	in, out, err := openPair(*inPath, *outPath)
	if err != nil {
		return err
	}
	defer in.Close()
	defer out.Close()

	sum, err := ncfile.Corrupt(out, in, ncfile.CorruptOptions{DropRate: *drop, FlipRate: *flip, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("damaged container: %d records, %d dropped, %d flipped\n",
		sum.Records, sum.Dropped, sum.Flipped)
	return out.Sync()
}
