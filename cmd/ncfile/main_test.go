package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestEncodeCorruptDecodeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	container := filepath.Join(dir, "c.xnc")
	damaged := filepath.Join(dir, "d.xnc")
	out := filepath.Join(dir, "out.bin")

	payload := make([]byte, 100000)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"encode", "-in", in, "-out", container, "-n", "16", "-k", "1024", "-redundancy", "1.4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"corrupt", "-in", container, "-out", damaged, "-drop", "0.1", "-flip", "0.05"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"decode", "-in", damaged, "-out", out}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("roundtrip differs")
	}
}

func TestSeededEncode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.bin")
	container := filepath.Join(dir, "c.xnc")
	out := filepath.Join(dir, "out.bin")
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(2)).Read(payload)
	if err := os.WriteFile(in, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"encode", "-in", in, "-out", container, "-seeded", "-n", "8", "-k", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"decode", "-in", container, "-out", out}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("seeded roundtrip differs")
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"encode"}); err == nil {
		t.Fatal("encode without files accepted")
	}
	if err := run([]string{"decode"}); err == nil {
		t.Fatal("decode without files accepted")
	}
	if err := run([]string{"corrupt"}); err == nil {
		t.Fatal("corrupt without files accepted")
	}
	if err := run([]string{"decode", "-in", "/nonexistent", "-out", "/tmp/x"}); err == nil {
		t.Fatal("missing input accepted")
	}
}
