// Command ncload is the serving-capacity saturation harness: it boots the
// push server in-process, drives thousands of concurrent raw wire-speed
// sessions (plus a few fully-decoding canary fetchers) against it, and
// records the saturation curve — sessions vs aggregate MB/s vs p50/p99
// record latency scraped from the obs stage histograms — as go-bench result
// lines on stdout, ready for `cmd/benchjson`.
//
// The ladder ramps session depth in doubling waves and, at every depth,
// measures each serving rung: the per-record single-pump baseline (the
// pre-refactor cost profile, kept selectable exactly so the committed
// speedup is a measurement) and the amortized fan-out at each configured
// shard count. Every wave gets a fresh server, listener, and metrics
// registry; MB/s comes from the BytesSent delta over a settled measurement
// window, latency quantiles from the windowed difference of two
// netio.record_send histogram snapshots.
//
//	go run ./cmd/ncload -sessions 5120 | go run ./cmd/benchjson > BENCH_serve.json
//
// With -smoke it runs one scaled-down 1k-session wave fit for `-race` CI and
// gates it hard: ramp and canary failures, the windowed p99 record latency
// (-max-p99), and exact offered == sent + shed accounting re-checked from
// one scraped Prometheus exposition all exit non-zero.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

type options struct {
	sessions   int
	steps      int
	shards     []int
	systematic bool
	window     time.Duration
	settle     time.Duration
	canaries   int
	chaos      bool
	blockCount int
	blockSize  int
	segments   int
	queueDepth int
	seed       int64
	rampChunk  int
	smoke      bool
	maxP99     time.Duration
}

// waveCfg is one rung × depth point of the ladder.
type waveCfg struct {
	fanout   netio.FanoutMode
	wire     netio.WireMode
	shards   int
	sessions int
}

func (w waveCfg) benchName() string {
	name := fmt.Sprintf("BenchmarkServeLoad/fanout=%s/shards=%d/sessions=%d",
		w.fanout, w.shards, w.sessions)
	if w.wire != netio.ModeDense {
		name += "/wire=" + w.wire.String()
	}
	return name
}

// waveResult is one measured point of the saturation curve.
type waveResult struct {
	window  time.Duration
	mbps    float64
	p50     time.Duration
	p99     time.Duration
	shedPct float64
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ncload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ncload", flag.ContinueOnError)
	var (
		sessions   = fs.Int("sessions", 5120, "peak concurrent raw sessions per wave")
		steps      = fs.Int("steps", 3, "ramp depths per rung (each doubling up to -sessions)")
		shardsFlag = fs.String("shards", "1,2,4", "comma-separated pump shard counts for the amortized rung")
		systematic = fs.Bool("systematic", true, "add one systematic-wire wave at peak depth")
		window     = fs.Duration("window", 3*time.Second, "measurement window per wave")
		settle     = fs.Duration("settle", 500*time.Millisecond, "post-ramp settle before the window opens")
		canaries   = fs.Int("canaries", 4, "fully-decoding fetcher sessions per wave (payload verified)")
		chaos      = fs.Bool("chaos", false, "route canary fetchers through a lossy faultnet link")
		blockCount = fs.Int("block-count", 16, "coded blocks per segment (n)")
		blockSize  = fs.Int("block-size", 1024, "block size in bytes (k)")
		segments   = fs.Int("segments", 4, "segments in the served object")
		queueDepth = fs.Int("queue-depth", 64, "per-session send queue depth in records")
		seed       = fs.Int64("seed", 1, "base seed for media and coefficient streams")
		rampChunk  = fs.Int("ramp-chunk", 256, "sessions dialed per ramp chunk")
		smoke      = fs.Bool("smoke", false, "one gated 1k-session wave (CI mode, -race friendly)")
		maxP99     = fs.Duration("max-p99", 2*time.Second, "smoke gate: max windowed p99 record latency")
		brownout   = fs.Bool("brownout", false, "run the gated brownout wave instead of the ladder: slow readers push past saturation, the degradation ladder must engage and step back, canaries must still decode byte-identical")
		summary    = fs.String("summary", "", "write a machine-readable JSON run summary to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardList, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}
	opt := options{
		sessions: *sessions, steps: *steps, shards: shardList,
		systematic: *systematic, window: *window, settle: *settle,
		canaries: *canaries, chaos: *chaos,
		blockCount: *blockCount, blockSize: *blockSize, segments: *segments,
		queueDepth: *queueDepth, seed: *seed, rampChunk: *rampChunk,
		smoke: *smoke, maxP99: *maxP99,
	}
	if opt.smoke {
		// The CI gate: one wave, scaled to finish quickly under -race.
		opt.sessions, opt.steps = 1024, 1
		opt.shards = []int{4}
		opt.window, opt.settle = time.Second, 300*time.Millisecond
		opt.canaries, opt.systematic = 2, false
	}
	if opt.sessions < 1 || opt.steps < 1 || opt.rampChunk < 1 {
		return fmt.Errorf("sessions, steps, and ramp-chunk must be positive")
	}
	raiseFDLimit()

	lg := log.New(os.Stderr, "ncload: ", log.Ltime)
	sum := &loadSummary{Seed: opt.seed, Smoke: opt.smoke, Invariants: map[string]bool{}}
	var runErr error
	if *brownout {
		runErr = runBrownoutWave(opt, out, lg, sum)
	} else {
		runErr = runLadder(opt, out, lg, sum)
	}
	sum.OK = runErr == nil
	if runErr != nil {
		sum.Error = runErr.Error()
	}
	if *summary != "" {
		b, err := json.MarshalIndent(sum, "", " ")
		if err != nil {
			return fmt.Errorf("%w (summary: %v)", runErr, err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*summary, b, 0o644); err != nil {
			return fmt.Errorf("%w (summary: %v)", runErr, err)
		}
	}
	return runErr
}

// loadSummary is the machine-readable outcome of one ncload run: the seed,
// every measured saturation point, the gate verdicts, and — in -brownout
// mode — the degradation-ladder headline numbers.
type loadSummary struct {
	OK         bool            `json:"ok"`
	Seed       int64           `json:"seed"`
	Smoke      bool            `json:"smoke"`
	Waves      []waveSummary   `json:"waves,omitempty"`
	PeakRung   int             `json:"brownout_peak_rung,omitempty"`
	Transits   int64           `json:"brownout_transitions,omitempty"`
	RecoveryNs int64           `json:"brownout_recovery_ns,omitempty"`
	Invariants map[string]bool `json:"invariants"`
	Error      string          `json:"error,omitempty"`
}

// waveSummary is one saturation-curve point in the JSON summary.
type waveSummary struct {
	Name     string  `json:"name"`
	Sessions int     `json:"sessions"`
	MBps     float64 `json:"mb_per_s"`
	P50Ns    int64   `json:"p50_ns"`
	P99Ns    int64   `json:"p99_ns"`
	ShedPct  float64 `json:"shed_pct"`
}

// runLadder drives the ramp ladder and emits the go-bench result lines.
func runLadder(opt options, out io.Writer, lg *log.Logger, sum *loadSummary) error {
	fmt.Fprintf(out, "goos: %s\ngoarch: %s\npkg: extremenc/cmd/ncload\n", runtime.GOOS, runtime.GOARCH)
	for _, wave := range buildWaves(opt) {
		lg.Printf("wave %s: ramping %d sessions", wave.benchName(), wave.sessions)
		start := time.Now()
		res, err := runWave(wave, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", wave.benchName(), err)
		}
		lg.Printf("wave %s: %.1f MB/s, p50 %v, p99 %v, shed %.2f%% (%.0fs total)",
			wave.benchName(), res.mbps, res.p50, res.p99, res.shedPct,
			time.Since(start).Seconds())
		fmt.Fprintf(out, "%s \t%8d\t%12d ns/op\t%10.2f MB/s\t%12d p50-ns\t%12d p99-ns\t%8.3f shed-pct\n",
			wave.benchName(), 1, res.window.Nanoseconds(), res.mbps,
			res.p50.Nanoseconds(), res.p99.Nanoseconds(), res.shedPct)
		sum.Waves = append(sum.Waves, waveSummary{
			Name: wave.benchName(), Sessions: wave.sessions, MBps: res.mbps,
			P50Ns: res.p50.Nanoseconds(), P99Ns: res.p99.Nanoseconds(), ShedPct: res.shedPct,
		})
	}
	// Every wave that completed passed its internal gates: ledger exactness
	// and byte-identical canaries always, plus the p99 bound under -smoke.
	sum.Invariants["ledgers_balanced"] = true
	sum.Invariants["canaries_identical"] = true
	if opt.smoke {
		sum.Invariants["p99_within_gate"] = true
	}
	return nil
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard list")
	}
	sort.Ints(out)
	return out, nil
}

// buildWaves lays out the ladder: at every depth, the per-record single-pump
// baseline first, then the amortized rung at each shard count; finally one
// systematic-wire wave at peak depth and max shards so the curve records the
// XOR fast path's serving profile too.
func buildWaves(opt options) []waveCfg {
	depths := make([]int, 0, opt.steps)
	for i := opt.steps - 1; i >= 0; i-- {
		d := opt.sessions >> i
		if d < 1 || (len(depths) > 0 && d == depths[len(depths)-1]) {
			continue
		}
		depths = append(depths, d)
	}
	var waves []waveCfg
	for _, d := range depths {
		if !opt.smoke {
			waves = append(waves, waveCfg{netio.FanoutPerRecord, netio.ModeDense, 1, d})
		}
		for _, s := range opt.shards {
			waves = append(waves, waveCfg{netio.FanoutAmortized, netio.ModeDense, s, d})
		}
	}
	if opt.systematic {
		peak := depths[len(depths)-1]
		maxShards := opt.shards[len(opt.shards)-1]
		waves = append(waves, waveCfg{netio.FanoutAmortized, netio.ModeSystematic, maxShards, peak})
	}
	return waves
}

func makeMedia(size int, seed int64) []byte {
	media := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(media)
	return media
}

func runWave(wave waveCfg, opt options) (waveResult, error) {
	var res waveResult
	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	p := rlnc.Params{BlockCount: opt.blockCount, BlockSize: opt.blockSize}
	media := makeMedia(opt.segments*p.SegmentSize()-13, opt.seed)

	scfg := netio.DefaultServerConfig()
	scfg.QueueDepth = opt.queueDepth
	scfg.Seed = opt.seed
	// Measurement clients drain at full speed, but the deepest waves starve
	// individual readers for whole scheduler rotations; a wide deadline
	// budget keeps the default hostile-peer eviction profile from shrinking
	// the fleet mid-wave.
	scfg.WriteDeadline = 30 * time.Second
	scfg.WriteRetries = 4
	scfg.PumpShards = wave.shards
	scfg.Fanout = wave.fanout
	scfg.Mode = wave.wire
	scfg.Metrics = reg
	srv, err := netio.NewServerFromConfig(media, p, scfg)
	if err != nil {
		return res, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(serveCtx, l) }()
	defer func() {
		srv.Shutdown()
		stopServe()
		l.Close()
		<-serveDone
	}()
	addr := l.Addr().String()

	// Ramp the raw fleet in chunks: each session dials, handshakes, and then
	// drains records at wire speed until closed. Chunked dialing paces the
	// accept queue, and waiting on each chunk's handshakes is the natural
	// ramp throttle: later chunks join while earlier sessions are already
	// being served, so deep waves ramp slowly but arrive at a steady state.
	var (
		fleetMu sync.Mutex
		fleet   []*netio.RawClient
		drain   sync.WaitGroup
	)
	defer func() {
		fleetMu.Lock()
		for _, rc := range fleet {
			rc.Close()
		}
		fleetMu.Unlock()
		drain.Wait()
	}()
	for off := 0; off < wave.sessions; off += opt.rampChunk {
		n := min(opt.rampChunk, wave.sessions-off)
		errc := make(chan error, n)
		var chunk sync.WaitGroup
		for i := 0; i < n; i++ {
			chunk.Add(1)
			go func() {
				defer chunk.Done()
				conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
				if err != nil {
					errc <- err
					return
				}
				rc, err := netio.NewRawClient(conn)
				if err != nil {
					errc <- err
					return
				}
				fleetMu.Lock()
				fleet = append(fleet, rc)
				fleetMu.Unlock()
				drain.Add(1)
				go func() {
					defer drain.Done()
					for {
						if _, err := rc.Next(); err != nil {
							return
						}
					}
				}()
			}()
		}
		chunk.Wait()
		close(errc)
		for err := range errc {
			return res, fmt.Errorf("ramp: %w", err)
		}
	}
	for deadline := time.Now().Add(5 * time.Minute); ; time.Sleep(10 * time.Millisecond) {
		if srv.Snapshot().Sessions >= wave.sessions {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("only %d of %d sessions registered after ramp",
				srv.Snapshot().Sessions, wave.sessions)
		}
	}

	// Canary fetchers: full decoding sessions riding the same load, each
	// verified byte-identical. With -chaos they dial through a lossy faultnet
	// link and must still converge via reconnects.
	canaryCtx, cancelCanaries := context.WithTimeout(context.Background(),
		opt.settle+opt.window+2*time.Minute)
	defer cancelCanaries()
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	if opt.chaos {
		dial, _ = faultnet.Dialer(faultnet.Config{
			Seed:         opt.seed,
			CorruptEvery: 4000,
			ResetEvery:   3000,
			MaxReadChunk: 2048,
		}, dial)
	}
	canaryErrs := make(chan error, opt.canaries)
	for i := 0; i < opt.canaries; i++ {
		go func(i int) {
			f := netio.NewFetcher(dial)
			fres, err := f.Fetch(canaryCtx)
			if err != nil {
				canaryErrs <- fmt.Errorf("canary %d: %w", i, err)
				return
			}
			if !bytes.Equal(fres.Payload, media) {
				canaryErrs <- fmt.Errorf("canary %d: payload differs", i)
				return
			}
			canaryErrs <- nil
		}(i)
	}

	// The measurement window: throughput from the BytesSent delta, latency
	// quantiles from the windowed difference of two record_send snapshots.
	time.Sleep(opt.settle)
	hist := reg.Histogram("netio.record_send", "")
	h0 := hist.View()
	s0 := srv.Snapshot()
	t0 := time.Now()
	time.Sleep(opt.window)
	s1 := srv.Snapshot()
	h1 := hist.View()
	elapsed := time.Since(t0)

	for i := 0; i < opt.canaries; i++ {
		if err := <-canaryErrs; err != nil {
			return res, err
		}
	}

	// Teardown, then the exactness gates: the fleet hangs up, the server
	// drains, and the ledger must balance per shard and in aggregate.
	fleetMu.Lock()
	for _, rc := range fleet {
		rc.Close()
	}
	fleet = nil
	fleetMu.Unlock()
	drain.Wait()
	srv.Shutdown()
	final := srv.Snapshot()
	if final.BlocksOffered != final.BlocksSent+final.BlocksShed {
		return res, fmt.Errorf("aggregate ledger: offered %d != sent %d + shed %d",
			final.BlocksOffered, final.BlocksSent, final.BlocksShed)
	}
	for _, sh := range final.Shards {
		if !sh.Consistent() {
			return res, fmt.Errorf("shard %d ledger: offered %d != sent %d + shed %d",
				sh.Shard, sh.BlocksOffered, sh.BlocksSent, sh.BlocksShed)
		}
	}

	d := h1.Sub(h0)
	res.window = elapsed
	res.mbps = float64(s1.BytesSent-s0.BytesSent) / elapsed.Seconds() / 1e6
	res.p50, res.p99 = d.P50, d.P99
	if offered := s1.BlocksOffered - s0.BlocksOffered; offered > 0 {
		res.shedPct = 100 * float64(s1.BlocksShed-s0.BlocksShed) / float64(offered)
	}
	if d.Count == 0 {
		return res, fmt.Errorf("no record sends landed in the measurement window")
	}

	if opt.smoke {
		if err := smokeGates(reg, wave, d, opt.maxP99); err != nil {
			return res, err
		}
	}
	return res, nil
}

// smokeGates re-checks the wave from the outside: the windowed p99 bound and
// exact accounting read back from one scraped Prometheus exposition, so the
// CI gate exercises the full metrics path rather than trusting Snapshot.
func smokeGates(reg *obs.Registry, wave waveCfg, window obs.HistogramView, maxP99 time.Duration) error {
	if window.P99 > maxP99 {
		return fmt.Errorf("windowed p99 record latency %v exceeds gate %v", window.P99, maxP99)
	}
	var sb bytes.Buffer
	if err := reg.WriteText(&sb); err != nil {
		return err
	}
	samples, err := obs.ParseText(bytes.NewReader(sb.Bytes()))
	if err != nil {
		return err
	}
	vals := map[string]float64{}
	for _, s := range samples {
		if len(s.Labels) == 0 {
			vals[s.Key()] = s.Value
		}
	}
	for _, key := range []string{"netio_blocks_offered", "netio_blocks_sent", "netio_blocks_shed", "netio_pump_shards"} {
		if _, ok := vals[key]; !ok {
			return fmt.Errorf("%s missing from the scraped exposition", key)
		}
	}
	if vals["netio_blocks_offered"] != vals["netio_blocks_sent"]+vals["netio_blocks_shed"] {
		return fmt.Errorf("scraped ledger: offered %.0f != sent %.0f + shed %.0f",
			vals["netio_blocks_offered"], vals["netio_blocks_sent"], vals["netio_blocks_shed"])
	}
	if got := int(vals["netio_pump_shards"]); got != wave.shards {
		return fmt.Errorf("scraped netio_pump_shards = %d, want %d", got, wave.shards)
	}
	return nil
}

// runBrownoutWave is the graceful-degradation gate (`ncload -brownout`): a
// fleet of deliberately slow readers pushes one server well past saturation
// and holds it there, and the brownout ladder must visibly engage — at least
// one rung up, with transitions observable — then step all the way back down
// once the fleet hangs up. Canary fetchers launched at peak pressure must
// still finish byte-identical: they absorb BUSY refusals while the ladder
// sits at reject and are admitted as it unwinds, which is the whole point of
// lossless degradation. The run is reproducible from -seed; exact
// offered == sent + shed accounting is re-checked after teardown.
func runBrownoutWave(opt options, out io.Writer, lg *log.Logger, sum *loadSummary) error {
	fleetSize := opt.sessions
	if opt.smoke {
		fleetSize = 128
	}
	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	p := rlnc.Params{BlockCount: opt.blockCount, BlockSize: opt.blockSize}
	media := makeMedia(opt.segments*p.SegmentSize()-13, opt.seed)

	var transitions int
	scfg := netio.DefaultServerConfig()
	// A shallow queue and wide write deadlines: slow readers must saturate
	// the queues (occupancy and pump stalls are the pressure signal), not be
	// evicted as hostile peers.
	scfg.QueueDepth = 8
	scfg.WriteDeadline = 30 * time.Second
	scfg.WriteRetries = 4
	scfg.Seed = opt.seed
	scfg.Metrics = reg
	scfg.RetryAfter = 20 * time.Millisecond
	scfg.Brownout = netio.BrownoutConfig{
		Interval: 25 * time.Millisecond,
		StepUp:   0.5,
		StepDown: 0.1,
		Hold:     3,
		OnTransition: func(from, to netio.BrownoutRung, pressure float64) {
			transitions++
			lg.Printf("brownout: %s -> %s (pressure %.2f)", from, to, pressure)
		},
	}
	srv, err := netio.NewServerFromConfig(media, p, scfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); srv.Serve(serveCtx, l) }()
	defer func() {
		srv.Shutdown()
		stopServe()
		l.Close()
		<-serveDone
	}()
	addr := l.Addr().String()

	// The overload: every session reads one record then naps, so the queues
	// stay pinned full no matter how fast the pumps produce.
	lg.Printf("brownout wave: ramping %d slow readers", fleetSize)
	var (
		fleetMu sync.Mutex
		fleet   []*netio.RawClient
		drain   sync.WaitGroup
	)
	closeFleet := func() {
		fleetMu.Lock()
		for _, rc := range fleet {
			rc.Close()
		}
		fleet = nil
		fleetMu.Unlock()
		drain.Wait()
	}
	defer closeFleet()
	for off := 0; off < fleetSize; off += opt.rampChunk {
		n := min(opt.rampChunk, fleetSize-off)
		errc := make(chan error, n)
		var chunk sync.WaitGroup
		for i := 0; i < n; i++ {
			chunk.Add(1)
			go func() {
				defer chunk.Done()
				conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
				if err != nil {
					errc <- err
					return
				}
				rc, err := netio.NewRawClient(conn)
				if err != nil {
					errc <- err
					return
				}
				fleetMu.Lock()
				fleet = append(fleet, rc)
				fleetMu.Unlock()
				drain.Add(1)
				go func() {
					defer drain.Done()
					for {
						if _, err := rc.Next(); err != nil {
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
				}()
			}()
		}
		chunk.Wait()
		close(errc)
		for err := range errc {
			return fmt.Errorf("ramp: %w", err)
		}
	}

	// Gate 1: the ladder engages under sustained pressure.
	engageStart := time.Now()
	peak := netio.BrownoutOff
	for deadline := time.Now().Add(time.Minute); ; time.Sleep(5 * time.Millisecond) {
		if r := srv.Rung(); r > peak {
			peak = r
		}
		if peak > netio.BrownoutOff {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ladder never engaged under %d slow readers (snapshot %+v)",
				fleetSize, srv.Snapshot().CounterView)
		}
	}
	lg.Printf("ladder engaged (rung %s) %v after ramp", srv.Rung(), time.Since(engageStart).Round(time.Millisecond))
	sum.Invariants["ladder_engaged"] = true

	// Canaries launch at peak pressure: BUSY refusals while the ladder sits
	// at reject, admission as it unwinds, and a byte-identical payload
	// regardless.
	canaryCtx, cancelCanaries := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancelCanaries()
	dial := func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	type canaryResult struct {
		err  error
		busy int
	}
	canaryDone := make(chan canaryResult, opt.canaries)
	for i := 0; i < opt.canaries; i++ {
		go func(i int) {
			f := netio.NewFetcher(dial,
				netio.WithMaxAttempts(0),
				netio.WithBackoff(10*time.Millisecond, 250*time.Millisecond),
				netio.WithBackoffSeed(opt.seed+int64(i)))
			fres, err := f.Fetch(canaryCtx)
			if err != nil {
				canaryDone <- canaryResult{err: fmt.Errorf("canary %d: %w", i, err)}
				return
			}
			if !bytes.Equal(fres.Payload, media) {
				canaryDone <- canaryResult{err: fmt.Errorf("canary %d: payload differs", i)}
				return
			}
			canaryDone <- canaryResult{busy: f.Stats().AdmissionBusy}
		}(i)
	}

	// Hold the saturation plateau, tracking the peak rung, then release.
	holdUntil := time.Now().Add(opt.settle + 500*time.Millisecond)
	for time.Now().Before(holdUntil) {
		if r := srv.Rung(); r > peak {
			peak = r
		}
		time.Sleep(5 * time.Millisecond)
	}
	closeFleet()

	// Gate 2: with the pressure lifted the ladder steps all the way back.
	releaseStart := time.Now()
	for deadline := time.Now().Add(time.Minute); srv.Rung() != netio.BrownoutOff; time.Sleep(5 * time.Millisecond) {
		if time.Now().After(deadline) {
			return fmt.Errorf("ladder never stepped back down after release (rung %s)", srv.Rung())
		}
	}
	recovery := time.Since(releaseStart)
	lg.Printf("ladder back to off %v after release", recovery.Round(time.Millisecond))
	sum.Invariants["ladder_released"] = true
	sum.RecoveryNs = recovery.Nanoseconds()

	// Gate 3: every canary decodes byte-identical despite the brownout.
	busyTotal := 0
	for i := 0; i < opt.canaries; i++ {
		res := <-canaryDone
		if res.err != nil {
			return res.err
		}
		busyTotal += res.busy
	}

	// The canaries are load too — with shallow queues their own decode churn
	// can tick the ladder back up — so wait for the controller to settle at
	// off again now that every client is gone before freezing the snapshot.
	for deadline := time.Now().Add(time.Minute); srv.Rung() != netio.BrownoutOff; time.Sleep(5 * time.Millisecond) {
		if time.Now().After(deadline) {
			return fmt.Errorf("ladder never settled at off after the canaries (rung %s)", srv.Rung())
		}
	}

	// Gate 4: exactness after teardown, scraped from the snapshot the
	// controller was driving.
	srv.Shutdown()
	final := srv.Snapshot()
	if !final.Consistent() {
		return fmt.Errorf("ledger after brownout wave: offered %d != sent %d + shed %d",
			final.BlocksOffered, final.BlocksSent, final.BlocksShed)
	}
	if final.BrownoutTransitions < 2 || transitions < 2 {
		return fmt.Errorf("only %d ladder transitions observed (callback saw %d), want >= 2",
			final.BrownoutTransitions, transitions)
	}
	if final.BrownoutRung != int(netio.BrownoutOff) {
		return fmt.Errorf("final snapshot rung %d, want off", final.BrownoutRung)
	}

	sum.Invariants["canaries_identical"] = true
	sum.Invariants["ledgers_balanced"] = true
	sum.PeakRung = int(peak)
	sum.Transits = final.BrownoutTransitions
	lg.Printf("brownout wave ok: peak rung %s, %d transitions, %d canary BUSY refusals honored, %d blocks shed",
		peak, final.BrownoutTransitions, busyTotal, final.BlocksShed)
	fmt.Fprintf(out, "BenchmarkServeBrownout/sessions=%d \t%8d\t%12d peak-rung\t%12d transitions\t%12d recover-ns\t%8d busy\n",
		fleetSize, 1, int(peak), final.BrownoutTransitions, recovery.Nanoseconds(), busyTotal)
	return nil
}
