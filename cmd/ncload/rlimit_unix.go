//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft open-file limit to the hard limit, best
// effort: a peak wave holds both ends of every session in this process, so
// N sessions cost ~2N descriptors.
func raiseFDLimit() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
}
