// Command ncmesh boots an in-process recoding relay mesh on loopback TCP —
// the paper's relay deployment (Sec. 2: recoding without decoding) end to
// end. An origin streams coded blocks; a tier of relays recombines received
// blocks in the original source basis and re-serves them; a wave of leaves
// fetches through the relay tier with resilient reconnecting clients. A
// control plane (pool, health detector, coordinator, remediator) registers
// relays, probes liveness by heartbeat and rank progress, and re-points
// leaves off dead relays mid-transfer.
//
// Every completed leaf is byte-verified against the origin media. With
// -kill the run murders relays mid-transfer and proves remediation moved
// the leaves; with -chaos all inter-tier links run through faultnet
// corruption and resets.
//
// Usage:
//
//	ncmesh -relays 3 -leaves 4 -size 200000 -mode systematic -xor
//	ncmesh -relays 3 -leaves 4 -chaos -kill 2 -snapshot mesh.json
//	ncmesh -metrics 127.0.0.1:9100 -origin-sessions 1 -origin-pace 10ms
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/mesh"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ncmesh:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ncmesh", flag.ContinueOnError)
	relays := fs.Int("relays", 3, "relay count")
	leaves := fs.Int("leaves", 4, "leaf fetcher count")
	n := fs.Int("n", 16, "blocks per segment")
	k := fs.Int("k", 1024, "bytes per block")
	size := fs.Int("size", 200_000, "media bytes")
	modeName := fs.String("mode", "systematic", "origin wire mode: dense or systematic")
	xor := fs.Bool("xor", true, "relays recombine on the GF(2) XOR fast path (XNC2 downstream framing)")
	originSessions := fs.Int("origin-sessions", 1, "origin concurrent-session cap (0 = unlimited)")
	originPace := fs.Duration("origin-pace", 0, "origin pump-round floor, modeling a constrained uplink (0 = unpaced)")
	seed := fs.Int64("seed", 7, "PRNG seed for media, coefficients, and chaos")
	chaos := fs.Bool("chaos", false, "wrap inter-tier links in faultnet corruption + resets")
	kill := fs.Int("kill", 0, "relays to kill mid-transfer (remediation must reroute their leaves)")
	killAt := fs.Int64("kill-at", 30, "total leaf records received before the kill fires")
	warm := fs.Bool("warm", true, "wait for every relay to hold full rank before starting leaves")
	metricsAddr := fs.String("metrics", "", "HTTP address for /metrics, /metrics.json and /debug/pprof/ (empty = off)")
	snapshotPath := fs.String("snapshot", "", "write the final mesh snapshot as JSON to this file (- for stdout)")
	flight := fs.Int("flight", 0,
		"flight-recorder ring capacity in events (0 = off): traces the whole mesh — origin, relays, leaves — dumpable on /debug/flight and SIGQUIT")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall run deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := netio.ParseWireMode(*modeName)
	if err != nil {
		return err
	}
	if *kill >= *relays {
		return fmt.Errorf("-kill %d would leave no relay for %d relays", *kill, *relays)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	media := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(media)

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)
	if err := obs.RegisterRuntime(reg); err != nil {
		return err
	}
	if *flight > 0 {
		trace.Enable(*flight)
		defer trace.Disable()
		quits := make(chan os.Signal, 1)
		signal.Notify(quits, syscall.SIGQUIT)
		defer signal.Stop(quits)
		go func() {
			for range quits {
				os.Stderr.Write(trace.DumpJSON()) //nolint:errcheck — best-effort dump
				fmt.Fprintln(os.Stderr)
			}
		}()
	}

	// The kill trigger rides the leaves' record taps: once the wave has
	// received -kill-at records in total — mid-transfer — the victims die
	// abruptly and the remediator must walk their leaves to survivors.
	var m *mesh.Mesh
	var tapped atomic.Int64
	var killOnce sync.Once
	topo := mesh.Topology{
		Media:             media,
		Params:            rlnc.Params{BlockCount: *n, BlockSize: *k},
		Relays:            *relays,
		Leaves:            *leaves,
		OriginMode:        mode,
		XorRecode:         *xor,
		OriginMaxSessions: *originSessions,
		OriginPace:        *originPace,
		Seed:              *seed,
		Traced:            *flight > 0,
		Registry:          reg,
	}
	if *chaos {
		topo.UpstreamFaults = &faultnet.Config{
			Seed: *seed + 1, CorruptEvery: 9000, ResetEvery: 6000, MaxReadChunk: 2048,
		}
		topo.DownstreamFaults = &faultnet.Config{
			Seed: *seed + 2, CorruptEvery: 9000, ResetEvery: 5000, MaxReadChunk: 2048,
		}
		// Chaos plus kills on loaded CI machines: thresholds wide enough
		// that a starved heartbeat never buries a live relay.
		topo.Heartbeat = 10 * time.Millisecond
		topo.Sweep = 25 * time.Millisecond
		topo.Health = mesh.HealthConfig{SuspectAfter: 250 * time.Millisecond, DeadAfter: time.Second}
	}
	if *kill > 0 {
		victims := make([]string, *kill)
		for i := range victims {
			victims[i] = fmt.Sprintf("relay-%d", i)
		}
		topo.LeafFetchOpts = func(int) []netio.FetcherOption {
			return []netio.FetcherOption{netio.WithRecordTap(func(*rlnc.CodedBlock) {
				if tapped.Add(1) == *killAt {
					killOnce.Do(func() {
						for _, id := range victims {
							if err := m.KillRelay(id); err != nil {
								fmt.Fprintf(os.Stderr, "ncmesh: kill %s: %v\n", id, err)
							}
						}
					})
				}
			})}
		}
	}

	m, err = mesh.New(topo)
	if err != nil {
		return err
	}
	if err := m.Start(ctx); err != nil {
		return err
	}
	defer m.Close()
	fmt.Fprintf(stdout, "mesh up: origin %s (%s, cap %d), %d relays, %d leaves\n",
		m.OriginAddr(), mode, *originSessions, *relays, *leaves)

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		go http.Serve(ml, obs.Handler(reg, func() map[string]any { //nolint:errcheck — exits with the process
			return map[string]any{"mesh": m.Snapshot()}
		}))
		fmt.Fprintf(stdout, "metrics on http://%s/metrics (JSON on /metrics.json, profiles on /debug/pprof/)\n", ml.Addr())
	}

	if *warm {
		if err := waitWarm(ctx, m, *n); err != nil {
			return err
		}
	}

	start := time.Now()
	if err := m.StartLeaves(ctx); err != nil {
		return err
	}
	if err := m.WaitLeaves(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)

	for _, leaf := range m.Leaves() {
		res, err := leaf.Result()
		if err != nil {
			return fmt.Errorf("leaf %d: %w", leaf.ID, err)
		}
		if !bytes.Equal(res.Payload, media) {
			return fmt.Errorf("leaf %d: payload differs from origin media", leaf.ID)
		}
		fmt.Fprintf(stdout, "leaf %d ok: %d records, %d reconnects, %d redirects, %v\n",
			leaf.ID, leaf.Records(), leaf.Reconnects(), leaf.Redirector().Redirects(), leaf.Duration())
	}

	snap := m.Snapshot()
	if *kill > 0 {
		// Leaves can finish before the failure detector's DeadAfter window
		// closes; give the health sweeps time to bury the victims.
		for {
			dead := 0
			for _, mem := range snap.Members {
				if mem.State == mesh.StateDead.String() {
					dead++
				}
			}
			if dead >= *kill {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("killed %d relays but the pool buried only %d: %w", *kill, dead, ctx.Err())
			case <-time.After(10 * time.Millisecond):
			}
			snap = m.Snapshot()
		}
		if snap.Remediations == 0 {
			return fmt.Errorf("relays died but the remediator moved no leaves")
		}
	}
	fmt.Fprintf(stdout, "wave complete in %v: %d leaves byte-identical, %d records tapped, %d blocks recoded, %d remediations\n",
		elapsed, *leaves, snap.Tapped, snap.Emitted, snap.Remediations)

	if *snapshotPath != "" {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if *snapshotPath == "-" {
			_, err = stdout.Write(out)
			return err
		}
		if err := os.WriteFile(*snapshotPath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "snapshot written to %s\n", *snapshotPath)
	}
	return nil
}

// waitWarm blocks until every live relay holds the origin's full rank, so
// the leaf wave measures relay fan-out rather than relay warm-up.
func waitWarm(ctx context.Context, m *mesh.Mesh, blockCount int) error {
	full := m.Origin().Segments() * blockCount
	for {
		warm := 0
		for _, r := range m.Relays() {
			if r.TotalRank() == full {
				warm++
			}
		}
		if warm == len(m.Relays()) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("relays never warmed (%d/%d at full rank): %w", warm, len(m.Relays()), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
