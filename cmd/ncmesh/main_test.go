package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCleanMesh(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "mesh.json")
	var out bytes.Buffer
	err := run([]string{
		"-relays", "2", "-leaves", "2", "-n", "8", "-k", "128", "-size", "4083",
		"-kill", "0", "-snapshot", snap,
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "wave complete") {
		t.Fatalf("no completion line in output:\n%s", out.String())
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"origin", "members", "leaves"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("snapshot missing %q:\n%s", key, raw)
		}
	}
}

func TestRunChaosKill(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-relays", "3", "-leaves", "3", "-n", "8", "-k", "128", "-size", "4083",
		"-chaos", "-kill", "1", "-kill-at", "10",
	}, &out)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "remediations") {
		t.Fatalf("no remediation summary in output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("unknown wire mode accepted")
	}
	if err := run([]string{"-relays", "2", "-kill", "2"}, &out); err == nil {
		t.Fatal("killing every relay accepted")
	}
}
