// Command ncp2p runs an Avalanche-style bulk content distribution session
// on the discrete-event network simulator and compares network coding with
// recoding against the forwarding baselines (paper Sec. 2).
//
// Usage:
//
//	ncp2p -peers 24 -blocks 32 -blocksize 4096
//	ncp2p -mode rlnc -peers 50
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"extremenc/internal/p2p"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncp2p:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncp2p", flag.ContinueOnError)
	peers := fs.Int("peers", 24, "leecher count")
	neighbors := fs.Int("neighbors", 3, "outgoing links per node")
	blocks := fs.Int("blocks", 16, "blocks per segment (n)")
	blockSize := fs.Int("blocksize", 1024, "bytes per block (k)")
	bandwidth := fs.Float64("bw", 8e6, "per-link bandwidth, bits/s")
	latency := fs.Float64("latency", 0.005, "per-link latency, seconds")
	seed := fs.Int64("seed", 7, "PRNG seed")
	mode := fs.String("mode", "all", "rlnc, forward, uncoded, or all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	modes, err := selectModes(*mode)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "mode\tdone\tmean-finish(s)\tmax-finish(s)\tblocks-sent\tuseless\toverhead\t")
	for _, m := range modes {
		res, err := p2p.Run(p2p.Config{
			Params:           rlnc.Params{BlockCount: *blocks, BlockSize: *blockSize},
			Peers:            *peers,
			Neighbors:        *neighbors,
			LinkBandwidthBps: *bandwidth,
			LinkLatency:      *latency,
			Mode:             m,
			Seed:             *seed,
			MaxSimTime:       1e5,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", m, err)
		}
		fmt.Fprintf(tw, "%v\t%d/%d\t%.2f\t%.2f\t%d\t%d\t%.2fx\t\n",
			res.Mode, res.Completed, res.Peers, res.MeanFinish, res.MaxFinish,
			res.BlocksSent, res.BlocksUseless, res.Overhead)
	}
	return tw.Flush()
}

func selectModes(name string) ([]p2p.Mode, error) {
	switch name {
	case "all":
		return []p2p.Mode{p2p.ModeRLNC, p2p.ModeForward, p2p.ModeUncoded}, nil
	case "rlnc":
		return []p2p.Mode{p2p.ModeRLNC}, nil
	case "forward":
		return []p2p.Mode{p2p.ModeForward}, nil
	case "uncoded":
		return []p2p.Mode{p2p.ModeUncoded}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q", name)
	}
}
