package main

import "testing"

func TestRunAllModes(t *testing.T) {
	if err := run([]string{"-peers", "6", "-blocks", "8", "-blocksize", "128"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleMode(t *testing.T) {
	if err := run([]string{"-mode", "rlnc", "-peers", "4", "-blocks", "4", "-blocksize", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-peers", "0"}); err == nil {
		t.Fatal("zero peers accepted")
	}
}
