// Command ncserve streams network-coded content over TCP and fetches it
// back — the paper's streaming-server deployment on real sockets. The
// protocol is pure push: the server sends coded blocks round-robin across
// segments and the client simply hangs up once it can decode everything;
// there are no ACKs, retransmissions, or block-scheduling maps.
//
// Usage:
//
//	ncserve serve -listen 127.0.0.1:9099 -in media.bin -n 32 -k 4096
//	ncserve fetch -addr 127.0.0.1:9099 -out media-copy.bin
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"extremenc/internal/netio"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: ncserve serve|fetch [flags]")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "fetch":
		return runFetch(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("ncserve serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9099", "listen address")
	inPath := fs.String("in", "", "media file to serve")
	n := fs.Int("n", 32, "blocks per segment")
	k := fs.Int("k", 4096, "bytes per block")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("serve requires -in")
	}
	media, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: *n, BlockSize: *k})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("serving %d bytes as %d segments (n=%d, k=%d) on %s\n",
		len(media), srv.Segments(), *n, *k, l.Addr())
	return srv.Serve(l)
}

func runFetch(args []string) error {
	fs := flag.NewFlagSet("ncserve fetch", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9099", "server address")
	outPath := fs.String("out", "", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("fetch requires -out")
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	payload, stats, err := netio.Fetch(conn)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("fetched %d bytes from %d records (%d dependent, %d corrupt, %.1f%% wire overhead)\n",
		len(payload), stats.Records, stats.Dependent, stats.Corrupt,
		(float64(stats.Bytes)/float64(len(payload))-1)*100)
	return nil
}
