// Command ncserve streams network-coded content over TCP and fetches it
// back — the paper's streaming-server deployment on real sockets. The
// protocol is pure push: the server sends coded blocks round-robin across
// segments and the client simply hangs up once it can decode everything;
// there are no ACKs, retransmissions, or block-scheduling maps.
//
// The server multiplexes every connection over one shared encoder with
// bounded per-session queues (slow clients shed blocks instead of stalling
// the encoder), per-record write deadlines, and an optional HTTP
// observability endpoint: Prometheus text on /metrics, a JSON snapshot
// (including per-session detail) on /metrics.json, and the pprof profiles
// under /debug/pprof/. -log-every additionally emits a structured progress
// line to stderr at a fixed interval.
//
// Usage:
//
//	ncserve serve -listen 127.0.0.1:9099 -in media.bin -n 32 -k 4096 \
//	    -queue 64 -deadline 5s -metrics 127.0.0.1:9100 -log-every 10s
//	ncserve fetch -addr 127.0.0.1:9099 -out media-copy.bin -timeout 30s \
//	    -attempts 10 -backoff 50ms -backoff-max 2s -resume fetch.state
//	ncserve smoke -clients 4 -mode systematic
//	ncserve metrics-smoke
//	ncserve xor-smoke
//
// -mode selects the wire discipline the server declares in every handshake:
// dense (default) streams dense GF(2^8) blocks; systematic streams each
// segment as a systematic sweep, GF(2) XOR repair blocks in the compact XNC2
// encoding, and a dense tail — the receiver decodes the binary prefix on an
// XOR-only fast path. xor-smoke is the end-to-end gate for that mode: a
// systematic serve, a clean fetch plus a lossy faultnet fetch, and a scrape
// asserting the rlnc.xor_absorb stage actually saw traffic.
//
// The fetch client reconnects on resets and framing loss with capped
// exponential backoff, carrying decoder rank across connections; -resume
// persists that rank to disk when the attempt budget runs out so a later
// invocation continues where this one stopped.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: ncserve serve|fetch|smoke [flags]")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "fetch":
		return runFetch(args[1:])
	case "smoke":
		return runSmoke(args[1:])
	case "metrics-smoke":
		return runMetricsSmoke(args[1:])
	case "xor-smoke":
		return runXorSmoke(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// serveFlags are the session-layer tunables shared by serve and smoke.
type serveFlags struct {
	n, k     int
	queue    int
	deadline time.Duration
	retries  int
	maxSess  int
	mode     string
	shards   int
	fanout   string
}

func (sf *serveFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&sf.n, "n", 32, "blocks per segment")
	fs.IntVar(&sf.k, "k", 4096, "bytes per block")
	fs.IntVar(&sf.queue, "queue", 64, "per-session send queue depth (records)")
	fs.DurationVar(&sf.deadline, "deadline", 5*time.Second, "per-record write deadline (0 disables)")
	fs.IntVar(&sf.retries, "retries", 1, "extra deadline windows before a timed-out session is dropped")
	fs.IntVar(&sf.maxSess, "max-sessions", 0, "concurrent session cap (0 = unlimited)")
	fs.IntVar(&sf.shards, "shards", 1, "independent encoder-pump shards")
	fs.StringVar(&sf.fanout, "fanout", netio.FanoutAmortized.String(), "pump fan-out rung: amortized or record")
	sf.registerMode(fs)
}

func (sf *serveFlags) registerMode(fs *flag.FlagSet) {
	fs.StringVar(&sf.mode, "mode", "dense", "wire mode: dense or systematic (systematic sweep + GF(2) XOR repair + dense tail)")
}

func (sf *serveFlags) options() ([]netio.ServerOption, error) {
	mode, err := netio.ParseWireMode(sf.mode)
	if err != nil {
		return nil, err
	}
	opts := []netio.ServerOption{
		netio.WithQueueDepth(sf.queue),
		netio.WithWriteDeadline(sf.deadline),
		netio.WithWriteRetries(sf.retries),
		netio.WithMaxSessions(sf.maxSess),
		netio.WithWireMode(mode),
	}
	if sf.shards > 0 {
		opts = append(opts, netio.WithPumpShards(sf.shards))
	}
	if sf.fanout != "" {
		fanout, err := netio.ParseFanoutMode(sf.fanout)
		if err != nil {
			return nil, err
		}
		opts = append(opts, netio.WithFanout(fanout))
	}
	return opts, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("ncserve serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9099", "listen address")
	inPath := fs.String("in", "", "media file to serve")
	metricsAddr := fs.String("metrics", "", "HTTP address for /metrics, /metrics.json and /debug/pprof/ (empty = off)")
	logEvery := fs.Duration("log-every", 0, "interval between structured progress lines on stderr (0 = off)")
	drain := fs.Duration("drain", 10*time.Second,
		"graceful drain deadline on SIGINT/SIGTERM: in-flight sessions run to rank completion while new connections get a structured refusal (0 = immediate shutdown)")
	drainRedirect := fs.String("drain-redirect", "",
		"address carried in REDIRECT admission decisions while draining (empty = refuse with BUSY)")
	brownout := fs.Duration("brownout", 0,
		"brownout controller sampling interval (0 = off): under sustained pressure the server paces its pumps, leans the systematic schedule, then refuses new sessions, stepping back down as pressure lifts")
	flight := fs.Int("flight", 16384,
		"flight-recorder ring capacity in events (0 = off): traced sessions and admission/brownout/shed events land here, dumpable on /debug/flight and SIGQUIT")
	var sf serveFlags
	sf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("serve requires -in")
	}
	media, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	// One registry carries every metric the process produces; installing it
	// as the span sink turns on the stage-latency histograms.
	reg := obs.NewRegistry()
	obs.SetSink(reg)
	if err := obs.RegisterRuntime(reg); err != nil {
		return err
	}
	opts, err := sf.options()
	if err != nil {
		return err
	}
	opts = append(opts, netio.WithMetricsRegistry(reg))
	if *flight > 0 {
		trace.Enable(*flight)
		opts = append(opts, netio.WithServerTrace("ncserve"))
		// SIGQUIT dumps the flight ring to stderr without stopping the
		// server — the classic in-flight postmortem signal.
		quits := make(chan os.Signal, 1)
		signal.Notify(quits, syscall.SIGQUIT)
		go func() {
			for range quits {
				os.Stderr.Write(trace.DumpJSON()) //nolint:errcheck — best-effort dump
				fmt.Fprintln(os.Stderr)
			}
		}()
	}
	if *brownout > 0 {
		opts = append(opts, netio.WithBrownout(netio.BrownoutConfig{
			Interval: *brownout,
			OnTransition: func(from, to netio.BrownoutRung, pressure float64) {
				fmt.Fprintf(os.Stderr, "ncserve: brownout %s -> %s (pressure %.2f)\n", from, to, pressure)
			},
		}))
	}
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: sf.n, BlockSize: sf.k}, opts...)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()

	// The first SIGINT/SIGTERM starts a graceful drain bounded by -drain; a
	// second signal (or -drain 0) shuts down immediately, shedding whatever
	// the ledger then reports as shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		select {
		case <-ctx.Done():
			return
		case sig := <-sigs:
			if *drain <= 0 {
				cancel()
				return
			}
			fmt.Fprintf(os.Stderr, "ncserve: %v: draining for up to %v (redirect %q); signal again to shut down now\n",
				sig, *drain, *drainRedirect)
			dctx, dcancel := context.WithTimeout(ctx, *drain)
			defer dcancel()
			go func() {
				select {
				case <-sigs:
					dcancel()
				case <-dctx.Done():
				}
			}()
			if err := srv.Drain(dctx, *drainRedirect); err != nil {
				fmt.Fprintf(os.Stderr, "ncserve: drain: %v\n", err)
			}
			cancel()
		}
	}()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		go http.Serve(ml, obs.Handler(reg, func() map[string]any { //nolint:errcheck — exits with the process
			return snapshotJSON(srv.Snapshot())
		}))
		fmt.Printf("metrics on http://%s/metrics (JSON on /metrics.json, profiles on /debug/pprof/)\n", ml.Addr())
	}
	if *logEvery > 0 {
		go obs.LogEvery(ctx, os.Stderr, *logEvery, reg)
	}

	fmt.Printf("serving %d bytes as %d segments (n=%d, k=%d, mode=%s) on %s\n",
		len(media), srv.Segments(), sf.n, sf.k, srv.Mode(), l.Addr())
	err = srv.Serve(ctx, l)
	if snap := srv.Snapshot(); ctx.Err() != nil || snap.Draining {
		// Interrupted: the server already shut down — gracefully when a
		// drain ran. The exit ledger must balance exactly: every offered
		// block was either fully written or explicitly shed.
		if snap.Draining {
			fmt.Printf("drain ledger: offered %d = sent %d + shed %d (consistent=%v), %d sessions served, %d busy, %d redirected, %d bytes\n",
				snap.BlocksOffered, snap.BlocksSent, snap.BlocksShed, snap.Consistent(),
				snap.SessionsTotal, snap.AdmissionBusy, snap.AdmissionRedirected, snap.BytesSent)
			return nil
		}
		fmt.Printf("shutdown: %d sessions served, %d blocks sent, %d shed, %d bytes\n",
			snap.SessionsTotal, snap.BlocksSent, snap.BlocksShed, snap.BytesSent)
		return nil
	}
	return err
}

// snapshotJSON flattens a netio.Snapshot for stable JSON field names; it is
// merged into the /metrics.json document alongside the registry metrics.
func snapshotJSON(s netio.Snapshot) map[string]any {
	per := make([]map[string]any, 0, len(s.PerSession))
	for _, ss := range s.PerSession {
		per = append(per, map[string]any{
			"id": ss.ID, "shard": ss.Shard, "addr": ss.Addr,
			"queue_len": ss.QueueLen, "queue_cap": ss.QueueCap,
			"offered": ss.Offered, "sent": ss.Sent, "shed": ss.Shed,
			"bytes": ss.Bytes, "duration_s": ss.Duration.Seconds(),
		})
	}
	shards := make([]map[string]any, 0, len(s.Shards))
	for _, sh := range s.Shards {
		shards = append(shards, map[string]any{
			"shard": sh.Shard, "sessions": sh.Sessions,
			"blocks_encoded": sh.BlocksEncoded, "blocks_offered": sh.BlocksOffered,
			"blocks_sent": sh.BlocksSent, "blocks_shed": sh.BlocksShed,
			"bytes_sent": sh.BytesSent, "encode_stall_s": sh.EncodeStall.Seconds(),
		})
	}
	return map[string]any{
		"version":              s.Version,
		"mode":                 s.Mode.String(),
		"sessions":             s.Sessions,
		"sessions_total":       s.SessionsTotal,
		"sessions_rejected":    s.SessionsRejected,
		"session_seconds":      s.SessionSeconds,
		"admission_busy":       s.AdmissionBusy,
		"admission_redirected": s.AdmissionRedirected,
		"brownout_rung":        s.BrownoutRung,
		"brownout_transitions": s.BrownoutTransitions,
		"draining":             s.Draining,
		"blocks_encoded":       s.BlocksEncoded,
		"blocks_offered":       s.BlocksOffered,
		"blocks_sent":          s.BlocksSent,
		"blocks_shed":          s.BlocksShed,
		"bytes_sent":           s.BytesSent,
		"encode_stall_s":       s.EncodeStall.Seconds(),
		"max_stall_s":          s.MaxEncodeStall.Seconds(),
		"shards":               shards,
		"per_session":          per,
	}
}

func runFetch(args []string) error {
	fs := flag.NewFlagSet("ncserve fetch", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9099", "server address")
	outPath := fs.String("out", "", "output file")
	timeout := fs.Duration("timeout", 0, "overall fetch timeout (0 = none)")
	attempts := fs.Int("attempts", 10, "connection attempt budget, including the first (0 = unlimited)")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "initial reconnect backoff (doubles per retry)")
	backoffMax := fs.Duration("backoff-max", 2*time.Second, "reconnect backoff cap")
	resumePath := fs.String("resume", "", "resume-state file: loaded if present, written when the budget runs out, removed on success")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("fetch requires -out")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []netio.FetcherOption{
		netio.WithMaxAttempts(*attempts),
		netio.WithBackoff(*backoff, *backoffMax),
	}
	if *resumePath != "" {
		if state, err := os.ReadFile(*resumePath); err == nil {
			opts = append(opts, netio.WithResumeState(state))
			fmt.Printf("resuming from %s (%d bytes of saved rank)\n", *resumePath, len(state))
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	f := netio.NewFetcher(func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", *addr)
	}, opts...)
	res, err := f.Fetch(ctx)
	stats := res.Stats
	if err != nil {
		// Degrade gracefully: report the rank already earned and, with
		// -resume, persist it so the next invocation picks up from here.
		total := 0
		for _, r := range res.Ranks {
			total += r
		}
		fmt.Fprintf(os.Stderr, "fetch failed after %d attempts: %d/%d segments decoded, total rank %d\n",
			stats.Attempts, len(res.Segments), len(res.Ranks), total)
		if *resumePath != "" && total > 0 {
			if state, serr := f.State(); serr == nil {
				if werr := os.WriteFile(*resumePath, state, 0o644); werr == nil {
					fmt.Fprintf(os.Stderr, "progress saved to %s; rerun to resume\n", *resumePath)
				}
			}
		}
		return err
	}
	if err := os.WriteFile(*outPath, res.Payload, 0o644); err != nil {
		return err
	}
	if *resumePath != "" {
		os.Remove(*resumePath)
	}
	fmt.Printf("fetched %d bytes in %s mode from %d records (%d dependent, %.1f%% wire overhead)\n",
		len(res.Payload), res.Mode, stats.Records, stats.Dependent,
		(float64(stats.Bytes)/float64(len(res.Payload))-1)*100)
	fmt.Printf("faults: %d reconnects, %d framing resyncs, %d corrupt, %d malformed, %d bad-segment, %d resumed rank, %d bytes discarded\n",
		stats.Reconnects, stats.FramingResyncs, stats.Corrupt, stats.Malformed,
		stats.BadSegment, stats.ResumedRank, stats.BytesDiscarded)
	return nil
}

// runSmoke boots a server on a loopback listener, fetches the object back
// with several concurrent clients, and checks both the payloads and the
// metrics accounting — the CI end-to-end gate (`make serve-smoke`).
func runSmoke(args []string) error {
	fs := flag.NewFlagSet("ncserve smoke", flag.ContinueOnError)
	clients := fs.Int("clients", 4, "concurrent fetchers")
	size := fs.Int("size", 200_000, "media bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "overall smoke deadline")
	var sf serveFlags
	sf.n, sf.k = 16, 1024
	fs.IntVar(&sf.queue, "queue", 64, "per-session send queue depth (records)")
	sf.registerMode(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	media := make([]byte, *size)
	rand.New(rand.NewSource(42)).Read(media)
	sf.deadline, sf.retries = 2*time.Second, 1
	opts, err := sf.options()
	if err != nil {
		return err
	}
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: sf.n, BlockSize: sf.k}, opts...)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()

	var wg sync.WaitGroup
	errs := make([]error, *clients)
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			payload, _, err := netio.Fetch(ctx, conn)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				errs[i] = fmt.Errorf("client %d: payload differs", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	srv.Shutdown()
	l.Close()
	<-serveDone

	snap := srv.Snapshot()
	// All sessions have ended, so the strict ledger equality must hold.
	if !snap.Consistent() {
		return fmt.Errorf("accounting mismatch: offered %d != sent %d + shed %d",
			snap.BlocksOffered, snap.BlocksSent, snap.BlocksShed)
	}
	if snap.SessionsTotal != int64(*clients) {
		return fmt.Errorf("sessions_total = %d, want %d", snap.SessionsTotal, *clients)
	}
	fmt.Printf("smoke ok: %d clients, mode %s, %d blocks sent, %d shed, %d bytes, stall %s\n",
		*clients, snap.Mode, snap.BlocksSent, snap.BlocksShed, snap.BytesSent, snap.EncodeStall)
	return nil
}

// runMetricsSmoke is the observability end-to-end gate (`make
// metrics-smoke`): it boots a server with the metrics endpoint enabled,
// fetches the object back over loopback with a registry-attached resilient
// client, then scrapes /metrics over real HTTP, parses the exposition with
// the in-repo parser, and fails unless the core series are present and
// nonzero — server blocks, fetcher records, live histograms — and
// /metrics.json and /debug/pprof/ answer on their routes.
func runMetricsSmoke(args []string) error {
	fs := flag.NewFlagSet("ncserve metrics-smoke", flag.ContinueOnError)
	size := fs.Int("size", 200_000, "media bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)
	if err := obs.RegisterRuntime(reg); err != nil {
		return err
	}

	media := make([]byte, *size)
	rand.New(rand.NewSource(43)).Read(media)
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: 16, BlockSize: 1024},
		netio.WithMetricsRegistry(reg))
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()

	ml, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ml.Close()
	go http.Serve(ml, obs.Handler(reg, func() map[string]any { //nolint:errcheck — exits with the process
		return snapshotJSON(srv.Snapshot())
	}))

	f := netio.NewFetcher(func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	}, netio.WithMetrics(reg))
	res, err := f.Fetch(ctx)
	if err != nil {
		return fmt.Errorf("loopback fetch: %w", err)
	}
	if !bytes.Equal(res.Payload, media) {
		return fmt.Errorf("loopback fetch: payload differs")
	}
	srv.Shutdown()
	l.Close()
	<-serveDone

	base := "http://" + ml.Addr().String()
	samples, err := scrapeMetrics(ctx, base+"/metrics")
	if err != nil {
		return err
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	for _, series := range []string{
		"netio_blocks_encoded", "netio_blocks_sent", "netio_bytes_sent",
		"netio_sessions_total", "fetch_attempts", "fetch_records", "fetch_bytes",
		"runtime_goroutines", "runtime_heap_alloc_bytes", "runtime_uptime_seconds",
	} {
		if byKey[series] <= 0 {
			return fmt.Errorf("scrape: series %s = %v, want > 0", series, byKey[series])
		}
	}
	histograms := 0
	for _, name := range reg.Names() {
		if v, ok := reg.HistogramView(name); ok && v.Count > 0 && v.P50 > 0 {
			histograms++
		}
	}
	if histograms < 3 {
		return fmt.Errorf("scrape: only %d populated stage histograms, want >= 3", histograms)
	}
	for path, wantType := range map[string]string{
		"/metrics.json":             "application/json",
		"/debug/flight":             "application/json",
		"/debug/pprof/":             "text/html",
		"/debug/pprof/heap?debug=1": "text/plain",
	} {
		if err := checkRoute(ctx, base+path, wantType); err != nil {
			return err
		}
	}
	if err := checkRouteStatus(ctx, base+"/nope", http.StatusNotFound); err != nil {
		return err
	}
	// The exposition routes must refuse mutations with a correct 405 (not the
	// catch-all 404) and stamp nosniff on every response.
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/flight"} {
		if err := checkMethodStatus(ctx, http.MethodPost, base+path, http.StatusMethodNotAllowed); err != nil {
			return err
		}
	}
	if err := checkHeader(ctx, base+"/metrics", "X-Content-Type-Options", "nosniff"); err != nil {
		return err
	}
	fmt.Printf("metrics-smoke ok: %d series scraped, %d populated histograms, blocks sent %.0f, fetch records %.0f\n",
		len(samples), histograms, byKey["netio_blocks_sent"], byKey["fetch_records"])
	return nil
}

// runXorSmoke is the end-to-end gate for the systematic + XOR wire mode
// (`make xor-smoke`): a systematic server, one clean loopback fetch and one
// through a lossy faultnet link, both byte-verified — then a registry scrape
// that must show the rlnc.xor_absorb stage with nonzero traffic, proving the
// decoders actually rode the GF(2) fast path instead of silently falling
// back to dense elimination.
func runXorSmoke(args []string) error {
	fs := flag.NewFlagSet("ncserve xor-smoke", flag.ContinueOnError)
	size := fs.Int("size", 200_000, "media bytes")
	timeout := fs.Duration("timeout", 60*time.Second, "overall smoke deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	media := make([]byte, *size)
	rand.New(rand.NewSource(44)).Read(media)
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: 16, BlockSize: 1024},
		netio.WithWireMode(netio.ModeSystematic), netio.WithMetricsRegistry(reg))
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()

	// Leg 1: clean loopback — the systematic sweep should dominate.
	clean := netio.NewFetcher(func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	res, err := clean.Fetch(ctx)
	if err != nil {
		return fmt.Errorf("clean systematic fetch: %w", err)
	}
	if res.Mode != netio.ModeSystematic {
		return fmt.Errorf("clean fetch negotiated %s, want systematic", res.Mode)
	}
	if !bytes.Equal(res.Payload, media) {
		return fmt.Errorf("clean systematic fetch: payload differs")
	}

	// Leg 2: the loss sweep — corruption and resets force the XOR repair and
	// reconnect machinery through the same negotiated mode.
	dial, ctr := faultnet.Dialer(faultnet.Config{
		Seed:         45,
		CorruptEvery: 4000,
		ResetEvery:   60000,
		MaxReadChunk: 512,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	lossy := netio.NewFetcher(dial, netio.WithBackoff(time.Millisecond, 20*time.Millisecond))
	lres, err := lossy.Fetch(ctx)
	if err != nil {
		return fmt.Errorf("lossy systematic fetch: %w (faults %+v)", err, ctr.View())
	}
	if !bytes.Equal(lres.Payload, media) {
		return fmt.Errorf("lossy systematic fetch: payload differs")
	}
	srv.Shutdown()
	l.Close()
	<-serveDone

	// The proof obligation: the GF(2) fast path must have absorbed records.
	v, ok := reg.HistogramView("rlnc.xor_absorb")
	if !ok || v.Count == 0 {
		return fmt.Errorf("rlnc.xor_absorb stage saw no traffic (ok=%v): XOR fast path never engaged", ok)
	}
	// And it must survive the text exposition round trip, where the CI
	// scrape reads it.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		return err
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		return err
	}
	count := 0.0
	for _, s := range samples {
		if s.Key() == "rlnc_xor_absorb_count" {
			count = s.Value
		}
	}
	if count <= 0 {
		return fmt.Errorf("scrape: rlnc_xor_absorb_count = %v, want > 0", count)
	}
	fmt.Printf("xor-smoke ok: mode %s, %d xor absorbs, clean %d records, lossy %d records (%d corrupt, %d resyncs, faults %+v)\n",
		srv.Mode(), v.Count, res.Stats.Records, lres.Stats.Records,
		lres.Stats.Corrupt, lres.Stats.FramingResyncs, ctr.View())
	return nil
}

// scrapeMetrics GETs a /metrics URL and parses the Prometheus text format
// with the in-repo parser.
func scrapeMetrics(ctx context.Context, url string) ([]obs.TextSample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("scrape %s: Content-Type %q, want text/plain", url, ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return samples, nil
}

// checkRoute GETs url and verifies a 200 with the expected Content-Type
// prefix.
func checkRoute(ctx context.Context, url, wantType string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantType) {
		return fmt.Errorf("GET %s: Content-Type %q, want %s", url, ct, wantType)
	}
	return nil
}

// checkRouteStatus GETs url and verifies the response status code.
func checkRouteStatus(ctx context.Context, url string, want int) error {
	return checkMethodStatus(ctx, http.MethodGet, url, want)
}

// checkMethodStatus issues method against url and verifies the status code.
func checkMethodStatus(ctx context.Context, method, url string, want int) error {
	req, err := http.NewRequestWithContext(ctx, method, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, url, err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: status %d, want %d", method, url, resp.StatusCode, want)
	}
	return nil
}

// checkHeader GETs url and verifies one response header value.
func checkHeader(ctx context.Context, url, header, want string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(header); got != want {
		return fmt.Errorf("GET %s: header %s = %q, want %q", url, header, got, want)
	}
	return nil
}
