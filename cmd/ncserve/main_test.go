package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/netio"
	"extremenc/internal/rlnc"
)

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"serve"}); err == nil {
		t.Fatal("serve without -in accepted")
	}
	if err := run([]string{"fetch"}); err == nil {
		t.Fatal("fetch without -out accepted")
	}
	if err := run([]string{"smoke", "-bogus"}); err == nil {
		t.Fatal("bad smoke flag accepted")
	}
	if err := run([]string{"serve", "-in", "/nonexistent"}); err == nil {
		t.Fatal("missing media accepted")
	}
	if err := run([]string{"smoke", "-mode", "turbo"}); err == nil {
		t.Fatal("unknown wire mode accepted")
	}
}

// TestXorSmokeSubcommand runs the systematic + XOR end-to-end gate
// in-process (the same path as `make xor-smoke`).
func TestXorSmokeSubcommand(t *testing.T) {
	if err := run([]string{"xor-smoke", "-size", "60000"}); err != nil {
		t.Fatal(err)
	}
}

// TestFetchAgainstInProcessServer runs the fetch subcommand against a
// server started via the library (the serve subcommand blocks forever, so
// it is covered by its flag-validation paths above).
func TestFetchAgainstInProcessServer(t *testing.T) {
	media := make([]byte, 50000)
	rand.New(rand.NewSource(3)).Read(media)
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: 8, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.Serve(context.Background(), l)
	defer func() {
		srv.Shutdown()
		l.Close()
	}()

	out := filepath.Join(t.TempDir(), "out.bin")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"fetch", "-addr", l.Addr().String(), "-out", out})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fetch did not complete")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, media) {
		t.Fatal("fetched media differs")
	}
}

// TestFetchResumeFlow exercises the fetch subcommand's degradation path: a
// single-attempt fetch through a resetting link fails but saves its decoder
// rank to the -resume file, and a second unlimited-attempt invocation loads
// it, finishes, and removes it.
func TestFetchResumeFlow(t *testing.T) {
	media := make([]byte, 50000)
	rand.New(rand.NewSource(4)).Read(media)
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: 8, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	// Reset every server session after ~20–40KB: less than the object, so a
	// one-attempt fetch can never finish.
	l := faultnet.NewListener(inner, faultnet.Config{Seed: 13, ResetEvery: 20000})
	go srv.Serve(context.Background(), l)
	defer func() {
		srv.Shutdown()
		l.Close()
	}()

	dir := t.TempDir()
	out := filepath.Join(dir, "out.bin")
	state := filepath.Join(dir, "fetch.state")
	err = run([]string{"fetch", "-addr", inner.Addr().String(), "-out", out,
		"-attempts", "1", "-resume", state})
	if err == nil {
		t.Fatal("one-attempt fetch through a resetting link succeeded")
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("failed fetch saved no resume state: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"fetch", "-addr", inner.Addr().String(), "-out", out,
			"-attempts", "0", "-backoff", "1ms", "-resume", state})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("resumed fetch did not complete")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, media) {
		t.Fatal("resumed fetch media differs")
	}
	if _, err := os.Stat(state); !os.IsNotExist(err) {
		t.Fatal("resume state not removed after success")
	}
}

// TestSmokeSubcommand runs the CI smoke gate end to end in-process.
func TestSmokeSubcommand(t *testing.T) {
	if err := run([]string{"smoke", "-clients", "3", "-size", "60000"}); err != nil {
		t.Fatal(err)
	}
}
