package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"extremenc/internal/netio"
	"extremenc/internal/rlnc"
)

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"serve"}); err == nil {
		t.Fatal("serve without -in accepted")
	}
	if err := run([]string{"fetch"}); err == nil {
		t.Fatal("fetch without -out accepted")
	}
	if err := run([]string{"smoke", "-bogus"}); err == nil {
		t.Fatal("bad smoke flag accepted")
	}
	if err := run([]string{"serve", "-in", "/nonexistent"}); err == nil {
		t.Fatal("missing media accepted")
	}
}

// TestFetchAgainstInProcessServer runs the fetch subcommand against a
// server started via the library (the serve subcommand blocks forever, so
// it is covered by its flag-validation paths above).
func TestFetchAgainstInProcessServer(t *testing.T) {
	media := make([]byte, 50000)
	rand.New(rand.NewSource(3)).Read(media)
	srv, err := netio.NewServer(media, rlnc.Params{BlockCount: 8, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.Serve(context.Background(), l)
	defer func() {
		srv.Shutdown()
		l.Close()
	}()

	out := filepath.Join(t.TempDir(), "out.bin")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"fetch", "-addr", l.Addr().String(), "-out", out})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fetch did not complete")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, media) {
		t.Fatal("fetched media differs")
	}
}

// TestSmokeSubcommand runs the CI smoke gate end to end in-process.
func TestSmokeSubcommand(t *testing.T) {
	if err := run([]string{"smoke", "-clients", "3", "-size", "60000"}); err != nil {
		t.Fatal(err)
	}
}
