// Command ncsoak is the randomized chaos soak: a seeded schedule of leaf
// waves, graceful drain-restarts, abrupt relay kills, and slow-client
// brownout pressure runs against an in-process recoding mesh whose links all
// pass through faultnet corruption and resets. The soak is a property
// checker, not a benchmark — after the schedule it asserts the degradation
// invariants the paper's delivery model promises:
//
//   - every completed leaf transfer is byte-identical to the origin media
//   - decoder rank never regresses across reconnects, redirects, or
//     remediations (mesh.rank_regressions_total == 0)
//   - every relay's traffic ledger balances exactly — offered == sent +
//     shed — across every server it ran, drained, killed, or survived
//   - the brownout ladder engaged at least one rung under pressure and
//     stepped back to off when the pressure lifted
//   - the process leaks no goroutines: after teardown the count returns to
//     its pre-mesh level
//
// The schedule is fully determined by -seed, so any failure reproduces from
// its seed. With -smoke the run pins seed and event count to a fixed,
// CI-sized slice (~a dozen events, well under 30s); that is the `make
// soak-smoke` gate.
//
// Usage:
//
//	ncsoak -smoke
//	ncsoak -seed 42 -events 30 -relays 4 -v
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/mesh"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak:", err)
		os.Exit(1)
	}
}

// event is one step of the soak schedule.
type event int

const (
	evLeafWave event = iota // a wave of leaves fetches to completion
	evDrain                 // graceful drain-restart of one relay mid-wave
	evStall                 // slow clients pin a relay until brownout engages
	evKill                  // abrupt relay kill mid-wave (remediation reroutes)
)

func (e event) String() string {
	return [...]string{"leaf-wave", "drain-restart", "brownout-stall", "kill"}[e]
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ncsoak", flag.ContinueOnError)
	smoke := fs.Bool("smoke", false, "fixed seed and event count: the deterministic CI slice")
	seed := fs.Int64("seed", 1, "schedule / media / chaos seed (any failure reproduces from it)")
	events := fs.Int("events", 20, "schedule length")
	relays := fs.Int("relays", 3, "relay count (at most relays-2 are ever killed)")
	n := fs.Int("n", 16, "blocks per segment")
	k := fs.Int("k", 512, "bytes per block")
	size := fs.Int("size", 28_000, "media bytes")
	timeout := fs.Duration("timeout", 4*time.Minute, "overall soak deadline")
	verbose := fs.Bool("v", false, "log every event and brownout transition")
	summaryPath := fs.String("summary", "", "write a machine-readable JSON run summary to this path")
	flightRing := fs.Int("flight", 1<<16, "flight-recorder ring capacity in events (0 = off)")
	flightPath := fs.String("flight-out", "flight-soak.json", "write the flight-recorder dump here when the soak fails")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		*seed, *events, *relays = 1, 12, 3
	}
	if *relays < 3 {
		return fmt.Errorf("-relays %d: the soak needs at least 3 (drains redirect to a survivor)", *relays)
	}

	// The flight ring records admission, brownout, shed, reconnect, and fault
	// events through the whole schedule; a failing soak dumps it for the
	// postmortem alongside the reproducing seed.
	if *flightRing > 0 {
		trace.Enable(*flightRing)
		defer trace.Disable()
	}
	sum := &runSummary{Seed: *seed, Invariants: map[string]bool{}}
	err := soakMain(*seed, *events, *relays, *n, *k, *size, *timeout, *verbose, stdout, sum)
	sum.OK = err == nil
	if err != nil {
		sum.Error = err.Error()
		if *flightRing > 0 && *flightPath != "" {
			if werr := os.WriteFile(*flightPath, trace.DumpJSON(), 0o644); werr == nil {
				fmt.Fprintf(stdout, "flight dump written to %s\n", *flightPath)
			}
		}
	}
	if *summaryPath != "" {
		b, merr := json.MarshalIndent(sum, "", " ")
		if merr != nil {
			return errors.Join(err, merr)
		}
		b = append(b, '\n')
		if werr := os.WriteFile(*summaryPath, b, 0o644); werr != nil {
			return errors.Join(err, werr)
		}
	}
	return err
}

// runSummary is the machine-readable outcome of one soak: the reproducing
// seed, the schedule shape, the per-invariant verdicts, and the degradation
// headline numbers — written to -summary and uploaded as a CI artifact.
type runSummary struct {
	OK         bool            `json:"ok"`
	Seed       int64           `json:"seed"`
	Events     int             `json:"events"`
	ElapsedS   float64         `json:"elapsed_s"`
	LeavesDone int             `json:"leaves_done"`
	Drains     int             `json:"drains"`
	Kills      int             `json:"kills"`
	Stalls     int             `json:"stall_waves"`
	Redirects  int             `json:"redirects_honored"`
	PeakRung   int             `json:"brownout_peak_rung"`
	Invariants map[string]bool `json:"invariants"`
	Error      string          `json:"error,omitempty"`
}

func soakMain(seedV int64, eventsV, relaysV, nV, kV, sizeV int, timeoutV time.Duration, verboseV bool, stdout io.Writer, sum *runSummary) error {
	seed, events, relays, n, k, size := &seedV, &eventsV, &relaysV, &nV, &kV, &sizeV
	timeout, verbose := &timeoutV, &verboseV

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	rng := rand.New(rand.NewSource(*seed))
	media := make([]byte, *size)
	rng.Read(media)
	schedule := makeSchedule(rng, *events)
	sum.Events = len(schedule)

	// The leak check brackets the whole mesh lifetime.
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	topo := mesh.Topology{
		Media:      media,
		Params:     rlnc.Params{BlockCount: *n, BlockSize: *k},
		Relays:     *relays,
		OriginMode: netio.ModeSystematic,
		XorRecode:  true,
		Seed:       *seed,
		Registry:   reg,
		Heartbeat:  10 * time.Millisecond,
		Sweep:      25 * time.Millisecond,
		Health:     mesh.HealthConfig{SuspectAfter: 500 * time.Millisecond, DeadAfter: 2 * time.Second},
		UpstreamFaults: &faultnet.Config{
			Seed: *seed + 1, CorruptEvery: 9000, ResetEvery: 6000, MaxReadChunk: 2048,
		},
		DownstreamFaults: &faultnet.Config{
			Seed: *seed + 2, CorruptEvery: 9000, ResetEvery: 5000, MaxReadChunk: 2048,
		},
		// Every relay (and every replacement server a drain installs) runs
		// the brownout controller with a twitchy interval so stall waves
		// engage the ladder in milliseconds, plus a mild pace so drains land
		// mid-transfer rather than after the wave has already finished.
		RelayServerOpts: func(relay int) []netio.ServerOption {
			opts := []netio.ServerOption{
				netio.WithServePace(2 * time.Millisecond),
				netio.WithEncodeBatch(2),
				netio.WithQueueDepth(4),
				netio.WithRetryAfter(5 * time.Millisecond),
			}
			bo := netio.BrownoutConfig{
				Interval: 10 * time.Millisecond,
				StepUp:   0.5,
				StepDown: 0.05,
				Hold:     2,
			}
			if *verbose {
				bo.OnTransition = func(from, to netio.BrownoutRung, p float64) {
					fmt.Fprintf(stdout, "  brownout relay-%d: %s -> %s (pressure %.2f)\n", relay, from, to, p)
				}
			}
			return append(opts, netio.WithBrownout(bo))
		},
	}
	m, err := mesh.New(topo)
	if err != nil {
		return err
	}
	if err := m.Start(ctx); err != nil {
		return err
	}
	defer m.Close()

	s := &soak{
		m: m, media: media, rng: rng, stdout: stdout, verbose: *verbose,
		maxKills: *relays - 2,
	}
	if err := s.warm(ctx, *n); err != nil {
		return err
	}

	start := time.Now()
	for i, ev := range schedule {
		if *verbose {
			fmt.Fprintf(stdout, "event %d/%d: %s\n", i+1, len(schedule), ev)
		}
		if err := s.step(ctx, ev); err != nil {
			return fmt.Errorf("event %d (%s, seed %d): %w", i+1, ev, *seed, err)
		}
	}
	elapsed := time.Since(start)
	sum.ElapsedS = elapsed.Seconds()
	sum.LeavesDone, sum.Drains, sum.Kills = s.leavesDone, s.drains, s.kills
	sum.Stalls, sum.Redirects, sum.PeakRung = s.stalls, s.redirects, s.peakRung
	sum.Invariants["payloads_identical"] = true // every wave byte-verified in step

	if err := s.checkInvariants(ctx, reg, sum); err != nil {
		return fmt.Errorf("invariant (seed %d): %w", *seed, err)
	}

	// Teardown, then the goroutine count must settle back to baseline. The
	// sink is detached first so registry closures don't pin the mesh.
	m.Close()
	obs.SetSink(nil)
	if err := waitGoroutines(baseGoroutines+3, 10*time.Second); err != nil {
		sum.Invariants["no_goroutine_leak"] = false
		return fmt.Errorf("leak (seed %d): %w", *seed, err)
	}
	sum.Invariants["no_goroutine_leak"] = true

	fmt.Fprintf(stdout,
		"soak ok (seed %d): %d events in %v — %d leaves byte-identical, %d drains, %d kills, %d stall waves, %d redirects honored, brownout peak rung %d\n",
		*seed, len(schedule), elapsed.Round(time.Millisecond), s.leavesDone, s.drains, s.kills, s.stalls, s.redirects, s.peakRung)
	return nil
}

// makeSchedule draws the event sequence from rng, then guarantees coverage:
// a soak that happened to roll no drain or no stall wave would gate nothing,
// so any missing mandatory event type is appended (deterministically — the
// append depends only on the draw).
func makeSchedule(rng *rand.Rand, events int) []event {
	schedule := make([]event, 0, events+3)
	for i := 0; i < events; i++ {
		switch roll := rng.Intn(10); {
		case roll < 4:
			schedule = append(schedule, evLeafWave)
		case roll < 7:
			schedule = append(schedule, evDrain)
		case roll < 9:
			schedule = append(schedule, evStall)
		default:
			schedule = append(schedule, evKill)
		}
	}
	for _, must := range []event{evLeafWave, evDrain, evStall} {
		seen := false
		for _, ev := range schedule {
			if ev == must {
				seen = true
				break
			}
		}
		if !seen {
			schedule = append(schedule, must)
		}
	}
	return schedule
}

// soak executes schedule events sequentially against one mesh and tallies
// what the invariant checks need.
type soak struct {
	m       *mesh.Mesh
	media   []byte
	rng     *rand.Rand
	stdout  io.Writer
	verbose bool

	maxKills   int
	kills      int
	drains     int
	stalls     int
	leavesDone int
	redirects  int
	peakRung   int
}

func (s *soak) warm(ctx context.Context, blockCount int) error {
	full := s.m.Origin().Segments() * blockCount
	for {
		warm := 0
		for _, r := range s.m.Relays() {
			if r.TotalRank() == full {
				warm++
			}
		}
		if warm == len(s.m.Relays()) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("relays never warmed: %w", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (s *soak) step(ctx context.Context, ev event) error {
	switch ev {
	case evLeafWave:
		return s.leafWave(ctx, 2+s.rng.Intn(3), "")
	case evDrain:
		id, ok := s.pickRelay(mesh.StateActive)
		if !ok {
			return s.leafWave(ctx, 2, "") // no drainable relay left; keep soaking
		}
		s.drains++
		return s.leafWave(ctx, 2, id)
	case evStall:
		s.stalls++
		return s.stallWave(ctx)
	case evKill:
		if s.kills >= s.maxKills {
			return s.leafWave(ctx, 2, "") // kill budget spent; keep soaking
		}
		id, ok := s.pickRelay(mesh.StateActive)
		if !ok {
			return s.leafWave(ctx, 2, "")
		}
		s.kills++
		return s.killWave(ctx, id)
	}
	return fmt.Errorf("unknown event %d", ev)
}

// pickRelay draws a uniformly random relay currently in state st. The draw
// consumes rng even when it fails, keeping the schedule deterministic.
func (s *soak) pickRelay(st mesh.State) (string, bool) {
	ids := s.m.Pool().InState(st)
	if len(ids) == 0 {
		s.rng.Intn(1)
		return "", false
	}
	return ids[s.rng.Intn(len(ids))], true
}

// leafWave runs count leaves to completion and byte-verifies each. When
// drainID is set, that relay is gracefully drain-restarted while the wave is
// in flight — its leaves must follow the REDIRECT (or be remediated) and
// still finish intact.
func (s *soak) leafWave(ctx context.Context, count int, drainID string) error {
	wave := make([]*mesh.Leaf, 0, count)
	for i := 0; i < count; i++ {
		leaf, err := s.m.AddLeaf(ctx)
		if err != nil {
			return err
		}
		wave = append(wave, leaf)
	}
	if drainID != "" {
		// Wait for motion so the drain lands mid-transfer, not before it.
		for deadline := time.Now().Add(30 * time.Second); ; {
			moving := 0
			for _, leaf := range wave {
				if leaf.Records() > 0 {
					moving++
				}
			}
			if moving == len(wave) {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("wave never started moving before draining %s", drainID)
			}
			time.Sleep(time.Millisecond)
		}
		dctx, dcancel := context.WithTimeout(ctx, 30*time.Second)
		err := s.m.RestartRelay(dctx, drainID)
		dcancel()
		if err != nil {
			return fmt.Errorf("drain-restart %s: %w", drainID, err)
		}
		if s.verbose {
			fmt.Fprintf(s.stdout, "  drained %s -> back at %s\n", drainID, s.addrOf(drainID))
		}
	}
	if err := s.m.WaitLeaves(ctx, wave...); err != nil {
		return err
	}
	for _, leaf := range wave {
		res, err := leaf.Result()
		if err != nil {
			return fmt.Errorf("leaf %d: %w", leaf.ID, err)
		}
		if !bytes.Equal(res.Payload, s.media) {
			return fmt.Errorf("leaf %d: payload differs from origin media", leaf.ID)
		}
		s.redirects += leaf.FetchStats().AdmissionRedirected
		s.leavesDone++
	}
	return nil
}

// killWave kills relay id mid-wave; remediation must reroute its leaves and
// the wave must still finish byte-identical.
func (s *soak) killWave(ctx context.Context, id string) error {
	wave := make([]*mesh.Leaf, 0, 2)
	for i := 0; i < 2; i++ {
		leaf, err := s.m.AddLeaf(ctx)
		if err != nil {
			return err
		}
		wave = append(wave, leaf)
	}
	for deadline := time.Now().Add(30 * time.Second); ; {
		moving := 0
		for _, leaf := range wave {
			if leaf.Records() > 0 {
				moving++
			}
		}
		if moving == len(wave) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wave never started moving before killing %s", id)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.m.KillRelay(id); err != nil {
		return err
	}
	if s.verbose {
		fmt.Fprintf(s.stdout, "  killed %s\n", id)
	}
	if err := s.m.WaitLeaves(ctx, wave...); err != nil {
		return err
	}
	for _, leaf := range wave {
		res, err := leaf.Result()
		if err != nil {
			return fmt.Errorf("leaf %d: %w", leaf.ID, err)
		}
		if !bytes.Equal(res.Payload, s.media) {
			return fmt.Errorf("leaf %d: payload differs from origin media", leaf.ID)
		}
		s.redirects += leaf.FetchStats().AdmissionRedirected
		s.leavesDone++
	}
	return nil
}

// stallWave aims slow clients at one relay until its brownout ladder climbs
// at least one rung, then releases them and waits for the ladder to step all
// the way back down. The clients hold raw sessions open without reading, so
// pressure comes from queue occupancy and pump stalls — exactly the signal
// the controller samples.
func (s *soak) stallWave(ctx context.Context) error {
	id, ok := s.pickRelay(mesh.StateActive)
	if !ok {
		return errors.New("no active relay to stall")
	}
	var target *mesh.Relay
	for _, r := range s.m.Relays() {
		if r.ID() == id {
			target = r
			break
		}
	}
	srv := target.Server()

	var stallers []*netio.RawClient
	defer func() {
		for _, c := range stallers {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", target.Addr())
		if err != nil {
			return err
		}
		raw, err := netio.NewRawClient(conn)
		if err != nil {
			conn.Close()
			return err
		}
		stallers = append(stallers, raw)
		// Drain a handful of records, then stop reading: the session stays
		// live while the server's queue backs up behind the dead socket.
		go func() {
			for i := 0; i < 8; i++ {
				if _, err := raw.Next(); err != nil {
					return
				}
			}
		}()
	}

	for deadline := time.Now().Add(20 * time.Second); ; {
		if r := int(srv.Rung()); r > int(netio.BrownoutOff) {
			if r > s.peakRung {
				s.peakRung = r
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("brownout on %s never engaged under stall (snapshot %+v)", id, srv.Snapshot().CounterView)
		}
		time.Sleep(time.Millisecond)
	}
	// Hold the pressure briefly — the ladder may climb further — then
	// release.
	time.Sleep(100 * time.Millisecond)
	if r := int(srv.Rung()); r > s.peakRung {
		s.peakRung = r
	}
	for _, c := range stallers {
		c.Close()
	}
	stallers = nil

	for deadline := time.Now().Add(20 * time.Second); srv.Rung() != netio.BrownoutOff; {
		if time.Now().After(deadline) {
			return fmt.Errorf("brownout on %s never stepped back down after release (rung %s)", id, srv.Rung())
		}
		time.Sleep(time.Millisecond)
	}
	if s.verbose {
		fmt.Fprintf(s.stdout, "  stalled %s: peak rung %d, transitions %d, back to off\n",
			id, s.peakRung, srv.Snapshot().BrownoutTransitions)
	}
	return nil
}

func (s *soak) addrOf(id string) string {
	addr, _ := s.m.Pool().Addr(id)
	return addr
}

// checkInvariants asserts the soak's promises after the schedule completes,
// recording each verdict into sum for the machine-readable summary.
func (s *soak) checkInvariants(ctx context.Context, reg *obs.Registry, sum *runSummary) error {
	v, _ := reg.CounterValue("mesh.rank_regressions_total")
	sum.Invariants["rank_monotone"] = v == 0
	if v != 0 {
		return fmt.Errorf("rank regressed %d times", v)
	}
	sum.Invariants["brownout_engaged"] = s.peakRung > 0
	if s.peakRung == 0 {
		return errors.New("brownout ladder never engaged")
	}

	// Every relay's ledger — across drains, kills, and survivors — must
	// balance exactly once its sessions settle.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var unbalanced []string
		for _, r := range s.m.Relays() {
			if v := r.Ledger(); !v.Consistent() {
				unbalanced = append(unbalanced,
					fmt.Sprintf("%s: offered %d != sent %d + shed %d", r.ID(), v.BlocksOffered, v.BlocksSent, v.BlocksShed))
			}
		}
		if len(unbalanced) == 0 {
			sum.Invariants["ledgers_balanced"] = true
			return nil
		}
		if time.Now().After(deadline) {
			sum.Invariants["ledgers_balanced"] = false
			return fmt.Errorf("ledgers never balanced: %s", strings.Join(unbalanced, "; "))
		}
		select {
		case <-ctx.Done():
			sum.Invariants["ledgers_balanced"] = false
			return fmt.Errorf("ledgers never balanced: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// waitGoroutines polls until the live goroutine count settles at or below
// limit, or the deadline passes.
func waitGoroutines(limit int, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= limit {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("%d goroutines still live (limit %d):\n%s", runtime.NumGoroutine(), limit, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
