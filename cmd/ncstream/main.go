// Command ncstream simulates a network-coded media streaming server
// (paper Sec. 5.1): it loads synthetic media, picks a coding engine, serves
// a peer population live (or VoD), and reports throughput, real-time
// headroom, peers sustained, and NIC load.
//
// Usage:
//
//	ncstream -engine gpu-tb5 -peers 1000 -segments 4
//	ncstream -engine cpu -peers 200 -vod
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"extremenc/internal/core"
	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
	"extremenc/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ncstream:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncstream", flag.ContinueOnError)
	engineName := fs.String("engine", "gpu-tb5", "coding engine: gpu-tb5, gpu-loop, cpu, combined, host")
	peers := fs.Int("peers", 1000, "downstream peer count")
	segments := fs.Int("segments", 2, "media segments to serve")
	vod := fs.Bool("vod", false, "VoD mode: each client requests a different segment")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scenario := core.DefaultStreamScenario()
	enc, err := makeEngine(*engineName)
	if err != nil {
		return err
	}

	media := make([]byte, *segments*scenario.Params.SegmentSize())
	rand.New(rand.NewSource(*seed)).Read(media)

	srv, err := stream.NewServer(scenario, enc, media)
	if err != nil {
		return err
	}

	var m *stream.Metrics
	if *vod {
		m, err = srv.ServeVoD(*peers, *seed)
	} else {
		m, err = srv.ServeLive(*peers, *seed)
	}
	if err != nil {
		return err
	}

	fmt.Printf("scenario:            %v\n", scenario)
	fmt.Printf("engine:              %s\n", m.Engine)
	fmt.Printf("segments served:     %d (%d blocks each, %d total)\n",
		m.SegmentsServed, m.BlocksPerSegment, m.BlocksTotal)
	fmt.Printf("encode rate:         %.1f MB/s\n", m.EncodeMBps)
	fmt.Printf("encoder utilization: %.1f%% of real time (real-time: %v)\n",
		m.EncoderUtilization*100, m.RealTime)
	fmt.Printf("peers by compute:    %d\n", m.PeersByCompute)
	fmt.Printf("peers by network:    %d\n", m.PeersByNetwork)
	fmt.Printf("peers served:        %d (requested %d)\n", m.PeersServed, m.PeersRequested)
	fmt.Printf("NIC utilization:     %.1f%% at requested peers\n", m.NICUtilization*100)
	fmt.Printf("NICs saturated:      %.2f GigE\n", scenario.NICsSaturated(m.EncodeMBps))
	fmt.Printf("sample client:       verified=%v\n", m.SampleVerified)

	// Viewer experience at the requested population (Sec. 5.1.2 buffering).
	pb, err := stream.SimulatePlayback(stream.PlaybackConfig{
		Scenario:     scenario,
		EncodeMBps:   m.EncodeMBps,
		Peers:        *peers,
		SegmentCount: 20,
	})
	if err != nil {
		return err
	}
	fmt.Printf("viewer startup:      %.1f s; stalls over 20 segments: %d (%.1f s)\n",
		pb.StartupDelay, pb.Rebuffers, pb.StallSeconds)
	fmt.Printf("smooth-play limit:   %d peers\n", stream.MaxSmoothPeers(scenario, m.EncodeMBps))
	return nil
}

func makeEngine(name string) (core.Encoder, error) {
	switch name {
	case "gpu-tb5":
		return core.NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	case "gpu-loop":
		return core.NewGPUEncoder(gpu.GTX280(), gpu.LoopBased)
	case "cpu":
		return core.NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	case "combined":
		g, err := core.NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
		if err != nil {
			return nil, err
		}
		c, err := core.NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
		if err != nil {
			return nil, err
		}
		return core.NewCombinedEncoder(g, c), nil
	case "host":
		return core.NewHostEncoder(0, rlnc.FullBlock)
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}
