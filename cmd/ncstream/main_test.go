package main

import "testing"

func TestRunEngines(t *testing.T) {
	for _, engine := range []string{"gpu-tb5", "gpu-loop", "cpu", "combined"} {
		if err := run([]string{"-engine", engine, "-peers", "10", "-segments", "1"}); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
}

func TestRunVoD(t *testing.T) {
	if err := run([]string{"-engine", "gpu-tb5", "-peers", "3", "-segments", "2", "-vod"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-engine", "quantum"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-peers", "0"}); err == nil {
		t.Fatal("zero peers accepted")
	}
}
