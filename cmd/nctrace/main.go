// Command nctrace exercises distributed tracing end to end: it runs a traced
// loopback mesh (origin → recoding relays → leaves) through faultnet chaos
// and a brownout stall wave, then collects the process span dump and
// reconstructs per-generation latency breakdowns — where each generation's
// time went across encode, queue offer, writev flush, relay recode, and leaf
// absorb — as an aligned table and optional JSON.
//
// With -smoke it is the `make trace-smoke` CI gate. The gates:
//
//   - causal integrity: zero orphan spans — every absorb/recode/flush span's
//     parent pump round is present in the dump, across all three tiers
//   - exemplars: at least one histogram exemplar links a tail observation of
//     netio.record_send or fetch.record_decode to a trace retrievable from
//     the dump
//   - flight recorder: the ring holds brownout, admission, and reconnect
//     events from the chaos run
//   - disabled-path cost: with tracing and the span sink off, Begin/End,
//     Emit, and stage spans allocate nothing (testing.AllocsPerRun == 0)
//   - overhead budget: the encode-batch/single-ref ratio stays within
//     -benchtol of the committed BENCH_host.json derived value, so the
//     tracing seams cannot silently tax the codec hot path
//
// On any gate failure the flight-recorder dump is written to -flight for
// postmortem and upload as a CI artifact.
//
// Usage:
//
//	nctrace -smoke
//	nctrace -seed 7 -leaves 8 -out breakdown.json -v
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/gf256"
	"extremenc/internal/mesh"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nctrace:", err)
		os.Exit(1)
	}
}

// exemplarDoc is one captured histogram exemplar in the JSON output.
type exemplarDoc struct {
	Histogram string        `json:"histogram"`
	Trace     uint64        `json:"trace"`
	Span      uint64        `json:"span"`
	Value     time.Duration `json:"value_ns"`
	InDump    bool          `json:"trace_in_dump"`
}

// outDoc is the -out JSON shape: the assembled breakdown plus the exemplar
// and flight-event evidence the smoke gates check.
type outDoc struct {
	Assembly  *trace.Assembly `json:"assembly"`
	Exemplars []exemplarDoc   `json:"exemplars"`
	Flight    map[string]int  `json:"flight_events"`
	Published uint64          `json:"events_published"`
	Capacity  int             `json:"ring_capacity"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nctrace", flag.ContinueOnError)
	smoke := fs.Bool("smoke", false, "fixed shape plus all gates: the deterministic CI slice")
	seed := fs.Int64("seed", 7, "media / chaos / schedule seed")
	relays := fs.Int("relays", 2, "recoding relay count")
	leaves := fs.Int("leaves", 4, "leaf fetcher count")
	n := fs.Int("n", 16, "blocks per segment")
	k := fs.Int("k", 512, "bytes per block")
	size := fs.Int("size", 28_000, "media bytes")
	ring := fs.Int("ring", 1<<18, "flight-recorder ring capacity (events)")
	timeout := fs.Duration("timeout", 3*time.Minute, "overall deadline")
	out := fs.String("out", "", "write the breakdown + evidence JSON here")
	flight := fs.String("flight", "flight-trace.json", "write the flight dump here on gate failure")
	benchPath := fs.String("bench", "BENCH_host.json", "committed benchmark baseline for the overhead gate")
	benchTol := fs.Float64("benchtol", 0.75, "relative tolerance on the encode-batch ratio")
	exq := fs.Float64("exq", 0.99, "exemplar capture quantile")
	verbose := fs.Bool("v", false, "narrate the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		*seed, *relays, *leaves = 7, 2, 4
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	rec := trace.Enable(*ring)
	defer trace.Disable()
	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	// The two tail histograms the exemplar gate watches: origin/relay writev
	// flushes and leaf record decodes. SetSink already resolved the stages
	// into reg, so these return the very histograms the hot paths feed.
	sendH := reg.Histogram("netio.record_send", "span latency for stage netio.record_send")
	decodeH := reg.Histogram("fetch.record_decode", "span latency for stage fetch.record_decode")
	sendH.EnableExemplars(*exq)
	decodeH.EnableExemplars(*exq)

	rng := rand.New(rand.NewSource(*seed))
	media := make([]byte, *size)
	rng.Read(media)

	topo := mesh.Topology{
		Media:    media,
		Params:   rlnc.Params{BlockCount: *n, BlockSize: *k},
		Relays:   *relays,
		Leaves:   0, // leaves start after the stall wave
		Seed:     *seed,
		Traced:   true,
		Registry: reg,
		// Light chaos on both tiers: corruption exercises framing resync,
		// downstream resets force the reconnects the flight gate asserts.
		UpstreamFaults: &faultnet.Config{
			Seed: *seed + 1, CorruptEvery: 12_000, MaxReadChunk: 2048,
		},
		DownstreamFaults: &faultnet.Config{
			Seed: *seed + 2, ResetEvery: 5000, MaxReadChunk: 2048,
		},
		// Small queues, tiny batches, and a twitchy brownout controller so the
		// stall wave engages the ladder in milliseconds.
		RelayServerOpts: func(relay int) []netio.ServerOption {
			return []netio.ServerOption{
				netio.WithServePace(2 * time.Millisecond),
				netio.WithEncodeBatch(2),
				netio.WithQueueDepth(4),
				netio.WithRetryAfter(5 * time.Millisecond),
				netio.WithBrownout(netio.BrownoutConfig{
					Interval: 10 * time.Millisecond,
					StepUp:   0.5,
					StepDown: 0.05,
					Hold:     2,
				}),
			}
		},
	}
	m, err := mesh.New(topo)
	if err != nil {
		return err
	}
	if err := m.Start(ctx); err != nil {
		return err
	}
	defer m.Close()

	if err := warm(ctx, m, *n); err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(stdout, "mesh warm: %d relays at full rank\n", *relays)
	}

	if err := stallWave(ctx, m); err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintln(stdout, "stall wave: brownout engaged and released")
	}

	wave := make([]*mesh.Leaf, 0, *leaves)
	for i := 0; i < *leaves; i++ {
		leaf, err := m.AddLeaf(ctx)
		if err != nil {
			return err
		}
		wave = append(wave, leaf)
	}
	if err := m.WaitLeaves(ctx, wave...); err != nil {
		return err
	}
	for _, leaf := range wave {
		res, err := leaf.Result()
		if err != nil {
			return fmt.Errorf("leaf %d: %w", leaf.ID, err)
		}
		if !bytes.Equal(res.Payload, media) {
			return fmt.Errorf("leaf %d: payload differs from origin media", leaf.ID)
		}
	}
	if *verbose {
		fmt.Fprintf(stdout, "leaf wave: %d transfers byte-identical\n", *leaves)
	}

	// Tear the mesh down before dumping so every root span (origin serve,
	// relay serves) has ended and the assembled trees are complete.
	m.Close()
	dump := trace.Dump()
	flightJSON := trace.DumpJSON()
	asm := trace.Assemble(dump)

	traces := make(map[trace.TraceID]bool)
	flightKinds := make(map[string]int)
	for i := range dump {
		if dump[i].Trace != 0 {
			traces[dump[i].Trace] = true
		}
		if dump[i].Kind != trace.KindSpan {
			flightKinds[dump[i].Kind.String()]++
		}
	}
	var exemplars []exemplarDoc
	for _, h := range []struct {
		name string
		hist *obs.Histogram
	}{{"netio.record_send", sendH}, {"fetch.record_decode", decodeH}} {
		if ex, ok := h.hist.Exemplar(); ok {
			exemplars = append(exemplars, exemplarDoc{
				Histogram: h.name,
				Trace:     ex.TraceID,
				Span:      ex.SpanID,
				Value:     ex.Value,
				InDump:    traces[trace.TraceID(ex.TraceID)],
			})
		}
	}

	fmt.Fprint(stdout, asm.Table())
	for _, ex := range exemplars {
		fmt.Fprintf(stdout, "exemplar %s: %v on trace %d span %d (in dump: %v)\n",
			ex.Histogram, ex.Value, ex.Trace, ex.Span, ex.InDump)
	}
	fmt.Fprintf(stdout, "flight events: %v (published %d / ring %d)\n",
		flightKinds, rec.Published(), rec.Cap())

	if *out != "" {
		doc := outDoc{
			Assembly:  asm,
			Exemplars: exemplars,
			Flight:    flightKinds,
			Published: rec.Published(),
			Capacity:  rec.Cap(),
		}
		b, err := json.MarshalIndent(doc, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			return err
		}
	}

	if !*smoke {
		return nil
	}

	// Gates run with tracing and the sink disabled — the last two measure
	// exactly the state every untraced production process runs in.
	trace.Disable()
	obs.SetSink(nil)

	var fails []string
	if asm.Spans == 0 || len(asm.Generations) == 0 {
		fails = append(fails, "no spans assembled")
	}
	if asm.Orphans != 0 {
		fails = append(fails, fmt.Sprintf("%d orphan spans", asm.Orphans))
	}
	if rec.Published() > uint64(rec.Cap()) {
		fails = append(fails, fmt.Sprintf("ring wrapped (%d published > %d capacity): resize -ring", rec.Published(), rec.Cap()))
	}
	for _, stage := range []string{"encode", "absorb", "recode"} {
		found := false
		for i := range asm.Generations {
			if asm.Generations[i].StageTotal(stage) > 0 {
				found = true
				break
			}
		}
		if !found {
			fails = append(fails, fmt.Sprintf("no generation carries stage %q", stage))
		}
	}
	linked := false
	for _, ex := range exemplars {
		if ex.InDump {
			linked = true
			break
		}
	}
	if !linked {
		fails = append(fails, "no histogram exemplar links to a trace in the dump")
	}
	for _, kind := range []string{"brownout", "admission", "reconnect"} {
		if flightKinds[kind] == 0 {
			fails = append(fails, fmt.Sprintf("flight ring holds no %s events", kind))
		}
	}
	if allocs := disabledPathAllocs(); allocs != 0 {
		fails = append(fails, fmt.Sprintf("disabled path allocates (%.1f allocs/op, want 0)", allocs))
	}
	if msg := benchGate(*benchPath, *benchTol, stdout); msg != "" {
		fails = append(fails, msg)
	}

	if len(fails) > 0 {
		if err := os.WriteFile(*flight, flightJSON, 0o644); err == nil {
			fmt.Fprintf(stdout, "flight dump written to %s\n", *flight)
		}
		return fmt.Errorf("trace smoke failed (seed %d):\n  - %s", *seed, strings.Join(fails, "\n  - "))
	}
	fmt.Fprintf(stdout, "trace smoke ok (seed %d): %d generations, %d spans, 0 orphans, %d exemplars, flight %v\n",
		*seed, len(asm.Generations), asm.Spans, len(exemplars), flightKinds)
	return nil
}

// warm blocks until every relay holds full upstream rank.
func warm(ctx context.Context, m *mesh.Mesh, blockCount int) error {
	full := m.Origin().Segments() * blockCount
	for {
		ready := 0
		for _, r := range m.Relays() {
			if r.TotalRank() == full {
				ready++
			}
		}
		if ready == len(m.Relays()) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("relays never warmed: %w", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// stallWave pins the first relay with non-reading raw clients until its
// brownout ladder engages, then releases them and waits for it to step back
// to off — seeding the flight ring with brownout transitions both ways.
func stallWave(ctx context.Context, m *mesh.Mesh) error {
	target := m.Relays()[0]
	srv := target.Server()

	var stallers []*netio.RawClient
	defer func() {
		for _, c := range stallers {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", target.Addr())
		if err != nil {
			return err
		}
		raw, err := netio.NewRawClient(conn)
		if err != nil {
			conn.Close()
			return err
		}
		stallers = append(stallers, raw)
		go func() {
			for i := 0; i < 8; i++ {
				if _, err := raw.Next(); err != nil {
					return
				}
			}
		}()
	}
	for deadline := time.Now().Add(20 * time.Second); srv.Rung() == netio.BrownoutOff; {
		if time.Now().After(deadline) {
			return errors.New("brownout never engaged under stall")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	for _, c := range stallers {
		c.Close()
	}
	stallers = nil
	for deadline := time.Now().Add(20 * time.Second); srv.Rung() != netio.BrownoutOff; {
		if time.Now().After(deadline) {
			return errors.New("brownout never released after stall")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// disabledPathAllocs measures the per-operation allocation count of every
// tracing entry point with the recorder and span sink off — the state all
// untraced production binaries run in. The budget is zero.
func disabledPathAllocs() float64 {
	st := obs.StageOf("nctrace.disabled_probe")
	return testing.AllocsPerRun(1000, func() {
		sp := trace.Begin("probe", "probe", 1, 0, -1)
		sp.End()
		trace.Emit(trace.KindShed, "probe", "probe", -1, 0)
		ssp := st.Start()
		ssp.End()
	})
}

// benchGate re-measures the encode-batch/single-ref time ratio at the
// paper's streaming shape and compares it against the committed derived
// value, with a wide relative tolerance (machines and race builds vary) —
// the backstop ensuring the tracing seams never tax the codec hot path.
// Returns a failure message, or "" when the gate passes or no baseline file
// is available to compare against.
func benchGate(path string, tol float64, stdout io.Writer) string {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stdout, "bench gate skipped: %v\n", err)
		return ""
	}
	var doc struct {
		Derived map[string]float64 `json:"derived"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Sprintf("bench baseline %s unreadable: %v", path, err)
	}
	ref, ok := doc.Derived["encode_batch_over_single_ref_pct"]
	if !ok || ref <= 0 {
		fmt.Fprintf(stdout, "bench gate skipped: %s has no encode_batch_over_single_ref_pct\n", path)
		return ""
	}

	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	rng := rand.New(rand.NewSource(33))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := rlnc.SegmentFromData(1, p, data)
	if err != nil {
		return fmt.Sprintf("bench gate: %v", err)
	}
	const batch = 32
	coeffs := make([][]byte, batch)
	dsts := make([][]byte, batch)
	for i := range coeffs {
		coeffs[i] = make([]byte, p.BlockCount)
		for j := range coeffs[i] {
			coeffs[i][j] = byte(1 + rng.Intn(255))
		}
		dsts[i] = make([]byte, p.BlockSize)
	}
	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range dsts {
				encodeSingleRef(dsts[j], seg, coeffs[j])
			}
		}
	})
	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := rlnc.EncodeBatchInto(dsts, seg, coeffs); err != nil {
				b.Fatal(err)
			}
		}
	})
	if single.NsPerOp() <= 0 {
		return "bench gate: degenerate single-ref measurement"
	}
	pct := 100 * float64(batched.NsPerOp()) / float64(single.NsPerOp())
	lo, hi := ref*(1-tol), ref*(1+tol)
	fmt.Fprintf(stdout, "bench gate: encode batch/single = %.1f%% (committed %.1f%%, accept %.1f–%.1f%%)\n",
		pct, ref, lo, hi)
	if pct < lo || pct > hi {
		return fmt.Sprintf("encode batch/single ratio %.1f%% outside %.1f–%.1f%% (committed %.1f%%)", pct, lo, hi, ref)
	}
	return ""
}

// encodeSingleRef is the seed single-block encode — one MulAddSlice sweep
// per coded block — mirrored from the rlnc benchmark baseline so the gate
// measures the same ratio the committed BENCH_host.json derives.
func encodeSingleRef(dst []byte, seg *rlnc.Segment, coeffs []byte) {
	k := seg.Params().BlockSize
	clear(dst[:k])
	for i, c := range coeffs {
		if c != 0 {
			gf256.MulAddSlice(dst[:k], seg.Block(i), c)
		}
	}
}
