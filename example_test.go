package extremenc_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"extremenc"
)

// Example shows the basic encode → decode cycle: any n independent coded
// blocks recover the segment.
func Example() {
	params := extremenc.Params{BlockCount: 4, BlockSize: 8}
	rng := rand.New(rand.NewSource(1))

	payload := []byte("network coding over GF(2^8)!")
	seg, _ := extremenc.SegmentFromData(1, params, payload)

	enc := extremenc.NewEncoder(seg, rng)
	dec, _ := extremenc.NewDecoder(params)
	for !dec.Ready() {
		dec.AddBlock(enc.NextBlock())
	}
	recovered, _ := dec.Segment()
	fmt.Println(string(recovered.Data()[:len(payload)]))
	fmt.Println("blocks received:", dec.Received())
	// Output:
	// network coding over GF(2^8)!
	// blocks received: 4
}

// ExampleRecoder shows the defining capability of network coding: an
// intermediate node emits fresh combinations without decoding, and the
// sink remains oblivious to the extra hop.
func ExampleRecoder() {
	params := extremenc.Params{BlockCount: 3, BlockSize: 4}
	rng := rand.New(rand.NewSource(2))
	seg, _ := extremenc.SegmentFromData(7, params, []byte("abcdefghijkl"))
	enc := extremenc.NewEncoder(seg, rng)

	relay, _ := extremenc.NewRecoder(params)
	for i := 0; i < params.BlockCount; i++ {
		relay.Add(enc.NextBlock())
	}

	dec, _ := extremenc.NewDecoder(params)
	for !dec.Ready() {
		blk, _ := relay.NextBlock(rng)
		dec.AddBlock(blk)
	}
	recovered, _ := dec.Segment()
	fmt.Println(string(recovered.Data()))
	// Output: abcdefghijkl
}

// ExampleSplit shows generation management: a payload larger than one
// segment is split, coded per segment, and reassembled.
func ExampleSplit() {
	params := extremenc.Params{BlockCount: 2, BlockSize: 4}
	payload := []byte("three segments of data!")
	obj, _ := extremenc.Split(payload, params)
	fmt.Println("segments:", len(obj.Segments))

	rng := rand.New(rand.NewSource(3))
	decoded := make([]*extremenc.Segment, 0, len(obj.Segments))
	for _, seg := range obj.Segments {
		enc := extremenc.NewEncoder(seg, rng)
		dec, _ := extremenc.NewDecoder(params)
		for !dec.Ready() {
			dec.AddBlock(enc.NextBlock())
		}
		s, _ := dec.Segment()
		decoded = append(decoded, s)
	}
	back, _ := extremenc.ReassembleSegments(decoded, len(payload), params)
	fmt.Println(string(back))
	// Output:
	// segments: 3
	// three segments of data!
}

// ExampleCodedBlock_MarshalBinary shows the checksummed wire format
// surviving a round trip.
func ExampleCodedBlock_MarshalBinary() {
	params := extremenc.Params{BlockCount: 2, BlockSize: 3}
	rng := rand.New(rand.NewSource(4))
	seg, _ := extremenc.SegmentFromData(9, params, []byte("wired!"))
	blk := extremenc.NewEncoder(seg, rng).NextBlock()

	wire, _ := blk.MarshalBinary()
	var back extremenc.CodedBlock
	back.UnmarshalBinary(wire)
	fmt.Println("intact:", bytes.Equal(back.Payload, blk.Payload))
	fmt.Println("wire bytes:", len(wire))
	// Output:
	// intact: true
	// wire bytes: 25
}

// ExampleNewGPUEncoder runs the paper's best kernel (Table-based-5) on the
// simulated GeForce GTX 280 and reports the simulated coding bandwidth.
func ExampleNewGPUEncoder() {
	params := extremenc.Params{BlockCount: 128, BlockSize: 4096}
	seg, _ := extremenc.NewSegment(0, params)
	rand.New(rand.NewSource(5)).Read(seg.Data())

	eng, _ := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	rep, _ := eng.EncodeBlocks(seg, 30000, 6)
	fmt.Printf("TB-5 on GTX 280 at n=128: %.0f MB/s (paper: 294)\n", rep.BandwidthMBps())
	// Output: TB-5 on GTX 280 at n=128: 299 MB/s (paper: 294)
}

// ExampleStreamScenario reproduces the paper's streaming-server arithmetic.
func ExampleStreamScenario() {
	s := extremenc.DefaultStreamScenario()
	fmt.Printf("segment carries %.2f s of 768 Kbps video\n", s.SegmentDuration())
	fmt.Println("peers at 133 MB/s (loop-based):", s.PeersByCompute(133))
	fmt.Println("peers at 294 MB/s > 3000:", s.PeersByCompute(294) > 3000)
	// Output:
	// segment carries 5.46 s of 768 Kbps video
	// peers at 133 MB/s (loop-based): 1385
	// peers at 294 MB/s > 3000: true
}
