// filetransfer: store a payload as a network-coded container, damage it —
// drop 10% of the records and corrupt a few more — and recover the payload
// bit-exactly from what survives. No record is special: the container
// tolerates the loss of ANY records up to its redundancy margin, unlike
// replication or RAID-style parity with fixed roles.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"extremenc"
	"extremenc/internal/ncfile"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := extremenc.Params{BlockCount: 32, BlockSize: 2048}
	payload := make([]byte, 300000)
	rand.New(rand.NewSource(7)).Read(payload)

	// Encode with a 40% redundancy margin (each segment must keep n of its
	// records through the channel's binomial losses).
	var container bytes.Buffer
	esum, err := extremenc.EncodeFile(&container, bytes.NewReader(payload), params,
		extremenc.FileEncodeOptions{Redundancy: 1.4, Seed: 8})
	if err != nil {
		return err
	}
	fmt.Printf("encoded:  %d bytes → %d records (%d segments, %.0f%% container overhead)\n",
		esum.PayloadBytes, esum.Records, esum.Header.Segments,
		(float64(esum.RecordBytes)/float64(esum.PayloadBytes)-1)*100)

	// Simulate a hostile channel.
	var damaged bytes.Buffer
	csum, err := ncfile.Corrupt(&damaged, bytes.NewReader(container.Bytes()),
		ncfile.CorruptOptions{DropRate: 0.10, FlipRate: 0.04, Seed: 9})
	if err != nil {
		return err
	}
	fmt.Printf("damaged:  %d of %d records dropped, %d corrupted in flight\n",
		csum.Dropped, csum.Records, csum.Flipped)

	// Recover from the survivors.
	var out bytes.Buffer
	dsum, err := extremenc.DecodeFile(&out, bytes.NewReader(damaged.Bytes()))
	if err != nil {
		return err
	}
	if !bytes.Equal(out.Bytes(), payload) {
		return fmt.Errorf("recovered payload differs")
	}
	fmt.Printf("decoded:  %d records read, %d corrupt skipped, %d dependent discarded\n",
		dsum.Records, dsum.CorruptRecords, dsum.Dependent)
	fmt.Println("payload recovered bit-exactly ✓")

	// The seeded variant shrinks per-record headers from n bytes to 8.
	var seeded bytes.Buffer
	ssum, err := extremenc.EncodeFile(&seeded, bytes.NewReader(payload), params,
		extremenc.FileEncodeOptions{Redundancy: 1.4, Seeded: true, Seed: 8})
	if err != nil {
		return err
	}
	fmt.Printf("\nseeded containers carry 8-byte coefficient seeds: %d B vs %d B (%.1f%% smaller)\n",
		ssum.RecordBytes, esum.RecordBytes,
		(1-float64(ssum.RecordBytes)/float64(esum.RecordBytes))*100)
	return nil
}
