// gpusim: run the paper's encoding kernels on the simulated GeForce GTX 280
// and print the Fig. 7 optimization ladder — loop-based multiplication
// against the six table-based variants — plus the resulting streaming-server
// capacity. Every kernel produces real coded blocks that are verified
// against the host codec.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extremenc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's streaming configuration: 128 × 4 KB blocks per segment.
	scenario := extremenc.DefaultStreamScenario()
	params := scenario.Params

	seg, err := extremenc.NewSegment(0, params)
	if err != nil {
		return err
	}
	rand.New(rand.NewSource(1)).Read(seg.Data())

	fmt.Printf("device: %s (%d cores @ %.0f MHz, %.0f GB/s)\n",
		extremenc.GTX280().Name, extremenc.GTX280().Cores(),
		extremenc.GTX280().ClockMHz, extremenc.GTX280().MemBandwidthGBps)
	fmt.Printf("config: n=%d blocks × k=%d bytes; serving a %.0f Kbps stream\n\n",
		params.BlockCount, params.BlockSize, scenario.StreamRateKbps)

	schemes := []extremenc.GPUScheme{
		extremenc.TableBased0, extremenc.LoopBased,
		extremenc.TableBased1, extremenc.TableBased2, extremenc.TableBased3,
		extremenc.TableBased4, extremenc.TableBased5,
	}
	const blocks = 30000 // a streaming-server batch

	var loopRate float64
	for _, scheme := range schemes {
		eng, err := extremenc.NewGPUEncoder(extremenc.GTX280(), scheme)
		if err != nil {
			return err
		}
		rep, err := eng.EncodeBlocks(seg, blocks, 2)
		if err != nil {
			return err
		}
		rate := rep.BandwidthMBps()
		if scheme == extremenc.LoopBased {
			loopRate = rate
		}
		vs := ""
		if loopRate > 0 && scheme != extremenc.LoopBased {
			vs = fmt.Sprintf("  (%.2fx loop-based)", rate/loopRate)
		}
		fmt.Printf("%-14s %7.1f MB/s → %4d peers%s\n",
			scheme, rate, scenario.PeersByCompute(rate), vs)

		// The simulated kernels emit real data: decode a sample.
		dec, err := extremenc.NewDecoder(params)
		if err != nil {
			return err
		}
		eng.SetMaterialize(params.BlockCount + 1)
		rep, err = eng.EncodeBlocks(seg, params.BlockCount+1, 3)
		if err != nil {
			return err
		}
		for _, b := range rep.Blocks {
			if _, err := dec.AddBlock(b); err != nil {
				return err
			}
			if dec.Ready() {
				break
			}
		}
		got, err := dec.Segment()
		if err != nil {
			return err
		}
		if !got.Equal(seg) {
			return fmt.Errorf("%v produced corrupt blocks", scheme)
		}
	}

	fmt.Printf("\neach scheme's output decoded back to the source segment ✓\n")
	fmt.Printf("segment duration at %.0f Kbps: %.2f s; one GigE carries %d peers\n",
		scenario.StreamRateKbps, scenario.SegmentDuration(), scenario.PeersByNetwork())
	return nil
}
