// multisegment: offline multi-segment decoding (paper Sec. 5.2). A bulk
// download à la Avalanche collects coded blocks for many segments and
// decodes them after the fact. This example compares, on the simulated
// GTX 280, the single-segment progressive decoder (one segment at a time —
// starved for parallelism) with the two-stage multi-segment decoder at 30
// and 60 segments in flight, then reassembles and verifies the object.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"extremenc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := extremenc.Params{BlockCount: 32, BlockSize: 4096}
	const segments = 30

	// A 3.75 MB object split into 30 segments.
	object := make([]byte, segments*params.SegmentSize()-123)
	rng := rand.New(rand.NewSource(5))
	rng.Read(object)
	obj, err := extremenc.Split(object, params)
	if err != nil {
		return err
	}

	// Collect a spanning set of coded blocks per segment (the download).
	sets := make([][]*extremenc.CodedBlock, len(obj.Segments))
	for i, seg := range obj.Segments {
		enc := extremenc.NewEncoder(seg, rng)
		for j := 0; j < params.BlockCount+1; j++ {
			sets[i] = append(sets[i], enc.NextBlock())
		}
	}
	fmt.Printf("downloaded %d segments × %d coded blocks (n=%d, k=%d)\n\n",
		len(sets), len(sets[0]), params.BlockCount, params.BlockSize)

	// Single-segment progressive decoding: segments strictly one by one.
	single, err := extremenc.NewGPUSingleDecoder(extremenc.GTX280(), extremenc.GPUDecodeOptions{})
	if err != nil {
		return err
	}
	srep, err := single.DecodeSegments(sets, params)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %8.1f MB/s\n", "single-segment progressive:", srep.BandwidthMBps())

	// Multi-segment decoding: one segment per SM, then two per SM.
	for _, perSM := range []int{1, 2} {
		multi, err := extremenc.NewGPUMultiDecoder(extremenc.GTX280(), perSM)
		if err != nil {
			return err
		}
		mrep, err := multi.DecodeSegments(sets, params)
		if err != nil {
			return err
		}
		fmt.Printf("multi-segment %d/SM:          %8.1f MB/s  (%.1fx, stage-1 share %.0f%%)\n",
			perSM, mrep.BandwidthMBps(), mrep.BandwidthMBps()/srep.BandwidthMBps(),
			mrep.Stage1Share*100)
	}

	// The engines materialize a sample; decode the rest on the host and
	// verify the whole object reassembles.
	host := extremenc.NewHostDecoder(0)
	hrep, err := host.DecodeSegments(sets, params)
	if err != nil {
		return err
	}
	back, err := extremenc.ReassembleSegments(hrep.Segments, len(object), params)
	if err != nil {
		return err
	}
	if !bytes.Equal(back, object) {
		return fmt.Errorf("object reassembly mismatch")
	}
	fmt.Printf("\nobject reassembled from decoded segments and verified (%d bytes) ✓\n", len(back))
	return nil
}
