// p2p: Avalanche-style bulk content distribution over a simulated network
// (paper Sec. 2). A source pushes a 64 KB object to a swarm of peers under
// three strategies — full network coding with recoding at every peer,
// forwarding verbatim copies of coded blocks, and forwarding plain blocks —
// and the example reports how much redundant traffic each one ships.
package main

import (
	"fmt"
	"log"

	"extremenc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := extremenc.P2PConfig{
		Params:           extremenc.Params{BlockCount: 32, BlockSize: 2048},
		Peers:            30,
		Neighbors:        3,
		LinkBandwidthBps: 8e6, // 1 MB/s per overlay link
		LinkLatency:      0.01,
		Seed:             2024,
		MaxSimTime:       1e5,
	}
	fmt.Printf("object: %d KB in %d blocks × %d B; %d peers, %d links/node, 1 MB/s links\n\n",
		base.Params.SegmentSize()/1024, base.Params.BlockCount, base.Params.BlockSize,
		base.Peers, base.Neighbors)

	type row struct {
		mode extremenc.P2PMode
		why  string
	}
	rows := []row{
		{extremenc.P2PModeRLNC, "every peer recodes: any n blocks decode"},
		{extremenc.P2PModeForward, "coded at source only: duplicates propagate"},
		{extremenc.P2PModeUncoded, "plain blocks: coupon-collector waste"},
	}
	var rlncFinish float64
	for _, r := range rows {
		cfg := base
		cfg.Mode = r.mode
		res, err := extremenc.RunP2P(cfg)
		if err != nil {
			return err
		}
		if r.mode == extremenc.P2PModeRLNC {
			rlncFinish = res.MaxFinish
		}
		fmt.Printf("%-14s finished %d/%d peers in %.2f s (%.2fx vs rlnc)\n",
			res.Mode, res.Completed, res.Peers, res.MaxFinish, res.MaxFinish/rlncFinish)
		fmt.Printf("               %d blocks sent, %d useless receptions, overhead %.2fx\n",
			res.BlocksSent, res.BlocksUseless, res.Overhead)
		fmt.Printf("               (%s)\n\n", r.why)
	}

	fmt.Println("every completed peer's payload is verified against the source inside RunP2P.")

	// Offline decoding, the multi-segment motivation (Sec. 5.2): a bulk
	// download collects blocks for many segments and decodes them after the
	// fact. Rerun the RLNC session with a 30-segment object, collect one
	// peer's blocks, and decode them on the simulated GTX 280 with the
	// single-segment and multi-segment pipelines.
	multi := base
	multi.Mode = extremenc.P2PModeRLNC
	multi.Segments = 30
	multi.CollectSets = true
	res, err := extremenc.RunP2P(multi)
	if err != nil {
		return err
	}
	fmt.Printf("\n30-segment bulk download: %d/%d peers done in %.2f s; one peer's %d-segment\n",
		res.Completed, res.Peers, res.MaxFinish, len(res.SampleSets))
	fmt.Println("block collection now decodes offline on the simulated GTX 280:")

	single, err := extremenc.NewGPUSingleDecoder(extremenc.GTX280(), extremenc.GPUDecodeOptions{})
	if err != nil {
		return err
	}
	srep, err := single.DecodeSegments(res.SampleSets, multi.Params)
	if err != nil {
		return err
	}
	multiDec, err := extremenc.NewGPUMultiDecoder(extremenc.GTX280(), 1)
	if err != nil {
		return err
	}
	mrep, err := multiDec.DecodeSegments(res.SampleSets, multi.Params)
	if err != nil {
		return err
	}
	fmt.Printf("  single-segment: %7.1f MB/s\n", srep.BandwidthMBps())
	fmt.Printf("  multi-segment:  %7.1f MB/s (%.1fx, stage-1 share %.0f%%)\n",
		mrep.BandwidthMBps(), mrep.BandwidthMBps()/srep.BandwidthMBps(), mrep.Stage1Share*100)
	return nil
}
