// Quickstart: encode a payload with random linear network coding, lose some
// packets, decode from whatever arrives, and verify the recovery — the
// smallest end-to-end use of the extremenc public API.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"extremenc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A segment of 32 blocks × 1 KiB, as a sender would configure it.
	params := extremenc.Params{BlockCount: 32, BlockSize: 1024}
	rng := rand.New(rand.NewSource(42))

	payload := make([]byte, 30000) // smaller than the segment: padding is automatic
	rng.Read(payload)

	seg, err := extremenc.SegmentFromData(1, params, payload)
	if err != nil {
		return err
	}

	// The sender emits a stream of coded blocks; each is a random linear
	// combination of all 32 source blocks over GF(2^8).
	enc := extremenc.NewEncoder(seg, rng)

	// The network loses 30% of packets — with RLNC, *which* packets arrive
	// is irrelevant; any 32 independent combinations suffice.
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		return err
	}
	sent, lost := 0, 0
	for !dec.Ready() {
		blk := enc.NextBlock()
		sent++
		if rng.Float64() < 0.3 {
			lost++
			continue
		}
		// Blocks survive a checksummed wire round trip.
		wire, err := blk.MarshalBinary()
		if err != nil {
			return err
		}
		var rx extremenc.CodedBlock
		if err := rx.UnmarshalBinary(wire); err != nil {
			return err
		}
		innovative, err := dec.AddBlock(&rx)
		if err != nil {
			return err
		}
		if !innovative {
			fmt.Println("received a linearly dependent block (discarded for free)")
		}
	}

	recovered, err := dec.Segment()
	if err != nil {
		return err
	}
	if !bytes.Equal(recovered.Data()[:len(payload)], payload) {
		return fmt.Errorf("payload mismatch after decode")
	}

	fmt.Printf("payload:   %d bytes in %d blocks of %d bytes\n",
		len(payload), params.BlockCount, params.BlockSize)
	fmt.Printf("transfer:  %d coded blocks sent, %d lost in transit (%.0f%%)\n",
		sent, lost, float64(lost)/float64(sent)*100)
	fmt.Printf("decode:    rank %d/%d after %d received blocks (%d dependent)\n",
		dec.Rank(), params.BlockCount, dec.Received(), dec.Dependent())
	fmt.Println("recovered: payload verified byte-for-byte ✓")
	return nil
}
