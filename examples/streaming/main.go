// streaming: a network-coded media streaming server (paper Sec. 5.1). The
// server splits media into 512 KB segments, keeps them resident on the
// coding engine, and serves 768 Kbps streams to a large peer population.
// The example contrasts the simulated GTX 280 (table-based-5 kernels), the
// simulated 8-core Mac Pro, and a GPU+CPU combined engine, and plays one
// downstream client to verify the served data decodes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extremenc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenario := extremenc.DefaultStreamScenario()

	// Two segments (~10.9 s) of synthetic media.
	media := make([]byte, 2*scenario.Params.SegmentSize())
	rand.New(rand.NewSource(99)).Read(media)

	gpuEnc, err := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	if err != nil {
		return err
	}
	cpuEnc, err := extremenc.NewCPUEncoder(extremenc.MacPro(), extremenc.FullBlock, extremenc.CPULoopSIMD)
	if err != nil {
		return err
	}
	engines := []extremenc.EncodeEngine{
		gpuEnc,
		cpuEnc,
		extremenc.NewCombinedEncoder(gpuEnc, cpuEnc),
	}

	const peers = 1500
	fmt.Printf("scenario: %v (segment = %.2f s of media)\n\n",
		scenario, scenario.SegmentDuration())

	for _, eng := range engines {
		srv, err := extremenc.NewStreamServer(scenario, eng, media)
		if err != nil {
			return err
		}
		m, err := srv.ServeLive(peers, 7)
		if err != nil {
			return err
		}
		fmt.Printf("engine: %s\n", m.Engine)
		fmt.Printf("  encode rate        %.1f MB/s (%.2f GigE NICs)\n",
			m.EncodeMBps, scenario.NICsSaturated(m.EncodeMBps))
		fmt.Printf("  real-time load     %.1f%% per segment (keeps up: %v)\n",
			m.EncoderUtilization*100, m.RealTime)
		fmt.Printf("  peers sustained    %d by compute, %d by network → %d served\n",
			m.PeersByCompute, m.PeersByNetwork, m.PeersServed)
		fmt.Printf("  sample client      decode verified: %v\n\n", m.SampleVerified)
	}

	fmt.Println("paper anchors: 1385 peers at 133 MB/s (loop-based), >3000 at 294 MB/s (TB-5),")
	fmt.Println("with the GTX 280 alone sufficient to saturate two Gigabit Ethernet interfaces.")
	return nil
}
