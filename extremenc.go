// Package extremenc is a high-performance random linear network coding
// (RLNC) library — a Go reproduction of "Pushing the Envelope: Extreme
// Network Coding on the GPU" (Shojania & Li, IEEE ICDCS 2009).
//
// The package has three layers:
//
//   - A production host codec: GF(2^8) random linear codes with segments,
//     coded blocks (with a checksummed wire format), progressive
//     Gauss–Jordan decoding, batch invert-then-multiply decoding, recoding
//     at intermediate nodes, and goroutine-parallel encode/decode workers.
//
//   - Simulated testbeds reproducing the paper's evaluation hardware: the
//     NVIDIA GTX 280 / 8800 GT (a functional CUDA-like simulator with a
//     calibrated cycle-cost model: warp occupancy, shared-memory bank
//     conflicts, texture caching, kernel launches) and the 8-core Xeon
//     "Mac Pro" baseline. Every kernel computes real, verified coded data.
//
//   - Deployment components: a network-coded streaming server (live and
//     VoD), and an Avalanche-style P2P distribution simulation with
//     recoding versus forwarding baselines.
//
// Quick start:
//
//	params := extremenc.Params{BlockCount: 128, BlockSize: 4096}
//	seg, _ := extremenc.SegmentFromData(0, params, payload)
//	enc := extremenc.NewEncoder(seg, rng)
//	dec, _ := extremenc.NewDecoder(params)
//	for !dec.Ready() {
//		dec.AddBlock(enc.NextBlock())
//	}
//	recovered, _ := dec.Segment()
//
// The experiment harness behind every figure of the paper is exposed via
// Experiments and the ncbench command; see EXPERIMENTS.md for the
// paper-versus-measured record.
package extremenc

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"

	"extremenc/internal/core"
	"extremenc/internal/cpusim"
	"extremenc/internal/experiments"
	"extremenc/internal/faultnet"
	"extremenc/internal/gf256"
	"extremenc/internal/gpu"
	"extremenc/internal/mesh"
	"extremenc/internal/ncfile"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/p2p"
	"extremenc/internal/rlnc"
	"extremenc/internal/stream"
)

// Core codec types (see internal/rlnc for full documentation).
type (
	// Params is a coding configuration: n blocks of k bytes per segment.
	Params = rlnc.Params
	// Segment is one generation of source data.
	Segment = rlnc.Segment
	// CodedBlock is a coefficient vector plus coded payload, with a
	// checksummed binary wire format.
	CodedBlock = rlnc.CodedBlock
	// Encoder emits random linear combinations of a segment's blocks.
	Encoder = rlnc.Encoder
	// Decoder recovers a segment by progressive Gauss–Jordan elimination.
	Decoder = rlnc.Decoder
	// BatchDecoder recovers a segment by matrix inversion plus multiply.
	BatchDecoder = rlnc.BatchDecoder
	// Recoder emits fresh combinations of received blocks without decoding.
	Recoder = rlnc.Recoder
	// Object is a payload split into consecutive segments.
	Object = rlnc.Object
	// EncodeMode selects full-block or partitioned-block parallelism.
	EncodeMode = rlnc.EncodeMode
)

// Encode partitioning modes (paper Sec. 5.3).
const (
	PartitionedBlock = rlnc.PartitionedBlock
	FullBlock        = rlnc.FullBlock
)

// NewSegment returns a zero-filled segment.
func NewSegment(id uint32, p Params) (*Segment, error) { return rlnc.NewSegment(id, p) }

// SegmentFromData builds a zero-padded segment from data.
func SegmentFromData(id uint32, p Params, data []byte) (*Segment, error) {
	return rlnc.SegmentFromData(id, p, data)
}

// NewEncoder returns a random linear encoder over seg.
func NewEncoder(seg *Segment, rng *rand.Rand, opts ...rlnc.EncoderOption) *Encoder {
	return rlnc.NewEncoder(seg, rng, opts...)
}

// WithDensity makes the encoder draw sparse coefficient vectors.
func WithDensity(d float64) rlnc.EncoderOption { return rlnc.WithDensity(d) }

// CodecOption configures the block-consuming codec constructors
// (NewDecoder, NewBatchDecoder, NewRecoder); see rlnc.Option.
type CodecOption = rlnc.Option

// WithScratch pins a codec to a caller-owned workspace.
func WithScratch(s *rlnc.Scratch) CodecOption { return rlnc.WithScratch(s) }

// WithSeed gives a codec a private deterministic random source (Recoder.Emit).
func WithSeed(seed int64) CodecOption { return rlnc.WithSeed(seed) }

// NewDecoder returns a progressive Gauss–Jordan decoder.
func NewDecoder(p Params, opts ...CodecOption) (*Decoder, error) { return rlnc.NewDecoder(p, opts...) }

// NewBatchDecoder returns an invert-then-multiply decoder.
func NewBatchDecoder(p Params, opts ...CodecOption) (*BatchDecoder, error) {
	return rlnc.NewBatchDecoder(p, opts...)
}

// NewRecoder returns a recoder for intermediate nodes.
func NewRecoder(p Params, opts ...CodecOption) (*Recoder, error) {
	return rlnc.NewRecoder(p, opts...)
}

// Split divides data into coding segments.
func Split(data []byte, p Params) (*Object, error) { return rlnc.Split(data, p) }

// ReassembleSegments rebuilds a payload from decoded segments.
func ReassembleSegments(segs []*Segment, length int, p Params) ([]byte, error) {
	return rlnc.ReassembleSegments(segs, length, p)
}

// EncodeBatchInto computes dsts[b] = Σᵢ coeffs[b][i]·seg.Block(i) for every
// b in one cache-tiled pass over the source blocks — the batch-shaped encode
// primitive behind the parallel workers. Producing many payloads per sweep
// amortizes source-block memory traffic across the whole batch.
func EncodeBatchInto(dsts [][]byte, seg *Segment, coeffs [][]byte) error {
	return rlnc.EncodeBatchInto(dsts, seg, coeffs)
}

// XorSlice computes dst ^= src with wide-word XOR — the table-free GF(2)
// add kernel behind the systematic fast path. Slices must be equal length.
func XorSlice(dst, src []byte) { gf256.XorSlice(dst, src) }

// XorSlice4 folds four equal-length sources into dst in one fused pass,
// reading dst once instead of four times.
func XorSlice4(dst, s1, s2, s3, s4 []byte) { gf256.XorSlice4(dst, s1, s2, s3, s4) }

// NewParallelEncoder returns a goroutine-parallel host encoder.
func NewParallelEncoder(workers int, mode EncodeMode) (*rlnc.ParallelEncoder, error) {
	return rlnc.NewParallelEncoder(workers, mode)
}

// DecodeSegmentsParallel batch-decodes independent segments with worker
// goroutines; each worker runs the two-stage pipeline. Cancelling ctx stops
// the sweep at segment granularity and returns ctx.Err().
func DecodeSegmentsParallel(ctx context.Context, p Params, sets [][]*CodedBlock, workers int) ([]*Segment, error) {
	return rlnc.DecodeSegmentsParallel(ctx, p, sets, workers)
}

// DecodeTwoStage recovers one segment with the paper's explicit two-stage
// pipeline (Sec. 5.2): invert the n×n coefficient matrix on [C | I] — no
// payload bytes drag through the elimination — then recover all source
// blocks in one tiled b = C⁻¹·x multiply.
func DecodeTwoStage(p Params, blocks []*CodedBlock) (*Segment, error) {
	return rlnc.DecodeTwoStage(p, blocks)
}

// Simulated hardware (see internal/gpu and internal/cpusim).
type (
	// GPUDevice is a simulated CUDA-class GPU with a calibrated cost model.
	GPUDevice = gpu.Device
	// GPUSpec describes a simulated GPU.
	GPUSpec = gpu.DeviceSpec
	// GPUScheme identifies a GPU multiplication kernel (LoopBased,
	// TableBased0…TableBased5).
	GPUScheme = gpu.Scheme
	// CPUMachine is a simulated multicore host.
	CPUMachine = cpusim.Machine
	// CPUSpec describes a simulated multicore host.
	CPUSpec = cpusim.CPUSpec
	// CPUScheme identifies a CPU multiplication strategy.
	CPUScheme = cpusim.Scheme
)

// CPU multiplication strategies (paper Secs. 4.1 and 5.1.3).
const (
	CPULoopSIMD   = cpusim.LoopSIMD
	CPUTableBased = cpusim.TableBased
)

// GPU kernel schemes in the paper's Fig. 7 ladder.
const (
	LoopBased   = gpu.LoopBased
	TableBased0 = gpu.TableBased0
	TableBased1 = gpu.TableBased1
	TableBased2 = gpu.TableBased2
	TableBased3 = gpu.TableBased3
	TableBased4 = gpu.TableBased4
	TableBased5 = gpu.TableBased5
)

// GTX280 returns the paper's primary GPU testbed spec.
func GTX280() GPUSpec { return gpu.GTX280() }

// GeForce8800GT returns the prior-generation GPU baseline spec.
func GeForce8800GT() GPUSpec { return gpu.GeForce8800GT() }

// MacPro returns the paper's 8-core Xeon CPU baseline spec.
func MacPro() CPUSpec { return cpusim.MacPro() }

// NewGPUDevice creates a simulated device.
func NewGPUDevice(spec GPUSpec) (*GPUDevice, error) { return gpu.NewDevice(spec) }

// NewCPUMachine creates a simulated multicore host.
func NewCPUMachine(spec CPUSpec) (*CPUMachine, error) { return cpusim.NewMachine(spec) }

// Engines (see internal/core).
type (
	// EncodeEngine produces coded blocks at an engine-specific rate.
	EncodeEngine = core.Encoder
	// DecodeEngine recovers segments from coded block sets.
	DecodeEngine = core.Decoder
	// EngineReport describes one engine run.
	EngineReport = core.Report
	// StreamScenario is a streaming-server configuration.
	StreamScenario = core.StreamScenario
)

// NewGPUEncoder returns an encode engine on a fresh simulated device.
func NewGPUEncoder(spec GPUSpec, scheme GPUScheme) (*core.GPUEncoder, error) {
	return core.NewGPUEncoder(spec, scheme)
}

// NewCPUEncoder returns a simulated multicore encode engine.
func NewCPUEncoder(spec CPUSpec, mode EncodeMode, scheme CPUScheme) (*core.CPUEncoder, error) {
	return core.NewCPUEncoder(spec, mode, scheme)
}

// NewHostEncoder returns an engine measuring the real local machine.
func NewHostEncoder(workers int, mode EncodeMode) (*core.HostEncoder, error) {
	return core.NewHostEncoder(workers, mode)
}

// NewCombinedEncoder pairs a GPU and a CPU engine (paper Sec. 5.4.1).
func NewCombinedEncoder(gpuEnc, cpuEnc EncodeEngine) *core.CombinedEncoder {
	return core.NewCombinedEncoder(gpuEnc, cpuEnc)
}

// GPUDecodeOptions tunes the single-segment GPU decoder (atomicMin pivot
// search, coefficient-matrix caching).
type GPUDecodeOptions = gpu.DecodeOptions

// NewGPUSingleDecoder returns the paper's progressive single-segment GPU
// decoder (Sec. 4.2.2).
func NewGPUSingleDecoder(spec GPUSpec, opts GPUDecodeOptions) (*core.GPUSingleDecoder, error) {
	return core.NewGPUSingleDecoder(spec, opts)
}

// NewGPUMultiDecoder returns the paper's multi-segment GPU decoder
// (Sec. 5.2); segmentsPerSM 1 = 30-segment mode, 2 = 60-segment mode.
func NewGPUMultiDecoder(spec GPUSpec, segmentsPerSM int) (*core.GPUMultiDecoder, error) {
	return core.NewGPUMultiDecoder(spec, segmentsPerSM)
}

// NewCPUCooperativeDecoder returns the Fig. 4(b) CPU baseline decoder.
func NewCPUCooperativeDecoder(spec CPUSpec) (*core.CPUCooperativeDecoder, error) {
	return core.NewCPUCooperativeDecoder(spec)
}

// NewCPUMultiDecoder returns the one-thread-per-segment CPU decoder.
func NewCPUMultiDecoder(spec CPUSpec) (*core.CPUMultiDecoder, error) {
	return core.NewCPUMultiDecoder(spec)
}

// NewHostDecoder returns a decode engine measuring the real local machine.
func NewHostDecoder(workers int) *core.HostDecoder {
	return core.NewHostDecoder(workers)
}

// DefaultStreamScenario returns the paper's 768 Kbps / 512 KB-segment
// streaming configuration (Sec. 5.1.1).
func DefaultStreamScenario() StreamScenario { return core.DefaultStreamScenario() }

// Streaming server (see internal/stream).
type (
	// StreamServer serves coded blocks to downstream peers.
	StreamServer = stream.Server
	// StreamMetrics reports one serving run.
	StreamMetrics = stream.Metrics
)

// NewStreamServer builds a streaming server over media with the given
// engine.
func NewStreamServer(scenario StreamScenario, enc EncodeEngine, media []byte) (*StreamServer, error) {
	return stream.NewServer(scenario, enc, media)
}

// P2P distribution (see internal/p2p).
type (
	// P2PConfig describes an Avalanche-style distribution session.
	P2PConfig = p2p.Config
	// P2PResult summarizes a session.
	P2PResult = p2p.Result
	// P2PMode selects the distribution strategy.
	P2PMode = p2p.Mode
)

// P2P distribution strategies.
const (
	P2PModeRLNC    = p2p.ModeRLNC
	P2PModeForward = p2p.ModeForward
	P2PModeUncoded = p2p.ModeUncoded
)

// RunP2P executes one distribution session.
func RunP2P(cfg P2PConfig) (*P2PResult, error) { return p2p.Run(cfg) }

// Extended codec types.
type (
	// SeededBlock carries an 8-byte coefficient seed instead of an n-byte
	// vector (compact headers for source-generated blocks).
	SeededBlock = rlnc.SeededBlock
	// SystematicEncoder emits source blocks verbatim before coding.
	SystematicEncoder = rlnc.SystematicEncoder
	// GaussianDecoder defers back-substitution to a single final pass —
	// the "traditional Gaussian elimination" alternative of paper Sec. 3.
	GaussianDecoder = rlnc.GaussianDecoder
)

// SystematicOption tunes a SystematicEncoder's repair schedule.
type SystematicOption = rlnc.SystematicOption

// NewSystematicEncoder wraps seg in a systematic encoder: one verbatim
// sweep of the source blocks, then GF(2) bitmask XOR repair blocks, then a
// dense GF(2^8) tail for the stubborn final ranks.
func NewSystematicEncoder(seg *Segment, rng *rand.Rand, opts ...SystematicOption) *SystematicEncoder {
	return rlnc.NewSystematicEncoder(seg, rng, opts...)
}

// WithXorRepair sets how many GF(2) bitmask repair blocks follow each
// verbatim sweep before the encoder falls back to dense coding.
func WithXorRepair(r int) SystematicOption { return rlnc.WithXorRepair(r) }

// WithDenseTail sets how many dense GF(2^8) blocks close each cycle.
func WithDenseTail(t int) SystematicOption { return rlnc.WithDenseTail(t) }

// NewGaussianDecoder returns the forward-elimination-only decoder.
func NewGaussianDecoder(p Params) (*GaussianDecoder, error) {
	return rlnc.NewGaussianDecoder(p)
}

// CoeffsFromSeed regenerates a seeded block's coefficient vector.
func CoeffsFromSeed(seed int64, n int) []byte { return rlnc.CoeffsFromSeed(seed, n) }

// Network transport (see internal/netio).
type (
	// NetServer streams coded blocks to TCP (or any net.Conn) clients:
	// concurrent sessions fed from one shared encoder, bounded per-client
	// queues with shedding, write deadlines, and a metrics snapshot.
	NetServer = netio.Server
	// NetServerOption configures a NetServer.
	NetServerOption = netio.ServerOption
	// NetSnapshot is the server-wide observability surface.
	NetSnapshot = netio.Snapshot
	// NetSessionSnapshot describes one live serving session.
	NetSessionSnapshot = netio.SessionSnapshot
	// NetCounters is the shared atomic serving-counter set (also used by
	// the stream.Server engine driver).
	NetCounters = netio.Counters
	// FetchStats reports a network download.
	FetchStats = netio.FetchStats
)

// NewNetServer builds a push-streaming server over media split at p.
func NewNetServer(media []byte, p Params, opts ...NetServerOption) (*NetServer, error) {
	return netio.NewServer(media, p, opts...)
}

// NetServer options (see internal/netio for full documentation).
var (
	// WithQueueDepth bounds each session's send queue.
	WithQueueDepth = netio.WithQueueDepth
	// WithWriteDeadline bounds every record write.
	WithWriteDeadline = netio.WithWriteDeadline
	// WithWriteRetries sets the retry budget of a timed-out write.
	WithWriteRetries = netio.WithWriteRetries
	// WithEncodeBatch sets blocks encoded per segment per pump round.
	WithEncodeBatch = netio.WithEncodeBatch
	// WithMaxSessions caps concurrent sessions.
	WithMaxSessions = netio.WithMaxSessions
	// WithEncoderWorkers sets the shared encoder's worker count.
	WithEncoderWorkers = netio.WithEncoderWorkers
	// WithServerSeed fixes the pump's coefficient-stream seed.
	WithServerSeed = netio.WithServerSeed
	// WithWireMode selects the serving wire discipline (dense or
	// systematic + XOR); the negotiated mode rides the session handshake.
	WithWireMode = netio.WithWireMode
	// WithServePace floors the interval between pump rounds, modeling a
	// capacity-constrained origin uplink.
	WithServePace = netio.WithServePace
	// WithPumpShards splits serving across independent encoder pumps;
	// sessions join the least-loaded shard at handshake.
	WithPumpShards = netio.WithPumpShards
	// WithFanout selects the pump-to-queue hand-off rung (amortized bulk
	// offers + vectored writes, or the per-record baseline).
	WithFanout = netio.WithFanout
	// WithRetryAfter sets the retry hint carried by BUSY admission
	// decisions.
	WithRetryAfter = netio.WithRetryAfter
	// WithBrownout enables the overload degradation ladder (pace → lean
	// schedule → reject) driven by the server's pressure signal.
	WithBrownout = netio.WithBrownout
)

// Graceful degradation (see internal/netio): a server under pressure climbs
// a deterministic brownout ladder, and a retiring server drains — new
// handshakes get structured BUSY/REDIRECT decisions while in-flight sessions
// run to rank completion (NetServer.Drain).
type (
	// BrownoutConfig tunes the overload degradation ladder.
	BrownoutConfig = netio.BrownoutConfig
	// BrownoutRung is a position on the ladder.
	BrownoutRung = netio.BrownoutRung
	// DegradableSource is a RecordSource with a cheaper degraded schedule
	// the brownout controller can toggle.
	DegradableSource = netio.DegradableSource
)

// Brownout ladder rungs, in escalation order.
const (
	BrownoutOff    = netio.BrownoutOff
	BrownoutPaced  = netio.BrownoutPaced
	BrownoutLean   = netio.BrownoutLean
	BrownoutReject = netio.BrownoutReject
)

// Literal serving configuration (see internal/netio). The functional options
// above and these structs are two spellings of one configuration path: both
// run the same Validate/normalize pipeline, so a config that passes
// Validate behaves identically however it was assembled.
type (
	// NetServerConfig is the complete serving configuration.
	NetServerConfig = netio.ServerConfig
	// NetFetcherConfig is the complete resilient-fetcher configuration.
	NetFetcherConfig = netio.FetcherConfig
	// FanoutMode selects how the encoder pump hands records to session
	// queues — the serving-side optimization ladder.
	FanoutMode = netio.FanoutMode
	// NetShardSnapshot is one encoder pump's slice of a NetSnapshot.
	NetShardSnapshot = netio.ShardSnapshot
	// ShardedRecordSource is a RecordSource that can partition itself
	// across pump shards instead of being serialized behind one lock.
	ShardedRecordSource = netio.ShardedRecordSource
)

// Fan-out rungs.
const (
	// FanoutAmortized (default): bulk offers, batched counters, vectored
	// writes.
	FanoutAmortized = netio.FanoutAmortized
	// FanoutPerRecord: the original one-offer-one-write-per-record cost
	// profile, kept selectable so capacity ladders can measure the delta.
	FanoutPerRecord = netio.FanoutPerRecord

	// NetSnapshotVersion identifies the NetSnapshot schema.
	NetSnapshotVersion = netio.SnapshotVersion
)

// ParseFanoutMode parses a FanoutMode from its flag spelling ("amortized",
// "record").
func ParseFanoutMode(s string) (FanoutMode, error) { return netio.ParseFanoutMode(s) }

// DefaultNetServerConfig returns the serving defaults the option-based
// constructors start from.
func DefaultNetServerConfig() NetServerConfig { return netio.DefaultServerConfig() }

// DefaultNetFetcherConfig returns the fetcher defaults the option-based
// constructor starts from.
func DefaultNetFetcherConfig() NetFetcherConfig { return netio.DefaultFetcherConfig() }

// NewNetServerFromConfig builds a push-streaming server from a literal
// config; cfg.Validate failures are returned.
func NewNetServerFromConfig(media []byte, p Params, cfg NetServerConfig) (*NetServer, error) {
	return netio.NewServerFromConfig(media, p, cfg)
}

// NewSourceServerFromConfig builds a RecordSource-backed server from a
// literal config.
func NewSourceServerFromConfig(src RecordSource, cfg NetServerConfig) (*NetServer, error) {
	return netio.NewSourceServerFromConfig(src, cfg)
}

// NewFetcherFromConfig builds a resilient Fetcher from a literal config;
// cfg.Validate failures are returned.
func NewFetcherFromConfig(dial DialFunc, cfg NetFetcherConfig) (*Fetcher, error) {
	return netio.NewFetcherFromConfig(dial, cfg)
}

// Pluggable serving sources (see internal/netio): a NetServer normally
// serves a media object, but any RecordSource — most notably a mesh relay's
// recoder bank — can sit behind the same pump, queues, and shed machinery.
type (
	// RecordSource supplies framed records for one declared session shape.
	RecordSource = netio.RecordSource
	// SessionInfo is the session shape a RecordSource declares: coding
	// params, segment count, payload length, and wire mode.
	SessionInfo = netio.SessionInfo
)

// NewSourceServer builds a push-streaming server over an arbitrary
// RecordSource instead of a media object.
func NewSourceServer(src RecordSource, opts ...NetServerOption) (*NetServer, error) {
	return netio.NewSourceServer(src, opts...)
}

// FrameRecord marshals one coded block into the record framing for mode —
// the helper RecordSource implementations use to produce wire records.
func FrameRecord(b *CodedBlock, mode WireMode) ([]byte, error) {
	return netio.FrameRecord(b, mode)
}

// Redirector is a mutable dial target: it satisfies DialFunc while letting
// a control plane re-point the next reconnect at a different server — the
// leaf-side half of mesh remediation.
type Redirector = netio.Redirector

// NewRedirector returns a Redirector dialing target until re-pointed.
func NewRedirector(target string) *Redirector { return netio.NewRedirector(target) }

// WireMode is the wire discipline a serving session negotiates in its
// handshake: classic dense GF(2^8) records, or the systematic schedule
// (source blocks verbatim, GF(2) bitmask XOR repair, dense tail).
type WireMode = netio.WireMode

// Wire disciplines.
const (
	// ModeDense streams dense GF(2^8) coded records only.
	ModeDense = netio.ModeDense
	// ModeSystematic streams the systematic + XOR schedule, letting
	// clients decode on the table-free XOR fast path until a dense
	// record arrives.
	ModeSystematic = netio.ModeSystematic
)

// ParseWireMode parses a WireMode from its flag spelling ("dense",
// "systematic").
func ParseWireMode(s string) (WireMode, error) { return netio.ParseWireMode(s) }

// Fetch downloads and decodes a served object from conn. Cancelling ctx
// unblocks any pending read and returns ctx.Err(). Fetch is the one-shot
// path: any stream failure is final. For a client that survives resets,
// framing loss, and server restarts without losing decoder rank, use a
// Fetcher.
func Fetch(ctx context.Context, conn net.Conn) ([]byte, *FetchStats, error) {
	return netio.Fetch(ctx, conn)
}

// Resilient fetch client (see internal/netio).
type (
	// Fetcher is a reconnecting download client: it owns a dial function
	// rather than a connection and carries per-segment decoders across
	// reconnects, so a reset or server restart costs only the bytes in
	// flight, never accumulated rank.
	Fetcher = netio.Fetcher
	// FetcherOption configures a Fetcher.
	FetcherOption = netio.FetcherOption
	// FetchResult carries a fetch's payload, decoded segments, per-segment
	// ranks, and stats — returned even when the fetch failed.
	FetchResult = netio.FetchResult
	// DialFunc opens one connection to the serving peer.
	DialFunc = netio.DialFunc
)

// NewFetcher returns a resilient Fetcher that downloads through dial.
func NewFetcher(dial DialFunc, opts ...FetcherOption) *Fetcher {
	return netio.NewFetcher(dial, opts...)
}

// Fetcher options (see internal/netio for full documentation).
var (
	// WithMaxAttempts caps total connection attempts (0 = unlimited).
	WithMaxAttempts = netio.WithMaxAttempts
	// WithBackoff sets the reconnect backoff base and cap.
	WithBackoff = netio.WithBackoff
	// WithBackoffJitter sets the backoff jitter fraction in [0, 1].
	WithBackoffJitter = netio.WithBackoffJitter
	// WithBackoffSeed makes the backoff schedule reproducible.
	WithBackoffSeed = netio.WithBackoffSeed
	// WithReconnectHook observes every reconnect and the ranks carried.
	WithReconnectHook = netio.WithReconnectHook
	// WithResumeState preloads decoders from a Fetcher.State blob.
	WithResumeState = netio.WithResumeState
	// WithRecordTap observes every accepted record; taps compose and run
	// in installation order.
	WithRecordTap = netio.WithRecordTap
	// WithSessionHook observes each session's outcome; hooks compose and
	// run in installation order.
	WithSessionHook = netio.WithSessionHook
	// WithFetchTimeout bounds the whole fetch wall clock; on expiry the
	// partial FetchResult is returned with ErrFetchTimeout.
	WithFetchTimeout = netio.WithFetchTimeout
	// WithRedirector lets the fetcher honor REDIRECT admission decisions
	// by re-pointing the given Redirector at the named survivor.
	WithRedirector = netio.WithRedirector
)

// Deterministic fault injection (see internal/faultnet): a seeded chaos
// net.Conn layer for testing transports under byte corruption, short
// reads/writes, read stalls, and mid-stream resets on a reproducible
// schedule.
type (
	// FaultConfig schedules the injected faults for one seed.
	FaultConfig = faultnet.Config
	// FaultCounters aggregates injected-fault counts across connections.
	FaultCounters = faultnet.Counters
	// FaultCounterView is a consistent snapshot of FaultCounters.
	FaultCounterView = faultnet.CounterView
	// FaultConn is a net.Conn with scheduled fault injection.
	FaultConn = faultnet.Conn
	// FaultListener wraps every accepted conn in fault injection.
	FaultListener = faultnet.Listener
)

// WrapFaulty wraps conn in a deterministic fault-injection layer.
func WrapFaulty(conn net.Conn, cfg FaultConfig) *FaultConn { return faultnet.Wrap(conn, cfg) }

// NewFaultListener wraps l so every accepted conn injects faults on a
// per-connection deterministic schedule.
func NewFaultListener(l net.Listener, cfg FaultConfig) *FaultListener {
	return faultnet.NewListener(l, cfg)
}

// FaultyDialer wraps dial so every dialed conn injects faults on a
// per-connection deterministic schedule, sharing the returned counters.
func FaultyDialer(cfg FaultConfig, dial DialFunc) (DialFunc, *FaultCounters) {
	d, ctr := faultnet.Dialer(cfg, dial)
	return d, ctr
}

// Recoding relay mesh (see internal/mesh): an origin server feeding a tier
// of relays that recombine received blocks without decoding and re-serve
// them to a wave of leaf fetchers, with a control plane — membership pool,
// heartbeat/rank health detection, least-loaded coordinator, remediator —
// that re-points leaves off dead relays mid-transfer.
type (
	// MeshTopology describes an in-process mesh: media, coding params,
	// relay/leaf counts, wire mode, chaos configs, and health cadence.
	MeshTopology = mesh.Topology
	// Mesh is a running origin + relay tier + leaf wave with its control
	// plane.
	Mesh = mesh.Mesh
	// MeshLeaf is one leaf fetcher in the wave.
	MeshLeaf = mesh.Leaf
	// MeshHealthConfig sets the suspect/dead failure-detection windows.
	MeshHealthConfig = mesh.HealthConfig
	// MeshMemberView is one relay's state in a snapshot.
	MeshMemberView = mesh.MemberView
	// MeshSnapshot is a consistent JSON-taggable view of the whole mesh.
	MeshSnapshot = mesh.MeshSnapshot
)

// NewMesh builds (but does not start) a mesh for the topology.
func NewMesh(topo MeshTopology) (*Mesh, error) { return mesh.New(topo) }

// Coded file containers (see internal/ncfile).
type (
	// FileEncodeOptions tunes EncodeFile.
	FileEncodeOptions = ncfile.EncodeOptions
	// FileEncodeSummary reports an EncodeFile run.
	FileEncodeSummary = ncfile.EncodeSummary
	// FileDecodeSummary reports a DecodeFile run.
	FileDecodeSummary = ncfile.DecodeSummary
)

// EncodeFile writes payload bytes from r as a loss-tolerant coded container
// on w.
func EncodeFile(w io.Writer, r io.Reader, p Params, opts FileEncodeOptions) (*FileEncodeSummary, error) {
	return ncfile.Encode(w, r, p, opts)
}

// DecodeFile recovers the payload of a coded container, skipping corrupt
// records.
func DecodeFile(w io.Writer, r io.Reader) (*FileDecodeSummary, error) {
	return ncfile.Decode(w, r)
}

// Experiments returns the IDs of the paper's reproduced tables and figures
// in evaluation order (see EXPERIMENTS.md).
func Experiments() []string {
	reg := experiments.Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// RunExperiment regenerates one table or figure by ID and renders it as an
// aligned text table to w.
func RunExperiment(id string, w io.Writer) error {
	runner, ok := experiments.Lookup(id)
	if !ok {
		return fmt.Errorf("extremenc: unknown experiment %q", id)
	}
	fig, err := runner()
	if err != nil {
		return err
	}
	return fig.Render(w)
}

// Playback modeling (see internal/stream).
type (
	// PlaybackConfig describes a live viewing session to simulate.
	PlaybackConfig = stream.PlaybackConfig
	// PlaybackMetrics reports the viewer experience.
	PlaybackMetrics = stream.PlaybackMetrics
)

// SimulatePlayback models viewer startup delay and stalls for a peer
// population against a server's coding and NIC capacity (Sec. 5.1.2's
// buffering analysis).
func SimulatePlayback(cfg PlaybackConfig) (*PlaybackMetrics, error) {
	return stream.SimulatePlayback(cfg)
}

// MaxSmoothPeers returns the largest stall-free viewer count at the given
// encode rate.
func MaxSmoothPeers(s StreamScenario, encodeMBps float64) int {
	return stream.MaxSmoothPeers(s, encodeMBps)
}

// Observability (see internal/obs). One MetricsRegistry collects every
// counter, gauge, and stage-latency histogram the library produces; the
// session server attaches via WithMetricsRegistry, the resilient fetcher
// via WithMetrics, the chaos link via FaultCounters.Register, and the
// stream server via Server.RegisterMetrics. SetMetricsSink additionally
// enables the stage-timing spans on the codec and transport hot paths —
// without a sink they cost one atomic load and zero allocations.
type (
	// MetricsRegistry is a registry of named lock-free metrics with
	// Prometheus-text (WriteText) and JSON (SnapshotJSON) exposition.
	MetricsRegistry = obs.Registry
	// MetricsSample is one parsed series from a Prometheus text scrape.
	MetricsSample = obs.TextSample
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SetMetricsSink installs reg as the process-wide span sink, turning on the
// stage-latency histograms (rlnc.encode_batch, rlnc.absorb, netio.*,
// fetch.*). Passing nil disables spans again, returning the hot paths to
// their free no-op form.
func SetMetricsSink(reg *MetricsRegistry) { obs.SetSink(reg) }

// MetricsHandler serves reg over HTTP: Prometheus text on /metrics, a JSON
// snapshot on /metrics.json (merged with extra() when non-nil), and the
// pprof profiles under /debug/pprof/; every other path is a 404.
func MetricsHandler(reg *MetricsRegistry, extra func() map[string]any) http.Handler {
	return obs.Handler(reg, extra)
}

// ParseMetricsText parses a Prometheus text exposition (as produced by
// MetricsRegistry.WriteText or scraped from /metrics) with the in-repo
// minimal parser.
func ParseMetricsText(r io.Reader) ([]MetricsSample, error) { return obs.ParseText(r) }

var (
	// WithMetricsRegistry attaches a server's counters to a registry.
	WithMetricsRegistry = netio.WithMetricsRegistry
	// WithFetchMetrics attaches a fetcher's counters to a registry.
	WithFetchMetrics = netio.WithMetrics
)

// Sentinel errors, re-exported from the codec and transport layers so
// callers can branch with errors.Is against the facade alone.
var (
	// ErrInvalidParams reports an unusable coding configuration.
	ErrInvalidParams = rlnc.ErrInvalidParams
	// ErrNotReady reports a Segment call before full rank.
	ErrNotReady = rlnc.ErrNotReady
	// ErrWrongSegment reports a block for a different segment.
	ErrWrongSegment = rlnc.ErrWrongSegment
	// ErrRankDeficient reports blocks that do not span the segment.
	ErrRankDeficient = rlnc.ErrRankDeficient
	// ErrWorkerCount reports a non-positive worker count.
	ErrWorkerCount = rlnc.ErrWorkerCount
	// ErrEncodeMode reports an unknown parallel-encode mode.
	ErrEncodeMode = rlnc.ErrEncodeMode
	// ErrBlockCountInvalid reports a non-positive coded-block request.
	ErrBlockCountInvalid = rlnc.ErrBlockCountInvalid
	// ErrCoeffsMismatch reports a mis-sized coefficient vector.
	ErrCoeffsMismatch = rlnc.ErrCoeffsMismatch
	// ErrBlockShape reports a mis-shaped coded block.
	ErrBlockShape = rlnc.ErrBlockShape
	// ErrBatchShape reports inconsistent batch-encode shapes.
	ErrBatchShape = rlnc.ErrBatchShape
	// ErrNoBlocks reports a recombination request with no input.
	ErrNoBlocks = rlnc.ErrNoBlocks
	// ErrNoSeed reports Recoder.Emit without WithSeed.
	ErrNoSeed = rlnc.ErrNoSeed
	// ErrDataTooLarge reports payload bytes exceeding the segment size.
	ErrDataTooLarge = rlnc.ErrDataTooLarge
	// ErrParamsMismatch reports segments with disagreeing parameters.
	ErrParamsMismatch = rlnc.ErrParamsMismatch
	// ErrBadHandshake reports a malformed transport session header.
	ErrBadHandshake = netio.ErrBadHandshake
	// ErrRecordLength reports an implausible record length prefix.
	ErrRecordLength = netio.ErrRecordLength
	// ErrStreamTruncated reports a coded stream that ended early.
	ErrStreamTruncated = netio.ErrStreamTruncated
	// ErrFetchBudget reports a Fetcher that ran out of attempts; the
	// FetchResult alongside it still carries all accumulated progress.
	ErrFetchBudget = netio.ErrFetchBudget
	// ErrHeaderMismatch reports a reconnect answered with a different
	// session header.
	ErrHeaderMismatch = netio.ErrHeaderMismatch
	// ErrBadResumeState reports an unusable WithResumeState blob.
	ErrBadResumeState = netio.ErrBadResumeState
	// ErrBadDecoderState reports an unusable serialized decoder.
	ErrBadDecoderState = rlnc.ErrBadDecoderState
	// ErrNotBinary reports a GF(2) wire encoding request for a block whose
	// coefficients are not all 0/1.
	ErrNotBinary = rlnc.ErrNotBinary
	// ErrBadBitmask reports an XNC2 record with bits set past the block
	// count.
	ErrBadBitmask = rlnc.ErrBadBitmask
	// ErrInjectedReset reports a fault-injected connection reset.
	ErrInjectedReset = faultnet.ErrInjectedReset
	// ErrServerClosed reports an operation on a shut-down server.
	ErrServerClosed = netio.ErrServerClosed
	// ErrShortWrite reports a record write that missed its deadline budget.
	ErrShortWrite = netio.ErrShortWrite
	// ErrAdmissionBusy reports a handshake answered with a BUSY admission
	// decision: the server is at its session cap or shedding load.
	ErrAdmissionBusy = netio.ErrAdmissionBusy
	// ErrAdmissionRedirect reports a handshake answered with a REDIRECT
	// admission decision: the server is draining toward a named survivor.
	ErrAdmissionRedirect = netio.ErrAdmissionRedirect
	// ErrFetchTimeout reports a fetch that exhausted its WithFetchTimeout
	// wall-clock budget; the partial FetchResult alongside it still carries
	// all accumulated progress.
	ErrFetchTimeout = netio.ErrFetchTimeout
)
