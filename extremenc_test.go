package extremenc_test

import (
	"bytes"
	"math/rand"
	"net"
	"strings"
	"testing"

	"extremenc"
)

// TestQuickstart exercises the documented public-API flow end to end.
func TestQuickstart(t *testing.T) {
	params := extremenc.Params{BlockCount: 16, BlockSize: 256}
	payload := make([]byte, params.SegmentSize())
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)

	seg, err := extremenc.SegmentFromData(0, params, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rng)
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), payload) {
		t.Fatal("quickstart roundtrip differs")
	}
}

// TestRecodePath exercises encode → recode → decode via the facade.
func TestRecodePath(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, params.SegmentSize())
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(3, params, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rng)
	rec, err := extremenc.NewRecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < params.BlockCount+1; i++ {
		if err := rec.Add(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		b, err := rec.NextBlock(rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("recode path roundtrip differs")
	}
}

// TestSimulatedDevices exercises the GPU and CPU testbed facade.
func TestSimulatedDevices(t *testing.T) {
	gpuEnc, err := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	params := extremenc.Params{BlockCount: 16, BlockSize: 512}
	seg, err := extremenc.NewSegment(0, params)
	if err != nil {
		t.Fatal(err)
	}
	rand.New(rand.NewSource(4)).Read(seg.Data())
	rep, err := gpuEnc.EncodeBlocks(seg, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BandwidthMBps() <= 0 {
		t.Fatal("no GPU bandwidth")
	}
	dec, err := extremenc.NewGPUMultiDecoder(extremenc.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	set := rep.Blocks
	if len(set) < params.BlockCount {
		// Engines materialize a sample; collect a decodable set directly.
		gpuEnc.SetMaterialize(params.BlockCount + 1)
		rep, err = gpuEnc.EncodeBlocks(seg, params.BlockCount+1, 6)
		if err != nil {
			t.Fatal(err)
		}
		set = rep.Blocks
	}
	drep, err := dec.DecodeSegments([][]*extremenc.CodedBlock{set}, params)
	if err != nil {
		t.Fatal(err)
	}
	if !drep.Segments[0].Equal(seg) {
		t.Fatal("GPU multi decode differs")
	}
}

// TestStreamAndP2PFacade smoke-tests the deployment components.
func TestStreamAndP2PFacade(t *testing.T) {
	scenario := extremenc.DefaultStreamScenario()
	scenario.Params = extremenc.Params{BlockCount: 8, BlockSize: 512}
	enc, err := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	media := make([]byte, scenario.Params.SegmentSize())
	rand.New(rand.NewSource(7)).Read(media)
	srv, err := extremenc.NewStreamServer(scenario, enc, media)
	if err != nil {
		t.Fatal(err)
	}
	m, err := srv.ServeLive(50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SampleVerified {
		t.Fatal("stream sample not verified")
	}

	res, err := extremenc.RunP2P(extremenc.P2PConfig{
		Params:           extremenc.Params{BlockCount: 8, BlockSize: 128},
		Peers:            6,
		Neighbors:        2,
		LinkBandwidthBps: 8e6,
		LinkLatency:      0.001,
		Mode:             extremenc.P2PModeRLNC,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("p2p completed %d/6", res.Completed)
	}
}

// TestExtendedCodecFacade exercises the systematic, seeded and Gaussian
// paths through the public API.
func TestExtendedCodecFacade(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(20))
	payload := make([]byte, params.SegmentSize())
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(0, params, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Systematic encoder feeding a Gaussian decoder.
	se := extremenc.NewSystematicEncoder(seg, rng)
	ge, err := extremenc.NewGaussianDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !ge.Ready() {
		b, err := se.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ge.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ge.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("systematic + Gaussian roundtrip differs")
	}

	// Seeded coefficients regenerate deterministically.
	enc := extremenc.NewEncoder(seg, rng)
	sb, err := enc.NextSeededBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(extremenc.CoeffsFromSeed(sb.Seed, params.BlockCount), sb.Expand().Coeffs) {
		t.Fatal("CoeffsFromSeed mismatch")
	}
}

// TestFileAndNetFacade round-trips the container and socket paths.
func TestFileAndNetFacade(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 128}
	payload := make([]byte, 2*params.SegmentSize()-9)
	rand.New(rand.NewSource(21)).Read(payload)

	var container bytes.Buffer
	if _, err := extremenc.EncodeFile(&container, bytes.NewReader(payload), params,
		extremenc.FileEncodeOptions{Seed: 22}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := extremenc.DecodeFile(&out, bytes.NewReader(container.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("file container roundtrip differs")
	}

	srv, err := extremenc.NewNetServer(payload, params)
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	got, stats, err := extremenc.Fetch(client)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || stats.Records == 0 {
		t.Fatal("network fetch differs")
	}
}

func TestExperimentsFacade(t *testing.T) {
	ids := extremenc.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments listed", len(ids))
	}
	var sb strings.Builder
	if err := extremenc.RunExperiment("combined", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "combined") {
		t.Fatal("experiment output missing")
	}
	if err := extremenc.RunExperiment("no-such", &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPlaybackFacade(t *testing.T) {
	s := extremenc.DefaultStreamScenario()
	m, err := extremenc.SimulatePlayback(extremenc.PlaybackConfig{
		Scenario: s, EncodeMBps: 294, Peers: 100, SegmentCount: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sustainable || m.Rebuffers != 0 {
		t.Fatalf("light load should be smooth: %+v", m)
	}
	if extremenc.MaxSmoothPeers(s, 294) <= 0 {
		t.Fatal("smooth-peer limit not positive")
	}
}
