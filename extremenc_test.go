package extremenc_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"extremenc"
)

// chanListener adapts net.Pipe connections into a net.Listener so facade
// servers can be driven entirely in memory.
type chanListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error { l.once.Do(func() { close(l.done) }); return nil }

type chanListenerAddr struct{}

func (chanListenerAddr) Network() string { return "pipe" }
func (chanListenerAddr) String() string  { return "pipe" }

func (l *chanListener) Addr() net.Addr { return chanListenerAddr{} }

// pipeServer serves srv over an in-memory listener for the test's lifetime
// and returns a dialer handing out fresh client sessions.
func pipeServer(t *testing.T, srv *extremenc.NetServer) func() net.Conn {
	t.Helper()
	l := &chanListener{conns: make(chan net.Conn), done: make(chan struct{})}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		l.Close()
		<-serveDone
	})
	return func() net.Conn {
		client, server := net.Pipe()
		select {
		case l.conns <- server:
			return client
		case <-l.done:
			client.Close()
			server.Close()
			return nil
		}
	}
}

// TestQuickstart exercises the documented public-API flow end to end.
func TestQuickstart(t *testing.T) {
	params := extremenc.Params{BlockCount: 16, BlockSize: 256}
	payload := make([]byte, params.SegmentSize())
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)

	seg, err := extremenc.SegmentFromData(0, params, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rng)
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		if _, err := dec.AddBlock(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data(), payload) {
		t.Fatal("quickstart roundtrip differs")
	}
}

// TestRecodePath exercises encode → recode → decode via the facade.
func TestRecodePath(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, params.SegmentSize())
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(3, params, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rng)
	rec, err := extremenc.NewRecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < params.BlockCount+1; i++ {
		if err := rec.Add(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		b, err := rec.NextBlock(rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("recode path roundtrip differs")
	}
}

// TestSimulatedDevices exercises the GPU and CPU testbed facade.
func TestSimulatedDevices(t *testing.T) {
	gpuEnc, err := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	params := extremenc.Params{BlockCount: 16, BlockSize: 512}
	seg, err := extremenc.NewSegment(0, params)
	if err != nil {
		t.Fatal(err)
	}
	rand.New(rand.NewSource(4)).Read(seg.Data())
	rep, err := gpuEnc.EncodeBlocks(seg, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BandwidthMBps() <= 0 {
		t.Fatal("no GPU bandwidth")
	}
	dec, err := extremenc.NewGPUMultiDecoder(extremenc.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	set := rep.Blocks
	if len(set) < params.BlockCount {
		// Engines materialize a sample; collect a decodable set directly.
		gpuEnc.SetMaterialize(params.BlockCount + 1)
		rep, err = gpuEnc.EncodeBlocks(seg, params.BlockCount+1, 6)
		if err != nil {
			t.Fatal(err)
		}
		set = rep.Blocks
	}
	drep, err := dec.DecodeSegments([][]*extremenc.CodedBlock{set}, params)
	if err != nil {
		t.Fatal(err)
	}
	if !drep.Segments[0].Equal(seg) {
		t.Fatal("GPU multi decode differs")
	}
}

// TestStreamAndP2PFacade smoke-tests the deployment components.
func TestStreamAndP2PFacade(t *testing.T) {
	scenario := extremenc.DefaultStreamScenario()
	scenario.Params = extremenc.Params{BlockCount: 8, BlockSize: 512}
	enc, err := extremenc.NewGPUEncoder(extremenc.GTX280(), extremenc.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	media := make([]byte, scenario.Params.SegmentSize())
	rand.New(rand.NewSource(7)).Read(media)
	srv, err := extremenc.NewStreamServer(scenario, enc, media)
	if err != nil {
		t.Fatal(err)
	}
	m, err := srv.ServeLive(50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.SampleVerified {
		t.Fatal("stream sample not verified")
	}

	res, err := extremenc.RunP2P(extremenc.P2PConfig{
		Params:           extremenc.Params{BlockCount: 8, BlockSize: 128},
		Peers:            6,
		Neighbors:        2,
		LinkBandwidthBps: 8e6,
		LinkLatency:      0.001,
		Mode:             extremenc.P2PModeRLNC,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("p2p completed %d/6", res.Completed)
	}
}

// TestExtendedCodecFacade exercises the systematic, seeded and Gaussian
// paths through the public API.
func TestExtendedCodecFacade(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 64}
	rng := rand.New(rand.NewSource(20))
	payload := make([]byte, params.SegmentSize())
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(0, params, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Systematic encoder feeding a Gaussian decoder.
	se := extremenc.NewSystematicEncoder(seg, rng)
	ge, err := extremenc.NewGaussianDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for !ge.Ready() {
		b, err := se.NextBlock()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ge.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ge.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("systematic + Gaussian roundtrip differs")
	}

	// Seeded coefficients regenerate deterministically.
	enc := extremenc.NewEncoder(seg, rng)
	sb, err := enc.NextSeededBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(extremenc.CoeffsFromSeed(sb.Seed, params.BlockCount), sb.Expand().Coeffs) {
		t.Fatal("CoeffsFromSeed mismatch")
	}
}

// TestSystematicXorFacade exercises the systematic + XOR fast-path surface
// through the public API: the XOR kernels, the encoder repair-schedule
// options, wire-mode parsing, and a systematic-mode fetch over a pipe.
func TestSystematicXorFacade(t *testing.T) {
	// Kernels: XorSlice4 must equal four sequential XorSlice folds.
	rng := rand.New(rand.NewSource(23))
	srcs := make([][]byte, 4)
	for i := range srcs {
		srcs[i] = make([]byte, 257)
		rng.Read(srcs[i])
	}
	a, b := make([]byte, 257), make([]byte, 257)
	rng.Read(a)
	copy(b, a)
	extremenc.XorSlice4(a, srcs[0], srcs[1], srcs[2], srcs[3])
	for _, s := range srcs {
		extremenc.XorSlice(b, s)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("XorSlice4 disagrees with sequential XorSlice")
	}

	// Wire-mode spelling round-trips.
	for _, m := range []extremenc.WireMode{extremenc.ModeDense, extremenc.ModeSystematic} {
		got, err := extremenc.ParseWireMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseWireMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := extremenc.ParseWireMode("turbo"); err == nil {
		t.Fatal("unknown wire mode accepted")
	}

	// A tuned systematic encoder feeding a plain decoder.
	params := extremenc.Params{BlockCount: 8, BlockSize: 64}
	payload := make([]byte, params.SegmentSize())
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(0, params, payload)
	if err != nil {
		t.Fatal(err)
	}
	se := extremenc.NewSystematicEncoder(seg, rng,
		extremenc.WithXorRepair(4), extremenc.WithDenseTail(2))
	dec, err := extremenc.NewDecoder(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !dec.Ready(); i++ {
		if i%3 == 1 { // drop a third of the stream to force repairs
			se.Block()
			continue
		}
		if _, err := dec.AddBlock(se.Block()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("systematic + XOR roundtrip differs")
	}

	// Systematic-mode serving negotiated through the facade.
	srv, err := extremenc.NewNetServer(payload, params,
		extremenc.WithWireMode(extremenc.ModeSystematic))
	if err != nil {
		t.Fatal(err)
	}
	dialPipe := pipeServer(t, srv)
	f := extremenc.NewFetcher(func(context.Context) (net.Conn, error) { return dialPipe(), nil },
		extremenc.WithMaxAttempts(1))
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != extremenc.ModeSystematic {
		t.Fatalf("negotiated mode = %v, want systematic", res.Mode)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("systematic fetch payload differs")
	}
}

// TestFileAndNetFacade round-trips the container and socket paths.
func TestFileAndNetFacade(t *testing.T) {
	params := extremenc.Params{BlockCount: 8, BlockSize: 128}
	payload := make([]byte, 2*params.SegmentSize()-9)
	rand.New(rand.NewSource(21)).Read(payload)

	var container bytes.Buffer
	if _, err := extremenc.EncodeFile(&container, bytes.NewReader(payload), params,
		extremenc.FileEncodeOptions{Seed: 22}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := extremenc.DecodeFile(&out, bytes.NewReader(container.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("file container roundtrip differs")
	}

	srv, err := extremenc.NewNetServer(payload, params)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := extremenc.Fetch(context.Background(), pipeServer(t, srv)())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || stats.Records == 0 {
		t.Fatal("network fetch differs")
	}
}

func TestExperimentsFacade(t *testing.T) {
	ids := extremenc.Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments listed", len(ids))
	}
	var sb strings.Builder
	if err := extremenc.RunExperiment("combined", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "combined") {
		t.Fatal("experiment output missing")
	}
	if err := extremenc.RunExperiment("no-such", &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPlaybackFacade(t *testing.T) {
	s := extremenc.DefaultStreamScenario()
	m, err := extremenc.SimulatePlayback(extremenc.PlaybackConfig{
		Scenario: s, EncodeMBps: 294, Peers: 100, SegmentCount: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sustainable || m.Rebuffers != 0 {
		t.Fatalf("light load should be smooth: %+v", m)
	}
	if extremenc.MaxSmoothPeers(s, 294) <= 0 {
		t.Fatal("smooth-peer limit not positive")
	}
}

// TestSentinelErrorsFacade branches on re-exported sentinels via errors.Is.
func TestSentinelErrorsFacade(t *testing.T) {
	if _, err := extremenc.NewDecoder(extremenc.Params{}); !errors.Is(err, extremenc.ErrInvalidParams) {
		t.Fatalf("NewDecoder: %v, want ErrInvalidParams", err)
	}
	if _, err := extremenc.NewParallelEncoder(0, extremenc.FullBlock); !errors.Is(err, extremenc.ErrWorkerCount) {
		t.Fatalf("NewParallelEncoder: %v, want ErrWorkerCount", err)
	}
	if _, err := extremenc.NewParallelEncoder(1, extremenc.EncodeMode(99)); !errors.Is(err, extremenc.ErrEncodeMode) {
		t.Fatalf("NewParallelEncoder: %v, want ErrEncodeMode", err)
	}
	p := extremenc.Params{BlockCount: 4, BlockSize: 16}
	if _, err := extremenc.SegmentFromData(0, p, make([]byte, p.SegmentSize()+1)); !errors.Is(err, extremenc.ErrDataTooLarge) {
		t.Fatalf("SegmentFromData: %v, want ErrDataTooLarge", err)
	}
	seg, err := extremenc.SegmentFromData(0, p, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rand.New(rand.NewSource(7)))
	if _, err := enc.BlockFor(make([]byte, p.BlockCount+1)); !errors.Is(err, extremenc.ErrCoeffsMismatch) {
		t.Fatalf("BlockFor: %v, want ErrCoeffsMismatch", err)
	}
	dec, err := extremenc.NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Segment(); !errors.Is(err, extremenc.ErrNotReady) {
		t.Fatalf("Segment: %v, want ErrNotReady", err)
	}
	if _, err := dec.AddBlock(&extremenc.CodedBlock{}); !errors.Is(err, extremenc.ErrBlockShape) {
		t.Fatalf("AddBlock: %v, want ErrBlockShape", err)
	}
	rec, err := extremenc.NewRecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Emit(); !errors.Is(err, extremenc.ErrNoSeed) {
		t.Fatalf("Emit without seed: %v, want ErrNoSeed", err)
	}
	seeded, err := extremenc.NewRecoder(p, extremenc.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seeded.Emit(); !errors.Is(err, extremenc.ErrNoBlocks) {
		t.Fatalf("Emit without input: %v, want ErrNoBlocks", err)
	}
}

// TestCodecOptionsFacade exercises the unified constructor options.
func TestCodecOptionsFacade(t *testing.T) {
	p := extremenc.Params{BlockCount: 8, BlockSize: 64}
	payload := make([]byte, p.SegmentSize())
	rng := rand.New(rand.NewSource(11))
	rng.Read(payload)
	seg, err := extremenc.SegmentFromData(0, p, payload)
	if err != nil {
		t.Fatal(err)
	}
	enc := extremenc.NewEncoder(seg, rng)

	// A recoder with its own seed emits decodable recombinations via Emit.
	rec, err := extremenc.NewRecoder(p, extremenc.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.BlockCount; i++ {
		if err := rec.Add(enc.NextBlock()); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := extremenc.NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for !dec.Ready() {
		blk, err := rec.Emit()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.AddBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("recoded segment differs")
	}
}

// TestServingFacade runs the session server end to end through the facade:
// ctx-driven Serve, options, Fetch with context, and the metrics snapshot.
func TestServingFacade(t *testing.T) {
	p := extremenc.Params{BlockCount: 8, BlockSize: 256}
	payload := make([]byte, 2*p.SegmentSize()-31)
	rand.New(rand.NewSource(23)).Read(payload)
	srv, err := extremenc.NewNetServer(payload, p,
		extremenc.WithQueueDepth(32),
		extremenc.WithWriteDeadline(2*time.Second),
		extremenc.WithServerSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := extremenc.Fetch(context.Background(), conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("served payload differs")
	}

	cancel()
	select {
	case err := <-serveDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	snap := srv.Snapshot()
	if snap.SessionsTotal != 1 || snap.BlocksSent == 0 {
		t.Fatalf("snapshot = %+v, want 1 session with traffic", snap)
	}
	if snap.BlocksOffered != snap.BlocksSent+snap.BlocksShed {
		t.Fatalf("accounting: offered %d != sent %d + shed %d",
			snap.BlocksOffered, snap.BlocksSent, snap.BlocksShed)
	}
}

// TestConfigAPIFacade exercises the literal-config construction surface
// through the facade: a sharded server and a fetcher built from config
// structs, the versioned shard-aware snapshot, and the fanout-mode spelling
// round-trip.
func TestConfigAPIFacade(t *testing.T) {
	p := extremenc.Params{BlockCount: 8, BlockSize: 256}
	payload := make([]byte, 2*p.SegmentSize()-19)
	rand.New(rand.NewSource(41)).Read(payload)

	fanout, err := extremenc.ParseFanoutMode("amortized")
	if err != nil || fanout != extremenc.FanoutAmortized {
		t.Fatalf("ParseFanoutMode(amortized) = %v, %v", fanout, err)
	}
	if fanout.String() != "amortized" || extremenc.FanoutPerRecord.String() != "record" {
		t.Fatal("fanout spellings do not round-trip")
	}

	scfg := extremenc.DefaultNetServerConfig()
	scfg.PumpShards = 2
	scfg.Fanout = fanout
	scfg.Seed = 7
	scfg.WriteDeadline = 2 * time.Second
	if err := scfg.Validate(); err != nil {
		t.Fatal(err)
	}
	srv, err := extremenc.NewNetServerFromConfig(payload, p, scfg)
	if err != nil {
		t.Fatal(err)
	}
	dialPipe := pipeServer(t, srv)

	fcfg := extremenc.DefaultNetFetcherConfig()
	fcfg.MaxAttempts = 2
	f, err := extremenc.NewFetcherFromConfig(
		func(context.Context) (net.Conn, error) { return dialPipe(), nil }, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("config-built fetch payload differs")
	}

	// The offered == sent + shed ledger is exact only after teardown;
	// Shutdown is idempotent, so the pipeServer cleanup re-running it is
	// fine.
	srv.Shutdown()
	snap := srv.Snapshot()
	if snap.Version != extremenc.NetSnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, extremenc.NetSnapshotVersion)
	}
	var shardSum int64
	for _, sh := range snap.Shards {
		if !sh.Consistent() {
			t.Fatalf("shard %d ledger: offered %d != sent %d + shed %d",
				sh.Shard, sh.BlocksOffered, sh.BlocksSent, sh.BlocksShed)
		}
		shardSum += sh.BlocksOffered
	}
	if len(snap.Shards) != 2 || shardSum != snap.BlocksOffered {
		t.Fatalf("shard rollup: %d shards, offered sum %d vs aggregate %d",
			len(snap.Shards), shardSum, snap.BlocksOffered)
	}

	// Validate failures surface through the FromConfig constructors.
	if _, err := extremenc.NewNetServerFromConfig(payload, p,
		extremenc.NetServerConfig{PumpShards: -1}); err == nil {
		t.Fatal("NewNetServerFromConfig accepted negative shards")
	}
	if _, err := extremenc.NewFetcherFromConfig(
		func(context.Context) (net.Conn, error) { return nil, context.Canceled },
		extremenc.NetFetcherConfig{Jitter: 3}); err == nil {
		t.Fatal("NewFetcherFromConfig accepted out-of-range jitter")
	}
}

// TestResilientFetchFacade drives a Fetcher through a fault-injected link
// via the public API: the fetch must survive injected resets without losing
// decoder rank and deliver a byte-identical payload.
func TestResilientFetchFacade(t *testing.T) {
	p := extremenc.Params{BlockCount: 8, BlockSize: 64}
	payload := make([]byte, 3*p.SegmentSize()-5)
	rand.New(rand.NewSource(31)).Read(payload)
	srv, err := extremenc.NewNetServer(payload, p)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx, l)
	defer srv.Shutdown()

	dial, faults := extremenc.FaultyDialer(extremenc.FaultConfig{
		Seed:       77,
		ResetEvery: 700,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	f := extremenc.NewFetcher(dial,
		extremenc.WithBackoff(time.Millisecond, 5*time.Millisecond),
		extremenc.WithBackoffSeed(1))
	fetchCtx, cancelFetch := context.WithTimeout(context.Background(), time.Minute)
	defer cancelFetch()
	res, err := f.Fetch(fetchCtx)
	if err != nil {
		t.Fatalf("resilient fetch: %v (faults %+v)", err, faults.View())
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("resilient fetch payload differs")
	}
	if faults.View().Resets == 0 {
		t.Fatal("fault layer injected no resets")
	}
	if res.Stats.Reconnects == 0 || res.Stats.ResumedRank == 0 {
		t.Fatalf("no rank carried across reconnects: %+v", res.Stats)
	}

	// A damaged resume blob is rejected with the facade sentinel.
	if _, err := extremenc.NewFetcher(dial,
		extremenc.WithResumeState([]byte("junk"))).Fetch(context.Background()); !errors.Is(err, extremenc.ErrBadResumeState) {
		t.Fatalf("err = %v, want ErrBadResumeState", err)
	}
}

// TestFetchCancelledFacade: a cancelled context unblocks a pending fetch.
func TestFetchCancelledFacade(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := extremenc.Fetch(ctx, client)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fetch did not unblock on cancel")
	}
}
