module extremenc

go 1.23
