// Package core implements the paper's contribution layer: high-performance
// network-coding engines that bind the GF(2^8) kernels to parallel hardware
// (simulated GTX 280 / 8800 GT GPUs, the simulated 8-core Mac Pro, and the
// real host machine), plus the combined GPU+CPU encoder of Sec. 5.4.1 and
// the streaming-server capacity arithmetic of Sec. 5.1.1.
package core

import (
	"fmt"
	"math/rand"

	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

// Report describes one engine run: how many coded bytes were produced or
// consumed and how long the engine took (simulated time for device engines,
// wall time for the host engine).
type Report struct {
	Engine  string
	Bytes   int64
	Seconds float64
	Blocks  []*rlnc.CodedBlock // blocks materialized (may be fewer than accounted)
}

// BandwidthMBps returns bytes per second / 1e6, the paper's unit.
func (r *Report) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e6
}

// Encoder produces coded blocks from a segment at an engine-specific rate.
type Encoder interface {
	// Name identifies the engine in reports and figure legends.
	Name() string
	// EncodeBlocks generates count coded blocks from seg with coefficients
	// drawn from seed. Implementations may materialize only a sample of the
	// blocks (reported in Report.Blocks); time covers all count blocks.
	EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error)
}

// DecodeReport describes a decode run.
type DecodeReport struct {
	Engine   string
	Segments []*rlnc.Segment // materialized decodes
	Bytes    int64           // decoded source bytes accounted
	Seconds  float64
	// Stage1Share is the fraction of time in coefficient-matrix inversion
	// for two-stage decoders (zero otherwise).
	Stage1Share float64
}

// BandwidthMBps returns decoded bytes per second / 1e6.
func (r *DecodeReport) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e6
}

// Decoder recovers segments from sets of coded blocks.
type Decoder interface {
	Name() string
	// DecodeSegments decodes each block set; sets must each span their
	// segment. Implementations may materialize only a sample.
	DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error)
}

// DenseCoeffs draws a rows×cols coefficient matrix with entries uniform on
// [1, 255] — the paper's fully dense benchmark matrices ("non-zero
// coefficients", Sec. 4.3).
func DenseCoeffs(rows, cols int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = byte(1 + rng.Intn(255))
		}
	}
	return m
}

// CodedSet generates count coded blocks for seg — a convenience for tests,
// experiments and examples.
func CodedSet(seg *rlnc.Segment, count int, seed int64) []*rlnc.CodedBlock {
	rng := rand.New(rand.NewSource(seed))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, count)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	return blocks
}

// RandomSegment builds a segment of uniformly random payload.
func RandomSegment(id uint32, p rlnc.Params, seed int64) (*rlnc.Segment, error) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	return rlnc.SegmentFromData(id, p, data)
}

// validateEncodeArgs is shared by the engine implementations.
func validateEncodeArgs(seg *rlnc.Segment, count int) error {
	if seg == nil {
		return fmt.Errorf("core: nil segment")
	}
	if count <= 0 {
		return fmt.Errorf("core: block count %d must be positive", count)
	}
	return nil
}

// SparseCoeffs draws a rows×cols coefficient matrix where each entry is
// non-zero (uniform on [1, 255]) with probability density — the sparse
// coding matrices of the paper's "performance will be even higher with
// sparser matrices" remark (Sec. 4.3). Every row is guaranteed at least one
// non-zero entry so blocks are never vacuous.
func SparseCoeffs(rows, cols int, density float64, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		nonZero := false
		for !nonZero {
			for i := range row {
				if rng.Float64() < density {
					row[i] = byte(1 + rng.Intn(255))
					nonZero = true
				} else {
					row[i] = 0
				}
			}
		}
	}
	return m
}
