package core

import (
	"testing"

	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

func testSegment(t testing.TB, p rlnc.Params, seed int64) *rlnc.Segment {
	t.Helper()
	seg, err := RandomSegment(0, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// decodeAll verifies a report's materialized blocks decode back to seg.
func verifyBlocks(t *testing.T, seg *rlnc.Segment, blocks []*rlnc.CodedBlock) {
	t.Helper()
	p := seg.Params()
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Rank() != min(len(blocks), p.BlockCount) {
		t.Fatalf("rank %d from %d dense blocks", dec.Rank(), len(blocks))
	}
}

func TestDenseCoeffsProperties(t *testing.T) {
	m := DenseCoeffs(10, 20, 1)
	for r := 0; r < 10; r++ {
		for c := 0; c < 20; c++ {
			if m.At(r, c) == 0 {
				t.Fatal("dense coefficient is zero")
			}
		}
	}
	if !DenseCoeffs(3, 3, 7).Equal(DenseCoeffs(3, 3, 7)) {
		t.Fatal("DenseCoeffs not deterministic")
	}
}

func TestGPUEncoderEngine(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 512}
	seg := testSegment(t, p, 1)
	enc, err := NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := enc.EncodeBlocks(seg, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != 64*512 {
		t.Fatalf("bytes = %d", rep.Bytes)
	}
	if len(rep.Blocks) != defaultMaterialize {
		t.Fatalf("materialized %d", len(rep.Blocks))
	}
	if rep.BandwidthMBps() <= 0 || rep.Engine == "" {
		t.Fatal("bad report")
	}
	verifyBlocks(t, seg, rep.Blocks)

	if _, err := enc.EncodeBlocks(nil, 4, 1); err == nil {
		t.Fatal("nil segment accepted")
	}
	if _, err := enc.EncodeBlocks(seg, 0, 1); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestCPUEncoderEngine(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	seg := testSegment(t, p, 3)
	enc, err := NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := enc.EncodeBlocks(seg, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyBlocks(t, seg, rep.Blocks)
	if rep.BandwidthMBps() <= 0 {
		t.Fatal("no bandwidth")
	}
}

func TestHostEncoderEngine(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	seg := testSegment(t, p, 5)
	enc, err := NewHostEncoder(0, rlnc.FullBlock)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := enc.EncodeBlocks(seg, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Blocks) != 12 {
		t.Fatalf("host encoder materialized %d blocks", len(rep.Blocks))
	}
	verifyBlocks(t, seg, rep.Blocks[:8])
	if _, err := NewHostEncoder(2, rlnc.EncodeMode(9)); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestCombinedEncoderApproachesSum reproduces Sec. 5.4.1: GPU+CPU encoding
// reaches ≈ the sum of the individual bandwidths, with the GTX 280 at ≈4.3×
// the Mac Pro.
func TestCombinedEncoderApproachesSum(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg := testSegment(t, p, 7)
	gpuEnc, err := NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	cpuEnc, err := NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	if err != nil {
		t.Fatal(err)
	}
	const count = 4096
	gpuRep, err := gpuEnc.EncodeBlocks(seg, count, 8)
	if err != nil {
		t.Fatal(err)
	}
	cpuRep, err := cpuEnc.EncodeBlocks(seg, count, 9)
	if err != nil {
		t.Fatal(err)
	}
	gr, cr := gpuRep.BandwidthMBps(), cpuRep.BandwidthMBps()

	ratio := gr / cr
	if ratio < 3.8 || ratio > 4.9 {
		t.Errorf("GPU/CPU ratio = %.2f, want ≈4.3", ratio)
	}

	comb := NewCombinedEncoder(gpuEnc, cpuEnc)
	rep, err := comb.EncodeBlocks(seg, count, 10)
	if err != nil {
		t.Fatal(err)
	}
	sum := gr + cr
	if got := rep.BandwidthMBps(); got < 0.85*sum || got > 1.1*sum {
		t.Errorf("combined = %.1f MB/s, want ≈ sum %.1f", got, sum)
	}
}

func TestGPUDecoderEngines(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	seg := testSegment(t, p, 11)
	set := CodedSet(seg, p.BlockCount+1, 12)
	sets := [][]*rlnc.CodedBlock{set, set, set}

	single, err := NewGPUSingleDecoder(gpu.GTX280(), gpu.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := single.DecodeSegments(sets, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != 3 || rep.Bytes != int64(3*p.SegmentSize()) {
		t.Fatalf("single decoder report: %d segments, %d bytes", len(rep.Segments), rep.Bytes)
	}
	for _, s := range rep.Segments {
		if !s.Equal(seg) {
			t.Fatal("single decode differs")
		}
	}

	multi, err := NewGPUMultiDecoder(gpu.GTX280(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := multi.DecodeSegments(sets, p)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Stage1Share <= 0 || mrep.Stage1Share >= 1 {
		t.Fatalf("stage-1 share = %v", mrep.Stage1Share)
	}
	for _, s := range mrep.Segments {
		if !s.Equal(seg) {
			t.Fatal("multi decode differs")
		}
	}

	if _, err := single.DecodeSegments(nil, p); err == nil {
		t.Fatal("empty sets accepted")
	}
}

func TestCPUDecoderEngines(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	seg := testSegment(t, p, 13)
	set := CodedSet(seg, p.BlockCount, 14)
	sets := [][]*rlnc.CodedBlock{set, set}

	coop, err := NewCPUCooperativeDecoder(cpusim.MacPro())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coop.DecodeSegments(sets, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != 2 {
		t.Fatal("cooperative decoder segment count")
	}

	multi, err := NewCPUMultiDecoder(cpusim.MacPro())
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := multi.DecodeSegments(sets, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mrep.Segments {
		if !s.Equal(seg) {
			t.Fatal("multi decode differs")
		}
	}
	if _, err := coop.DecodeSegments(nil, p); err == nil {
		t.Fatal("empty sets accepted")
	}
}

func TestHostDecoder(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	seg := testSegment(t, p, 15)
	set := CodedSet(seg, p.BlockCount, 16)
	dec := NewHostDecoder(0)
	rep, err := dec.DecodeSegments([][]*rlnc.CodedBlock{set}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Segments[0].Equal(seg) {
		t.Fatal("host decode differs")
	}
}

func TestHostProgressiveDecoder(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	seg := testSegment(t, p, 17)
	set := CodedSet(seg, p.BlockCount+2, 18)
	sets := [][]*rlnc.CodedBlock{set, set, set}

	// Batch size 3 does not divide the set size, so the last absorb chunk is
	// short — both chunk paths run.
	dec := NewHostProgressiveDecoder(2, 3)
	rep, err := dec.DecodeSegments(sets, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Segments) != 3 {
		t.Fatalf("progressive decoder returned %d segments, want 3", len(rep.Segments))
	}
	for _, s := range rep.Segments {
		if !s.Equal(seg) {
			t.Fatal("progressive host decode differs")
		}
	}
	if got := dec.Name(); got != "host/progressive-2w-b3" {
		t.Fatalf("name = %q", got)
	}
}

func TestStreamScenarioArithmetic(t *testing.T) {
	s := DefaultStreamScenario()

	if d := s.SegmentDuration(); d < 5.2 || d > 5.5 {
		t.Errorf("segment duration = %.2f s, want ≈5.33", d)
	}
	// Paper anchors: 133 MB/s → 1385 peers; 172 → 1844 (paper says >1844);
	// 294 → >3000.
	if p := s.PeersByCompute(133); p < 1350 || p > 1420 {
		t.Errorf("peers at 133 MB/s = %d, want ≈1385", p)
	}
	if p := s.PeersByCompute(177.2); p < 1800 || p > 1900 {
		t.Errorf("peers at 177 MB/s = %d, want ≈1844", p)
	}
	if p := s.PeersByCompute(294); p <= 3000 {
		t.Errorf("peers at 294 MB/s = %d, want > 3000", p)
	}
	// One GigE carries ≈1302 peers at 768 Kbps.
	if p := s.PeersByNetwork(); p < 1280 || p > 1330 {
		t.Errorf("network peers = %d", p)
	}
	// The binding constraint at 294 MB/s is the single NIC.
	if s.PeersServed(294) != s.PeersByNetwork() {
		t.Error("PeersServed should be NIC-bound at 294 MB/s")
	}
	if nics := s.NICsSaturated(294); nics < 2.0 {
		t.Errorf("294 MB/s saturates %.2f NICs, want ≥ 2", nics)
	}
	// ~1385 peers need >177k blocks per segment.
	if b := s.BlocksPerSegmentForPeers(1385); b < 177000 || b > 178000 {
		t.Errorf("blocks per segment = %d, want ≈177,280", b)
	}
	// Hundreds of segments fit in 1 GB of device memory.
	if c := s.GPUSegmentCapacity(1024 << 20); c < 2000 {
		t.Errorf("segment capacity = %d", c)
	}
}

func TestReportZeroSeconds(t *testing.T) {
	r := Report{Bytes: 100}
	if r.BandwidthMBps() != 0 {
		t.Fatal("zero-time bandwidth should be 0")
	}
	dr := DecodeReport{Bytes: 100}
	if dr.BandwidthMBps() != 0 {
		t.Fatal("zero-time decode bandwidth should be 0")
	}
}

// TestMultiGPUScaling: N identical GPUs reach ≈N× the single-device rate.
func TestMultiGPUScaling(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg := testSegment(t, p, 21)
	single, err := NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	const count = 8192
	srep, err := single.EncodeBlocks(seg, count, 22)
	if err != nil {
		t.Fatal(err)
	}
	for _, devices := range []int{2, 4} {
		grp, err := NewMultiGPUEncoder(gpu.GTX280(), gpu.TableBased5, devices)
		if err != nil {
			t.Fatal(err)
		}
		if grp.Size() != devices {
			t.Fatalf("group size = %d", grp.Size())
		}
		grep, err := grp.EncodeBlocks(seg, count, 23)
		if err != nil {
			t.Fatal(err)
		}
		scale := grep.BandwidthMBps() / srep.BandwidthMBps()
		if scale < 0.85*float64(devices) || scale > 1.1*float64(devices) {
			t.Errorf("%d GPUs scale %.2fx, want ≈%dx", devices, scale, devices)
		}
		verifyBlocks(t, seg, grep.Blocks[:min(len(grep.Blocks), p.BlockCount)])
	}
}

func TestEngineGroupValidation(t *testing.T) {
	enc, err := NewGPUEncoder(gpu.GTX280(), gpu.LoopBased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngineGroup(enc); err == nil {
		t.Fatal("single-engine group accepted")
	}
	if _, err := NewEngineGroup(enc, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewMultiGPUEncoder(gpu.GTX280(), gpu.LoopBased, 1); err == nil {
		t.Fatal("1-device multi-GPU accepted")
	}
	grp, err := NewEngineGroup(enc, enc)
	if err != nil {
		t.Fatal(err)
	}
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	seg := testSegment(t, p, 24)
	if _, err := grp.EncodeBlocks(seg, 1, 25); err == nil {
		t.Fatal("undersized batch accepted")
	}
	if grp.Name() == "" {
		t.Fatal("empty group name")
	}
}

func TestSparseCoeffsProperties(t *testing.T) {
	m := SparseCoeffs(50, 40, 0.2, 9)
	nnz := 0
	for r := 0; r < m.Rows(); r++ {
		rowNnz := 0
		for _, c := range m.Row(r) {
			if c != 0 {
				nnz++
				rowNnz++
			}
		}
		if rowNnz == 0 {
			t.Fatalf("row %d is all zeros", r)
		}
	}
	frac := float64(nnz) / float64(50*40)
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("density = %.3f, want ≈0.2", frac)
	}
	if !SparseCoeffs(3, 3, 0.5, 4).Equal(SparseCoeffs(3, 3, 0.5, 4)) {
		t.Fatal("SparseCoeffs not deterministic")
	}
}

func TestEngineAccessorsAndMaterialize(t *testing.T) {
	gpuEnc, err := NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		t.Fatal(err)
	}
	if gpuEnc.Device() == nil {
		t.Fatal("nil device accessor")
	}
	cpuEnc, err := NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	if err != nil {
		t.Fatal(err)
	}
	if cpuEnc.Machine() == nil {
		t.Fatal("nil machine accessor")
	}
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	seg := testSegment(t, p, 30)

	gpuEnc.SetMaterialize(6)
	rep, err := gpuEnc.EncodeBlocks(seg, 16, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Blocks) != 6 {
		t.Fatalf("GPU materialized %d, want 6", len(rep.Blocks))
	}
	cpuEnc.SetMaterialize(5)
	rep, err = cpuEnc.EncodeBlocks(seg, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Blocks) != 5 {
		t.Fatalf("CPU materialized %d, want 5", len(rep.Blocks))
	}

	comb := NewCombinedEncoder(gpuEnc, cpuEnc)
	comb.SetMaterialize(p.BlockCount + 1)
	rep, err = comb.EncodeBlocks(seg, 64, 33)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Blocks) < p.BlockCount {
		t.Fatalf("combined materialized %d, want ≥ %d", len(rep.Blocks), p.BlockCount)
	}

	grp, err := NewEngineGroup(gpuEnc, cpuEnc)
	if err != nil {
		t.Fatal(err)
	}
	grp.SetMaterialize(4)
	rep, err = grp.EncodeBlocks(seg, 32, 34)
	if err != nil {
		t.Fatal(err)
	}
	// Each member materializes up to 4 of its proportional share (the slow
	// member may get fewer blocks than that).
	if len(rep.Blocks) < 5 || len(rep.Blocks) > 8 {
		t.Fatalf("group materialized %d, want 5–8", len(rep.Blocks))
	}
}

func TestScenarioStringAndEdges(t *testing.T) {
	s := DefaultStreamScenario()
	if s.String() == "" {
		t.Fatal("empty scenario string")
	}
	zero := StreamScenario{}
	if zero.PeersByCompute(100) != 0 || zero.PeersByNetwork() != 0 || zero.NICsSaturated(1) != 0 {
		t.Fatal("zero scenario should report zero capacities")
	}
	if zero.GPUSegmentCapacity(1<<20) != 0 {
		t.Fatal("zero scenario segment capacity")
	}
}

// TestMultiNICScenario: doubling the NICs doubles the network-bound peers.
func TestMultiNICScenario(t *testing.T) {
	s := DefaultStreamScenario()
	one := s.PeersByNetwork()
	s.NICCount = 2
	if two := s.PeersByNetwork(); two != 2*one {
		t.Fatalf("2 NICs carry %d peers, want %d", two, 2*one)
	}
	// 294 MB/s saturates ≈2.35 GigE interfaces, so two NICs still bind;
	// with three the engine becomes the constraint again.
	if s.PeersServed(294) != s.PeersByNetwork() {
		t.Error("two NICs should still be the binding constraint at 294 MB/s")
	}
	s.NICCount = 3
	if s.PeersServed(294) != s.PeersByCompute(294) {
		t.Error("three NICs should make 294 MB/s compute-bound")
	}
}
