package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// GPUSingleDecoder decodes segments one at a time on the simulated GPU
// using the progressive single-segment kernel (Sec. 4.2.2).
type GPUSingleDecoder struct {
	dev  *gpu.Device
	opts gpu.DecodeOptions
}

var _ Decoder = (*GPUSingleDecoder)(nil)

// NewGPUSingleDecoder creates a single-segment GPU decoder.
func NewGPUSingleDecoder(spec gpu.DeviceSpec, opts gpu.DecodeOptions) (*GPUSingleDecoder, error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	return &GPUSingleDecoder{dev: dev, opts: opts}, nil
}

// Name implements Decoder.
func (d *GPUSingleDecoder) Name() string {
	return d.dev.Spec().Name + "/single-segment"
}

// DecodeSegments implements Decoder: segments decode strictly one after
// another ("coded blocks have to be decoded one by one till a segment is
// fully decoded; only then the decoding of the next segment starts").
func (d *GPUSingleDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: no segments to decode")
	}
	rep := &DecodeReport{Engine: d.Name()}
	for i, set := range sets {
		res, err := d.dev.DecodeSegment(set, p, &d.opts)
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		rep.Segments = append(rep.Segments, res.Segment)
		rep.Bytes += res.DecodedBytes
		rep.Seconds += res.Seconds
	}
	return rep, nil
}

// GPUMultiDecoder decodes many segments in parallel on the simulated GPU
// with the two-stage multi-segment pipeline (Sec. 5.2).
type GPUMultiDecoder struct {
	dev  *gpu.Device
	opts gpu.MultiSegmentOptions
}

var _ Decoder = (*GPUMultiDecoder)(nil)

// NewGPUMultiDecoder creates a multi-segment GPU decoder; segmentsPerSM 1
// reproduces the paper's 30-segment configuration, 2 the 60-segment one.
func NewGPUMultiDecoder(spec gpu.DeviceSpec, segmentsPerSM int) (*GPUMultiDecoder, error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	return &GPUMultiDecoder{
		dev: dev,
		opts: gpu.MultiSegmentOptions{
			SegmentsPerSM:       segmentsPerSM,
			MaterializeSegments: defaultMaterialize,
		},
	}, nil
}

// Name implements Decoder.
func (d *GPUMultiDecoder) Name() string {
	return fmt.Sprintf("%s/multi-segment-%dx", d.dev.Spec().Name, d.opts.SegmentsPerSM)
}

// DecodeSegments implements Decoder.
func (d *GPUMultiDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	res, err := d.dev.DecodeMultiSegment(sets, p, &d.opts)
	if err != nil {
		return nil, err
	}
	return &DecodeReport{
		Engine:      d.Name(),
		Segments:    res.Segments,
		Bytes:       res.DecodedBytes,
		Seconds:     res.Seconds,
		Stage1Share: res.Stage1Share(),
	}, nil
}

// CPUCooperativeDecoder decodes one segment at a time with all simulated
// cores cooperating on each row operation (the Fig. 4b CPU baseline).
type CPUCooperativeDecoder struct {
	mach *cpusim.Machine
}

var _ Decoder = (*CPUCooperativeDecoder)(nil)

// NewCPUCooperativeDecoder creates the cooperative CPU decoder.
func NewCPUCooperativeDecoder(spec cpusim.CPUSpec) (*CPUCooperativeDecoder, error) {
	mach, err := cpusim.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	return &CPUCooperativeDecoder{mach: mach}, nil
}

// Name implements Decoder.
func (d *CPUCooperativeDecoder) Name() string {
	return d.mach.Spec().Name + "/cooperative"
}

// DecodeSegments implements Decoder.
func (d *CPUCooperativeDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: no segments to decode")
	}
	rep := &DecodeReport{Engine: d.Name()}
	for i, set := range sets {
		res, err := d.mach.DecodeSegment(set, p)
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
		rep.Segments = append(rep.Segments, res.Segments...)
		rep.Bytes += res.DecodedBytes
		rep.Seconds += res.Seconds
	}
	return rep, nil
}

// CPUMultiDecoder decodes segments with one simulated core per segment
// (the paper's 8-segment CPU scheme, Fig. 9).
type CPUMultiDecoder struct {
	mach *cpusim.Machine
}

var _ Decoder = (*CPUMultiDecoder)(nil)

// NewCPUMultiDecoder creates the per-segment-thread CPU decoder.
func NewCPUMultiDecoder(spec cpusim.CPUSpec) (*CPUMultiDecoder, error) {
	mach, err := cpusim.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	return &CPUMultiDecoder{mach: mach}, nil
}

// Name implements Decoder.
func (d *CPUMultiDecoder) Name() string {
	return fmt.Sprintf("%s/%d-segment", d.mach.Spec().Name, d.mach.Spec().Cores)
}

// DecodeSegments implements Decoder.
func (d *CPUMultiDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	res, err := d.mach.DecodeSegmentsParallel(sets, p, &cpusim.MultiDecodeOptions{
		MaterializeSegments: defaultMaterialize,
	})
	if err != nil {
		return nil, err
	}
	return &DecodeReport{
		Engine:   d.Name(),
		Segments: res.Segments,
		Bytes:    res.DecodedBytes,
		Seconds:  res.Seconds,
	}, nil
}

// HostDecoder decodes on the real machine with worker goroutines and
// reports wall-clock time. Each worker runs the explicit two-stage pipeline
// (rlnc.DecodeTwoStage): [C | I] inversion, then one tiled b = C⁻¹·x
// multiply.
type HostDecoder struct {
	workers int
}

var _ Decoder = (*HostDecoder)(nil)

// NewHostDecoder creates a host decoder; workers ≤ 0 selects GOMAXPROCS.
func NewHostDecoder(workers int) *HostDecoder {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &HostDecoder{workers: workers}
}

// Name implements Decoder.
func (d *HostDecoder) Name() string {
	return fmt.Sprintf("host/%d-workers", d.workers)
}

// DecodeSegments implements Decoder.
func (d *HostDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	start := time.Now()
	segs, err := rlnc.DecodeSegmentsParallel(context.Background(), p, sets, d.workers)
	if err != nil {
		return nil, err
	}
	return &DecodeReport{
		Engine:   d.Name(),
		Segments: segs,
		Bytes:    int64(len(sets)) * int64(p.SegmentSize()),
		Seconds:  time.Since(start).Seconds(),
	}, nil
}

// HostProgressiveDecoder decodes on the real machine with the progressive
// Gauss–Jordan decoder, absorbing arrivals through the batched AddBlocks
// path. It is the streaming-shaped host rung of the decode ladder — blocks
// become deliverable as the matrix reduces — and the wall-clock baseline the
// two-stage HostDecoder is measured against.
type HostProgressiveDecoder struct {
	workers int
	batch   int
}

var _ Decoder = (*HostProgressiveDecoder)(nil)

// NewHostProgressiveDecoder creates a progressive host decoder; workers ≤ 0
// selects GOMAXPROCS and batch ≤ 0 selects a default absorb-batch size.
func NewHostProgressiveDecoder(workers, batch int) *HostProgressiveDecoder {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if batch <= 0 {
		batch = 16
	}
	return &HostProgressiveDecoder{workers: workers, batch: batch}
}

// Name implements Decoder.
func (d *HostProgressiveDecoder) Name() string {
	return fmt.Sprintf("host/progressive-%dw-b%d", d.workers, d.batch)
}

// DecodeSegments implements Decoder: workers own whole segments; each
// segment decodes progressively, absorbing arrivals batch blocks at a time.
func (d *HostProgressiveDecoder) DecodeSegments(sets [][]*rlnc.CodedBlock, p rlnc.Params) (*DecodeReport, error) {
	start := time.Now()
	segs := make([]*rlnc.Segment, len(sets))
	errs := make([]error, len(sets))
	rlnc.SharedPool().Dispatch(d.workers, func(w int, _ *rlnc.Scratch) {
		for i := w; i < len(sets); i += d.workers {
			segs[i], errs[i] = decodeProgressive(p, sets[i], d.batch)
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: segment %d: %w", i, err)
		}
	}
	return &DecodeReport{
		Engine:   d.Name(),
		Segments: segs,
		Bytes:    int64(len(sets)) * int64(p.SegmentSize()),
		Seconds:  time.Since(start).Seconds(),
	}, nil
}

// decodeProgressive runs one segment through the progressive decoder in
// absorb batches.
func decodeProgressive(p rlnc.Params, set []*rlnc.CodedBlock, batch int) (*rlnc.Segment, error) {
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < len(set) && !dec.Ready(); lo += batch {
		hi := min(lo+batch, len(set))
		if _, err := dec.AddBlocks(set[lo:hi]); err != nil {
			return nil, err
		}
	}
	return dec.Segment()
}
