package core

import (
	"fmt"
	"runtime"
	"time"

	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// defaultMaterialize caps how many blocks the device engines compute
// functionally per call; the remainder is accounted in simulated time only.
// Every materialized block is bit-exact, so correctness coverage is
// unaffected while large sweeps stay fast.
const defaultMaterialize = 4

// GPUEncoder runs a GPU encode kernel scheme on a simulated device. The
// most recent segment stays resident in device memory (Sec. 5.1.2: media
// segments are transferred once and served many times), so only the first
// EncodeBlocks call per segment pays the host-interface copy.
type GPUEncoder struct {
	dev    *gpu.Device
	scheme gpu.Scheme

	resident *gpu.ResidentSegment

	// Materialize overrides the functional-block cap (0 = default).
	Materialize int
}

var _ Encoder = (*GPUEncoder)(nil)

// NewGPUEncoder creates an encoder on a fresh device of the given spec.
func NewGPUEncoder(spec gpu.DeviceSpec, scheme gpu.Scheme) (*GPUEncoder, error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return nil, err
	}
	return &GPUEncoder{dev: dev, scheme: scheme}, nil
}

// Device exposes the underlying simulated device (for stats inspection).
func (e *GPUEncoder) Device() *gpu.Device { return e.dev }

// Name implements Encoder.
func (e *GPUEncoder) Name() string {
	return fmt.Sprintf("%s/%s", e.dev.Spec().Name, e.scheme)
}

// EncodeBlocks implements Encoder.
func (e *GPUEncoder) EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error) {
	if err := validateEncodeArgs(seg, count); err != nil {
		return nil, err
	}
	coeffs := DenseCoeffs(count, seg.Params().BlockCount, seed)
	mat := e.Materialize
	if mat == 0 {
		mat = defaultMaterialize
	}
	if e.resident == nil || e.resident.Segment() != seg {
		if e.resident != nil {
			e.resident.Free()
		}
		rs, err := e.dev.LoadSegment(seg)
		if err != nil {
			return nil, err
		}
		e.resident = rs
	}
	res, err := e.dev.EncodeResident(e.resident, coeffs, e.scheme, &gpu.EncodeOptions{Materialize: mat})
	if err != nil {
		return nil, err
	}
	return &Report{Engine: e.Name(), Bytes: res.Bytes, Seconds: res.Seconds, Blocks: res.Blocks}, nil
}

// CPUEncoder runs the multicore CPU encoder on a simulated host.
type CPUEncoder struct {
	mach   *cpusim.Machine
	mode   rlnc.EncodeMode
	scheme cpusim.Scheme

	Materialize int
}

var _ Encoder = (*CPUEncoder)(nil)

// NewCPUEncoder creates a CPU encoder with the given partitioning mode and
// multiplication scheme.
func NewCPUEncoder(spec cpusim.CPUSpec, mode rlnc.EncodeMode, scheme cpusim.Scheme) (*CPUEncoder, error) {
	mach, err := cpusim.NewMachine(spec)
	if err != nil {
		return nil, err
	}
	return &CPUEncoder{mach: mach, mode: mode, scheme: scheme}, nil
}

// Machine exposes the underlying simulated host.
func (e *CPUEncoder) Machine() *cpusim.Machine { return e.mach }

// Name implements Encoder.
func (e *CPUEncoder) Name() string {
	return fmt.Sprintf("%s/%s/%s", e.mach.Spec().Name, e.scheme, e.mode)
}

// EncodeBlocks implements Encoder.
func (e *CPUEncoder) EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error) {
	if err := validateEncodeArgs(seg, count); err != nil {
		return nil, err
	}
	coeffs := DenseCoeffs(count, seg.Params().BlockCount, seed)
	mat := e.Materialize
	if mat == 0 {
		mat = defaultMaterialize
	}
	res, err := e.mach.EncodeSegment(seg, coeffs, e.mode, e.scheme, &cpusim.EncodeOptions{Materialize: mat})
	if err != nil {
		return nil, err
	}
	return &Report{Engine: e.Name(), Bytes: res.Bytes, Seconds: res.Seconds, Blocks: res.Blocks}, nil
}

// HostEncoder measures the real machine this library runs on: it encodes
// with the goroutine-parallel host codec and reports wall-clock time. This
// is the engine a downstream adopter actually deploys. The underlying
// ParallelEncoder (and with it the process-wide worker pool and per-worker
// scratch) is created once at construction and reused across EncodeBlocks
// calls, so steady-state serving pays no per-call setup.
type HostEncoder struct {
	workers int
	mode    rlnc.EncodeMode
	pe      *rlnc.ParallelEncoder
}

var _ Encoder = (*HostEncoder)(nil)

// NewHostEncoder creates a host encoder; workers ≤ 0 selects GOMAXPROCS.
func NewHostEncoder(workers int, mode rlnc.EncodeMode) (*HostEncoder, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pe, err := rlnc.NewParallelEncoder(workers, mode)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &HostEncoder{workers: workers, mode: mode, pe: pe}, nil
}

// Name implements Encoder.
func (e *HostEncoder) Name() string {
	return fmt.Sprintf("host/%d-workers/%s", e.workers, e.mode)
}

// EncodeBlocks implements Encoder.
func (e *HostEncoder) EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error) {
	if err := validateEncodeArgs(seg, count); err != nil {
		return nil, err
	}
	start := time.Now()
	blocks, err := e.pe.Encode(seg, count, seed)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()
	return &Report{
		Engine:  e.Name(),
		Bytes:   int64(count) * int64(seg.Params().BlockSize),
		Seconds: elapsed,
		Blocks:  blocks,
	}, nil
}

// CombinedEncoder drives a GPU and a CPU engine in parallel (Sec. 5.4.1):
// encoding is embarrassingly parallel, so the block batch is split
// proportionally to each engine's throughput and the combined rate
// approaches the sum of the individual bandwidths.
type CombinedEncoder struct {
	gpu Encoder
	cpu Encoder
}

var _ Encoder = (*CombinedEncoder)(nil)

// NewCombinedEncoder pairs two engines.
func NewCombinedEncoder(gpuEnc, cpuEnc Encoder) *CombinedEncoder {
	return &CombinedEncoder{gpu: gpuEnc, cpu: cpuEnc}
}

// Name implements Encoder.
func (e *CombinedEncoder) Name() string {
	return fmt.Sprintf("combined(%s + %s)", e.gpu.Name(), e.cpu.Name())
}

// EncodeBlocks implements Encoder. The split ratio is probed with a small
// calibration batch, then both engines encode their share; wall time is the
// slower of the two since they run concurrently.
func (e *CombinedEncoder) EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error) {
	if err := validateEncodeArgs(seg, count); err != nil {
		return nil, err
	}
	probe := seg.Params().BlockCount
	gpuProbe, err := e.gpu.EncodeBlocks(seg, probe, seed^0x9E3779B9)
	if err != nil {
		return nil, err
	}
	cpuProbe, err := e.cpu.EncodeBlocks(seg, probe, seed^0x7F4A7C15)
	if err != nil {
		return nil, err
	}
	gr, cr := gpuProbe.BandwidthMBps(), cpuProbe.BandwidthMBps()
	if gr <= 0 || cr <= 0 {
		return nil, fmt.Errorf("core: combined probe produced non-positive rates %.2f / %.2f", gr, cr)
	}
	gpuShare := int(float64(count) * gr / (gr + cr))
	if gpuShare < 1 {
		gpuShare = 1
	}
	if gpuShare >= count {
		gpuShare = count - 1
	}

	gpuRep, err := e.gpu.EncodeBlocks(seg, gpuShare, seed)
	if err != nil {
		return nil, err
	}
	cpuRep, err := e.cpu.EncodeBlocks(seg, count-gpuShare, seed+1)
	if err != nil {
		return nil, err
	}
	blocks := append(append([]*rlnc.CodedBlock(nil), gpuRep.Blocks...), cpuRep.Blocks...)
	return &Report{
		Engine:  e.Name(),
		Bytes:   gpuRep.Bytes + cpuRep.Bytes,
		Seconds: maxf(gpuRep.Seconds, cpuRep.Seconds),
		Blocks:  blocks,
	}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SetMaterialize adjusts how many blocks the engine computes functionally
// per call (0 restores the default). Used by callers that need a decodable
// sample, e.g. the streaming server's client verification.
func (e *GPUEncoder) SetMaterialize(n int) { e.Materialize = n }

// SetMaterialize adjusts the functional-block sample size (0 = default).
func (e *CPUEncoder) SetMaterialize(n int) { e.Materialize = n }

// SetMaterialize forwards the sample-size adjustment to both engines.
func (e *CombinedEncoder) SetMaterialize(n int) {
	type materializer interface{ SetMaterialize(int) }
	if m, ok := e.gpu.(materializer); ok {
		m.SetMaterialize(n)
	}
	if m, ok := e.cpu.(materializer); ok {
		m.SetMaterialize(n)
	}
}
