package core

import (
	"fmt"
	"strings"

	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// EngineGroup drives several encode engines concurrently on the same
// segment, splitting each batch proportionally to the engines' probed
// throughput. It generalizes the paper's GPU+CPU pairing (Sec. 5.4.1) to
// the multi-GPU deployments the paper proposes for "exceptionally
// demanding applications" (Sec. 2): aggregate bandwidth approaches the sum
// of the members'.
type EngineGroup struct {
	engines []Encoder
}

var _ Encoder = (*EngineGroup)(nil)

// NewEngineGroup bundles two or more engines.
func NewEngineGroup(engines ...Encoder) (*EngineGroup, error) {
	if len(engines) < 2 {
		return nil, fmt.Errorf("core: engine group needs at least 2 engines, got %d", len(engines))
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("core: engine %d is nil", i)
		}
	}
	return &EngineGroup{engines: engines}, nil
}

// NewMultiGPUEncoder builds a group of `count` identical simulated GPUs
// running the given scheme.
func NewMultiGPUEncoder(spec gpu.DeviceSpec, scheme gpu.Scheme, count int) (*EngineGroup, error) {
	if count < 2 {
		return nil, fmt.Errorf("core: multi-GPU encoder needs ≥ 2 devices, got %d", count)
	}
	engines := make([]Encoder, count)
	for i := range engines {
		e, err := NewGPUEncoder(spec, scheme)
		if err != nil {
			return nil, err
		}
		engines[i] = e
	}
	return NewEngineGroup(engines...)
}

// Name implements Encoder.
func (g *EngineGroup) Name() string {
	names := make([]string, len(g.engines))
	for i, e := range g.engines {
		names[i] = e.Name()
	}
	return fmt.Sprintf("group(%s)", strings.Join(names, " + "))
}

// Size returns the number of member engines.
func (g *EngineGroup) Size() int { return len(g.engines) }

// EncodeBlocks implements Encoder: probe each member with a small batch,
// split count proportionally, run all members (concurrently in deployment,
// so wall time is the slowest member's), and merge the materialized blocks.
func (g *EngineGroup) EncodeBlocks(seg *rlnc.Segment, count int, seed int64) (*Report, error) {
	if err := validateEncodeArgs(seg, count); err != nil {
		return nil, err
	}
	if count < len(g.engines) {
		return nil, fmt.Errorf("core: batch of %d smaller than group of %d", count, len(g.engines))
	}

	probe := seg.Params().BlockCount
	rates := make([]float64, len(g.engines))
	total := 0.0
	for i, e := range g.engines {
		rep, err := e.EncodeBlocks(seg, probe, seed^int64(0x9E3779B9+i*0x1F123BB5))
		if err != nil {
			return nil, fmt.Errorf("core: probing %s: %w", e.Name(), err)
		}
		rates[i] = rep.BandwidthMBps()
		if rates[i] <= 0 {
			return nil, fmt.Errorf("core: %s probed non-positive rate", e.Name())
		}
		total += rates[i]
	}

	// Proportional shares, with the remainder on the fastest engine.
	shares := make([]int, len(g.engines))
	assigned, fastest := 0, 0
	for i, r := range rates {
		shares[i] = int(float64(count) * r / total)
		if shares[i] < 1 {
			shares[i] = 1
		}
		assigned += shares[i]
		if r > rates[fastest] {
			fastest = i
		}
	}
	shares[fastest] += count - assigned // may be negative; clamp below
	if shares[fastest] < 1 {
		return nil, fmt.Errorf("core: cannot split %d blocks across %d engines", count, len(g.engines))
	}

	out := &Report{Engine: g.Name()}
	for i, e := range g.engines {
		rep, err := e.EncodeBlocks(seg, shares[i], seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", e.Name(), err)
		}
		out.Bytes += rep.Bytes
		if rep.Seconds > out.Seconds {
			out.Seconds = rep.Seconds
		}
		out.Blocks = append(out.Blocks, rep.Blocks...)
	}
	return out, nil
}

// SetMaterialize forwards the sample-size adjustment to every member that
// supports it.
func (g *EngineGroup) SetMaterialize(n int) {
	type materializer interface{ SetMaterialize(int) }
	for _, e := range g.engines {
		if m, ok := e.(materializer); ok {
			m.SetMaterialize(n)
		}
	}
}
