package core

import (
	"fmt"

	"extremenc/internal/rlnc"
)

// Streaming-server capacity arithmetic (paper Secs. 5.1.1–5.1.2): a server
// holds GPU-resident media segments and serves coded blocks to downstream
// peers at a fixed stream rate.

// GigabitEthernetMBps is the payload capacity of one Gigabit Ethernet
// interface in the paper's units.
const GigabitEthernetMBps = 125.0

// StreamScenario is the paper's running example: 512 KB segments of 128 ×
// 4 KB blocks at a 768 Kbps high-quality video rate, giving 5.33 s of
// content per segment.
type StreamScenario struct {
	Params          rlnc.Params
	StreamRateKbps  float64
	NICCount        int
	NICCapacityMBps float64
}

// DefaultStreamScenario returns the Sec. 5.1.1 configuration.
func DefaultStreamScenario() StreamScenario {
	return StreamScenario{
		Params:          rlnc.Params{BlockCount: 128, BlockSize: 4096},
		StreamRateKbps:  768,
		NICCount:        1,
		NICCapacityMBps: GigabitEthernetMBps,
	}
}

// SegmentDuration returns the seconds of media one segment carries.
func (s StreamScenario) SegmentDuration() float64 {
	return float64(s.Params.SegmentSize()) * 8 / (s.StreamRateKbps * 1000)
}

// PeersByCompute returns how many peers the coding bandwidth alone can
// sustain (the paper's 1385/1844/3000+ numbers).
func (s StreamScenario) PeersByCompute(encodeMBps float64) int {
	if s.StreamRateKbps <= 0 {
		return 0
	}
	return int(encodeMBps * 1e6 * 8 / (s.StreamRateKbps * 1000))
}

// PeersByNetwork returns how many peers the NICs can sustain.
func (s StreamScenario) PeersByNetwork() int {
	if s.StreamRateKbps <= 0 {
		return 0
	}
	total := float64(s.NICCount) * s.NICCapacityMBps
	return int(total * 1e6 * 8 / (s.StreamRateKbps * 1000))
}

// PeersServed returns the binding constraint.
func (s StreamScenario) PeersServed(encodeMBps float64) int {
	c, n := s.PeersByCompute(encodeMBps), s.PeersByNetwork()
	if c < n {
		return c
	}
	return n
}

// NICsSaturated returns how many Gigabit interfaces the coding bandwidth
// can fill (the paper notes 294 MB/s "can easily saturate two Gigabit
// Ethernet interfaces").
func (s StreamScenario) NICsSaturated(encodeMBps float64) float64 {
	if s.NICCapacityMBps <= 0 {
		return 0
	}
	return encodeMBps / s.NICCapacityMBps
}

// BlocksPerSegmentForPeers returns how many coded blocks must be generated
// from each segment to serve the given peer count: every peer needs a
// little over n blocks to decode (the paper's "at least 177,333 coded
// blocks from every video segment" for ~1385 peers).
func (s StreamScenario) BlocksPerSegmentForPeers(peers int) int {
	return peers * s.Params.BlockCount
}

// GPUSegmentCapacity returns how many scenario segments fit in a device
// memory of the given size ("1024 MB memory on the GTX 280 is able to
// easily accommodate hundreds of such segments").
func (s StreamScenario) GPUSegmentCapacity(deviceMemBytes int64) int {
	segSize := int64(s.Params.SegmentSize())
	if segSize <= 0 {
		return 0
	}
	return int(deviceMemBytes / segSize)
}

func (s StreamScenario) String() string {
	return fmt.Sprintf("%v @ %.0f Kbps, %d × %.0f MB/s NIC",
		s.Params, s.StreamRateKbps, s.NICCount, s.NICCapacityMBps)
}
