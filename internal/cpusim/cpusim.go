// Package cpusim simulates the paper's CPU baseline: an 8-core 2.8 GHz
// Intel Xeon "Mac Pro" running the authors' multi-threaded, SSE2-accelerated
// network coding (IWQoS'07 / INFOCOM'09). Like internal/gpu it is a
// functional + cost-model simulator: coding results are computed exactly
// with the host codec while time is charged from a calibrated model of
// SIMD throughput, thread-barrier overhead, prefetcher efficiency, and the
// aggregate L2 capacity that caps multi-segment decoding (Secs. 4.3, 5.2,
// 5.3).
package cpusim

import (
	"errors"
	"fmt"

	"extremenc/internal/gf256"
	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

// Scheme selects the CPU GF-multiplication strategy.
type Scheme int

const (
	// LoopSIMD is the loop-based multiply vectorized over 16-byte SSE2
	// registers — the best CPU scheme (Sec. 4.1).
	LoopSIMD Scheme = iota + 1
	// TableBased is the log/exp scheme with log-domain preprocessing
	// ported to the CPU, where it loses up to 43% versus LoopSIMD because
	// byte-granular table lookups defeat the vector units (Sec. 5.1.3).
	TableBased
)

func (s Scheme) String() string {
	switch s {
	case LoopSIMD:
		return "loop-simd"
	case TableBased:
		return "table-based"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ErrSchemeUnknown reports an unrecognized CPU scheme.
var ErrSchemeUnknown = errors.New("cpusim: unknown scheme")

func (s Scheme) validate() error {
	if s != LoopSIMD && s != TableBased {
		return fmt.Errorf("%w: %d", ErrSchemeUnknown, int(s))
	}
	return nil
}

// CPUSpec describes a multicore host.
type CPUSpec struct {
	Name           string
	Cores          int
	ClockGHz       float64
	SIMDWidthBytes int
	L2CacheBytes   int     // aggregate last-level cache
	MemBandwidth   float64 // effective streaming bandwidth, GB/s
}

// Validate checks the spec for usability.
func (s CPUSpec) Validate() error {
	if s.Cores <= 0 || s.ClockGHz <= 0 || s.SIMDWidthBytes <= 0 {
		return fmt.Errorf("cpusim: spec %q has non-positive compute resources", s.Name)
	}
	if s.L2CacheBytes <= 0 || s.MemBandwidth <= 0 {
		return fmt.Errorf("cpusim: spec %q has non-positive memory resources", s.Name)
	}
	return nil
}

// CyclesPerSecond returns per-core cycles per second.
func (s CPUSpec) CyclesPerSecond() float64 { return s.ClockGHz * 1e9 }

// MacPro returns the paper's CPU testbed: a dual quad-core 2.8 GHz Xeon
// (8-core Mac Pro) with SSE2 and 24 MB of aggregate L2 cache.
func MacPro() CPUSpec {
	return CPUSpec{
		Name:           "8-core Mac Pro (2× quad 2.8 GHz Xeon, SSE2)",
		Cores:          8,
		ClockGHz:       2.8,
		SIMDWidthBytes: 16,
		L2CacheBytes:   24 << 20,
		MemBandwidth:   12.0,
	}
}

// cpuModel holds the calibrated cost constants (DESIGN.md §4).
type cpuModel struct {
	// encCyclesPerByte is the loop-based SIMD encode cost per source byte
	// per coefficient (≈7-iteration average folded in). Calibrated to the
	// 67.2 MB/s full-block plateau at n=128 (Fig. 10).
	encCyclesPerByte float64
	// tableCyclesPerByte is the table-based CPU multiply cost per byte —
	// scalar lookups, no vectorization (the 43% regression of Sec. 5.1.3).
	tableCyclesPerByte float64

	// decCyclesPerByte is the cooperative decode row-op cost per byte
	// (slightly above encode: read-modify-write rows, factor broadcast).
	decCyclesPerByte float64
	// barrierCycles is the cost of one 8-thread barrier, paid per row
	// operation in cooperative decoding (Sec. 5.2's "synchronization
	// point").
	barrierCycles float64

	// Prefetcher efficiency for partitioned-block encoding: a thread
	// streaming a contiguous chunk of c bytes runs at
	// floor + (1-floor)·min(1, c/saturation) of peak (Fig. 10).
	prefetchFloor      float64
	prefetchSaturation float64

	// decWriteAmplification scales row bytes into DRAM traffic when the
	// multi-segment working set spills the L2. It is fractional because the
	// L2 still captures most of each active row pair; only the excess
	// streams from DRAM (the Fig. 9 falloff is a dip, not a cliff —
	// ≈66 → ≈60 MB/s at n=128).
	decWriteAmplification float64
}

func defaultModel() cpuModel {
	return cpuModel{
		encCyclesPerByte:      2.60,
		tableCyclesPerByte:    4.56,
		decCyclesPerByte:      2.83,
		barrierCycles:         927,
		prefetchFloor:         0.48,
		prefetchSaturation:    1100,
		decWriteAmplification: 1.6,
	}
}

// Stats counts the simulator's accounted events.
type Stats struct {
	Ops      float64 // per-core cycles of useful work charged
	Barriers float64
	MemBytes float64 // DRAM traffic charged in memory-bound phases
}

// Machine is a simulated multicore host with an accumulated virtual clock.
// Not safe for concurrent use.
type Machine struct {
	spec  CPUSpec
	model cpuModel

	seconds float64
	stats   Stats
}

// NewMachine creates a machine with the default calibrated model.
func NewMachine(spec CPUSpec) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Machine{spec: spec, model: defaultModel()}, nil
}

// Spec returns the machine description.
func (m *Machine) Spec() CPUSpec { return m.spec }

// Elapsed returns the simulated seconds consumed so far.
func (m *Machine) Elapsed() float64 { return m.seconds }

// Stats returns the accumulated counters.
func (m *Machine) Stats() Stats { return m.stats }

// Reset clears the clock and counters.
func (m *Machine) Reset() {
	m.seconds = 0
	m.stats = Stats{}
}

// EncodeResult reports a simulated CPU encode.
type EncodeResult struct {
	Blocks  []*rlnc.CodedBlock
	Seconds float64
	Bytes   int64
}

// BandwidthMBps returns coded bytes per second / 1e6.
func (r *EncodeResult) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e6
}

// EncodeOptions tunes EncodeSegment.
type EncodeOptions struct {
	// Materialize caps how many coded blocks are actually computed and
	// returned (0 = all); the rest is accounted in time only.
	Materialize int
}

// EncodeSegment produces one coded block per coefficient row with all cores,
// in the given partitioning mode (Sec. 5.3): FullBlock assigns whole coded
// blocks to threads (streaming-server scheme, prefetcher-friendly);
// PartitionedBlock splits each block across the cores (on-demand scheme,
// k/cores-byte chunks per thread).
func (m *Machine) EncodeSegment(seg *rlnc.Segment, coeffs *matrix.Matrix, mode rlnc.EncodeMode, scheme Scheme, opts *EncodeOptions) (*EncodeResult, error) {
	if err := scheme.validate(); err != nil {
		return nil, err
	}
	if mode != rlnc.PartitionedBlock && mode != rlnc.FullBlock {
		return nil, fmt.Errorf("cpusim: unknown encode mode %d", int(mode))
	}
	if opts == nil {
		opts = &EncodeOptions{}
	}
	p := seg.Params()
	n, k := p.BlockCount, p.BlockSize
	if coeffs.Cols() != n {
		return nil, fmt.Errorf("cpusim: coefficient matrix has %d columns, want %d", coeffs.Cols(), n)
	}
	rows := coeffs.Rows()
	if rows == 0 {
		return nil, fmt.Errorf("cpusim: empty coefficient matrix")
	}

	materialize := rows
	if opts.Materialize > 0 && opts.Materialize < rows {
		materialize = opts.Materialize
	}
	blocks := make([]*rlnc.CodedBlock, materialize)
	for i := range blocks {
		payload := make([]byte, k)
		rlnc.EncodeInto(payload, seg, coeffs.Row(i))
		blocks[i] = &rlnc.CodedBlock{
			SegmentID: seg.ID(),
			Coeffs:    append([]byte(nil), coeffs.Row(i)...),
			Payload:   payload,
		}
	}

	// ---- Cost ----
	cyclesPerByte := m.model.encCyclesPerByte
	if scheme == TableBased {
		cyclesPerByte = m.model.tableCyclesPerByte
	}
	// Loop-based cost is data-dependent: scale by the real iteration counts
	// of the coefficient matrix relative to the random-byte average of 7.
	if scheme == LoopSIMD {
		total := 0
		for r := 0; r < rows; r++ {
			for _, c := range coeffs.Row(r) {
				total += gf256.LoopIterations(c)
			}
		}
		avg := float64(total) / float64(rows*n)
		cyclesPerByte *= avg / 7.0
	}

	// Prefetcher efficiency: a full-block thread walks the segment
	// sequentially (blocks are contiguous), so its streaming run is the
	// whole segment; a partitioned thread touches only a k/cores steak of
	// every block, a short strided chunk the prefetcher can't amortize —
	// the Fig. 10 gap.
	chunk := float64(p.SegmentSize())
	if mode == rlnc.PartitionedBlock {
		chunk = float64(k) / float64(m.spec.Cores)
	}
	eff := m.model.prefetchFloor + (1-m.model.prefetchFloor)*minf(1, chunk/m.model.prefetchSaturation)

	totalBytes := float64(rows) * float64(k)
	cycles := totalBytes * float64(n) * cyclesPerByte / eff / float64(m.spec.Cores)
	if mode == rlnc.PartitionedBlock {
		// One barrier per coded block: every thread must finish its stripe
		// before the block ships.
		m.stats.Barriers += float64(rows)
		cycles += float64(rows) * m.model.barrierCycles
	}
	m.stats.Ops += cycles
	m.seconds += cycles / m.spec.CyclesPerSecond()

	return &EncodeResult{
		Blocks:  blocks,
		Seconds: cycles / m.spec.CyclesPerSecond(),
		Bytes:   int64(rows) * int64(k),
	}, nil
}

// DecodeResult reports a simulated CPU decode.
type DecodeResult struct {
	Segments     []*rlnc.Segment
	Seconds      float64
	DecodedBytes int64
}

// BandwidthMBps returns decoded source bytes per second / 1e6.
func (r *DecodeResult) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.DecodedBytes) / r.Seconds / 1e6
}

// DecodeSegment decodes one segment with all cores cooperating on each
// Gauss–Jordan row operation (the original IWQoS'07 scheme behind Fig. 4b):
// each row of width n+k is split across the threads, with a barrier per row
// operation to agree on the pivot.
func (m *Machine) DecodeSegment(blocks []*rlnc.CodedBlock, p rlnc.Params) (*DecodeResult, error) {
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		return nil, err
	}
	rowOps := 0.0
	for _, b := range blocks {
		rank := dec.Rank()
		innovative, err := dec.AddBlock(b)
		if err != nil {
			return nil, err
		}
		rowOps += float64(rank)
		if innovative {
			rowOps += 1 + float64(rank)
		}
		if dec.Ready() {
			break
		}
	}
	if !dec.Ready() {
		return nil, fmt.Errorf("cpusim: %w: rank %d of %d",
			rlnc.ErrRankDeficient, dec.Rank(), p.BlockCount)
	}
	seg, err := dec.Segment()
	if err != nil {
		return nil, err
	}

	width := float64(p.BlockCount + p.BlockSize)
	perRowOp := width*m.model.decCyclesPerByte/float64(m.spec.Cores) + m.model.barrierCycles
	cycles := rowOps * perRowOp
	m.stats.Ops += cycles
	m.stats.Barriers += rowOps
	seconds := cycles / m.spec.CyclesPerSecond()
	m.seconds += seconds

	return &DecodeResult{
		Segments:     []*rlnc.Segment{seg},
		Seconds:      seconds,
		DecodedBytes: int64(p.SegmentSize()),
	}, nil
}

// MultiDecodeOptions tunes DecodeSegmentsParallel.
type MultiDecodeOptions struct {
	// MaterializeSegments caps how many segments are functionally decoded
	// (0 = all); the rest is accounted in time only.
	MaterializeSegments int
}

// DecodeSegmentsParallel decodes many segments with one thread per segment
// (the paper's CPU multi-segment scheme, Sec. 5.2): no barriers, full-width
// rows per thread, but a working set of segments·(n+k)·n bytes that falls
// out of the 24 MB aggregate L2 at large block sizes — the Fig. 9 falloff.
func (m *Machine) DecodeSegmentsParallel(sets [][]*rlnc.CodedBlock, p rlnc.Params, opts *MultiDecodeOptions) (*DecodeResult, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("cpusim: no segments to decode")
	}
	o := MultiDecodeOptions{}
	if opts != nil {
		o = *opts
	}
	materialize := len(sets)
	if o.MaterializeSegments > 0 && o.MaterializeSegments < materialize {
		materialize = o.MaterializeSegments
	}
	segments := make([]*rlnc.Segment, 0, materialize)
	for i := 0; i < materialize; i++ {
		bd, err := rlnc.NewBatchDecoder(p)
		if err != nil {
			return nil, err
		}
		for _, b := range sets[i] {
			if err := bd.Add(b); err != nil {
				return nil, fmt.Errorf("cpusim: segment %d: %w", i, err)
			}
		}
		seg, err := bd.Decode()
		if err != nil {
			return nil, fmt.Errorf("cpusim: segment %d: %w", i, err)
		}
		segments = append(segments, seg)
	}

	n, k := p.BlockCount, p.BlockSize
	width := float64(n + k)
	rowOps := float64(n) * float64(n+1)
	perSegmentCycles := rowOps * width * m.model.decCyclesPerByte

	// Threads work independently; wall time is the per-core serial share.
	waves := float64((len(sets) + m.spec.Cores - 1) / m.spec.Cores)
	computeSeconds := waves * perSegmentCycles / m.spec.CyclesPerSecond()

	// Memory bound: when the concurrent working set exceeds the aggregate
	// L2, every row operation streams from DRAM.
	resident := minInt(len(sets), m.spec.Cores)
	workingSet := float64(resident) * float64(n) * width
	seconds := computeSeconds
	if workingSet > float64(m.spec.L2CacheBytes) {
		traffic := float64(len(sets)) * rowOps * width * m.model.decWriteAmplification
		memSeconds := traffic / (m.spec.MemBandwidth * 1e9)
		if memSeconds > seconds {
			seconds = memSeconds
		}
		m.stats.MemBytes += traffic
	}
	m.stats.Ops += float64(len(sets)) * perSegmentCycles / float64(m.spec.Cores)
	m.seconds += seconds

	return &DecodeResult{
		Segments:     segments,
		Seconds:      seconds,
		DecodedBytes: int64(len(sets)) * int64(p.SegmentSize()),
	}, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EstimateDecodeSegment charges the cooperative-decode cost of one dense
// full-rank segment at p without functional execution (planning API for
// large sweeps; Σⱼ(2j−1) = n² row operations).
func (m *Machine) EstimateDecodeSegment(p rlnc.Params) (*DecodeResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := float64(p.BlockCount)
	rowOps := n * n
	width := float64(p.BlockCount + p.BlockSize)
	perRowOp := width*m.model.decCyclesPerByte/float64(m.spec.Cores) + m.model.barrierCycles
	cycles := rowOps * perRowOp
	m.stats.Ops += cycles
	m.stats.Barriers += rowOps
	seconds := cycles / m.spec.CyclesPerSecond()
	m.seconds += seconds
	return &DecodeResult{Seconds: seconds, DecodedBytes: int64(p.SegmentSize())}, nil
}

// EstimateDecodeSegmentsParallel charges the one-thread-per-segment decode
// cost for the given segment count at p without functional execution.
func (m *Machine) EstimateDecodeSegmentsParallel(p rlnc.Params, segments int) (*DecodeResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if segments <= 0 {
		return nil, fmt.Errorf("cpusim: segment count %d must be positive", segments)
	}
	n, k := p.BlockCount, p.BlockSize
	width := float64(n + k)
	rowOps := float64(n) * float64(n+1)
	perSegmentCycles := rowOps * width * m.model.decCyclesPerByte

	waves := float64((segments + m.spec.Cores - 1) / m.spec.Cores)
	seconds := waves * perSegmentCycles / m.spec.CyclesPerSecond()

	resident := minInt(segments, m.spec.Cores)
	workingSet := float64(resident) * float64(n) * width
	if workingSet > float64(m.spec.L2CacheBytes) {
		traffic := float64(segments) * rowOps * width * m.model.decWriteAmplification
		memSeconds := traffic / (m.spec.MemBandwidth * 1e9)
		if memSeconds > seconds {
			seconds = memSeconds
		}
		m.stats.MemBytes += traffic
	}
	m.stats.Ops += float64(segments) * perSegmentCycles / float64(m.spec.Cores)
	m.seconds += seconds
	return &DecodeResult{Seconds: seconds, DecodedBytes: int64(segments) * int64(p.SegmentSize())}, nil
}
