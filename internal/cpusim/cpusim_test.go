package cpusim

import (
	"errors"
	"math/rand"
	"testing"

	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

func newMacPro(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine(MacPro())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomSegment(t testing.TB, p rlnc.Params, seed int64) *rlnc.Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := rlnc.SegmentFromData(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func denseCoeffs(rows, cols int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = byte(1 + rng.Intn(255))
		}
	}
	return m
}

func codedSet(t testing.TB, seg *rlnc.Segment, count int, seed int64) []*rlnc.CodedBlock {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, count)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	return blocks
}

func TestSpecValidate(t *testing.T) {
	if err := MacPro().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := MacPro()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-core spec validated")
	}
	if _, err := NewMachine(bad); err == nil {
		t.Fatal("NewMachine accepted invalid spec")
	}
}

func TestEncodeFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 12, BlockSize: 96}
	seg := randomSegment(t, p, 1)
	coeffs := denseCoeffs(p.BlockCount+2, p.BlockCount, 2)
	for _, mode := range []rlnc.EncodeMode{rlnc.FullBlock, rlnc.PartitionedBlock} {
		for _, scheme := range []Scheme{LoopSIMD, TableBased} {
			m := newMacPro(t)
			res, err := m.EncodeSegment(seg, coeffs, mode, scheme, nil)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := rlnc.NewDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range res.Blocks {
				if _, err := dec.AddBlock(b); err != nil {
					t.Fatal(err)
				}
			}
			got, err := dec.Segment()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(seg) {
				t.Fatalf("mode %v scheme %v: decode differs", mode, scheme)
			}
			if res.Seconds <= 0 {
				t.Fatal("no time charged")
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	m := newMacPro(t)
	p := rlnc.Params{BlockCount: 4, BlockSize: 32}
	seg := randomSegment(t, p, 3)
	if _, err := m.EncodeSegment(seg, denseCoeffs(2, 3, 4), rlnc.FullBlock, LoopSIMD, nil); err == nil {
		t.Fatal("mismatched coefficients accepted")
	}
	if _, err := m.EncodeSegment(seg, matrix.New(0, 4), rlnc.FullBlock, LoopSIMD, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := m.EncodeSegment(seg, denseCoeffs(2, 4, 5), rlnc.EncodeMode(7), LoopSIMD, nil); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := m.EncodeSegment(seg, denseCoeffs(2, 4, 5), rlnc.FullBlock, Scheme(9), nil); !errors.Is(err, ErrSchemeUnknown) {
		t.Fatal("bogus scheme accepted")
	}
}

// TestFullBlockBeatsPartitionedAtSmallK reproduces Fig. 10's qualitative
// result: full-block encoding is much faster at small block sizes and the
// two modes converge as k grows.
func TestFullBlockBeatsPartitionedAtSmallK(t *testing.T) {
	rate := func(k int, mode rlnc.EncodeMode) float64 {
		p := rlnc.Params{BlockCount: 128, BlockSize: k}
		seg := randomSegment(t, p, int64(k))
		coeffs := denseCoeffs(128, 128, int64(k+1))
		m := newMacPro(t)
		res, err := m.EncodeSegment(seg, coeffs, mode, LoopSIMD, &EncodeOptions{Materialize: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	smallFB, smallPart := rate(128, rlnc.FullBlock), rate(128, rlnc.PartitionedBlock)
	if smallFB < 1.5*smallPart {
		t.Errorf("k=128: full-block %.1f not ≫ partitioned %.1f", smallFB, smallPart)
	}
	bigFB, bigPart := rate(16384, rlnc.FullBlock), rate(16384, rlnc.PartitionedBlock)
	if ratio := bigFB / bigPart; ratio > 1.15 {
		t.Errorf("k=16384: modes should converge, ratio %.2f", ratio)
	}
}

// TestTableBasedRegression reproduces the Sec. 5.1.3 CPU result: the
// optimized table-based scheme drops up to 43% below loop-based SIMD.
func TestTableBasedRegression(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(t, p, 7)
	coeffs := denseCoeffs(128, 128, 8)
	loop, err := newMacPro(t).EncodeSegment(seg, coeffs, rlnc.FullBlock, LoopSIMD, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	table, err := newMacPro(t).EncodeSegment(seg, coeffs, rlnc.FullBlock, TableBased, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	drop := 1 - table.BandwidthMBps()/loop.BandwidthMBps()
	if drop < 0.30 || drop > 0.50 {
		t.Errorf("table-based drop = %.1f%%, want ≈43%%", drop*100)
	}
}

func TestDecodeSegmentFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	seg := randomSegment(t, p, 9)
	blocks := codedSet(t, seg, p.BlockCount+2, 10)
	m := newMacPro(t)
	res, err := m.DecodeSegment(blocks, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Segments[0].Equal(seg) {
		t.Fatal("decode differs")
	}
	if res.Seconds <= 0 || res.DecodedBytes != int64(p.SegmentSize()) {
		t.Fatal("bad accounting")
	}
	short := codedSet(t, seg, 2, 11)
	if _, err := newMacPro(t).DecodeSegment(short, p); !errors.Is(err, rlnc.ErrRankDeficient) {
		t.Fatalf("rank-deficient err = %v", err)
	}
}

func TestDecodeSegmentsParallelFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	const segCount = 10
	segs := make([]*rlnc.Segment, segCount)
	sets := make([][]*rlnc.CodedBlock, segCount)
	for i := range segs {
		segs[i] = randomSegment(t, p, int64(20+i))
		sets[i] = codedSet(t, segs[i], p.BlockCount+1, int64(40+i))
	}
	m := newMacPro(t)
	res, err := m.DecodeSegmentsParallel(sets, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != segCount {
		t.Fatalf("materialized %d segments", len(res.Segments))
	}
	for i := range segs {
		if !res.Segments[i].Equal(segs[i]) {
			t.Fatalf("segment %d differs", i)
		}
	}
	if _, err := m.DecodeSegmentsParallel(nil, p, nil); err == nil {
		t.Fatal("empty set list accepted")
	}
}

// TestMultiSegmentGainAndFalloff reproduces the Fig. 9 CPU behaviours:
// 8-segment decode beats cooperative single-segment decode (≈1.3× at 16 KB),
// and falls off once the working set exceeds the 24 MB aggregate L2.
func TestMultiSegmentGainAndFalloff(t *testing.T) {
	single := func(k int) float64 {
		p := rlnc.Params{BlockCount: 128, BlockSize: k}
		seg := randomSegment(t, p, int64(k+1))
		blocks := codedSet(t, seg, p.BlockCount, int64(k+2))
		res, err := newMacPro(t).DecodeSegment(blocks, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	multi := func(k int) float64 {
		p := rlnc.Params{BlockCount: 128, BlockSize: k}
		seg := randomSegment(t, p, int64(k+3))
		blocks := codedSet(t, seg, p.BlockCount, int64(k+4))
		sets := make([][]*rlnc.CodedBlock, 8)
		for i := range sets {
			sets[i] = blocks
		}
		res, err := newMacPro(t).DecodeSegmentsParallel(sets, p, &MultiDecodeOptions{MaterializeSegments: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}

	gain := multi(16384) / single(16384)
	if gain < 1.1 || gain > 1.6 {
		t.Errorf("8-segment gain at 16 KB = %.2f, want ≈1.3", gain)
	}
	// Falloff: n=128 drops at 32 KB (working set 8·128·32 KB ≈ 32 MB > 24 MB).
	if m32, m16 := multi(32768), multi(16384); m32 >= m16 {
		t.Errorf("no L2 falloff: 32 KB %.1f ≥ 16 KB %.1f MB/s", m32, m16)
	}
	// n=512 drops already at 8 KB (Sec. 5.2).
	p := rlnc.Params{BlockCount: 512, BlockSize: 8192}
	seg := randomSegment(t, p, 60)
	blocks := codedSet(t, seg, p.BlockCount, 61)
	sets := make([][]*rlnc.CodedBlock, 8)
	for i := range sets {
		sets[i] = blocks
	}
	m := newMacPro(t)
	if _, err := m.DecodeSegmentsParallel(sets, p, &MultiDecodeOptions{MaterializeSegments: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().MemBytes == 0 {
		t.Error("n=512 k=8192 working set should be memory-bound")
	}
}

func TestSchemeString(t *testing.T) {
	if LoopSIMD.String() == "" || TableBased.String() == "" || Scheme(3).String() == "" {
		t.Fatal("scheme names incomplete")
	}
}

func TestReset(t *testing.T) {
	m := newMacPro(t)
	p := rlnc.Params{BlockCount: 4, BlockSize: 64}
	seg := randomSegment(t, p, 70)
	if _, err := m.EncodeSegment(seg, denseCoeffs(4, 4, 71), rlnc.FullBlock, LoopSIMD, nil); err != nil {
		t.Fatal(err)
	}
	if m.Elapsed() <= 0 {
		t.Fatal("no time charged")
	}
	m.Reset()
	if m.Elapsed() != 0 || m.Stats().Ops != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestCalibrationAnchors pins the headline CPU numbers used across figures.
func TestCalibrationAnchors(t *testing.T) {
	// Full-block encode plateau at n=128 ≈ 67.2 MB/s (Fig. 10) — the
	// denominator of the paper's "GPU ≈ 4.3× CPU" claim.
	p := rlnc.Params{BlockCount: 128, BlockSize: 16384}
	seg := randomSegment(t, p, 80)
	coeffs := denseCoeffs(128, 128, 81)
	res, err := newMacPro(t).EncodeSegment(seg, coeffs, rlnc.FullBlock, LoopSIMD, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.BandwidthMBps(); rate < 60 || rate > 75 {
		t.Errorf("full-block encode plateau = %.1f MB/s, want ≈67", rate)
	}

	// Cooperative decode plateau at n=128 ≈ 57 MB/s (Fig. 4b).
	pd := rlnc.Params{BlockCount: 128, BlockSize: 32768}
	segD := randomSegment(t, pd, 82)
	blocks := codedSet(t, segD, pd.BlockCount, 83)
	dres, err := newMacPro(t).DecodeSegment(blocks, pd)
	if err != nil {
		t.Fatal(err)
	}
	if rate := dres.BandwidthMBps(); rate < 50 || rate > 65 {
		t.Errorf("cooperative decode plateau = %.1f MB/s, want ≈57", rate)
	}
}

// TestEstimatesMatchFunctional pins the cost-only APIs to the functional
// decode paths.
func TestEstimatesMatchFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 24, BlockSize: 480}
	seg := randomSegment(t, p, 90)
	blocks := codedSet(t, seg, p.BlockCount, 91)

	fun, err := newMacPro(t).DecodeSegment(blocks, p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := newMacPro(t).EstimateDecodeSegment(p)
	if err != nil {
		t.Fatal(err)
	}
	if rel := fun.Seconds/est.Seconds - 1; rel < -0.02 || rel > 0.02 {
		t.Errorf("decode estimate diverges by %.1f%%", rel*100)
	}

	sets := make([][]*rlnc.CodedBlock, 8)
	for i := range sets {
		sets[i] = blocks
	}
	funM, err := newMacPro(t).DecodeSegmentsParallel(sets, p, &MultiDecodeOptions{MaterializeSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	estM, err := newMacPro(t).EstimateDecodeSegmentsParallel(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rel := funM.Seconds/estM.Seconds - 1; rel < -0.02 || rel > 0.02 {
		t.Errorf("multi-segment estimate diverges by %.1f%%", rel*100)
	}
	if _, err := newMacPro(t).EstimateDecodeSegmentsParallel(p, 0); err == nil {
		t.Error("zero segments accepted")
	}
}

// TestSIMDConstantDerivation documents where encCyclesPerByte comes from:
// the SSE2 loop-based multiply runs the coefficient's bit-length in
// iterations (≈7 on random bytes) at ≈6 vector ops per 16-byte register —
// 7·6/16 ≈ 2.6 cycles per byte per coefficient at one vector op per cycle.
func TestSIMDConstantDerivation(t *testing.T) {
	const (
		avgIterations = 7.0
		opsPerIterVec = 6.0 // mask, select, xor, plus the 3-op lane xtime
		simdWidth     = 16.0
	)
	derived := avgIterations * opsPerIterVec / simdWidth
	model := defaultModel().encCyclesPerByte
	if ratio := derived / model; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("derived %.3f cycles/byte vs model %.3f (ratio %.2f)", derived, model, ratio)
	}
}
