package experiments

import (
	"fmt"

	"extremenc/internal/core"
	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// Rate helpers shared by the figure runners. Encode rates are measured
// under streaming-server conditions: enough coded blocks in flight to keep
// every SM (or core) busy, a handful materialized and verified. Decode
// rates for sweep points use the cost-only estimate APIs, which the
// simulator packages pin to their functional paths by test.

// saturatedRows returns a batch size that fills the device several times
// over for output threads of k/4 words each.
func saturatedRows(spec gpu.DeviceSpec, n, k int) int {
	words := (k + 3) / 4
	rows := (spec.SMs * spec.MaxResidentThreadsPerSM * 4) / words
	if rows < 2*n {
		rows = 2 * n
	}
	return rows
}

func gpuEncodeRate(spec gpu.DeviceSpec, n, k int, scheme gpu.Scheme) (float64, error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return 0, err
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	seg, err := core.RandomSegment(0, p, int64(31*n+k))
	if err != nil {
		return 0, err
	}
	coeffs := core.DenseCoeffs(saturatedRows(spec, n, k), n, int64(k+7))
	res, err := dev.EncodeSegment(seg, coeffs, scheme, &gpu.EncodeOptions{Materialize: 1})
	if err != nil {
		return 0, err
	}
	return res.BandwidthMBps(), nil
}

func cpuEncodeRate(n, k int, mode rlnc.EncodeMode, scheme cpusim.Scheme) (float64, error) {
	mach, err := cpusim.NewMachine(cpusim.MacPro())
	if err != nil {
		return 0, err
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	seg, err := core.RandomSegment(0, p, int64(17*n+k))
	if err != nil {
		return 0, err
	}
	rows := 2 * n
	coeffs := core.DenseCoeffs(rows, n, int64(k+11))
	res, err := mach.EncodeSegment(seg, coeffs, mode, scheme, &cpusim.EncodeOptions{Materialize: 1})
	if err != nil {
		return 0, err
	}
	return res.BandwidthMBps(), nil
}

func gpuDecodeRate(spec gpu.DeviceSpec, n, k int) (float64, error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return 0, err
	}
	res, err := dev.EstimateDecodeSegment(rlnc.Params{BlockCount: n, BlockSize: k}, nil)
	if err != nil {
		return 0, err
	}
	return res.BandwidthMBps(), nil
}

func gpuMultiDecodeRate(spec gpu.DeviceSpec, n, k, segments, perSM int) (rate, stage1Share float64, err error) {
	dev, err := gpu.NewDevice(spec)
	if err != nil {
		return 0, 0, err
	}
	res, err := dev.EstimateMultiSegment(
		rlnc.Params{BlockCount: n, BlockSize: k},
		segments,
		&gpu.MultiSegmentOptions{SegmentsPerSM: perSM},
	)
	if err != nil {
		return 0, 0, err
	}
	return res.BandwidthMBps(), res.Stage1Share(), nil
}

func cpuDecodeRate(n, k int) (float64, error) {
	mach, err := cpusim.NewMachine(cpusim.MacPro())
	if err != nil {
		return 0, err
	}
	res, err := mach.EstimateDecodeSegment(rlnc.Params{BlockCount: n, BlockSize: k})
	if err != nil {
		return 0, err
	}
	return res.BandwidthMBps(), nil
}

func cpuMultiDecodeRate(n, k, segments int) (float64, error) {
	mach, err := cpusim.NewMachine(cpusim.MacPro())
	if err != nil {
		return 0, err
	}
	res, err := mach.EstimateDecodeSegmentsParallel(rlnc.Params{BlockCount: n, BlockSize: k}, segments)
	if err != nil {
		return 0, err
	}
	return res.BandwidthMBps(), nil
}

// sweepSeries evaluates rate(k) over KSweep into a named series.
func sweepSeries(name string, rate func(k int) (float64, error)) (Series, error) {
	s := Series{Name: name, Points: make([]Point, 0, len(KSweep))}
	for _, k := range KSweep {
		v, err := rate(k)
		if err != nil {
			return Series{}, fmt.Errorf("%s at k=%d: %w", name, k, err)
		}
		s.Points = append(s.Points, Point{X: k, Value: v})
	}
	return s, nil
}
