// Package experiments regenerates every table and figure in the paper's
// evaluation (Secs. 4–5). Each Fig*/Misc* runner sweeps the paper's
// parameter grid on the simulated testbeds and returns a Figure — printable
// series in the paper's units (MB/s) — while the package tests assert the
// paper's shapes: who wins, by roughly what factor, and where the
// crossovers fall. DESIGN.md §5 maps every runner to its paper anchor.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"
)

// KSweep is the paper's block-size grid: 128 bytes to 32 KB.
var KSweep = []int{128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// NSweep is the paper's main block-count grid.
var NSweep = []int{128, 256, 512}

// Point is one measurement: X is the numeric key (usually block size k);
// Label overrides it for categorical rows (e.g. scheme names in Fig. 7).
type Point struct {
	X     int
	Label string
	Value float64
}

func (p Point) key() string {
	if p.Label != "" {
		return p.Label
	}
	return strconv.Itoa(p.X)
}

// Series is one labelled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated table or figure.
type Figure struct {
	ID    string // e.g. "fig7"
	Title string
	XAxis string // row-key meaning, e.g. "block size (bytes)"
	Unit  string // cell meaning, e.g. "MB/s"

	Series []Series
	Notes  []string
}

// Runner produces one figure.
type Runner func() (*Figure, error)

// Registry lists every experiment in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig4a", Fig4aEncodeLoopBased},
		{"fig4b", Fig4bDecodeSingleSegment},
		{"fig6", Fig6TableVsLoop},
		{"fig7", Fig7OptimizationLadder},
		{"fig8", Fig8BestEncode},
		{"fig9", Fig9MultiSegmentDecode},
		{"fig10", Fig10CPUFullBlock},
		{"cpu-table", MiscCPUTableBased},
		{"vod", MiscVoDMultiSegmentEncode},
		{"atomicmin", MiscAtomicMin},
		{"coeffcache", MiscCoefficientCache},
		{"combined", MiscCombinedEngine},
		{"dummy", MiscDummyInput},
		{"stream", MiscStreamingCapacity},
		{"p2p", MiscP2PDistribution},
		{"sparse", MiscSparseDensity},
		{"playback", MiscPlayback},
	}
}

// Lookup returns the runner for an experiment ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// Render writes the figure as an aligned text table: one row per X/Label,
// one column per series, followed by the notes.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "%s", f.XAxis)
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintf(tw, "\t(%s)\n", f.Unit)

	for _, key := range f.rowKeys() {
		fmt.Fprintf(tw, "%s", key)
		for _, s := range f.Series {
			if v, ok := seriesValue(s, key); ok {
				fmt.Fprintf(tw, "\t%.1f", v)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintf(tw, "\t\n")
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// rowKeys returns the union of row keys across series, in first-seen order
// for categorical labels and ascending order for numeric keys.
func (f *Figure) rowKeys() []string {
	seen := make(map[string]bool)
	var labels []string
	var xs []int
	for _, s := range f.Series {
		for _, p := range s.Points {
			k := p.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if p.Label != "" {
				labels = append(labels, k)
			} else {
				xs = append(xs, p.X)
			}
		}
	}
	sort.Ints(xs)
	keys := labels
	for _, x := range xs {
		keys = append(keys, strconv.Itoa(x))
	}
	return keys
}

func seriesValue(s Series, key string) (float64, bool) {
	for _, p := range s.Points {
		if p.key() == key {
			return p.Value, true
		}
	}
	return 0, false
}

// Value looks up a cell by series name and row key; it reports ok=false
// when absent. Tests use it to assert the paper's shapes.
func (f *Figure) Value(series, key string) (float64, bool) {
	for _, s := range f.Series {
		if s.Name == series {
			return seriesValue(s, key)
		}
	}
	return 0, false
}

// MustValue is Value that fails loudly — for tests and assertions.
func (f *Figure) MustValue(series, key string) (float64, error) {
	v, ok := f.Value(series, key)
	if !ok {
		return 0, fmt.Errorf("experiments: %s has no cell (%q, %q)", f.ID, series, key)
	}
	return v, nil
}

// RenderCSV writes the figure as CSV: a comment line with the title, a
// header row, one row per X/label. Notes become trailing comment lines.
func (f *Figure) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if _, err := fmt.Fprintf(w, "# %s: %s (%s)\n", f.ID, f.Title, f.Unit); err != nil {
		return err
	}
	header := append([]string{f.XAxis}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, key := range f.rowKeys() {
		row := []string{key}
		for _, s := range f.Series {
			if v, ok := seriesValue(s, key); ok {
				row = append(row, strconv.FormatFloat(v, 'f', 3, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
