package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// mustRun executes a runner and fails the test on error.
func mustRun(t *testing.T, r Runner) *Figure {
	t.Helper()
	f, err := r()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// cell fetches a figure cell and fails the test when missing.
func cell(t *testing.T, f *Figure, series, key string) float64 {
	t.Helper()
	v, err := f.MustValue(series, key)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// within asserts v ∈ [lo, hi].
func within(t *testing.T, what string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.2f, want in [%.2f, %.2f]", what, v, lo, hi)
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d experiments", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("registry entry %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := Lookup(e.ID); !ok {
			t.Fatalf("Lookup(%q) failed", e.ID)
		}
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("Lookup accepted unknown id")
	}
}

func TestRender(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "T", XAxis: "k", Unit: "MB/s",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 128, Value: 1}, {X: 256, Value: 2}}},
			{Name: "b", Points: []Point{{X: 128, Value: 3}}},
		},
		Notes: []string{"hello"},
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== x: T ==", "a", "b", "128", "256", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	if _, err := f.MustValue("nope", "128"); err == nil {
		t.Error("MustValue found a ghost cell")
	}
}

// TestFig4aShape: GTX 280 loop-based encoding ≈133/66/33.6 MB/s for
// n=128/256/512, ≈2× the 8800 GT, roughly flat in k.
func TestFig4aShape(t *testing.T) {
	f := mustRun(t, Fig4aEncodeLoopBased)
	within(t, "GTX280 n=128 @4KB", cell(t, f, "GTX280 n=128", "4096"), 120, 146)
	within(t, "GTX280 n=256 @4KB", cell(t, f, "GTX280 n=256", "4096"), 59, 73)
	within(t, "GTX280 n=512 @4KB", cell(t, f, "GTX280 n=512", "4096"), 30, 37)
	ratio := cell(t, f, "GTX280 n=128", "4096") / cell(t, f, "8800GT n=128", "4096")
	within(t, "GTX280/8800GT speedup", ratio, 1.8, 2.3)
	flat := cell(t, f, "GTX280 n=128", "32768") / cell(t, f, "GTX280 n=128", "512")
	within(t, "flatness across k", flat, 0.9, 1.15)
}

// TestFig4bShape: decoding rises with k; the CPU wins at small blocks and
// the GPU beyond ≈8 KB (n=128).
func TestFig4bShape(t *testing.T) {
	f := mustRun(t, Fig4bDecodeSingleSegment)
	gpuSmall := cell(t, f, "GTX280 n=128", "512")
	cpuSmall := cell(t, f, "MacPro n=128", "512")
	if gpuSmall >= cpuSmall {
		t.Errorf("small blocks: GPU %.1f should lose to CPU %.1f", gpuSmall, cpuSmall)
	}
	gpuBig := cell(t, f, "GTX280 n=128", "8192")
	cpuBig := cell(t, f, "MacPro n=128", "8192")
	if gpuBig < cpuBig {
		t.Errorf("8 KB blocks: GPU %.1f should beat CPU %.1f", gpuBig, cpuBig)
	}
	if g32 := cell(t, f, "GTX280 n=128", "32768"); g32 < cell(t, f, "GTX280 n=128", "4096") {
		t.Error("GPU decode should rise with k")
	}
	within(t, "MacPro n=128 plateau", cell(t, f, "MacPro n=128", "32768"), 50, 65)
}

// TestFig6Shape: TB-1 beats loop-based by ≥ ~30% across every setting.
func TestFig6Shape(t *testing.T) {
	f := mustRun(t, Fig6TableVsLoop)
	for _, n := range []string{"128", "256", "512"} {
		for _, k := range []string{"512", "4096", "32768"} {
			tb := cell(t, f, "TB n="+n, k)
			lb := cell(t, f, "LB n="+n, k)
			within(t, "TB/LB n="+n+" k="+k, tb/lb, 1.22, 1.42)
		}
	}
	within(t, "TB n=128 @4KB", cell(t, f, "TB n=128", "4096"), 160, 185)
}

// TestFig7Shape pins the full optimization ladder at n=128.
func TestFig7Shape(t *testing.T) {
	f := mustRun(t, Fig7OptimizationLadder)
	const s = "GTX280 n=128"
	anchors := []struct {
		scheme string
		lo, hi float64
	}{
		{"table-based-0", 88, 110},
		{"loop-based", 125, 141},
		{"table-based-1", 160, 185},
		{"table-based-2", 180, 207},
		{"table-based-3", 196, 222},
		{"table-based-4", 225, 254},
		{"table-based-5", 276, 312},
	}
	var prev float64
	for _, a := range anchors {
		v := cell(t, f, s, a.scheme)
		within(t, a.scheme, v, a.lo, a.hi)
		if v <= prev {
			t.Errorf("%s (%.1f) did not improve on previous (%.1f)", a.scheme, v, prev)
		}
		prev = v
	}
	// Headline: TB-5 ≈ 2.2× loop-based.
	ratio := cell(t, f, s, "table-based-5") / cell(t, f, s, "loop-based")
	within(t, "TB-5 / loop-based", ratio, 2.0, 2.4)
}

// TestFig8Shape: best encoding ≈294/147/73.5/36.6 MB/s with rate ∝ 1/n.
func TestFig8Shape(t *testing.T) {
	f := mustRun(t, Fig8BestEncode)
	within(t, "n=128", cell(t, f, "n=128", "4096"), 276, 312)
	within(t, "n=256", cell(t, f, "n=256", "4096"), 138, 156)
	within(t, "n=512", cell(t, f, "n=512", "4096"), 69, 78)
	within(t, "n=1024", cell(t, f, "n=1024", "4096"), 34, 40)
}

// TestFig9Shape: multi-segment decoding at n=128 tops near 254 MB/s, beats
// the Mac Pro 1.3–4.2× beyond small blocks, gains 2.7–27.6× over
// single-segment GPU decode, and the 60-segment variant wins up to ≈1.4×
// at small k; the Mac Pro falls off past its L2.
func TestFig9Shape(t *testing.T) {
	f := mustRun(t, Fig9MultiSegmentDecode)

	within(t, "GTX280-30seg n=128 @32KB", cell(t, f, "GTX280-30seg n=128", "32768"), 235, 275)

	// GPU vs CPU across practical sizes (512 B and up).
	for _, k := range []string{"512", "4096", "32768"} {
		ratio := cell(t, f, "GTX280-30seg n=128", k) / cell(t, f, "MacPro-8seg n=128", k)
		within(t, "GPU/CPU multi-seg @"+k, ratio, 1.2, 5.2)
	}

	// 60-segment gain at the smallest block size.
	gain := cell(t, f, "GTX280-60seg n=128", "128") / cell(t, f, "GTX280-30seg n=128", "128")
	within(t, "60seg/30seg @128B", gain, 1.2, 1.6)
	// Converged at large blocks.
	conv := cell(t, f, "GTX280-60seg n=128", "32768") / cell(t, f, "GTX280-30seg n=128", "32768")
	within(t, "60seg/30seg @32KB", conv, 0.98, 1.1)

	// Mac Pro L2 falloff: 32 KB below 16 KB at n=128.
	if m32, m16 := cell(t, f, "MacPro-8seg n=128", "32768"), cell(t, f, "MacPro-8seg n=128", "16384"); m32 >= m16 {
		t.Errorf("Mac Pro falloff missing: 32KB %.1f ≥ 16KB %.1f", m32, m16)
	}
}

// TestFig9GainOverSingleSegment: the paper's 2.7–27.6× multi-vs-single
// improvement across practical block sizes.
func TestFig9GainOverSingleSegment(t *testing.T) {
	multi := mustRun(t, Fig9MultiSegmentDecode)
	single := mustRun(t, Fig4bDecodeSingleSegment)
	lo, hi := 1e18, 0.0
	for _, k := range []string{"1024", "2048", "4096", "8192", "16384", "32768"} {
		g := cell(t, multi, "GTX280-30seg n=128", k) / cell(t, single, "GTX280 n=128", k)
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	within(t, "min multi/single gain (k ≥ 1KB)", lo, 2.0, 4.5)
	within(t, "max multi/single gain (k ≥ 1KB)", hi, 7.0, 30.0)
}

// TestFig10Shape: full-block ≫ partitioned at 128 B, converged by 16 KB,
// plateaus ≈67.2/33.6/16.8 MB/s.
func TestFig10Shape(t *testing.T) {
	f := mustRun(t, Fig10CPUFullBlock)
	gap := cell(t, f, "FB n=128", "128") / cell(t, f, "Part n=128", "128")
	within(t, "FB/Part @128B", gap, 1.5, 2.5)
	conv := cell(t, f, "FB n=128", "16384") / cell(t, f, "Part n=128", "16384")
	within(t, "FB/Part @16KB", conv, 0.95, 1.15)
	within(t, "FB n=128 plateau", cell(t, f, "FB n=128", "16384"), 60, 74)
	within(t, "FB n=256 plateau", cell(t, f, "FB n=256", "16384"), 30, 37)
	within(t, "FB n=512 plateau", cell(t, f, "FB n=512", "16384"), 15, 19)
}

func TestMiscCPUTableBased(t *testing.T) {
	f := mustRun(t, MiscCPUTableBased)
	drop := 1 - cell(t, f, "table-based", "32768")/cell(t, f, "loop-simd", "32768")
	within(t, "CPU table-based drop", drop, 0.35, 0.50)
}

func TestMiscVoD(t *testing.T) {
	f := mustRun(t, MiscVoDMultiSegmentEncode)
	single := cell(t, f, "GTX280", "single-segment")
	vod := cell(t, f, "GTX280", "vod-30-segments")
	degrade := (1 - vod/single) * 100
	within(t, "VoD degradation %", degrade, 0.05, 3.0)
}

func TestMiscAtomicMin(t *testing.T) {
	f := mustRun(t, MiscAtomicMin)
	within(t, "atomicMin gain @4KB", cell(t, f, "gain", "4096"), 0.3, 1.0)
}

func TestMiscCoefficientCache(t *testing.T) {
	f := mustRun(t, MiscCoefficientCache)
	small := cell(t, f, "gain", "128")
	big := cell(t, f, "gain", "32768")
	within(t, "coeff-cache gain @128B", small, 1.5, 4.0)
	within(t, "coeff-cache gain @32KB", big, 0.05, 1.0)
	if small <= big {
		t.Error("coefficient-cache gain should shrink with k")
	}
}

func TestMiscCombined(t *testing.T) {
	f := mustRun(t, MiscCombinedEngine)
	gpuRate := cell(t, f, "rate", "GTX280 TB-5")
	cpuRate := cell(t, f, "rate", "MacPro loop-simd")
	comb := cell(t, f, "rate", "combined")
	within(t, "GPU/CPU ratio", gpuRate/cpuRate, 3.8, 4.9)
	within(t, "combined vs sum", comb/(gpuRate+cpuRate), 0.85, 1.1)
}

func TestMiscDummyInput(t *testing.T) {
	f := mustRun(t, MiscDummyInput)
	within(t, "dummy gain @4KB", cell(t, f, "gain", "4096"), 0.05, 5.0)
}

func TestMiscStreamingCapacity(t *testing.T) {
	f := mustRun(t, MiscStreamingCapacity)
	within(t, "peers @loop-based", cell(t, f, "peers-by-compute", "loop-based"), 1300, 1500)
	within(t, "peers @TB-1", cell(t, f, "peers-by-compute", "table-based-1"), 1700, 2000)
	if p := cell(t, f, "peers-by-compute", "table-based-5"); p <= 3000 {
		t.Errorf("TB-5 peers = %.0f, want > 3000", p)
	}
}

func TestMiscP2P(t *testing.T) {
	f := mustRun(t, MiscP2PDistribution)
	rl := cell(t, f, "overhead-x", "rlnc")
	fw := cell(t, f, "overhead-x", "forward-coded")
	un := cell(t, f, "overhead-x", "uncoded")
	if rl >= fw || rl >= un {
		t.Errorf("RLNC overhead %.2f should be the lowest (fwd %.2f, uncoded %.2f)", rl, fw, un)
	}
}

// TestMiscSparseDensity: sparser matrices code strictly faster; at 5%
// density the loop-based kernel does far less data-dependent work.
func TestMiscSparseDensity(t *testing.T) {
	f := mustRun(t, MiscSparseDensity)
	for _, series := range []string{"TB-5", "LB"} {
		dense := cell(t, f, series, "100")
		half := cell(t, f, series, "50")
		sparse := cell(t, f, series, "5")
		if !(sparse > half && half > dense) {
			t.Errorf("%s: rates not increasing with sparsity: %.1f / %.1f / %.1f", series, dense, half, sparse)
		}
	}
	if gain := cell(t, f, "LB", "5") / cell(t, f, "LB", "100"); gain < 3 {
		t.Errorf("LB sparse gain = %.1fx, expected large (iterations scale with non-zeros)", gain)
	}
}

func TestRenderCSV(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "T", XAxis: "k", Unit: "MB/s",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 128, Value: 1.5}}},
			{Name: "b", Points: []Point{{X: 256, Value: 2}}},
		},
		Notes: []string{"note"},
	}
	var sb strings.Builder
	if err := f.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x: T (MB/s)", "k,a,b", "128,1.500,", "256,,2.000", "# note"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestMiscPlayback: smooth below the NIC-bound limit, stalls beyond it.
func TestMiscPlayback(t *testing.T) {
	f := mustRun(t, MiscPlayback)
	var limit int
	for _, p := range f.Series[0].Points {
		if p.X > limit {
			limit = p.X
		}
	}
	// The sweep's largest point is 2× the smooth limit and must stall.
	over, err := f.MustValue("stall-s-per-min", itoaT(limit))
	if err != nil {
		t.Fatal(err)
	}
	if over <= 0 {
		t.Errorf("2x oversubscription shows no stalls")
	}
	under, err := f.MustValue("stall-s-per-min", itoaT(f.Series[1].Points[0].X))
	if err != nil {
		t.Fatal(err)
	}
	if under != 0 {
		t.Errorf("light load stalls %.2f s/min", under)
	}
}

func itoaT(n int) string { return strconv.Itoa(n) }

// TestDeterminism: every figure regenerates bit-identically — the seeds are
// pinned, so EXPERIMENTS.md numbers are reproducible.
func TestDeterminism(t *testing.T) {
	for _, id := range []string{"fig7", "combined", "coeffcache"} {
		runner, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		render := func() string {
			f, err := runner()
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := f.Render(&sb); err != nil {
				t.Fatal(err)
			}
			return sb.String()
		}
		if render() != render() {
			t.Errorf("%s is not deterministic", id)
		}
	}
}
