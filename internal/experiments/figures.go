package experiments

import (
	"fmt"

	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/rlnc"
)

// Fig4aEncodeLoopBased reproduces Fig. 4(a): loop-based encoding bandwidth
// versus block size on the GTX 280 and 8800 GT at n ∈ {128, 256, 512}.
// Paper anchors: GTX 280 at 133 / 66 / 33.6 MB/s, a linear ≈2× speedup over
// the 8800 GT across all settings.
func Fig4aEncodeLoopBased() (*Figure, error) {
	f := &Figure{
		ID:    "fig4a",
		Title: "Loop-based GPU encoding bandwidth (GTX 280 vs 8800 GT)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	for _, spec := range []gpu.DeviceSpec{gpu.GTX280(), gpu.GeForce8800GT()} {
		spec := spec
		for _, n := range NSweep {
			n := n
			s, err := sweepSeries(
				fmt.Sprintf("%s n=%d", shortName(spec.Name), n),
				func(k int) (float64, error) { return gpuEncodeRate(spec, n, k, gpu.LoopBased) },
			)
			if err != nil {
				return nil, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Fig4bDecodeSingleSegment reproduces Fig. 4(b): single-segment decoding on
// the GTX 280 versus the 8-core Mac Pro. Paper shape: the CPU wins at small
// block sizes; the GPU takes over at 8 KB and larger; both rise with k.
func Fig4bDecodeSingleSegment() (*Figure, error) {
	f := &Figure{
		ID:    "fig4b",
		Title: "Single-segment decoding bandwidth (GTX 280 vs Mac Pro)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	gtx := gpu.GTX280()
	for _, n := range NSweep {
		n := n
		s, err := sweepSeries(
			fmt.Sprintf("GTX280 n=%d", n),
			func(k int) (float64, error) { return gpuDecodeRate(gtx, n, k) },
		)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	for _, n := range NSweep {
		n := n
		s, err := sweepSeries(
			fmt.Sprintf("MacPro n=%d", n),
			func(k int) (float64, error) { return cpuDecodeRate(n, k) },
		)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig6TableVsLoop reproduces Fig. 6: the optimized table-based scheme
// (TB-1, log-domain preprocessing) versus loop-based encoding on the
// GTX 280. Paper anchors: ≥ +30% across all settings (172 vs 133 at n=128).
func Fig6TableVsLoop() (*Figure, error) {
	f := &Figure{
		ID:    "fig6",
		Title: "Table-based (TB-1) vs loop-based GPU encoding (GTX 280)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	gtx := gpu.GTX280()
	for _, cfg := range []struct {
		scheme gpu.Scheme
		tag    string
	}{{gpu.TableBased1, "TB"}, {gpu.LoopBased, "LB"}} {
		cfg := cfg
		for _, n := range NSweep {
			n := n
			s, err := sweepSeries(
				fmt.Sprintf("%s n=%d", cfg.tag, n),
				func(k int) (float64, error) { return gpuEncodeRate(gtx, n, k, cfg.scheme) },
			)
			if err != nil {
				return nil, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// Fig7OptimizationLadder reproduces Fig. 7: every encoding scheme at n=128
// on the GTX 280. Paper anchors (MB/s): TB-0 98, LB 133, TB-1 172, TB-2
// 193, TB-3 208, TB-4 239, TB-5 294 — TB-5 is 2.2× loop-based.
func Fig7OptimizationLadder() (*Figure, error) {
	const n, k = 128, 4096
	f := &Figure{
		ID:    "fig7",
		Title: "Encoding scheme ladder at n=128 (GTX 280)",
		XAxis: "scheme",
		Unit:  "MB/s",
	}
	gtx := gpu.GTX280()
	s := Series{Name: "GTX280 n=128"}
	var prev float64
	for _, scheme := range gpu.Schemes() {
		rate, err := gpuEncodeRate(gtx, n, k, scheme)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{Label: scheme.String(), Value: rate})
		if prev > 0 {
			f.Notes = append(f.Notes, fmt.Sprintf("%s vs previous: %+.1f%%", scheme, (rate/prev-1)*100))
		}
		prev = rate
	}
	f.Series = append(f.Series, s)
	return f, nil
}

// Fig8BestEncode reproduces Fig. 8: the best scheme (TB-5) across n up to
// 1024. Paper anchors: 294.4 / ≈147 / 73.5 / 36.6 MB/s.
func Fig8BestEncode() (*Figure, error) {
	f := &Figure{
		ID:    "fig8",
		Title: "Highly optimized (TB-5) encoding on GTX 280",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	gtx := gpu.GTX280()
	for _, n := range []int{128, 256, 512, 1024} {
		n := n
		s, err := sweepSeries(
			fmt.Sprintf("n=%d", n),
			func(k int) (float64, error) { return gpuEncodeRate(gtx, n, k, gpu.TableBased5) },
		)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// Fig9MultiSegmentDecode reproduces Fig. 9: parallel multi-segment decoding
// on the GTX 280 (30 segments, plus the 60-segment variant at n=128)
// against the Mac Pro's 8-segment decoding. Paper shape: the GPU wins
// 1.3–4.2× beyond 256-byte blocks; 60 segments beat 30 by up to 1.4× at
// small k; stage-1 share falls from ≈78% to ≈1% as k grows; the Mac Pro
// falls off when its working set exceeds the 24 MB L2.
func Fig9MultiSegmentDecode() (*Figure, error) {
	f := &Figure{
		ID:    "fig9",
		Title: "Parallel multi-segment decoding (GTX 280 vs Mac Pro)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	gtx := gpu.GTX280()

	shares := map[int][2]float64{}
	for _, n := range NSweep {
		n := n
		s, err := sweepSeries(
			fmt.Sprintf("GTX280-30seg n=%d", n),
			func(k int) (float64, error) {
				rate, share, err := gpuMultiDecodeRate(gtx, n, k, 30, 1)
				if n == 128 {
					v := shares[k]
					v[0] = share
					shares[k] = v
				}
				return rate, err
			},
		)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}
	s60, err := sweepSeries("GTX280-60seg n=128", func(k int) (float64, error) {
		rate, share, err := gpuMultiDecodeRate(gtx, 128, k, 60, 2)
		v := shares[k]
		v[1] = share
		shares[k] = v
		return rate, err
	})
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, s60)

	for _, n := range NSweep {
		n := n
		s, err := sweepSeries(
			fmt.Sprintf("MacPro-8seg n=%d", n),
			func(k int) (float64, error) { return cpuMultiDecodeRate(n, k, 8) },
		)
		if err != nil {
			return nil, err
		}
		f.Series = append(f.Series, s)
	}

	for _, k := range KSweep {
		v := shares[k]
		f.Notes = append(f.Notes, fmt.Sprintf(
			"n=128 k=%d: stage-1 share 30seg %.0f%%, 60seg %.0f%%", k, v[0]*100, v[1]*100))
	}
	return f, nil
}

// Fig10CPUFullBlock reproduces Fig. 10: full-block versus partitioned-block
// CPU encoding on the Mac Pro. Paper shape: full-block is much faster at
// small block sizes (prefetcher-friendly streaming) and the two modes
// converge as k grows; plateau ≈67.2 / 33.6 / 16.8 MB/s.
func Fig10CPUFullBlock() (*Figure, error) {
	f := &Figure{
		ID:    "fig10",
		Title: "CPU encoding: full-block vs partitioned-block (Mac Pro)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	for _, cfg := range []struct {
		mode rlnc.EncodeMode
		tag  string
	}{{rlnc.FullBlock, "FB"}, {rlnc.PartitionedBlock, "Part"}} {
		cfg := cfg
		for _, n := range NSweep {
			n := n
			s, err := sweepSeries(
				fmt.Sprintf("%s n=%d", cfg.tag, n),
				func(k int) (float64, error) { return cpuEncodeRate(n, k, cfg.mode, cpusim.LoopSIMD) },
			)
			if err != nil {
				return nil, err
			}
			f.Series = append(f.Series, s)
		}
	}
	return f, nil
}

// shortName compresses device names for series labels.
func shortName(name string) string {
	switch name {
	case "GeForce GTX 280":
		return "GTX280"
	case "GeForce 8800 GT":
		return "8800GT"
	default:
		return name
	}
}
