package experiments

import (
	"fmt"

	"extremenc/internal/core"
	"extremenc/internal/cpusim"
	"extremenc/internal/gpu"
	"extremenc/internal/p2p"
	"extremenc/internal/rlnc"
	"extremenc/internal/stream"
)

// MiscCPUTableBased reproduces the Sec. 5.1.3 CPU counter-result: porting
// the optimized table-based scheme to the Mac Pro loses up to 43% against
// loop-based SIMD encoding.
func MiscCPUTableBased() (*Figure, error) {
	f := &Figure{
		ID:    "cpu-table",
		Title: "CPU encoding: loop-based SIMD vs optimized table-based (Mac Pro, n=128)",
		XAxis: "block size (bytes)",
		Unit:  "MB/s",
	}
	loop, err := sweepSeries("loop-simd", func(k int) (float64, error) {
		return cpuEncodeRate(128, k, rlnc.FullBlock, cpusim.LoopSIMD)
	})
	if err != nil {
		return nil, err
	}
	table, err := sweepSeries("table-based", func(k int) (float64, error) {
		return cpuEncodeRate(128, k, rlnc.FullBlock, cpusim.TableBased)
	})
	if err != nil {
		return nil, err
	}
	f.Series = append(f.Series, loop, table)
	drop := 1 - table.Points[len(table.Points)-1].Value/loop.Points[len(loop.Points)-1].Value
	f.Notes = append(f.Notes, fmt.Sprintf("table-based drop at 32 KB: %.0f%% (paper: up to 43%%)", drop*100))
	return f, nil
}

// MiscVoDMultiSegmentEncode reproduces the Sec. 5.1.3 VoD experiment: when
// only n coded blocks are generated per segment across an array of
// segments (each client requesting different content), performance degrades
// only ≈0.6% versus serving one segment, because the log-domain
// preprocessing amortizes per segment rather than per batch.
func MiscVoDMultiSegmentEncode() (*Figure, error) {
	const n, k, segments = 128, 4096, 30
	p := rlnc.Params{BlockCount: n, BlockSize: k}

	// Single-segment streaming batch: segments·n blocks from one segment.
	dev, err := gpu.NewDevice(gpu.GTX280())
	if err != nil {
		return nil, err
	}
	seg, err := core.RandomSegment(0, p, 101)
	if err != nil {
		return nil, err
	}
	batch := core.DenseCoeffs(segments*n, n, 102)
	single, err := dev.EncodeSegment(seg, batch, gpu.TableBased5, &gpu.EncodeOptions{Materialize: 1})
	if err != nil {
		return nil, err
	}

	// VoD: n blocks from each of `segments` distinct segments.
	dev2, err := gpu.NewDevice(gpu.GTX280())
	if err != nil {
		return nil, err
	}
	var vodSeconds float64
	var vodBytes int64
	for i := 0; i < segments; i++ {
		si, err := core.RandomSegment(uint32(i), p, int64(200+i))
		if err != nil {
			return nil, err
		}
		coeffs := core.DenseCoeffs(n, n, int64(300+i))
		res, err := dev2.EncodeSegment(si, coeffs, gpu.TableBased5, &gpu.EncodeOptions{Materialize: 1})
		if err != nil {
			return nil, err
		}
		vodSeconds += res.Seconds
		vodBytes += res.Bytes
	}
	singleRate := single.BandwidthMBps()
	vodRate := float64(vodBytes) / vodSeconds / 1e6
	degrade := (1 - vodRate/singleRate) * 100

	return &Figure{
		ID:    "vod",
		Title: "TB-5 encoding: one segment vs 30 VoD segments (GTX 280, n=128, k=4096)",
		XAxis: "scenario",
		Unit:  "MB/s",
		Series: []Series{{
			Name: "GTX280",
			Points: []Point{
				{Label: "single-segment", Value: singleRate},
				{Label: "vod-30-segments", Value: vodRate},
			},
		}},
		Notes: []string{fmt.Sprintf("VoD degradation: %.2f%% (paper: 0.6%%)", degrade)},
	}, nil
}

// MiscAtomicMin reproduces Sec. 5.4.2: accelerating the pivot search with
// shared-memory atomicMin improves decoding by ≈0.6%.
func MiscAtomicMin() (*Figure, error) {
	return decodeOptionFigure(
		"atomicmin",
		"Decode speedup from shared-memory atomicMin pivot search (GTX 280, n=128)",
		gpu.DecodeOptions{AtomicMin: true},
	)
}

// MiscCoefficientCache reproduces Sec. 5.4.3: caching the entire
// coefficient matrix in shared memory gains 0.5–3.4%, most at small blocks.
func MiscCoefficientCache() (*Figure, error) {
	return decodeOptionFigure(
		"coeffcache",
		"Decode speedup from full coefficient-matrix caching (GTX 280, n=128)",
		gpu.DecodeOptions{CacheCoefficients: true},
	)
}

func decodeOptionFigure(id, title string, opts gpu.DecodeOptions) (*Figure, error) {
	f := &Figure{ID: id, Title: title, XAxis: "block size (bytes)", Unit: "% gain"}
	s := Series{Name: "gain"}
	for _, k := range KSweep {
		p := rlnc.Params{BlockCount: 128, BlockSize: k}
		base, err := gpu.NewDevice(gpu.GTX280())
		if err != nil {
			return nil, err
		}
		baseRes, err := base.EstimateDecodeSegment(p, nil)
		if err != nil {
			return nil, err
		}
		tuned, err := gpu.NewDevice(gpu.GTX280())
		if err != nil {
			return nil, err
		}
		tunedRes, err := tuned.EstimateDecodeSegment(p, &opts)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: k, Value: (baseRes.Seconds/tunedRes.Seconds - 1) * 100})
	}
	f.Series = append(f.Series, s)
	return f, nil
}

// MiscCombinedEngine reproduces Sec. 5.4.1: GPU and CPU encoding in
// parallel reach ≈ the sum of their bandwidths, with the GTX 280 at ≈4.3×
// the Mac Pro.
func MiscCombinedEngine() (*Figure, error) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg, err := core.RandomSegment(0, p, 401)
	if err != nil {
		return nil, err
	}
	gpuEnc, err := core.NewGPUEncoder(gpu.GTX280(), gpu.TableBased5)
	if err != nil {
		return nil, err
	}
	cpuEnc, err := core.NewCPUEncoder(cpusim.MacPro(), rlnc.FullBlock, cpusim.LoopSIMD)
	if err != nil {
		return nil, err
	}
	const count = 4096
	gpuRep, err := gpuEnc.EncodeBlocks(seg, count, 402)
	if err != nil {
		return nil, err
	}
	cpuRep, err := cpuEnc.EncodeBlocks(seg, count, 403)
	if err != nil {
		return nil, err
	}
	combRep, err := core.NewCombinedEncoder(gpuEnc, cpuEnc).EncodeBlocks(seg, count, 404)
	if err != nil {
		return nil, err
	}
	gr, cr, br := gpuRep.BandwidthMBps(), cpuRep.BandwidthMBps(), combRep.BandwidthMBps()
	return &Figure{
		ID:    "combined",
		Title: "GPU + CPU combined encoding (n=128, k=4096)",
		XAxis: "engine",
		Unit:  "MB/s",
		Series: []Series{{
			Name: "rate",
			Points: []Point{
				{Label: "GTX280 TB-5", Value: gr},
				{Label: "MacPro loop-simd", Value: cr},
				{Label: "combined", Value: br},
			},
		}},
		Notes: []string{
			fmt.Sprintf("GPU/CPU ratio: %.2f (paper: ≈4.3)", gr/cr),
			fmt.Sprintf("combined vs sum: %.1f%%", br/(gr+cr)*100),
		},
	}, nil
}

// MiscDummyInput reproduces the closing Sec. 5.1.3 benchmark: generating
// dummy inputs in registers instead of reading graphics memory improves
// encoding by only ≈0.5%, confirming memory latency is hidden.
func MiscDummyInput() (*Figure, error) {
	const n = 128
	f := &Figure{
		ID:    "dummy",
		Title: "TB-5 encoding with dummy (register-generated) inputs (GTX 280, n=128)",
		XAxis: "block size (bytes)",
		Unit:  "% gain",
	}
	s := Series{Name: "gain"}
	for _, k := range []int{1024, 4096, 16384} {
		p := rlnc.Params{BlockCount: n, BlockSize: k}
		seg, err := core.RandomSegment(0, p, int64(500+k))
		if err != nil {
			return nil, err
		}
		coeffs := core.DenseCoeffs(saturatedRows(gpu.GTX280(), n, k), n, int64(600+k))
		realDev, err := gpu.NewDevice(gpu.GTX280())
		if err != nil {
			return nil, err
		}
		realRes, err := realDev.EncodeSegment(seg, coeffs, gpu.TableBased5, &gpu.EncodeOptions{Materialize: 1})
		if err != nil {
			return nil, err
		}
		dummyDev, err := gpu.NewDevice(gpu.GTX280())
		if err != nil {
			return nil, err
		}
		dummyRes, err := dummyDev.EncodeSegment(seg, coeffs, gpu.TableBased5, &gpu.EncodeOptions{Materialize: 1, DummyInput: true})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: k, Value: (realRes.Seconds/dummyRes.Seconds - 1) * 100})
	}
	f.Series = append(f.Series, s)
	return f, nil
}

// MiscStreamingCapacity reproduces the Sec. 5.1 streaming-server analysis:
// peers served at 768 Kbps from the measured encoding rates (1385 @ loop-
// based, 1844 @ TB-1, >3000 @ TB-5), and the NICs those rates saturate.
func MiscStreamingCapacity() (*Figure, error) {
	scenario := core.DefaultStreamScenario()
	gtx := gpu.GTX280()
	f := &Figure{
		ID:    "stream",
		Title: "Streaming-server capacity at 768 Kbps (512 KB segments, GTX 280)",
		XAxis: "scheme",
		Unit:  "peers",
	}
	rates := Series{Name: "peers-by-compute"}
	for _, scheme := range []gpu.Scheme{gpu.LoopBased, gpu.TableBased1, gpu.TableBased5} {
		rate, err := gpuEncodeRate(gtx, scenario.Params.BlockCount, scenario.Params.BlockSize, scheme)
		if err != nil {
			return nil, err
		}
		peers := scenario.PeersByCompute(rate)
		rates.Points = append(rates.Points, Point{Label: scheme.String(), Value: float64(peers)})
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: %.0f MB/s → %d peers, %.2f GigE NICs, %d blocks/segment",
			scheme, rate, peers, scenario.NICsSaturated(rate), scenario.BlocksPerSegmentForPeers(peers)))
	}
	f.Series = append(f.Series, rates)
	f.Notes = append(f.Notes,
		fmt.Sprintf("segment duration: %.2f s; segments per GB of GPU memory: %d",
			scenario.SegmentDuration(), scenario.GPUSegmentCapacity(1<<30)))
	return f, nil
}

// MiscP2PDistribution runs the Avalanche-style comparison on the
// discrete-event network: network coding with recoding versus verbatim
// forwarding of coded or plain blocks.
func MiscP2PDistribution() (*Figure, error) {
	f := &Figure{
		ID:    "p2p",
		Title: "P2P bulk distribution: 24 peers, 16×1 KB blocks, 1 MB/s links",
		XAxis: "mode",
		Unit:  "mixed",
	}
	finish := Series{Name: "max-finish-s"}
	overhead := Series{Name: "overhead-x"}
	for _, mode := range []p2p.Mode{p2p.ModeRLNC, p2p.ModeForward, p2p.ModeUncoded} {
		res, err := p2p.Run(p2p.Config{
			Params:           rlnc.Params{BlockCount: 16, BlockSize: 1024},
			Peers:            24,
			Neighbors:        3,
			LinkBandwidthBps: 8e6,
			LinkLatency:      0.005,
			Mode:             mode,
			Seed:             7,
			MaxSimTime:       5000,
		})
		if err != nil {
			return nil, err
		}
		finish.Points = append(finish.Points, Point{Label: mode.String(), Value: res.MaxFinish})
		overhead.Points = append(overhead.Points, Point{Label: mode.String(), Value: res.Overhead})
		f.Notes = append(f.Notes, fmt.Sprintf(
			"%s: %d/%d done, %d blocks sent, %d useless receptions",
			mode, res.Completed, res.Peers, res.BlocksSent, res.BlocksUseless))
	}
	f.Series = append(f.Series, finish, overhead)
	return f, nil
}

// MiscSparseDensity is the sparsity ablation behind the paper's Sec. 4.3
// remark that the evaluation's fully dense matrices are the worst case:
// "the performance will be even higher with sparser matrices". It sweeps
// coefficient density at n=128, k=4096 for the best table-based scheme and
// the loop-based kernel.
func MiscSparseDensity() (*Figure, error) {
	const n, k = 128, 4096
	densities := []float64{1.0, 0.5, 0.25, 0.1, 0.05}
	f := &Figure{
		ID:    "sparse",
		Title: "Encoding rate vs coefficient density (GTX 280, n=128, k=4096)",
		XAxis: "density (%)",
		Unit:  "MB/s",
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	for _, cfg := range []struct {
		scheme gpu.Scheme
		tag    string
	}{{gpu.TableBased5, "TB-5"}, {gpu.LoopBased, "LB"}} {
		s := Series{Name: cfg.tag}
		for _, density := range densities {
			dev, err := gpu.NewDevice(gpu.GTX280())
			if err != nil {
				return nil, err
			}
			seg, err := core.RandomSegment(0, p, 701)
			if err != nil {
				return nil, err
			}
			coeffs := core.SparseCoeffs(saturatedRows(gpu.GTX280(), n, k), n, density, 702)
			res, err := dev.EncodeSegment(seg, coeffs, cfg.scheme, &gpu.EncodeOptions{Materialize: 1})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: int(density * 100), Value: res.BandwidthMBps()})
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes, "the paper's evaluation uses fully dense (100%) matrices — the worst case")
	return f, nil
}

// MiscPlayback models the viewer experience behind the Sec. 5.1.2 buffering
// analysis: startup delay and playback stalls as the peer population scales
// against a TB-5 GTX 280 server on one Gigabit NIC.
func MiscPlayback() (*Figure, error) {
	scenario := core.DefaultStreamScenario()
	rate, err := gpuEncodeRate(gpu.GTX280(), scenario.Params.BlockCount, scenario.Params.BlockSize, gpu.TableBased5)
	if err != nil {
		return nil, err
	}
	limit := stream.MaxSmoothPeers(scenario, rate)

	f := &Figure{
		ID:    "playback",
		Title: "Viewer experience vs peers (TB-5 GTX 280, 768 Kbps, 1 GigE)",
		XAxis: "peers",
		Unit:  "mixed",
	}
	startup := Series{Name: "startup-s"}
	stalls := Series{Name: "stall-s-per-min"}
	for _, peers := range []int{limit / 4, limit / 2, limit, limit * 3 / 2, limit * 2} {
		m, err := stream.SimulatePlayback(stream.PlaybackConfig{
			Scenario:     scenario,
			EncodeMBps:   rate,
			Peers:        peers,
			SegmentCount: 40,
		})
		if err != nil {
			return nil, err
		}
		mediaMinutes := float64(40) * scenario.SegmentDuration() / 60
		startup.Points = append(startup.Points, Point{X: peers, Value: m.StartupDelay})
		stalls.Points = append(stalls.Points, Point{X: peers, Value: m.StallSeconds / mediaMinutes})
	}
	f.Series = append(f.Series, startup, stalls)
	f.Notes = append(f.Notes, fmt.Sprintf(
		"smooth-playback limit: %d peers (NIC-bound; compute sustains %d)",
		limit, scenario.PeersByCompute(rate)))
	return f, nil
}
