// Package faultnet is a deterministic fault-injection layer for net.Conn
// streams: the chaos harness behind the transport's robustness tests. A
// wrapped connection injects byte corruption, short reads, partial writes,
// read stalls, and mid-stream connection resets on a schedule derived
// entirely from a seed and the number of bytes moved — never from wall-clock
// time or call segmentation — so a given seed always produces the same
// faults at the same byte offsets, no matter how the kernel slices reads.
//
// The paper's transport needs no retransmission protocol because every
// coded block is fungible (Sec. 5.1); faultnet exists to prove that claim
// mechanically: a fetch through a faulty link must still converge, and the
// per-fault counters say exactly what it survived.
package faultnet

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
)

// ErrInjectedReset reports a scheduled mid-stream connection reset. The
// underlying connection is closed when the reset fires, so the remote peer
// observes a real teardown too.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Config schedules the faults of one chaos link. Every "Every" field is a
// mean gap in stream bytes between injections (the actual gaps are drawn
// uniformly from [1, 2·mean] by the seeded schedule); zero disables that
// fault. Corruption and stalls apply to the read path; resets trigger on
// total traffic in either direction; chunk bounds shorten individual
// Read/Write calls without losing bytes.
type Config struct {
	// Seed fixes the fault schedule. Two links with equal Config produce
	// byte-identical fault sequences.
	Seed int64

	// CorruptEvery is the mean gap in read bytes between single-byte XOR
	// corruptions (the mask is drawn from the schedule and never zero).
	CorruptEvery int64

	// ResetEvery is the mean traffic bytes before the connection is reset:
	// the underlying conn is closed and every later call fails with
	// ErrInjectedReset. Each wrapped conn resets at most once.
	ResetEvery int64

	// StallEvery and Stall inject a Stall-long sleep before the read that
	// crosses each scheduled offset.
	StallEvery int64
	Stall      time.Duration

	// MaxReadChunk bounds the bytes returned by a single Read (short
	// reads); MaxWriteChunk splits writes into bounded underlying writes
	// (partial writes). Zero leaves the caller's sizes alone.
	MaxReadChunk  int
	MaxWriteChunk int
}

// Counters accumulates per-fault totals across every conn attached to it,
// backed by obs metric values so a chaos link scrapes alongside the serving
// stack (see Register). All methods are safe for concurrent use.
type Counters struct {
	corruptions   obs.Counter
	resets        obs.Counter
	stalls        obs.Counter
	shortReads    obs.Counter
	partialWrites obs.Counter
	bytesRead     obs.Counter
	bytesWritten  obs.Counter
	conns         obs.Counter
}

// Register attaches every fault counter to reg under prefix (e.g.
// "faultnet" yields "faultnet.corruptions"). The counters work identically
// unregistered; registration only adds them to the exposition. It fails if
// the names are already taken.
func (c *Counters) Register(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"corruptions", "injected single-byte XOR corruptions", &c.corruptions},
		{"resets", "injected mid-stream connection resets", &c.resets},
		{"stalls", "injected read stalls", &c.stalls},
		{"short_reads", "reads shortened by the chunk bound", &c.shortReads},
		{"partial_writes", "writes split by the chunk bound", &c.partialWrites},
		{"bytes_read", "bytes delivered through the chaos read path", &c.bytesRead},
		{"bytes_written", "bytes accepted by the chaos write path", &c.bytesWritten},
		{"conns", "connections wrapped by the chaos link", &c.conns},
	} {
		if err := reg.RegisterCounter(prefix+"."+m.name, m.help, m.c); err != nil {
			return err
		}
	}
	return nil
}

// CounterView is a point-in-time copy of a Counters.
type CounterView struct {
	Corruptions   int64
	Resets        int64
	Stalls        int64
	ShortReads    int64
	PartialWrites int64
	BytesRead     int64
	BytesWritten  int64
	Conns         int64
}

// View copies the counters.
func (c *Counters) View() CounterView {
	return CounterView{
		Corruptions:   c.corruptions.Load(),
		Resets:        c.resets.Load(),
		Stalls:        c.stalls.Load(),
		ShortReads:    c.shortReads.Load(),
		PartialWrites: c.partialWrites.Load(),
		BytesRead:     c.bytesRead.Load(),
		BytesWritten:  c.bytesWritten.Load(),
		Conns:         c.conns.Load(),
	}
}

// Conn is a chaos net.Conn. Faults fire at byte offsets drawn once from the
// seeded schedule, so the same seed over the same byte stream yields the
// same corrupted bytes, the same stall points, and the same reset offset.
type Conn struct {
	inner net.Conn
	cfg   Config
	ctr   *Counters

	mu          sync.Mutex
	corruptRng  *rand.Rand // corruption offsets and masks
	stallRng    *rand.Rand // stall offsets
	chunk       *rand.Rand // per-call chunk sizing (segmentation-dependent)
	rdOff       int64
	wrOff       int64
	nextCorrupt int64
	nextStall   int64
	resetAt     int64 // absolute traffic offset, -1 when disabled
	isReset     bool
}

// Wrap puts a chaos layer with its own counters around c.
func Wrap(c net.Conn, cfg Config) *Conn { return WrapWith(c, cfg, &Counters{}) }

// WrapWith is Wrap with the counters aggregated into ctr.
func WrapWith(c net.Conn, cfg Config, ctr *Counters) *Conn {
	// Each fault type draws from its own sub-stream, so the corruption and
	// reset offsets depend only on the seed and bytes moved — stall timing
	// and call chunking, which do vary with read segmentation, cannot
	// perturb them.
	fc := &Conn{
		inner:      c,
		cfg:        cfg,
		ctr:        ctr,
		corruptRng: rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		stallRng:   rand.New(rand.NewSource(cfg.Seed ^ 0x3C6EF372FE94F82B)),
		chunk:      rand.New(rand.NewSource(cfg.Seed ^ 0x2545F4914F6CDD1D)),
	}
	fc.nextCorrupt = drawGap(fc.corruptRng, cfg.CorruptEvery)
	fc.nextStall = drawGap(fc.stallRng, cfg.StallEvery)
	fc.resetAt = drawGap(rand.New(rand.NewSource(cfg.Seed^0x1F83D9ABFB41BD6B)), cfg.ResetEvery)
	ctr.conns.Add(1)
	return fc
}

// drawGap returns the first offset at mean gap from zero, or -1 when the
// fault is disabled.
func drawGap(rng *rand.Rand, mean int64) int64 {
	if mean <= 0 {
		return -1
	}
	return 1 + rng.Int63n(2*mean)
}

// advance moves a schedule offset past off by one mean gap.
func advance(rng *rand.Rand, off, mean int64) int64 {
	return off + 1 + rng.Int63n(2*mean)
}

func (c *Conn) traffic() int64 { return c.rdOff + c.wrOff }

// fireReset marks the conn reset and tears down the underlying connection.
// Callers must hold c.mu.
func (c *Conn) fireReset() error {
	c.isReset = true
	c.ctr.resets.Add(1)
	trace.Emit(trace.KindFault, "faultnet", "reset", -1, c.traffic())
	c.inner.Close()
	return ErrInjectedReset
}

// Read reads from the underlying connection, applying scheduled stalls,
// short reads, byte corruption, and resets.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.isReset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	if len(p) == 0 {
		c.mu.Unlock()
		return c.inner.Read(p)
	}
	var stall time.Duration
	if c.cfg.StallEvery > 0 && c.rdOff >= c.nextStall {
		stall = c.cfg.Stall
		c.nextStall = advance(c.stallRng, c.rdOff, c.cfg.StallEvery)
		c.ctr.stalls.Add(1)
		trace.Emit(trace.KindFault, "faultnet", "stall", -1, stall.Milliseconds())
	}
	if c.resetAt >= 0 && c.traffic() >= c.resetAt {
		err := c.fireReset()
		c.mu.Unlock()
		return 0, err
	}
	limit := len(p)
	// Never read past the reset offset: the reset then fires exactly at its
	// scheduled byte, independent of how large this read was.
	if c.resetAt >= 0 && c.traffic()+int64(limit) > c.resetAt {
		limit = int(c.resetAt - c.traffic())
	}
	if c.cfg.MaxReadChunk > 0 && limit > c.cfg.MaxReadChunk {
		limit = 1 + c.chunk.Intn(c.cfg.MaxReadChunk)
		c.ctr.shortReads.Add(1)
	}
	c.mu.Unlock()

	if stall > 0 {
		time.Sleep(stall)
	}
	n, err := c.inner.Read(p[:limit])

	c.mu.Lock()
	if c.cfg.CorruptEvery > 0 {
		var hits int64
		for c.nextCorrupt < c.rdOff+int64(n) {
			if c.nextCorrupt >= c.rdOff {
				mask := byte(1 + c.corruptRng.Intn(255)) // non-zero: always damages
				p[c.nextCorrupt-c.rdOff] ^= mask
				c.ctr.corruptions.Add(1)
				hits++
			}
			c.nextCorrupt = advance(c.corruptRng, c.nextCorrupt, c.cfg.CorruptEvery)
		}
		if hits > 0 {
			trace.Emit(trace.KindFault, "faultnet", "corrupt", -1, hits)
		}
	}
	c.rdOff += int64(n)
	c.ctr.bytesRead.Add(int64(n))
	c.mu.Unlock()
	return n, err
}

// Write forwards to the underlying connection in bounded chunks, honoring
// the reset schedule on total traffic.
func (c *Conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		c.mu.Lock()
		if c.isReset {
			c.mu.Unlock()
			return written, ErrInjectedReset
		}
		if c.resetAt >= 0 && c.traffic() >= c.resetAt {
			err := c.fireReset()
			c.mu.Unlock()
			return written, err
		}
		limit := len(p) - written
		if c.resetAt >= 0 && c.traffic()+int64(limit) > c.resetAt {
			limit = int(c.resetAt - c.traffic())
		}
		if c.cfg.MaxWriteChunk > 0 && limit > c.cfg.MaxWriteChunk {
			limit = 1 + c.chunk.Intn(c.cfg.MaxWriteChunk)
			c.ctr.partialWrites.Add(1)
		}
		c.mu.Unlock()

		n, err := c.inner.Write(p[written : written+limit])

		c.mu.Lock()
		c.wrOff += int64(n)
		c.ctr.bytesWritten.Add(int64(n))
		c.mu.Unlock()
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// connSeed derives the i-th connection's seed from the base seed so every
// connection through a Listener or Dialer gets its own reproducible
// schedule (splitmix-style odd-constant stride).
func connSeed(base, i int64) int64 {
	return base + i*-0x61C8864680B583EB
}

// Listener wraps every accepted connection in a chaos layer. Connection i
// (1-based, in accept order) uses seed connSeed(cfg.Seed, i), so the accept
// order alone fixes every schedule.
type Listener struct {
	net.Listener
	cfg Config
	ctr *Counters
	n   atomic.Int64
}

// NewListener wraps l.
func NewListener(l net.Listener, cfg Config) *Listener {
	return &Listener{Listener: l, cfg: cfg, ctr: &Counters{}}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	cfg.Seed = connSeed(l.cfg.Seed, l.n.Add(1))
	return WrapWith(c, cfg, l.ctr), nil
}

// Counters returns the listener-wide fault totals.
func (l *Listener) Counters() *Counters { return l.ctr }

// Dialer wraps dial so that the i-th dialed connection (1-based) carries a
// chaos layer seeded with connSeed(cfg.Seed, i). It returns the wrapped
// dial function and the shared counters.
func Dialer(cfg Config, dial func(context.Context) (net.Conn, error)) (func(context.Context) (net.Conn, error), *Counters) {
	ctr := &Counters{}
	var n atomic.Int64
	return func(ctx context.Context) (net.Conn, error) {
		c, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		cc := cfg
		cc.Seed = connSeed(cfg.Seed, n.Add(1))
		return WrapWith(c, cc, ctr), nil
	}, ctr
}
