package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// pump writes payload through a faultnet conn wrapped around one side of a
// pipe and reads everything the chaos layer delivers on the other, using a
// fixed read-chunk size so call segmentation is identical across runs.
func pump(t *testing.T, cfg Config, payload []byte, readChunk int) ([]byte, CounterView) {
	t.Helper()
	a, b := net.Pipe()
	fc := Wrap(a, cfg)
	go func() {
		b.Write(payload)
		b.Close()
	}()
	var got bytes.Buffer
	buf := make([]byte, readChunk)
	var readErr error
	for {
		n, err := fc.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			readErr = err
			break
		}
	}
	fc.Close()
	if readErr != io.EOF && !errors.Is(readErr, ErrInjectedReset) &&
		!errors.Is(readErr, io.ErrClosedPipe) && !errors.Is(readErr, net.ErrClosed) {
		t.Fatalf("unexpected terminal read error: %v", readErr)
	}
	return got.Bytes(), fc.ctr.View()
}

// TestDeterministicSchedule: the same seed over the same byte stream must
// produce byte-identical output and identical fault counters, run after run.
func TestDeterministicSchedule(t *testing.T) {
	payload := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(payload)
	cfg := Config{
		Seed:         42,
		CorruptEvery: 300,
		ResetEvery:   6000,
		StallEvery:   2000,
		Stall:        time.Microsecond,
		MaxReadChunk: 200,
	}
	first, firstCtr := pump(t, cfg, payload, 128)
	for run := 0; run < 3; run++ {
		got, ctr := pump(t, cfg, payload, 128)
		if !bytes.Equal(got, first) {
			t.Fatalf("run %d: delivered bytes differ from first run", run)
		}
		if ctr != firstCtr {
			t.Fatalf("run %d: counters differ: %+v vs %+v", run, ctr, firstCtr)
		}
	}
	if firstCtr.Corruptions == 0 || firstCtr.Resets != 1 || firstCtr.Stalls == 0 {
		t.Fatalf("schedule fired no faults: %+v", firstCtr)
	}
	if bytes.Equal(first, payload[:len(first)]) {
		t.Fatal("corruption schedule left the stream untouched")
	}
	// A different seed must produce a different fault pattern.
	cfg.Seed = 43
	other, _ := pump(t, cfg, payload, 128)
	if bytes.Equal(other, first) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestCleanPassthrough: a zero config moves bytes untouched.
func TestCleanPassthrough(t *testing.T) {
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(2)).Read(payload)
	got, ctr := pump(t, Config{Seed: 7}, payload, 333)
	if !bytes.Equal(got, payload) {
		t.Fatal("clean config altered the stream")
	}
	if ctr.Corruptions != 0 || ctr.Resets != 0 || ctr.Stalls != 0 || ctr.ShortReads != 0 {
		t.Fatalf("clean config counted faults: %+v", ctr)
	}
	if ctr.BytesRead != int64(len(payload)) {
		t.Fatalf("bytes read = %d, want %d", ctr.BytesRead, len(payload))
	}
}

// TestResetDeliversPrefixExactly: the reset fires at its scheduled byte —
// everything before it arrives intact, nothing after.
func TestResetDeliversPrefixExactly(t *testing.T) {
	payload := make([]byte, 4096)
	rand.New(rand.NewSource(3)).Read(payload)
	cfg := Config{Seed: 11, ResetEvery: 1000}
	got, ctr := pump(t, cfg, payload, 256)
	if ctr.Resets != 1 {
		t.Fatalf("resets = %d, want 1", ctr.Resets)
	}
	if len(got) >= len(payload) {
		t.Fatal("reset delivered the whole stream")
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("prefix before reset was altered")
	}
	// After a reset every further call fails.
	a, _ := net.Pipe()
	fc := Wrap(a, cfg)
	fc.mu.Lock()
	fc.isReset = true
	fc.mu.Unlock()
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset read: %v", err)
	}
	if _, err := fc.Write([]byte{1}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset write: %v", err)
	}
}

// TestPartialWrites: chunked writes still deliver every byte, in order.
func TestPartialWrites(t *testing.T) {
	payload := make([]byte, 2000)
	rand.New(rand.NewSource(4)).Read(payload)
	a, b := net.Pipe()
	fc := Wrap(a, Config{Seed: 5, MaxWriteChunk: 64})
	done := make(chan error, 1)
	go func() {
		n, err := fc.Write(payload)
		if err == nil && n != len(payload) {
			err = errors.New("short total write")
		}
		fc.Close()
		done <- err
	}()
	got, err := io.ReadAll(b)
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d bytes, differ from sent (read err %v)", len(got), err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if fc.ctr.View().PartialWrites == 0 {
		t.Fatal("no partial writes counted")
	}
}

// TestListenerWrapsAccepted: a chaos Listener hands out wrapped conns that
// inject scheduled faults and aggregate into the listener counters.
func TestListenerWrapsAccepted(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	l := NewListener(inner, Config{Seed: 21, CorruptEvery: 64})
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
		c.Close()
	}()
	c, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// The server reads through the chaos layer; corruption applies to its
	// read path, counted in the listener counters.
	c.Write(make([]byte, 2048))
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for l.Counters().View().BytesRead < 2048 {
		if time.Now().After(deadline) {
			t.Fatalf("listener conn read %d of 2048 bytes", l.Counters().View().BytesRead)
		}
		time.Sleep(time.Millisecond)
	}
	if v := l.Counters().View(); v.Conns != 1 || v.Corruptions == 0 {
		t.Fatalf("listener counters = %+v, want 1 conn with corruptions", v)
	}
}

// TestDialerSeeds: connections through a Dialer get distinct, reproducible
// per-connection schedules aggregated into shared counters.
func TestDialerSeeds(t *testing.T) {
	mk := func() (func(context.Context) (net.Conn, error), *Counters, func()) {
		pairs := make(chan net.Conn, 8)
		dial, ctr := Dialer(Config{Seed: 9, CorruptEvery: 50}, func(context.Context) (net.Conn, error) {
			a, b := net.Pipe()
			pairs <- b
			return a, nil
		})
		go func() {
			for b := range pairs {
				go func(c net.Conn) {
					c.Write(bytes.Repeat([]byte{0xAA}, 512))
					c.Close()
				}(b)
			}
		}()
		return dial, ctr, func() { close(pairs) }
	}

	read := func(dial func(context.Context) (net.Conn, error)) [][]byte {
		var streams [][]byte
		for i := 0; i < 3; i++ {
			c, err := dial(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got, _ := io.ReadAll(c)
			c.Close()
			streams = append(streams, got)
		}
		return streams
	}

	dial1, ctr1, stop1 := mk()
	s1 := read(dial1)
	stop1()
	dial2, _, stop2 := mk()
	s2 := read(dial2)
	stop2()

	for i := range s1 {
		if !bytes.Equal(s1[i], s2[i]) {
			t.Fatalf("conn %d: schedules differ across identically-seeded dialers", i)
		}
	}
	if bytes.Equal(s1[0], s1[1]) {
		t.Fatal("consecutive connections share a fault schedule")
	}
	if ctr1.View().Corruptions == 0 {
		t.Fatal("dialer counters saw no corruption")
	}
	if ctr1.View().Conns != 3 {
		t.Fatalf("conns = %d, want 3", ctr1.View().Conns)
	}
}
