package gf256

import "encoding/binary"

// Bulk row operations. These are the host codec's hot path: every encode,
// recode and Gauss–Jordan row operation reduces to dst ⊕= c·src over k-byte
// rows. Mirroring the paper's TB-0…5 ladder (Sec. 4.2), the package keeps a
// measured progression of kernels:
//
//   - a loop-based, bit-sliced form that processes 8 byte-lanes per uint64
//     (the SSE2/AltiVec analogue from the authors' IWQoS'07 work),
//   - a scalar table-row form that indexes the 256-entry product row of the
//     coefficient one byte at a time (kept as the ladder baseline),
//   - a wide table-row form that gathers 8 products per 64-bit destination
//     word, so each dst word is loaded and stored exactly once, and
//   - fused 2- and 4-source kernels (MulAddSlice2 / MulAddSlice4) that apply
//     several coefficient·source pairs per destination pass — the host
//     analogue of the paper's register-blocked accumulation.
//
// MulAddSlice picks a strategy by row length; BenchmarkMulAddLadder
// exercises every rung directly.

const (
	loMask  = 0x7f7f7f7f7f7f7f7f
	hiMask  = 0x8080808080808080
	polyRed = 0x1b // Poly's low byte, the per-lane reduction constant

	// tableRowThreshold is the row length above which loading the 256-entry
	// product row beats bit-sliced math. Recalibrated with
	// BenchmarkMulAddLadder after the table path went wide-word: the wide
	// gather amortizes the row-load cost much earlier than the old scalar
	// path did (the previous threshold was 64).
	tableRowThreshold = 16
)

// xtimes8 multiplies each of the 8 byte-lanes of v by x (i.e. by 0x02) in
// Rijndael's field.
func xtimes8(v uint64) uint64 {
	hi := v & hiMask
	return ((v &^ hiMask) << 1) ^ ((hi >> 7) * polyRed)
}

// mulLanes multiplies each byte-lane of v by the scalar coefficient c using
// the loop-based algorithm: at most 8 shift/test/xor iterations.
func mulLanes(v uint64, c byte) uint64 {
	var acc uint64
	for c != 0 {
		if c&1 != 0 {
			acc ^= v
		}
		c >>= 1
		v = xtimes8(v)
	}
	return acc
}

// AddSlice computes dst[i] ^= src[i] for every i. len(src) must not exceed
// len(dst). Rows may not partially alias (identical slices are fine and
// zero the row). GF(2^8) addition is XOR, so this is XorSlice under the
// field-arithmetic name the GF(2^8) kernels use.
func AddSlice(dst, src []byte) {
	XorSlice(dst, src)
}

// XorSlice computes dst[i] ^= src[i] for every i — the pure GF(2) row
// operation of the systematic/XOR fast path. It needs no log/exp or product
// tables: four 64-bit words per iteration, with 8-byte and scalar tails.
// len(src) must not exceed len(dst); rows may not partially alias (identical
// slices are fine and zero the row).
func XorSlice(dst, src []byte) {
	n := len(src)
	dst = dst[:n] // equal lengths: the first in-loop bounds check proves away the rest
	i := 0
	for ; i+32 <= n; i += 32 {
		d0 := binary.LittleEndian.Uint64(dst[i:])
		d1 := binary.LittleEndian.Uint64(dst[i+8:])
		d2 := binary.LittleEndian.Uint64(dst[i+16:])
		d3 := binary.LittleEndian.Uint64(dst[i+24:])
		binary.LittleEndian.PutUint64(dst[i:], d0^binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i+8:], d1^binary.LittleEndian.Uint64(src[i+8:]))
		binary.LittleEndian.PutUint64(dst[i+16:], d2^binary.LittleEndian.Uint64(src[i+16:]))
		binary.LittleEndian.PutUint64(dst[i+24:], d3^binary.LittleEndian.Uint64(src[i+24:]))
	}
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XorSlice4 computes dst[i] ^= s1[i] ^ s2[i] ^ s3[i] ^ s4[i] in a single
// destination pass: the GF(2) analogue of MulAddSlice4, four sources per dst
// word load/store, 16 bytes per iteration. It is the inner kernel of the
// XOR-repair encoder, where a bitmask coefficient vector selects source
// blocks to fold together. The kernel runs over len(dst) bytes; all sources
// must be at least that long. Sources may not partially alias dst.
func XorSlice4(dst, s1, s2, s3, s4 []byte) {
	n := len(dst)
	s1 = s1[:n] // equal lengths: the first in-loop bounds check
	s2 = s2[:n] // proves away the rest
	s3 = s3[:n]
	s4 = s4[:n]
	i := 0
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(s1[i:]) ^
			binary.LittleEndian.Uint64(s2[i:]) ^
			binary.LittleEndian.Uint64(s3[i:]) ^
			binary.LittleEndian.Uint64(s4[i:])
		b := binary.LittleEndian.Uint64(s1[i+8:]) ^
			binary.LittleEndian.Uint64(s2[i+8:]) ^
			binary.LittleEndian.Uint64(s3[i+8:]) ^
			binary.LittleEndian.Uint64(s4[i+8:])
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^a)
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^b)
	}
	for ; i+8 <= n; i += 8 {
		a := binary.LittleEndian.Uint64(s1[i:]) ^
			binary.LittleEndian.Uint64(s2[i:]) ^
			binary.LittleEndian.Uint64(s3[i:]) ^
			binary.LittleEndian.Uint64(s4[i:])
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^a)
	}
	for ; i < n; i++ {
		dst[i] ^= s1[i] ^ s2[i] ^ s3[i] ^ s4[i]
	}
}

// MulAddSlice computes dst[i] ^= c·src[i] — the fundamental network-coding
// row operation. It dispatches on row length between the bit-sliced and
// table-row strategies.
func MulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	if len(src) >= tableRowThreshold {
		mulAddTable(dst, src, c)
		return
	}
	mulAddBitSliced(dst, src, c)
}

// MulAddSliceLoop is the always-bit-sliced variant, exported for ablation
// benchmarks and for tests that pin the strategy.
func MulAddSliceLoop(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	mulAddBitSliced(dst, src, c)
}

// MulAddSliceTable is the always-table-row variant.
func MulAddSliceTable(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	mulAddTable(dst, src, c)
}

func mulAddBitSliced(dst, src []byte, c byte) {
	n := len(src)
	dst = dst[:n] // one length for every operand: the first in-loop bounds
	i := 0        // check proves the rest away
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^mulLanes(s, c))
	}
	for ; i < n; i++ {
		dst[i] ^= mulSlow(src[i], c)
	}
}

// mulAddTable gathers 8 table products per 64-bit word: one src load, eight
// row lookups, one dst load and one dst store per 8 bytes. Compared to the
// scalar rung it eliminates seven of every eight dst read-modify-writes and
// their bounds checks.
func mulAddTable(dst, src []byte, c byte) {
	row := &_tables.mul[c]
	n := len(src)
	dst = dst[:n] // equal lengths let one bounds check dominate the loop body
	i := 0
	for ; i+16 <= n; i += 16 {
		s := binary.LittleEndian.Uint64(src[i:])
		u := binary.LittleEndian.Uint64(src[i+8:])
		v := uint64(row[byte(s)]) |
			uint64(row[byte(s>>8)])<<8 |
			uint64(row[byte(s>>16)])<<16 |
			uint64(row[byte(s>>24)])<<24 |
			uint64(row[byte(s>>32)])<<32 |
			uint64(row[byte(s>>40)])<<40 |
			uint64(row[byte(s>>48)])<<48 |
			uint64(row[byte(s>>56)])<<56
		w := uint64(row[byte(u)]) |
			uint64(row[byte(u>>8)])<<8 |
			uint64(row[byte(u>>16)])<<16 |
			uint64(row[byte(u>>24)])<<24 |
			uint64(row[byte(u>>32)])<<32 |
			uint64(row[byte(u>>40)])<<40 |
			uint64(row[byte(u>>48)])<<48 |
			uint64(row[byte(u>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^w)
	}
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		v := uint64(row[byte(s)]) |
			uint64(row[byte(s>>8)])<<8 |
			uint64(row[byte(s>>16)])<<16 |
			uint64(row[byte(s>>24)])<<24 |
			uint64(row[byte(s>>32)])<<32 |
			uint64(row[byte(s>>40)])<<40 |
			uint64(row[byte(s>>48)])<<48 |
			uint64(row[byte(s>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// mulAddTableScalar is the pre-wide-word rung — one dst read-modify-write
// per table lookup. Kept so BenchmarkMulAddLadder can measure the wide
// gather against the exact kernel it replaced.
func mulAddTableScalar(dst, src []byte, c byte) {
	row := &_tables.mul[c]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulAddSlice2 computes dst[i] ^= c1·src1[i] ^ c2·src2[i] in a single pass:
// each destination word is loaded and stored once for both sources. The
// kernel runs over len(dst) bytes; both sources must be at least that long.
// Zero coefficients degrade to the single-source kernel; coefficient 1 flows
// through the table's identity row unchanged.
func MulAddSlice2(dst, src1, src2 []byte, c1, c2 byte) {
	if c1 == 0 {
		MulAddSlice(dst, src2[:len(dst)], c2)
		return
	}
	if c2 == 0 {
		MulAddSlice(dst, src1[:len(dst)], c1)
		return
	}
	r1 := &_tables.mul[c1]
	r2 := &_tables.mul[c2]
	n := len(dst)
	src1 = src1[:n] // equal lengths: the first in-loop bounds check
	src2 = src2[:n] // proves away the rest
	i := 0
	for ; i+8 <= n; i += 8 {
		a := binary.LittleEndian.Uint64(src1[i:])
		b := binary.LittleEndian.Uint64(src2[i:])
		v := uint64(r1[byte(a)]^r2[byte(b)]) |
			uint64(r1[byte(a>>8)]^r2[byte(b>>8)])<<8 |
			uint64(r1[byte(a>>16)]^r2[byte(b>>16)])<<16 |
			uint64(r1[byte(a>>24)]^r2[byte(b>>24)])<<24 |
			uint64(r1[byte(a>>32)]^r2[byte(b>>32)])<<32 |
			uint64(r1[byte(a>>40)]^r2[byte(b>>40)])<<40 |
			uint64(r1[byte(a>>48)]^r2[byte(b>>48)])<<48 |
			uint64(r1[byte(a>>56)]^r2[byte(b>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
	}
	for ; i < n; i++ {
		dst[i] ^= r1[src1[i]] ^ r2[src2[i]]
	}
}

// MulAddSlice4 computes dst[i] ^= c1·s1[i] ^ c2·s2[i] ^ c3·s3[i] ^ c4·s4[i]
// in a single destination pass — four coefficient·source pairs per dst word
// load/store. It is the innermost kernel of the tiled batch encoder. Zero
// coefficients degrade to narrower kernels.
func MulAddSlice4(dst, s1, s2, s3, s4 []byte, c1, c2, c3, c4 byte) {
	// Compact out zero coefficients so the wide loop runs branch-free.
	if c1 == 0 || c2 == 0 || c3 == 0 || c4 == 0 {
		srcs := [4][]byte{s1, s2, s3, s4}
		cs := [4]byte{c1, c2, c3, c4}
		live := 0
		for j := 0; j < 4; j++ {
			if cs[j] != 0 {
				srcs[live], cs[live] = srcs[j], cs[j]
				live++
			}
		}
		switch live {
		case 0:
		case 1:
			MulAddSlice(dst, srcs[0][:len(dst)], cs[0])
		case 2:
			MulAddSlice2(dst, srcs[0], srcs[1], cs[0], cs[1])
		case 3:
			MulAddSlice2(dst, srcs[0], srcs[1], cs[0], cs[1])
			MulAddSlice(dst, srcs[2][:len(dst)], cs[2])
		}
		return
	}
	r1 := &_tables.mul[c1]
	r2 := &_tables.mul[c2]
	r3 := &_tables.mul[c3]
	r4 := &_tables.mul[c4]
	n := len(dst)
	s1 = s1[:n] // equal lengths: the first in-loop bounds check
	s2 = s2[:n] // proves away the rest
	s3 = s3[:n]
	s4 = s4[:n]
	i := 0
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(s1[i:])
		b := binary.LittleEndian.Uint64(s2[i:])
		c := binary.LittleEndian.Uint64(s3[i:])
		d := binary.LittleEndian.Uint64(s4[i:])
		v := uint64(r1[byte(a)]^r2[byte(b)]^r3[byte(c)]^r4[byte(d)]) |
			uint64(r1[byte(a>>8)]^r2[byte(b>>8)]^r3[byte(c>>8)]^r4[byte(d>>8)])<<8 |
			uint64(r1[byte(a>>16)]^r2[byte(b>>16)]^r3[byte(c>>16)]^r4[byte(d>>16)])<<16 |
			uint64(r1[byte(a>>24)]^r2[byte(b>>24)]^r3[byte(c>>24)]^r4[byte(d>>24)])<<24 |
			uint64(r1[byte(a>>32)]^r2[byte(b>>32)]^r3[byte(c>>32)]^r4[byte(d>>32)])<<32 |
			uint64(r1[byte(a>>40)]^r2[byte(b>>40)]^r3[byte(c>>40)]^r4[byte(d>>40)])<<40 |
			uint64(r1[byte(a>>48)]^r2[byte(b>>48)]^r3[byte(c>>48)]^r4[byte(d>>48)])<<48 |
			uint64(r1[byte(a>>56)]^r2[byte(b>>56)]^r3[byte(c>>56)]^r4[byte(d>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
		a = binary.LittleEndian.Uint64(s1[i+8:])
		b = binary.LittleEndian.Uint64(s2[i+8:])
		c = binary.LittleEndian.Uint64(s3[i+8:])
		d = binary.LittleEndian.Uint64(s4[i+8:])
		v = uint64(r1[byte(a)]^r2[byte(b)]^r3[byte(c)]^r4[byte(d)]) |
			uint64(r1[byte(a>>8)]^r2[byte(b>>8)]^r3[byte(c>>8)]^r4[byte(d>>8)])<<8 |
			uint64(r1[byte(a>>16)]^r2[byte(b>>16)]^r3[byte(c>>16)]^r4[byte(d>>16)])<<16 |
			uint64(r1[byte(a>>24)]^r2[byte(b>>24)]^r3[byte(c>>24)]^r4[byte(d>>24)])<<24 |
			uint64(r1[byte(a>>32)]^r2[byte(b>>32)]^r3[byte(c>>32)]^r4[byte(d>>32)])<<32 |
			uint64(r1[byte(a>>40)]^r2[byte(b>>40)]^r3[byte(c>>40)]^r4[byte(d>>40)])<<40 |
			uint64(r1[byte(a>>48)]^r2[byte(b>>48)]^r3[byte(c>>48)]^r4[byte(d>>48)])<<48 |
			uint64(r1[byte(a>>56)]^r2[byte(b>>56)]^r3[byte(c>>56)]^r4[byte(d>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^v)
	}
	for ; i+8 <= n; i += 8 {
		a := binary.LittleEndian.Uint64(s1[i:])
		b := binary.LittleEndian.Uint64(s2[i:])
		c := binary.LittleEndian.Uint64(s3[i:])
		d := binary.LittleEndian.Uint64(s4[i:])
		v := uint64(r1[byte(a)]^r2[byte(b)]^r3[byte(c)]^r4[byte(d)]) |
			uint64(r1[byte(a>>8)]^r2[byte(b>>8)]^r3[byte(c>>8)]^r4[byte(d>>8)])<<8 |
			uint64(r1[byte(a>>16)]^r2[byte(b>>16)]^r3[byte(c>>16)]^r4[byte(d>>16)])<<16 |
			uint64(r1[byte(a>>24)]^r2[byte(b>>24)]^r3[byte(c>>24)]^r4[byte(d>>24)])<<24 |
			uint64(r1[byte(a>>32)]^r2[byte(b>>32)]^r3[byte(c>>32)]^r4[byte(d>>32)])<<32 |
			uint64(r1[byte(a>>40)]^r2[byte(b>>40)]^r3[byte(c>>40)]^r4[byte(d>>40)])<<40 |
			uint64(r1[byte(a>>48)]^r2[byte(b>>48)]^r3[byte(c>>48)]^r4[byte(d>>48)])<<48 |
			uint64(r1[byte(a>>56)]^r2[byte(b>>56)]^r3[byte(c>>56)]^r4[byte(d>>56)])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^v)
	}
	for ; i < n; i++ {
		dst[i] ^= r1[s1[i]] ^ r2[s2[i]] ^ r3[s3[i]] ^ r4[s4[i]]
	}
}

// MulAddSlice1x2 applies one source to two destinations at once:
//
//	d1[i] ^= c1·src[i]
//	d2[i] ^= c2·src[i]
//
// Each source word is loaded and byte-extracted once for both destinations —
// the shape of Gauss–Jordan elimination, where one pivot row is eliminated
// out of many rows with per-row factors. Both destinations must be the same
// length; src must be at least that long. A zero coefficient drops to the
// single-destination kernel.
func MulAddSlice1x2(d1, d2, src []byte, c1, c2 byte) {
	if c1 == 0 {
		MulAddSlice(d2, src[:len(d2)], c2)
		return
	}
	if c2 == 0 {
		MulAddSlice(d1, src[:len(d1)], c1)
		return
	}
	r1 := &_tables.mul[c1]
	r2 := &_tables.mul[c2]
	n := len(d1)
	d2 = d2[:n]   // equal lengths: the first in-loop bounds check
	src = src[:n] // proves away the rest
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		x := byte(s)
		v := uint64(r1[x])
		u := uint64(r2[x])
		x = byte(s >> 8)
		v |= uint64(r1[x]) << 8
		u |= uint64(r2[x]) << 8
		x = byte(s >> 16)
		v |= uint64(r1[x]) << 16
		u |= uint64(r2[x]) << 16
		x = byte(s >> 24)
		v |= uint64(r1[x]) << 24
		u |= uint64(r2[x]) << 24
		x = byte(s >> 32)
		v |= uint64(r1[x]) << 32
		u |= uint64(r2[x]) << 32
		x = byte(s >> 40)
		v |= uint64(r1[x]) << 40
		u |= uint64(r2[x]) << 40
		x = byte(s >> 48)
		v |= uint64(r1[x]) << 48
		u |= uint64(r2[x]) << 48
		x = byte(s >> 56)
		v |= uint64(r1[x]) << 56
		u |= uint64(r2[x]) << 56
		binary.LittleEndian.PutUint64(d1[i:], binary.LittleEndian.Uint64(d1[i:])^v)
		binary.LittleEndian.PutUint64(d2[i:], binary.LittleEndian.Uint64(d2[i:])^u)
	}
	for ; i < n; i++ {
		x := src[i]
		d1[i] ^= r1[x]
		d2[i] ^= r2[x]
	}
}

// MulAddSlice4x2 applies the same four sources to two destinations at once:
//
//	d1[i] ^= ca[0]·s1[i] ^ ca[1]·s2[i] ^ ca[2]·s3[i] ^ ca[3]·s4[i]
//	d2[i] ^= cb[0]·s1[i] ^ cb[1]·s2[i] ^ cb[2]·s3[i] ^ cb[3]·s4[i]
//
// This is the widest rung of the ladder: the four source words and the 32
// extracted source bytes are loaded and shifted once, then feed both
// destinations' table lookups — the per-byte extraction cost is halved
// relative to two MulAddSlice4 passes. Both destinations must be the same
// length; sources must be at least that long. Any zero coefficient drops to
// the narrower kernels, which compact zeros out.
func MulAddSlice4x2(d1, d2, s1, s2, s3, s4 []byte, ca, cb [4]byte) {
	if ca[0] == 0 || ca[1] == 0 || ca[2] == 0 || ca[3] == 0 ||
		cb[0] == 0 || cb[1] == 0 || cb[2] == 0 || cb[3] == 0 {
		MulAddSlice4(d1, s1, s2, s3, s4, ca[0], ca[1], ca[2], ca[3])
		MulAddSlice4(d2, s1, s2, s3, s4, cb[0], cb[1], cb[2], cb[3])
		return
	}
	ra1 := &_tables.mul[ca[0]]
	ra2 := &_tables.mul[ca[1]]
	ra3 := &_tables.mul[ca[2]]
	ra4 := &_tables.mul[ca[3]]
	rb1 := &_tables.mul[cb[0]]
	rb2 := &_tables.mul[cb[1]]
	rb3 := &_tables.mul[cb[2]]
	rb4 := &_tables.mul[cb[3]]
	n := len(d1)
	d2 = d2[:n] // equal lengths: the first in-loop bounds check
	s1 = s1[:n] // proves away the rest
	s2 = s2[:n]
	s3 = s3[:n]
	s4 = s4[:n]
	i := 0
	// Two destination words per iteration: the second word's gathers are
	// independent of the first's accumulation chain, so the out-of-order core
	// overlaps their table lookups instead of serializing on v/u.
	for ; i+16 <= n; i += 16 {
		a := binary.LittleEndian.Uint64(s1[i:])
		b := binary.LittleEndian.Uint64(s2[i:])
		c := binary.LittleEndian.Uint64(s3[i:])
		d := binary.LittleEndian.Uint64(s4[i:])
		a2 := binary.LittleEndian.Uint64(s1[i+8:])
		b2 := binary.LittleEndian.Uint64(s2[i+8:])
		c2 := binary.LittleEndian.Uint64(s3[i+8:])
		d2w := binary.LittleEndian.Uint64(s4[i+8:])
		x, y, z, w := byte(a), byte(b), byte(c), byte(d)
		v := uint64(ra1[x] ^ ra2[y] ^ ra3[z] ^ ra4[w])
		u := uint64(rb1[x] ^ rb2[y] ^ rb3[z] ^ rb4[w])
		x, y, z, w = byte(a2), byte(b2), byte(c2), byte(d2w)
		v2 := uint64(ra1[x] ^ ra2[y] ^ ra3[z] ^ ra4[w])
		u2 := uint64(rb1[x] ^ rb2[y] ^ rb3[z] ^ rb4[w])
		x, y, z, w = byte(a>>8), byte(b>>8), byte(c>>8), byte(d>>8)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 8
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 8
		x, y, z, w = byte(a2>>8), byte(b2>>8), byte(c2>>8), byte(d2w>>8)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 8
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 8
		x, y, z, w = byte(a>>16), byte(b>>16), byte(c>>16), byte(d>>16)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 16
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 16
		x, y, z, w = byte(a2>>16), byte(b2>>16), byte(c2>>16), byte(d2w>>16)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 16
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 16
		x, y, z, w = byte(a>>24), byte(b>>24), byte(c>>24), byte(d>>24)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 24
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 24
		x, y, z, w = byte(a2>>24), byte(b2>>24), byte(c2>>24), byte(d2w>>24)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 24
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 24
		x, y, z, w = byte(a>>32), byte(b>>32), byte(c>>32), byte(d>>32)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 32
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 32
		x, y, z, w = byte(a2>>32), byte(b2>>32), byte(c2>>32), byte(d2w>>32)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 32
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 32
		x, y, z, w = byte(a>>40), byte(b>>40), byte(c>>40), byte(d>>40)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 40
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 40
		x, y, z, w = byte(a2>>40), byte(b2>>40), byte(c2>>40), byte(d2w>>40)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 40
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 40
		x, y, z, w = byte(a>>48), byte(b>>48), byte(c>>48), byte(d>>48)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 48
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 48
		x, y, z, w = byte(a2>>48), byte(b2>>48), byte(c2>>48), byte(d2w>>48)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 48
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 48
		x, y, z, w = byte(a>>56), byte(b>>56), byte(c>>56), byte(d>>56)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 56
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 56
		x, y, z, w = byte(a2>>56), byte(b2>>56), byte(c2>>56), byte(d2w>>56)
		v2 |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 56
		u2 |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 56
		binary.LittleEndian.PutUint64(d1[i:], binary.LittleEndian.Uint64(d1[i:])^v)
		binary.LittleEndian.PutUint64(d2[i:], binary.LittleEndian.Uint64(d2[i:])^u)
		binary.LittleEndian.PutUint64(d1[i+8:], binary.LittleEndian.Uint64(d1[i+8:])^v2)
		binary.LittleEndian.PutUint64(d2[i+8:], binary.LittleEndian.Uint64(d2[i+8:])^u2)
	}
	for ; i+8 <= n; i += 8 {
		a := binary.LittleEndian.Uint64(s1[i:])
		b := binary.LittleEndian.Uint64(s2[i:])
		c := binary.LittleEndian.Uint64(s3[i:])
		d := binary.LittleEndian.Uint64(s4[i:])
		x, y, z, w := byte(a), byte(b), byte(c), byte(d)
		v := uint64(ra1[x] ^ ra2[y] ^ ra3[z] ^ ra4[w])
		u := uint64(rb1[x] ^ rb2[y] ^ rb3[z] ^ rb4[w])
		x, y, z, w = byte(a>>8), byte(b>>8), byte(c>>8), byte(d>>8)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 8
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 8
		x, y, z, w = byte(a>>16), byte(b>>16), byte(c>>16), byte(d>>16)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 16
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 16
		x, y, z, w = byte(a>>24), byte(b>>24), byte(c>>24), byte(d>>24)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 24
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 24
		x, y, z, w = byte(a>>32), byte(b>>32), byte(c>>32), byte(d>>32)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 32
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 32
		x, y, z, w = byte(a>>40), byte(b>>40), byte(c>>40), byte(d>>40)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 40
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 40
		x, y, z, w = byte(a>>48), byte(b>>48), byte(c>>48), byte(d>>48)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 48
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 48
		x, y, z, w = byte(a>>56), byte(b>>56), byte(c>>56), byte(d>>56)
		v |= uint64(ra1[x]^ra2[y]^ra3[z]^ra4[w]) << 56
		u |= uint64(rb1[x]^rb2[y]^rb3[z]^rb4[w]) << 56
		binary.LittleEndian.PutUint64(d1[i:], binary.LittleEndian.Uint64(d1[i:])^v)
		binary.LittleEndian.PutUint64(d2[i:], binary.LittleEndian.Uint64(d2[i:])^u)
	}
	for ; i < n; i++ {
		x, y, z, w := s1[i], s2[i], s3[i], s4[i]
		d1[i] ^= ra1[x] ^ ra2[y] ^ ra3[z] ^ ra4[w]
		d2[i] ^= rb1[x] ^ rb2[y] ^ rb3[z] ^ rb4[w]
	}
}

// MulSlice computes dst[i] = c·src[i] (no accumulation).
func MulSlice(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &_tables.mul[c]
	for i, v := range src {
		dst[i] = row[v]
	}
}

// ScaleSlice computes dst[i] = c·dst[i] in place.
func ScaleSlice(dst []byte, c byte) {
	MulSlice(dst, dst, c)
}

// DotProduct returns the GF(2^8) inner product of coefficient vector coeffs
// with the byte columns of rows: out[j] = Σ_i coeffs[i]·rows[i][j].
// All rows must be at least len(out) long. out is overwritten. Rows are
// consumed four at a time through the fused kernel so each out word is
// loaded/stored once per quadruple instead of once per row.
func DotProduct(out []byte, coeffs []byte, rows [][]byte) {
	clear(out)
	w := len(out)
	i := 0
	for ; i+4 <= len(coeffs); i += 4 {
		c1, c2, c3, c4 := coeffs[i], coeffs[i+1], coeffs[i+2], coeffs[i+3]
		if c1|c2|c3|c4 == 0 {
			continue
		}
		MulAddSlice4(out, rows[i][:w], rows[i+1][:w], rows[i+2][:w], rows[i+3][:w], c1, c2, c3, c4)
	}
	if i+2 <= len(coeffs) {
		MulAddSlice2(out, rows[i][:w], rows[i+1][:w], coeffs[i], coeffs[i+1])
		i += 2
	}
	for ; i < len(coeffs); i++ {
		if c := coeffs[i]; c != 0 {
			MulAddSlice(out, rows[i][:w], c)
		}
	}
}
