package gf256

import "encoding/binary"

// Bulk row operations. These are the host codec's hot path: every encode,
// recode and Gauss–Jordan row operation reduces to dst ⊕= c·src over k-byte
// rows. Two strategies are provided, mirroring the paper's CPU discussion:
//
//   - a loop-based, bit-sliced form that processes 8 byte-lanes per uint64
//     (the SSE2/AltiVec analogue from the authors' IWQoS'07 work), and
//   - a table-row form that indexes the 256-entry product row of the
//     coefficient (the classic log/exp-style lookup, one load per byte).
//
// MulAddSlice picks between them by row length; the ablation benchmarks
// exercise each directly.

const (
	loMask  = 0x7f7f7f7f7f7f7f7f
	hiMask  = 0x8080808080808080
	polyRed = 0x1b // Poly's low byte, the per-lane reduction constant

	// tableRowThreshold is the row length above which building/loading the
	// 256-entry product row beats bit-sliced math. Determined empirically
	// with BenchmarkMulAddStrategies.
	tableRowThreshold = 64
)

// xtimes8 multiplies each of the 8 byte-lanes of v by x (i.e. by 0x02) in
// Rijndael's field.
func xtimes8(v uint64) uint64 {
	hi := v & hiMask
	return ((v &^ hiMask) << 1) ^ ((hi >> 7) * polyRed)
}

// mulLanes multiplies each byte-lane of v by the scalar coefficient c using
// the loop-based algorithm: at most 8 shift/test/xor iterations.
func mulLanes(v uint64, c byte) uint64 {
	var acc uint64
	for c != 0 {
		if c&1 != 0 {
			acc ^= v
		}
		c >>= 1
		v = xtimes8(v)
	}
	return acc
}

// AddSlice computes dst[i] ^= src[i] for every i. len(src) must not exceed
// len(dst). Rows may not partially alias (identical slices are fine and
// zero the row).
func AddSlice(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// MulAddSlice computes dst[i] ^= c·src[i] — the fundamental network-coding
// row operation. It dispatches on row length between the bit-sliced and
// table-row strategies.
func MulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	if len(src) >= tableRowThreshold {
		mulAddTable(dst, src, c)
		return
	}
	mulAddBitSliced(dst, src, c)
}

// MulAddSliceLoop is the always-bit-sliced variant, exported for ablation
// benchmarks and for tests that pin the strategy.
func MulAddSliceLoop(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	mulAddBitSliced(dst, src, c)
}

// MulAddSliceTable is the always-table-row variant.
func MulAddSliceTable(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	mulAddTable(dst, src, c)
}

func mulAddBitSliced(dst, src []byte, c byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		d := binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^mulLanes(s, c))
	}
	for ; i < n; i++ {
		dst[i] ^= mulSlow(src[i], c)
	}
}

func mulAddTable(dst, src []byte, c byte) {
	row := &_tables.mul[c]
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// MulSlice computes dst[i] = c·src[i] (no accumulation).
func MulSlice(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst[:len(src)])
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &_tables.mul[c]
	for i, v := range src {
		dst[i] = row[v]
	}
}

// ScaleSlice computes dst[i] = c·dst[i] in place.
func ScaleSlice(dst []byte, c byte) {
	MulSlice(dst, dst, c)
}

// DotProduct returns the GF(2^8) inner product of coefficient vector coeffs
// with the byte columns of rows: out[j] = Σ_i coeffs[i]·rows[i][j].
// All rows must be at least len(out) long. out is overwritten.
func DotProduct(out []byte, coeffs []byte, rows [][]byte) {
	clear(out)
	for i, c := range coeffs {
		if c == 0 {
			continue
		}
		MulAddSlice(out, rows[i][:len(out)], c)
	}
}
