package gf256

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential coverage for the wide-word kernels: every new path is pinned
// against the mulSlow reference over lengths 0–257 so both the 8-byte main
// loops and every odd tail shape are exercised.

func TestMulAddTableWideMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	coeffs := []byte{2, 3, 0x53, 0x80, 0xA7, 0xFF}
	for n := 0; n <= 257; n++ {
		src := randomBytes(rng, n)
		base := randomBytes(rng, n)
		for _, c := range coeffs {
			want := append([]byte(nil), base...)
			for i := range want {
				want[i] ^= mulSlow(src[i], c)
			}
			got := append([]byte(nil), base...)
			mulAddTable(got, src, c)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mulAddTable len %d c %#x mismatch at %d: got %#x want %#x",
						n, c, i, got[i], want[i])
				}
			}
			// The scalar rung must stay equivalent (it anchors the ladder).
			scalar := append([]byte(nil), base...)
			mulAddTableScalar(scalar, src, c)
			for i := range want {
				if scalar[i] != want[i] {
					t.Fatalf("mulAddTableScalar len %d c %#x mismatch at %d", n, c, i)
				}
			}
		}
	}
}

func TestMulAddSlice2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	coeffPairs := [][2]byte{{2, 3}, {0, 0x57}, {0x57, 0}, {1, 0xFF}, {0xA7, 0x1D}, {0, 0}}
	for n := 0; n <= 257; n++ {
		s1 := randomBytes(rng, n)
		s2 := randomBytes(rng, n)
		base := randomBytes(rng, n)
		for _, cp := range coeffPairs {
			c1, c2 := cp[0], cp[1]
			want := append([]byte(nil), base...)
			for i := range want {
				want[i] ^= mulSlow(s1[i], c1) ^ mulSlow(s2[i], c2)
			}
			got := append([]byte(nil), base...)
			MulAddSlice2(got, s1, s2, c1, c2)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("MulAddSlice2 len %d c=(%#x,%#x) mismatch at %d: got %#x want %#x",
						n, c1, c2, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulAddSlice4MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	coeffSets := [][4]byte{
		{2, 3, 4, 5},
		{0, 1, 0xFF, 0x80},
		{0x57, 0, 0, 0x13},
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{0xA7, 0x1D, 0x53, 0xCA},
		{0, 0, 0, 0x29},
	}
	for n := 0; n <= 257; n++ {
		s1 := randomBytes(rng, n)
		s2 := randomBytes(rng, n)
		s3 := randomBytes(rng, n)
		s4 := randomBytes(rng, n)
		base := randomBytes(rng, n)
		for _, cs := range coeffSets {
			want := append([]byte(nil), base...)
			for i := range want {
				want[i] ^= mulSlow(s1[i], cs[0]) ^ mulSlow(s2[i], cs[1]) ^
					mulSlow(s3[i], cs[2]) ^ mulSlow(s4[i], cs[3])
			}
			got := append([]byte(nil), base...)
			MulAddSlice4(got, s1, s2, s3, s4, cs[0], cs[1], cs[2], cs[3])
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("MulAddSlice4 len %d cs=%v mismatch at %d: got %#x want %#x",
						n, cs, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulAddSlice1x2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	coeffPairs := [][2]byte{{2, 3}, {0, 0x57}, {0x57, 0}, {1, 0xFF}, {0xA7, 0x1D}, {0, 0}, {1, 1}}
	for n := 0; n <= 257; n++ {
		src := randomBytes(rng, n)
		base1 := randomBytes(rng, n)
		base2 := randomBytes(rng, n)
		for _, cp := range coeffPairs {
			c1, c2 := cp[0], cp[1]
			want1 := append([]byte(nil), base1...)
			want2 := append([]byte(nil), base2...)
			for i := range want1 {
				want1[i] ^= mulSlow(src[i], c1)
				want2[i] ^= mulSlow(src[i], c2)
			}
			got1 := append([]byte(nil), base1...)
			got2 := append([]byte(nil), base2...)
			MulAddSlice1x2(got1, got2, src, c1, c2)
			for i := range want1 {
				if got1[i] != want1[i] {
					t.Fatalf("MulAddSlice1x2 len %d c=(%#x,%#x) d1 mismatch at %d: got %#x want %#x",
						n, c1, c2, i, got1[i], want1[i])
				}
				if got2[i] != want2[i] {
					t.Fatalf("MulAddSlice1x2 len %d c=(%#x,%#x) d2 mismatch at %d: got %#x want %#x",
						n, c1, c2, i, got2[i], want2[i])
				}
			}
		}
	}
}

func TestMulAddSlice4x2MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	coeffSets := [][2][4]byte{
		{{2, 3, 4, 5}, {6, 7, 8, 9}},
		{{0xA7, 0x1D, 0x53, 0xCA}, {0x29, 0x77, 0xFE, 0x02}},
		{{1, 1, 1, 1}, {0xFF, 0x80, 0x40, 0x20}},
		{{0, 3, 4, 5}, {6, 7, 8, 9}}, // zero in first set → fallback path
		{{2, 3, 4, 5}, {6, 0, 8, 9}}, // zero in second set
		{{0, 0, 0, 0}, {0, 0, 0, 0}}, // fully zero
		{{1, 0, 0xFF, 0}, {0, 0x57, 0, 1}},
	}
	for n := 0; n <= 257; n++ {
		s1 := randomBytes(rng, n)
		s2 := randomBytes(rng, n)
		s3 := randomBytes(rng, n)
		s4 := randomBytes(rng, n)
		base1 := randomBytes(rng, n)
		base2 := randomBytes(rng, n)
		for _, cs := range coeffSets {
			ca, cb := cs[0], cs[1]
			want1 := append([]byte(nil), base1...)
			want2 := append([]byte(nil), base2...)
			for i := range want1 {
				want1[i] ^= mulSlow(s1[i], ca[0]) ^ mulSlow(s2[i], ca[1]) ^
					mulSlow(s3[i], ca[2]) ^ mulSlow(s4[i], ca[3])
				want2[i] ^= mulSlow(s1[i], cb[0]) ^ mulSlow(s2[i], cb[1]) ^
					mulSlow(s3[i], cb[2]) ^ mulSlow(s4[i], cb[3])
			}
			got1 := append([]byte(nil), base1...)
			got2 := append([]byte(nil), base2...)
			MulAddSlice4x2(got1, got2, s1, s2, s3, s4, ca, cb)
			for i := range want1 {
				if got1[i] != want1[i] {
					t.Fatalf("MulAddSlice4x2 len %d ca=%v d1 mismatch at %d: got %#x want %#x",
						n, ca, i, got1[i], want1[i])
				}
				if got2[i] != want2[i] {
					t.Fatalf("MulAddSlice4x2 len %d cb=%v d2 mismatch at %d: got %#x want %#x",
						n, cb, i, got2[i], want2[i])
				}
			}
		}
	}
}

// TestMulAddAliasedDst pins the dst==src aliasing contract: c·x ^ x is the
// per-byte result (x + c·x = (c+1)·x in the field).
func TestMulAddAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 129, 257} {
		for _, c := range []byte{0, 1, 2, 0xA7, 0xFF} {
			orig := randomBytes(rng, n)
			want := make([]byte, n)
			for i := range want {
				want[i] = orig[i] ^ mulSlow(orig[i], c)
			}
			got := append([]byte(nil), orig...)
			MulAddSlice(got, got, c)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("aliased MulAddSlice len %d c %#x mismatch at %d", n, c, i)
				}
			}
		}
		// Fused kernels with every source aliased to dst:
		// dst ^= (c1+c2+c3+c4)·dst.
		orig := randomBytes(rng, n)
		c1, c2, c3, c4 := byte(2), byte(3), byte(0x10), byte(0x80)
		want := make([]byte, n)
		for i := range want {
			want[i] = orig[i] ^ mulSlow(orig[i], c1^c2^c3^c4)
		}
		got := append([]byte(nil), orig...)
		MulAddSlice4(got, got, got, got, got, c1, c2, c3, c4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("aliased MulAddSlice4 len %d mismatch at %d", n, i)
			}
		}
	}
}

func TestAddSliceOddTails(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for n := 0; n <= 257; n++ {
		a := randomBytes(rng, n)
		b := randomBytes(rng, n)
		got := append([]byte(nil), a...)
		AddSlice(got, b)
		for i := range got {
			if got[i] != a[i]^b[i] {
				t.Fatalf("AddSlice len %d mismatch at %d", n, i)
			}
		}
		// Self-add must zero the row.
		self := append([]byte(nil), a...)
		AddSlice(self, self)
		for i := range self {
			if self[i] != 0 {
				t.Fatalf("AddSlice self len %d not zero at %d", n, i)
			}
		}
	}
}

func TestDotProductFusedTails(t *testing.T) {
	// Row counts around the 4/2/1 grouping boundaries, including zero
	// coefficients that must be skipped.
	rng := rand.New(rand.NewSource(15))
	const k = 131
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17} {
		rows := make([][]byte, n)
		for i := range rows {
			rows[i] = randomBytes(rng, k)
		}
		coeffs := randomBytes(rng, n)
		if n > 2 {
			coeffs[1] = 0 // force a zero inside a fused group
		}
		out := make([]byte, k)
		DotProduct(out, coeffs, rows)
		for j := 0; j < k; j++ {
			var want byte
			for i := 0; i < n; i++ {
				want ^= mulSlow(coeffs[i], rows[i][j])
			}
			if out[j] != want {
				t.Fatalf("DotProduct n=%d col %d: got %#x want %#x", n, j, out[j], want)
			}
		}
	}
}

// BenchmarkMulAddLadder measures every rung of the host kernel ladder at the
// paper's reference block size (k=4096) and around the dispatch threshold.
// Fused rungs report throughput in source bytes processed per second, so the
// MB/s column is directly comparable across rungs.
func BenchmarkMulAddLadder(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	for _, k := range []int{16, 64, 1024, 4096} {
		s1 := randomBytes(rng, k)
		s2 := randomBytes(rng, k)
		s3 := randomBytes(rng, k)
		s4 := randomBytes(rng, k)
		dst := randomBytes(rng, k)
		b.Run(fmt.Sprintf("bitsliced/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				mulAddBitSliced(dst, s1, 0xA7)
			}
		})
		b.Run(fmt.Sprintf("table-scalar/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				mulAddTableScalar(dst, s1, 0xA7)
			}
		})
		b.Run(fmt.Sprintf("table-wide/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				mulAddTable(dst, s1, 0xA7)
			}
		})
		dst1x2 := randomBytes(rng, k)
		b.Run(fmt.Sprintf("fused1x2/k=%d", k), func(b *testing.B) {
			// Two source·destination lanes per call (one source row feeding
			// two rows under elimination — the Gauss–Jordan shape).
			b.SetBytes(int64(2 * k))
			for i := 0; i < b.N; i++ {
				MulAddSlice1x2(dst, dst1x2, s1, 0xA7, 0x1D)
			}
		})
		b.Run(fmt.Sprintf("fused2/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(2 * k))
			for i := 0; i < b.N; i++ {
				MulAddSlice2(dst, s1, s2, 0xA7, 0x1D)
			}
		})
		b.Run(fmt.Sprintf("fused4/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(4 * k))
			for i := 0; i < b.N; i++ {
				MulAddSlice4(dst, s1, s2, s3, s4, 0xA7, 0x1D, 0x53, 0xCA)
			}
		})
		dst2 := randomBytes(rng, k)
		b.Run(fmt.Sprintf("fused4x2/k=%d", k), func(b *testing.B) {
			// Eight source·destination lanes per call.
			b.SetBytes(int64(8 * k))
			for i := 0; i < b.N; i++ {
				MulAddSlice4x2(dst, dst2, s1, s2, s3, s4,
					[4]byte{0xA7, 0x1D, 0x53, 0xCA}, [4]byte{0x29, 0x77, 0xFE, 0x02})
			}
		})
	}
}
