// Package gf256 implements arithmetic over the finite field GF(2^8) used by
// random linear network coding.
//
// The field is Rijndael's: polynomial x^8 + x^4 + x^3 + x + 1 (0x11B) with
// generator 0x03. The package provides every multiplication strategy the
// paper evaluates — classic log/exp table lookups, the loop-based ("hand
// multiplication") form that vectorizes well, the preprocessed log-domain
// form used by the GPU table-based encoder, and the zero-remapped tables
// that enable branch-free (predicated) zero handling — plus high-throughput
// bulk row operations used by the host codec.
//
// Addition in GF(2^8) is XOR; subtraction is identical to addition.
package gf256

// Poly is the Rijndael reduction polynomial x^8+x^4+x^3+x+1.
const Poly = 0x11B

// Generator is a primitive element of the field under Poly.
const Generator = 0x03

// LogZero is the sentinel stored in the classic log table for the input 0,
// which has no logarithm. It matches the paper's 0xFF convention.
const LogZero = 0xFF

// tables bundles every lookup table derived from (Poly, Generator).
type tables struct {
	exp [512]byte // exp[i] = Generator^i for i in [0,255); doubled so exp[logX+logY] needs no mod
	log [256]byte // log[x] for x != 0; log[0] = LogZero

	// Zero-remapped tables (paper Sec. 5.1.3, "Table-based-3"): logR[0] = 0
	// and logR[x] = log[x]+1 otherwise, so a zero operand is detected by a
	// test against zero (free on a register load with predication). expR is
	// shifted to compensate: expR[i] = exp[i-2].
	logR [256]uint16
	expR [1024]byte

	// mul is the full 64 KiB product table, the fastest scalar path and the
	// source of per-coefficient row tables for bulk operations.
	mul [256][256]byte

	inv [256]byte // multiplicative inverses; inv[0] = 0 by convention
}

var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.exp[i+255] = x
		t.log[x] = byte(i)
		x = mulSlow(x, Generator)
	}
	// Positions 510 and 511 are never produced by logX+logY (max 254+254)
	// but keep the table total and deterministic.
	t.exp[510] = t.exp[0]
	t.exp[511] = t.exp[1]
	t.log[0] = LogZero

	for v := 0; v < 256; v++ {
		if v == 0 {
			t.logR[v] = 0
		} else {
			t.logR[v] = uint16(t.log[v]) + 1
		}
	}
	for i := 2; i < len(t.expR); i++ {
		t.expR[i] = t.exp[(i-2)%255]
	}

	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			t.mul[a][b] = mulSlow(byte(a), byte(b))
		}
	}
	for a := 1; a < 256; a++ {
		t.inv[a] = t.exp[255-int(t.log[a])]
	}
	return t
}

// mulSlow is the reference carry-less multiply with reduction by Poly. It is
// used only to build tables and as the oracle in tests.
func mulSlow(a, b byte) byte {
	var p uint16
	aa, bb := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= aa
		}
		bb >>= 1
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
	}
	return byte(p)
}

// Add returns a + b in GF(2^8). Subtraction is the same operation.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b using the classic three-lookup log/exp method (paper
// Fig. 1). This is the baseline table-based multiplication.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+int(_tables.log[b])]
}

// MulTable returns a·b via the full 64 KiB product table — the fastest
// scalar path on hosts with large caches.
func MulTable(a, b byte) byte { return _tables.mul[a][b] }

// MulLoop returns a·b using the loop-based "hand multiplication" in
// Rijndael's field (paper Sec. 4.1 / Fig. 3 of the Nuclei paper). It is the
// form that maps onto SIMD lanes and GPU words.
func MulLoop(a, b byte) byte { return mulSlow(a, b) }

// LoopIterations reports how many iterations the loop-based multiplication
// executes for coefficient c: the bit length of c (zero needs none). The GPU
// cost model charges cycles from this data-dependent count; it averages ≈7
// over uniformly random bytes, matching the paper.
func LoopIterations(c byte) int {
	n := 0
	for c != 0 {
		n++
		c >>= 1
	}
	return n
}

// Log returns the discrete logarithm of x base Generator, with ok=false for
// x = 0 (whose table entry is the LogZero sentinel).
func Log(x byte) (l byte, ok bool) {
	if x == 0 {
		return LogZero, false
	}
	return _tables.log[x], true
}

// Exp returns Generator^i for any non-negative i.
func Exp(i int) byte { return _tables.exp[i%255] }

// Inv returns the multiplicative inverse of a. Inv(0) returns 0; callers
// must not rely on it as an inverse.
func Inv(a byte) byte { return _tables.inv[a] }

// Div returns a/b. Division by zero returns 0; callers validate b upstream
// (the decoder only divides by pivots it has verified to be non-zero).
func Div(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+255-int(_tables.log[b])]
}

// ToLog transforms src into the logarithmic domain in dst using the LogZero
// sentinel for zeros (paper Sec. 5.1.2, preprocessing step 1/2). dst and src
// must have the same length and may alias.
func ToLog(dst, src []byte) {
	lt := &_tables.log
	for i, v := range src {
		dst[i] = lt[v]
	}
}

// FromLog maps a log-domain byte back to its field value (sentinel → 0).
func FromLog(l byte) byte {
	if l == LogZero {
		return 0
	}
	return _tables.exp[l]
}

// MulPre multiplies two operands that are already in the logarithmic domain
// (paper Fig. 5). Zero operands are detected via the LogZero sentinel.
func MulPre(logX, logY byte) byte {
	if logX == LogZero || logY == LogZero {
		return 0
	}
	return _tables.exp[int(logX)+int(logY)]
}

// ToLogRemapped transforms src into the zero-remapped log domain used by the
// Table-based-3 scheme: zero maps to 0 so the zero test folds into a
// predicated register load. Values are uint16 because logs are shifted by 1.
func ToLogRemapped(dst []uint16, src []byte) {
	lt := &_tables.logR
	for i, v := range src {
		dst[i] = lt[v]
	}
}

// MulPreRemapped multiplies two zero-remapped log-domain operands.
func MulPreRemapped(logX, logY uint16) byte {
	if logX == 0 || logY == 0 {
		return 0
	}
	return _tables.expR[int(logX)+int(logY)]
}

// ExpRemapped exposes the shifted exponential table entry used by the GPU
// kernels that model texture and replicated-table accesses.
func ExpRemapped(idx int) byte { return _tables.expR[idx] }

// MulRow returns the 256-entry product row for coefficient c, i.e.
// MulRow(c)[x] == c·x. The returned slice aliases internal storage and must
// not be modified.
func MulRow(c byte) *[256]byte { return &_tables.mul[c] }
