package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if got := Add(0x57, 0x83); got != 0x57^0x83 {
		t.Fatalf("Add(0x57,0x83) = %#x, want %#x", got, 0x57^0x83)
	}
}

// TestKnownProducts pins Rijndael-field products from the AES literature.
func TestKnownProducts(t *testing.T) {
	cases := []struct {
		a, b, want byte
	}{
		{0x57, 0x83, 0xC1},
		{0x57, 0x13, 0xFE},
		{0x02, 0x80, 0x1B},
		{0x03, 0x01, 0x03},
		{0x00, 0xFF, 0x00},
		{0xFF, 0x00, 0x00},
		{0x01, 0xAB, 0xAB},
		{0x53, 0xCA, 0x01}, // 0x53 and 0xCA are inverses in 0x11B
	}
	for _, tc := range cases {
		if got := Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestMulVariantsAgreeExhaustive checks all 65536 products across every
// multiplication strategy.
func TestMulVariantsAgreeExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x, y := byte(a), byte(b)
			want := mulSlow(x, y)
			if got := Mul(x, y); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", x, y, got, want)
			}
			if got := MulTable(x, y); got != want {
				t.Fatalf("MulTable(%#x,%#x) = %#x, want %#x", x, y, got, want)
			}
			if got := MulLoop(x, y); got != want {
				t.Fatalf("MulLoop(%#x,%#x) = %#x, want %#x", x, y, got, want)
			}
			lx, ly := _tables.log[x], _tables.log[y]
			if x == 0 {
				lx = LogZero
			}
			if y == 0 {
				ly = LogZero
			}
			if got := MulPre(lx, ly); got != want {
				t.Fatalf("MulPre(log %#x, log %#x) = %#x, want %#x", x, y, got, want)
			}
			if got := MulPreRemapped(_tables.logR[x], _tables.logR[y]); got != want {
				t.Fatalf("MulPreRemapped(%#x,%#x) = %#x, want %#x", x, y, got, want)
			}
		}
	}
}

func TestMulLanesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		v := rng.Uint64()
		c := byte(rng.Intn(256))
		got := mulLanes(v, c)
		for lane := 0; lane < 8; lane++ {
			b := byte(v >> (8 * lane))
			want := mulSlow(b, c)
			if byte(got>>(8*lane)) != want {
				t.Fatalf("mulLanes lane %d: %#x·%#x = %#x, want %#x",
					lane, b, c, byte(got>>(8*lane)), want)
			}
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 3000}
	t.Run("commutativity", func(t *testing.T) {
		f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("associativity", func(t *testing.T) {
		f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributivity", func(t *testing.T) {
		f := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("identity", func(t *testing.T) {
		f := func(a byte) bool { return Mul(a, 1) == a && Add(a, 0) == a }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("additive inverse", func(t *testing.T) {
		f := func(a byte) bool { return Add(a, a) == 0 }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("multiplicative inverse", func(t *testing.T) {
		f := func(a byte) bool {
			if a == 0 {
				return Inv(0) == 0
			}
			return Mul(a, Inv(a)) == 1
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("division round trip", func(t *testing.T) {
		f := func(a, b byte) bool {
			if b == 0 {
				return true
			}
			return Mul(Div(a, b), b) == a
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestGeneratorIsPrimitive(t *testing.T) {
	seen := make(map[byte]bool, 255)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator %#x cycles after %d steps", byte(Generator), i)
		}
		seen[x] = true
		x = mulSlow(x, Generator)
	}
	if x != 1 {
		t.Fatalf("generator order is not 255 (g^255 = %#x)", x)
	}
	if len(seen) != 255 {
		t.Fatalf("generator visits %d elements, want 255", len(seen))
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for v := 1; v < 256; v++ {
		l, ok := Log(byte(v))
		if !ok {
			t.Fatalf("Log(%#x) not ok", v)
		}
		if got := Exp(int(l)); got != byte(v) {
			t.Fatalf("Exp(Log(%#x)) = %#x", v, got)
		}
	}
	if _, ok := Log(0); ok {
		t.Fatal("Log(0) reported ok")
	}
}

func TestToLogFromLog(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, len(src))
	ToLog(dst, src)
	for i, l := range dst {
		if got := FromLog(l); got != src[i] {
			t.Fatalf("FromLog(ToLog(%#x)) = %#x", src[i], got)
		}
	}
	// In-place transform must also work.
	inPlace := append([]byte(nil), src...)
	ToLog(inPlace, inPlace)
	for i := range inPlace {
		if inPlace[i] != dst[i] {
			t.Fatalf("in-place ToLog diverges at %d", i)
		}
	}
}

func TestToLogRemapped(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]uint16, len(src))
	ToLogRemapped(dst, src)
	if dst[0] != 0 {
		t.Fatalf("remapped log of 0 = %d, want 0", dst[0])
	}
	for i := 1; i < len(dst); i++ {
		if dst[i] == 0 {
			t.Fatalf("remapped log of %#x = 0, clashes with zero sentinel", src[i])
		}
	}
}

func TestLoopIterations(t *testing.T) {
	cases := []struct {
		c    byte
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {0x80, 8}, {0xFF, 8}, {0x10, 5}}
	for _, tc := range cases {
		if got := LoopIterations(tc.c); got != tc.want {
			t.Errorf("LoopIterations(%#x) = %d, want %d", tc.c, got, tc.want)
		}
	}
	// The paper's ≈7 average over random bytes.
	total := 0
	for c := 0; c < 256; c++ {
		total += LoopIterations(byte(c))
	}
	avg := float64(total) / 256
	if avg < 6.9 || avg > 7.1 {
		t.Errorf("mean loop iterations = %.3f, want ≈7", avg)
	}
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestAddSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100, 4096} {
		a := randomBytes(rng, n)
		b := randomBytes(rng, n)
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] ^ b[i]
		}
		got := append([]byte(nil), a...)
		AddSlice(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AddSlice len %d mismatch at %d", n, i)
			}
		}
	}
}

func TestMulAddSliceStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lengths := []int{0, 1, 5, 8, 15, 16, 63, 64, 65, 511, 4096}
	coeffs := []byte{0, 1, 2, 3, 0x53, 0x80, 0xFF}
	for _, n := range lengths {
		for _, c := range coeffs {
			src := randomBytes(rng, n)
			base := randomBytes(rng, n)

			want := append([]byte(nil), base...)
			for i := range want {
				want[i] ^= mulSlow(src[i], c)
			}

			for name, fn := range map[string]func(dst, src []byte, c byte){
				"auto":  MulAddSlice,
				"loop":  MulAddSliceLoop,
				"table": MulAddSliceTable,
			} {
				got := append([]byte(nil), base...)
				fn(got, src, c)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s len %d c %#x mismatch at %d: got %#x want %#x",
							name, n, c, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestMulSliceAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randomBytes(rng, 333)
	for _, c := range []byte{0, 1, 0x1D, 0xFF} {
		dst := make([]byte, len(src))
		MulSlice(dst, src, c)
		for i := range src {
			if want := mulSlow(src[i], c); dst[i] != want {
				t.Fatalf("MulSlice c=%#x at %d: got %#x want %#x", c, i, dst[i], want)
			}
		}
		scaled := append([]byte(nil), src...)
		ScaleSlice(scaled, c)
		for i := range scaled {
			if scaled[i] != dst[i] {
				t.Fatalf("ScaleSlice diverges from MulSlice at %d", i)
			}
		}
	}
}

func TestDotProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, k = 16, 97
	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = randomBytes(rng, k)
	}
	coeffs := randomBytes(rng, n)
	out := make([]byte, k)
	DotProduct(out, coeffs, rows)
	for j := 0; j < k; j++ {
		var want byte
		for i := 0; i < n; i++ {
			want ^= mulSlow(coeffs[i], rows[i][j])
		}
		if out[j] != want {
			t.Fatalf("DotProduct col %d: got %#x want %#x", j, out[j], want)
		}
	}
}

// TestMulRowAliases verifies the product-row accessor matches MulTable.
func TestMulRowAliases(t *testing.T) {
	for c := 0; c < 256; c++ {
		row := MulRow(byte(c))
		for x := 0; x < 256; x++ {
			if row[x] != MulTable(byte(c), byte(x)) {
				t.Fatalf("MulRow(%#x)[%#x] mismatch", c, x)
			}
		}
	}
}

func TestDistributivityOverSlices(t *testing.T) {
	// (a+b)·row == a·row + b·row, checked with the bulk primitives.
	f := func(a, b byte, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomBytes(rng, 128)
		lhs := make([]byte, len(src))
		MulAddSlice(lhs, src, a^b)
		rhs := make([]byte, len(src))
		MulAddSlice(rhs, src, a)
		MulAddSlice(rhs, src, b)
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGF256MulVariants(b *testing.B) {
	variants := []struct {
		name string
		fn   func(a, b byte) byte
	}{
		{"LogExp", Mul},
		{"FullTable", MulTable},
		{"Loop", MulLoop},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var acc byte
			for i := 0; i < b.N; i++ {
				acc ^= v.fn(byte(i), byte(i>>8)|1)
			}
			_ = acc
		})
	}
}

func BenchmarkMulAddStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{128, 1024, 4096, 16384} {
		src := randomBytes(rng, k)
		dst := randomBytes(rng, k)
		b.Run("loop/"+itoa(k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				MulAddSliceLoop(dst, src, 0xA7)
			}
		})
		b.Run("table/"+itoa(k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				MulAddSliceTable(dst, src, 0xA7)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
