package gf256

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential coverage for the GF(2) XOR kernels of the systematic fast
// path, pinned against a plain byte loop over lengths 0–257 so the 32- and
// 16-byte main loops, the 8-byte loops, and every odd tail are exercised.

func TestXorSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for n := 0; n <= 257; n++ {
		src := randomBytes(rng, n)
		base := randomBytes(rng, n)
		want := append([]byte(nil), base...)
		for i := range want {
			want[i] ^= src[i]
		}
		got := append([]byte(nil), base...)
		XorSlice(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("XorSlice len %d mismatch at %d: got %#x want %#x", n, i, got[i], want[i])
			}
		}
		// dst longer than src: only the src prefix may change.
		long := append(append([]byte(nil), base...), 0x5A, 0x5A)
		XorSlice(long, src)
		for i := range want {
			if long[i] != want[i] {
				t.Fatalf("XorSlice long-dst len %d mismatch at %d", n, i)
			}
		}
		if long[n] != 0x5A || long[n+1] != 0x5A {
			t.Fatalf("XorSlice len %d wrote past len(src)", n)
		}
	}
}

func TestXorSliceSelfZeroes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 31, 32, 33, 64, 129, 257} {
		row := randomBytes(rng, n)
		XorSlice(row, row)
		for i, v := range row {
			if v != 0 {
				t.Fatalf("XorSlice self len %d not zero at %d", n, i)
			}
		}
	}
}

func TestXorSlice4MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 0; n <= 257; n++ {
		s1 := randomBytes(rng, n)
		s2 := randomBytes(rng, n)
		s3 := randomBytes(rng, n)
		s4 := randomBytes(rng, n)
		base := randomBytes(rng, n)
		want := append([]byte(nil), base...)
		for i := range want {
			want[i] ^= s1[i] ^ s2[i] ^ s3[i] ^ s4[i]
		}
		got := append([]byte(nil), base...)
		XorSlice4(got, s1, s2, s3, s4)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("XorSlice4 len %d mismatch at %d: got %#x want %#x", n, i, got[i], want[i])
			}
		}
	}
}

// TestXorSlice4Aliased pins the fully-aliased contract: folding a row into
// itself four times is the identity (an even number of self-XORs), matching
// MulAddSlice4 with coefficients {1,1,1,1}.
func TestXorSlice4Aliased(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 9, 16, 17, 64, 257} {
		orig := randomBytes(rng, n)
		got := append([]byte(nil), orig...)
		XorSlice4(got, got, got, got, got)
		for i := range orig {
			if got[i] != orig[i] {
				t.Fatalf("aliased XorSlice4 len %d mismatch at %d", n, i)
			}
		}
		// Repeated sources cancel pairwise: dst ^= s ^ s ^ t ^ t is a no-op.
		s := randomBytes(rng, n)
		u := randomBytes(rng, n)
		got = append([]byte(nil), orig...)
		XorSlice4(got, s, s, u, u)
		for i := range orig {
			if got[i] != orig[i] {
				t.Fatalf("pairwise-cancel XorSlice4 len %d mismatch at %d", n, i)
			}
		}
	}
}

// TestXorMatchesMulAddUnitCoeff pins the fast path's core claim: XOR-only
// elimination is byte-identical to the GF(2^8) kernels at coefficient 1.
func TestXorMatchesMulAddUnitCoeff(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 16, 63, 64, 257} {
		s1 := randomBytes(rng, n)
		s2 := randomBytes(rng, n)
		s3 := randomBytes(rng, n)
		s4 := randomBytes(rng, n)
		base := randomBytes(rng, n)

		viaMul := append([]byte(nil), base...)
		MulAddSlice(viaMul, s1, 1)
		viaXor := append([]byte(nil), base...)
		XorSlice(viaXor, s1)
		for i := range viaMul {
			if viaMul[i] != viaXor[i] {
				t.Fatalf("XorSlice vs MulAddSlice(c=1) len %d mismatch at %d", n, i)
			}
		}

		viaMul4 := append([]byte(nil), base...)
		MulAddSlice4(viaMul4, s1, s2, s3, s4, 1, 1, 1, 1)
		viaXor4 := append([]byte(nil), base...)
		XorSlice4(viaXor4, s1, s2, s3, s4)
		for i := range viaMul4 {
			if viaMul4[i] != viaXor4[i] {
				t.Fatalf("XorSlice4 vs MulAddSlice4(c=1…) len %d mismatch at %d", n, i)
			}
		}
	}
}

// FuzzXorKernels drives both XOR kernels with fuzzer-chosen lengths, offsets
// and content — odd tails, zero length, and aliased views over one backing
// array — against the byte-loop reference.
func FuzzXorKernels(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xA7, 3, 9, 2, 77, 31, 8, 16}, uint8(3))
	f.Add(make([]byte, 300), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, off uint8) {
		n := len(data) / 2
		src := data[:n]
		base := data[n : 2*n]

		want := append([]byte(nil), base...)
		for i := range want {
			want[i] ^= src[i]
		}
		got := append([]byte(nil), base...)
		XorSlice(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("XorSlice len %d mismatch at %d", n, i)
			}
		}

		// XorSlice4 with sources sliced at a fuzzed offset from one backing
		// array (full aliasing among sources is allowed; dst is separate).
		if n > 0 {
			o := int(off) % n
			s1, s2 := src, src[o:]
			s3, s4 := base, base[o:]
			w := min(len(s2), len(s4))
			want4 := make([]byte, w)
			for i := 0; i < w; i++ {
				want4[i] = got[i] ^ s1[i] ^ s2[i] ^ s3[i] ^ s4[i]
			}
			got4 := append([]byte(nil), got[:w]...)
			XorSlice4(got4, s1, s2, s3, s4)
			for i := range want4 {
				if got4[i] != want4[i] {
					t.Fatalf("XorSlice4 len %d off %d mismatch at %d", w, o, i)
				}
			}
		}
	})
}

// BenchmarkXorLadder measures the GF(2) kernels alongside the GF(2^8) ladder.
// As in BenchmarkMulAddLadder, fused rungs report source bytes processed per
// second, so the MB/s column is directly comparable: the xor4 rung is the
// GF(2) analogue of fused4.
func BenchmarkXorLadder(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	for _, k := range []int{16, 64, 1024, 4096} {
		s1 := randomBytes(rng, k)
		s2 := randomBytes(rng, k)
		s3 := randomBytes(rng, k)
		s4 := randomBytes(rng, k)
		dst := randomBytes(rng, k)
		b.Run(fmt.Sprintf("xor/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(k))
			for i := 0; i < b.N; i++ {
				XorSlice(dst, s1)
			}
		})
		b.Run(fmt.Sprintf("xor4/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(4 * k))
			for i := 0; i < b.N; i++ {
				XorSlice4(dst, s1, s2, s3, s4)
			}
		})
	}
}
