// Package gf65536 implements arithmetic over GF(2^16) — the granularity
// ablation behind the paper's Sec. 4.1 design rationale: "table-based
// GF(2^8) multiplication is not easily scalable to a higher granularity
// than the byte level". At 16-bit symbols the log/exp tables occupy
// 4·65536 = 256 KiB (plus a doubled exp table), two orders of magnitude
// beyond a Tesla SM's 16 KiB shared memory and far past L1 on the CPUs of
// the era — so the table-based schemes that win at byte granularity cannot
// even stage their tables. The upside this package lets one measure is the
// far lower linear-dependence probability of random coefficients (≈2⁻¹⁶
// per draw instead of ≈2⁻⁸).
package gf65536

import "fmt"

// Poly is a primitive polynomial for GF(2^16): x^16+x^12+x^3+x+1.
const Poly = 0x1100B

// Order is the multiplicative group order.
const Order = 1<<16 - 1

// TableBytes is the memory footprint of the log table plus the doubled exp
// table at this granularity — the number that sinks GPU table schemes.
const TableBytes = 2*(1<<16)*2 + 2*2*Order // log (128 KiB) + exp doubled (~256 KiB)

type tables struct {
	generator uint16
	exp       []uint16 // doubled: exp[i] = g^i for i in [0, 2·Order)
	log       []uint32 // log[x] for x != 0; log[0] = logZero sentinel
}

// logZero is the sentinel logarithm for 0.
const logZero = 1 << 30

var _tables = buildTables()

// buildTables finds the smallest primitive generator under Poly and builds
// the tables. Primitivity is verified by construction: the generator must
// visit every non-zero element exactly once.
func buildTables() *tables {
	for g := uint16(2); ; g++ {
		t, ok := tryGenerator(g)
		if ok {
			return t
		}
		if g > 64 {
			panic(fmt.Sprintf("gf65536: no primitive generator below 64 for poly %#x", Poly))
		}
	}
}

func tryGenerator(g uint16) (*tables, bool) {
	t := &tables{
		generator: g,
		exp:       make([]uint16, 2*Order),
		log:       make([]uint32, 1<<16),
	}
	for i := range t.log {
		t.log[i] = logZero
	}
	x := uint16(1)
	for i := 0; i < Order; i++ {
		if t.log[x] != logZero {
			return nil, false // cycled early: g is not primitive
		}
		t.exp[i] = x
		t.exp[i+Order] = x
		t.log[x] = uint32(i)
		x = mulSlow(x, g)
	}
	if x != 1 {
		return nil, false
	}
	return t, true
}

// Generator returns the primitive element the tables use.
func Generator() uint16 { return _tables.generator }

// mulSlow is the reference carry-less multiply with reduction by Poly.
func mulSlow(a, b uint16) uint16 {
	var p uint32
	aa, bb := uint32(a), uint32(b)
	for i := 0; i < 16; i++ {
		if bb&1 != 0 {
			p ^= aa
		}
		bb >>= 1
		aa <<= 1
		if aa&0x10000 != 0 {
			aa ^= Poly
		}
	}
	return uint16(p)
}

// Add returns a + b (XOR).
func Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a·b via the log/exp tables.
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[_tables.log[a]+_tables.log[b]]
}

// MulLoop returns a·b via the loop-based multiply (16 iterations max).
func MulLoop(a, b uint16) uint16 { return mulSlow(a, b) }

// Inv returns the multiplicative inverse of a (Inv(0) = 0).
func Inv(a uint16) uint16 {
	if a == 0 {
		return 0
	}
	return _tables.exp[Order-_tables.log[a]]
}

// Div returns a/b (0 when b is 0).
func Div(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[_tables.log[a]+uint32(Order)-_tables.log[b]]
}

// MulAddSlice computes dst[i] ^= c·src[i] over 16-bit symbols — the row
// operation at symbol granularity.
func MulAddSlice(dst, src []uint16, c uint16) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	lc := _tables.log[c]
	exp, log := _tables.exp, _tables.log
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+log[s]]
		}
	}
}

// ScaleSlice computes dst[i] = c·dst[i] in place.
func ScaleSlice(dst []uint16, c uint16) {
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		return
	}
	lc := _tables.log[c]
	exp, log := _tables.exp, _tables.log
	for i, v := range dst {
		if v != 0 {
			dst[i] = exp[lc+log[v]]
		}
	}
}

// Rank returns the rank of an r×c matrix over GF(2^16) stored as row
// slices, via in-place Gaussian elimination on a copy. It backs the
// dependence-probability comparison against GF(2^8).
func Rank(rows [][]uint16) int {
	if len(rows) == 0 {
		return 0
	}
	work := make([][]uint16, len(rows))
	for i, r := range rows {
		work[i] = append([]uint16(nil), r...)
	}
	cols := len(work[0])
	rank := 0
	for col := 0; col < cols && rank < len(work); col++ {
		pivot := -1
		for r := rank; r < len(work); r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[pivot], work[rank] = work[rank], work[pivot]
		prow := work[rank]
		if pv := prow[col]; pv != 1 {
			ScaleSlice(prow, Inv(pv))
		}
		for r := 0; r < len(work); r++ {
			if r == rank {
				continue
			}
			if f := work[r][col]; f != 0 {
				MulAddSlice(work[r], prow, f)
			}
		}
		rank++
	}
	return rank
}
