package gf65536

import (
	"math/rand"
	"testing"
	"testing/quick"

	"extremenc/internal/gf256"
)

func TestGeneratorIsPrimitive(t *testing.T) {
	// buildTables only returns a verified generator; re-check its order.
	g := Generator()
	if g < 2 {
		t.Fatalf("generator = %d", g)
	}
	x := uint16(1)
	for i := 0; i < Order; i++ {
		x = mulSlow(x, g)
		if x == 1 && i != Order-1 {
			t.Fatalf("generator order divides %d", i+1)
		}
	}
	if x != 1 {
		t.Fatal("generator order is not 65535")
	}
}

func TestMulAgreesWithLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		a, b := uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16))
		if got, want := Mul(a, b), MulLoop(a, b); got != want {
			t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	t.Run("commutativity", func(t *testing.T) {
		if err := quick.Check(func(a, b uint16) bool { return Mul(a, b) == Mul(b, a) }, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("associativity", func(t *testing.T) {
		f := func(a, b, c uint16) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributivity", func(t *testing.T) {
		f := func(a, b, c uint16) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("inverse", func(t *testing.T) {
		f := func(a uint16) bool {
			if a == 0 {
				return Inv(0) == 0
			}
			return Mul(a, Inv(a)) == 1
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("division", func(t *testing.T) {
		f := func(a, b uint16) bool {
			if b == 0 {
				return Div(a, b) == 0
			}
			return Mul(Div(a, b), b) == a
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestMulAddAndScaleSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]uint16, 301)
	dst := make([]uint16, 301)
	for i := range src {
		src[i] = uint16(rng.Intn(1 << 16))
		dst[i] = uint16(rng.Intn(1 << 16))
	}
	for _, c := range []uint16{0, 1, 0x1234, 0xFFFF} {
		want := append([]uint16(nil), dst...)
		for i := range want {
			want[i] ^= MulLoop(c, src[i])
		}
		got := append([]uint16(nil), dst...)
		MulAddSlice(got, src, c)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MulAddSlice c=%#x at %d", c, i)
			}
		}
		scaled := append([]uint16(nil), src...)
		ScaleSlice(scaled, c)
		for i := range scaled {
			if scaled[i] != MulLoop(c, src[i]) {
				t.Fatalf("ScaleSlice c=%#x at %d", c, i)
			}
		}
	}
}

func TestRank(t *testing.T) {
	id := [][]uint16{{1, 0}, {0, 1}}
	if Rank(id) != 2 {
		t.Fatal("identity rank")
	}
	dep := [][]uint16{{2, 4}, {Mul(2, 7), Mul(4, 7)}} // scaled row
	if Rank(dep) != 1 {
		t.Fatal("dependent rows rank")
	}
	if Rank(nil) != 0 || Rank([][]uint16{{0, 0}}) != 0 {
		t.Fatal("degenerate ranks")
	}
}

// TestDependenceProbabilityVsGF256 quantifies the symbol-width trade: a
// random 4×4 coefficient matrix over GF(2^8) is singular ≈0.4% of the time
// (≈q⁻¹), over GF(2^16) ≈0.0015% — the upside the paper forgoes because
// the tables stop fitting on-chip (Sec. 4.1).
func TestDependenceProbabilityVsGF256(t *testing.T) {
	const trials, n = 30000, 4
	rng := rand.New(rand.NewSource(3))

	singular8 := 0
	for trial := 0; trial < trials; trial++ {
		rows := make([][]uint16, n)
		for i := range rows {
			rows[i] = make([]uint16, n)
			for j := range rows[i] {
				rows[i][j] = uint16(rng.Intn(256)) // byte symbols via GF(2^8) mul below
			}
		}
		// GF(2^8) rank with byte arithmetic.
		if rank8(rows) < n {
			singular8++
		}
	}
	singular16 := 0
	for trial := 0; trial < trials; trial++ {
		rows := make([][]uint16, n)
		for i := range rows {
			rows[i] = make([]uint16, n)
			for j := range rows[i] {
				rows[i][j] = uint16(rng.Intn(1 << 16))
			}
		}
		if Rank(rows) < n {
			singular16++
		}
	}
	// GF(2^8): expected ≈ trials × (1 − Π(1−q^{-i})) ≈ trials/255 ≈ 118.
	if singular8 < 70 || singular8 > 180 {
		t.Errorf("GF(2^8) singular count = %d of %d, want ≈118", singular8, trials)
	}
	// GF(2^16): expected ≈ trials × 1.5e-5 ≈ 0.46 — almost never.
	if singular16 > 10 {
		t.Errorf("GF(2^16) singular count = %d of %d, want ≈0", singular16, trials)
	}
	if singular16 >= singular8 {
		t.Error("wider symbols should reduce dependence probability")
	}
}

// rank8 computes rank over GF(2^8) for byte-valued matrices.
func rank8(rows [][]uint16) int {
	work := make([][]byte, len(rows))
	for i, r := range rows {
		work[i] = make([]byte, len(r))
		for j, v := range r {
			work[i][j] = byte(v)
		}
	}
	cols := len(work[0])
	rank := 0
	for col := 0; col < cols && rank < len(work); col++ {
		pivot := -1
		for r := rank; r < len(work); r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[pivot], work[rank] = work[rank], work[pivot]
		prow := work[rank]
		inv := gf256.Inv(prow[col])
		gf256.ScaleSlice(prow, inv)
		for r := 0; r < len(work); r++ {
			if r != rank && work[r][col] != 0 {
				gf256.MulAddSlice(work[r], prow, work[r][col])
			}
		}
		rank++
	}
	return rank
}

// TestTableFootprint pins the Sec. 4.1 rationale: GF(2^16) tables cannot
// fit a Tesla SM's 16 KiB shared memory, while GF(2^8)'s fit many times
// over.
func TestTableFootprint(t *testing.T) {
	const sharedMem = 16 << 10
	if TableBytes <= sharedMem {
		t.Fatalf("GF(2^16) tables (%d B) should dwarf shared memory (%d B)", TableBytes, sharedMem)
	}
	const gf256Tables = 256 + 512 // log + doubled exp, bytes
	if gf256Tables > sharedMem/16 {
		t.Fatalf("GF(2^8) tables (%d B) should fit shared memory many times over", gf256Tables)
	}
	if TableBytes/gf256Tables < 400 {
		t.Fatalf("granularity blow-up = %dx, expected ≫ 400x", TableBytes/gf256Tables)
	}
}

// BenchmarkGranularity compares row-operation throughput per byte at the
// two symbol widths on this machine.
func BenchmarkGranularity(b *testing.B) {
	const bytes = 8192
	rng := rand.New(rand.NewSource(4))

	src8 := make([]byte, bytes)
	dst8 := make([]byte, bytes)
	rng.Read(src8)
	rng.Read(dst8)
	b.Run("gf256", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			gf256.MulAddSlice(dst8, src8, 0xA7)
		}
	})

	src16 := make([]uint16, bytes/2)
	dst16 := make([]uint16, bytes/2)
	for i := range src16 {
		src16[i] = uint16(rng.Intn(1 << 16))
		dst16[i] = uint16(rng.Intn(1 << 16))
	}
	b.Run("gf65536", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			MulAddSlice(dst16, src16, 0xA7B3)
		}
	})
}
