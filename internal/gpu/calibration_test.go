package gpu

import (
	"testing"

	"extremenc/internal/rlnc"
)

// encodeRate runs a saturated encode at (n, k) with the given scheme and
// returns simulated MB/s. The block batch is sized to keep the device busy
// (streaming-server conditions, Sec. 5.1.1), with only a couple of blocks
// functionally materialized.
func encodeRate(t testing.TB, spec DeviceSpec, n, k int, scheme Scheme) float64 {
	t.Helper()
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	seg := randomSegment(t, p, int64(n*31+k))
	// Enough coded blocks to fill every SM several times over.
	words := (k + 3) / 4
	rows := (spec.SMs * spec.MaxResidentThreadsPerSM * 4) / words
	if rows < 2*n {
		rows = 2 * n
	}
	coeffs := denseCoeffs(rows, n, int64(k+7))
	res, err := d.EncodeSegment(seg, coeffs, scheme, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.BandwidthMBps()
}

// decodeSingleRate returns simulated single-segment decode MB/s.
func decodeSingleRate(t testing.TB, spec DeviceSpec, n, k int) float64 {
	t.Helper()
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	// Use a small functional stand-in with the same (n, k) accounting: the
	// cost model depends on (n, k, rank trajectory) only, so decode a real
	// block set at these parameters.
	seg := randomSegment(t, p, int64(n+k))
	rng := newRand(int64(n * k))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, n)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	res, err := d.DecodeSegment(blocks, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.BandwidthMBps()
}

func multiSegRate(t testing.TB, spec DeviceSpec, n, k, segments, perSM int) (rate, share float64) {
	t.Helper()
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	seg := randomSegment(t, p, int64(n+2*k))
	rng := newRand(int64(n*k + 1))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, n)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	sets := make([][]*rlnc.CodedBlock, segments)
	for i := range sets {
		sets[i] = blocks
	}
	res, err := d.DecodeMultiSegment(sets, p, &MultiSegmentOptions{
		SegmentsPerSM:       perSM,
		MaterializeSegments: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.BandwidthMBps(), res.Stage1Share()
}

// TestCalibrationDump logs the simulated rates at the paper's anchor points.
// Run with -v to inspect; assertions live in internal/experiments.
func TestCalibrationDump(t *testing.T) {
	gtx := GTX280()
	gt88 := GeForce8800GT()

	t.Log("--- Fig 4a / Fig 6 / Fig 7 encode anchors (GTX 280) ---")
	for _, n := range []int{128, 256, 512, 1024} {
		t.Logf("LB   n=%4d k=4096: %7.1f MB/s", n, encodeRate(t, gtx, n, 4096, LoopBased))
	}
	for _, s := range Schemes() {
		t.Logf("%-14s n=128 k=4096: %7.1f MB/s", s, encodeRate(t, gtx, 128, 4096, s))
	}
	t.Logf("8800GT LB n=128 k=4096: %7.1f MB/s", encodeRate(t, gt88, 128, 4096, LoopBased))

	t.Log("--- encode vs k (LB, n=128) ---")
	for _, k := range []int{128, 512, 1024, 4096, 16384, 32768} {
		t.Logf("LB n=128 k=%5d: %7.1f MB/s", k, encodeRate(t, gtx, 128, k, LoopBased))
	}

	t.Log("--- Fig 4b decode single-segment (GTX 280) ---")
	for _, k := range []int{128, 1024, 4096, 8192, 16384, 32768} {
		t.Logf("decode n=128 k=%5d: %7.2f MB/s", k, decodeSingleRate(t, gtx, 128, k))
	}
	for _, n := range []int{256, 512} {
		t.Logf("decode n=%d k=4096: %7.2f MB/s", n, decodeSingleRate(t, gtx, n, 4096))
	}

	t.Log("--- Fig 9 multi-segment decode (GTX 280) ---")
	for _, k := range []int{128, 1024, 4096, 16384, 32768} {
		r30, s30 := multiSegRate(t, gtx, 128, k, 30, 1)
		r60, s60 := multiSegRate(t, gtx, 128, k, 60, 2)
		t.Logf("multiseg n=128 k=%5d: 30seg %7.1f MB/s (stage1 %4.1f%%) | 60seg %7.1f MB/s (stage1 %4.1f%%)",
			k, r30, s30*100, r60, s60*100)
	}
}
