package gpu

// Global-memory coalescing analysis. The encode partitioning of Fig. 2
// assigns consecutive 4-byte words of a coded block to consecutive threads
// of a warp precisely so that each half-warp's loads and stores coalesce
// into single memory transactions ("such partitioning significantly
// reduces the number of accesses to the GPU memory", Sec. 4.2.1). This
// file computes transaction counts for an access pattern under the Tesla
// coalescing rules, so tests can demonstrate the claim quantitatively and
// the docs don't have to be taken on faith.

// transactionSegment is the Tesla coalescing granularity for 4-byte
// accesses: one 64-byte segment per half-warp when accesses align.
const transactionSegment = 64

// CoalescingReport summarizes an access pattern's memory behaviour.
type CoalescingReport struct {
	Accesses     int // individual thread accesses
	Transactions int // memory transactions issued
}

// Efficiency returns accesses per transaction — 16 is perfect for 4-byte
// words on Tesla-class hardware (one transaction serves a half-warp).
func (r CoalescingReport) Efficiency() float64 {
	if r.Transactions == 0 {
		return 0
	}
	return float64(r.Accesses) / float64(r.Transactions)
}

// analyzeCoalescing counts the transactions needed for per-thread byte
// addresses, half-warp by half-warp: each distinct 64-byte segment touched
// by a half-warp costs one transaction.
func analyzeCoalescing(spec DeviceSpec, addrs []int) CoalescingReport {
	rep := CoalescingReport{Accesses: len(addrs)}
	half := spec.WarpSize / 2
	for base := 0; base < len(addrs); base += half {
		end := base + half
		if end > len(addrs) {
			end = len(addrs)
		}
		segments := make(map[int]struct{}, 2)
		for _, a := range addrs[base:end] {
			segments[a/transactionSegment] = struct{}{}
		}
		rep.Transactions += len(segments)
	}
	return rep
}

// EncodeSourceAccessPattern returns the byte addresses the Fig. 2 encode
// partitioning issues when a warp loads one 4-byte word of a source block:
// thread t of the warp reads word (warpBase + t).
func EncodeSourceAccessPattern(spec DeviceSpec, warpBase int) []int {
	addrs := make([]int, spec.WarpSize)
	for t := range addrs {
		addrs[t] = (warpBase + t) * 4
	}
	return addrs
}

// StridedAccessPattern returns the addresses of the naive alternative the
// paper's partitioning avoids: thread t owns a contiguous chunk of the
// coded block and reads its word at offset t·strideWords — adjacent threads
// touch addresses a whole chunk apart.
func StridedAccessPattern(spec DeviceSpec, strideWords int) []int {
	addrs := make([]int, spec.WarpSize)
	for t := range addrs {
		addrs[t] = t * strideWords * 4
	}
	return addrs
}

// AnalyzeAccessPattern exposes the coalescing analysis for tests and
// documentation tooling.
func AnalyzeAccessPattern(spec DeviceSpec, addrs []int) CoalescingReport {
	return analyzeCoalescing(spec, addrs)
}
