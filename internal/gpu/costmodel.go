package gpu

// This file is the simulator's cycle-cost model. Time is charged in "issue
// slots": one slot is one thread-instruction. A Tesla-class SM retires one
// warp instruction (WarpSize threads) every WarpSize/SPsPerSM cycles, i.e.
// SPsPerSM slots per cycle per SM, so a kernel whose threads collectively
// need S slots occupies an SM for S/SPsPerSM cycles.
//
// The model combines:
//
//	issue time    — slots counted by the kernels (data-dependent: loop
//	                iteration counts come from real coefficient bits, and
//	                shared-memory access costs include bank-conflict rounds
//	                measured on the kernel's real table indices);
//	latency       — exposed global-memory latency when an SM holds too few
//	                warps to hide round-trips (the paper's explanation for
//	                poor decode scaling at small block sizes);
//	bandwidth     — a device-wide DRAM bound, almost fully overlapped with
//	                compute (the paper's dummy-input experiment shows only
//	                0.5% of memory time is exposed during encoding);
//	barriers      — __syncthreads and kernel-launch overheads.
//
// Absolute constants are calibrated against the GTX 280 numbers in the
// paper (see DESIGN.md §4–5); shapes come from the counted events.
type costModel struct {
	// hideWarps is the resident-warp count per SM at which global-memory
	// latency is fully hidden. Below it, a fraction of each dependent
	// round-trip is exposed.
	hideWarps float64

	// memOverlapEps is the fraction of the smaller of compute/bandwidth
	// time that cannot be overlapped (≈0.5% per the paper's dummy-input
	// benchmark, Sec. 5.1.3).
	memOverlapEps float64

	// Loop-based GF multiply (byte coefficient × 32-bit word): slots per
	// executed iteration and fixed slots per word-multiply. Iteration
	// counts are data-dependent (bit length of the coefficient, ≈7 on
	// random bytes).
	lbIterSlots  float64
	lbFixedSlots float64

	// Table-based schemes: base arithmetic slots per word-multiply
	// (everything except table accesses, which are charged separately from
	// measured conflict rounds / texture hit rates).
	tbBaseSlots [numTableSchemes]float64

	// Table accesses per word-multiply, by storage class.
	tbSharedReads [numTableSchemes]float64 // classic shared-memory tables
	tbReplReads   [numTableSchemes]float64 // 8-copy replicated word tables
	tbTexReads    [numTableSchemes]float64 // texture-resident exp table

	// Texture access slot costs.
	texHitSlots  float64
	texMissSlots float64

	// Encoding overheads.
	encOutWordSlots  float64 // per generated output word (store, loop control)
	preprocWordSlots float64 // log-domain transform slots per 4 source bytes

	// Decoding.
	decRowOpFixedSlots float64 // per word per row operation, beyond the multiply
	decArrivalSlots    float64 // pivot search / bookkeeping per coded block per thread
	decSyncsPerArrival float64 // barriers per coded-block arrival
	decSyncsPerRowOp   float64 // barriers per row operation
	atomicMinSpeedup   float64 // fractional decode-time saving with shared-memory atomicMin (Sec. 5.4.2)
	coeffCacheMax      float64 // max fractional saving from caching C in shared memory (Sec. 5.4.3)

	// stageTwoOverhead inflates the multi-segment stage-2 multiply relative
	// to a pure encode: C⁻¹ rows are produced per SM by stage 1 and
	// consumed device-wide, losing the encoder's broadcast-friendly
	// coefficient layout.
	stageTwoOverhead float64

	// invOverlapEfficiency is the fraction of a second resident inversion's
	// stalls that actually overlap when two segments share an SM
	// (Sec. 5.2's 60-segment configuration).
	invOverlapEfficiency float64
}

// defaultCostModel returns the constants calibrated to the paper's GTX 280
// measurements.
func defaultCostModel() costModel {
	return costModel{
		hideWarps:     16,
		memOverlapEps: 0.03,

		lbIterSlots:  10.85,
		lbFixedSlots: 5.2,

		// Scheme order: TB-0 … TB-5. Bases fall as each optimization strips
		// instructions: log-domain preprocessing (1), merged zero tests (2),
		// predicated zero handling (3), cheaper texture addressing (4),
		// private replicated tables with word elements (5).
		tbBaseSlots:   [numTableSchemes]float64{82.7, 50.8, 43.9, 39.8, 40.2, 28.2},
		tbSharedReads: [numTableSchemes]float64{9, 4, 4, 4, 0, 0},
		tbReplReads:   [numTableSchemes]float64{0, 0, 0, 0, 0, 4},
		tbTexReads:    [numTableSchemes]float64{0, 0, 0, 0, 4, 0},

		texHitSlots:  1.0,
		texMissSlots: 24.0,

		encOutWordSlots:  6.0,
		preprocWordSlots: 8.0,

		decRowOpFixedSlots: 6.0,
		decArrivalSlots:    24.0,
		decSyncsPerArrival: 2,
		decSyncsPerRowOp:   1,
		atomicMinSpeedup:   0.006,
		coeffCacheMax:      0.034,

		stageTwoOverhead:     1.10,
		invOverlapEfficiency: 0.72,
	}
}

// numTableSchemes is the count of table-based encode variants (TB-0…TB-5).
const numTableSchemes = 6

// kernelCost aggregates one kernel launch's accounted events.
type kernelCost struct {
	launches float64 // kernel launches charged (fractional when amortized)

	slots      float64 // total thread-instruction slots, device-wide
	busySMs    float64 // SMs with work (≤ spec.SMs)
	warpsPerSM float64 // resident warps per SM, for latency exposure

	latencyEvents float64 // dependent global round-trips per SM serial chain
	syncs         float64 // barriers per SM serial chain
	globalBytes   float64 // device-wide DRAM traffic

	sharedAccesses float64
	bankConflicts  float64
	texReads       float64
	texMisses      float64
}

func (k kernelCost) stats() Stats {
	return Stats{
		Kernels:        int64(k.launches + 0.5),
		IssueSlots:     k.slots,
		GlobalBytes:    k.globalBytes,
		SharedAccesses: k.sharedAccesses,
		BankConflicts:  k.bankConflicts,
		TextureReads:   k.texReads,
		TextureMisses:  k.texMisses,
		Syncs:          k.syncs,
	}
}

// seconds converts the accounted events into simulated wall time on spec.
func (k kernelCost) seconds(spec DeviceSpec, m costModel) float64 {
	busy := k.busySMs
	if busy <= 0 || busy > float64(spec.SMs) {
		busy = float64(spec.SMs)
	}
	issueCycles := k.slots / (float64(spec.SPsPerSM) * busy)

	exposure := exposureFactor(k.warpsPerSM, m.hideWarps)
	latencyCycles := k.latencyEvents * spec.MemLatencyCycles * exposure
	syncCycles := k.syncs * spec.SyncCycles

	computeCycles := issueCycles + latencyCycles + syncCycles
	memCycles := k.globalBytes / spec.BytesPerCycle()

	total := max(computeCycles, memCycles) + m.memOverlapEps*min(computeCycles, memCycles)
	total += k.launches * spec.KernelLaunchCycles
	return total / spec.ClockHz()
}

func (k *kernelCost) add(o kernelCost) {
	k.launches += o.launches
	k.slots += o.slots
	if o.busySMs > k.busySMs {
		k.busySMs = o.busySMs
	}
	if o.warpsPerSM > k.warpsPerSM {
		k.warpsPerSM = o.warpsPerSM
	}
	k.latencyEvents += o.latencyEvents
	k.syncs += o.syncs
	k.globalBytes += o.globalBytes
	k.sharedAccesses += o.sharedAccesses
	k.bankConflicts += o.bankConflicts
	k.texReads += o.texReads
	k.texMisses += o.texMisses
}

// exposureFactor returns the fraction of global-memory latency left exposed
// with the given resident warps per SM: 1 when single-warped, 0 at or above
// hideWarps (thousands of lightweight threads hide stalls "with almost zero
// overhead in hardware", Sec. 4.1).
func exposureFactor(warps, hideWarps float64) float64 {
	if warps <= 0 {
		return 1
	}
	f := 1 - warps/hideWarps
	if f < 0 {
		return 0
	}
	return f
}

// occupancy computes the per-SM residency for a launch of `blocks` thread
// blocks of `threadsPerBlock` threads each.
type occupancy struct {
	busySMs    float64
	warpsPerSM float64
}

func computeOccupancy(spec DeviceSpec, blocks, threadsPerBlock, sharedPerBlock int) occupancy {
	if blocks <= 0 || threadsPerBlock <= 0 {
		return occupancy{busySMs: 1, warpsPerSM: 1}
	}
	residentBlocks := spec.MaxResidentBlocksPerSM
	if byThreads := spec.MaxResidentThreadsPerSM / threadsPerBlock; byThreads < residentBlocks {
		residentBlocks = byThreads
	}
	if sharedPerBlock > 0 {
		if byShared := spec.SharedMemPerSM / sharedPerBlock; byShared < residentBlocks {
			residentBlocks = byShared
		}
	}
	if residentBlocks < 1 {
		residentBlocks = 1
	}
	busy := float64(spec.SMs)
	if b := float64(blocks); b < busy {
		busy = b
	}
	warpsPerBlock := float64((threadsPerBlock + spec.WarpSize - 1) / spec.WarpSize)
	// Average resident blocks per busy SM over the launch.
	avgResident := float64(blocks) / busy
	if r := float64(residentBlocks); avgResident > r {
		avgResident = r
	}
	return occupancy{busySMs: busy, warpsPerSM: warpsPerBlock * avgResident}
}
