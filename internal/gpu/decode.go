package gpu

import (
	"errors"
	"fmt"

	"extremenc/internal/rlnc"
)

// ErrAtomicsUnsupported reports an atomicMin request on a device without
// shared-memory atomics (the 8800 GT; Sec. 5.4.2 notes the GTX 280 is the
// first CUDA GPU with them).
var ErrAtomicsUnsupported = errors.New("gpu: device lacks shared-memory atomics")

// ErrCoeffCacheTooLarge reports a coefficient-cache request with n too large
// for the 16 KB shared memory (Sec. 5.4.3 limits it to n ≤ 128).
var ErrCoeffCacheTooLarge = errors.New("gpu: coefficient matrix exceeds shared memory")

// DecodeOptions tunes single-segment decoding.
type DecodeOptions struct {
	// AtomicMin accelerates the pivot search with a shared-memory atomic
	// minimum reduction (Sec. 5.4.2, ≈0.6% gain). Requires hardware
	// support.
	AtomicMin bool
	// CacheCoefficients keeps the whole coefficient matrix in shared memory
	// (Sec. 5.4.3, 0.5–3.4% gain, largest at small block sizes). Requires
	// n ≤ 128.
	CacheCoefficients bool
}

// DecodeResult reports a simulated decode.
type DecodeResult struct {
	Segment      *rlnc.Segment
	Seconds      float64
	DecodedBytes int64
	Innovative   int
	Dependent    int
	Stats        Stats
}

// BandwidthMBps returns decoded source bytes per second / 1e6.
func (r *DecodeResult) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.DecodedBytes) / r.Seconds / 1e6
}

// DecodeSegment decodes one segment progressively, the way the paper's
// single-segment GPU decoder works (Sec. 4.2.2): coded blocks arrive one at
// a time; every SM holds a private copy of the coefficient columns plus a
// 1/SMs partition of the payload columns, and performs Gauss–Jordan row
// operations on its aggregate [C | x_i] slice, synchronizing block-wide to
// locate each pivot. Parallelism is limited to one arriving block — the
// bottleneck the multi-segment decoder removes.
func (d *Device) DecodeSegment(blocks []*rlnc.CodedBlock, p rlnc.Params, opts *DecodeOptions) (*DecodeResult, error) {
	if opts == nil {
		opts = &DecodeOptions{}
	}
	if opts.AtomicMin && !d.spec.HasSharedAtomics {
		return nil, fmt.Errorf("%w: %s", ErrAtomicsUnsupported, d.spec.Name)
	}
	if opts.CacheCoefficients && p.BlockCount > 128 {
		return nil, fmt.Errorf("%w: n=%d > 128", ErrCoeffCacheTooLarge, p.BlockCount)
	}

	// ---- Functional execution with rank tracking ----
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		return nil, err
	}
	totalRowOps := 0.0
	arrivals := 0
	for _, b := range blocks {
		rank := dec.Rank()
		innovative, err := dec.AddBlock(b)
		if err != nil {
			return nil, err
		}
		arrivals++
		// Row operations this arrival triggers: forward elimination against
		// each held pivot, one normalization if innovative, and
		// back-substitution into each held row (Sec. 3 / Sec. 4.2.2).
		totalRowOps += float64(rank)
		if innovative {
			totalRowOps += 1 + float64(rank)
		}
		if dec.Ready() {
			break
		}
	}
	if !dec.Ready() {
		return nil, fmt.Errorf("gpu: %w: rank %d of %d after %d blocks",
			rlnc.ErrRankDeficient, dec.Rank(), p.BlockCount, len(blocks))
	}
	seg, err := dec.Segment()
	if err != nil {
		return nil, err
	}

	// ---- Cost accounting ----
	startStats, startSeconds := d.stats, d.seconds
	d.chargeDecode(p, totalRowOps, float64(arrivals), opts)
	delta := d.stats
	deltaSub(&delta, startStats)

	return &DecodeResult{
		Segment:      seg,
		Seconds:      d.seconds - startSeconds,
		DecodedBytes: int64(p.SegmentSize()),
		Innovative:   dec.Rank(),
		Dependent:    dec.Dependent(),
		Stats:        delta,
	}, nil
}

// chargeDecode accounts the single-segment decode: one thread block per SM,
// each owning n coefficient columns (duplicated) plus k/SMs payload columns
// (Fig. 3).
func (d *Device) chargeDecode(p rlnc.Params, rowOps, arrivals float64, opts *DecodeOptions) {
	spec, model := d.spec, d.model
	n, k := p.BlockCount, p.BlockSize
	sms := float64(spec.SMs)

	rowWidth := float64(n) + float64(k)/sms // aggregate bytes per SM per row
	words := rowWidth / 4
	threads := int(words + 0.999)
	if threads < 1 {
		threads = 1
	}
	warps := float64((threads + spec.WarpSize - 1) / spec.WarpSize)

	// Issue slots: every SM executes the same row-operation chain over its
	// own partition. Loop-based word multiply at the random-coefficient
	// average of 7 iterations, plus fixed row-op overhead per word.
	wordMulSlots := 7*model.lbIterSlots + model.lbFixedSlots + model.decRowOpFixedSlots
	perSMSlots := rowOps*words*wordMulSlots + arrivals*float64(threads)*model.decArrivalSlots

	cost := kernelCost{
		launches:      arrivals, // one kernel launch per arriving coded block
		slots:         perSMSlots * sms,
		busySMs:       sms,
		warpsPerSM:    warps,
		latencyEvents: rowOps + arrivals, // dependent row loads per SM chain
		syncs:         arrivals*model.decSyncsPerArrival + rowOps*model.decSyncsPerRowOp,
		globalBytes:   rowOps * rowWidth * 2 * sms,
	}

	scale := 1.0
	if opts.AtomicMin {
		scale *= 1 - model.atomicMinSpeedup
	}
	if opts.CacheCoefficients {
		// Saving scales with the coefficient columns' share of each row —
		// the data the cache removes from global memory. Cached rows also
		// shed their global round-trips, so exposed latency shrinks by the
		// same share.
		weight := float64(n) / rowWidth
		s := 1 - model.coeffCacheMax*weight
		scale *= s
		cost.latencyEvents *= s
		cost.globalBytes -= rowOps * float64(n) * 2 * sms * 0.9
	}
	cost.slots *= scale
	cost.syncs *= scale
	d.charge(cost)
}

// EstimateDecodeSegment charges the cost of decoding one full segment from
// a dense full-rank arrival sequence at p, without functional execution —
// the planning API behind large figure sweeps. Dense random coded blocks
// are innovative with probability ≥ 1−2⁻⁸ per arrival, so the row-operation
// count is the deterministic Σⱼ(2j−1) = n²; tests assert agreement with the
// functional path.
func (d *Device) EstimateDecodeSegment(p rlnc.Params, opts *DecodeOptions) (*DecodeResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &DecodeOptions{}
	}
	if opts.AtomicMin && !d.spec.HasSharedAtomics {
		return nil, fmt.Errorf("%w: %s", ErrAtomicsUnsupported, d.spec.Name)
	}
	if opts.CacheCoefficients && p.BlockCount > 128 {
		return nil, fmt.Errorf("%w: n=%d > 128", ErrCoeffCacheTooLarge, p.BlockCount)
	}
	n := float64(p.BlockCount)
	startStats, startSeconds := d.stats, d.seconds
	d.chargeDecode(p, n*n, n, opts)
	delta := d.stats
	deltaSub(&delta, startStats)
	return &DecodeResult{
		Seconds:      d.seconds - startSeconds,
		DecodedBytes: int64(p.SegmentSize()),
		Innovative:   p.BlockCount,
		Stats:        delta,
	}, nil
}
