package gpu

import (
	"bytes"
	"errors"
	"fmt"

	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

// ErrOutOfMemory reports global-memory exhaustion on the simulated device.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Stats accumulates the simulator's micro-architectural event counts.
type Stats struct {
	Kernels        int64   // kernel launches
	IssueSlots     float64 // thread-instructions issued
	GlobalBytes    float64 // bytes moved to/from global memory by kernels
	SharedAccesses float64 // shared-memory accesses
	BankConflicts  float64 // extra serialized shared-memory rounds
	TextureReads   float64
	TextureMisses  float64
	Syncs          float64 // __syncthreads barriers executed
	HostCopyBytes  float64 // bytes moved over the host interface
}

func (s *Stats) add(o Stats) {
	s.Kernels += o.Kernels
	s.IssueSlots += o.IssueSlots
	s.GlobalBytes += o.GlobalBytes
	s.SharedAccesses += o.SharedAccesses
	s.BankConflicts += o.BankConflicts
	s.TextureReads += o.TextureReads
	s.TextureMisses += o.TextureMisses
	s.Syncs += o.Syncs
	s.HostCopyBytes += o.HostCopyBytes
}

// Device is a simulated GPU: a spec, a global-memory arena, an accumulated
// simulated clock and event statistics. A Device is not safe for concurrent
// use; create one per goroutine.
type Device struct {
	spec  DeviceSpec
	model costModel

	allocated int64
	seconds   float64
	stats     Stats
}

// NewDevice creates a device from a spec with the default cost model.
func NewDevice(spec DeviceSpec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Device{spec: spec, model: defaultCostModel()}, nil
}

// Spec returns the device's hardware description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Elapsed returns the simulated seconds consumed so far.
func (d *Device) Elapsed() float64 { return d.seconds }

// Stats returns a copy of the accumulated event counters.
func (d *Device) Stats() Stats { return d.stats }

// Reset clears the simulated clock and statistics (allocations persist,
// mirroring resident GPU buffers).
func (d *Device) Reset() {
	d.seconds = 0
	d.stats = Stats{}
}

// Buffer is a region of simulated device global memory.
type Buffer struct {
	dev  *Device
	data []byte
}

// Alloc reserves size bytes of device global memory.
func (d *Device) Alloc(size int) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d", size)
	}
	if d.allocated+int64(size) > d.spec.GlobalMemBytes {
		return nil, fmt.Errorf("%w: %d bytes requested, %d free",
			ErrOutOfMemory, size, d.spec.GlobalMemBytes-d.allocated)
	}
	d.allocated += int64(size)
	return &Buffer{dev: d, data: make([]byte, size)}, nil
}

// Free releases the buffer's reservation.
func (b *Buffer) Free() {
	if b.data != nil {
		b.dev.allocated -= int64(len(b.data))
		b.data = nil
	}
}

// Size returns the buffer length in bytes.
func (b *Buffer) Size() int { return len(b.data) }

// Bytes exposes the simulated device memory to kernels (package-internal
// callers and tests).
func (b *Buffer) Bytes() []byte { return b.data }

// hostCopyGBps is the effective host↔device transfer rate (PCIe 2.0 x16 in
// the paper's era, ~5 GB/s effective).
const hostCopyGBps = 5.0

// CopyToDevice transfers host bytes into the buffer, charging host-interface
// time. The paper keeps media segments resident in the 1 GB of GPU memory so
// this cost is off the coding path (Sec. 5.1.1).
func (b *Buffer) CopyToDevice(src []byte) error {
	if len(src) > len(b.data) {
		return fmt.Errorf("gpu: copy of %d bytes into %d-byte buffer", len(src), len(b.data))
	}
	copy(b.data, src)
	b.dev.chargeHostCopy(len(src))
	return nil
}

// CopyToHost transfers the buffer's first len(dst) bytes back to the host.
func (b *Buffer) CopyToHost(dst []byte) error {
	if len(dst) > len(b.data) {
		return fmt.Errorf("gpu: copy of %d bytes from %d-byte buffer", len(dst), len(b.data))
	}
	copy(dst, b.data)
	b.dev.chargeHostCopy(len(dst))
	return nil
}

func (d *Device) chargeHostCopy(bytes int) {
	d.seconds += float64(bytes) / (hostCopyGBps * 1e9)
	d.stats.HostCopyBytes += float64(bytes)
}

// charge converts a kernel's accounted events into simulated time.
func (d *Device) charge(k kernelCost) {
	d.stats.add(k.stats())
	d.seconds += k.seconds(d.spec, d.model)
}

// ResidentSegment is a media segment staged in device global memory — the
// paper's streaming-server deployment keeps segments resident so coded
// blocks can be generated "per request from the downstream peers" without
// host transfers (Sec. 5.1.2: "1024 MB memory on the GTX 280 is able to
// easily accommodate hundreds of such segments").
type ResidentSegment struct {
	seg *rlnc.Segment
	buf *Buffer
}

// LoadSegment allocates device memory for seg and copies it over, charging
// the host-interface transfer once.
func (d *Device) LoadSegment(seg *rlnc.Segment) (*ResidentSegment, error) {
	buf, err := d.Alloc(seg.Params().SegmentSize())
	if err != nil {
		return nil, err
	}
	if err := buf.CopyToDevice(seg.Data()); err != nil {
		buf.Free()
		return nil, err
	}
	return &ResidentSegment{seg: seg, buf: buf}, nil
}

// Segment returns the staged segment.
func (rs *ResidentSegment) Segment() *rlnc.Segment { return rs.seg }

// Free releases the device memory.
func (rs *ResidentSegment) Free() {
	if rs.buf != nil {
		rs.buf.Free()
		rs.buf = nil
	}
}

// EncodeResident encodes from a device-resident segment: identical to
// EncodeSegment but guaranteed to operate on the staged bytes (verified
// against the device buffer) with no further host transfers.
func (d *Device) EncodeResident(rs *ResidentSegment, coeffs *matrix.Matrix, scheme Scheme, opts *EncodeOptions) (*EncodeResult, error) {
	if rs == nil || rs.buf == nil {
		return nil, fmt.Errorf("gpu: segment not resident")
	}
	if !bytes.Equal(rs.buf.Bytes(), rs.seg.Data()) {
		return nil, fmt.Errorf("gpu: resident segment diverged from device memory")
	}
	return d.EncodeSegment(rs.seg, coeffs, scheme, opts)
}
