package gpu

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"extremenc/internal/gf256"
	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

// Scheme identifies a GF(2^8) multiplication kernel for GPU network coding
// (paper Secs. 4–5).
type Scheme int

const (
	// LoopBased is the Nuclei kernel: on-the-fly "hand multiplication" in
	// Rijndael's field, ~7 data-dependent iterations per multiply.
	LoopBased Scheme = iota + 1
	// TableBased0 holds log/exp tables in shared memory but multiplies raw
	// operands (three lookups per byte) — the pre-optimization table scheme
	// that loses to LoopBased by ~26%.
	TableBased0
	// TableBased1 preprocesses source blocks and coefficients into the log
	// domain once per segment, halving lookups (Sec. 5.1.2).
	TableBased1
	// TableBased2 merges the four per-byte zero tests of a word into one
	// test on the coefficient.
	TableBased2
	// TableBased3 remaps log(0) to 0x00 so zero tests become predicated
	// register loads — no branches.
	TableBased3
	// TableBased4 serves the exp table from the texture cache.
	TableBased4
	// TableBased5 keeps 8 private word-width exp-table copies in shared
	// memory, confining each thread to its own bank pair — the paper's best
	// scheme (294 MB/s at n=128, 2.2× LoopBased).
	TableBased5
)

// Schemes lists all encode schemes in the paper's Fig. 7 ladder order.
func Schemes() []Scheme {
	return []Scheme{TableBased0, LoopBased, TableBased1, TableBased2, TableBased3, TableBased4, TableBased5}
}

func (s Scheme) String() string {
	switch s {
	case LoopBased:
		return "loop-based"
	case TableBased0, TableBased1, TableBased2, TableBased3, TableBased4, TableBased5:
		return fmt.Sprintf("table-based-%d", s.tableIndex())
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// tableIndex returns the TB-i index; -1 for non-table schemes.
func (s Scheme) tableIndex() int {
	if s >= TableBased0 && s <= TableBased5 {
		return int(s - TableBased0)
	}
	return -1
}

// preprocessed reports whether the scheme works on log-domain operands.
func (s Scheme) preprocessed() bool { return s >= TableBased1 }

// remapped reports whether the scheme uses the zero-remapped tables.
func (s Scheme) remapped() bool { return s >= TableBased3 }

// ErrSchemeUnknown reports an unrecognized scheme value.
var ErrSchemeUnknown = errors.New("gpu: unknown scheme")

func (s Scheme) validate() error {
	if s < LoopBased || s > TableBased5 {
		return fmt.Errorf("%w: %d", ErrSchemeUnknown, int(s))
	}
	return nil
}

// EncodeOptions tunes an EncodeSegment call.
type EncodeOptions struct {
	// Materialize caps how many coded blocks are actually computed and
	// returned; the remainder is accounted in time and statistics only.
	// Zero materializes every block. Experiments use small values to sweep
	// large configurations quickly; correctness is unaffected because the
	// materialized blocks are verified against the host codec.
	Materialize int

	// DummyInput reproduces the paper's final encoding benchmark: inputs
	// are synthesized in registers, so no global-memory traffic is charged
	// (Sec. 5.1.3, "A benchmark that generates dummy input data...").
	DummyInput bool
}

// EncodeResult reports a simulated encode: the coded blocks produced, the
// simulated time, and the event statistics of the launch(es).
type EncodeResult struct {
	Blocks  []*rlnc.CodedBlock
	Seconds float64
	Bytes   int64 // coded bytes accounted: rows × block size
	Stats   Stats
}

// BandwidthMBps returns the encoding bandwidth in the paper's units (total
// coded bytes per second / 1e6).
func (r *EncodeResult) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Seconds / 1e6
}

// EncodeSegment generates one coded block per row of coeffs from seg using
// the given kernel scheme, charging simulated time to the device.
//
// Functionally, payloads are exact: materialized blocks are computed with
// the host field routines, and the first block is recomputed with the
// scheme's literal arithmetic path (log-domain lookups, remapped tables, …)
// and compared byte-for-byte, so a table bug cannot hide behind the cost
// model.
func (d *Device) EncodeSegment(seg *rlnc.Segment, coeffs *matrix.Matrix, scheme Scheme, opts *EncodeOptions) (*EncodeResult, error) {
	if err := scheme.validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &EncodeOptions{}
	}
	p := seg.Params()
	n, k := p.BlockCount, p.BlockSize
	if coeffs.Cols() != n {
		return nil, fmt.Errorf("gpu: coefficient matrix has %d columns, want %d", coeffs.Cols(), n)
	}
	m := coeffs.Rows()
	if m == 0 {
		return nil, fmt.Errorf("gpu: empty coefficient matrix")
	}

	materialize := m
	if opts.Materialize > 0 && opts.Materialize < m {
		materialize = opts.Materialize
	}

	// ---- Functional execution ----
	blocks := make([]*rlnc.CodedBlock, materialize)
	for i := range blocks {
		payload := make([]byte, k)
		rlnc.EncodeInto(payload, seg, coeffs.Row(i))
		blocks[i] = &rlnc.CodedBlock{
			SegmentID: seg.ID(),
			Coeffs:    append([]byte(nil), coeffs.Row(i)...),
			Payload:   payload,
		}
	}
	if err := verifySchemeRow(blocks[0].Payload, seg, coeffs.Row(0), scheme); err != nil {
		return nil, err
	}

	// ---- Cost accounting ----
	startStats, startSeconds := d.stats, d.seconds
	sampleRows := coeffs.Row(0)
	d.chargeEncode(seg, coeffs, scheme, opts.DummyInput, [][]byte{sampleRows})

	delta := d.stats
	deltaSub(&delta, startStats)
	return &EncodeResult{
		Blocks:  blocks,
		Seconds: d.seconds - startSeconds,
		Bytes:   int64(m) * int64(k),
		Stats:   delta,
	}, nil
}

func deltaSub(s *Stats, start Stats) {
	s.Kernels -= start.Kernels
	s.IssueSlots -= start.IssueSlots
	s.GlobalBytes -= start.GlobalBytes
	s.SharedAccesses -= start.SharedAccesses
	s.BankConflicts -= start.BankConflicts
	s.TextureReads -= start.TextureReads
	s.TextureMisses -= start.TextureMisses
	s.Syncs -= start.Syncs
	s.HostCopyBytes -= start.HostCopyBytes
}

// chargeEncode accounts the preprocessing (if any) and main encode launches.
func (d *Device) chargeEncode(seg *rlnc.Segment, coeffs *matrix.Matrix, scheme Scheme, dummyInput bool, sampleCoeffs [][]byte) {
	spec, model := d.spec, d.model
	p := seg.Params()
	n, k := p.BlockCount, p.BlockSize
	m := coeffs.Rows()
	words := (k + 3) / 4
	totalWords := float64(m) * float64(words)

	// Preprocessing launch: transform the segment (and coefficient matrix)
	// into the log domain once (Sec. 5.1.2 steps 1–2). Charged per segment,
	// so it amortizes over every block later generated from it.
	if scheme.preprocessed() {
		preThreads := float64(n) * float64(words)
		pre := kernelCost{
			launches:    1,
			slots:       preThreads*model.preprocWordSlots + float64(m*n)*2,
			globalBytes: float64(2*n*k + 2*m*n),
		}
		occ := computeOccupancy(spec, (n*words+255)/256, 256, 0)
		pre.busySMs, pre.warpsPerSM = occ.busySMs, occ.warpsPerSM
		d.charge(pre)
	}

	// Density: zero coefficients are predicated off in every kernel, so
	// sparser matrices code faster ("the performance will be even higher
	// with sparser matrices", Sec. 4.3) — both the multiply work and the
	// source-word loads scale with the non-zero fraction.
	nnzFrac := nonZeroFraction(coeffs)

	// Main launch: one thread per 4-byte output word (Fig. 2 partitioning).
	perWordSlots, access := d.encodeRowCost(seg, coeffs, scheme, sampleCoeffs, nnzFrac)

	threadsPerBlock := 256
	if words < threadsPerBlock {
		threadsPerBlock = words
	}
	blocksPerRow := (words + threadsPerBlock - 1) / threadsPerBlock
	gridBlocks := m * blocksPerRow
	sharedPerBlock := schemeSharedBytes(scheme)
	occ := computeOccupancy(spec, gridBlocks, threadsPerBlock, sharedPerBlock)

	main := kernelCost{
		launches:       1,
		slots:          totalWords*perWordSlots + totalWords*model.encOutWordSlots,
		busySMs:        occ.busySMs,
		warpsPerSM:     occ.warpsPerSM,
		latencyEvents:  float64(n), // dependent source loads along one thread's chain
		syncs:          syncsPerEncodeBlock(scheme),
		sharedAccesses: access.sharedAccesses * totalWords,
		bankConflicts:  access.bankConflicts * totalWords,
		texReads:       access.texReads * totalWords,
		texMisses:      access.texMisses * totalWords,
	}
	if !dummyInput {
		// Per generated word: n coefficient bytes (broadcast), source words
		// for the non-zero terms, one output word (the paper's 5n+4 bytes
		// at full density, Sec. 4.3).
		main.globalBytes = totalWords * (float64(n) + 4*float64(n)*nnzFrac + 4)
	}
	d.charge(main)
}

// accessProfile is the per-word-multiply table-access accounting measured on
// sampled real data.
type accessProfile struct {
	sharedAccesses float64
	bankConflicts  float64
	texReads       float64
	texMisses      float64
}

// skippedCoeffSlots is the predicated cost of a zero coefficient: load and
// test, no multiply.
const skippedCoeffSlots = 2.0

// nonZeroFraction returns the fraction of non-zero entries in the
// coefficient matrix.
func nonZeroFraction(coeffs *matrix.Matrix) float64 {
	m, n := coeffs.Rows(), coeffs.Cols()
	if m == 0 || n == 0 {
		return 1
	}
	nnz := 0
	for r := 0; r < m; r++ {
		for _, c := range coeffs.Row(r) {
			if c != 0 {
				nnz++
			}
		}
	}
	return float64(nnz) / float64(m*n)
}

// encodeRowCost returns the issue slots per output word (summed over the
// coefficient row, averaged across rows) and the per-word access profile.
func (d *Device) encodeRowCost(seg *rlnc.Segment, coeffs *matrix.Matrix, scheme Scheme, sampleCoeffs [][]byte, nnzFrac float64) (float64, accessProfile) {
	model := d.model
	m, n := coeffs.Rows(), coeffs.Cols()

	if scheme == LoopBased {
		// Data-dependent: count the real iteration totals over every
		// coefficient the kernel will consume (zero coefficients run zero
		// iterations — sparsity is inherent here).
		totalIters := 0.0
		for r := 0; r < m; r++ {
			for _, c := range coeffs.Row(r) {
				totalIters += float64(gf256.LoopIterations(c))
			}
		}
		avgItersPerRow := totalIters / float64(m)
		return avgItersPerRow*model.lbIterSlots + float64(n)*model.lbFixedSlots, accessProfile{}
	}

	ti := scheme.tableIndex()
	base := model.tbBaseSlots[ti]
	var prof accessProfile
	slots := base

	if sr := model.tbSharedReads[ti]; sr > 0 {
		rounds, _, _ := conflictSample(seg, sampleCoeffs, classicBankMap(d.spec), d.spec, 256)
		slots += sr * rounds
		prof.sharedAccesses = sr * nnzFrac
		prof.bankConflicts = sr * (rounds - 1) * nnzFrac
	}
	if rr := model.tbReplReads[ti]; rr > 0 {
		rounds, _, _ := conflictSample(seg, sampleCoeffs, replicatedBankMap(d.spec), d.spec, 256)
		slots += rr * rounds
		prof.sharedAccesses += rr * nnzFrac
		prof.bankConflicts += rr * (rounds - 1) * nnzFrac
	}
	if tr := model.tbTexReads[ti]; tr > 0 {
		hitRate := textureHitRate(seg, sampleCoeffs, d.spec, 2048)
		slots += tr * (hitRate*model.texHitSlots + (1-hitRate)*model.texMissSlots)
		prof.texReads = tr * nnzFrac
		prof.texMisses = tr * (1 - hitRate) * nnzFrac
	}
	// slots so far are per word-multiply; a row pays the full cost for its
	// non-zero coefficients and a predicated skip for the rest.
	perRow := slots*float64(n)*nnzFrac + skippedCoeffSlots*float64(n)*(1-nnzFrac)
	return perRow, prof
}

// schemeSharedBytes returns the shared memory a thread block reserves for
// tables under each scheme. TB-5's eight word-width 512-entry exp copies
// consume the entire 16 KB, forcing one resident block per SM (Sec. 5.1.3).
func schemeSharedBytes(scheme Scheme) int {
	switch scheme {
	case LoopBased:
		return 0
	case TableBased4:
		return 256 + 64 // log table stays shared; exp moves to texture
	case TableBased5:
		return 8*512*4 - 256 // eight word-width exp copies, minus kernel-arg reserve
	default:
		return 256 + 512 + 64 // log + exp byte tables + parameters
	}
}

// syncsPerEncodeBlock returns barrier count per thread block: table-based
// kernels synchronize once after cooperatively loading the tables.
func syncsPerEncodeBlock(scheme Scheme) float64 {
	if scheme == LoopBased {
		return 0
	}
	return 1
}

// verifyPrefixBytes caps how much of the verification payload is recomputed
// with the scheme's literal (byte-at-a-time) arithmetic. A multi-KiB prefix
// across all n coefficients exercises every table path; the remainder is
// covered by the fast reference computation.
const verifyPrefixBytes = 4096

// verifySchemeRow recomputes one coded payload prefix with the scheme's
// literal arithmetic path and compares it to the reference payload.
func verifySchemeRow(want []byte, seg *rlnc.Segment, coeffs []byte, scheme Scheme) error {
	k := seg.Params().BlockSize
	if k > verifyPrefixBytes {
		k = verifyPrefixBytes
	}
	want = want[:k]
	got := make([]byte, k)

	switch {
	case scheme == LoopBased:
		for i, c := range coeffs {
			if c == 0 {
				continue
			}
			src := seg.Block(i)
			for j := 0; j < k; j++ {
				got[j] ^= gf256.MulLoop(c, src[j])
			}
		}
	case scheme == TableBased0:
		for i, c := range coeffs {
			if c == 0 {
				continue
			}
			src := seg.Block(i)
			for j := 0; j < k; j++ {
				got[j] ^= gf256.Mul(c, src[j])
			}
		}
	case scheme.remapped():
		logSrc := make([]uint16, k)
		logCoeffs := make([]uint16, len(coeffs))
		gf256.ToLogRemapped(logCoeffs, coeffs)
		for i := range coeffs {
			gf256.ToLogRemapped(logSrc, seg.Block(i)[:k])
			lc := logCoeffs[i]
			for j := 0; j < k; j++ {
				got[j] ^= gf256.MulPreRemapped(lc, logSrc[j])
			}
		}
	default: // TB-1, TB-2: classic log-domain preprocessing
		logSrc := make([]byte, k)
		logCoeffs := make([]byte, len(coeffs))
		gf256.ToLog(logCoeffs, coeffs)
		for i := range coeffs {
			gf256.ToLog(logSrc, seg.Block(i)[:k])
			lc := logCoeffs[i]
			for j := 0; j < k; j++ {
				got[j] ^= gf256.MulPre(lc, logSrc[j])
			}
		}
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("gpu: scheme %v arithmetic diverges from reference codec", scheme)
	}
	return nil
}

// RecodeBlocks generates fresh random combinations of previously received
// coded blocks on the device — the relay-side operation that defines
// network coding ("the coding capabilities of intermediate nodes", Sec. 1).
// Computationally it is an encode whose source rows are the received
// payloads and whose output coefficients are re-expressed over the original
// blocks, so it reuses the encode kernels and cost model with n =
// len(received).
func (d *Device) RecodeBlocks(received []*rlnc.CodedBlock, count int, scheme Scheme, opts *EncodeOptions) (*EncodeResult, error) {
	if len(received) == 0 {
		return nil, fmt.Errorf("gpu: no blocks to recode")
	}
	if count <= 0 {
		return nil, fmt.Errorf("gpu: recode count %d must be positive", count)
	}
	inner := rlnc.Params{BlockCount: len(received), BlockSize: len(received[0].Payload)}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	// Stage the received payloads as the kernel's source rows.
	work, err := rlnc.NewSegment(received[0].SegmentID, inner)
	if err != nil {
		return nil, err
	}
	for i, b := range received {
		if len(b.Payload) != inner.BlockSize {
			return nil, fmt.Errorf("gpu: recode input %d has %d payload bytes, want %d",
				i, len(b.Payload), inner.BlockSize)
		}
		if b.SegmentID != received[0].SegmentID {
			return nil, fmt.Errorf("gpu: recode inputs span segments %d and %d",
				received[0].SegmentID, b.SegmentID)
		}
		copy(work.Block(i), b.Payload)
	}
	mix := matrix.New(count, inner.BlockCount)
	rng := rand.New(rand.NewSource(int64(received[0].SegmentID)*7919 + int64(count)))
	for r := 0; r < count; r++ {
		row := mix.Row(r)
		for i := range row {
			row[i] = byte(1 + rng.Intn(255))
		}
	}
	res, err := d.EncodeSegment(work, mix, scheme, opts)
	if err != nil {
		return nil, err
	}
	// Re-express each output's coefficients over the ORIGINAL source blocks
	// so downstream decoders are oblivious to the recoding hop.
	n := len(received[0].Coeffs)
	for i, blk := range res.Blocks {
		coeffs := make([]byte, n)
		for j, f := range mix.Row(i) {
			gf256.MulAddSlice(coeffs, received[j].Coeffs, f)
		}
		blk.Coeffs = coeffs
	}
	return res, nil
}
