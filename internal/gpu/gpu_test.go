package gpu

import (
	"errors"
	"math/rand"
	"testing"

	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

func newGTX280(t testing.TB) *Device {
	t.Helper()
	d, err := NewDevice(GTX280())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randomSegment(t testing.TB, p rlnc.Params, seed int64) *rlnc.Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, p.SegmentSize())
	rng.Read(data)
	seg, err := rlnc.SegmentFromData(0, p, data)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func denseCoeffs(rows, cols int, seed int64) *matrix.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.New(rows, cols)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		for i := range row {
			row[i] = byte(1 + rng.Intn(255))
		}
	}
	return m
}

func TestSpecValidate(t *testing.T) {
	for _, spec := range []DeviceSpec{GTX280(), GeForce8800GT()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	bad := GTX280()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-SM spec validated")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Error("NewDevice accepted invalid spec")
	}
}

func TestSpecDerived(t *testing.T) {
	spec := GTX280()
	if spec.Cores() != 240 {
		t.Errorf("GTX280 cores = %d, want 240", spec.Cores())
	}
	if got := spec.IssueSlotsPerSecond(); got < 300e9 || got > 400e9 {
		t.Errorf("issue rate = %g, want ≈350e9", got)
	}
	if GeForce8800GT().Cores() != 112 {
		t.Errorf("8800GT cores = %d, want 112", GeForce8800GT().Cores())
	}
}

func TestDeviceMemory(t *testing.T) {
	d := newGTX280(t)
	b, err := d.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 1<<20 {
		t.Fatalf("size = %d", b.Size())
	}
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	if err := b.CopyToDevice(src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	if err := b.CopyToHost(dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("device copy corrupted data")
		}
	}
	if d.Elapsed() <= 0 {
		t.Fatal("host copies charged no time")
	}
	if d.Stats().HostCopyBytes != 8192 {
		t.Fatalf("host copy bytes = %v", d.Stats().HostCopyBytes)
	}
	b.Free()
	b.Free() // double free is a no-op

	if _, err := d.Alloc(int(GTX280().GlobalMemBytes) + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized alloc err = %v", err)
	}
	if _, err := d.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if err := b.CopyToDevice(src); err == nil {
		t.Fatal("copy into freed buffer accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes() {
		if s.String() == "" {
			t.Errorf("scheme %d has empty name", int(s))
		}
	}
	if LoopBased.String() != "loop-based" || TableBased5.String() != "table-based-5" {
		t.Error("scheme names wrong")
	}
	if Scheme(0).validate() == nil || Scheme(99).validate() == nil {
		t.Error("invalid schemes validated")
	}
}

// TestEncodeFunctionalAllSchemes verifies that every scheme produces blocks
// identical to the host codec and decodable back to the source.
func TestEncodeFunctionalAllSchemes(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	seg := randomSegment(t, p, 1)
	coeffs := denseCoeffs(p.BlockCount+2, p.BlockCount, 2)

	for _, scheme := range Schemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			d := newGTX280(t)
			res, err := d.EncodeSegment(seg, coeffs, scheme, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Blocks) != coeffs.Rows() {
				t.Fatalf("blocks = %d, want %d", len(res.Blocks), coeffs.Rows())
			}
			if res.Seconds <= 0 || res.BandwidthMBps() <= 0 {
				t.Fatalf("non-positive time/bandwidth: %v s", res.Seconds)
			}
			dec, err := rlnc.NewDecoder(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range res.Blocks {
				if _, err := dec.AddBlock(b); err != nil {
					t.Fatal(err)
				}
			}
			got, err := dec.Segment()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(seg) {
				t.Fatal("decoded segment differs from source")
			}
		})
	}
}

func TestEncodeMaterializeSubset(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	seg := randomSegment(t, p, 3)
	coeffs := denseCoeffs(64, p.BlockCount, 4)
	d := newGTX280(t)
	res, err := d.EncodeSegment(seg, coeffs, TableBased5, &EncodeOptions{Materialize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 3 {
		t.Fatalf("materialized %d blocks, want 3", len(res.Blocks))
	}
	if res.Bytes != int64(64*p.BlockSize) {
		t.Fatalf("accounted bytes = %d, want full batch", res.Bytes)
	}
}

func TestEncodeValidation(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	seg := randomSegment(t, p, 5)
	d := newGTX280(t)
	if _, err := d.EncodeSegment(seg, denseCoeffs(4, 7, 6), LoopBased, nil); err == nil {
		t.Fatal("column-mismatched coefficients accepted")
	}
	if _, err := d.EncodeSegment(seg, matrix.New(0, 8), LoopBased, nil); err == nil {
		t.Fatal("empty coefficient matrix accepted")
	}
	if _, err := d.EncodeSegment(seg, denseCoeffs(4, 8, 7), Scheme(42), nil); !errors.Is(err, ErrSchemeUnknown) {
		t.Fatal("unknown scheme accepted")
	}
}

func TestEncodeDummyInputFaster(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(t, p, 8)
	coeffs := denseCoeffs(128, p.BlockCount, 9)

	d1 := newGTX280(t)
	real, err := d1.EncodeSegment(seg, coeffs, TableBased5, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2 := newGTX280(t)
	dummy, err := d2.EncodeSegment(seg, coeffs, TableBased5, &EncodeOptions{Materialize: 1, DummyInput: true})
	if err != nil {
		t.Fatal(err)
	}
	gain := real.Seconds/dummy.Seconds - 1
	if gain < 0 {
		t.Fatalf("dummy input slower than real input (gain %.2f%%)", gain*100)
	}
	// Paper: only ≈0.5% — memory accesses are almost perfectly hidden.
	if gain > 0.05 {
		t.Fatalf("dummy-input gain %.2f%%, want < 5%% (memory should be hidden)", gain*100)
	}
	if dummy.Stats.GlobalBytes >= real.Stats.GlobalBytes {
		t.Fatal("dummy input still charged global traffic")
	}
}

func TestDecodeSegmentFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 512}
	seg := randomSegment(t, p, 10)
	rng := rand.New(rand.NewSource(11))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, p.BlockCount+2)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	d := newGTX280(t)
	res, err := d.DecodeSegment(blocks, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Segment.Equal(seg) {
		t.Fatal("decoded segment differs")
	}
	if res.Seconds <= 0 || res.DecodedBytes != int64(p.SegmentSize()) {
		t.Fatalf("bad accounting: %v s, %d bytes", res.Seconds, res.DecodedBytes)
	}
	if res.Innovative != p.BlockCount {
		t.Fatalf("innovative = %d", res.Innovative)
	}
}

func TestDecodeSegmentRankDeficient(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	seg := randomSegment(t, p, 12)
	rng := rand.New(rand.NewSource(13))
	b := rlnc.NewEncoder(seg, rng).NextBlock()
	d := newGTX280(t)
	if _, err := d.DecodeSegment([]*rlnc.CodedBlock{b, b.Clone()}, p, nil); !errors.Is(err, rlnc.ErrRankDeficient) {
		t.Fatalf("err = %v, want ErrRankDeficient", err)
	}
}

func TestDecodeOptionsGates(t *testing.T) {
	p := rlnc.Params{BlockCount: 256, BlockSize: 64}
	seg := randomSegment(t, p, 14)
	rng := rand.New(rand.NewSource(15))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}

	gt8800, err := NewDevice(GeForce8800GT())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gt8800.DecodeSegment(blocks, p, &DecodeOptions{AtomicMin: true}); !errors.Is(err, ErrAtomicsUnsupported) {
		t.Fatalf("8800GT atomicMin err = %v", err)
	}
	d := newGTX280(t)
	if _, err := d.DecodeSegment(blocks, p, &DecodeOptions{CacheCoefficients: true}); !errors.Is(err, ErrCoeffCacheTooLarge) {
		t.Fatalf("n=256 coeff cache err = %v", err)
	}
}

func TestDecodeOptionSpeedups(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 512}
	seg := randomSegment(t, p, 16)
	rng := rand.New(rand.NewSource(17))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}
	base, err := newGTX280(t).DecodeSegment(blocks, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := newGTX280(t).DecodeSegment(blocks, p, &DecodeOptions{AtomicMin: true})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := newGTX280(t).DecodeSegment(blocks, p, &DecodeOptions{CacheCoefficients: true})
	if err != nil {
		t.Fatal(err)
	}
	aGain := base.Seconds/atomic.Seconds - 1
	if aGain <= 0 || aGain > 0.02 {
		t.Errorf("atomicMin gain = %.3f%%, want ≈0.6%%", aGain*100)
	}
	cGain := base.Seconds/cached.Seconds - 1
	if cGain <= 0 || cGain > 0.06 {
		t.Errorf("coeff cache gain = %.3f%%, want 0.5–3.4%%", cGain*100)
	}
}

func TestMultiSegmentFunctional(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	const segCount = 5
	rng := rand.New(rand.NewSource(18))
	segs := make([]*rlnc.Segment, segCount)
	sets := make([][]*rlnc.CodedBlock, segCount)
	for i := range segs {
		segs[i] = randomSegment(t, p, int64(20+i))
		enc := rlnc.NewEncoder(segs[i], rng)
		for j := 0; j < p.BlockCount+1; j++ {
			sets[i] = append(sets[i], enc.NextBlock())
		}
	}
	d := newGTX280(t)
	res, err := d.DecodeMultiSegment(sets, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != segCount {
		t.Fatalf("materialized %d segments", len(res.Segments))
	}
	for i, s := range res.Segments {
		if !s.Equal(segs[i]) {
			t.Fatalf("segment %d differs", i)
		}
	}
	if res.Stage1Seconds <= 0 || res.Stage2Seconds <= 0 {
		t.Fatal("stage times not accounted")
	}
	if share := res.Stage1Share(); share <= 0 || share >= 1 {
		t.Fatalf("stage-1 share = %v", share)
	}
	if res.DecodedBytes != int64(segCount*p.SegmentSize()) {
		t.Fatalf("decoded bytes = %d", res.DecodedBytes)
	}
}

func TestMultiSegmentValidation(t *testing.T) {
	d := newGTX280(t)
	p := rlnc.Params{BlockCount: 4, BlockSize: 16}
	if _, err := d.DecodeMultiSegment(nil, p, nil); err == nil {
		t.Fatal("empty set list accepted")
	}
	seg := randomSegment(t, p, 30)
	rng := rand.New(rand.NewSource(31))
	b := rlnc.NewEncoder(seg, rng).NextBlock()
	sets := [][]*rlnc.CodedBlock{{b}} // rank deficient
	if _, err := d.DecodeMultiSegment(sets, p, nil); !errors.Is(err, rlnc.ErrRankDeficient) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.DecodeMultiSegment(sets, p, &MultiSegmentOptions{StageTwoScheme: Scheme(9)}); !errors.Is(err, ErrSchemeUnknown) {
		t.Fatalf("bogus stage-2 scheme err = %v", err)
	}
}

func TestConflictRounds(t *testing.T) {
	cases := []struct {
		banks []int
		want  int
	}{
		{[]int{0, 1, 2, 3}, 1},
		{[]int{0, 0, 0, 0}, 4},
		{[]int{5, 5, 1, 2, 2, 2}, 3},
		{[]int{-1, -1}, 0},
		{[]int{-1, 7}, 1},
		{[]int{16, 0}, 2}, // wraps mod bankCount
	}
	for _, tc := range cases {
		if got := conflictRounds(tc.banks, 16); got != tc.want {
			t.Errorf("conflictRounds(%v) = %d, want %d", tc.banks, got, tc.want)
		}
	}
}

// TestConflictSampleLayouts verifies the replicated-table layout measurably
// reduces conflicts relative to the classic layout on the same data — the
// mechanism behind TB-5.
func TestConflictSampleLayouts(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 4096}
	seg := randomSegment(t, p, 40)
	coeffs := [][]byte{denseCoeffs(1, 16, 41).Row(0)}
	spec := GTX280()
	classic, _, _ := conflictSample(seg, coeffs, classicBankMap(spec), spec, 256)
	repl, _, _ := conflictSample(seg, coeffs, replicatedBankMap(spec), spec, 256)
	if classic < 2 || classic > 5 {
		t.Errorf("classic conflict rounds = %.2f, want ≈3 (paper Sec. 5.1.3)", classic)
	}
	if repl >= classic {
		t.Errorf("replicated layout rounds %.2f not better than classic %.2f", repl, classic)
	}
	if repl < 1 || repl > 2.3 {
		t.Errorf("replicated rounds = %.2f, want mostly conflict-free", repl)
	}
}

func TestTextureCache(t *testing.T) {
	c := newTexCache(1024, 32)
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(4) {
		t.Fatal("same-line access missed")
	}
	if !c.access(0) {
		t.Fatal("re-access missed")
	}
	p := rlnc.Params{BlockCount: 8, BlockSize: 2048}
	seg := randomSegment(t, p, 42)
	coeffs := [][]byte{denseCoeffs(1, 8, 43).Row(0)}
	rate := textureHitRate(seg, coeffs, GTX280(), 2048)
	if rate < 0.9 {
		t.Errorf("texture hit rate = %.3f; the tiny exp table should cache almost perfectly", rate)
	}
}

func TestExposureFactor(t *testing.T) {
	if exposureFactor(0, 16) != 1 {
		t.Error("zero warps should expose all latency")
	}
	if exposureFactor(16, 16) != 0 || exposureFactor(32, 16) != 0 {
		t.Error("ample warps should hide latency")
	}
	if f := exposureFactor(8, 16); f != 0.5 {
		t.Errorf("half occupancy exposure = %v", f)
	}
}

func TestComputeOccupancy(t *testing.T) {
	spec := GTX280()
	occ := computeOccupancy(spec, 1000, 256, 0)
	if occ.busySMs != 30 {
		t.Errorf("busy SMs = %v", occ.busySMs)
	}
	if occ.warpsPerSM != 32 { // 4 blocks × 8 warps
		t.Errorf("warps/SM = %v, want 32", occ.warpsPerSM)
	}
	// Shared memory limits residency: TB-5 style full-shared block.
	occ = computeOccupancy(spec, 1000, 256, spec.SharedMemPerSM)
	if occ.warpsPerSM != 8 {
		t.Errorf("full-shared warps/SM = %v, want 8", occ.warpsPerSM)
	}
	// Fewer blocks than SMs.
	occ = computeOccupancy(spec, 4, 64, 0)
	if occ.busySMs != 4 || occ.warpsPerSM != 2 {
		t.Errorf("small grid occupancy = %+v", occ)
	}
	occ = computeOccupancy(spec, 0, 0, 0)
	if occ.busySMs != 1 {
		t.Errorf("degenerate occupancy = %+v", occ)
	}
}

func TestResetClearsClock(t *testing.T) {
	d := newGTX280(t)
	p := rlnc.Params{BlockCount: 4, BlockSize: 64}
	seg := randomSegment(t, p, 50)
	if _, err := d.EncodeSegment(seg, denseCoeffs(4, 4, 51), LoopBased, nil); err != nil {
		t.Fatal(err)
	}
	if d.Elapsed() <= 0 {
		t.Fatal("no time charged")
	}
	d.Reset()
	if d.Elapsed() != 0 || d.Stats().Kernels != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// TestEstimateMatchesFunctionalDecode pins the cost-only planning APIs to
// the functional paths at matching parameters.
func TestEstimateMatchesFunctionalDecode(t *testing.T) {
	p := rlnc.Params{BlockCount: 24, BlockSize: 480}
	seg := randomSegment(t, p, 90)
	rng := rand.New(rand.NewSource(91))
	enc := rlnc.NewEncoder(seg, rng)
	blocks := make([]*rlnc.CodedBlock, p.BlockCount)
	for i := range blocks {
		blocks[i] = enc.NextBlock()
	}

	fun, err := newGTX280(t).DecodeSegment(blocks, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := newGTX280(t).EstimateDecodeSegment(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := fun.Seconds/est.Seconds - 1; rel < -0.02 || rel > 0.02 {
		t.Errorf("estimate diverges from functional decode by %.1f%%", rel*100)
	}

	sets := make([][]*rlnc.CodedBlock, 6)
	for i := range sets {
		sets[i] = blocks
	}
	funM, err := newGTX280(t).DecodeMultiSegment(sets, p, &MultiSegmentOptions{MaterializeSegments: 1})
	if err != nil {
		t.Fatal(err)
	}
	estM, err := newGTX280(t).EstimateMultiSegment(p, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := funM.Seconds/estM.Seconds - 1; rel < -0.1 || rel > 0.1 {
		t.Errorf("multi-segment estimate diverges by %.1f%%", rel*100)
	}
	if estM.Stage1Share() <= 0 {
		t.Error("estimate lost stage-1 share")
	}

	if _, err := newGTX280(t).EstimateMultiSegment(p, 0, nil); err == nil {
		t.Error("zero segments accepted")
	}
	if _, err := newGTX280(t).EstimateDecodeSegment(rlnc.Params{}, nil); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestDevicePresetScaling: encode rate tracks core count × clock across the
// Tesla-generation presets.
func TestDevicePresetScaling(t *testing.T) {
	p := rlnc.Params{BlockCount: 128, BlockSize: 4096}
	seg := randomSegment(t, p, 200)
	coeffs := denseCoeffs(512, 128, 201)
	rate := func(spec DeviceSpec) float64 {
		d, err := NewDevice(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.EncodeSegment(seg, coeffs, TableBased5, &EncodeOptions{Materialize: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	gtx280, gtx260, tesla := rate(GTX280()), rate(GTX260()), rate(TeslaC1060())
	if !(gtx280 > tesla && tesla > gtx260) {
		t.Errorf("preset ordering wrong: GTX280 %.1f, C1060 %.1f, GTX260 %.1f", gtx280, tesla, gtx260)
	}
	// Issue-rate ratio GTX280/GTX260 = (30·1458)/(24·1242) ≈ 1.47.
	if r := gtx280 / gtx260; r < 1.3 || r > 1.6 {
		t.Errorf("GTX280/GTX260 = %.2f, want ≈1.47", r)
	}
	for _, spec := range []DeviceSpec{GTX260(), TeslaC1060()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestResidentSegmentEncode(t *testing.T) {
	d := newGTX280(t)
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	seg := randomSegment(t, p, 300)
	rs, err := d.LoadSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Segment() != seg {
		t.Fatal("resident segment identity lost")
	}
	if d.Stats().HostCopyBytes != float64(p.SegmentSize()) {
		t.Fatalf("host copy bytes = %v", d.Stats().HostCopyBytes)
	}
	res, err := d.EncodeResident(rs, denseCoeffs(8, 8, 301), TableBased5, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Blocks {
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("resident encode differs")
	}
	rs.Free()
	if _, err := d.EncodeResident(rs, denseCoeffs(8, 8, 301), TableBased5, nil); err == nil {
		t.Fatal("encode from freed resident segment accepted")
	}
	if _, err := d.EncodeResident(nil, denseCoeffs(8, 8, 301), TableBased5, nil); err == nil {
		t.Fatal("nil resident segment accepted")
	}
}

// TestRecodeBlocksOnDevice: GPU-recoded blocks remain decodable and carry
// coefficients re-expressed over the original source.
func TestRecodeBlocksOnDevice(t *testing.T) {
	p := rlnc.Params{BlockCount: 12, BlockSize: 256}
	seg := randomSegment(t, p, 400)
	rng := rand.New(rand.NewSource(401))
	enc := rlnc.NewEncoder(seg, rng)
	received := make([]*rlnc.CodedBlock, p.BlockCount+1)
	for i := range received {
		received[i] = enc.NextBlock()
	}

	d := newGTX280(t)
	res, err := d.RecodeBlocks(received, p.BlockCount+2, TableBased5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatal("no time charged for recoding")
	}
	dec, err := rlnc.NewDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Blocks {
		if len(b.Coeffs) != p.BlockCount {
			t.Fatalf("recoded coefficients have length %d, want %d", len(b.Coeffs), p.BlockCount)
		}
		if _, err := dec.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Segment()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(seg) {
		t.Fatal("GPU-recoded stream decodes to wrong segment")
	}

	if _, err := d.RecodeBlocks(nil, 4, TableBased5, nil); err == nil {
		t.Fatal("empty recode input accepted")
	}
	if _, err := d.RecodeBlocks(received, 0, TableBased5, nil); err == nil {
		t.Fatal("zero recode count accepted")
	}
	short := []*rlnc.CodedBlock{received[0], {SegmentID: received[0].SegmentID, Coeffs: received[1].Coeffs, Payload: received[1].Payload[:8]}}
	if _, err := d.RecodeBlocks(short, 2, TableBased5, nil); err == nil {
		t.Fatal("ragged payloads accepted")
	}
	other := received[1].Clone()
	other.SegmentID = 99
	if _, err := d.RecodeBlocks([]*rlnc.CodedBlock{received[0], other}, 2, TableBased5, nil); err == nil {
		t.Fatal("cross-segment recode accepted")
	}
}

// TestCoalescing quantifies the Fig. 2 partitioning claim: word-per-thread
// assignment coalesces perfectly (16 accesses per transaction), while a
// chunk-per-thread assignment degrades to one transaction per thread.
func TestCoalescing(t *testing.T) {
	spec := GTX280()

	perfect := AnalyzeAccessPattern(spec, EncodeSourceAccessPattern(spec, 0))
	if perfect.Efficiency() != 16 {
		t.Errorf("word-per-thread efficiency = %.1f, want 16", perfect.Efficiency())
	}
	if perfect.Transactions != 2 { // one per half-warp
		t.Errorf("word-per-thread transactions = %d, want 2", perfect.Transactions)
	}

	strided := AnalyzeAccessPattern(spec, StridedAccessPattern(spec, 256))
	if strided.Efficiency() != 1 {
		t.Errorf("strided efficiency = %.1f, want 1", strided.Efficiency())
	}
	if ratio := float64(strided.Transactions) / float64(perfect.Transactions); ratio != 16 {
		t.Errorf("partitioning should cut transactions 16x, got %.1fx", ratio)
	}

	// Unaligned warp base still coalesces into at most 2 segments per
	// half-warp.
	offset := AnalyzeAccessPattern(spec, EncodeSourceAccessPattern(spec, 3))
	if offset.Transactions > 4 {
		t.Errorf("offset pattern transactions = %d", offset.Transactions)
	}
	if empty := AnalyzeAccessPattern(spec, nil); empty.Efficiency() != 0 {
		t.Error("empty pattern efficiency")
	}
}
