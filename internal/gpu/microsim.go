package gpu

import (
	"errors"
	"fmt"

	"extremenc/internal/gf256"
)

// Warp-level SIMT micro-interpreter. The aggregate cost model in
// costmodel.go charges issue slots per GF multiply from calibrated
// constants; this file grounds those constants by actually executing the
// two key inner loops — the loop-based multiply and the TB-5 table-based
// multiply — as PTX-like instruction sequences over a full warp, counting
// every issued instruction and every shared-memory bank-conflict round.
// The microsim tests assert that the counted costs sit where the model's
// constants say they should (the paper's authors worked at this level:
// "hand-optimization of the PTX assembly code", Sec. 4.1).
//
// The interpreter is deliberately small: registers are uint32, predicates
// are registers, control flow is a single backward branch (the kernels
// here have warp-uniform trip counts — every thread of a warp shares the
// same coefficient, so the loop-based multiply never diverges).

// OpCode is a micro-instruction opcode.
type OpCode int

// Micro-ISA. LDS counts a shared-memory access; its bank conflicts are
// derived from the actual per-thread addresses.
const (
	OpMOVI   OpCode = iota + 1 // dst = imm
	OpMOV                      // dst = a
	OpAND                      // dst = a & b
	OpANDI                     // dst = a & imm
	OpOR                       // dst = a | b
	OpXOR                      // dst = a ^ b
	OpADD                      // dst = a + b
	OpSHLI                     // dst = a << imm
	OpSHRI                     // dst = a >> imm
	OpMULI                     // dst = a * imm
	OpSHR                      // dst = a >> (b & 31) — variable shift
	OpSETEQI                   // dst = (a == imm) ? 1 : 0
	OpSELP                     // dst = p(a) != 0 ? b : imm-selected zero — dst = a!=0 ? b : 0
	OpLDS                      // dst = shared[a + imm] (byte or word per kernel's table layout)
	OpBNZ                      // if a != 0 (warp-uniform) branch to Target
	OpEXIT
)

// Instr is one micro-instruction.
type Instr struct {
	Op     OpCode
	Dst    int
	A, B   int
	Imm    uint32
	Target int // branch target for OpBNZ
}

// ErrDivergence reports a non-uniform branch, which these kernels must not
// produce.
var ErrDivergence = errors.New("gpu: warp divergence in microsim kernel")

// microResult aggregates an execution's counts.
type microResult struct {
	instructions   int // warp instructions issued
	sharedAccesses int // LDS instructions issued
	conflictRounds int // serialized shared rounds beyond the first, summed
}

// microSim executes a program over one warp.
type microSim struct {
	spec    DeviceSpec
	shared  []uint32 // word-addressed shared memory
	regs    [][]uint32
	widthFn func(addrWord int) int // maps word address to bank
}

func newMicroSim(spec DeviceSpec, sharedWords int) *microSim {
	m := &microSim{
		spec:   spec,
		shared: make([]uint32, sharedWords),
		regs:   make([][]uint32, spec.WarpSize),
	}
	for i := range m.regs {
		m.regs[i] = make([]uint32, 32)
	}
	m.widthFn = func(addrWord int) int { return addrWord % spec.SharedBanks }
	return m
}

// run executes prog for the warp; init seeds each thread's registers.
func (m *microSim) run(prog []Instr, init func(tid int, regs []uint32)) (microResult, error) {
	for tid := range m.regs {
		clear(m.regs[tid])
		init(tid, m.regs[tid])
	}
	var res microResult
	pc := 0
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			return res, fmt.Errorf("gpu: microsim runaway program")
		}
		if pc < 0 || pc >= len(prog) {
			return res, fmt.Errorf("gpu: microsim pc %d out of range", pc)
		}
		in := prog[pc]
		if in.Op == OpEXIT {
			return res, nil
		}
		res.instructions++

		if in.Op == OpBNZ {
			taken, err := m.uniformPredicate(in.A)
			if err != nil {
				return res, err
			}
			if taken {
				pc = in.Target
			} else {
				pc++
			}
			continue
		}
		if in.Op == OpLDS {
			res.sharedAccesses++
			res.conflictRounds += m.execLDS(in)
			pc++
			continue
		}
		for tid := range m.regs {
			r := m.regs[tid]
			switch in.Op {
			case OpMOVI:
				r[in.Dst] = in.Imm
			case OpMOV:
				r[in.Dst] = r[in.A]
			case OpAND:
				r[in.Dst] = r[in.A] & r[in.B]
			case OpANDI:
				r[in.Dst] = r[in.A] & in.Imm
			case OpOR:
				r[in.Dst] = r[in.A] | r[in.B]
			case OpXOR:
				r[in.Dst] = r[in.A] ^ r[in.B]
			case OpADD:
				r[in.Dst] = r[in.A] + r[in.B]
			case OpSHLI:
				r[in.Dst] = r[in.A] << in.Imm
			case OpSHRI:
				r[in.Dst] = r[in.A] >> in.Imm
			case OpSHR:
				r[in.Dst] = r[in.A] >> (r[in.B] & 31)
			case OpMULI:
				r[in.Dst] = r[in.A] * in.Imm
			case OpSETEQI:
				if r[in.A] == in.Imm {
					r[in.Dst] = 1
				} else {
					r[in.Dst] = 0
				}
			case OpSELP:
				if r[in.A] != 0 {
					r[in.Dst] = r[in.B]
				} else {
					r[in.Dst] = 0
				}
			default:
				return res, fmt.Errorf("gpu: microsim bad opcode %d", in.Op)
			}
		}
		pc++
	}
}

// uniformPredicate requires every thread to agree on a branch.
func (m *microSim) uniformPredicate(reg int) (bool, error) {
	first := m.regs[0][reg] != 0
	for _, r := range m.regs[1:] {
		if (r[reg] != 0) != first {
			return false, ErrDivergence
		}
	}
	return first, nil
}

// execLDS performs the shared load for every thread and returns the extra
// serialized rounds (per half-warp, the bank-conflict rule of Sec. 5.1.3).
func (m *microSim) execLDS(in Instr) int {
	half := m.spec.WarpSize / 2
	extra := 0
	for base := 0; base < m.spec.WarpSize; base += half {
		counts := make(map[int]int, m.spec.SharedBanks)
		maxLoad := 0
		for tid := base; tid < base+half; tid++ {
			r := m.regs[tid]
			addr := int(r[in.A] + in.Imm)
			if addr < 0 || addr >= len(m.shared) {
				addr = 0
			}
			r[in.Dst] = m.shared[addr]
			bank := m.widthFn(addr)
			counts[bank]++
			if counts[bank] > maxLoad {
				maxLoad = counts[bank]
			}
		}
		if maxLoad > 1 {
			extra += maxLoad - 1
		}
	}
	return extra
}

// Register allocation shared by the kernel programs below.
const (
	rC    = 0 // coefficient (uniform across the warp)
	rSrc  = 1 // source word (4 packed bytes)
	rAcc  = 2 // accumulator word
	rT1   = 3
	rT2   = 4
	rHi   = 5
	rLC   = 6 // log(coefficient), remapped domain
	rBase = 7 // private exp-table base (word offset)
	rByte = 8
	rIdx  = 9
	rOut  = 10
	rT3   = 11
)

// loopMulProgram is the loop-based GF multiply of a byte coefficient into a
// 4-byte word (the Nuclei kernel's inner loop, Sec. 4.1): Russian-peasant
// multiplication with a packed-lane xtime, iterating while coefficient bits
// remain. Trip count is warp-uniform (one coefficient per row).
func loopMulProgram() []Instr {
	const loopStart = 1
	return []Instr{
		{Op: OpMOVI, Dst: rAcc, Imm: 0},
		// loop:
		{Op: OpANDI, Dst: rT1, A: rC, Imm: 1},   // t1 = c & 1
		{Op: OpSELP, Dst: rT2, A: rT1, B: rSrc}, // t2 = t1 ? v : 0 (predicated)
		{Op: OpXOR, Dst: rAcc, A: rAcc, B: rT2}, // acc ^= t2
		{Op: OpSHRI, Dst: rC, A: rC, Imm: 1},    // c >>= 1
		{Op: OpANDI, Dst: rHi, A: rSrc, Imm: 0x80808080},
		{Op: OpANDI, Dst: rT1, A: rSrc, Imm: 0x7f7f7f7f},
		{Op: OpSHLI, Dst: rT1, A: rT1, Imm: 1}, // v' = (v & 0x7f..) << 1
		{Op: OpSHRI, Dst: rHi, A: rHi, Imm: 7},
		{Op: OpMULI, Dst: rHi, A: rHi, Imm: 0x1b}, // per-lane reduction
		{Op: OpXOR, Dst: rSrc, A: rT1, B: rHi},    // v = xtime(v)
		{Op: OpBNZ, A: rC, Target: loopStart},     // while c != 0
		{Op: OpEXIT},
	}
}

// loopMulIterInstrs is the issued instruction count per loop iteration of
// loopMulProgram (everything between loopStart and the branch, inclusive).
const loopMulIterInstrs = 11

// tb5MulProgram is the Table-based-5 multiply of a log-domain coefficient
// into a log-domain source word (Sec. 5.1.3): for each of the 4 bytes,
// extract, predicated zero test, add logs, load the private word-width exp
// table from shared memory, and merge into the output word. No branches —
// fully predicated, the point of the TB-3 remapping.
func tb5MulProgram() []Instr {
	prog := []Instr{{Op: OpMOVI, Dst: rOut, Imm: 0}}
	for b := 0; b < 4; b++ {
		shift := uint32(8 * b)
		prog = append(prog,
			Instr{Op: OpSHRI, Dst: rByte, A: rSrc, Imm: shift}, // byte lane
			Instr{Op: OpANDI, Dst: rByte, A: rByte, Imm: 0xFF},
			Instr{Op: OpADD, Dst: rIdx, A: rLC, B: rByte}, // log c + log s
			Instr{Op: OpADD, Dst: rIdx, A: rIdx, B: rBase},
			Instr{Op: OpLDS, Dst: rT1, A: rIdx},           // exp lookup (word table)
			Instr{Op: OpSELP, Dst: rT1, A: rByte, B: rT1}, // zero-remapped predication
			Instr{Op: OpSHLI, Dst: rT1, A: rT1, Imm: shift},
			Instr{Op: OpOR, Dst: rOut, A: rOut, B: rT1},
		)
	}
	prog = append(prog, Instr{Op: OpEXIT})
	return prog
}

// tb5MulInstrs is the issued instruction count of tb5MulProgram (excluding
// EXIT): 1 init + 8 per byte × 4.
const tb5MulInstrs = 33

// runLoopMulWarp executes the loop-based multiply for a warp where every
// thread multiplies coefficient c into its own source word. Results are
// returned per thread for verification.
func runLoopMulWarp(spec DeviceSpec, c byte, words []uint32) ([]uint32, microResult, error) {
	m := newMicroSim(spec, 1)
	res, err := m.run(loopMulProgram(), func(tid int, regs []uint32) {
		regs[rC] = uint32(c)
		regs[rSrc] = words[tid%len(words)]
	})
	if err != nil {
		return nil, res, err
	}
	out := make([]uint32, spec.WarpSize)
	for tid := range out {
		out[tid] = m.regs[tid][rAcc]
	}
	return out, res, nil
}

// runTB5MulWarp executes the TB-5 multiply for a warp: the shared memory
// holds 8 private remapped-exp tables laid out in bank pairs; thread t uses
// copy t%8. Inputs are log-domain words (4 remapped log bytes each).
func runTB5MulWarp(spec DeviceSpec, logC uint16, logWords []uint32) ([]uint32, microResult, error) {
	const copies = 8
	const tableWords = 512
	m := newMicroSim(spec, copies*tableWords)
	// Bank-pair layout: copy c owns banks {2c, 2c+1}; within a copy the
	// index's low bit picks the bank (Sec. 5.1.3, fourth optimization).
	banksPerCopy := spec.SharedBanks / copies
	m.widthFn = func(addrWord int) int {
		copy := addrWord / tableWords
		idx := addrWord % tableWords
		return copy*banksPerCopy + idx%banksPerCopy
	}
	for c := 0; c < copies; c++ {
		for i := 0; i < tableWords; i++ {
			m.shared[c*tableWords+i] = uint32(gf256.ExpRemapped(i))
		}
	}
	res, err := m.run(tb5MulProgram(), func(tid int, regs []uint32) {
		regs[rLC] = uint32(logC)
		regs[rSrc] = logWords[tid%len(logWords)]
		regs[rBase] = uint32((tid % copies) * tableWords)
	})
	if err != nil {
		return nil, res, err
	}
	out := make([]uint32, spec.WarpSize)
	for tid := range out {
		out[tid] = m.regs[tid][rOut]
	}
	return out, res, nil
}

// tb1MulProgram is the Table-based-1 multiply (Sec. 5.1.2): operands are in
// the classic log domain (0xFF sentinel for zero) and the exp table is a
// single shared byte table. It carries the costs the later ladder steps
// strip: a sentinel test per byte for BOTH operands (TB-2 merges the
// coefficient's four tests into one; TB-3 turns the rest into free
// predication), and byte-granular loads on word-addressed shared memory
// (word load + variable shift + mask — the "longer and less efficient
// code" of Sec. 4.1).
func tb1MulProgram() []Instr {
	prog := []Instr{{Op: OpMOVI, Dst: rOut, Imm: 0}}
	for b := 0; b < 4; b++ {
		shift := uint32(8 * b)
		prog = append(prog,
			Instr{Op: OpSHRI, Dst: rByte, A: rSrc, Imm: shift}, // log-domain byte lane
			Instr{Op: OpANDI, Dst: rByte, A: rByte, Imm: 0xFF},
			Instr{Op: OpSETEQI, Dst: rT2, A: rByte, Imm: 0xFF}, // source sentinel
			Instr{Op: OpSETEQI, Dst: rT3, A: rLC, Imm: 0xFF},   // coefficient sentinel (merged away by TB-2)
			Instr{Op: OpOR, Dst: rT2, A: rT2, B: rT3},
			Instr{Op: OpSETEQI, Dst: rT2, A: rT2, Imm: 0}, // invert: 1 when both non-zero
			Instr{Op: OpADD, Dst: rIdx, A: rLC, B: rByte}, // log c + log s
			// Byte table on word-addressed shared memory.
			Instr{Op: OpSHRI, Dst: rT1, A: rIdx, Imm: 2}, // word address
			Instr{Op: OpLDS, Dst: rT1, A: rT1},           // exp word
			Instr{Op: OpANDI, Dst: rHi, A: rIdx, Imm: 3},
			Instr{Op: OpSHLI, Dst: rHi, A: rHi, Imm: 3}, // bit offset
			Instr{Op: OpSHR, Dst: rT1, A: rT1, B: rHi},  // variable extract
			Instr{Op: OpANDI, Dst: rT1, A: rT1, Imm: 0xFF},
			Instr{Op: OpSELP, Dst: rT1, A: rT2, B: rT1}, // zero on sentinel
			Instr{Op: OpSHLI, Dst: rT1, A: rT1, Imm: shift},
			Instr{Op: OpOR, Dst: rOut, A: rOut, B: rT1},
		)
	}
	prog = append(prog, Instr{Op: OpEXIT})
	return prog
}

// tb1MulInstrs is tb1MulProgram's issued instruction count: 1 + 16 × 4.
const tb1MulInstrs = 65

// runTB1MulWarp executes the TB-1 multiply for a warp over a single shared
// classic exp byte-table (packed little-endian into words); logC and the
// source words use the 0xFF-sentinel log domain.
func runTB1MulWarp(spec DeviceSpec, logC byte, logWords []uint32) ([]uint32, microResult, error) {
	const tableWords = 128 // 512 exp bytes
	m := newMicroSim(spec, tableWords)
	for i := 0; i < tableWords; i++ {
		var w uint32
		for j := 0; j < 4; j++ {
			idx := 4*i + j
			e := gf256.Exp(idx % 255)
			if idx >= 510 {
				e = 0
			}
			w |= uint32(e) << (8 * j)
		}
		m.shared[i] = w
	}
	res, err := m.run(tb1MulProgram(), func(tid int, regs []uint32) {
		regs[rLC] = uint32(logC)
		regs[rSrc] = logWords[tid%len(logWords)]
	})
	if err != nil {
		return nil, res, err
	}
	out := make([]uint32, spec.WarpSize)
	for tid := range out {
		out[tid] = m.regs[tid][rOut]
	}
	return out, res, nil
}

// Decode-side micro programs: the pivot search of Sec. 4.2.2 / 5.4.2. Each
// thread holds the column index of its leading non-zero coefficient (or a
// +inf sentinel); the block must agree on the minimum. The classic kernel
// runs a log₂-step tree reduction over shared memory with a barrier per
// step; the GTX 280's shared-memory atomicMin collapses it to one atomic
// per thread and a single barrier — the ≈0.6% decode saving of Sec. 5.4.2.

// pivotSentinel marks "no non-zero coefficient in my columns".
const pivotSentinel = 0x7FFFFFFF

// runPivotReduction executes the tree-reduction pivot search for one
// half-warp-sized group and returns the found minimum plus issued
// instruction and barrier counts.
func runPivotReduction(spec DeviceSpec, values []int) (int, int, int) {
	n := len(values)
	shared := make([]int, n)
	copy(shared, values)
	instr, barriers := 0, 0
	for stride := n / 2; stride > 0; stride /= 2 {
		for t := 0; t < stride; t++ {
			// load both, compare, store min: ≈4 instructions per active thread.
			a, b := shared[t], shared[t+stride]
			if b < a {
				shared[t] = b
			}
			instr += 4
		}
		barriers++ // __syncthreads between steps
	}
	return shared[0], instr, barriers
}

// runPivotAtomicMin executes the atomicMin variant: every thread issues one
// atomic against a single shared word, then one barrier.
func runPivotAtomicMin(spec DeviceSpec, values []int) (int, int, int) {
	min := pivotSentinel
	instr := 0
	for _, v := range values {
		if v < min {
			min = v
		}
		instr += 2 // address + atomic issue
	}
	return min, instr, 1
}
