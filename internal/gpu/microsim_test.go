package gpu

import (
	"math/rand"
	"testing"

	"extremenc/internal/gf256"
)

// TestLoopMulProgramFunctional: the micro-interpreted loop-based kernel
// computes exact GF(2^8) products on every packed lane.
func TestLoopMulProgramFunctional(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		c := byte(1 + rng.Intn(255))
		words := make([]uint32, spec.WarpSize)
		for i := range words {
			words[i] = rng.Uint32()
		}
		out, res, err := runLoopMulWarp(spec, c, words)
		if err != nil {
			t.Fatal(err)
		}
		for tid, got := range out {
			w := words[tid]
			for lane := 0; lane < 4; lane++ {
				want := gf256.MulLoop(c, byte(w>>(8*lane)))
				if byte(got>>(8*lane)) != want {
					t.Fatalf("c=%#x tid=%d lane=%d: got %#x want %#x", c, tid, lane, byte(got>>(8*lane)), want)
				}
			}
		}
		if res.sharedAccesses != 0 {
			t.Fatal("loop-based kernel touched shared memory")
		}
	}
}

// TestLoopMulInstructionCount: counted instructions per iteration match the
// cost model's lbIterSlots calibration (10.85) and the data-dependent trip
// count equals the coefficient's bit length.
func TestLoopMulInstructionCount(t *testing.T) {
	spec := GTX280()
	words := []uint32{0xDEADBEEF}
	model := defaultCostModel()
	for _, c := range []byte{1, 2, 0x10, 0x80, 0xFF} {
		_, res, err := runLoopMulWarp(spec, c, words)
		if err != nil {
			t.Fatal(err)
		}
		iters := gf256.LoopIterations(c)
		want := 1 + iters*loopMulIterInstrs // MOVI + iterations
		if res.instructions != want {
			t.Fatalf("c=%#x: %d instructions, want %d (%d iterations)", c, res.instructions, want, iters)
		}
	}
	// The calibrated per-iteration slot cost must match the literal kernel
	// within ±15%.
	ratio := float64(loopMulIterInstrs) / model.lbIterSlots
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("microsim %d instr/iter vs model %.2f slots/iter (ratio %.2f)",
			loopMulIterInstrs, model.lbIterSlots, ratio)
	}
}

// TestTB5ProgramFunctional: the micro-interpreted TB-5 kernel reproduces
// the remapped log-domain multiply byte-for-byte, including zero operands.
func TestTB5ProgramFunctional(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(2))
	logByte := func(b byte) uint32 {
		var dst [1]uint16
		gf256.ToLogRemapped(dst[:], []byte{b})
		return uint32(dst[0])
	}
	for trial := 0; trial < 50; trial++ {
		c := byte(1 + rng.Intn(255))
		var lc [1]uint16
		gf256.ToLogRemapped(lc[:], []byte{c})

		srcBytes := make([][4]byte, spec.WarpSize)
		logWords := make([]uint32, spec.WarpSize)
		for i := range logWords {
			for lane := 0; lane < 4; lane++ {
				b := byte(rng.Intn(256))
				if trial%5 == 0 && lane == 1 {
					b = 0 // force predicated-off lanes regularly
				}
				srcBytes[i][lane] = b
				logWords[i] |= logByte(b) << (8 * lane)
			}
		}
		out, res, err := runTB5MulWarp(spec, lc[0], logWords)
		if err != nil {
			t.Fatal(err)
		}
		for tid, got := range out {
			for lane := 0; lane < 4; lane++ {
				want := gf256.MulTable(c, srcBytes[tid][lane])
				if byte(got>>(8*lane)) != want {
					t.Fatalf("c=%#x tid=%d lane=%d src=%#x: got %#x want %#x",
						c, tid, lane, srcBytes[tid][lane], byte(got>>(8*lane)), want)
				}
			}
		}
		if res.sharedAccesses != 4 {
			t.Fatalf("shared accesses = %d, want 4", res.sharedAccesses)
		}
	}
}

// TestTB5CostMatchesModel: the literal kernel's issued instructions plus
// measured conflict rounds must land on the aggregate model's effective
// per-word-multiply slots (tbBaseSlots[5] + 4 reads × measured rounds).
func TestTB5CostMatchesModel(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(3))
	logByte := func(b byte) uint32 {
		var dst [1]uint16
		gf256.ToLogRemapped(dst[:], []byte{b})
		return uint32(dst[0])
	}

	totalInstr, totalConflict, samples := 0, 0, 0
	for trial := 0; trial < 64; trial++ {
		c := byte(1 + rng.Intn(255))
		var lc [1]uint16
		gf256.ToLogRemapped(lc[:], []byte{c})
		logWords := make([]uint32, spec.WarpSize)
		for i := range logWords {
			for lane := 0; lane < 4; lane++ {
				logWords[i] |= logByte(byte(1+rng.Intn(255))) << (8 * lane)
			}
		}
		_, res, err := runTB5MulWarp(spec, lc[0], logWords)
		if err != nil {
			t.Fatal(err)
		}
		if res.instructions != tb5MulInstrs {
			t.Fatalf("instructions = %d, want %d", res.instructions, tb5MulInstrs)
		}
		totalInstr += res.instructions
		totalConflict += res.conflictRounds
		samples++
	}

	// Per word-multiply: issued instructions + conflict stalls (each extra
	// round ≈ one slot per thread, costmodel.go) versus the model's
	// effective slots with the measured private-copy conflict rate.
	model := defaultCostModel()
	measuredRounds := 1 + float64(totalConflict)/float64(samples*4*2) // per access per half-warp
	modelEff := model.tbBaseSlots[5] + model.tbReplReads[5]*measuredRounds
	// Microsim: conflictRounds are per half-warp; one extra round costs the
	// warp ≈1 slot per thread of that half → ≈0.5 warp-slot.
	microEff := float64(totalInstr)/float64(samples) + 0.5*float64(totalConflict)/float64(samples)
	ratio := microEff / modelEff
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("microsim %.1f effective slots vs model %.1f (ratio %.2f, measured rounds %.2f)",
			microEff, modelEff, ratio, measuredRounds)
	}
}

// TestTB5PrivateCopiesReduceConflicts: with the bank-pair layout a thread
// contends only with its copy partner; a classic single-table layout on the
// same accesses conflicts much more.
func TestTB5PrivateCopiesReduceConflicts(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(4))
	logByte := func(b byte) uint32 {
		var dst [1]uint16
		gf256.ToLogRemapped(dst[:], []byte{b})
		return uint32(dst[0])
	}
	var lc [1]uint16
	gf256.ToLogRemapped(lc[:], []byte{0x37})

	logWords := make([]uint32, spec.WarpSize)
	for i := range logWords {
		for lane := 0; lane < 4; lane++ {
			logWords[i] |= logByte(byte(1+rng.Intn(255))) << (8 * lane)
		}
	}
	_, private, err := runTB5MulWarp(spec, lc[0], logWords)
	if err != nil {
		t.Fatal(err)
	}

	// Same kernel, classic layout: one shared table, bank = idx mod banks.
	m := newMicroSim(spec, 8*512)
	for i := 0; i < 512; i++ {
		m.shared[i] = uint32(gf256.ExpRemapped(i))
	}
	classicRes, err := m.run(tb5MulProgram(), func(tid int, regs []uint32) {
		regs[rLC] = uint32(lc[0])
		regs[rSrc] = logWords[tid%len(logWords)]
		regs[rBase] = 0 // everyone shares table 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if classicRes.conflictRounds <= private.conflictRounds {
		t.Errorf("classic layout conflicts (%d) not above private copies (%d)",
			classicRes.conflictRounds, private.conflictRounds)
	}
}

// TestMicrosimDivergenceDetection: a branch with non-uniform predicates is
// rejected, documenting the kernels' uniform-trip-count requirement.
func TestMicrosimDivergenceDetection(t *testing.T) {
	spec := GTX280()
	m := newMicroSim(spec, 1)
	prog := []Instr{
		{Op: OpBNZ, A: rC, Target: 0},
		{Op: OpEXIT},
	}
	_, err := m.run(prog, func(tid int, regs []uint32) {
		regs[rC] = uint32(tid % 2) // half the warp wants the branch
	})
	if err == nil {
		t.Fatal("divergent branch accepted")
	}
}

// TestMicrosimProgramSafety: malformed programs fail cleanly.
func TestMicrosimProgramSafety(t *testing.T) {
	spec := GTX280()
	m := newMicroSim(spec, 1)
	if _, err := m.run([]Instr{{Op: OpCode(99)}}, func(int, []uint32) {}); err == nil {
		t.Fatal("bad opcode accepted")
	}
	if _, err := m.run([]Instr{{Op: OpMOVI}}, func(int, []uint32) {}); err == nil {
		t.Fatal("fall off the end accepted")
	}
	// Infinite loop guard.
	loop := []Instr{
		{Op: OpMOVI, Dst: rC, Imm: 1},
		{Op: OpBNZ, A: rC, Target: 1},
		{Op: OpEXIT},
	}
	if _, err := m.run(loop, func(int, []uint32) {}); err == nil {
		t.Fatal("runaway program accepted")
	}
}

// TestTB1ProgramFunctional: the classic log-domain kernel reproduces
// MulPre byte-for-byte, including 0xFF-sentinel lanes.
func TestTB1ProgramFunctional(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		c := byte(1 + rng.Intn(255))
		logC, _ := gf256.Log(c)

		srcBytes := make([][4]byte, spec.WarpSize)
		logWords := make([]uint32, spec.WarpSize)
		for i := range logWords {
			for lane := 0; lane < 4; lane++ {
				b := byte(rng.Intn(256))
				if trial%4 == 0 && lane == 2 {
					b = 0
				}
				srcBytes[i][lane] = b
				var lb [1]byte
				gf256.ToLog(lb[:], []byte{b})
				logWords[i] |= uint32(lb[0]) << (8 * lane)
			}
		}
		out, res, err := runTB1MulWarp(spec, logC, logWords)
		if err != nil {
			t.Fatal(err)
		}
		for tid, got := range out {
			for lane := 0; lane < 4; lane++ {
				want := gf256.MulTable(c, srcBytes[tid][lane])
				if byte(got>>(8*lane)) != want {
					t.Fatalf("c=%#x tid=%d lane=%d src=%#x: got %#x want %#x",
						c, tid, lane, srcBytes[tid][lane], byte(got>>(8*lane)), want)
				}
			}
		}
		if res.instructions != tb1MulInstrs || res.sharedAccesses != 4 {
			t.Fatalf("instr=%d shared=%d", res.instructions, res.sharedAccesses)
		}
	}
}

// TestMicroLadderOrdering: the literal kernels order exactly as the ladder
// says — TB-1 (classic tables) > loop-based average > TB-5 (stripped,
// replicated tables) — and each lands within ±15% of its model constant.
func TestMicroLadderOrdering(t *testing.T) {
	model := defaultCostModel()

	// Effective micro slots: instructions + 0.5 per extra conflict round.
	spec := GTX280()
	rng := rand.New(rand.NewSource(6))
	logByteR := func(b byte) uint32 {
		var dst [1]uint16
		gf256.ToLogRemapped(dst[:], []byte{b})
		return uint32(dst[0])
	}
	logByteC := func(b byte) uint32 {
		var dst [1]byte
		gf256.ToLog(dst[:], []byte{b})
		return uint32(dst[0])
	}

	var tb1Eff, tb5Eff, lbEff float64
	const trials = 48
	for trial := 0; trial < trials; trial++ {
		c := byte(1 + rng.Intn(255))
		words := make([]uint32, spec.WarpSize)
		logR := make([]uint32, spec.WarpSize)
		logCl := make([]uint32, spec.WarpSize)
		for i := range words {
			for lane := 0; lane < 4; lane++ {
				b := byte(1 + rng.Intn(255))
				words[i] |= uint32(b) << (8 * lane)
				logR[i] |= logByteR(b) << (8 * lane)
				logCl[i] |= logByteC(b) << (8 * lane)
			}
		}
		_, lbRes, err := runLoopMulWarp(spec, c, words)
		if err != nil {
			t.Fatal(err)
		}
		lbEff += float64(lbRes.instructions)

		var lcR [1]uint16
		gf256.ToLogRemapped(lcR[:], []byte{c})
		_, tb5Res, err := runTB5MulWarp(spec, lcR[0], logR)
		if err != nil {
			t.Fatal(err)
		}
		tb5Eff += float64(tb5Res.instructions) + 0.5*float64(tb5Res.conflictRounds)

		lcC, _ := gf256.Log(c)
		_, tb1Res, err := runTB1MulWarp(spec, lcC, logCl)
		if err != nil {
			t.Fatal(err)
		}
		tb1Eff += float64(tb1Res.instructions) + 0.5*float64(tb1Res.conflictRounds)
	}
	lbEff /= trials
	tb5Eff /= trials
	tb1Eff /= trials

	if !(tb1Eff > lbEff*0.75 && tb5Eff < lbEff && tb5Eff < tb1Eff) {
		t.Errorf("micro ladder out of order: TB-1 %.1f, LB %.1f, TB-5 %.1f", tb1Eff, lbEff, tb5Eff)
	}

	// Model agreement: TB-1 against its effective constant.
	rounds := 3.2 // typical classic-layout rounds measured by conflictSample
	tb1Model := model.tbBaseSlots[1] + model.tbSharedReads[1]*rounds
	if r := tb1Eff / tb1Model; r < 0.85 || r > 1.2 {
		t.Errorf("TB-1 micro %.1f vs model %.1f (ratio %.2f)", tb1Eff, tb1Model, r)
	}
	lbModel := 7*model.lbIterSlots + model.lbFixedSlots
	if r := lbEff / lbModel; r < 0.8 || r > 1.2 {
		t.Errorf("LB micro %.1f vs model %.1f (ratio %.2f)", lbEff, lbModel, r)
	}
}

// TestPivotSearchVariants grounds the Sec. 5.4.2 result: both pivot-search
// kernels find the same minimum, and the atomicMin form issues fewer
// instructions and far fewer barriers — a small saving, as the paper's
// ≈0.6% suggests, because the search is a sliver of each row operation.
func TestPivotSearchVariants(t *testing.T) {
	spec := GTX280()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		values := make([]int, 64)
		want := pivotSentinel
		for i := range values {
			if rng.Intn(4) == 0 {
				values[i] = pivotSentinel // thread saw only zeros
			} else {
				values[i] = rng.Intn(1 << 20)
			}
			if values[i] < want {
				want = values[i]
			}
		}
		gotTree, treeInstr, treeBarriers := runPivotReduction(spec, values)
		gotAtomic, atomicInstr, atomicBarriers := runPivotAtomicMin(spec, values)
		if gotTree != want || gotAtomic != want {
			t.Fatalf("pivot minimum: tree %d, atomic %d, want %d", gotTree, gotAtomic, want)
		}
		if atomicInstr >= treeInstr {
			t.Fatalf("atomicMin instructions %d not below tree %d", atomicInstr, treeInstr)
		}
		if atomicBarriers >= treeBarriers {
			t.Fatalf("atomicMin barriers %d not below tree %d", atomicBarriers, treeBarriers)
		}
	}

	// The saving is real but small relative to a row operation — consistent
	// with the model's 0.6% decode-level constant.
	_, treeInstr, treeBarriers := runPivotReduction(spec, make([]int, 64))
	rowOpSlots := 64.0 * (7*defaultCostModel().lbIterSlots + defaultCostModel().lbFixedSlots)
	searchShare := (float64(treeInstr) + float64(treeBarriers)*spec.SyncCycles) / rowOpSlots
	if searchShare > 0.15 {
		t.Errorf("pivot search share of a row op = %.3f, should be small", searchShare)
	}
}
