package gpu

import (
	"fmt"
	"math/rand"

	"extremenc/internal/matrix"
	"extremenc/internal/rlnc"
)

// MultiSegmentOptions tunes DecodeMultiSegment.
type MultiSegmentOptions struct {
	// SegmentsPerSM is how many segment decodes are kept resident on each
	// SM: 1 reproduces the paper's 30-segment configuration, 2 the
	// 60-segment one whose interleaved matrix inversions lift stage-1
	// utilization (Sec. 5.2). Default 1.
	SegmentsPerSM int

	// StageTwoScheme is the multiplication kernel for the b = C⁻¹·x stage;
	// it defaults to TableBased5, the best encoder, since stage 2 is an
	// encode-shaped dense multiply.
	StageTwoScheme Scheme

	// MaterializeSegments caps how many segments are functionally decoded
	// and returned (0 = all); the rest is accounted in time only.
	MaterializeSegments int
}

// MultiSegmentResult reports a simulated multi-segment decode.
type MultiSegmentResult struct {
	// Segments holds the functionally decoded segments (the first
	// MaterializeSegments sets).
	Segments []*rlnc.Segment

	Seconds       float64
	Stage1Seconds float64 // matrix inversions ([C | I] Gauss–Jordan)
	Stage2Seconds float64 // dense multiply b = C⁻¹·x
	DecodedBytes  int64
	Stats         Stats
}

// BandwidthMBps returns decoded source bytes per second / 1e6, aggregated
// over all segments (the paper's Fig. 9 metric).
func (r *MultiSegmentResult) BandwidthMBps() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.DecodedBytes) / r.Seconds / 1e6
}

// Stage1Share returns the fraction of decode time spent inverting
// coefficient matrices — the utilization annotation of Fig. 9.
func (r *MultiSegmentResult) Stage1Share() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.Stage1Seconds / r.Seconds
}

// DecodeMultiSegment decodes many segments at once, one segment per SM
// (Sec. 5.2): stage 1 runs Gauss–Jordan on the aggregate [C | I] to produce
// C⁻¹ (low parallelism — 2n/4 threads — so the GPU idles unless inversions
// from two segments interleave per SM), and stage 2 restores the sources
// with a fully parallel encode-like multiplication. Parallelism now scales
// with the number of segments, which is what lets decoding approach
// encoding bandwidth at large block sizes.
//
// sets[i] holds the coded blocks received for segment i; every materialized
// set must span its segment.
func (d *Device) DecodeMultiSegment(sets [][]*rlnc.CodedBlock, p rlnc.Params, opts *MultiSegmentOptions) (*MultiSegmentResult, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("gpu: no segments to decode")
	}
	o := MultiSegmentOptions{SegmentsPerSM: 1, StageTwoScheme: TableBased5}
	if opts != nil {
		if opts.SegmentsPerSM > 0 {
			o.SegmentsPerSM = opts.SegmentsPerSM
		}
		if opts.StageTwoScheme != 0 {
			o.StageTwoScheme = opts.StageTwoScheme
		}
		o.MaterializeSegments = opts.MaterializeSegments
	}
	if err := o.StageTwoScheme.validate(); err != nil {
		return nil, err
	}

	materialize := len(sets)
	if o.MaterializeSegments > 0 && o.MaterializeSegments < materialize {
		materialize = o.MaterializeSegments
	}

	// ---- Functional execution: the host codec's explicit two-stage decode
	// ([C | I] inversion, then one tiled b = C⁻¹·x multiply) — the same
	// pipeline whose cost the charge functions below account for. ----
	segments := make([]*rlnc.Segment, 0, materialize)
	for i := 0; i < materialize; i++ {
		seg, err := rlnc.DecodeTwoStage(p, sets[i])
		if err != nil {
			return nil, fmt.Errorf("gpu: segment %d: %w", i, err)
		}
		segments = append(segments, seg)
	}

	// ---- Cost accounting ----
	startStats := d.stats
	start := d.seconds
	d.chargeInversions(p, len(sets), o.SegmentsPerSM)
	stage1 := d.seconds - start

	d.chargeStageTwo(p, len(sets), o.StageTwoScheme, sets[0])
	total := d.seconds - start
	delta := d.stats
	deltaSub(&delta, startStats)

	return &MultiSegmentResult{
		Segments:      segments,
		Seconds:       total,
		Stage1Seconds: stage1,
		Stage2Seconds: total - stage1,
		DecodedBytes:  int64(len(sets)) * int64(p.SegmentSize()),
		Stats:         delta,
	}, nil
}

// chargeInversions accounts stage 1: one [C | I] Gauss–Jordan inversion per
// segment, each running in a single thread block of 2n/4 threads.
func (d *Device) chargeInversions(p rlnc.Params, segments, segmentsPerSM int) {
	spec, model := d.spec, d.model
	n := float64(p.BlockCount)
	sms := float64(spec.SMs)

	rowWidth := 2 * n // [C | I] bytes per row
	words := rowWidth / 4
	threads := int(words)
	if threads < 1 {
		threads = 1
	}
	warps := float64((threads+spec.WarpSize-1)/spec.WarpSize) * float64(segmentsPerSM)

	rowOps := n * n // per segment: each pivot normalizes and eliminates all rows
	wordMulSlots := 7*model.lbIterSlots + model.lbFixedSlots + model.decRowOpFixedSlots
	perSegmentSlots := rowOps * words * wordMulSlots

	// Serial chain per SM: its share of segments, overlapped across the
	// resident inversions (two interleaved inversions hide each other's
	// stalls — the 60-segment improvement — at less than perfect
	// efficiency).
	segsPerSM := (float64(segments) + sms - 1) / sms
	overlap := 1 + (float64(segmentsPerSM)-1)*model.invOverlapEfficiency

	busy := sms
	if s := (float64(segments) + overlap - 1) / overlap; s < busy {
		busy = s
	}
	d.charge(kernelCost{
		launches:      1,
		slots:         perSegmentSlots * float64(segments),
		busySMs:       busy,
		warpsPerSM:    warps,
		latencyEvents: rowOps * segsPerSM / overlap,
		syncs:         (rowOps*model.decSyncsPerRowOp + n*model.decSyncsPerArrival) * segsPerSM / overlap,
		globalBytes:   rowOps * rowWidth * 2 * float64(segments),
	})
}

// chargeStageTwo accounts stage 2: per segment, the dense multiply
// b = C⁻¹·x — n output blocks of k bytes, identical in shape and kernel to
// encoding, so it reuses the encode cost path with the chosen scheme.
func (d *Device) chargeStageTwo(p rlnc.Params, segments int, scheme Scheme, sample []*rlnc.CodedBlock) {
	n := p.BlockCount

	// Build a representative segment + coefficient matrix for the cost
	// sampler from the first set's real payloads and coefficients: stage 2
	// multiplies C⁻¹ (random-looking GF bytes) into the coded payload
	// matrix x.
	seg, err := rlnc.NewSegment(0, p)
	if err != nil {
		return
	}
	coeffs := matrix.New(segments*n, n)
	for i := 0; i < n && i < len(sample); i++ {
		copy(seg.Block(i), sample[i].Payload)
	}
	row := 0
	for s := 0; s < segments; s++ {
		for i := 0; i < n; i++ {
			src := sample[(i+s)%len(sample)].Coeffs
			copy(coeffs.Row(row), src)
			row++
		}
	}
	before := d.seconds
	d.chargeEncode(seg, coeffs, scheme, false, [][]byte{coeffs.Row(0)})
	// Stage 2 loses the encoder's broadcast-friendly coefficient layout.
	d.seconds = before + (d.seconds-before)*d.model.stageTwoOverhead
}

// EstimateMultiSegment charges the cost of a multi-segment decode of the
// given segment count at p without functional execution. The stage-2
// conflict/texture samplers run over a deterministic synthetic sample with
// the same uniform-byte statistics as real coded data.
func (d *Device) EstimateMultiSegment(p rlnc.Params, segments int, opts *MultiSegmentOptions) (*MultiSegmentResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if segments <= 0 {
		return nil, fmt.Errorf("gpu: segment count %d must be positive", segments)
	}
	o := MultiSegmentOptions{SegmentsPerSM: 1, StageTwoScheme: TableBased5}
	if opts != nil {
		if opts.SegmentsPerSM > 0 {
			o.SegmentsPerSM = opts.SegmentsPerSM
		}
		if opts.StageTwoScheme != 0 {
			o.StageTwoScheme = opts.StageTwoScheme
		}
	}
	if err := o.StageTwoScheme.validate(); err != nil {
		return nil, err
	}

	sample := syntheticSample(p, 0xC0DE)

	startStats := d.stats
	start := d.seconds
	d.chargeInversions(p, segments, o.SegmentsPerSM)
	stage1 := d.seconds - start
	d.chargeStageTwo(p, segments, o.StageTwoScheme, sample)
	total := d.seconds - start
	delta := d.stats
	deltaSub(&delta, startStats)

	return &MultiSegmentResult{
		Seconds:       total,
		Stage1Seconds: stage1,
		Stage2Seconds: total - stage1,
		DecodedBytes:  int64(segments) * int64(p.SegmentSize()),
		Stats:         delta,
	}, nil
}

// syntheticSample builds deterministic coded blocks with uniform random
// bytes — statistically equivalent inputs for the cost samplers.
func syntheticSample(p rlnc.Params, seed int64) []*rlnc.CodedBlock {
	rng := rand.New(rand.NewSource(seed))
	sample := make([]*rlnc.CodedBlock, minIntMS(p.BlockCount, 8))
	for i := range sample {
		b := &rlnc.CodedBlock{
			Coeffs:  make([]byte, p.BlockCount),
			Payload: make([]byte, p.BlockSize),
		}
		rng.Read(b.Coeffs)
		rng.Read(b.Payload)
		for j, c := range b.Coeffs {
			if c == 0 {
				b.Coeffs[j] = 1
			}
		}
		sample[i] = b
	}
	return sample
}

func minIntMS(a, b int) int {
	if a < b {
		return a
	}
	return b
}
