package gpu

import (
	"testing"

	"extremenc/internal/rlnc"
)

// Cost-model law tests: the paper's performance physics imply orderings
// that must hold at every parameter point, not just the calibrated anchors.

func encRateAt(t *testing.T, spec DeviceSpec, n, k int, scheme Scheme) float64 {
	t.Helper()
	d, err := NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := rlnc.Params{BlockCount: n, BlockSize: k}
	seg := randomSegment(t, p, int64(n+k))
	rows := 4096 * 256 / ((k + 3) / 4)
	if rows < 2*n {
		rows = 2 * n
	}
	res, err := d.EncodeSegment(seg, denseCoeffs(rows, n, int64(n*k)), scheme, &EncodeOptions{Materialize: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.BandwidthMBps()
}

// TestEncodeRateInverseInN: encoding cost is n multiplies per byte, so the
// rate must fall ≈proportionally with n for every scheme.
func TestEncodeRateInverseInN(t *testing.T) {
	spec := GTX280()
	for _, scheme := range Schemes() {
		r128 := encRateAt(t, spec, 128, 4096, scheme)
		r256 := encRateAt(t, spec, 256, 4096, scheme)
		r512 := encRateAt(t, spec, 512, 4096, scheme)
		if !(r128 > r256 && r256 > r512) {
			t.Errorf("%v: rates not decreasing in n: %.1f / %.1f / %.1f", scheme, r128, r256, r512)
		}
		if ratio := r128 / r256; ratio < 1.8 || ratio > 2.3 {
			t.Errorf("%v: n=128/n=256 ratio %.2f, want ≈2", scheme, ratio)
		}
	}
}

// TestLadderOrderHoldsEverywhere: the TB-1…TB-5 ordering is not a n=128
// artifact.
func TestLadderOrderHoldsEverywhere(t *testing.T) {
	spec := GTX280()
	ladder := []Scheme{TableBased1, TableBased2, TableBased3, TableBased4, TableBased5}
	for _, n := range []int{64, 256} {
		for _, k := range []int{1024, 16384} {
			prev := 0.0
			for _, scheme := range ladder {
				r := encRateAt(t, spec, n, k, scheme)
				if r <= prev {
					t.Errorf("n=%d k=%d: %v (%.1f) not above previous (%.1f)", n, k, scheme, r, prev)
				}
				prev = r
			}
		}
	}
}

// TestMoreSMsNeverSlower: growing the device must never slow any kernel.
func TestMoreSMsNeverSlower(t *testing.T) {
	small := GTX280()
	small.SMs = 10
	big := GTX280()
	for _, scheme := range []Scheme{LoopBased, TableBased5} {
		rs := encRateAt(t, small, 128, 4096, scheme)
		rb := encRateAt(t, big, 128, 4096, scheme)
		if rb <= rs {
			t.Errorf("%v: 30 SMs (%.1f) not faster than 10 SMs (%.1f)", scheme, rb, rs)
		}
	}
}

// TestDecodeRateMonotoneInK: single-segment decoding improves with block
// size at every n (the Fig. 4b mechanism: more threads per SM).
func TestDecodeRateMonotoneInK(t *testing.T) {
	d := newGTX280(t)
	for _, n := range []int{64, 128, 256, 512} {
		prev := 0.0
		for _, k := range []int{128, 512, 2048, 8192, 32768} {
			res, err := d.EstimateDecodeSegment(rlnc.Params{BlockCount: n, BlockSize: k}, nil)
			if err != nil {
				t.Fatal(err)
			}
			r := res.BandwidthMBps()
			if r <= prev {
				t.Errorf("n=%d: decode rate not rising at k=%d (%.2f ≤ %.2f)", n, k, r, prev)
			}
			prev = r
		}
	}
}

// TestMultiSegmentAlwaysBeatsSingle: for any (n, k), decoding 30 segments
// in parallel must outperform decoding them serially.
func TestMultiSegmentAlwaysBeatsSingle(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		for _, k := range []int{512, 4096, 32768} {
			p := rlnc.Params{BlockCount: n, BlockSize: k}
			single, err := newGTX280(t).EstimateDecodeSegment(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			multi, err := newGTX280(t).EstimateMultiSegment(p, 30, nil)
			if err != nil {
				t.Fatal(err)
			}
			if multi.BandwidthMBps() <= single.BandwidthMBps() {
				t.Errorf("n=%d k=%d: multi (%.1f) not above single (%.1f)",
					n, k, multi.BandwidthMBps(), single.BandwidthMBps())
			}
		}
	}
}

// TestStageShareFallsWithK: stage 1's share of multi-segment decode time
// strictly falls as blocks grow (the Fig. 9 annotation trend).
func TestStageShareFallsWithK(t *testing.T) {
	prev := 1.1
	for _, k := range []int{128, 1024, 8192, 32768} {
		res, err := newGTX280(t).EstimateMultiSegment(rlnc.Params{BlockCount: 128, BlockSize: k}, 30, nil)
		if err != nil {
			t.Fatal(err)
		}
		share := res.Stage1Share()
		if share >= prev {
			t.Errorf("stage-1 share not falling at k=%d: %.3f ≥ %.3f", k, share, prev)
		}
		prev = share
	}
}

// TestGPUGenerationDecodeGap reproduces the Sec. 4.3 text claim: at n=128
// the GTX 280's single-segment decode is nearly tied with the 8800 GT at
// small blocks (≤1 KB) and gains a modest 5–38% from 2–16 KB — the missing
// parallelism caps what the extra cores can do.
func TestGPUGenerationDecodeGap(t *testing.T) {
	rate := func(spec DeviceSpec, k int) float64 {
		d, err := NewDevice(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.EstimateDecodeSegment(rlnc.Params{BlockCount: 128, BlockSize: k}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	for _, k := range []int{256, 1024} {
		gap := rate(GTX280(), k) / rate(GeForce8800GT(), k)
		if gap < 0.95 || gap > 1.35 {
			t.Errorf("k=%d: GTX280/8800GT decode gap %.2f, want ≈1 (small blocks)", k, gap)
		}
	}
	// 2–16 KB: a modest gain, far below the 2× core advantage (paper:
	// 5–38%; our model lands somewhat higher at the top of the range
	// because its partition-width advantage is undiluted — recorded as a
	// known deviation in EXPERIMENTS.md).
	for _, k := range []int{4096, 16384} {
		gap := rate(GTX280(), k) / rate(GeForce8800GT(), k)
		if gap < 1.02 || gap > 1.75 {
			t.Errorf("k=%d: GTX280/8800GT decode gap %.2f, want modest gain ≪ 2×", k, gap)
		}
	}
}
