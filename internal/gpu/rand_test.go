package gpu

import "math/rand"

// newRand returns a seeded PRNG for calibration helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
