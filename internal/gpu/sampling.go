package gpu

import (
	"extremenc/internal/gf256"
	"extremenc/internal/rlnc"
)

// Shared-memory bank-conflict and texture-cache sampling. Rather than baking
// "≈3 conflicts per half-warp" into the model, the simulator measures the
// conflict rounds the table-based kernels would incur on the data they
// actually process: a half-warp of 16 threads issues 16 concurrent shared
// loads whose bank residues come from the real exp-table indices
// (log c + log s over the real source bytes). The measured average feeds the
// per-access cost (paper Sec. 5.1.3).

const halfWarp = 16

// conflictRounds returns the serialized access rounds for one half-warp
// given each access's bank id (-1 marks a predicated-off access that issues
// no load). It is the maximum load on any bank, at least 1 when any access
// is live.
func conflictRounds(banks []int, bankCount int) int {
	counts := make([]int, bankCount)
	rounds := 0
	live := false
	for _, b := range banks {
		if b < 0 {
			continue
		}
		live = true
		counts[b%bankCount]++
		if counts[b%bankCount] > rounds {
			rounds = counts[b%bankCount]
		}
	}
	if !live {
		return 0
	}
	return rounds
}

// bankMapper maps a thread index and exp-table index to a shared-memory
// bank, defining a table layout.
type bankMapper func(thread, idx int) int

// classicBankMap is the single shared byte-table layout of TB-0…TB-3: the
// exp table occupies consecutive bytes, so bank = (byte address / bank
// width) mod banks. Concurrent random indices collide freely.
func classicBankMap(spec DeviceSpec) bankMapper {
	return func(_, idx int) int {
		return (idx / spec.SharedBankWidth) % spec.SharedBanks
	}
}

// replicatedBankMap is the TB-5 layout: 8 private word-width copies of the
// exp table, each confined to a pair of banks so a thread only ever
// contends with the one other half-warp thread sharing its copy
// (Sec. 5.1.3, fourth optimization).
func replicatedBankMap(spec DeviceSpec) bankMapper {
	copies := 8
	banksPerCopy := spec.SharedBanks / copies
	if banksPerCopy < 1 {
		banksPerCopy = 1
	}
	return func(thread, idx int) int {
		c := thread % copies
		return c*banksPerCopy + idx%banksPerCopy
	}
}

// conflictSample measures the average serialized rounds per live shared
// access for the table-based encode inner loop over real data.
//
// Threads t of a half-warp process 16 consecutive words of one coded block;
// at byte lane l they look up exp[log c + log src[(w+t)*4+l]]. Zero source
// bytes are predicated off (no load). The sample walks several coefficient
// rows and several word offsets and returns rounds per access (≥1) plus the
// measured access count per sampled half-warp sweep.
func conflictSample(seg *rlnc.Segment, coeffs [][]byte, mapper bankMapper, spec DeviceSpec, maxSamples int) (roundsPerAccess float64, accesses, conflicts float64) {
	p := seg.Params()
	words := p.BlockSize / 4
	if words == 0 {
		words = 1
	}
	data := seg.Data()

	var totalRounds, totalAccesses float64
	samples := 0
	banks := make([]int, halfWarp)
	for _, row := range coeffs {
		for _, c := range row {
			if samples >= maxSamples {
				break
			}
			if c == 0 {
				continue
			}
			logC, _ := gf256.Log(c)
			// Spread the sampled half-warps across the block.
			for base := 0; base+halfWarp <= words && samples < maxSamples; base += words/3 + halfWarp {
				for lane := 0; lane < 4; lane++ {
					for t := 0; t < halfWarp; t++ {
						byteIdx := (base+t)*4 + lane
						if byteIdx >= p.BlockSize {
							banks[t] = -1
							continue
						}
						// All threads read the same source block per term of
						// Eq. 1; which block does not change bank statistics,
						// so sample block 0's bytes at the thread's offset.
						s := data[byteIdx%len(data)]
						if s == 0 {
							banks[t] = -1 // predicated off
							continue
						}
						logS, _ := gf256.Log(s)
						banks[t] = mapper(t, int(logC)+int(logS))
					}
					r := conflictRounds(banks, spec.SharedBanks)
					live := 0
					for _, b := range banks {
						if b >= 0 {
							live++
						}
					}
					if live == 0 {
						continue
					}
					totalRounds += float64(r) * halfWarp / float64(live)
					totalAccesses += float64(live)
					samples++
				}
			}
		}
	}
	if samples == 0 {
		return 1, 0, 0
	}
	avg := totalRounds / float64(samples)
	if avg < 1 {
		avg = 1
	}
	return avg, totalAccesses, (avg - 1) * totalAccesses / halfWarp
}

// texCache is a tiny direct-mapped texture cache simulator, one per TPC.
type texCache struct {
	lineSize int
	tags     []int
}

func newTexCache(capacityBytes, lineSize int) *texCache {
	lines := capacityBytes / lineSize
	if lines < 1 {
		lines = 1
	}
	tags := make([]int, lines)
	for i := range tags {
		tags[i] = -1
	}
	return &texCache{lineSize: lineSize, tags: tags}
}

// access touches addr and reports whether it hit.
func (c *texCache) access(addr int) bool {
	line := addr / c.lineSize
	slot := line % len(c.tags)
	if c.tags[slot] == line {
		return true
	}
	c.tags[slot] = line
	return false
}

// textureHitRate replays a sampled exp-table index stream from real data
// through the texture cache and returns the hit fraction. The exp table is
// a few hundred bytes, so after compulsory misses the locality is near
// perfect — the mechanism behind TB-4's gain (Sec. 5.1.3).
func textureHitRate(seg *rlnc.Segment, coeffs [][]byte, spec DeviceSpec, maxSamples int) float64 {
	cache := newTexCache(spec.TexCacheBytes, 32)
	data := seg.Data()
	hits, total := 0, 0
	for _, row := range coeffs {
		for _, c := range row {
			if total >= maxSamples {
				break
			}
			if c == 0 {
				continue
			}
			logC, _ := gf256.Log(c)
			for i := 0; i < 64 && total < maxSamples; i++ {
				s := data[i%len(data)]
				if s == 0 {
					continue
				}
				logS, _ := gf256.Log(s)
				if cache.access(int(logC) + int(logS)) {
					hits++
				}
				total++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hits) / float64(total)
}
