// Package gpu simulates the CUDA-class graphics processors the paper runs
// on — the NVIDIA GeForce GTX 280 and 8800 GT — well enough to reproduce
// the paper's network-coding results without the hardware.
//
// The simulator is functional + cost-model:
//
//   - Functional: every kernel really computes its outputs over simulated
//     device memory, using the exact arithmetic path the scheme prescribes
//     (loop-based GF multiply, log/exp lookups, preprocessed log-domain
//     operands, zero-remapped tables). Outputs are verified against the
//     host codec in tests.
//   - Cost: kernels charge cycles from counted micro-architectural events
//     derived from the data they actually touch — loop iterations from the
//     real coefficient bits, shared-memory bank conflicts from the real
//     table indices, texture hits from a simulated cache over the real
//     access stream, occupancy from the real thread counts. The paper's
//     relative results (table-based beats loop-based on the GPU, the
//     optimization ladder, decoding's poor scaling at small block sizes,
//     multi-segment gains) emerge from these mechanisms.
//
// Absolute rates are calibrated to the GTX 280 via the constants in
// costmodel.go; see DESIGN.md for the calibration table.
package gpu

import "fmt"

// DeviceSpec describes a CUDA-class GPU.
type DeviceSpec struct {
	Name     string
	SMs      int     // streaming multiprocessors
	SPsPerSM int     // scalar processors per SM (8 on Tesla-class parts)
	ClockMHz float64 // shader clock

	MemBandwidthGBps float64 // global memory bandwidth
	MemLatencyCycles float64 // global memory round-trip latency
	GlobalMemBytes   int64

	SharedMemPerSM  int // bytes of on-chip shared memory per SM
	SharedBanks     int // shared memory banks (16 on Tesla)
	SharedBankWidth int // bytes per bank (4)

	WarpSize                int
	MaxThreadsPerBlock      int
	MaxResidentThreadsPerSM int
	MaxResidentBlocksPerSM  int

	HasSharedAtomics bool // atomicMin on shared memory (GTX 280: yes; 8800 GT: no)

	TexCacheBytes int // texture cache capacity per TPC
	SMsPerTPC     int // SMs sharing one texture cache

	KernelLaunchCycles float64 // fixed per-launch overhead
	SyncCycles         float64 // __syncthreads barrier cost
}

// Validate checks the spec for usability.
func (s DeviceSpec) Validate() error {
	switch {
	case s.SMs <= 0, s.SPsPerSM <= 0, s.ClockMHz <= 0:
		return fmt.Errorf("gpu: spec %q has non-positive compute resources", s.Name)
	case s.MemBandwidthGBps <= 0, s.GlobalMemBytes <= 0:
		return fmt.Errorf("gpu: spec %q has non-positive memory resources", s.Name)
	case s.WarpSize <= 0, s.SharedBanks <= 0, s.SharedBankWidth <= 0:
		return fmt.Errorf("gpu: spec %q has invalid SIMT parameters", s.Name)
	case s.MaxThreadsPerBlock <= 0, s.MaxResidentThreadsPerSM <= 0, s.MaxResidentBlocksPerSM <= 0:
		return fmt.Errorf("gpu: spec %q has invalid occupancy limits", s.Name)
	case s.SMsPerTPC <= 0:
		return fmt.Errorf("gpu: spec %q has invalid TPC grouping", s.Name)
	}
	return nil
}

// Cores returns the total scalar-processor count.
func (s DeviceSpec) Cores() int { return s.SMs * s.SPsPerSM }

// ClockHz returns the shader clock in Hz.
func (s DeviceSpec) ClockHz() float64 { return s.ClockMHz * 1e6 }

// IssueSlotsPerSecond returns the device-wide thread-instruction issue rate:
// each SM retires SPsPerSM thread-instructions per cycle (one warp
// instruction every WarpSize/SPsPerSM cycles).
func (s DeviceSpec) IssueSlotsPerSecond() float64 {
	return float64(s.Cores()) * s.ClockHz()
}

// BytesPerCycle returns global memory bandwidth normalized to shader cycles.
func (s DeviceSpec) BytesPerCycle() float64 {
	return s.MemBandwidthGBps * 1e9 / s.ClockHz()
}

// GTX280 returns the spec of the NVIDIA GeForce GTX 280 used throughout the
// paper's evaluation: 30 SMs × 8 SPs = 240 cores at 1458 MHz, 16 KB shared
// memory per SM in 16 banks, shared-memory atomics supported.
func GTX280() DeviceSpec {
	return DeviceSpec{
		Name:                    "GeForce GTX 280",
		SMs:                     30,
		SPsPerSM:                8,
		ClockMHz:                1458,
		MemBandwidthGBps:        141.7,
		MemLatencyCycles:        550,
		GlobalMemBytes:          1024 << 20,
		SharedMemPerSM:          16 << 10,
		SharedBanks:             16,
		SharedBankWidth:         4,
		WarpSize:                32,
		MaxThreadsPerBlock:      512,
		MaxResidentThreadsPerSM: 1024,
		MaxResidentBlocksPerSM:  8,
		HasSharedAtomics:        true,
		TexCacheBytes:           8 << 10,
		SMsPerTPC:               3,
		KernelLaunchCycles:      7500,
		SyncCycles:              40,
	}
}

// GeForce8800GT returns the spec of the prior-generation 8800 GT used as the
// paper's GPU baseline: 14 SMs × 8 SPs = 112 cores at 1500 MHz, no
// shared-memory atomics.
func GeForce8800GT() DeviceSpec {
	return DeviceSpec{
		Name:                    "GeForce 8800 GT",
		SMs:                     14,
		SPsPerSM:                8,
		ClockMHz:                1500,
		MemBandwidthGBps:        57.6,
		MemLatencyCycles:        550,
		GlobalMemBytes:          512 << 20,
		SharedMemPerSM:          16 << 10,
		SharedBanks:             16,
		SharedBankWidth:         4,
		WarpSize:                32,
		MaxThreadsPerBlock:      512,
		MaxResidentThreadsPerSM: 768,
		MaxResidentBlocksPerSM:  8,
		HasSharedAtomics:        false,
		TexCacheBytes:           8 << 10,
		SMsPerTPC:               2,
		KernelLaunchCycles:      7500,
		SyncCycles:              40,
	}
}

// GTX260 returns the spec of the GeForce GTX 260 — same Tesla generation as
// the GTX 280 with fewer resources; the paper notes its design runs "on any
// existing and future GPU that supports the CUDA programming platform".
func GTX260() DeviceSpec {
	s := GTX280()
	s.Name = "GeForce GTX 260"
	s.SMs = 24
	s.ClockMHz = 1242
	s.MemBandwidthGBps = 111.9
	s.GlobalMemBytes = 896 << 20
	return s
}

// TeslaC1060 returns the spec of the Tesla C1060 compute board: GTX 280
// silicon at a lower clock with 4 GB of memory — the "hundreds of such
// segments" server deployment with room to spare.
func TeslaC1060() DeviceSpec {
	s := GTX280()
	s.Name = "Tesla C1060"
	s.ClockMHz = 1296
	s.MemBandwidthGBps = 102.4
	s.GlobalMemBytes = 4096 << 20
	return s
}
