// Package matrix implements dense matrices over GF(2^8) and the elimination
// algorithms network coding relies on: Gauss–Jordan reduction to reduced
// row-echelon form (RREF), matrix inversion via the augmented [C | I] form
// (the first stage of the paper's multi-segment decoder), rank computation,
// and GF matrix multiplication (the second stage).
package matrix

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"extremenc/internal/gf256"
)

// ErrSingular is returned when a matrix has no inverse.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]byte) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Random returns a rows×cols matrix with uniformly random entries.
func Random(rows, cols int, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	rng.Read(m.data)
	return m
}

// RandomFullRank returns a uniformly random n×n matrix conditioned on being
// invertible (resampling on rank deficiency; the deficiency probability in
// GF(2^8) is below 0.4% so this terminates almost immediately).
func RandomFullRank(n int, rng *rand.Rand) *Matrix {
	for {
		m := Random(n, n, rng)
		if m.Clone().RREF() == n {
			return m
		}
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) byte { return m.data[r*m.cols+c] }

// Set writes the element at (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.data[r*m.cols : (r+1)*m.cols : (r+1)*m.cols] }

// Data returns the backing row-major storage (aliased, not copied).
func (m *Matrix) Data() []byte { return m.data }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether m is square and equal to the identity.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Equal(Identity(m.rows))
}

// Augment returns [m | o] (same row count required).
func (m *Matrix) Augment(o *Matrix) (*Matrix, error) {
	if m.rows != o.rows {
		return nil, fmt.Errorf("matrix: augment row mismatch %d vs %d", m.rows, o.rows)
	}
	a := New(m.rows, m.cols+o.cols)
	for r := 0; r < m.rows; r++ {
		copy(a.Row(r), m.Row(r))
		copy(a.Row(r)[m.cols:], o.Row(r))
	}
	return a, nil
}

// Slice returns the sub-matrix of columns [c0, c1) as a copy.
func (m *Matrix) Slice(c0, c1 int) *Matrix {
	s := New(m.rows, c1-c0)
	for r := 0; r < m.rows; r++ {
		copy(s.Row(r), m.Row(r)[c0:c1])
	}
	return s
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("matrix: %d×%d · %d×%d shape mismatch", m.rows, m.cols, o.rows, o.cols)
	}
	p := New(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		out := p.Row(r)
		row := m.Row(r)
		for i, c := range row {
			if c != 0 {
				gf256.MulAddSlice(out, o.Row(i), c)
			}
		}
	}
	return p, nil
}

// MulVec returns m·v for a column vector v of length Cols.
func (m *Matrix) MulVec(v []byte) ([]byte, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("matrix: vector length %d, want %d", len(v), m.cols)
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		var acc byte
		for i, c := range m.Row(r) {
			if c != 0 && v[i] != 0 {
				acc ^= gf256.MulTable(c, v[i])
			}
		}
		out[r] = acc
	}
	return out, nil
}

// RREF reduces m in place to reduced row-echelon form using Gauss–Jordan
// elimination (the paper's decoding algorithm, Sec. 3) and returns the rank.
// Pivoting selects the first non-zero entry in the pivot column at or below
// the current row, mirroring the GPU kernel's "first non-zero coefficient"
// search — GF(2^8) arithmetic is exact, so no magnitude pivoting is needed.
func (m *Matrix) RREF() int {
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			m.swapRows(pivot, rank)
		}
		prow := m.Row(rank)
		if pv := prow[col]; pv != 1 {
			gf256.ScaleSlice(prow, gf256.Inv(pv))
		}
		for r := 0; r < m.rows; r++ {
			if r == rank {
				continue
			}
			if f := m.At(r, col); f != 0 {
				gf256.MulAddSlice(m.Row(r), prow, f)
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of m without modifying it.
func (m *Matrix) Rank() int { return m.Clone().RREF() }

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination on the augmented
// matrix [m | I] — exactly the first stage of the paper's multi-segment
// decoder (Sec. 5.2). It returns ErrSingular for rank-deficient input.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: inverse of non-square %d×%d: %w", m.rows, m.cols, ErrSingular)
	}
	aug, err := m.Augment(Identity(m.rows))
	if err != nil {
		return nil, err
	}
	aug.RREF()
	// Rank of [C | I] is always full, so singularity must be detected on the
	// left block: it reduces to the identity iff C was invertible.
	if !aug.Slice(0, m.cols).IsIdentity() {
		return nil, ErrSingular
	}
	return aug.Slice(m.cols, 2*m.cols), nil
}

func (m *Matrix) swapRows(a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// String renders the matrix in hex for debugging and test failure output.
func (m *Matrix) String() string {
	var sb strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%02x", m.At(r, c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
