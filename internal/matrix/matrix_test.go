package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"extremenc/internal/gf256"
)

func TestNewZeroAndShape(t *testing.T) {
	m := New(3, 5)
	if m.Rows() != 3 || m.Cols() != 5 {
		t.Fatalf("shape = %d×%d, want 3×5", m.Rows(), m.Cols())
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 5; c++ {
			if m.At(r, c) != 0 {
				t.Fatalf("fresh matrix non-zero at (%d,%d)", r, c)
			}
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != 2 {
		t.Fatalf("FromRows layout wrong:\n%s", m)
	}
	if _, err := FromRows([][]byte{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("FromRows(nil) = %v rows, err %v", empty.Rows(), err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.IsIdentity() {
		t.Fatalf("Identity(4) fails IsIdentity:\n%s", id)
	}
	if id.Rank() != 4 {
		t.Fatalf("Identity rank = %d", id.Rank())
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := New(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row does not alias storage")
	}
}

func TestMulAgainstScalarDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := Random(4, 6, rng)
	b := Random(6, 3, rng)
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			var want byte
			for i := 0; i < 6; i++ {
				want ^= gf256.MulTable(a.At(r, i), b.At(i, c))
			}
			if p.At(r, c) != want {
				t.Fatalf("Mul (%d,%d) = %#x, want %#x", r, c, p.At(r, c), want)
			}
		}
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("shape-mismatched Mul accepted")
	}
}

func TestMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := Random(5, 7, rng)
	v := make([]byte, 7)
	rng.Read(v)
	got, err := m.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	col := New(7, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want, err := m.Mul(col)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec[%d] = %#x, want %#x", i, got[i], want.At(i, 0))
		}
	}
	if _, err := m.MulVec(v[:3]); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestRREFProducesIdentityForFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 8, 32} {
		m := RandomFullRank(n, rng)
		r := m.Clone()
		if rank := r.RREF(); rank != n {
			t.Fatalf("n=%d RREF rank = %d", n, rank)
		}
		if !r.IsIdentity() {
			t.Fatalf("n=%d RREF of full-rank square is not identity:\n%s", n, r)
		}
	}
}

func TestRREFIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := Random(6, 10, rng)
	m.RREF()
	once := m.Clone()
	m.RREF()
	if !m.Equal(once) {
		t.Fatal("RREF is not idempotent")
	}
}

func TestRankProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Duplicated row must reduce rank.
	m := Random(4, 4, rng)
	copy(m.Row(3), m.Row(0))
	if r := m.Rank(); r > 3 {
		t.Fatalf("matrix with duplicate rows has rank %d", r)
	}
	// A scaled row is linearly dependent too.
	m2 := RandomFullRank(4, rng)
	gf256.MulSlice(m2.Row(2), m2.Row(1), 0x35)
	if r := m2.Rank(); r != 3 {
		t.Fatalf("scaled-row matrix rank = %d, want 3", r)
	}
	if z := New(3, 3).Rank(); z != 0 {
		t.Fatalf("zero matrix rank = %d", z)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 2, 3, 16, 64} {
		m := RandomFullRank(n, rng)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		p, err := m.Mul(inv)
		if err != nil {
			t.Fatal(err)
		}
		if !p.IsIdentity() {
			t.Fatalf("n=%d: m·m⁻¹ != I", n)
		}
		q, err := inv.Mul(m)
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsIdentity() {
			t.Fatalf("n=%d: m⁻¹·m != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := New(3, 3) // zero matrix
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix inverse err = %v, want ErrSingular", err)
	}
	if _, err := New(2, 3).Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatal("non-square inverse did not report ErrSingular")
	}
}

func TestAugmentAndSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := Random(3, 2, rng)
	b := Random(3, 4, rng)
	aug, err := a.Augment(b)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Cols() != 6 {
		t.Fatalf("augment cols = %d", aug.Cols())
	}
	if !aug.Slice(0, 2).Equal(a) || !aug.Slice(2, 6).Equal(b) {
		t.Fatal("Slice does not recover augment parts")
	}
	if _, err := a.Augment(Random(2, 2, rng)); err == nil {
		t.Fatal("row-mismatched augment accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// TestSolveProperty: for random invertible C and random b, C·(C⁻¹·b) == b.
// This is precisely the decode equation b = C⁻¹x from the paper.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		c := RandomFullRank(n, rng)
		x := Random(n, 9, rng)
		inv, err := c.Inverse()
		if err != nil {
			return false
		}
		b, err := inv.Mul(x)
		if err != nil {
			return false
		}
		back, err := c.Mul(b)
		if err != nil {
			return false
		}
		return back.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomFullRankAlwaysInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		m := RandomFullRank(8, rng)
		if m.Rank() != 8 {
			t.Fatalf("RandomFullRank produced rank %d", m.Rank())
		}
	}
}

func BenchmarkRREF(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{64, 128, 256} {
		m := RandomFullRank(n, rng)
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Clone().RREF()
			}
		})
	}
}

func BenchmarkInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	m := RandomFullRank(128, rng)
	for i := 0; i < b.N; i++ {
		if _, err := m.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestRankBounds: rank(AB) ≤ min(rank A, rank B) and
// rank(A+B) ≤ rank(A)+rank(B) over random GF matrices.
func TestRankBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		a := Random(n, n, rng)
		b := Random(n, n, rng)
		// Inject rank deficiency half the time.
		if trial%2 == 0 {
			copy(a.Row(n-1), a.Row(0))
		}
		ra, rb := a.Rank(), b.Rank()
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := ab.Rank(); r > min(ra, rb) {
			t.Fatalf("rank(AB)=%d exceeds min(%d,%d)", r, ra, rb)
		}
		sum := a.Clone()
		for r := 0; r < n; r++ {
			gf256.AddSlice(sum.Row(r), b.Row(r))
		}
		if r := sum.Rank(); r > ra+rb {
			t.Fatalf("rank(A+B)=%d exceeds %d+%d", r, ra, rb)
		}
	}
}
