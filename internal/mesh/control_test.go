package mesh

import (
	"errors"
	"testing"
	"time"

	"extremenc/internal/netio"
)

// fakeClock gives the pool a hand-cranked time source so health thresholds
// are tested deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock(p *Pool) *fakeClock {
	c := &fakeClock{t: time.Unix(1000, 0)}
	p.now = c.now
	return c
}

func TestPoolLifecycle(t *testing.T) {
	p := NewPool()
	if err := p.Add("r1", "addr1", nil, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("r1", "addr1", nil, 8); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if s, _ := p.StateOf("r1"); s != StateJoining {
		t.Fatalf("fresh member state %v, want joining", s)
	}
	p.Heartbeat("r1")
	if s, _ := p.StateOf("r1"); s != StateActive {
		t.Fatalf("heartbeated member state %v, want active", s)
	}
	if got := p.InState(StateActive); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("InState(active) = %v", got)
	}
	if addr, ok := p.Addr("r1"); !ok || addr != "addr1" {
		t.Fatalf("Addr = %q, %v", addr, ok)
	}
	if _, ok := p.StateOf("ghost"); ok {
		t.Fatal("unknown member reported present")
	}
}

func TestHealthSweepTransitions(t *testing.T) {
	p := NewPool()
	clock := newFakeClock(p)
	rank := 0
	if err := p.Add("r", "a", func() int { return rank }, 4); err != nil {
		t.Fatal(err)
	}
	h := NewHealth(p, HealthConfig{SuspectAfter: 100 * time.Millisecond, DeadAfter: 300 * time.Millisecond})
	p.Heartbeat("r")

	// Overdue heartbeat: active → suspect, then a late beat restores it.
	clock.advance(150 * time.Millisecond)
	trs := h.Sweep()
	if len(trs) != 1 || trs[0].To != StateSuspect {
		t.Fatalf("sweep transitions = %+v, want one → suspect", trs)
	}
	p.Heartbeat("r")
	if s, _ := p.StateOf("r"); s != StateActive {
		t.Fatalf("late beat left state %v, want active", s)
	}

	// Rank stall: beats keep flowing but rank is stuck below full — the
	// member is quarantined as suspect, never buried.
	rank = 2
	h.Sweep() // record the rank-2 progress point
	for i := 0; i < 10; i++ {
		clock.advance(50 * time.Millisecond)
		p.Heartbeat("r")
		h.Sweep()
	}
	if s, _ := p.StateOf("r"); s != StateSuspect {
		t.Fatalf("rank-stalled member state %v, want suspect", s)
	}
	if p.deaths.Load() != 0 {
		t.Fatal("rank stall counted as a death")
	}

	// Progress resumes: the next beat reactivates, and a warm relay
	// (rank == full) never re-trips the stall detector.
	rank = 4
	p.Heartbeat("r")
	h.Sweep()
	if s, _ := p.StateOf("r"); s != StateActive {
		t.Fatalf("recovered member state %v, want active", s)
	}
	for i := 0; i < 10; i++ {
		clock.advance(50 * time.Millisecond)
		p.Heartbeat("r")
		h.Sweep()
	}
	if s, _ := p.StateOf("r"); s != StateActive {
		t.Fatalf("warm member state %v, want active", s)
	}

	// Beats stop entirely: suspect, then dead, and death is terminal.
	clock.advance(350 * time.Millisecond)
	h.Sweep()
	if s, _ := p.StateOf("r"); s != StateDead {
		t.Fatalf("silent member state %v, want dead", s)
	}
	if p.deaths.Load() != 1 {
		t.Fatalf("deaths = %d, want 1", p.deaths.Load())
	}
	p.Heartbeat("r")
	if s, _ := p.StateOf("r"); s != StateDead {
		t.Fatal("a beat resurrected a dead member")
	}
}

func TestCoordinatorBalancesAndReroutes(t *testing.T) {
	p := NewPool()
	for _, id := range []string{"r1", "r2"} {
		if err := p.Add(id, "addr-"+id, nil, 8); err != nil {
			t.Fatal(err)
		}
		p.Heartbeat(id)
	}
	c := NewCoordinator(p)

	rds := make([]*netio.Redirector, 4)
	byRelay := map[string]int{}
	for i := range rds {
		rds[i] = netio.NewRedirector("")
		id, err := c.Assign(i, rds[i])
		if err != nil {
			t.Fatal(err)
		}
		byRelay[id]++
		if got, _ := p.Addr(id); rds[i].Target() != got {
			t.Fatalf("leaf %d target %q, relay addr %q", i, rds[i].Target(), got)
		}
	}
	if byRelay["r1"] != 2 || byRelay["r2"] != 2 {
		t.Fatalf("assignment not balanced: %v", byRelay)
	}

	// Reroute leaf 0 off its relay: it must land on the other one.
	from, _ := c.RouteOf(0)
	changed, err := c.Reroute(0, from)
	if err != nil || !changed {
		t.Fatalf("reroute: changed=%v err=%v", changed, err)
	}
	to, _ := c.RouteOf(0)
	if to == from {
		t.Fatal("reroute kept the excluded relay")
	}
	// Two target changes so far: the initial assignment and the reroute.
	if rds[0].Redirects() != 2 {
		t.Fatalf("redirects = %d, want 2", rds[0].Redirects())
	}

	// With every alternative excluded the reroute reports ErrNoRelays.
	p.mu.Lock()
	p.members[from].state = StateDead
	p.mu.Unlock()
	if _, err := c.Reroute(0, to); !errors.Is(err, ErrNoRelays) {
		t.Fatalf("reroute with no alternative: %v, want ErrNoRelays", err)
	}
	if _, err := c.Reroute(99, "r1"); err == nil {
		t.Fatal("reroute of unassigned leaf accepted")
	}

	// Released leaves drop out of the load accounting.
	c.Release(0)
	if _, ok := c.RouteOf(0); ok {
		t.Fatal("released leaf still routed")
	}
}

func TestRemediatorMovesLeavesOffDeadRelay(t *testing.T) {
	p := NewPool()
	clock := newFakeClock(p)
	for _, id := range []string{"r1", "r2"} {
		if err := p.Add(id, "addr-"+id, nil, 8); err != nil {
			t.Fatal(err)
		}
		p.Heartbeat(id)
	}
	c := NewCoordinator(p)
	h := NewHealth(p, HealthConfig{SuspectAfter: 100 * time.Millisecond, DeadAfter: 300 * time.Millisecond})
	rem := NewRemediator(h, c, time.Millisecond)

	rd := netio.NewRedirector("")
	relayID, err := c.Assign(0, rd)
	if err != nil {
		t.Fatal(err)
	}

	// Only the other relay keeps beating; the assigned one goes silent.
	other := "r1"
	if relayID == "r1" {
		other = "r2"
	}
	clock.advance(150 * time.Millisecond)
	p.Heartbeat(other)
	if moved := rem.Step(); moved != 1 {
		t.Fatalf("step moved %d leaves, want 1", moved)
	}
	if got, _ := c.RouteOf(0); got != other {
		t.Fatalf("leaf routed to %q, want %q", got, other)
	}
	if wantAddr, _ := p.Addr(other); rd.Target() != wantAddr {
		t.Fatalf("redirector target %q, want %q", rd.Target(), wantAddr)
	}
	if rem.Remediations() != 1 {
		t.Fatalf("remediations = %d, want 1", rem.Remediations())
	}
	// A healthy steady state moves nothing.
	p.Heartbeat(other)
	if moved := rem.Step(); moved != 0 {
		t.Fatalf("steady-state step moved %d leaves", moved)
	}
}
