package mesh

import (
	"errors"
	"sort"
	"sync"

	"extremenc/internal/netio"
	"extremenc/internal/obs"
)

// ErrNoRelays reports an assignment request with no usable relay in the
// pool.
var ErrNoRelays = errors.New("mesh: no usable relay in the pool")

// route is one leaf's current assignment.
type route struct {
	relayID string
	rd      *netio.Redirector
}

// Coordinator assigns leaves to relays and re-points them when health says
// their relay is gone. Assignment is least-loaded-first over active members
// (joining members are used only when nothing is active yet — mesh
// startup); re-routing hands the leaf's Redirector a fresh dial target, and
// the leaf's resilient fetcher does the rest — its next reconnect lands on
// the new relay carrying all accumulated rank.
type Coordinator struct {
	pool *Pool

	mu     sync.Mutex
	routes map[int]*route

	assigns  obs.Counter
	reroutes obs.Counter
}

// NewCoordinator returns a coordinator over pool.
func NewCoordinator(pool *Pool) *Coordinator {
	return &Coordinator{pool: pool, routes: make(map[int]*route)}
}

// Instrument registers the coordinator's counters into reg under the "mesh"
// prefix.
func (c *Coordinator) Instrument(reg *obs.Registry) error {
	if err := reg.RegisterCounter("mesh.assignments_total",
		"leaf-to-relay assignments made", &c.assigns); err != nil {
		return err
	}
	return reg.RegisterCounter("mesh.reroutes_total",
		"leaves re-pointed at a different relay", &c.reroutes)
}

// Assign picks a relay for leafID, points rd at it, and records the route.
// It returns the chosen relay's ID.
func (c *Coordinator) Assign(leafID int, rd *netio.Redirector) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, addr, err := c.pick("")
	if err != nil {
		return "", err
	}
	rd.SetTarget(addr)
	c.routes[leafID] = &route{relayID: id, rd: rd}
	c.assigns.Inc()
	return id, nil
}

// Reroute re-points leafID at a usable relay other than exclude (typically
// its current, failed relay). It reports whether the route changed; with no
// alternative available the current route is kept for the next sweep to
// retry.
func (c *Coordinator) Reroute(leafID int, exclude string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rt := c.routes[leafID]
	if rt == nil {
		return false, errors.New("mesh: reroute of unassigned leaf")
	}
	id, addr, err := c.pick(exclude)
	if err != nil {
		return false, err
	}
	if id == rt.relayID {
		return false, nil
	}
	rt.relayID = id
	rt.rd.SetTarget(addr)
	c.reroutes.Inc()
	return true, nil
}

// Release drops leafID from the routing table — called when its fetch
// finishes, so load counts and remediation only consider live leaves.
func (c *Coordinator) Release(leafID int) {
	c.mu.Lock()
	delete(c.routes, leafID)
	c.mu.Unlock()
}

// RouteOf returns the relay currently serving leafID.
func (c *Coordinator) RouteOf(leafID int) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rt := c.routes[leafID]
	if rt == nil {
		return "", false
	}
	return rt.relayID, true
}

// Routes returns a copy of the leaf→relay assignment map.
func (c *Coordinator) Routes() map[int]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]string, len(c.routes))
	for leaf, rt := range c.routes {
		out[leaf] = rt.relayID
	}
	return out
}

// pick chooses the least-loaded usable relay, excluding the named one.
// Callers hold c.mu (the load count reads c.routes).
func (c *Coordinator) pick(exclude string) (id, addr string, err error) {
	candidates := c.pool.InState(StateActive)
	if len(candidates) == 0 {
		candidates = c.pool.InState(StateJoining)
	}
	load := make(map[string]int, len(candidates))
	for _, rt := range c.routes {
		load[rt.relayID]++
	}
	usable := candidates[:0]
	for _, cand := range candidates {
		if cand != exclude {
			usable = append(usable, cand)
		}
	}
	if len(usable) == 0 {
		return "", "", ErrNoRelays
	}
	sort.SliceStable(usable, func(i, j int) bool { return load[usable[i]] < load[usable[j]] })
	id = usable[0]
	addr, ok := c.pool.Addr(id)
	if !ok {
		return "", "", ErrNoRelays
	}
	return id, addr, nil
}
