package mesh

import "time"

// HealthConfig sets the failure-detector thresholds.
type HealthConfig struct {
	// SuspectAfter is how long a heartbeat may be overdue — or, for a
	// not-yet-warm relay, how long its rank may stall — before the member
	// is marked suspect and taken out of the assignment rotation.
	SuspectAfter time.Duration
	// DeadAfter is how long a heartbeat may be overdue before the member is
	// declared dead (terminal). Must exceed SuspectAfter.
	DeadAfter time.Duration
}

// Health is the mesh failure detector: a periodic sweep over the pool that
// combines two signals. Heartbeats are pure liveness — a relay whose beats
// stop is suspect, then dead. Rank progress is usefulness — a relay that
// heartbeats dutifully but whose recoders stop gaining rank before reaching
// full is stuck (an upstream partition, a wedged fetch) and is marked
// suspect so no new leaves land on it, without being killed: its
// accumulated rank still serves the leaves it has.
type Health struct {
	pool *Pool
	cfg  HealthConfig
}

// NewHealth returns a checker over pool with thresholds from cfg.
func NewHealth(pool *Pool, cfg HealthConfig) *Health {
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 2 * cfg.SuspectAfter
	}
	return &Health{pool: pool, cfg: cfg}
}

// Transition records one state change made by a sweep.
type Transition struct {
	ID       string
	From, To State
}

// Sweep probes every member once and applies state transitions, returning
// the changes it made. Dead is terminal; joining members are given until
// DeadAfter for their first beat.
func (h *Health) Sweep() []Transition {
	p := h.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	var trs []Transition
	for _, m := range p.members {
		// Dead is terminal; draining is a deliberate absence the drain's own
		// deadline bounds — judging either would only misfire (a drained
		// member must not be buried mid-restart, Rejoin resets its clocks).
		if m.state == StateDead || m.state == StateDraining {
			continue
		}
		if m.rankFn != nil {
			if rank := m.rankFn(); rank > m.lastRank {
				m.lastRank = rank
				m.lastRankChange = now
			}
		}
		beatAge := now.Sub(m.lastBeat)
		next := m.state
		switch {
		case beatAge > h.cfg.DeadAfter:
			next = StateDead
		case beatAge > h.cfg.SuspectAfter:
			next = StateSuspect
		case m.state == StateActive && m.lastRank < m.fullRank &&
			now.Sub(m.lastRankChange) > h.cfg.DeadAfter:
			// Alive but stuck below full rank: quarantine, don't bury.
			next = StateSuspect
		}
		if next != m.state {
			trs = append(trs, Transition{ID: m.id, From: m.state, To: next})
			m.state = next
			if next == StateDead {
				p.deaths.Inc()
			}
		}
	}
	return trs
}
