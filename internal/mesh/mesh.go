package mesh

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

// Topology describes a mesh run: one origin serving media, a tier of
// recoding relays fetching from it, and a tier of leaf fetchers assigned to
// relays by the coordinator. Zero-valued durations get fast-sweep defaults
// sized for in-process loopback runs.
type Topology struct {
	// Media and Params define the object the origin serves.
	Media  []byte
	Params rlnc.Params

	// Relays and Leaves size the two tiers.
	Relays int
	Leaves int

	// OriginMode is the origin's wire mode (default ModeDense).
	OriginMode netio.WireMode
	// XorRecode switches every relay to GF(2) XOR recombination with
	// ModeSystematic downstream framing.
	XorRecode bool
	// OriginMaxSessions caps concurrent origin sessions (0 = unlimited) —
	// the knob that makes a relay tier pay off: relays warm up, release
	// their origin slots, and fan out in parallel.
	OriginMaxSessions int
	// OriginPace floors the origin's pump-round interval, modeling a
	// capacity-constrained origin uplink (see netio.WithServePace). Warm
	// relays serve unpaced, so this is the constraint a relay tier
	// overcomes.
	OriginPace time.Duration

	// Seed drives every deterministic choice in the mesh.
	Seed int64

	// Traced threads distributed tracing through every tier: the origin
	// mints the transfer's trace ID and declares it in each handshake,
	// relays inherit it upstream and re-declare it downstream, and leaves
	// parent their absorb spans under relay pump rounds. It only takes
	// effect while the process trace recorder is enabled (trace.Enable).
	Traced bool

	// UpstreamFaults / DownstreamFaults, when non-nil, wrap the
	// relay→origin and leaf→relay connections in faultnet chaos.
	UpstreamFaults   *faultnet.Config
	DownstreamFaults *faultnet.Config

	// Heartbeat is the relay heartbeat period; Sweep the remediation
	// period; Health the failure-detector thresholds.
	Heartbeat time.Duration
	Sweep     time.Duration
	Health    HealthConfig

	// Registry, when non-nil, receives the full mesh observability surface:
	// origin server counters, control-plane counters, relay stage spans
	// (via the process sink), and faultnet injection totals.
	Registry *obs.Registry

	// LeafFetchOpts, when non-nil, appends extra fetcher options for each
	// leaf (test hooks, attempt budgets).
	LeafFetchOpts func(leaf int) []netio.FetcherOption

	// RelayServerOpts, when non-nil, appends extra server options for each
	// relay's downstream server (queue tuning, brownout, retry-after hints).
	// The options are reapplied to every replacement server a Restart builds,
	// so they must not bind single-use resources like a metrics registry.
	RelayServerOpts func(relay int) []netio.ServerOption
}

// withDefaults fills in the fast-sweep defaults.
func (t Topology) withDefaults() Topology {
	if t.Heartbeat <= 0 {
		t.Heartbeat = 15 * time.Millisecond
	}
	if t.Sweep <= 0 {
		t.Sweep = 20 * time.Millisecond
	}
	if t.Health.SuspectAfter <= 0 {
		t.Health.SuspectAfter = 4 * t.Heartbeat
	}
	if t.Health.DeadAfter <= 0 {
		t.Health.DeadAfter = 8 * t.Heartbeat
	}
	return t
}

// Leaf is one downstream fetcher: a Redirector the coordinator owns plus
// the resilient fetch running over it.
type Leaf struct {
	ID int

	rd         *netio.Redirector
	f          *netio.Fetcher
	records    atomic.Int64
	reconnects atomic.Int64

	done chan struct{}
	res  *netio.FetchResult
	err  error

	started  time.Time
	finished time.Time
}

// Done is closed when the leaf's fetch has finished (either way).
func (l *Leaf) Done() <-chan struct{} { return l.done }

// Result returns the fetch outcome; valid only after Done is closed.
func (l *Leaf) Result() (*netio.FetchResult, error) { return l.res, l.err }

// Records returns how many valid records the leaf has received so far —
// safe during the fetch (it is fed by the record tap).
func (l *Leaf) Records() int64 { return l.records.Load() }

// Reconnects returns how many reconnects the leaf's fetch has performed.
func (l *Leaf) Reconnects() int64 { return l.reconnects.Load() }

// Redirector exposes the leaf's dial target for inspection.
func (l *Leaf) Redirector() *netio.Redirector { return l.rd }

// FetchStats snapshots the leaf's fetch ledger — including the admission
// counters that record BUSY and REDIRECT decisions — safe during the fetch.
func (l *Leaf) FetchStats() *netio.FetchStats { return l.f.Stats() }

// Duration returns the leaf's fetch wall-clock time; valid after Done.
func (l *Leaf) Duration() time.Duration { return l.finished.Sub(l.started) }

// Mesh is a running topology.
type Mesh struct {
	topo Topology

	origin   *netio.Server
	originLn net.Listener

	pool   *Pool
	coord  *Coordinator
	health *Health
	rem    *Remediator

	relays  []*Relay
	hbStops map[string]chan struct{}
	leaves  []*Leaf

	upCtr, downCtr *faultnet.Counters
	upSeq, downSeq atomic.Int64

	tapped          obs.Counter
	emitted         obs.Counter
	leafCompletions obs.Counter
	rankRegressions obs.Counter

	ctx    context.Context
	cancel context.CancelFunc
}

// New validates topo and builds the origin and control plane. Nothing runs
// until Start.
func New(topo Topology) (*Mesh, error) {
	topo = topo.withDefaults()
	if topo.Relays < 1 {
		return nil, errors.New("mesh: need at least one relay")
	}
	if topo.Leaves < 0 {
		return nil, errors.New("mesh: negative leaf count")
	}
	originOpts := []netio.ServerOption{
		netio.WithServerSeed(topo.Seed),
		netio.WithWireMode(topo.OriginMode),
	}
	if topo.OriginMaxSessions > 0 {
		originOpts = append(originOpts, netio.WithMaxSessions(topo.OriginMaxSessions))
	}
	if topo.OriginPace > 0 {
		originOpts = append(originOpts, netio.WithServePace(topo.OriginPace))
	}
	if topo.Registry != nil {
		originOpts = append(originOpts, netio.WithMetricsRegistry(topo.Registry))
	}
	if topo.Traced {
		originOpts = append(originOpts, netio.WithServerTrace("origin"))
	}
	origin, err := netio.NewServer(topo.Media, topo.Params, originOpts...)
	if err != nil {
		return nil, err
	}

	m := &Mesh{
		topo:    topo,
		origin:  origin,
		pool:    NewPool(),
		hbStops: make(map[string]chan struct{}),
		upCtr:   &faultnet.Counters{},
		downCtr: &faultnet.Counters{},
	}
	m.coord = NewCoordinator(m.pool)
	m.health = NewHealth(m.pool, topo.Health)
	m.rem = NewRemediator(m.health, m.coord, topo.Sweep)

	if reg := topo.Registry; reg != nil {
		for _, err := range []error{
			m.pool.Instrument(reg),
			m.coord.Instrument(reg),
			m.rem.Instrument(reg),
			reg.RegisterCounter("mesh.records_tapped_total",
				"upstream records absorbed into relay recoders", &m.tapped),
			reg.RegisterCounter("mesh.blocks_recoded_total",
				"recoded blocks emitted by relays", &m.emitted),
			reg.RegisterCounter("mesh.leaf_completions_total",
				"leaf fetches finished", &m.leafCompletions),
			reg.RegisterCounter("mesh.rank_regressions_total",
				"leaf reconnects that lost decoder rank (must stay zero)", &m.rankRegressions),
		} {
			if err != nil {
				return nil, err
			}
		}
		if topo.UpstreamFaults != nil {
			if err := m.upCtr.Register(reg, "faultnet_up"); err != nil {
				return nil, err
			}
		}
		if topo.DownstreamFaults != nil {
			if err := m.downCtr.Register(reg, "faultnet_down"); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// chaosDial wraps base so every dialed connection carries a fresh-seeded
// faultnet layer accumulating into ctr.
func chaosDial(cfg faultnet.Config, ctr *faultnet.Counters, seq *atomic.Int64, base netio.DialFunc) netio.DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		c, err := base(ctx)
		if err != nil {
			return nil, err
		}
		cc := cfg
		cc.Seed = cfg.Seed + seq.Add(1)*-0x61C8864680B583EB
		return faultnet.WrapWith(c, cc, ctr), nil
	}
}

// tcpDial returns a DialFunc for a fixed loopback address.
func tcpDial(addr string) netio.DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// Start brings the mesh up: origin serving on loopback, every relay
// fetching (through upstream chaos, if configured) and serving, heartbeats
// flowing, and the remediation loop sweeping. It returns once every relay
// has completed its first upstream handshake and registered with the pool.
// The mesh runs until ctx ends or Close is called.
func (m *Mesh) Start(ctx context.Context) error {
	m.ctx, m.cancel = context.WithCancel(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mesh: origin listen: %w", err)
	}
	m.originLn = ln
	go m.origin.Serve(m.ctx, ln)

	fullRank := m.origin.Segments() * m.topo.Params.BlockCount
	for i := 0; i < m.topo.Relays; i++ {
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return fmt.Errorf("mesh: relay %d listen: %w", i, err)
		}
		up := tcpDial(ln.Addr().String())
		if m.topo.UpstreamFaults != nil {
			up = chaosDial(*m.topo.UpstreamFaults, m.upCtr, &m.upSeq, up)
		}
		id := fmt.Sprintf("relay-%d", i)
		var srvOpts []netio.ServerOption
		if m.topo.RelayServerOpts != nil {
			srvOpts = m.topo.RelayServerOpts(i)
		}
		relay, err := StartRelay(m.ctx, RelayConfig{
			ID:        id,
			Upstream:  up,
			Listener:  rln,
			XorRecode: m.topo.XorRecode,
			Seed:      m.topo.Seed + int64(i+1)*104729,
			FetchOpts: []netio.FetcherOption{
				netio.WithBackoff(2*time.Millisecond, 50*time.Millisecond),
				netio.WithBackoffSeed(m.topo.Seed + int64(i)),
			},
			ServerOpts: srvOpts,
			Tapped:     &m.tapped,
			Emitted:    &m.emitted,
		})
		if err != nil {
			rln.Close()
			m.Close()
			return err
		}
		m.relays = append(m.relays, relay)
		if reg := m.topo.Registry; reg != nil {
			// Per-relay downstream ledgers, accumulated across restarts, so a
			// single scrape can check offered == sent + shed on drained and
			// surviving relays alike.
			relay := relay
			for _, g := range []struct {
				name, help string
				value      func(netio.CounterView) int64
			}{
				{"blocks_offered", "blocks offered to delivery queues across restarts",
					func(v netio.CounterView) int64 { return v.BlocksOffered }},
				{"blocks_sent", "blocks fully written to peers across restarts",
					func(v netio.CounterView) int64 { return v.BlocksSent }},
				{"blocks_shed", "blocks dropped by backpressure or teardown across restarts",
					func(v netio.CounterView) int64 { return v.BlocksShed }},
			} {
				g := g
				if err := reg.RegisterFunc(fmt.Sprintf("mesh.relay%d_%s", i, g.name),
					fmt.Sprintf("relay %d downstream %s", i, g.help), func() float64 {
						return float64(g.value(relay.Ledger()))
					}); err != nil {
					m.Close()
					return err
				}
			}
		}
		if err := m.pool.Add(id, relay.Addr(), relay.TotalRank, fullRank); err != nil {
			m.Close()
			return err
		}
		stop := make(chan struct{})
		m.hbStops[id] = stop
		go m.heartbeatLoop(id, stop)
	}

	go m.rem.Run(m.ctx)
	return nil
}

// heartbeatLoop beats for relay id until its stop channel closes (relay
// killed) or the mesh shuts down.
func (m *Mesh) heartbeatLoop(id string, stop chan struct{}) {
	t := time.NewTicker(m.topo.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.pool.Heartbeat(id)
		}
	}
}

// StartLeaves assigns every topology leaf a relay and launches its fetch.
// Call after Start.
func (m *Mesh) StartLeaves(ctx context.Context) error {
	for i := 0; i < m.topo.Leaves; i++ {
		if _, err := m.AddLeaf(ctx); err != nil {
			return err
		}
	}
	return nil
}

// AddLeaf assigns one more leaf to a relay and launches its fetch,
// returning the leaf. Not safe to call concurrently with Snapshot or other
// AddLeaf calls — the driver (a test or the CLI) sequences leaf waves.
func (m *Mesh) AddLeaf(ctx context.Context) (*Leaf, error) {
	leaf := &Leaf{ID: len(m.leaves), rd: netio.NewRedirector(""), done: make(chan struct{})}
	if _, err := m.coord.Assign(leaf.ID, leaf.rd); err != nil {
		return nil, err
	}
	m.leaves = append(m.leaves, leaf)
	m.startLeafFetch(ctx, leaf)
	return leaf, nil
}

// startLeafFetch runs one leaf's resilient fetch in a goroutine, wiring the
// mesh's taps: record counting, reconnect counting, and the monotone-rank
// check (any regression lands in mesh.rank_regressions_total).
func (m *Mesh) startLeafFetch(ctx context.Context, leaf *Leaf) {
	prev := map[uint32]int{}
	opts := []netio.FetcherOption{
		netio.WithBackoff(2*time.Millisecond, 50*time.Millisecond),
		netio.WithBackoffSeed(m.topo.Seed + int64(1000+leaf.ID)),
		// A draining relay's REDIRECT decision walks the leaf straight to the
		// named survivor — the protocol-level fast path; remediation's route
		// sweep remains the control-plane backstop for leaves that were not
		// connected during the drain window.
		netio.WithRedirector(leaf.rd),
		netio.WithFetchTrace(fmt.Sprintf("leaf-%d", leaf.ID)),
		netio.WithRecordTap(func(*rlnc.CodedBlock) { leaf.records.Add(1) }),
		netio.WithReconnectHook(func(reconnect int, ranks map[uint32]int) {
			leaf.reconnects.Store(int64(reconnect))
			// The hook runs in the fetch goroutine, so prev needs no lock.
			for id, r := range ranks {
				if r < prev[id] {
					m.rankRegressions.Inc()
				}
				prev[id] = r
			}
		}),
	}
	if m.topo.LeafFetchOpts != nil {
		opts = append(opts, m.topo.LeafFetchOpts(leaf.ID)...)
	}
	dial := leaf.rd.Dial
	if m.topo.DownstreamFaults != nil {
		dial = chaosDial(*m.topo.DownstreamFaults, m.downCtr, &m.downSeq, dial)
	}
	f := netio.NewFetcher(dial, opts...)
	leaf.f = f
	leaf.started = time.Now()
	go func() {
		res, err := f.Fetch(ctx)
		leaf.res, leaf.err = res, err
		leaf.finished = time.Now()
		m.coord.Release(leaf.ID)
		m.leafCompletions.Inc()
		close(leaf.done)
	}()
}

// WaitLeaves blocks until the given leaves' fetches finish (all of the
// mesh's leaves when none are named) or ctx ends, then returns the first
// leaf error, if any.
func (m *Mesh) WaitLeaves(ctx context.Context, leaves ...*Leaf) error {
	if len(leaves) == 0 {
		leaves = m.leaves
	}
	for _, leaf := range leaves {
		select {
		case <-leaf.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, leaf := range leaves {
		if _, err := leaf.Result(); err != nil {
			return fmt.Errorf("mesh: leaf %d: %w", leaf.ID, err)
		}
	}
	return nil
}

// KillRelay simulates the abrupt death of relay id: heartbeats stop and the
// relay's listener, server, and upstream fetch are torn down. Leaves routed
// to it are left to the remediation loop.
func (m *Mesh) KillRelay(id string) error {
	stop, ok := m.hbStops[id]
	if !ok {
		return fmt.Errorf("mesh: no relay %q", id)
	}
	select {
	case <-stop:
	default:
		close(stop)
	}
	for _, r := range m.relays {
		if r.ID() == id {
			r.Close()
			return nil
		}
	}
	return fmt.Errorf("mesh: no relay %q", id)
}

// RestartRelay gracefully cycles relay id with zero loss: the pool marks it
// draining (the coordinator stops assigning to it and remediation walks
// routed leaves off), the relay's server drains — REDIRECT pointing
// connected leaves at a surviving active relay, in-flight sessions running
// to completion within ctx — and a fresh server over the same recoders
// rejoins the rotation at a new address. Rank never regresses: the recoders
// survive, and every redirected leaf carries its decoder state to the
// survivor.
func (m *Mesh) RestartRelay(ctx context.Context, id string) error {
	var target *Relay
	for _, r := range m.relays {
		if r.ID() == id {
			target = r
			break
		}
	}
	if target == nil {
		return fmt.Errorf("mesh: no relay %q", id)
	}
	if !m.pool.SetDraining(id) {
		return fmt.Errorf("mesh: relay %q is not eligible to drain", id)
	}
	// The redirect target is the least-loaded active survivor; with none
	// available the drain answers BUSY and leaves fall back on remediation.
	redirect := ""
	for _, cand := range m.pool.InState(StateActive) {
		if addr, ok := m.pool.Addr(cand); ok {
			redirect = addr
			break
		}
	}
	addr, err := target.Restart(ctx, redirect)
	if err != nil {
		return err
	}
	if !m.pool.Rejoin(id, addr) {
		return fmt.Errorf("mesh: relay %q could not rejoin the pool", id)
	}
	return nil
}

// Relays returns the mesh's relays in start order.
func (m *Mesh) Relays() []*Relay { return m.relays }

// Leaves returns the mesh's leaves in start order.
func (m *Mesh) Leaves() []*Leaf { return m.leaves }

// Pool returns the membership registry.
func (m *Mesh) Pool() *Pool { return m.pool }

// Coordinator returns the assignment plane.
func (m *Mesh) Coordinator() *Coordinator { return m.coord }

// Remediator returns the remediation loop.
func (m *Mesh) Remediator() *Remediator { return m.rem }

// OriginAddr returns the origin's loopback address; valid after Start.
func (m *Mesh) OriginAddr() string { return m.originLn.Addr().String() }

// Origin returns the origin server.
func (m *Mesh) Origin() *netio.Server { return m.origin }

// LeafView is one leaf's state for snapshots.
type LeafView struct {
	ID         int    `json:"id"`
	Relay      string `json:"relay"`
	Target     string `json:"target"`
	Records    int64  `json:"records"`
	Reconnects int64  `json:"reconnects"`
	Redirects  int64  `json:"redirects"`
	Done       bool   `json:"done"`
	Error      string `json:"error,omitempty"`
}

// MeshSnapshot is a point-in-time copy of the whole mesh, JSON-encodable
// for the ncmesh CLI.
type MeshSnapshot struct {
	Origin       netio.Snapshot `json:"origin"`
	Members      []MemberView   `json:"members"`
	Leaves       []LeafView     `json:"leaves"`
	Remediations int64          `json:"remediations"`
	Tapped       int64          `json:"records_tapped"`
	Emitted      int64          `json:"blocks_recoded"`
}

// Snapshot copies the mesh state.
func (m *Mesh) Snapshot() MeshSnapshot {
	snap := MeshSnapshot{
		Origin:       m.origin.Snapshot(),
		Members:      m.pool.Snapshot(),
		Remediations: m.rem.Remediations(),
		Tapped:       m.tapped.Load(),
		Emitted:      m.emitted.Load(),
	}
	routes := m.coord.Routes()
	for _, leaf := range m.leaves {
		lv := LeafView{
			ID:         leaf.ID,
			Relay:      routes[leaf.ID],
			Target:     leaf.rd.Target(),
			Records:    leaf.Records(),
			Reconnects: leaf.Reconnects(),
			Redirects:  leaf.rd.Redirects(),
		}
		select {
		case <-leaf.Done():
			lv.Done = true
			if _, err := leaf.Result(); err != nil {
				lv.Error = err.Error()
			}
		default:
		}
		snap.Leaves = append(snap.Leaves, lv)
	}
	return snap
}

// Close tears the whole mesh down. Idempotent.
func (m *Mesh) Close() {
	if m.cancel != nil {
		m.cancel()
	}
	for _, r := range m.relays {
		r.Close()
	}
	m.origin.Shutdown()
	if m.originLn != nil {
		m.originLn.Close()
	}
}
