package mesh

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

func testMedia(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	media := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(media)
	return media
}

// flightDumpOnFailure arms the flight recorder for the duration of a mesh
// gate and, if the gate fails, writes the event dump to flight-mesh.json at
// the repo root so CI can attach the postmortem to the failure.
func flightDumpOnFailure(t *testing.T) {
	t.Helper()
	trace.Enable(1 << 16)
	t.Cleanup(func() {
		defer trace.Disable()
		if !t.Failed() {
			return
		}
		path := filepath.Join("..", "..", "flight-mesh.json")
		if err := os.WriteFile(path, trace.DumpJSON(), 0o644); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		t.Logf("flight recorder dumped to %s", path)
	})
}

// startOrigin brings up a plain origin server on loopback for single-relay
// tests.
func startOrigin(t *testing.T, media []byte, p rlnc.Params, opts ...netio.ServerOption) (*netio.Server, net.Listener) {
	t.Helper()
	srv, err := netio.NewServer(media, p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.Serve(context.Background(), l)
	t.Cleanup(func() {
		srv.Shutdown()
		l.Close()
	})
	return srv, l
}

// TestRelayServesRecodedBlocks: origin → relay → leaf, all dense. The leaf
// only ever talks to the relay, and every record it absorbs is a recoded
// recombination — the decode must still be byte-identical (recoding
// obliviousness, paper Sec. 2).
func TestRelayServesRecodedBlocks(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 3*p.SegmentSize()-11, 5)
	_, ol := startOrigin(t, media, p, netio.WithServerSeed(2))

	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	relay, err := StartRelay(ctx, RelayConfig{
		ID: "r0", Upstream: tcpDial(ol.Addr().String()), Listener: rln, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	if relay.Info().Mode != netio.ModeDense {
		t.Fatalf("dense relay declares mode %v", relay.Info().Mode)
	}

	f := netio.NewFetcher(tcpDial(relay.Addr()))
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("fetch through relay: %v (stats %+v)", err, res.Stats)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the relay")
	}
	full := 3 * p.BlockCount
	if relay.TotalRank() != full {
		t.Fatalf("relay rank %d, want %d (leaf finished before relay?)", relay.TotalRank(), full)
	}
}

// TestRelayXorRecode: a systematic origin feeding an XOR-recode relay. The
// relay re-declares ModeSystematic downstream so its binary recombinations
// travel in the compact XNC2 encoding, and the leaf must still reassemble
// the object exactly.
func TestRelayXorRecode(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 2*p.SegmentSize()-7, 31)
	_, ol := startOrigin(t, media, p,
		netio.WithServerSeed(3), netio.WithWireMode(netio.ModeSystematic))

	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	relay, err := StartRelay(ctx, RelayConfig{
		ID: "rx", Upstream: tcpDial(ol.Addr().String()), Listener: rln,
		Seed: 13, XorRecode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	if relay.Info().Mode != netio.ModeSystematic {
		t.Fatalf("xor relay declares mode %v, want systematic", relay.Info().Mode)
	}

	f := netio.NewFetcher(tcpDial(relay.Addr()))
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("fetch through xor relay: %v (stats %+v)", err, res.Stats)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the xor relay")
	}
}

// TestMeshSmoke is the end-to-end CI gate for the relay mesh: origin → 3
// recoding relays → leaves, over loopback with faultnet corruption and
// resets on both tiers, with the origin capped to 2 concurrent sessions.
//
// Three legs, one mesh:
//
//  1. Throughput: with the relays warmed, 4 leaves fetch through the relay
//     tier; then the same 4 fetches run directly against the
//     single-session origin through identical chaos. Every chaos reset
//     sends a direct fetcher back through the session cap to contend with
//     three rivals, while mesh leaves reconnect to relays that never turn
//     anyone away — the relay tier must move the aggregate faster, which
//     is the fan-out claim of the relay architecture.
//  2. Kill: 4 more leaves start, and once they are demonstrably
//     mid-transfer, 2 of the 3 relays are killed abruptly (heartbeats and
//     sockets). Every leaf must still complete byte-identical, with zero
//     rank regression across all its reconnects.
//  3. Control plane: the health detector must declare both kills dead and
//     remediation must have moved leaves, all visible in one Prometheus
//     text exposition scraped through the in-repo parser.
func TestMeshSmoke(t *testing.T) {
	flightDumpOnFailure(t)
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	media := testMedia(t, 4*p.SegmentSize()-21, 77)

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	// Wave-2 leaves (ID >= 4) carry the kill trigger in their record taps:
	// after 30 records tapped across the wave — mid-transfer, a leaf needs
	// 64+ — two relays die abruptly.
	var m *Mesh
	var wave2Records atomic.Int64
	var killOnce sync.Once
	killed := make(chan struct{})
	topo := Topology{
		Media:             media,
		Params:            p,
		Relays:            3,
		Leaves:            4,
		OriginMaxSessions: 1,
		// The origin models a capacity-constrained uplink: one session at a
		// time, pump rounds floored at 40ms (~100 records/s). That is the
		// regime a relay tier exists for — and it keeps the mesh-vs-baseline
		// comparison meaningful on single-core CI runners, where parallelism
		// alone cannot shorten wall clock but idle serving capacity can.
		OriginPace: 40 * time.Millisecond,
		// Systematic origin + GF(2) XOR relays: the cheap-relay fast path,
		// end to end — binary recombinations travel as compact XNC2 records.
		OriginMode: netio.ModeSystematic,
		XorRecode:  true,
		Seed:       7,
		Registry:   reg,
		// Failure-detector thresholds sized for -race CI machines: a starved
		// heartbeat ticker must not bury a live relay (death is terminal).
		Heartbeat: 10 * time.Millisecond,
		Sweep:     25 * time.Millisecond,
		Health: HealthConfig{
			SuspectAfter: 250 * time.Millisecond,
			DeadAfter:    time.Second,
		},
		UpstreamFaults: &faultnet.Config{
			Seed: 11, CorruptEvery: 9000, ResetEvery: 6000, MaxReadChunk: 2048,
		},
		DownstreamFaults: &faultnet.Config{
			Seed: 13, CorruptEvery: 9000, ResetEvery: 5000, MaxReadChunk: 2048,
		},
		LeafFetchOpts: func(leaf int) []netio.FetcherOption {
			if leaf < 4 {
				return nil
			}
			return []netio.FetcherOption{netio.WithRecordTap(func(*rlnc.CodedBlock) {
				if wave2Records.Add(1) == 30 {
					killOnce.Do(func() {
						if err := m.KillRelay("relay-0"); err != nil {
							t.Error(err)
						}
						if err := m.KillRelay("relay-1"); err != nil {
							t.Error(err)
						}
						close(killed)
					})
				}
			})}
		},
	}
	var err error
	m, err = New(topo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Warm the relay tier: every relay holds the full object before the
	// measured wave starts (their fetches released the origin's only
	// session slot on completion).
	full := m.Origin().Segments() * p.BlockCount
	warmDeadline := time.Now().Add(time.Minute)
	for {
		warm := 0
		for _, r := range m.Relays() {
			if r.TotalRank() == full {
				warm++
			}
		}
		if warm == len(m.Relays()) {
			break
		}
		if time.Now().After(warmDeadline) {
			t.Fatalf("relays never warmed: %+v", m.Pool().Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Leg 1a: the mesh wave.
	meshStart := time.Now()
	if err := m.StartLeaves(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitLeaves(ctx); err != nil {
		t.Fatalf("mesh wave: %v", err)
	}
	meshElapsed := time.Since(meshStart)
	for _, leaf := range m.Leaves() {
		res, _ := leaf.Result()
		if !bytes.Equal(res.Payload, media) {
			t.Fatalf("leaf %d payload differs", leaf.ID)
		}
		t.Logf("mesh leaf %d: %v, records %d, reconnects %d, stats %+v",
			leaf.ID, leaf.Duration(), leaf.Records(), leaf.Reconnects(), res.Stats)
	}

	// Leg 1b: the same four transfers straight off the session-capped
	// origin, through an identical chaos layer. Rejected connections (cap)
	// and injected resets both surface as reconnect attempts.
	var baseCtr faultnet.Counters
	var baseSeq atomic.Int64
	baseStart := time.Now()
	var wg sync.WaitGroup
	baseErr := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dial := chaosDial(*topo.DownstreamFaults, &baseCtr, &baseSeq, tcpDial(m.OriginAddr()))
			f := netio.NewFetcher(dial,
				netio.WithBackoff(2*time.Millisecond, 50*time.Millisecond),
				netio.WithBackoffSeed(int64(9000+i)))
			res, err := f.Fetch(ctx)
			if err != nil {
				baseErr[i] = err
				return
			}
			if !bytes.Equal(res.Payload, media) {
				baseErr[i] = errFetchDiffers
			}
		}(i)
	}
	wg.Wait()
	baseElapsed := time.Since(baseStart)
	for i, err := range baseErr {
		if err != nil {
			t.Fatalf("baseline fetch %d: %v", i, err)
		}
	}
	t.Logf("aggregate 4-leaf transfer: mesh %v, capped-origin baseline %v", meshElapsed, baseElapsed)
	if meshElapsed >= baseElapsed {
		t.Errorf("relay tier did not beat the capped origin: mesh %v >= baseline %v", meshElapsed, baseElapsed)
	}

	// Leg 2: a second wave of leaves, with 2 of 3 relays killed mid-way.
	wave2 := make([]*Leaf, 0, 4)
	for i := 0; i < 4; i++ {
		leaf, err := m.AddLeaf(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wave2 = append(wave2, leaf)
	}
	if err := m.WaitLeaves(ctx, wave2...); err != nil {
		t.Fatalf("kill wave: %v (snapshot %+v)", err, m.Snapshot())
	}
	select {
	case <-killed:
	default:
		t.Fatal("kill trigger never fired: wave 2 finished under 30 records?")
	}
	for _, leaf := range wave2 {
		res, _ := leaf.Result()
		if !bytes.Equal(res.Payload, media) {
			t.Fatalf("post-kill leaf %d payload differs", leaf.ID)
		}
	}

	// Monotone rank: no leaf reconnect, across both waves and the kills,
	// may ever lose decoder rank.
	if v, _ := reg.CounterValue("mesh.rank_regressions_total"); v != 0 {
		t.Fatalf("rank regressed %d times across reconnects", v)
	}

	// Leg 3: the control plane saw it all. Death declaration lags the kill
	// by the detector thresholds, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := reg.CounterValue("mesh.relay_deaths_total"); v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health detector declared %d deaths, want 2 (pool %+v)",
				func() int64 { v, _ := reg.CounterValue("mesh.relay_deaths_total"); return v }(),
				m.Pool().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Key()] = s.Value
	}
	for _, want := range []struct {
		name string
		min  float64
	}{
		{"mesh_remediations_total", 1},
		{"mesh_relay_deaths_total", 2},
		{"mesh_heartbeats_total", 1},
		{"mesh_records_tapped_total", float64(3 * 4 * p.BlockCount)}, // 3 relays warmed fully
		{"mesh_blocks_recoded_total", 1},
		{"mesh_assignments_total", 8},
		{"mesh_leaf_completions_total", 8},
		{"netio_sessions_total", 1},
		{"faultnet_up_resets", 1},
		{"faultnet_up_corruptions", 1},
		{"faultnet_down_resets", 1},
	} {
		if got, ok := byName[want.name]; !ok || got < want.min {
			t.Errorf("exposition %s = %v (present %v), want >= %v", want.name, got, ok, want.min)
		}
	}

	snap := m.Snapshot()
	if snap.Remediations < 1 {
		t.Fatalf("snapshot remediations = %d, want >= 1", snap.Remediations)
	}
	for _, lv := range snap.Leaves {
		if !lv.Done || lv.Error != "" {
			t.Fatalf("snapshot leaf %+v not cleanly done", lv)
		}
	}
}

// errFetchDiffers avoids a testing.T capture inside the baseline goroutine.
var errFetchDiffers = errDiff{}

type errDiff struct{}

func (errDiff) Error() string { return "payload differs" }

// TestMeshRollingRestart is the drain gate: relays are restarted in sequence
// under faultnet chaos while leaves fetch through them, and nothing may be
// lost. Each restart drains — new handshakes on the draining relay get a
// REDIRECT naming an active survivor, which connected leaves must follow with
// all their rank — then rejoins the rotation at a fresh address. Afterwards:
// zero failed leaves, every payload byte-identical, zero rank regressions,
// at least one REDIRECT honored per drain, and the per-relay ledgers —
// drained and surviving alike, accumulated across restarts — balance exactly
// in one scraped exposition.
func TestMeshRollingRestart(t *testing.T) {
	flightDumpOnFailure(t)
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	media := testMedia(t, 4*p.SegmentSize()-13, 91)

	reg := obs.NewRegistry()
	topo := Topology{
		Media:      media,
		Params:     p,
		Relays:     3,
		Leaves:     0, // leaves start per wave below
		OriginMode: netio.ModeSystematic,
		XorRecode:  true,
		Seed:       19,
		Registry:   reg,
		Heartbeat:  10 * time.Millisecond,
		// Remediation swept rarely on purpose: the REDIRECT protocol path,
		// not the control-plane route sweep, must be what walks leaves off
		// the draining relays.
		Sweep: 5 * time.Second,
		Health: HealthConfig{
			SuspectAfter: 2 * time.Second,
			DeadAfter:    10 * time.Second,
		},
		UpstreamFaults: &faultnet.Config{
			Seed: 41, CorruptEvery: 9000, ResetEvery: 6000, MaxReadChunk: 2048,
		},
		// Reset-heavy downstream chaos: every leaf connection dies within
		// ~8KB — well short of the ~20KB object — so every leaf reconnects
		// through admission repeatedly and a drain is guaranteed to be seen.
		DownstreamFaults: &faultnet.Config{
			Seed: 43, CorruptEvery: 9000, ResetEvery: 4000, MaxReadChunk: 2048,
		},
		// Paced relay serving keeps each wave in flight long enough to drain
		// a relay mid-transfer; the retry-after hint exercises the
		// RelayServerOpts plumbing end to end.
		RelayServerOpts: func(relay int) []netio.ServerOption {
			return []netio.ServerOption{
				netio.WithServePace(3 * time.Millisecond),
				netio.WithEncodeBatch(1),
				netio.WithRetryAfter(5 * time.Millisecond),
			}
		},
	}
	m, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Warm every relay so leaves never depend on the origin.
	full := m.Origin().Segments() * p.BlockCount
	for deadline := time.Now().Add(time.Minute); ; {
		warm := 0
		for _, r := range m.Relays() {
			if r.TotalRank() == full {
				warm++
			}
		}
		if warm == len(m.Relays()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relays never warmed: %+v", m.Pool().Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}

	redirected := func(leaves []*Leaf) int {
		total := 0
		for _, leaf := range leaves {
			total += leaf.FetchStats().AdmissionRedirected
		}
		return total
	}

	// rollRestart drains relayID mid-wave and verifies the drain was followed:
	// a pinned raw session holds the drain window open until at least one leaf
	// has been walked to a survivor by a REDIRECT decision.
	rollRestart := func(relayID string, relay *Relay, leaves []*Leaf) {
		t.Helper()
		pinConn, err := net.Dial("tcp", relay.Addr())
		if err != nil {
			t.Fatal(err)
		}
		pinned, err := netio.NewRawClient(pinConn)
		if err != nil {
			t.Fatal(err)
		}
		pinDone := make(chan struct{})
		go func() {
			defer close(pinDone)
			for {
				if _, err := pinned.Next(); err != nil {
					return
				}
			}
		}()

		// Every leaf must be demonstrably mid-transfer before the drain.
		for deadline := time.Now().Add(30 * time.Second); ; {
			moving := 0
			for _, leaf := range leaves {
				if leaf.Records() > 0 {
					moving++
				}
			}
			if moving == len(leaves) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("wave never started moving before draining %s", relayID)
			}
			time.Sleep(time.Millisecond)
		}

		before := redirected(leaves)
		restartDone := make(chan error, 1)
		go func() { restartDone <- m.RestartRelay(ctx, relayID) }()

		// The pool must report the drain, and some leaf must follow the
		// REDIRECT to a survivor while the pinned session holds the drain open.
		sawDraining := false
		for deadline := time.Now().Add(30 * time.Second); redirected(leaves) == before; {
			if st, ok := m.Pool().StateOf(relayID); ok && st == StateDraining {
				sawDraining = true
			}
			if time.Now().After(deadline) {
				t.Fatalf("no leaf followed a REDIRECT off draining %s (pool %+v)",
					relayID, m.Pool().Snapshot())
			}
			time.Sleep(time.Millisecond)
		}
		if !sawDraining {
			if st, ok := m.Pool().StateOf(relayID); !ok || st != StateDraining {
				t.Fatalf("pool never reported %s draining (now %v)", relayID, st)
			}
		}

		// Release the drain window; the restart must complete and the relay
		// must rejoin the active rotation at its new address.
		pinned.Close()
		<-pinDone
		if err := <-restartDone; err != nil {
			t.Fatalf("RestartRelay(%s): %v", relayID, err)
		}
		for deadline := time.Now().Add(10 * time.Second); ; {
			if st, _ := m.Pool().StateOf(relayID); st == StateActive {
				break
			}
			if time.Now().After(deadline) {
				st, _ := m.Pool().StateOf(relayID)
				t.Fatalf("%s never rejoined the rotation (state %v)", relayID, st)
			}
			time.Sleep(time.Millisecond)
		}
		addr, _ := m.Pool().Addr(relayID)
		if addr != relay.Addr() {
			t.Fatalf("pool addr %q disagrees with relay addr %q after restart", addr, relay.Addr())
		}
	}

	// Rolling restarts: one relay per wave, in sequence.
	for round, relayID := range []string{"relay-0", "relay-1"} {
		var relay *Relay
		for _, r := range m.Relays() {
			if r.ID() == relayID {
				relay = r
			}
		}
		wave := make([]*Leaf, 0, 3)
		for i := 0; i < 3; i++ {
			leaf, err := m.AddLeaf(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wave = append(wave, leaf)
		}
		rollRestart(relayID, relay, wave)
		if err := m.WaitLeaves(ctx, wave...); err != nil {
			t.Fatalf("wave %d: %v (snapshot %+v)", round, err, m.Snapshot())
		}
		for _, leaf := range wave {
			res, _ := leaf.Result()
			if !bytes.Equal(res.Payload, media) {
				t.Fatalf("wave %d leaf %d payload differs", round, leaf.ID)
			}
		}
	}

	// Monotone rank across every reconnect, redirects included.
	if v, _ := reg.CounterValue("mesh.rank_regressions_total"); v != 0 {
		t.Fatalf("rank regressed %d times across reconnects", v)
	}

	// The per-relay ledgers — drained relays across their restarts and the
	// untouched survivor alike — must balance exactly once sessions settle.
	balanced := func() bool {
		for _, r := range m.Relays() {
			if v := r.Ledger(); v.BlocksOffered != v.BlocksSent+v.BlocksShed {
				return false
			}
		}
		return true
	}
	for deadline := time.Now().Add(10 * time.Second); !balanced(); {
		if time.Now().After(deadline) {
			for _, r := range m.Relays() {
				t.Logf("%s ledger: %+v", r.ID(), r.Ledger())
			}
			t.Fatal("relay ledgers never balanced after the waves")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And the same invariant must be visible in one scraped exposition.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Key()] = s.Value
	}
	for i := range m.Relays() {
		offered := byName[fmt.Sprintf("mesh_relay%d_blocks_offered", i)]
		sent := byName[fmt.Sprintf("mesh_relay%d_blocks_sent", i)]
		shed := byName[fmt.Sprintf("mesh_relay%d_blocks_shed", i)]
		if offered == 0 {
			t.Errorf("relay %d exposition ledger empty", i)
		}
		if offered != sent+shed {
			t.Errorf("relay %d exposition ledger: offered %v != sent %v + shed %v",
				i, offered, sent, shed)
		}
	}
}
