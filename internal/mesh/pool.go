// Package mesh assembles the repo's coding, serving, fetching, chaos, and
// observability layers into a multi-node recoding relay mesh: an origin
// server feeds a pool of relays that recode upstream blocks (never
// decoding) and re-serve them to leaf fetchers, under a small control plane
// — pool membership, heartbeat + rank-progress health, leaf→relay
// assignment, and remediation that re-routes leaves off dead relays. The
// whole mesh runs in-process over loopback: the relay property being
// exercised (recombinations of recombinations still decode, paper Sec. 2)
// is end-to-end, not placement-dependent.
package mesh

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"extremenc/internal/obs"
)

// State is a pool member's health state as judged by the control plane.
type State int

const (
	// StateJoining: registered but no heartbeat seen yet.
	StateJoining State = iota
	// StateActive: heartbeating and making (or done with) rank progress.
	StateActive
	// StateSuspect: heartbeat overdue or rank stalled; no new leaves are
	// assigned, existing leaves are rerouted by remediation.
	StateSuspect
	// StateDead: heartbeat long overdue. Terminal — a dead member never
	// returns to the rotation.
	StateDead
	// StateDraining: deliberately leaving the rotation for a graceful
	// restart — the relay itself redirects new handshakes while in-flight
	// sessions run to completion. Unlike dead, draining is temporary: Rejoin
	// returns the member to the rotation. Appended after StateDead so the
	// numeric values of the original states are stable.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateActive:
		return "active"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateDraining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// member is one relay's control-plane record.
type member struct {
	id   string
	addr string

	// rankFn probes the relay's summed recoder rank; fullRank is the value
	// at which the relay is warm (holds the whole object) and further
	// progress is no longer expected.
	rankFn   func() int
	fullRank int

	state          State
	lastBeat       time.Time
	lastRank       int
	lastRankChange time.Time
}

// MemberView is a point-in-time copy of one member for snapshots.
type MemberView struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	State string `json:"state"`
	Rank  int    `json:"rank"`
	Full  int    `json:"full_rank"`
}

// Pool is the mesh membership registry: relays register, heartbeat, and are
// judged by the health checker. All methods are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	members map[string]*member
	now     func() time.Time

	heartbeats obs.Counter
	deaths     obs.Counter
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{members: make(map[string]*member), now: time.Now}
}

// Instrument registers the pool's control-plane counters and the live-relay
// gauge into reg under the "mesh" prefix.
func (p *Pool) Instrument(reg *obs.Registry) error {
	if err := reg.RegisterCounter("mesh.heartbeats_total",
		"relay heartbeats received by the control plane", &p.heartbeats); err != nil {
		return err
	}
	if err := reg.RegisterCounter("mesh.relay_deaths_total",
		"relays declared dead by the health checker", &p.deaths); err != nil {
		return err
	}
	return reg.RegisterFunc("mesh.relays_active",
		"relays currently in the active rotation", func() float64 {
			return float64(len(p.InState(StateActive)))
		})
}

// Add registers a relay with the pool in StateJoining. rankFn is the health
// checker's rank-progress probe; fullRank is the rank at which the relay is
// warm.
func (p *Pool) Add(id, addr string, rankFn func() int, fullRank int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.members[id]; dup {
		return fmt.Errorf("mesh: relay %q already registered", id)
	}
	now := p.now()
	p.members[id] = &member{
		id: id, addr: addr, rankFn: rankFn, fullRank: fullRank,
		state: StateJoining, lastBeat: now, lastRankChange: now,
	}
	return nil
}

// Heartbeat records a liveness beat from id. The first beat promotes a
// joining member to active; a suspect member that beats again is also
// restored (it was slow, not gone). Beats from a dead member are ignored —
// death is terminal, remediation has already moved its leaves. A draining
// member's beats refresh its liveness but never promote it: only Rejoin ends
// a drain.
func (p *Pool) Heartbeat(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[id]
	if m == nil || m.state == StateDead {
		return
	}
	m.lastBeat = p.now()
	if m.state == StateJoining || m.state == StateSuspect {
		m.state = StateActive
	}
	p.heartbeats.Inc()
}

// SetDraining marks member id as gracefully leaving the rotation: the
// coordinator stops assigning leaves to it and remediation walks existing
// leaves off it, while the relay's own drain redirects new handshakes. It
// reports whether the member was eligible (registered and not dead).
func (p *Pool) SetDraining(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[id]
	if m == nil || m.state == StateDead {
		return false
	}
	m.state = StateDraining
	return true
}

// Rejoin returns a draining member to the rotation at a (possibly new)
// serving address. It re-enters as joining — the next heartbeat promotes it
// to active — with its liveness and rank-progress clocks reset so the
// restart window is not misread as a stall. It reports whether the member
// was eligible (registered and not dead).
func (p *Pool) Rejoin(id, addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[id]
	if m == nil || m.state == StateDead {
		return false
	}
	now := p.now()
	m.addr = addr
	m.state = StateJoining
	m.lastBeat = now
	m.lastRankChange = now
	return true
}

// Addr returns the serving address of member id.
func (p *Pool) Addr(id string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[id]
	if m == nil {
		return "", false
	}
	return m.addr, true
}

// StateOf returns the current state of member id.
func (p *Pool) StateOf(id string) (State, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.members[id]
	if m == nil {
		return StateDead, false
	}
	return m.state, true
}

// InState returns the IDs of every member currently in state s, sorted for
// deterministic iteration.
func (p *Pool) InState(s State) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []string
	for id, m := range p.members {
		if m.state == s {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Snapshot copies every member, sorted by ID.
func (p *Pool) Snapshot() []MemberView {
	p.mu.Lock()
	defer p.mu.Unlock()
	views := make([]MemberView, 0, len(p.members))
	for _, m := range p.members {
		rank := m.lastRank
		if m.rankFn != nil {
			rank = m.rankFn()
		}
		views = append(views, MemberView{
			ID: m.id, Addr: m.addr, State: m.state.String(),
			Rank: rank, Full: m.fullRank,
		})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	return views
}
