package mesh

import (
	"context"
	"fmt"
	"net"
	"sync"

	"extremenc/internal/netio"
	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

// Relay stage spans: one absorb span per upstream record fed to a recoder,
// one recode span per batch of emissions. Free with no obs sink installed.
var (
	stageRelayAbsorb = obs.StageOf("mesh.relay_absorb")
	stageRelayRecode = obs.StageOf("mesh.recode")
)

// RelayConfig configures one recoding relay.
type RelayConfig struct {
	// ID names the relay in the control plane.
	ID string
	// Upstream dials the tier above (the origin, in the standard two-tier
	// topology). The relay's resilient fetcher owns reconnection.
	Upstream netio.DialFunc
	// Listener is where the relay serves downstream. The relay takes
	// ownership and closes it on Close.
	Listener net.Listener
	// XorRecode constrains the relay to GF(2) recombinations through the
	// XOR kernels (rlnc.WithXorRecode) and re-declares the downstream
	// session in ModeSystematic so binary emissions travel in the compact
	// XNC2 encoding. Default: dense GF(2^8) recombinations in ModeDense.
	XorRecode bool
	// Seed drives the relay's recombination coefficient streams.
	Seed int64
	// FetchOpts / ServerOpts extend the relay's upstream fetcher and
	// downstream server (chaos injection, metrics, queue tuning).
	FetchOpts  []netio.FetcherOption
	ServerOpts []netio.ServerOption
	// Tapped / Emitted, when non-nil, accumulate upstream records absorbed
	// and downstream blocks recoded — shared mesh-wide counters.
	Tapped, Emitted *obs.Counter
}

// Relay is one recoding node: a resilient upstream fetch whose record tap
// feeds per-segment rlnc.Recoders, and a downstream netio source server
// whose records are fresh recombinations drawn from them. The relay never
// decodes — emitted coefficients are already re-expressed in terms of the
// original source blocks, so leaves are oblivious to the hop (paper
// Sec. 2). It starts serving a segment after the very first upstream record
// for it lands, and keeps serving from accumulated rank even if its
// upstream dies.
type Relay struct {
	id  string
	cfg RelayConfig

	mu       sync.Mutex
	ln       net.Listener  // current downstream listener; swapped by Restart
	srv      *netio.Server // current downstream server; swapped by Restart
	retired  netio.CounterView
	info     netio.SessionInfo // learned from the upstream handshake
	recoders []*rlnc.Recoder

	// serveCtx bounds every downstream server the relay ever starts,
	// including post-Restart replacements.
	serveCtx context.Context

	ready       chan struct{} // closed once info and recoders exist
	upFetch     *netio.Fetcher
	fetchCancel context.CancelFunc
	fetchDone   chan struct{}
	fetchErr    error
	closeOnce   sync.Once
}

// StartRelay launches a relay: it begins the upstream fetch, waits for the
// first successful handshake (which defines the object the relay will
// re-declare downstream), then starts the downstream server on
// cfg.Listener. It fails if ctx ends before the upstream ever answers.
func StartRelay(ctx context.Context, cfg RelayConfig) (*Relay, error) {
	if cfg.Upstream == nil || cfg.Listener == nil {
		return nil, fmt.Errorf("mesh: relay %q needs an upstream dialer and a listener", cfg.ID)
	}
	r := &Relay{
		id:        cfg.ID,
		cfg:       cfg,
		ln:        cfg.Listener,
		serveCtx:  ctx,
		ready:     make(chan struct{}),
		fetchDone: make(chan struct{}),
	}

	fctx, cancel := context.WithCancel(ctx)
	r.fetchCancel = cancel
	opts := append([]netio.FetcherOption{
		netio.WithSessionHook(r.onSession),
		netio.WithRecordTap(r.onRecord),
		netio.WithFetchTrace(cfg.ID + ".fetch"),
	}, cfg.FetchOpts...)
	f := netio.NewFetcher(cfg.Upstream, opts...)
	r.upFetch = f
	go func() {
		defer close(r.fetchDone)
		// The fetch ends when the relay holds full rank for every segment
		// (or fctx is cancelled); the relay then keeps serving from its
		// recoders with the upstream connection released.
		_, r.fetchErr = f.Fetch(fctx)
	}()

	select {
	case <-r.ready:
	case <-ctx.Done():
		r.Close()
		return nil, fmt.Errorf("mesh: relay %q never reached its upstream: %w", cfg.ID, ctx.Err())
	}

	// A traced upstream handshake propagates through the relay: the
	// downstream server inherits the transfer's trace ID (its root span
	// parenting under the origin's), and every server a later Restart builds
	// inherits it too, because the option joins the retained ServerOpts.
	if tr, root, ok := f.TraceContext(); ok {
		r.cfg.ServerOpts = append(r.cfg.ServerOpts, netio.WithInheritedTrace(cfg.ID, tr, root))
	}
	srv, err := netio.NewSourceServer((*relaySource)(r), r.cfg.ServerOpts...)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.srv = srv
	go srv.Serve(ctx, r.ln)
	return r, nil
}

// onSession captures the upstream session shape on the first handshake and
// builds the per-segment recoders. Later handshakes are reconnects of the
// same session (the fetcher enforces header identity) and are ignored.
func (r *Relay) onSession(si netio.SessionInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recoders != nil {
		return
	}
	downstream := si
	if r.cfg.XorRecode {
		downstream.Mode = netio.ModeSystematic
	} else {
		downstream.Mode = netio.ModeDense
	}
	recs := make([]*rlnc.Recoder, si.Segments)
	for i := range recs {
		opts := []rlnc.Option{rlnc.WithSeed(r.cfg.Seed + int64(i)*7919)}
		if r.cfg.XorRecode {
			opts = append(opts, rlnc.WithXorRecode())
		}
		rec, err := rlnc.NewRecoder(si.Params, opts...)
		if err != nil {
			// The params came from a handshake the fetcher validated.
			panic(fmt.Sprintf("mesh: recoder for handshake params: %v", err))
		}
		recs[i] = rec
	}
	r.info = downstream
	r.recoders = recs
	close(r.ready)
}

// onRecord feeds one upstream record into its segment's recoder. Dependent
// blocks are dropped at the recoder's door; Add clones, so the fetcher may
// reuse the block.
func (r *Relay) onRecord(b *rlnc.CodedBlock) {
	sp := stageRelayAbsorb.Start()
	r.mu.Lock()
	if int(b.SegmentID) < len(r.recoders) {
		r.recoders[b.SegmentID].Add(b) //nolint:errcheck // validated upstream
	}
	r.mu.Unlock()
	sp.End()
	if r.cfg.Tapped != nil {
		r.cfg.Tapped.Inc()
	}
}

// ID returns the relay's control-plane name.
func (r *Relay) ID() string { return r.id }

// Addr returns the relay's current downstream serving address; Restart moves
// it to a fresh listener.
func (r *Relay) Addr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ln.Addr().String()
}

// Info returns the session the relay declares downstream (valid once
// StartRelay has returned).
func (r *Relay) Info() netio.SessionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

// TotalRank sums the relay's recoder ranks across segments — the health
// checker's progress probe.
func (r *Relay) TotalRank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for _, rec := range r.recoders {
		total += rec.Rank()
	}
	return total
}

// SegmentRanks returns the per-segment recoder ranks.
func (r *Relay) SegmentRanks() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	ranks := make([]int, len(r.recoders))
	for i, rec := range r.recoders {
		ranks[i] = rec.Rank()
	}
	return ranks
}

// Server exposes the current downstream server for snapshots; nil until
// StartRelay returns.
func (r *Relay) Server() *netio.Server {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srv
}

// Restart gracefully cycles the relay's downstream server: the serving side
// drains — new handshakes are answered with a REDIRECT to redirectAddr (BUSY
// when empty), in-flight sessions run to rank completion, bounded by ctx —
// then a fresh listener and server over the same recoders take its place.
// The recoders, and therefore all accumulated rank, survive the restart; the
// serving address changes, so the caller re-registers the relay with the
// control plane (Pool.Rejoin). The drained server's traffic ledger is folded
// into Ledger before the swap, keeping offered == sent + shed exact across
// the relay's whole history. Returns the new serving address.
func (r *Relay) Restart(ctx context.Context, redirectAddr string) (string, error) {
	r.mu.Lock()
	oldSrv, oldLn := r.srv, r.ln
	r.mu.Unlock()
	if err := oldSrv.Drain(ctx, redirectAddr); err != nil {
		return "", fmt.Errorf("mesh: relay %q drain: %w", r.id, err)
	}
	oldLn.Close()
	drained := oldSrv.Snapshot().CounterView

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("mesh: relay %q relisten: %w", r.id, err)
	}
	srv, err := netio.NewSourceServer((*relaySource)(r), r.cfg.ServerOpts...)
	if err != nil {
		ln.Close()
		return "", fmt.Errorf("mesh: relay %q restart: %w", r.id, err)
	}
	r.mu.Lock()
	// Fold and swap in one critical section so a concurrent Ledger never
	// double-counts the drained server or misses it.
	r.retired = addCounterViews(r.retired, drained)
	r.srv, r.ln = srv, ln
	ctx = r.serveCtx
	r.mu.Unlock()
	go srv.Serve(ctx, ln)
	return ln.Addr().String(), nil
}

// Ledger returns the relay's downstream traffic totals accumulated across
// every server it has run, including servers retired by Restart. After all
// sessions end (drain or shutdown) the ledger balances exactly:
// BlocksOffered == BlocksSent + BlocksShed.
func (r *Relay) Ledger() netio.CounterView {
	r.mu.Lock()
	retired, srv := r.retired, r.srv
	r.mu.Unlock()
	// Snapshot outside r.mu: the server's pump may be blocked in
	// relaySource.Records, which holds r.mu while the snapshot walks the
	// shard locks.
	if srv == nil {
		return retired
	}
	return addCounterViews(retired, srv.Snapshot().CounterView)
}

// addCounterViews merges two traffic ledgers: counters add, the stall
// high-water mark takes the max.
func addCounterViews(a, b netio.CounterView) netio.CounterView {
	return netio.CounterView{
		BlocksEncoded:  a.BlocksEncoded + b.BlocksEncoded,
		BlocksOffered:  a.BlocksOffered + b.BlocksOffered,
		BlocksSent:     a.BlocksSent + b.BlocksSent,
		BlocksShed:     a.BlocksShed + b.BlocksShed,
		BytesSent:      a.BytesSent + b.BytesSent,
		EncodeStall:    a.EncodeStall + b.EncodeStall,
		MaxEncodeStall: max(a.MaxEncodeStall, b.MaxEncodeStall),
	}
}

// Close tears the relay down: upstream fetch cancelled, downstream server
// shut down, listener closed. Idempotent.
func (r *Relay) Close() {
	r.closeOnce.Do(func() {
		r.fetchCancel()
		r.mu.Lock()
		srv, ln := r.srv, r.ln
		r.mu.Unlock()
		if srv != nil {
			srv.Shutdown()
		}
		ln.Close()
		<-r.fetchDone
	})
}

// relaySource adapts a Relay to netio.RecordSource: each Records call draws
// fresh recombinations from the segment's recoder. A segment with no rank
// yet returns nothing and the server pump backs off briefly.
type relaySource Relay

func (rs *relaySource) Info() netio.SessionInfo { return (*Relay)(rs).Info() }

func (rs *relaySource) Records(seg, batch int) [][]byte {
	r := (*Relay)(rs)
	sp := stageRelayRecode.Start()
	defer sp.End()
	r.mu.Lock()
	defer r.mu.Unlock()
	if seg >= len(r.recoders) || r.recoders[seg].Rank() == 0 {
		return nil
	}
	// The recode span parents under the upstream pump round that most
	// recently fed the recoders: the causal link tying a relay's emissions
	// back to origin encode work across the tier boundary. Dry polls above
	// never open a span, so an idle relay does not flood the ring.
	if tr, _, ok := r.upFetch.TraceContext(); ok {
		tsp := trace.Begin(r.id, "recode", tr, r.upFetch.LastRoundSpan(), int32(seg))
		defer tsp.End()
	}
	rec := r.recoders[seg]
	out := make([][]byte, 0, batch)
	for i := 0; i < batch; i++ {
		blk, err := rec.Emit()
		if err != nil {
			break
		}
		framed, err := netio.FrameRecord(blk, r.info.Mode)
		if err != nil {
			continue
		}
		out = append(out, framed)
	}
	if r.cfg.Emitted != nil {
		r.cfg.Emitted.Add(int64(len(out)))
	}
	return out
}
