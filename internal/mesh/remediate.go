package mesh

import (
	"context"
	"time"

	"extremenc/internal/obs"
)

// Remediator closes the control loop: each period it runs a health sweep,
// then walks the leaf routing table and re-routes every leaf whose relay is
// no longer active. The leaf itself never learns any of this happened — its
// fetcher was already reconnect-looping against the dead address with
// backoff, and the Redirector swap simply makes the next attempt land
// somewhere alive, rank intact.
type Remediator struct {
	health *Health
	coord  *Coordinator
	every  time.Duration

	remediations obs.Counter
	sweeps       obs.Counter
}

// NewRemediator returns a remediation loop running a sweep every period.
func NewRemediator(health *Health, coord *Coordinator, every time.Duration) *Remediator {
	if every <= 0 {
		every = 25 * time.Millisecond
	}
	return &Remediator{health: health, coord: coord, every: every}
}

// Instrument registers the remediation counters into reg under the "mesh"
// prefix.
func (r *Remediator) Instrument(reg *obs.Registry) error {
	if err := reg.RegisterCounter("mesh.remediations_total",
		"leaves moved off unhealthy relays", &r.remediations); err != nil {
		return err
	}
	return reg.RegisterCounter("mesh.health_sweeps_total",
		"health sweeps executed by the remediation loop", &r.sweeps)
}

// Remediations returns how many leaf re-routes remediation has performed.
func (r *Remediator) Remediations() int64 { return r.remediations.Load() }

// Step runs one sweep-and-reroute pass, returning how many leaves it moved.
func (r *Remediator) Step() int {
	r.sweeps.Inc()
	r.health.Sweep()
	moved := 0
	for leaf, relayID := range r.coord.Routes() {
		state, ok := r.coord.pool.StateOf(relayID)
		if ok && state == StateActive {
			continue
		}
		// Suspect, dead, or vanished: move the leaf. No alternative relay is
		// not an error — the route stays put and the next sweep retries.
		if changed, err := r.coord.Reroute(leaf, relayID); err == nil && changed {
			r.remediations.Inc()
			moved++
		}
	}
	return moved
}

// Run executes Step every period until ctx ends.
func (r *Remediator) Run(ctx context.Context) {
	t := time.NewTicker(r.every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Step()
		}
	}
}
