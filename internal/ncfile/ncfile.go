// Package ncfile implements a network-coded file container: a payload is
// split into coding segments and stored (or transmitted) as self-contained
// coded-block records with per-record checksums. Because every record is a
// random linear combination, any sufficiently large subset of intact
// records reconstructs the file — dropped or corrupted records cost nothing
// but their redundancy. This is the bulk content-distribution usage of the
// paper's Sec. 2 (Avalanche) in single-file form, and the substrate of the
// ncfile command.
package ncfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand"

	"extremenc/internal/rlnc"
)

// Container format:
//
//	header:  magic "XNCF" | u32 version | u64 payload length |
//	         u32 n | u32 k | u32 segment count | u32 CRC of the above
//	records: u32 record length | record bytes (a marshaled rlnc.CodedBlock
//	         or rlnc.SeededBlock), repeated until EOF.
const (
	containerMagic   = "XNCF"
	containerVersion = 1
	headerLen        = 4 + 4 + 8 + 4 + 4 + 4 + 4
)

// Container errors.
var (
	ErrBadHeader     = errors.New("ncfile: bad container header")
	ErrUnrecoverable = errors.New("ncfile: insufficient intact records to recover payload")
)

// Header describes a container.
type Header struct {
	Length   int64
	Params   rlnc.Params
	Segments int
}

func (h Header) validate() error {
	if h.Length < 0 {
		return fmt.Errorf("%w: negative length", ErrBadHeader)
	}
	if err := h.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if h.Segments <= 0 {
		return fmt.Errorf("%w: segment count %d", ErrBadHeader, h.Segments)
	}
	return nil
}

func writeHeader(w io.Writer, h Header) error {
	buf := make([]byte, headerLen)
	copy(buf, containerMagic)
	binary.BigEndian.PutUint32(buf[4:], containerVersion)
	binary.BigEndian.PutUint64(buf[8:], uint64(h.Length))
	binary.BigEndian.PutUint32(buf[16:], uint32(h.Params.BlockCount))
	binary.BigEndian.PutUint32(buf[20:], uint32(h.Params.BlockSize))
	binary.BigEndian.PutUint32(buf[24:], uint32(h.Segments))
	binary.BigEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	_, err := w.Write(buf)
	return err
}

func readHeader(r io.Reader) (Header, error) {
	buf := make([]byte, headerLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Header{}, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(buf[:4]) != containerMagic {
		return Header{}, fmt.Errorf("%w: wrong magic", ErrBadHeader)
	}
	if v := binary.BigEndian.Uint32(buf[4:]); v != containerVersion {
		return Header{}, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	if crc32.ChecksumIEEE(buf[:28]) != binary.BigEndian.Uint32(buf[28:]) {
		return Header{}, fmt.Errorf("%w: checksum mismatch", ErrBadHeader)
	}
	h := Header{
		Length: int64(binary.BigEndian.Uint64(buf[8:])),
		Params: rlnc.Params{
			BlockCount: int(binary.BigEndian.Uint32(buf[16:])),
			BlockSize:  int(binary.BigEndian.Uint32(buf[20:])),
		},
		Segments: int(binary.BigEndian.Uint32(buf[24:])),
	}
	return h, h.validate()
}

func writeRecord(w io.Writer, rec []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(rec)
	return err
}

// readRecord returns the next raw record, or io.EOF at a clean end.
func readRecord(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("ncfile: record length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > 64<<20 {
		return nil, fmt.Errorf("ncfile: implausible record length %d", n)
	}
	rec := make([]byte, n)
	if _, err := io.ReadFull(r, rec); err != nil {
		return nil, fmt.Errorf("ncfile: record body: %w", err)
	}
	return rec, nil
}

// EncodeOptions tunes Encode.
type EncodeOptions struct {
	// Redundancy is coded blocks emitted per source block (≥ 1); the
	// default 1.15 tolerates ~13% record loss.
	Redundancy float64
	// Seeded stores 8-byte coefficient seeds instead of n-byte vectors.
	Seeded bool
	// Seed drives the coefficient stream.
	Seed int64
}

// EncodeSummary reports an Encode run.
type EncodeSummary struct {
	Header       Header
	Records      int
	PayloadBytes int64
	RecordBytes  int64
}

// Encode reads the payload from r and writes a coded container to w.
func Encode(w io.Writer, r io.Reader, p rlnc.Params, opts EncodeOptions) (*EncodeSummary, error) {
	if opts.Redundancy == 0 {
		opts.Redundancy = 1.15
	}
	if opts.Redundancy < 1 {
		return nil, fmt.Errorf("ncfile: redundancy %.2f below 1", opts.Redundancy)
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ncfile: read payload: %w", err)
	}
	obj, err := rlnc.Split(payload, p)
	if err != nil {
		return nil, err
	}
	h := Header{Length: int64(len(payload)), Params: p, Segments: len(obj.Segments)}
	if err := writeHeader(w, h); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	perSegment := int(math.Ceil(float64(p.BlockCount) * opts.Redundancy))
	sum := &EncodeSummary{Header: h, PayloadBytes: int64(len(payload))}
	for _, seg := range obj.Segments {
		enc := rlnc.NewEncoder(seg, rng)
		for i := 0; i < perSegment; i++ {
			var rec []byte
			if opts.Seeded {
				sb, err := enc.NextSeededBlock()
				if err != nil {
					return nil, err
				}
				rec, err = sb.MarshalBinary()
				if err != nil {
					return nil, err
				}
			} else {
				rec, err = enc.NextBlock().MarshalBinary()
				if err != nil {
					return nil, err
				}
			}
			if err := writeRecord(w, rec); err != nil {
				return nil, err
			}
			sum.Records++
			sum.RecordBytes += int64(len(rec))
		}
	}
	return sum, nil
}

// DecodeSummary reports a Decode run.
type DecodeSummary struct {
	Header         Header
	Records        int
	CorruptRecords int
	Dependent      int
}

// Decode reads a coded container from r and writes the recovered payload to
// w. Corrupt records (failed checksums) are skipped; recovery succeeds as
// long as every segment reaches full rank.
func Decode(w io.Writer, r io.Reader) (*DecodeSummary, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	decoders := make(map[uint32]*rlnc.Decoder, h.Segments)
	sum := &DecodeSummary{Header: h}

	for {
		rec, err := readRecord(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		sum.Records++
		blk, ok := parseRecord(rec, h.Params)
		if !ok {
			sum.CorruptRecords++
			continue
		}
		dec := decoders[blk.SegmentID]
		if dec == nil {
			if dec, err = rlnc.NewDecoder(h.Params); err != nil {
				return nil, err
			}
			decoders[blk.SegmentID] = dec
		}
		if dec.Ready() {
			continue // segment already solved; skip elimination work
		}
		innovative, err := dec.AddBlock(blk)
		if err != nil {
			return nil, err
		}
		if !innovative {
			sum.Dependent++
		}
	}

	segs := make([]*rlnc.Segment, 0, h.Segments)
	for id, dec := range decoders {
		seg, err := dec.Segment()
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d at rank %d/%d",
				ErrUnrecoverable, id, dec.Rank(), h.Params.BlockCount)
		}
		segs = append(segs, seg)
	}
	payload, err := rlnc.ReassembleSegments(segs, int(h.Length), h.Params)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	if _, err := w.Write(payload); err != nil {
		return nil, err
	}
	return sum, nil
}

// parseRecord decodes a plain or seeded coded-block record, reporting ok =
// false for corrupt or unrecognized bytes.
func parseRecord(rec []byte, p rlnc.Params) (*rlnc.CodedBlock, bool) {
	var blk rlnc.CodedBlock
	if err := blk.UnmarshalBinary(rec); err == nil {
		if blk.Validate(p) != nil {
			return nil, false
		}
		return &blk, true
	}
	var sb rlnc.SeededBlock
	if err := sb.UnmarshalBinary(rec); err == nil {
		expanded := sb.Expand()
		if expanded.Validate(p) != nil {
			return nil, false
		}
		return expanded, true
	}
	return nil, false
}

// CorruptOptions tunes Corrupt.
type CorruptOptions struct {
	DropRate float64 // probability a record is dropped entirely
	FlipRate float64 // probability a record gets one byte flipped
	Seed     int64
}

// CorruptSummary reports a Corrupt run.
type CorruptSummary struct {
	Records int
	Dropped int
	Flipped int
}

// Corrupt reads a container and writes a damaged copy — a deterministic
// lossy channel for demonstrations and failure-injection tests.
func Corrupt(w io.Writer, r io.Reader, opts CorruptOptions) (*CorruptSummary, error) {
	if opts.DropRate < 0 || opts.DropRate >= 1 || opts.FlipRate < 0 || opts.FlipRate > 1 {
		return nil, fmt.Errorf("ncfile: corrupt rates out of range")
	}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if err := writeHeader(w, h); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sum := &CorruptSummary{}
	for {
		rec, err := readRecord(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		sum.Records++
		if rng.Float64() < opts.DropRate {
			sum.Dropped++
			continue
		}
		if rng.Float64() < opts.FlipRate {
			rec[rng.Intn(len(rec))] ^= byte(1 + rng.Intn(255))
			sum.Flipped++
		}
		if err := writeRecord(w, rec); err != nil {
			return nil, err
		}
	}
	return sum, nil
}
