package ncfile

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"extremenc/internal/rlnc"
)

func testPayload(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	for _, size := range []int{1, 100, p.SegmentSize(), 3*p.SegmentSize() - 7} {
		for _, seeded := range []bool{false, true} {
			payload := testPayload(t, size, int64(size))
			var container bytes.Buffer
			esum, err := Encode(&container, bytes.NewReader(payload), p,
				EncodeOptions{Seeded: seeded, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if esum.Records == 0 || esum.PayloadBytes != int64(size) {
				t.Fatalf("summary %+v", esum)
			}
			var out bytes.Buffer
			dsum, err := Decode(&out, bytes.NewReader(container.Bytes()))
			if err != nil {
				t.Fatalf("size %d seeded %v: %v", size, seeded, err)
			}
			if !bytes.Equal(out.Bytes(), payload) {
				t.Fatalf("size %d seeded %v: payload differs", size, seeded)
			}
			if dsum.CorruptRecords != 0 {
				t.Fatalf("clean container reported %d corrupt records", dsum.CorruptRecords)
			}
		}
	}
}

func TestSeededContainerIsSmaller(t *testing.T) {
	p := rlnc.Params{BlockCount: 64, BlockSize: 256}
	payload := testPayload(t, p.SegmentSize(), 3)
	var plain, seeded bytes.Buffer
	if _, err := Encode(&plain, bytes.NewReader(payload), p, EncodeOptions{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&seeded, bytes.NewReader(payload), p, EncodeOptions{Seeded: true, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if seeded.Len() >= plain.Len() {
		t.Fatalf("seeded container %d B not smaller than plain %d B", seeded.Len(), plain.Len())
	}
}

func TestDecodeSurvivesDamage(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 128}
	payload := testPayload(t, 2*p.SegmentSize()-5, 5)
	var container bytes.Buffer
	if _, err := Encode(&container, bytes.NewReader(payload), p,
		EncodeOptions{Redundancy: 1.6, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	var damaged bytes.Buffer
	csum, err := Corrupt(&damaged, bytes.NewReader(container.Bytes()),
		CorruptOptions{DropRate: 0.15, FlipRate: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if csum.Dropped == 0 || csum.Flipped == 0 {
		t.Fatalf("corruption summary %+v", csum)
	}
	var out bytes.Buffer
	dsum, err := Decode(&out, bytes.NewReader(damaged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dsum.CorruptRecords != csum.Flipped {
		t.Fatalf("corrupt records %d, flipped %d", dsum.CorruptRecords, csum.Flipped)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload differs after damage + decode")
	}
}

func TestDecodeUnrecoverable(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 128}
	payload := testPayload(t, p.SegmentSize(), 8)
	var container bytes.Buffer
	if _, err := Encode(&container, bytes.NewReader(payload), p,
		EncodeOptions{Redundancy: 1.0, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// With zero redundancy margin, any drop is fatal.
	var damaged bytes.Buffer
	if _, err := Corrupt(&damaged, bytes.NewReader(container.Bytes()),
		CorruptOptions{DropRate: 0.3, Seed: 10}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := Decode(&out, bytes.NewReader(damaged.Bytes())); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestHeaderValidation(t *testing.T) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 32}
	payload := testPayload(t, 64, 11)
	var container bytes.Buffer
	if _, err := Encode(&container, bytes.NewReader(payload), p, EncodeOptions{Seed: 12}); err != nil {
		t.Fatal(err)
	}
	good := container.Bytes()

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'Y'
		if _, err := Decode(&bytes.Buffer{}, bytes.NewReader(bad)); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("header bitflip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[10] ^= 0xFF
		if _, err := Decode(&bytes.Buffer{}, bytes.NewReader(bad)); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := Decode(&bytes.Buffer{}, bytes.NewReader(good[:10])); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		if _, err := Decode(&bytes.Buffer{}, bytes.NewReader(good[:len(good)-3])); err == nil {
			t.Fatal("truncated record accepted")
		}
	})
}

func TestEncodeValidation(t *testing.T) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 32}
	if _, err := Encode(&bytes.Buffer{}, bytes.NewReader(nil), p, EncodeOptions{Redundancy: 0.5}); err == nil {
		t.Fatal("redundancy < 1 accepted")
	}
	if _, err := Corrupt(&bytes.Buffer{}, bytes.NewReader(nil), CorruptOptions{DropRate: -1}); err == nil {
		t.Fatal("negative drop rate accepted")
	}
}

// FuzzDecodeContainer: arbitrary bytes must never panic the container
// reader; valid headers with garbage records must fail cleanly.
func FuzzDecodeContainer(f *testing.F) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 16}
	payload := make([]byte, 2*p.SegmentSize())
	rand.New(rand.NewSource(1)).Read(payload)
	var good bytes.Buffer
	if _, err := Encode(&good, bytes.NewReader(payload), p, EncodeOptions{Seed: 2}); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("XNCF"))
	f.Add(good.Bytes()[:headerLen])
	f.Fuzz(func(t *testing.T, data []byte) {
		var out bytes.Buffer
		sum, err := Decode(&out, bytes.NewReader(data))
		if err != nil {
			return
		}
		if int64(out.Len()) != sum.Header.Length {
			t.Fatalf("decoded %d bytes, header claims %d", out.Len(), sum.Header.Length)
		}
	})
}

// BenchmarkContainerRoundTrip measures real encode+decode throughput of the
// coded file container on this machine.
func BenchmarkContainerRoundTrip(b *testing.B) {
	p := rlnc.Params{BlockCount: 32, BlockSize: 4096}
	payload := testPayload(b, 8*p.SegmentSize(), 10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var container bytes.Buffer
		if _, err := Encode(&container, bytes.NewReader(payload), p, EncodeOptions{Seed: 11}); err != nil {
			b.Fatal(err)
		}
		var out bytes.Buffer
		if _, err := Decode(&out, bytes.NewReader(container.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}
