package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Admission decision record: the structured answer a server gives a new
// connection before (or instead of) the session header, making session-cap
// rejects, brownout sheds, and drains protocol events rather than silent
// hang-ups.
//
//	decision: magic "XNCD" | u8 code | u8 addr length | u32 retry-after ms |
//	          addr bytes | u32 CRC-32 (IEEE) over everything above
//
// Codes: 0 ACCEPT (a full session header follows), 1 BUSY (retry-after hint,
// no addr), 2 REDIRECT (addr of a surviving server, no hint). A server that
// admits a session may write the bare "XNCP" header with no decision record
// at all — the compact ACCEPT spelling, and the only one servers predating
// the decision record ever produced — so the client dispatches on the first
// four magic bytes and accepts both.
const (
	decisionMagic    = "XNCD"
	decisionFixedLen = 4 + 1 + 1 + 4 // magic | code | addr length | retry-after ms
	decisionCRCLen   = 4
	// maxRedirectAddr bounds a redirect target; addr length rides in one byte.
	maxRedirectAddr = 255
)

// admissionCode is the decision discriminator on the wire.
type admissionCode uint8

const (
	admissionAccept admissionCode = iota
	admissionBusy
	admissionRedirect
)

// Admission errors. Both are delivered through the resilient Fetcher's retry
// loop: BUSY floors the next backoff at the server's hint, REDIRECT re-points
// the fetcher's Redirector (when one is configured) before the next dial.
var (
	// ErrAdmissionBusy reports a handshake answered with a BUSY decision:
	// the server is at its session cap or shedding load under brownout.
	ErrAdmissionBusy = errors.New("netio: server busy")
	// ErrAdmissionRedirect reports a handshake answered with a REDIRECT
	// decision: the server is draining and named a survivor to dial instead.
	ErrAdmissionRedirect = errors.New("netio: session redirected")
)

// admissionDecision is the parsed decision record.
type admissionDecision struct {
	code       admissionCode
	retryAfter time.Duration // BUSY only
	addr       string        // REDIRECT only
}

// Err maps a non-ACCEPT decision onto its sentinel; nil for ACCEPT.
func (d admissionDecision) Err() error {
	switch d.code {
	case admissionBusy:
		return fmt.Errorf("%w (retry after %v)", ErrAdmissionBusy, d.retryAfter)
	case admissionRedirect:
		return fmt.Errorf("%w to %s", ErrAdmissionRedirect, d.addr)
	}
	return nil
}

// validate rejects a decision no server would write.
func (d admissionDecision) validate() error {
	switch d.code {
	case admissionAccept:
		if d.retryAfter != 0 || d.addr != "" {
			return fmt.Errorf("%w: ACCEPT carries payload", ErrBadHandshake)
		}
	case admissionBusy:
		if d.addr != "" {
			return fmt.Errorf("%w: BUSY carries an address", ErrBadHandshake)
		}
	case admissionRedirect:
		if d.addr == "" {
			return fmt.Errorf("%w: REDIRECT without an address", ErrBadHandshake)
		}
		if d.retryAfter != 0 {
			return fmt.Errorf("%w: REDIRECT carries a retry hint", ErrBadHandshake)
		}
	default:
		return fmt.Errorf("%w: unknown decision code %d", ErrBadHandshake, d.code)
	}
	return nil
}

// appendDecision marshals d onto buf.
func appendDecision(buf []byte, d admissionDecision) ([]byte, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	if len(d.addr) > maxRedirectAddr {
		return nil, fmt.Errorf("%w: redirect address %d bytes long", ErrBadHandshake, len(d.addr))
	}
	ms := d.retryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > int64(^uint32(0)) {
		ms = int64(^uint32(0))
	}
	start := len(buf)
	buf = append(buf, decisionMagic...)
	buf = append(buf, byte(d.code), byte(len(d.addr)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ms))
	buf = append(buf, d.addr...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// writeDecision marshals d and writes it in one call.
func writeDecision(w io.Writer, d admissionDecision) error {
	buf, err := appendDecision(make([]byte, 0, decisionFixedLen+len(d.addr)+decisionCRCLen), d)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readDecisionTail parses a decision record whose magic has already been
// consumed (and is passed in so the CRC covers the full record).
func readDecisionTail(r io.Reader, magic [4]byte) (admissionDecision, error) {
	buf := make([]byte, decisionFixedLen, decisionFixedLen+maxRedirectAddr)
	copy(buf, magic[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return admissionDecision{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	addrLen := int(buf[5])
	buf = buf[:decisionFixedLen+addrLen]
	if _, err := io.ReadFull(r, buf[decisionFixedLen:]); err != nil {
		return admissionDecision{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	var crc [decisionCRCLen]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return admissionDecision{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if crc32.ChecksumIEEE(buf) != binary.BigEndian.Uint32(crc[:]) {
		return admissionDecision{}, fmt.Errorf("%w: decision checksum", ErrBadHandshake)
	}
	d := admissionDecision{
		code:       admissionCode(buf[4]),
		retryAfter: time.Duration(binary.BigEndian.Uint32(buf[6:])) * time.Millisecond,
		addr:       string(buf[decisionFixedLen:]),
	}
	if err := d.validate(); err != nil {
		return admissionDecision{}, err
	}
	return d, nil
}

// handshake is everything a server's opening declares: the session header,
// its feature flags, the trace context (when hsFlagTrace negotiated), and
// the admission decision (nil for an implied ACCEPT).
type handshake struct {
	hdr   sessionHeader
	flags uint32
	tctx  *traceContext
	dec   *admissionDecision
}

// traced reports whether the session negotiated trace framing.
func (hs *handshake) traced() bool { return hs.flags&hsFlagTrace != 0 }

// readHandshake reads the server's opening: either a bare session header
// (implied ACCEPT) or a decision record, dispatched on the first four magic
// bytes. For ACCEPT — explicit or implied — the returned header is valid
// and, when the flags negotiate tracing, the trace context has been read;
// for BUSY and REDIRECT the decision alone is populated.
func readHandshake(r io.Reader) (handshake, error) {
	var hs handshake
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return hs, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(magic[:]) == decisionMagic {
		d, err := readDecisionTail(r, magic)
		if err != nil {
			return hs, err
		}
		hs.dec = &d
		if d.code != admissionAccept {
			return hs, nil
		}
		// An explicit ACCEPT promises a full session header next.
		if _, err := io.ReadFull(r, magic[:]); err != nil {
			return hs, fmt.Errorf("%w: %v", ErrBadHandshake, err)
		}
	}
	h, flags, err := readSessionHeaderTail(r, magic)
	if err != nil {
		return hs, err
	}
	hs.hdr, hs.flags = h, flags
	if hs.traced() {
		tc, err := readTraceContext(r)
		if err != nil {
			return hs, err
		}
		hs.tctx = &tc
	}
	return hs, nil
}
