package netio

import (
	"fmt"
	"time"

	"extremenc/internal/obs/trace"
)

// BrownoutRung is one step of the server's degradation ladder. Under
// sustained pressure the controller climbs one rung per sample interval;
// under sustained calm it steps back down. Every rung is lossless by
// construction — RLNC clients need enough coded blocks, not specific ones —
// so degradation trades delivery rate and CPU, never correctness.
type BrownoutRung int32

const (
	// BrownoutOff is normal operation.
	BrownoutOff BrownoutRung = iota
	// BrownoutPaced floors the pump-round interval at PacedDelay, capping
	// the emission rate so the encoder stops amplifying the overload.
	BrownoutPaced
	// BrownoutLean additionally thins the systematic schedule: the dense
	// tail is dropped and the XOR repair rate halved, trading repair margin
	// for encode CPU. Dense-mode sources have no cheaper schedule, so for
	// them this rung only inherits the pacing.
	BrownoutLean
	// BrownoutReject additionally answers new handshakes with BUSY; live
	// sessions keep streaming.
	BrownoutReject
)

// String returns the rung's log spelling.
func (r BrownoutRung) String() string {
	switch r {
	case BrownoutOff:
		return "off"
	case BrownoutPaced:
		return "paced"
	case BrownoutLean:
		return "lean"
	case BrownoutReject:
		return "reject"
	default:
		return fmt.Sprintf("rung(%d)", int32(r))
	}
}

// BrownoutConfig tunes the overload controller. The pressure signal sampled
// every Interval is the max of three normalized components: the fraction of
// the interval the pumps spent stalled on full queues, the aggregate queue
// occupancy across live sessions, and the shed fraction of blocks offered in
// the interval. Hysteresis comes from the dead band between StepUp and
// StepDown plus the Hold requirement on the way down.
type BrownoutConfig struct {
	// Interval is the pressure sampling period; zero disables the
	// controller entirely.
	Interval time.Duration
	// PacedDelay is the pump-round floor applied from BrownoutPaced up
	// (0 → 2ms). The configured Pace still applies when it is longer.
	PacedDelay time.Duration
	// StepUp is the pressure at or above which the ladder climbs one rung
	// per interval (0 → 0.75).
	StepUp float64
	// StepDown is the pressure at or below which an interval counts as
	// calm; Hold consecutive calm intervals step the ladder down one rung
	// (0 → 0.25).
	StepDown float64
	// Hold is how many consecutive calm intervals are required per
	// step down (0 → 3).
	Hold int
	// OnTransition, when non-nil, runs on the controller goroutine after
	// every rung change with the old rung, the new rung, and the pressure
	// sample that caused it.
	OnTransition func(from, to BrownoutRung, pressure float64)
}

// withDefaults resolves the zero-value tunables.
func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.PacedDelay <= 0 {
		c.PacedDelay = 2 * time.Millisecond
	}
	if c.StepUp <= 0 {
		c.StepUp = 0.75
	}
	if c.StepDown <= 0 {
		c.StepDown = 0.25
	}
	if c.Hold <= 0 {
		c.Hold = 3
	}
	return c
}

// brownoutController is the pure ladder state machine: one observe call per
// sample interval, no clocks or channels, so the hysteresis is unit-testable
// without a server.
type brownoutController struct {
	cfg  BrownoutConfig
	rung BrownoutRung
	calm int // consecutive intervals at or below StepDown
}

// observe feeds one pressure sample and returns the rung after it: climb one
// rung at or above StepUp, step down one after Hold consecutive intervals at
// or below StepDown, hold (and reset the calm streak) in the dead band.
func (b *brownoutController) observe(pressure float64) BrownoutRung {
	switch {
	case pressure >= b.cfg.StepUp:
		b.calm = 0
		if b.rung < BrownoutReject {
			b.rung++
		}
	case pressure <= b.cfg.StepDown:
		if b.rung > BrownoutOff {
			b.calm++
			if b.calm >= b.cfg.Hold {
				b.rung--
				b.calm = 0
			}
		}
	default:
		b.calm = 0
	}
	return b.rung
}

// brownoutSample is one reading of the raw pressure inputs: the cumulative
// counters a delta is taken over, plus the instantaneous queue occupancy.
type brownoutSample struct {
	stallNs  int64
	offered  int64
	shed     int64
	queueLen int
	queueCap int
}

// sampleBrownout reads the pressure inputs: cumulative stall/offered/shed
// from the aggregate counters and the live queue occupancy from every
// session.
func (s *Server) sampleBrownout() brownoutSample {
	v := s.counters.View()
	smp := brownoutSample{
		stallNs: int64(v.EncodeStall),
		offered: v.BlocksOffered,
		shed:    v.BlocksShed,
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for ss := range sh.sessions {
			smp.queueLen += ss.q.len()
			smp.queueCap += ss.q.cap()
		}
		sh.mu.Unlock()
	}
	return smp
}

// brownoutPressure reduces an interval's sample pair to the scalar signal:
// the max of stall fraction (stall time over interval × shards), queue
// occupancy, and shed fraction, each clamped to [0, 1].
func brownoutPressure(prev, cur brownoutSample, interval time.Duration, shards int) float64 {
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	stall := clamp(float64(cur.stallNs-prev.stallNs) / float64(interval.Nanoseconds()*int64(shards)))
	occupancy := 0.0
	if cur.queueCap > 0 {
		occupancy = clamp(float64(cur.queueLen) / float64(cur.queueCap))
	}
	shed := 0.0
	if d := cur.offered - prev.offered; d > 0 {
		shed = clamp(float64(cur.shed-prev.shed) / float64(d))
	}
	return max(stall, max(occupancy, shed))
}

// runBrownout is the controller goroutine: sample, reduce, observe, apply.
// Started by startPumps when Brownout.Interval > 0; exits with the pumps.
func (s *Server) runBrownout() {
	defer s.pumpWG.Done()
	cfg := s.cfg.Brownout
	ctl := &brownoutController{cfg: cfg}
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	prev := s.sampleBrownout()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		cur := s.sampleBrownout()
		p := brownoutPressure(prev, cur, cfg.Interval, len(s.shards))
		prev = cur
		from := BrownoutRung(s.brownoutRung.Load())
		if to := ctl.observe(p); to != from {
			s.applyRung(from, to, p)
		}
	}
}

// applyRung publishes a rung transition: the atomic the admission check and
// pump pacing read, the lean bit on every degradable source, the transition
// counter, and the OnTransition hook. Only the controller goroutine calls it.
func (s *Server) applyRung(from, to BrownoutRung, pressure float64) {
	s.brownoutRung.Store(int32(to))
	s.brownoutTransitions.Add(1)
	trace.Emit(trace.KindBrownout, s.traceNodeName(), from.String()+"->"+to.String(), -1, int64(to))
	lean := to >= BrownoutLean
	if wasLean := from >= BrownoutLean; lean != wasLean {
		for _, src := range s.degradable {
			src.SetLean(lean)
		}
	}
	if s.cfg.Brownout.OnTransition != nil {
		s.cfg.Brownout.OnTransition(from, to, pressure)
	}
}

// Rung returns the server's current brownout rung (BrownoutOff when the
// controller is disabled).
func (s *Server) Rung() BrownoutRung {
	return BrownoutRung(s.brownoutRung.Load())
}
