package netio

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/rlnc"
)

// TestChaosFetch is the acceptance test for the fault-injection layer and
// the resilient client together: a full fetch through a faultnet link that
// corrupts bytes, stalls reads, and hard-resets the connection over and
// over must still complete byte-identical, with every reconnect carrying
// the accumulated decoder rank forward.
//
// The fault rates are picked against the record size (96 wire bytes at
// n=8, k=64): roughly one corrupted byte per ~15 records (~1% of wire
// bytes land in a damaged record's frame) and a reset every ~600–1200
// stream bytes, far below the ~4KB a clean session needs — so no single
// connection can ever finish and the client is forced through many
// resynchronizations.
func TestChaosFetch(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 4*p.SegmentSize()-13, 99)

	srv, err := NewServer(media, p)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srv.Serve(serveCtx, l)
	defer srv.Shutdown()

	dial, ctr := faultnet.Dialer(faultnet.Config{
		Seed:         4242,
		CorruptEvery: 1500,
		ResetEvery:   600,
		StallEvery:   2000,
		Stall:        time.Millisecond,
		MaxReadChunk: 512,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})

	prev := map[uint32]int{}
	f := NewFetcher(dial,
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithBackoffSeed(7),
		WithReconnectHook(func(reconnect int, ranks map[uint32]int) {
			for id, r := range ranks {
				if r < prev[id] {
					panic(fmt.Sprintf("reconnect %d lost rank on segment %d: %d -> %d", reconnect, id, prev[id], r))
				}
				prev[id] = r
			}
		}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("chaos fetch failed: %v (stats %+v, faults %+v)", err, f.stats, ctr.View())
	}

	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the chaos link")
	}
	faults := ctr.View()
	if faults.Resets < 3 {
		t.Fatalf("link injected %d resets, want >= 3 (ResetEvery too large for the transfer?)", faults.Resets)
	}
	if faults.Corruptions == 0 {
		t.Fatal("link injected no corruption")
	}
	if res.Stats.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3; faults %+v, stats %+v", res.Stats.Reconnects, faults, res.Stats)
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("reconnects carried no rank: client restarted from scratch")
	}
	// Zero lost rank, checked two ways: the hook above panics on any
	// regression, and the final ranks are full for every segment.
	for id := uint32(0); id < uint32(srv.Segments()); id++ {
		if res.Ranks[id] != p.BlockCount {
			t.Fatalf("segment %d finished at rank %d of %d", id, res.Ranks[id], p.BlockCount)
		}
	}
	// The damage the link injected must show up in the client's ledger:
	// corrupted record bodies as Corrupt, corrupted length prefixes as
	// framing resyncs. Where each corrupted byte lands depends on the
	// schedule, so only the sum is asserted.
	if res.Stats.Corrupt+res.Stats.FramingResyncs == 0 {
		t.Fatalf("no corruption reached the client ledger: stats %+v, faults %+v", res.Stats, faults)
	}
	if res.Stats.BytesDiscarded == 0 {
		t.Fatal("chaos fetch discarded no bytes")
	}
}
