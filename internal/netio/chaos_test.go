package netio

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

// TestChaosFetch is the acceptance test for the fault-injection layer and
// the resilient client together: a full fetch through a faultnet link that
// corrupts bytes, stalls reads, and hard-resets the connection over and
// over must still complete byte-identical, with every reconnect carrying
// the accumulated decoder rank forward.
//
// It is also the observability acceptance gate: server, fetcher, and chaos
// link all register into one obs.Registry with stage spans enabled, and a
// single text-format exposition taken during the run must carry the server
// block counters, the fetcher reconnect/backoff ledger, the faultnet
// injection counters, and at least three stage-latency histograms with
// nonzero p50/p99.
//
// The fault rates are picked against the record size (96 wire bytes at
// n=8, k=64): roughly one corrupted byte per ~15 records (~1% of wire
// bytes land in a damaged record's frame) and a reset every ~600–1200
// stream bytes, far below the ~4KB a clean session needs — so no single
// connection can ever finish and the client is forced through many
// resynchronizations.
func TestChaosFetch(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 4*p.SegmentSize()-13, 99)

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	srv, err := NewServer(media, p, WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srv.Serve(serveCtx, l)
	defer srv.Shutdown()

	dial, ctr := faultnet.Dialer(faultnet.Config{
		Seed:         4242,
		CorruptEvery: 1500,
		ResetEvery:   600,
		StallEvery:   2000,
		Stall:        time.Millisecond,
		MaxReadChunk: 512,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	if err := ctr.Register(reg, "faultnet"); err != nil {
		t.Fatal(err)
	}

	prev := map[uint32]int{}
	f := NewFetcher(dial,
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithBackoffSeed(7),
		WithMetrics(reg),
		WithReconnectHook(func(reconnect int, ranks map[uint32]int) {
			for id, r := range ranks {
				if r < prev[id] {
					panic(fmt.Sprintf("reconnect %d lost rank on segment %d: %d -> %d", reconnect, id, prev[id], r))
				}
				prev[id] = r
			}
		}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("chaos fetch failed: %v (stats %+v, faults %+v)", err, res.Stats, ctr.View())
	}

	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the chaos link")
	}
	faults := ctr.View()
	if faults.Resets < 3 {
		t.Fatalf("link injected %d resets, want >= 3 (ResetEvery too large for the transfer?)", faults.Resets)
	}
	if faults.Corruptions == 0 {
		t.Fatal("link injected no corruption")
	}
	if res.Stats.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3; faults %+v, stats %+v", res.Stats.Reconnects, faults, res.Stats)
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("reconnects carried no rank: client restarted from scratch")
	}
	// Zero lost rank, checked two ways: the hook above panics on any
	// regression, and the final ranks are full for every segment.
	for id := uint32(0); id < uint32(srv.Segments()); id++ {
		if res.Ranks[id] != p.BlockCount {
			t.Fatalf("segment %d finished at rank %d of %d", id, res.Ranks[id], p.BlockCount)
		}
	}
	// The damage the link injected must show up in the client's ledger:
	// corrupted record bodies as Corrupt, corrupted length prefixes as
	// framing resyncs. Where each corrupted byte lands depends on the
	// schedule, so only the sum is asserted.
	if res.Stats.Corrupt+res.Stats.FramingResyncs == 0 {
		t.Fatalf("no corruption reached the client ledger: stats %+v, faults %+v", res.Stats, faults)
	}
	if res.Stats.BytesDiscarded == 0 {
		t.Fatal("chaos fetch discarded no bytes")
	}

	assertChaosExposition(t, reg, res.Stats)
}

// TestChaosFetchSystematic is the chaos gate for the negotiated systematic +
// XOR wire mode: the same hostile link (corruption, resets, stalls), but the
// server streams the systematic sweep / GF(2) repair / dense-tail schedule
// with XNC2 records interleaved. The fetch must still complete
// byte-identical with rank carried across every reconnect — and the decoders
// must demonstrably have used the XOR-only fast path, observed through the
// rlnc.xor_absorb stage histogram.
func TestChaosFetchSystematic(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 4*p.SegmentSize()-13, 98)

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	srv, err := NewServer(media, p, WithWireMode(ModeSystematic), WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srv.Serve(serveCtx, l)
	defer srv.Shutdown()

	dial, ctr := faultnet.Dialer(faultnet.Config{
		Seed:         2424,
		CorruptEvery: 1500,
		ResetEvery:   600,
		StallEvery:   2000,
		Stall:        time.Millisecond,
		MaxReadChunk: 512,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	if err := ctr.Register(reg, "faultnet"); err != nil {
		t.Fatal(err)
	}

	f := NewFetcher(dial,
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithBackoffSeed(8),
		WithMetrics(reg),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("systematic chaos fetch failed: %v (stats %+v, faults %+v)", err, res.Stats, ctr.View())
	}

	if res.Mode != ModeSystematic {
		t.Fatalf("negotiated mode = %v, want systematic", res.Mode)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the chaos link in systematic mode")
	}
	if res.Stats.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3; faults %+v", res.Stats.Reconnects, ctr.View())
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("reconnects carried no rank in systematic mode")
	}
	for id := uint32(0); id < uint32(srv.Segments()); id++ {
		if res.Ranks[id] != p.BlockCount {
			t.Fatalf("segment %d finished at rank %d of %d", id, res.Ranks[id], p.BlockCount)
		}
	}
	// Fast-path proof: the GF(2) absorbs of this fetch (systematic sweep and
	// XOR repair records, before any dense tail arrived) must have landed in
	// the rlnc.xor_absorb stage histogram.
	v, ok := reg.HistogramView("rlnc.xor_absorb")
	if !ok || v.Count == 0 {
		t.Fatalf("rlnc.xor_absorb stage saw no traffic (ok=%v count=%d): XOR fast path never engaged", ok, v.Count)
	}
}

// assertChaosExposition scrapes reg once and checks the unified exposition:
// every surface in one vocabulary, with real latency distributions.
func assertChaosExposition(t *testing.T, reg *obs.Registry, stats *FetchStats) {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatalf("exposition failed: %v", err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	// One scrape must carry all four surfaces, nonzero.
	for _, series := range []string{
		// Server block counters.
		"netio_blocks_encoded", "netio_blocks_offered", "netio_blocks_sent",
		"netio_bytes_sent", "netio_sessions_total",
		// Fetcher reconnect/backoff ledger.
		"fetch_attempts", "fetch_reconnects", "fetch_records", "fetch_resumed_rank",
		// Chaos-link injection counters.
		"faultnet_corruptions", "faultnet_resets", "faultnet_conns",
	} {
		if byKey[series] <= 0 {
			t.Errorf("exposition series %s = %v, want > 0", series, byKey[series])
		}
	}
	// The fetcher counters in the registry are the same storage the typed
	// stats view reads — not a parallel ledger.
	if got := int(byKey["fetch_reconnects"]); got != stats.Reconnects {
		t.Errorf("registry fetch_reconnects = %d, FetchStats.Reconnects = %d", got, stats.Reconnects)
	}
	// At least three stage histograms saw traffic, with usable tails.
	withTails := []string{}
	for _, name := range reg.Names() {
		v, ok := reg.HistogramView(name)
		if !ok || v.Count == 0 {
			continue
		}
		if v.P50 > 0 && v.P99 > 0 {
			withTails = append(withTails, name)
		}
		// Every populated histogram must also appear in the text exposition.
		if byKey[obsCountKey(name)] != float64(v.Count) {
			t.Errorf("histogram %s: text count %v != view count %d",
				name, byKey[obsCountKey(name)], v.Count)
		}
	}
	if len(withTails) < 3 {
		t.Errorf("only %d stage histograms with nonzero p50/p99 (%v), want >= 3",
			len(withTails), withTails)
	}
}

// obsCountKey maps a dotted histogram name to its text-format _count series.
func obsCountKey(name string) string {
	return strings.ReplaceAll(name, ".", "_") + "_count"
}
