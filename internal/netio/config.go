package netio

import (
	"fmt"
	"math/rand"
	"time"

	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

// FanoutMode selects how the encoder pump hands records to session queues —
// the serving-side optimization ladder, kept as selectable rungs so the load
// harness can measure each against the next (the serving analogue of the
// host-codec kernel rungs).
type FanoutMode uint8

const (
	// FanoutAmortized (the default) offers each pump round to a session in
	// one bulk operation — one lock and one batched counter update per
	// session per round instead of per record — and lets writers drain their
	// queue in vectored batches (one writev-style flush for many records).
	FanoutAmortized FanoutMode = iota
	// FanoutPerRecord is the baseline rung: one offer per record per session
	// and one wire write per record, the original single-pump cost profile.
	// It exists so capacity ladders can measure what amortization buys.
	FanoutPerRecord
)

func (m FanoutMode) String() string {
	switch m {
	case FanoutAmortized:
		return "amortized"
	case FanoutPerRecord:
		return "record"
	default:
		return fmt.Sprintf("FanoutMode(%d)", uint8(m))
	}
}

// ParseFanoutMode is the inverse of FanoutMode.String.
func ParseFanoutMode(s string) (FanoutMode, error) {
	switch s {
	case "amortized":
		return FanoutAmortized, nil
	case "record":
		return FanoutPerRecord, nil
	default:
		return 0, fmt.Errorf("netio: unknown fanout mode %q", s)
	}
}

// ServerConfig is the complete serving configuration. NewServer and
// NewSourceServer build one from DefaultServerConfig plus functional options;
// NewServerFromConfig and NewSourceServerFromConfig accept a literal struct.
// Both construction paths share the same Validate/normalize pipeline, so a
// config that passes Validate behaves identically however it was assembled.
//
// Zero fields marked "0 → default" are replaced during normalization; the
// other zero values are meaningful (no write deadline, no session cap, no
// pacing) and taken literally — start from DefaultServerConfig to get the
// option-path defaults.
type ServerConfig struct {
	// QueueDepth bounds each session's send queue, in records (0 → 64,
	// negative → 1). When a client drains slower than the pump produces,
	// records beyond the bound are shed instead of stalling the pump — RLNC
	// makes the loss harmless, the peer only needs enough blocks, not
	// specific ones.
	QueueDepth int
	// WriteDeadline bounds every record flush; a flush that misses it is
	// retried (resuming at the byte where it stopped) WriteRetries times and
	// the session is then dropped. Zero disables deadlines
	// (DefaultServerConfig sets 5s).
	WriteDeadline time.Duration
	// WriteRetries is how many extra deadline windows a timed-out flush gets
	// before the session is dropped (negative → 0; DefaultServerConfig
	// sets 1).
	WriteRetries int
	// EncodeBatch is how many coded blocks each pump generates per segment
	// per round (0 → max(4, blockCount/4)).
	EncodeBatch int
	// MaxSessions caps concurrent sessions across all shards; connections
	// beyond the cap are closed immediately and counted in
	// Snapshot.SessionsRejected. Zero means unlimited.
	MaxSessions int
	// EncoderWorkers is the worker count of each shard's parallel encoder
	// (0 → the SharedPool's worker count). Media-backed servers only.
	EncoderWorkers int
	// Seed is the base seed of the coefficient stream (0 → 1). Shard i
	// derives its stream from Seed and i, so a single-shard server
	// reproduces the unsharded block sequence exactly.
	Seed int64
	// Mode is the session coding discipline declared in every handshake
	// (default ModeDense). NewSourceServer overrides it with the source's
	// declared mode.
	Mode WireMode
	// Pace floors the interval between pump rounds, bounding each shard's
	// emission rate at EncodeBatch records per Pace regardless of CPU
	// headroom. It models a capacity-constrained coding engine; with S
	// shards the server models S engines. Zero leaves pumps unpaced.
	Pace time.Duration
	// PumpShards is the number of independent encoder pumps; sessions are
	// assigned to the least-loaded shard at handshake (0 → 1). Each shard
	// owns its sessions, its record source, and its slice of the
	// accounting, rolled up in Snapshot.
	PumpShards int
	// Fanout selects the pump-to-queue hand-off rung; see FanoutMode.
	Fanout FanoutMode
	// RetryAfter is the hint carried in BUSY admission decisions (session
	// cap, brownout reject, address-less drain): how long the client should
	// wait before redialing (0 → 250ms).
	RetryAfter time.Duration
	// Brownout enables the overload controller when Interval > 0; see
	// BrownoutConfig. Zero disables brownout entirely.
	Brownout BrownoutConfig
	// Metrics, when non-nil, registers the server's counters and session
	// gauges under the "netio" prefix. Each registry admits one server.
	Metrics *obs.Registry
	// TraceNode, when non-empty, labels this server's spans and flight
	// events and — if the process-global trace recorder is enabled at
	// construction — turns on trace propagation: the handshake negotiates
	// hsFlagTrace, an XNCT record declares the transfer's trace context,
	// and every record carries its pump round's span ID.
	TraceNode string
	// TraceID is the transfer trace to join (0 → mint a fresh one). A relay
	// sets this to its upstream's trace so spans link across tiers.
	TraceID trace.TraceID
	// TraceParent is the parent span of this server's root span (0 → the
	// root is a trace root). A relay sets this to its upstream server's
	// root span.
	TraceParent trace.SpanID
}

// DefaultServerConfig returns the defaults the functional-option path starts
// from: queue depth 64, a 5s write deadline with one retry, base seed 1,
// dense mode, one pump shard, amortized fan-out.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		QueueDepth:    64,
		WriteDeadline: 5 * time.Second,
		WriteRetries:  1,
		Seed:          1,
		PumpShards:    1,
	}
}

// Validate rejects a configuration no construction path would accept:
// an unknown wire or fanout mode, or a negative shard count. Out-of-range
// numeric fields are not errors — normalization clamps or defaults them,
// matching the historical option behavior.
func (c *ServerConfig) Validate() error {
	if c.Mode > ModeSystematic {
		return fmt.Errorf("netio: unknown wire mode %d", c.Mode)
	}
	if c.Fanout > FanoutPerRecord {
		return fmt.Errorf("netio: unknown fanout mode %d", c.Fanout)
	}
	if c.PumpShards < 0 {
		return fmt.Errorf("netio: negative pump shards %d", c.PumpShards)
	}
	return nil
}

// normalized returns a copy with every "0 → default" field resolved, using
// blockCount for the batch default. Both constructors call Validate first.
func (c ServerConfig) normalized(blockCount int) ServerConfig {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 1
	}
	if c.WriteRetries < 0 {
		c.WriteRetries = 0
	}
	if c.EncodeBatch <= 0 {
		// Default: a quarter generation per round, so late-joining clients
		// wait at most a short interleave for every segment, but at least 4
		// to amortize dispatch.
		c.EncodeBatch = max(4, blockCount/4)
	}
	if c.EncoderWorkers <= 0 {
		c.EncoderWorkers = rlnc.SharedPool().Workers()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PumpShards == 0 {
		c.PumpShards = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.Brownout.Interval > 0 {
		c.Brownout = c.Brownout.withDefaults()
	}
	return c
}

// ServerOption configures a Server built through the functional-option
// constructors. Options mutate a ServerConfig, so the two construction
// styles compose: an option-built server is exactly a
// DefaultServerConfig-plus-mutations FromConfig server.
type ServerOption func(*ServerConfig)

// WithQueueDepth bounds each session's send queue to n coded-block records;
// see ServerConfig.QueueDepth.
func WithQueueDepth(n int) ServerOption {
	return func(c *ServerConfig) { c.QueueDepth = n }
}

// WithWriteDeadline bounds every record flush to d; see
// ServerConfig.WriteDeadline. Zero disables deadlines.
func WithWriteDeadline(d time.Duration) ServerOption {
	return func(c *ServerConfig) { c.WriteDeadline = d }
}

// WithWriteRetries sets how many extra deadline windows a timed-out flush
// gets before the session is dropped (default 1: retry once, then drop).
func WithWriteRetries(n int) ServerOption {
	return func(c *ServerConfig) { c.WriteRetries = n }
}

// WithEncodeBatch sets how many coded blocks each pump generates per segment
// per round. Larger batches amortize encoder dispatch; smaller ones tighten
// the round-robin interleave across segments. The default adapts to the
// segment's block count.
func WithEncodeBatch(n int) ServerOption {
	return func(c *ServerConfig) { c.EncodeBatch = n }
}

// WithMaxSessions caps concurrent sessions; see ServerConfig.MaxSessions.
func WithMaxSessions(n int) ServerOption {
	return func(c *ServerConfig) { c.MaxSessions = n }
}

// WithServePace floors the interval between pump rounds at d, bounding each
// shard's aggregate emission rate at batch-size records per d regardless of
// CPU headroom. It models a capacity-constrained origin uplink — the regime
// where a recoding relay tier multiplies effective serving capacity — and
// keeps capacity comparisons meaningful on machines where every tier is
// otherwise compute-bound. Zero (the default) leaves the pumps unpaced.
func WithServePace(d time.Duration) ServerOption {
	return func(c *ServerConfig) { c.Pace = d }
}

// WithEncoderWorkers sets the worker count of each shard's parallel encoder
// (default: the SharedPool's worker count).
func WithEncoderWorkers(n int) ServerOption {
	return func(c *ServerConfig) { c.EncoderWorkers = n }
}

// WithServerSeed fixes the base seed of the pump coefficient streams, making
// the served block sequence reproducible; see ServerConfig.Seed.
func WithServerSeed(seed int64) ServerOption {
	return func(c *ServerConfig) { c.Seed = seed }
}

// WithWireMode sets the session coding discipline the server declares in
// every handshake (default ModeDense). In ModeSystematic the pumps cycle
// each segment through the systematic + GF(2) XOR repair + dense tail
// schedule of rlnc.SystematicEncoder, framing binary blocks in the compact
// XNC2 encoding; queueing, shedding, deadlines, and reconnect semantics are
// unchanged.
func WithWireMode(m WireMode) ServerOption {
	return func(c *ServerConfig) { c.Mode = m }
}

// WithPumpShards splits the serving load across n independent encoder pumps;
// see ServerConfig.PumpShards.
func WithPumpShards(n int) ServerOption {
	return func(c *ServerConfig) { c.PumpShards = n }
}

// WithFanout selects the pump-to-queue hand-off rung; see FanoutMode.
func WithFanout(m FanoutMode) ServerOption {
	return func(c *ServerConfig) { c.Fanout = m }
}

// WithRetryAfter sets the hint carried in BUSY admission decisions; see
// ServerConfig.RetryAfter. The resilient Fetcher floors its next backoff
// sleep at this hint.
func WithRetryAfter(d time.Duration) ServerOption {
	return func(c *ServerConfig) { c.RetryAfter = d }
}

// WithBrownout enables the overload controller: every cfg.Interval the
// server samples its pressure signal (pump stall fraction, aggregate queue
// occupancy, shed fraction) and walks the degradation ladder — pace the
// pumps, thin the systematic schedule, reject new sessions with BUSY — with
// hysteresis on the way down. See BrownoutConfig and BrownoutRung.
func WithBrownout(cfg BrownoutConfig) ServerOption {
	return func(c *ServerConfig) { c.Brownout = cfg }
}

// WithMetricsRegistry registers the server's counters and session gauges
// into reg under the "netio" prefix, so the server scrapes alongside every
// other obs surface. Each registry admits one server: NewServer fails on a
// second registration with the same names.
func WithMetricsRegistry(reg *obs.Registry) ServerOption {
	return func(c *ServerConfig) { c.Metrics = reg }
}

// WithServerTrace labels the server's spans and flight events with node
// and enables trace propagation when the process-global trace recorder
// (obs/trace) is enabled at construction: a fresh trace is minted and
// declared to every client through the handshake.
func WithServerTrace(node string) ServerOption {
	return func(c *ServerConfig) { c.TraceNode = node }
}

// WithInheritedTrace is WithServerTrace for a mid-tier server (a mesh
// relay): instead of minting a fresh trace it joins tr, and its root span
// is parented under the upstream server's root, so one generation's spans
// link origin → relay → leaf.
func WithInheritedTrace(node string, tr trace.TraceID, parent trace.SpanID) ServerOption {
	return func(c *ServerConfig) {
		c.TraceNode = node
		c.TraceID = tr
		c.TraceParent = parent
	}
}

// FetcherConfig is the complete download-client configuration. NewFetcher
// builds one from DefaultFetcherConfig plus functional options;
// NewFetcherFromConfig accepts a literal struct. Both paths share the same
// validation, so a config that passes Validate behaves identically however
// it was assembled.
//
// Zero backoff fields default during normalization; a zero Jitter is taken
// literally (no jitter) — start from DefaultFetcherConfig to get the
// option-path defaults.
type FetcherConfig struct {
	// MaxAttempts caps total connection attempts (dials), counting the
	// first. Zero means unlimited: the fetch is bounded only by its context.
	MaxAttempts int
	// FetchTimeout bounds the whole fetch in wall-clock time, independent
	// of the per-attempt budget: when it expires the fetch degrades to a
	// partial FetchResult and ErrFetchTimeout. Zero means no overall
	// timeout.
	FetchTimeout time.Duration
	// Redirector, when non-nil, is re-pointed at the address carried in
	// every REDIRECT admission decision the fetch receives, so a drain
	// walks the fetcher to the named survivor on its next dial. The
	// Redirector is typically also the fetcher's DialFunc, but any
	// control-plane target works.
	Redirector *Redirector
	// BackoffBase and BackoffMax shape the reconnect schedule: the delay
	// before retry r doubles from BackoffBase (0 → 50ms), is capped at
	// BackoffMax (0 → 2s), and is then jittered. The schedule resets after
	// any session that delivered records.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter is the backoff jitter fraction in [0, 1]: each delay d is drawn
	// uniformly from [d·(1−Jitter), d·(1+Jitter)], still capped at
	// BackoffMax. DefaultFetcherConfig sets 0.5.
	Jitter float64
	// Seed fixes the jitter's random source for reproducible schedules
	// (0 → a random seed).
	Seed int64
	// ReconnectHook, when non-nil, runs after every successful reconnect
	// handshake with the 1-based reconnect number and the per-segment
	// decoder ranks carried into the new session.
	ReconnectHook func(reconnect int, ranks map[uint32]int)
	// SessionHook, when non-nil, runs with the declared SessionInfo after
	// every successful handshake, before any record of that session is read.
	SessionHook func(SessionInfo)
	// RecordTap, when non-nil, runs with every structurally valid coded
	// block the fetch receives, before (and regardless of) decoder
	// absorption. Each block is freshly allocated; the tap may retain it.
	RecordTap func(*rlnc.CodedBlock)
	// ResumeState preloads the decoders from a Fetcher.State blob saved by
	// an earlier fetch of the same object.
	ResumeState []byte
	// Metrics, when non-nil, registers the fetch ledger under the "fetch"
	// prefix. Each registry admits one fetcher; a second registration is
	// dropped (the typed stats still work).
	Metrics *obs.Registry
	// TraceNode labels this fetcher's spans and flight events ("" → the
	// generic "fetch"). Spans are emitted only on sessions whose handshake
	// negotiated tracing and while the trace recorder is enabled.
	TraceNode string
}

// DefaultFetcherConfig returns the defaults the functional-option path
// starts from: unlimited attempts, 50ms backoff doubling to a 2s cap with
// 0.5 jitter.
func DefaultFetcherConfig() FetcherConfig {
	return FetcherConfig{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		Jitter:      0.5,
	}
}

// Validate rejects a configuration NewFetcherFromConfig would refuse:
// negative attempt budget, negative backoff, an inverted backoff range, or
// jitter outside [0, 1].
func (c *FetcherConfig) Validate() error {
	if c.MaxAttempts < 0 {
		return fmt.Errorf("netio: negative attempt budget %d", c.MaxAttempts)
	}
	if c.FetchTimeout < 0 {
		return fmt.Errorf("netio: negative fetch timeout %v", c.FetchTimeout)
	}
	if c.BackoffBase < 0 || c.BackoffMax < 0 {
		return fmt.Errorf("netio: negative backoff (base %v, max %v)", c.BackoffBase, c.BackoffMax)
	}
	if c.BackoffBase > 0 && c.BackoffMax > 0 && c.BackoffBase > c.BackoffMax {
		return fmt.Errorf("netio: backoff base %v exceeds max %v", c.BackoffBase, c.BackoffMax)
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		return fmt.Errorf("netio: jitter %v outside [0, 1]", c.Jitter)
	}
	return nil
}

// normalized resolves the backoff defaults and the jitter random source.
func (c FetcherConfig) normalized() (FetcherConfig, *rand.Rand) {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	seed := c.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	return c, rand.New(rand.NewSource(seed))
}

// FetcherOption configures a Fetcher built through NewFetcher. Options
// mutate a FetcherConfig, so the two construction styles compose.
type FetcherOption func(*FetcherConfig)

// WithMaxAttempts caps the total number of connection attempts (dials),
// counting the first. Zero, the default, means unlimited.
func WithMaxAttempts(n int) FetcherOption {
	return func(c *FetcherConfig) { c.MaxAttempts = n }
}

// WithFetchTimeout bounds the whole fetch in wall-clock time; see
// FetcherConfig.FetchTimeout. Distinct from WithMaxAttempts: the attempt
// budget bounds dials, this bounds elapsed time, and either limit degrades
// the fetch to a partial result instead of discarding rank.
func WithFetchTimeout(d time.Duration) FetcherOption {
	return func(c *FetcherConfig) { c.FetchTimeout = d }
}

// WithRedirector makes the fetch honor REDIRECT admission decisions by
// re-pointing r at the address a draining server names; see
// FetcherConfig.Redirector. Pass the same Redirector whose Dial the fetcher
// uses to have the very next reconnect land on the survivor.
func WithRedirector(r *Redirector) FetcherOption {
	return func(c *FetcherConfig) { c.Redirector = r }
}

// WithBackoff sets the reconnect backoff schedule; see
// FetcherConfig.BackoffBase. The defaults are 50ms doubling to a 2s cap.
func WithBackoff(base, max time.Duration) FetcherOption {
	return func(c *FetcherConfig) {
		c.BackoffBase = base
		c.BackoffMax = max
	}
}

// WithBackoffJitter sets the jitter fraction j ∈ [0, 1], clamping
// out-of-range values. Jitter (default 0.5) keeps a fleet of clients that
// lost the same server from reconnecting in lockstep.
func WithBackoffJitter(j float64) FetcherOption {
	return func(c *FetcherConfig) {
		c.Jitter = min(max(j, 0), 1)
	}
}

// WithBackoffSeed fixes the jitter's random source, making the backoff
// schedule reproducible.
func WithBackoffSeed(seed int64) FetcherOption {
	return func(c *FetcherConfig) { c.Seed = seed }
}

// WithReconnectHook installs fn; see FetcherConfig.ReconnectHook.
// Observability only: the fetch blocks until fn returns.
func WithReconnectHook(fn func(reconnect int, ranks map[uint32]int)) FetcherOption {
	return func(c *FetcherConfig) { c.ReconnectHook = fn }
}

// WithSessionHook installs fn, called with the declared SessionInfo after
// every successful handshake (the first connection and each reconnect),
// before any record of that session is read. A mesh relay uses it to learn
// the upstream object's shape so it can re-declare the same object
// downstream. Hooks compose: each WithSessionHook appends, and hooks run
// in installation order. The fetch blocks until fn returns.
func WithSessionHook(fn func(SessionInfo)) FetcherOption {
	return func(c *FetcherConfig) {
		if prev := c.SessionHook; prev != nil {
			c.SessionHook = func(info SessionInfo) { prev(info); fn(info) }
			return
		}
		c.SessionHook = fn
	}
}

// WithRecordTap installs fn, called with every structurally valid coded
// block the fetch receives — after checksum, shape, and segment-range
// checks, before (and regardless of) decoder absorption, so the tap also
// sees blocks that are linearly dependent for this fetcher's decoders.
// This is the relay feed: a mesh relay taps its upstream fetch straight into
// per-segment recoders. Taps compose: each WithRecordTap appends, and taps
// run in installation order. The fetch blocks until fn returns.
func WithRecordTap(fn func(*rlnc.CodedBlock)) FetcherOption {
	return func(c *FetcherConfig) {
		if prev := c.RecordTap; prev != nil {
			c.RecordTap = func(b *rlnc.CodedBlock) { prev(b); fn(b) }
			return
		}
		c.RecordTap = fn
	}
}

// WithResumeState preloads the decoders from a Fetcher.State blob saved by
// an earlier (possibly failed) fetch of the same object, so the new fetch
// starts from the saved per-segment rank instead of zero.
func WithResumeState(state []byte) FetcherOption {
	return func(c *FetcherConfig) { c.ResumeState = state }
}

// WithMetrics registers the fetcher's stat counters into reg under the
// "fetch" prefix; see FetcherConfig.Metrics.
func WithMetrics(reg *obs.Registry) FetcherOption {
	return func(c *FetcherConfig) { c.Metrics = reg }
}

// WithFetchTrace labels the fetcher's spans and flight events with node;
// see FetcherConfig.TraceNode.
func WithFetchTrace(node string) FetcherOption {
	return func(c *FetcherConfig) { c.TraceNode = node }
}
