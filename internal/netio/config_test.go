package netio

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// TestServerConfigValidate pins exactly what the shared validation path
// rejects: unknown wire and fanout modes and negative shard counts. Numeric
// fields outside their range are normalization's job, not errors.
func TestServerConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ServerConfig)
		wantErr string
	}{
		{"default", func(c *ServerConfig) {}, ""},
		{"zero value", func(c *ServerConfig) { *c = ServerConfig{} }, ""},
		{"bad wire mode", func(c *ServerConfig) { c.Mode = WireMode(9) }, "wire mode"},
		{"bad fanout", func(c *ServerConfig) { c.Fanout = FanoutMode(7) }, "fanout"},
		{"negative shards", func(c *ServerConfig) { c.PumpShards = -1 }, "pump shards"},
		{"negative queue ok", func(c *ServerConfig) { c.QueueDepth = -5 }, ""},
		{"negative retries ok", func(c *ServerConfig) { c.WriteRetries = -1 }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultServerConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestServerConfigNormalized pins the zero-to-default resolution both
// construction paths share.
func TestServerConfigNormalized(t *testing.T) {
	got := (ServerConfig{QueueDepth: 0, WriteRetries: -2, Seed: 0}).normalized(16)
	if got.QueueDepth != 64 {
		t.Fatalf("QueueDepth 0 -> %d, want 64", got.QueueDepth)
	}
	if got.WriteRetries != 0 {
		t.Fatalf("WriteRetries -2 -> %d, want 0", got.WriteRetries)
	}
	if got.EncodeBatch != 4 { // max(4, 16/4)
		t.Fatalf("EncodeBatch 0 -> %d, want 4", got.EncodeBatch)
	}
	if got.Seed != 1 {
		t.Fatalf("Seed 0 -> %d, want 1", got.Seed)
	}
	if got.PumpShards != 1 {
		t.Fatalf("PumpShards 0 -> %d, want 1", got.PumpShards)
	}
	if got.EncoderWorkers <= 0 {
		t.Fatalf("EncoderWorkers 0 -> %d, want > 0", got.EncoderWorkers)
	}
	if (ServerConfig{QueueDepth: -3}).normalized(16).QueueDepth != 1 {
		t.Fatal("negative QueueDepth must clamp to 1")
	}
	if (ServerConfig{EncodeBatch: 0}).normalized(64).EncodeBatch != 16 {
		t.Fatal("EncodeBatch default must scale with block count")
	}
	// Meaningful zeros survive normalization untouched.
	z := (ServerConfig{}).normalized(16)
	if z.WriteDeadline != 0 || z.MaxSessions != 0 || z.Pace != 0 {
		t.Fatalf("meaningful zeros were defaulted: %+v", z)
	}
}

// TestFetcherConfigValidate pins the fetcher-side rejections.
func TestFetcherConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*FetcherConfig)
		wantErr string
	}{
		{"default", func(c *FetcherConfig) {}, ""},
		{"zero value", func(c *FetcherConfig) { *c = FetcherConfig{} }, ""},
		{"negative attempts", func(c *FetcherConfig) { c.MaxAttempts = -1 }, "attempt budget"},
		{"negative backoff", func(c *FetcherConfig) { c.BackoffBase = -time.Second }, "negative backoff"},
		{"inverted backoff", func(c *FetcherConfig) {
			c.BackoffBase = 3 * time.Second
			c.BackoffMax = time.Second
		}, "exceeds max"},
		{"jitter too big", func(c *FetcherConfig) { c.Jitter = 1.5 }, "jitter"},
		{"jitter negative", func(c *FetcherConfig) { c.Jitter = -0.1 }, "jitter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultFetcherConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestFromConfigMatchesOptions proves the two construction styles are one
// path: a literal-config server and an option-built server with the same
// settings serve identical block streams, and the FromConfig constructors
// reject what Validate rejects.
func TestFromConfigMatchesOptions(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 2*p.SegmentSize()-7, 61)

	cfg := DefaultServerConfig()
	cfg.QueueDepth = 16
	cfg.WriteDeadline = 2 * time.Second
	cfg.Seed = 42
	cfg.PumpShards = 2
	byConfig, err := NewServerFromConfig(media, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byOptions, err := NewServer(media, p,
		WithQueueDepth(16),
		WithWriteDeadline(2*time.Second),
		WithServerSeed(42),
		WithPumpShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for name, srv := range map[string]*Server{"config": byConfig, "options": byOptions} {
		if srv.Shards() != 2 {
			t.Fatalf("%s-built server shards = %d, want 2", name, srv.Shards())
		}
		l := startPipeServer(t, srv)
		payload, _, err := Fetch(context.Background(), l.Dial())
		if err != nil {
			t.Fatalf("%s-built server fetch: %v", name, err)
		}
		if !bytes.Equal(payload, media) {
			t.Fatalf("%s-built server payload differs", name)
		}
	}

	if _, err := NewServerFromConfig(media, p, ServerConfig{PumpShards: -2}); err == nil {
		t.Fatal("NewServerFromConfig accepted a config Validate rejects")
	}
	if _, err := NewFetcherFromConfig(
		func(context.Context) (net.Conn, error) { return nil, context.Canceled },
		FetcherConfig{Jitter: 2},
	); err == nil {
		t.Fatal("NewFetcherFromConfig accepted a config Validate rejects")
	}

	// And the valid literal-config fetcher path works end to end.
	srv, err := NewServerFromConfig(media, p, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)
	fcfg := DefaultFetcherConfig()
	fcfg.MaxAttempts = 1
	f, err := NewFetcherFromConfig(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil }, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatalf("config-built fetcher: %v", err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("config-built fetcher payload differs")
	}
}
