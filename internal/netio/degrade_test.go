package netio

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/rlnc"
)

// TestDecisionRoundTrip: the admission decision codec round-trips every legal
// decision form and rejects every illegal one.
func TestDecisionRoundTrip(t *testing.T) {
	// BUSY with a retry hint.
	var buf bytes.Buffer
	if err := writeDecision(&buf, admissionDecision{code: admissionBusy, retryAfter: 750 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	hs, err := readHandshake(&buf)
	if err != nil || hs.dec == nil {
		t.Fatalf("busy readHandshake: dec=%v err=%v", hs.dec, err)
	}
	if hs.dec.code != admissionBusy || hs.dec.retryAfter != 750*time.Millisecond {
		t.Fatalf("busy round trip: %+v", hs.dec)
	}
	if !errors.Is(hs.dec.Err(), ErrAdmissionBusy) {
		t.Fatalf("busy Err: %v", hs.dec.Err())
	}

	// REDIRECT with a survivor address.
	buf.Reset()
	if err := writeDecision(&buf, admissionDecision{code: admissionRedirect, addr: "10.1.2.3:9999"}); err != nil {
		t.Fatal(err)
	}
	hs, err = readHandshake(&buf)
	if err != nil || hs.dec == nil {
		t.Fatalf("redirect readHandshake: dec=%v err=%v", hs.dec, err)
	}
	if hs.dec.code != admissionRedirect || hs.dec.addr != "10.1.2.3:9999" {
		t.Fatalf("redirect round trip: %+v", hs.dec)
	}
	if !errors.Is(hs.dec.Err(), ErrAdmissionRedirect) {
		t.Fatalf("redirect Err: %v", hs.dec.Err())
	}

	// Explicit ACCEPT followed by a session header parses as a handshake.
	hdr := sessionHeader{params: rlnc.Params{BlockCount: 4, BlockSize: 64}, segments: 2, length: 512}
	buf.Reset()
	if err := writeDecision(&buf, admissionDecision{code: admissionAccept}); err != nil {
		t.Fatal(err)
	}
	if err := writeSessionHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	hs, err = readHandshake(&buf)
	if err != nil {
		t.Fatalf("explicit accept: %v", err)
	}
	if hs.dec == nil || hs.dec.code != admissionAccept || hs.hdr != hdr {
		t.Fatalf("explicit accept: dec=%+v h=%+v", hs.dec, hs.hdr)
	}

	// A bare session header is an implied ACCEPT: nil decision.
	buf.Reset()
	if err := writeSessionHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	hs, err = readHandshake(&buf)
	if err != nil || hs.dec != nil || hs.hdr != hdr {
		t.Fatalf("implied accept: h=%+v dec=%v err=%v", hs.hdr, hs.dec, err)
	}

	// Decisions no server writes are rejected at marshal time.
	for _, bad := range []admissionDecision{
		{code: admissionAccept, retryAfter: time.Second},
		{code: admissionBusy, addr: "x"},
		{code: admissionRedirect},
		{code: admissionRedirect, addr: "x", retryAfter: time.Second},
		{code: 9},
	} {
		if _, err := appendDecision(nil, bad); !errors.Is(err, ErrBadHandshake) {
			t.Fatalf("appendDecision(%+v) = %v, want ErrBadHandshake", bad, err)
		}
	}
}

// rewriteDecisionCRC recomputes the trailing CRC of a marshaled decision
// record so tests can forge otherwise-valid records with illegal fields.
func rewriteDecisionCRC(rec []byte) {
	body := rec[:len(rec)-decisionCRCLen]
	binary.BigEndian.PutUint32(rec[len(rec)-decisionCRCLen:], crc32.ChecksumIEEE(body))
}

// TestDecisionRejectsForged: an unknown decision code and a bad CRC are both
// ErrBadHandshake, even when the rest of the record is plausible.
func TestDecisionRejectsForged(t *testing.T) {
	rec, err := appendDecision(nil, admissionDecision{code: admissionBusy, retryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Unknown code with a correct CRC: structurally sound, semantically not.
	forged := bytes.Clone(rec)
	forged[4] = 3
	rewriteDecisionCRC(forged)
	if _, err := readHandshake(bytes.NewReader(forged)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("unknown code: %v, want ErrBadHandshake", err)
	}

	// Flipped CRC bit.
	forged = bytes.Clone(rec)
	forged[len(forged)-1] ^= 0x01
	if _, err := readHandshake(bytes.NewReader(forged)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad CRC: %v, want ErrBadHandshake", err)
	}

	// Truncated record.
	if _, err := readHandshake(bytes.NewReader(rec[:6])); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("truncated: %v, want ErrBadHandshake", err)
	}
}

// TestServeBusyHonoredByFetcher: a session-cap reject reaches the resilient
// fetcher as a structured BUSY with a retry hint, and the fetcher retries
// through it to completion once the cap frees up.
func TestServeBusyHonoredByFetcher(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, p.SegmentSize(), 21)
	srv, err := NewServer(media, p,
		WithMaxSessions(1),
		WithWriteDeadline(time.Second),
		WithRetryAfter(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)

	// Pin the only session slot with a consuming raw client so the cap stays
	// hit until the test releases it.
	pinned, err := NewRawClient(l.Dial())
	if err != nil {
		t.Fatal(err)
	}
	pinDone := make(chan struct{})
	go func() {
		defer close(pinDone)
		for {
			if _, err := pinned.Next(); err != nil {
				return
			}
		}
	}()

	f := NewFetcher(func(ctx context.Context) (net.Conn, error) {
		return l.Dial(), nil
	}, WithBackoff(time.Millisecond, 20*time.Millisecond), WithBackoffJitter(0), WithBackoffSeed(1))

	fetchDone := make(chan error, 1)
	var res *FetchResult
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var err error
		res, err = f.Fetch(ctx)
		fetchDone <- err
	}()

	// The fetcher must observe at least one BUSY before the slot frees.
	for deadline := time.Now().Add(10 * time.Second); f.Stats().AdmissionBusy == 0; {
		if time.Now().After(deadline) {
			t.Fatal("fetcher never saw a BUSY decision")
		}
		time.Sleep(time.Millisecond)
	}
	pinned.Close()
	<-pinDone

	if err := <-fetchDone; err != nil {
		t.Fatalf("fetch through BUSY: %v", err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs after BUSY retries")
	}
	if res.Stats.AdmissionBusy == 0 {
		t.Fatal("stats lost the BUSY count")
	}
	snap := srv.Snapshot()
	if snap.AdmissionBusy == 0 || snap.SessionsRejected == 0 {
		t.Fatalf("server side: admission_busy=%d sessions_rejected=%d, want both > 0",
			snap.AdmissionBusy, snap.SessionsRejected)
	}
}

// TestDrainRedirectFollowed is the drain gate at netio scope: a fetcher
// mid-download on a draining server is walked — by a REDIRECT decision, not
// out-of-band control — to the named survivor, keeps all accumulated rank,
// and finishes a byte-identical transfer; both servers' ledgers balance.
func TestDrainRedirectFollowed(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 2048}
	media := testMedia(t, 4*p.SegmentSize(), 22)
	newTCPServer := func(seed int64) (*Server, net.Listener, chan error) {
		t.Helper()
		srv, err := NewServer(media, p, WithWriteDeadline(time.Second), WithServerSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback listen unavailable: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(context.Background(), l) }()
		return srv, l, done
	}
	srvA, lA, doneA := newTCPServer(100)
	srvB, lB, doneB := newTCPServer(200)
	defer func() {
		srvB.Shutdown()
		lB.Close()
		<-doneB
	}()

	// A pinned consuming session holds the drain window open: Drain waits for
	// it, so REDIRECT stays on offer until the fetcher has walked off.
	pinConn, err := net.Dial("tcp", lA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := NewRawClient(pinConn)
	if err != nil {
		t.Fatal(err)
	}
	pinDone := make(chan struct{})
	go func() {
		defer close(pinDone)
		for {
			if _, err := pinned.Next(); err != nil {
				return
			}
		}
	}()

	// The fetcher dials through a Redirector wrapped in chaos resets, so its
	// connection to the draining server keeps getting cut mid-stream and each
	// reconnect passes through admission again.
	rd := NewRedirector(lA.Addr().String())
	dial, _ := faultnet.Dialer(faultnet.Config{Seed: 23, ResetEvery: 24 << 10}, rd.Dial)
	f := NewFetcher(dial,
		WithRedirector(rd),
		WithBackoff(time.Millisecond, 50*time.Millisecond),
		WithBackoffSeed(2))

	fetchDone := make(chan error, 1)
	var res *FetchResult
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		var err error
		res, err = f.Fetch(ctx)
		fetchDone <- err
	}()

	// Let the fetcher accumulate rank on the doomed server first, then drain.
	for deadline := time.Now().Add(10 * time.Second); f.Stats().Records == 0; {
		if time.Now().After(deadline) {
			t.Fatal("fetch never started on the draining server")
		}
		time.Sleep(time.Millisecond)
	}
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- srvA.Drain(ctx, lB.Addr().String())
	}()

	if err := <-fetchDone; err != nil {
		t.Fatalf("fetch across drain: %v", err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs after redirect")
	}
	stats := res.Stats
	if stats.AdmissionRedirected == 0 {
		t.Fatal("fetcher never saw the REDIRECT decision")
	}
	if rd.Redirects() == 0 || rd.Target() != lB.Addr().String() {
		t.Fatalf("redirector not walked to the survivor: redirects=%d target=%q",
			rd.Redirects(), rd.Target())
	}
	if stats.ResumedRank == 0 {
		t.Fatal("no rank carried across the redirect reconnects")
	}

	// Release the pinned session; the drain must now complete cleanly.
	pinned.Close()
	<-pinDone
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	lA.Close()
	<-doneA

	snapA := srvA.Snapshot()
	if snapA.AdmissionRedirected == 0 {
		t.Fatal("drained server wrote no REDIRECT decisions")
	}
	if !snapA.Draining {
		t.Fatal("drained server snapshot does not report draining")
	}
	if !snapA.Consistent() {
		t.Fatalf("drained ledger: offered %d != sent %d + shed %d",
			snapA.BlocksOffered, snapA.BlocksSent, snapA.BlocksShed)
	}
	srvB.Shutdown()
	if snapB := srvB.Snapshot(); !snapB.Consistent() {
		t.Fatalf("survivor ledger: offered %d != sent %d + shed %d",
			snapB.BlocksOffered, snapB.BlocksSent, snapB.BlocksShed)
	}
}

// TestShutdownDrainRace: Shutdown and Drain are idempotent and safe to race
// with each other and with Serve; every call returns, and follow-up calls are
// no-ops. Run under -race this is the regression net for the teardown
// interlocks.
func TestShutdownDrainRace(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, p.SegmentSize(), 24)
	srv, err := NewServer(media, p, WithWriteDeadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	// One live session so teardown has real work to race over.
	fetchDone := make(chan error, 1)
	go func() {
		_, _, err := Fetch(context.Background(), l.Dial())
		fetchDone <- err
	}()
	time.Sleep(5 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			srv.Shutdown()
		}()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Drain(ctx, "") //nolint:errcheck — racing Shutdown may pre-empt it
		}()
	}
	wg.Wait()

	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after racing teardown: %v", err)
	}
	<-fetchDone

	// Every follow-up is a fast no-op.
	if err := srv.Drain(context.Background(), "nowhere:1"); err != nil {
		t.Fatalf("Drain after Shutdown: %v", err)
	}
	srv.Shutdown()
	checkAccounting(t, srv.Snapshot())
}

// TestBrownoutControllerHysteresis pins the ladder state machine: climb one
// rung per hot interval, require Hold consecutive calm intervals per step
// down, and reset the calm streak in the dead band.
func TestBrownoutControllerHysteresis(t *testing.T) {
	ctl := &brownoutController{cfg: BrownoutConfig{Interval: time.Second}.withDefaults()}
	steps := []struct {
		pressure float64
		want     BrownoutRung
	}{
		{1.0, BrownoutPaced},  // hot: climb
		{0.80, BrownoutLean},  // ≥ StepUp: climb
		{0.50, BrownoutLean},  // dead band: hold
		{0.10, BrownoutLean},  // calm 1 of 3
		{0.10, BrownoutLean},  // calm 2 of 3
		{0.50, BrownoutLean},  // dead band resets the calm streak
		{0.10, BrownoutLean},  // calm 1 of 3 again
		{0.10, BrownoutLean},  // calm 2 of 3
		{0.10, BrownoutPaced}, // calm 3 of 3: step down
		{1.0, BrownoutLean},   // hot again: climb, calm reset
		{1.0, BrownoutReject}, // climb
		{1.0, BrownoutReject}, // saturates at the top rung
		{0.10, BrownoutReject},
		{0.10, BrownoutReject},
		{0.10, BrownoutLean}, // three calm: down
		{0.10, BrownoutLean},
		{0.10, BrownoutLean},
		{0.10, BrownoutPaced},
		{0.10, BrownoutPaced},
		{0.10, BrownoutPaced},
		{0.10, BrownoutOff},
		{0.10, BrownoutOff}, // floors at off
	}
	for i, s := range steps {
		if got := ctl.observe(s.pressure); got != s.want {
			t.Fatalf("step %d (pressure %.2f): rung %v, want %v", i, s.pressure, got, s.want)
		}
	}
}

// TestBrownoutLadderEngages drives a real server past saturation: a client
// that never drains its queue pins occupancy and stall at 1.0, the ladder
// must climb to BrownoutReject (new handshakes get BUSY), and once the load
// disappears it must walk all the way back down to BrownoutOff.
func TestBrownoutLadderEngages(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, p.SegmentSize(), 25)
	srv, err := NewServer(media, p,
		WithQueueDepth(2),
		WithWriteDeadline(0), // never drop the staller: pressure stays pinned
		WithBrownout(BrownoutConfig{
			Interval: 10 * time.Millisecond,
			StepUp:   0.5,
			StepDown: 0.05,
			Hold:     2,
		}))
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)

	// The overload: a session whose queue never drains.
	staller := l.Dial()
	hdr := make([]byte, protoHeaderLen)
	if _, err := io.ReadFull(staller, hdr); err != nil {
		t.Fatal(err)
	}

	waitRung := func(want BrownoutRung) {
		t.Helper()
		for deadline := time.Now().Add(15 * time.Second); srv.Rung() != want; {
			if time.Now().After(deadline) {
				t.Fatalf("rung stuck at %v, want %v", srv.Rung(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitRung(BrownoutReject)

	// At the top rung new handshakes are shed with BUSY.
	if _, _, err := Fetch(context.Background(), l.Dial()); !errors.Is(err, ErrAdmissionBusy) {
		t.Fatalf("fetch at BrownoutReject: %v, want ErrAdmissionBusy", err)
	}

	// Load gone: the ladder must recover rung by rung to off.
	staller.Close()
	waitRung(BrownoutOff)

	snap := srv.Snapshot()
	if snap.BrownoutTransitions < 6 {
		t.Fatalf("brownout_transitions = %d, want ≥ 6 (3 up + 3 down)", snap.BrownoutTransitions)
	}
	if snap.AdmissionBusy == 0 || snap.SessionsRejected == 0 {
		t.Fatalf("reject rung wrote no BUSY: admission_busy=%d sessions_rejected=%d",
			snap.AdmissionBusy, snap.SessionsRejected)
	}
}

// TestFetchTimeoutPartialResult: the overall wall-clock budget expires on a
// deliberately slow server and the fetch degrades to a partial result — rank
// preserved, ErrFetchTimeout, no payload.
func TestFetchTimeoutPartialResult(t *testing.T) {
	p := rlnc.Params{BlockCount: 64, BlockSize: 1024}
	media := testMedia(t, p.SegmentSize(), 26)
	// One record per 20ms: full rank needs ≥ 1.28s, far past the 250ms budget,
	// but the first records land well inside it.
	srv, err := NewServer(media, p,
		WithEncodeBatch(1),
		WithServePace(20*time.Millisecond),
		WithWriteDeadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)

	f := NewFetcher(func(ctx context.Context) (net.Conn, error) {
		return l.Dial(), nil
	}, WithFetchTimeout(250*time.Millisecond))
	res, err := f.Fetch(context.Background())
	if !errors.Is(err, ErrFetchTimeout) {
		t.Fatalf("err = %v, want ErrFetchTimeout", err)
	}
	if res == nil || res.Stats == nil {
		t.Fatal("timed-out fetch returned no result")
	}
	if res.Payload != nil {
		t.Fatal("timed-out fetch claims a complete payload")
	}
	total := 0
	for _, r := range res.Ranks {
		total += r
	}
	if total == 0 {
		t.Fatal("no partial rank survived the timeout")
	}
	// The caller's own cancellation must NOT be rebranded as ErrFetchTimeout.
	f2 := NewFetcher(func(ctx context.Context) (net.Conn, error) {
		return l.Dial(), nil
	}, WithFetchTimeout(time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f2.Fetch(ctx); errors.Is(err, ErrFetchTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fetch: %v, want context.Canceled without ErrFetchTimeout", err)
	}
}

// TestBackoffCtxInterruptible: a fetcher parked in a long backoff sleep wakes
// immediately when its context ends instead of serving out the delay.
func TestBackoffCtxInterruptible(t *testing.T) {
	dialErr := errors.New("nope")
	f := NewFetcher(func(ctx context.Context) (net.Conn, error) {
		return nil, dialErr
	}, WithBackoff(time.Hour, time.Hour), WithBackoffJitter(0))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.Fetch(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("backoff ignored cancellation for %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
