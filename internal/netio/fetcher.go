package netio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

// Fetch-stage spans. Free when no obs sink is installed; with one: dial
// latency per connection attempt, backoff sleep per retry, dial-to-handshake
// latency per successful reconnect, and decode latency per absorbed record.
var (
	stageFetchDial    = obs.StageOf("fetch.dial")
	stageFetchBackoff = obs.StageOf("fetch.backoff")
	stageFetchReconn  = obs.StageOf("fetch.reconnect")
	stageFetchDecode  = obs.StageOf("fetch.record_decode")
)

// Resilient-client errors.
var (
	// ErrFetchBudget reports a fetch that exhausted its attempt budget
	// before every segment reached full rank. The FetchResult returned
	// alongside it still carries all accumulated progress.
	ErrFetchBudget = errors.New("netio: fetch attempt budget exhausted")
	// ErrHeaderMismatch reports a reconnect that was answered with a
	// different session header: the server is no longer serving the same
	// object, so accumulated rank cannot be extended.
	ErrHeaderMismatch = errors.New("netio: session header changed across reconnects")
	// ErrBadResumeState reports an unusable WithResumeState blob.
	ErrBadResumeState = errors.New("netio: bad fetch resume state")
	// ErrFetchTimeout reports a fetch that ran out of its WithFetchTimeout
	// wall-clock budget before every segment reached full rank. Like
	// ErrFetchBudget, the FetchResult returned alongside it still carries
	// all accumulated progress.
	ErrFetchTimeout = errors.New("netio: fetch timeout")
)

// DialFunc opens one connection to the serving peer. The Fetcher calls it
// for the initial connection and again for every reconnect.
type DialFunc func(ctx context.Context) (net.Conn, error)

// FetchResult is everything a fetch produced, returned even when the fetch
// failed: RLNC progress is rank, and rank is never worth discarding.
type FetchResult struct {
	// Payload is the complete reassembled object, nil unless every segment
	// reached full rank.
	Payload []byte
	// Segments holds the segments that reached full rank, keyed by ID.
	Segments map[uint32]*rlnc.Segment
	// Ranks maps every segment with at least one innovative block to its
	// decoder rank, including partial ones.
	Ranks map[uint32]int
	// Mode is the session coding discipline the server declared in the
	// handshake; meaningful once at least one handshake succeeded.
	Mode WireMode
	// Stats is never nil.
	Stats *FetchStats
}

// Fetcher is a resilient download client for the push protocol. Unlike the
// one-shot Fetch it owns a dial function rather than a connection, and it
// carries its per-segment decoders across reconnects: a connection reset, a
// framing loss, or a server restart costs only the bytes in flight, never
// accumulated rank — the property that makes a coded transport need no
// retransmission protocol (paper Sec. 5.1).
//
// A Fetcher is single-use and not safe for concurrent use: construct, call
// Fetch once, then optionally State.
type Fetcher struct {
	dial DialFunc
	cfg  FetcherConfig // normalized
	rng  *rand.Rand    // jitter source

	hdr         *sessionHeader
	established bool
	decoders    map[uint32]*rlnc.Decoder
	ready       int
	stats       fetcherMetrics

	// Admission-decision carry-over between attempts: busyHint floors the
	// next backoff sleep at a BUSY decision's retry-after, promptRetry skips
	// the backoff entirely after a REDIRECT (the new target deserves an
	// immediate dial).
	busyHint    time.Duration
	promptRetry bool

	// reconnSpan times dial-through-handshake on reconnect attempts. Started
	// in Fetch before redialing, ended in session once the handshake lands; a
	// failed attempt's span is simply dropped when the next one starts.
	reconnSpan obs.Span

	// Inherited trace context from the server's XNCT record, and the round
	// span named by the latest record prelude. Atomics: the fetch loop is
	// single-goroutine, but a relay's serving side reads these concurrently
	// (TraceContext, LastRoundSpan) to parent its own spans.
	trOK      atomic.Bool
	trTrace   atomic.Uint64
	trRoot    atomic.Uint64
	lastRound atomic.Uint64
}

// traceNode labels this fetcher's spans and flight events.
func (f *Fetcher) traceNode() string {
	if f.cfg.TraceNode != "" {
		return f.cfg.TraceNode
	}
	return "fetch"
}

// TraceContext returns the trace the upstream server declared in the latest
// traced handshake: the transfer's trace ID and the server's root span. ok is
// false until a traced session is established. Safe for concurrent use.
func (f *Fetcher) TraceContext() (trace.TraceID, trace.SpanID, bool) {
	if !f.trOK.Load() {
		return 0, 0, false
	}
	return trace.TraceID(f.trTrace.Load()), trace.SpanID(f.trRoot.Load()), true
}

// LastRoundSpan returns the upstream pump-round span named by the most recent
// record prelude (0 before any traced record). Safe for concurrent use.
func (f *Fetcher) LastRoundSpan() trace.SpanID {
	return trace.SpanID(f.lastRound.Load())
}

// fetcherMetrics is the fetch ledger as registry-attachable counters: the
// Fetcher increments these, and FetchStats is a point-in-time view over
// them (the fetch loop is single-goroutine, but scrapes are concurrent).
type fetcherMetrics struct {
	attempts       obs.Counter
	reconnects     obs.Counter
	records        obs.Counter
	dependent      obs.Counter
	corrupt        obs.Counter
	malformed      obs.Counter
	badSegment     obs.Counter
	framingResyncs obs.Counter
	resumedRank    obs.Counter
	bytes          obs.Counter
	bytesDiscarded obs.Counter

	admissionBusy       obs.Counter
	admissionRedirected obs.Counter
}

// view snapshots the ledger as the public FetchStats shape.
func (m *fetcherMetrics) view() *FetchStats {
	return &FetchStats{
		Attempts:       int(m.attempts.Load()),
		Reconnects:     int(m.reconnects.Load()),
		Records:        int(m.records.Load()),
		Dependent:      int(m.dependent.Load()),
		Corrupt:        int(m.corrupt.Load()),
		Malformed:      int(m.malformed.Load()),
		BadSegment:     int(m.badSegment.Load()),
		FramingResyncs: int(m.framingResyncs.Load()),
		ResumedRank:    int(m.resumedRank.Load()),
		Bytes:          m.bytes.Load(),
		BytesDiscarded: m.bytesDiscarded.Load(),

		AdmissionBusy:       int(m.admissionBusy.Load()),
		AdmissionRedirected: int(m.admissionRedirected.Load()),
	}
}

// register attaches the ledger to reg under prefix.
func (m *fetcherMetrics) register(reg *obs.Registry, prefix string) error {
	for _, e := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"attempts", "connection attempts, including the first", &m.attempts},
		{"reconnects", "successful handshakes after the first", &m.reconnects},
		{"records", "complete records received", &m.records},
		{"dependent", "linearly dependent blocks (innovation overhead)", &m.dependent},
		{"corrupt", "records rejected for bit damage", &m.corrupt},
		{"malformed", "checksummed records with the wrong session shape", &m.malformed},
		{"bad_segment", "checksummed records with an out-of-range segment ID", &m.badSegment},
		{"framing_resyncs", "corrupted length prefixes forcing a reconnect", &m.framingResyncs},
		{"resumed_rank", "total decoder rank carried across reconnects", &m.resumedRank},
		{"bytes", "wire bytes consumed in complete records", &m.bytes},
		{"bytes_discarded", "bytes thrown away: rejects, bad prefixes, partials", &m.bytesDiscarded},
		{"admission_busy", "handshakes answered with a BUSY admission decision", &m.admissionBusy},
		{"admission_redirected", "handshakes answered with a REDIRECT admission decision", &m.admissionRedirected},
	} {
		if err := reg.RegisterCounter(prefix+"."+e.name, e.help, e.c); err != nil {
			return err
		}
	}
	return nil
}

// NewFetcher returns a Fetcher that downloads through dial.
func NewFetcher(dial DialFunc, opts ...FetcherOption) *Fetcher {
	cfg := DefaultFetcherConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return newFetcher(dial, cfg)
}

// NewFetcherFromConfig is NewFetcher with a literal, validated
// configuration; see FetcherConfig for the zero-value semantics.
func NewFetcherFromConfig(dial DialFunc, cfg FetcherConfig) (*Fetcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return newFetcher(dial, cfg), nil
}

func newFetcher(dial DialFunc, cfg FetcherConfig) *Fetcher {
	norm, rng := cfg.normalized()
	f := &Fetcher{dial: dial, cfg: norm, rng: rng}
	if norm.Metrics != nil {
		// Best-effort: a name collision (second fetcher on one registry)
		// drops the registration but never the ledger itself.
		f.stats.register(norm.Metrics, "fetch") //nolint:errcheck
	}
	return f
}

// Fetch runs the download until every segment reaches full rank, the
// attempt budget runs out, the WithFetchTimeout wall-clock budget expires,
// or ctx ends. The FetchResult is never nil and always carries the stats
// plus whatever segments and ranks were decoded, even alongside an error — a
// budget-exhausted or timed-out fetch degrades to a partial result instead
// of discarding progress.
func (f *Fetcher) Fetch(ctx context.Context) (*FetchResult, error) {
	outer := ctx
	if f.cfg.FetchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.cfg.FetchTimeout)
		defer cancel()
	}
	res, err := f.fetch(ctx)
	// A deadline that fired on the fetch's own timer — not on the caller's
	// context — is the wall-clock budget running out, not a cancellation.
	if err != nil && f.cfg.FetchTimeout > 0 && outer.Err() == nil &&
		errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("%w: %v elapsed: %v", ErrFetchTimeout, f.cfg.FetchTimeout, err)
	}
	return res, err
}

func (f *Fetcher) fetch(ctx context.Context) (*FetchResult, error) {
	if f.cfg.ResumeState != nil {
		if err := f.restoreState(f.cfg.ResumeState); err != nil {
			return f.result(), err
		}
		f.cfg.ResumeState = nil
	}
	var lastErr error
	// retry drives the backoff schedule and resets whenever a session
	// absorbs at least one record: a server that streamed data and then
	// dropped us is healthy, so the next reconnect should be prompt, not
	// pay for every disconnect since the fetch began. Only consecutive
	// barren attempts escalate the delay. attempt keeps counting every
	// dial for the maxAttempts budget.
	retry := 0
	for attempt := 0; ; attempt++ {
		if ctx.Err() != nil {
			return f.result(), cancelErr(ctx)
		}
		if f.cfg.MaxAttempts > 0 && attempt >= f.cfg.MaxAttempts {
			return f.result(), budgetErr(attempt, lastErr)
		}
		if retry > 0 {
			if err := f.sleepBackoff(ctx, retry); err != nil {
				return f.result(), cancelErr(ctx)
			}
		}
		retry++
		f.stats.attempts.Inc()
		if f.established {
			f.reconnSpan = stageFetchReconn.Start()
		}
		dsp := stageFetchDial.Start()
		var dtsp trace.Span
		if tr, root, ok := f.TraceContext(); ok {
			dtsp = trace.Begin(f.traceNode(), "dial", tr, root, -1)
		}
		conn, err := f.dial(ctx)
		dtsp.End()
		dsp.End()
		if err != nil {
			if ctx.Err() != nil {
				return f.result(), cancelErr(ctx)
			}
			lastErr = err
			continue
		}
		before := f.stats.records.Load()
		done, fatal, err := f.session(ctx, conn)
		if done {
			break
		}
		if fatal {
			return f.result(), err
		}
		if f.stats.records.Load() > before || f.promptRetry {
			// A productive session, or a REDIRECT naming a new target:
			// either way the next dial should be prompt.
			retry = 0
			f.promptRetry = false
		}
		lastErr = err
	}

	res := f.result()
	segs := make([]*rlnc.Segment, 0, len(res.Segments))
	for _, seg := range res.Segments {
		segs = append(segs, seg)
	}
	payload, err := rlnc.ReassembleSegments(segs, int(f.hdr.length), f.hdr.params)
	if err != nil {
		return res, err
	}
	res.Payload = payload
	return res, nil
}

// budgetErr shapes the budget-exhaustion error. A single-attempt fetch (the
// one-shot Fetch path) surfaces the session error directly so callers keep
// matching the protocol sentinels; multi-attempt fetches wrap both.
func budgetErr(attempts int, lastErr error) error {
	if attempts == 1 && lastErr != nil {
		return lastErr
	}
	if lastErr == nil {
		return fmt.Errorf("%w: %d attempts", ErrFetchBudget, attempts)
	}
	return fmt.Errorf("%w: %d attempts, last error: %w", ErrFetchBudget, attempts, lastErr)
}

func cancelErr(ctx context.Context) error {
	return fmt.Errorf("netio: fetch cancelled: %w", ctx.Err())
}

// remaining returns how many segments still lack full rank.
func (f *Fetcher) remaining() int {
	if f.hdr == nil {
		return 1
	}
	return f.hdr.segments - f.ready
}

// totalRank sums the decoder ranks across all segments.
func (f *Fetcher) totalRank() int {
	total := 0
	for _, dec := range f.decoders {
		total += dec.Rank()
	}
	return total
}

// Stats snapshots the fetch ledger. Unlike Ranks and State it is safe to
// call concurrently with Fetch — the ledger is atomics all the way down — so
// a control plane can watch admission counters while the fetch runs.
func (f *Fetcher) Stats() *FetchStats {
	return f.stats.view()
}

// Ranks returns the current per-segment decoder ranks. Not safe to call
// concurrently with Fetch.
func (f *Fetcher) Ranks() map[uint32]int {
	ranks := make(map[uint32]int, len(f.decoders))
	for id, dec := range f.decoders {
		ranks[id] = dec.Rank()
	}
	return ranks
}

// result snapshots the accumulated progress.
func (f *Fetcher) result() *FetchResult {
	res := &FetchResult{
		Segments: make(map[uint32]*rlnc.Segment),
		Ranks:    f.Ranks(),
		Stats:    f.stats.view(),
	}
	if f.hdr != nil {
		res.Mode = f.hdr.mode
	}
	for id, dec := range f.decoders {
		if !dec.Ready() {
			continue
		}
		if seg, err := dec.Segment(); err == nil {
			res.Segments[id] = seg
		}
	}
	return res
}

// session consumes one connection: handshake, then records until every
// segment is decoded or the stream fails. It reports done when the fetch is
// complete; a non-fatal error means "reconnect and continue".
func (f *Fetcher) session(ctx context.Context, conn net.Conn) (done, fatal bool, err error) {
	defer conn.Close()

	// A cancelled context forces every blocked and future read to fail
	// immediately by moving the read deadline into the past.
	unhook := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Unix(1, 0))
	})
	defer unhook()

	hs, err := readHandshake(conn)
	if err != nil {
		if ctx.Err() != nil {
			return false, true, cancelErr(ctx)
		}
		return false, false, err
	}
	if hs.dec != nil && hs.dec.code != admissionAccept {
		// A structured rejection, not a stream failure: non-fatal, so the
		// retry loop keeps going, shaped by the server's own guidance.
		switch hs.dec.code {
		case admissionBusy:
			f.stats.admissionBusy.Inc()
			f.busyHint = hs.dec.retryAfter
		case admissionRedirect:
			f.stats.admissionRedirected.Inc()
			trace.Emit(trace.KindRedirect, f.traceNode(), hs.dec.addr, -1, 0)
			if f.cfg.Redirector != nil {
				f.cfg.Redirector.SetTarget(hs.dec.addr)
				f.promptRetry = true
			}
		}
		return false, false, hs.dec.Err()
	}
	h := hs.hdr
	switch {
	case f.hdr == nil:
		hh := h
		f.hdr = &hh
		if f.decoders == nil {
			f.decoders = make(map[uint32]*rlnc.Decoder, h.segments)
		} else if err := f.validateResumed(); err != nil {
			return false, true, err
		}
	case h != *f.hdr:
		return false, true, fmt.Errorf("%w: had %v/%d segments/%d bytes, got %v/%d segments/%d bytes",
			ErrHeaderMismatch, f.hdr.params, f.hdr.segments, f.hdr.length, h.params, h.segments, h.length)
	}
	if f.established {
		f.stats.reconnects.Inc()
		f.stats.resumedRank.Add(int64(f.totalRank()))
		f.reconnSpan.End()
		f.reconnSpan = obs.Span{}
		trace.Emit(trace.KindReconnect, f.traceNode(), "resumed", -1, int64(f.totalRank()))
		if f.cfg.ReconnectHook != nil {
			f.cfg.ReconnectHook(int(f.stats.reconnects.Load()), f.Ranks())
		}
	}
	f.established = true
	traced := hs.traced() && hs.tctx != nil
	var tr trace.TraceID
	if traced {
		tr = hs.tctx.trace
		f.trTrace.Store(uint64(hs.tctx.trace))
		f.trRoot.Store(uint64(hs.tctx.root))
		f.trOK.Store(true)
	}
	if f.cfg.SessionHook != nil {
		f.cfg.SessionHook(h.info())
	}

	// Every record of a session is a marshaled CodedBlock for the
	// handshake's (n, k), so its framed length is a constant — two constants
	// in systematic mode, where compact XNC2 GF(2) records interleave with
	// XNC1 dense-tail records. A prefix that matches neither is framing loss
	// — a corrupted length, not a record to allocate — and the stream beyond
	// it is unparseable; the fetcher resynchronizes by reconnecting, keeping
	// all rank.
	expect := uint32(wireSize(f.hdr.params))
	expectXor := expect
	if f.hdr.mode == ModeSystematic {
		expectXor = uint32(rlnc.XorWireSize(f.hdr.params))
	}
	var lenBuf [4]byte
	var preBuf [recordPreludeLen]byte
	var curRound trace.SpanID
	for f.remaining() > 0 {
		if traced {
			// Traced framing: a CRC-guarded round prelude precedes every
			// length prefix. A damaged prelude is framing loss exactly like a
			// damaged length — resynchronize by reconnecting, keeping rank —
			// rather than a license to attribute records to a phantom round.
			if _, err := io.ReadFull(conn, preBuf[:]); err != nil {
				return f.streamErr(ctx, fmt.Errorf("%w: %v", ErrStreamTruncated, err))
			}
			round, perr := parseRecordPrelude(preBuf[:])
			if perr != nil {
				f.stats.framingResyncs.Inc()
				f.stats.bytesDiscarded.Add(recordPreludeLen)
				return f.streamErr(ctx, fmt.Errorf("%v: resynchronizing", perr))
			}
			curRound = round
			f.lastRound.Store(uint64(round))
			f.stats.bytes.Add(recordPreludeLen)
		}
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return f.streamErr(ctx, fmt.Errorf("%w: %v", ErrStreamTruncated, err))
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n != expect && n != expectXor {
			f.stats.framingResyncs.Inc()
			f.stats.bytesDiscarded.Add(4)
			return f.streamErr(ctx, fmt.Errorf("%w: %d, want %d: resynchronizing", ErrRecordLength, n, expect))
		}
		rec := make([]byte, n)
		if m, err := io.ReadFull(conn, rec); err != nil {
			f.stats.bytesDiscarded.Add(int64(m) + 4)
			return f.streamErr(ctx, fmt.Errorf("%w: truncated record: %v", ErrStreamTruncated, err))
		}
		f.stats.records.Inc()
		f.stats.bytes.Add(int64(n) + 4)
		asp := stageFetchDecode.Start()
		err := f.absorb(rec, tr, curRound)
		if traced {
			asp.EndTraced(uint64(tr), uint64(curRound))
		} else {
			asp.End()
		}
		if err != nil {
			return false, true, err
		}
	}
	return true, false, nil
}

// wireSize returns the marshaled size of a coded block for p.
func wireSize(p rlnc.Params) int {
	return (&rlnc.CodedBlock{
		Coeffs:  make([]byte, p.BlockCount),
		Payload: make([]byte, p.BlockSize),
	}).WireSize()
}

// streamErr classifies a mid-stream failure: fatal if the context ended,
// otherwise a reconnectable stream error.
func (f *Fetcher) streamErr(ctx context.Context, err error) (bool, bool, error) {
	if ctx.Err() != nil {
		return false, true, cancelErr(ctx)
	}
	return false, false, err
}

// absorb parses one record and feeds it to the owning segment decoder,
// classifying rejects: Corrupt (bit damage caught by magic or checksum),
// Malformed (checksummed but the wrong shape for the session — a server
// bug, not line noise), BadSegment (checksummed but an out-of-range
// segment ID — rejected before it can allocate a stray decoder). Only an
// internal decoder failure is an error. On a traced session tr names the
// transfer and round the pump-round span this record rode in on; the absorb
// span parents under the round, linking origin encode work to leaf decode.
func (f *Fetcher) absorb(rec []byte, tr trace.TraceID, round trace.SpanID) error {
	discard := func() { f.stats.bytesDiscarded.Add(int64(len(rec)) + 4) }
	var blk rlnc.CodedBlock
	unmarshal := blk.UnmarshalBinary
	if f.hdr.mode == ModeSystematic {
		// Systematic sessions interleave both encodings; dispatch on the
		// record magic. Dense sessions stay strict: an XNC2 record there is
		// a server bug, rejected below as bad magic.
		unmarshal = blk.UnmarshalRecord
	}
	if err := unmarshal(rec); err != nil {
		if errors.Is(err, rlnc.ErrBadChecksum) || errors.Is(err, rlnc.ErrBadMagic) {
			f.stats.corrupt.Inc()
		} else {
			f.stats.malformed.Inc()
		}
		discard()
		return nil
	}
	if blk.Validate(f.hdr.params) != nil {
		f.stats.malformed.Inc()
		discard()
		return nil
	}
	if blk.SegmentID >= uint32(f.hdr.segments) {
		f.stats.badSegment.Inc()
		discard()
		return nil
	}
	if f.cfg.RecordTap != nil {
		f.cfg.RecordTap(&blk)
	}
	dec := f.decoders[blk.SegmentID]
	if dec == nil {
		var err error
		if dec, err = rlnc.NewDecoder(f.hdr.params); err != nil {
			return err
		}
		f.decoders[blk.SegmentID] = dec
	}
	if dec.Ready() {
		// Round-robin overshoot for an already-finished segment.
		return nil
	}
	var sp trace.Span
	if tr != 0 {
		sp = trace.Begin(f.traceNode(), "absorb", tr, round, int32(blk.SegmentID))
	}
	innovative, err := dec.AddBlock(&blk)
	sp.End()
	if err != nil {
		return err
	}
	if !innovative {
		f.stats.dependent.Inc()
	} else if dec.Ready() {
		f.ready++
		trace.Emit(trace.KindRank, f.traceNode(), "segment_ready", int32(blk.SegmentID), int64(dec.Rank()))
	}
	return nil
}

// sleepBackoff waits out the backoff before retry r (1-based), returning
// early with the context error if ctx ends mid-backoff. A pending BUSY
// retry-after hint floors the delay once and is then consumed.
func (f *Fetcher) sleepBackoff(ctx context.Context, retry int) error {
	d := backoffDelay(retry, f.cfg.BackoffBase, f.cfg.BackoffMax, f.cfg.Jitter, f.rng)
	if hint := f.busyHint; hint > 0 {
		f.busyHint = 0
		if hint > d {
			d = hint
		}
	}
	if d <= 0 {
		return ctx.Err()
	}
	defer stageFetchBackoff.Start().End()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay computes the delay before retry r (1-based): base doubled
// r−1 times, capped at max, then jittered uniformly over ±jitter·delay and
// re-capped. A non-positive base disables backoff entirely.
func backoffDelay(retry int, base, max time.Duration, jitter float64, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < retry; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		span := jitter * float64(d)
		d = time.Duration(float64(d) - span + 2*span*rng.Float64())
		if d < 0 {
			d = 0
		}
		if d > max {
			d = max
		}
	}
	return d
}

// Fetch-state blob: magic "XNCF" | u32 version | u32 entry count |
// per entry: u32 segment ID, u32 length, Decoder.MarshalBinary bytes |
// u32 CRC-32 (IEEE) over everything above.
const (
	stateMagic   = "XNCF"
	stateVersion = 1
)

// State serializes every segment decoder — partial and complete — so a
// later Fetcher (even in a new process) can resume this fetch's rank with
// WithResumeState. Not safe to call concurrently with Fetch.
func (f *Fetcher) State() ([]byte, error) {
	buf := make([]byte, 12, 64)
	copy(buf, stateMagic)
	binary.BigEndian.PutUint32(buf[4:], stateVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(len(f.decoders)))
	var entry [8]byte
	for id, dec := range f.decoders {
		body, err := dec.MarshalBinary()
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(entry[:4], id)
		binary.BigEndian.PutUint32(entry[4:], uint32(len(body)))
		buf = append(buf, entry[:]...)
		buf = append(buf, body...)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	return append(buf, crc[:]...), nil
}

// restoreState rebuilds the decoder map from a State blob. The header is
// not known yet, so cross-checks against the session happen at the first
// handshake (validateResumed).
func (f *Fetcher) restoreState(data []byte) error {
	if len(data) < 16 || string(data[:4]) != stateMagic {
		return fmt.Errorf("%w: bad magic or size", ErrBadResumeState)
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != stateVersion {
		return fmt.Errorf("%w: version %d", ErrBadResumeState, v)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return fmt.Errorf("%w: checksum", ErrBadResumeState)
	}
	count := int(binary.BigEndian.Uint32(data[8:]))
	decoders := make(map[uint32]*rlnc.Decoder, count)
	off := 12
	ready := 0
	for i := 0; i < count; i++ {
		if off+8 > len(body) {
			return fmt.Errorf("%w: truncated entry %d", ErrBadResumeState, i)
		}
		id := binary.BigEndian.Uint32(body[off:])
		n := int(binary.BigEndian.Uint32(body[off+4:]))
		off += 8
		if n < 0 || off+n > len(body) {
			return fmt.Errorf("%w: entry %d overruns", ErrBadResumeState, i)
		}
		dec := new(rlnc.Decoder)
		if err := dec.UnmarshalBinary(body[off : off+n]); err != nil {
			return fmt.Errorf("%w: segment %d: %v", ErrBadResumeState, id, err)
		}
		if _, dup := decoders[id]; dup {
			return fmt.Errorf("%w: duplicate segment %d", ErrBadResumeState, id)
		}
		decoders[id] = dec
		if dec.Ready() {
			ready++
		}
		off += n
	}
	if off != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadResumeState, len(body)-off)
	}
	f.decoders = decoders
	f.ready = ready
	return nil
}

// validateResumed cross-checks restored decoders against the first session
// header: resumed rank must belong to the object actually being served.
func (f *Fetcher) validateResumed() error {
	for id, dec := range f.decoders {
		if dec.Params() != f.hdr.params {
			return fmt.Errorf("%w: segment %d resumed with %v, server serves %v",
				ErrBadResumeState, id, dec.Params(), f.hdr.params)
		}
		if id >= uint32(f.hdr.segments) {
			return fmt.Errorf("%w: resumed segment %d out of range (%d segments)",
				ErrBadResumeState, id, f.hdr.segments)
		}
	}
	return nil
}
