package netio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// flakyServer accepts connections from l and serves the object, but hangs
// up every session after recordsPerSession records — a server that keeps
// crashing mid-stream. Session i's encoders are seeded with base+i so every
// session pushes fresh (innovative) combinations.
func flakyServer(t *testing.T, l *pipeListener, media []byte, p rlnc.Params, recordsPerSession int, inject func(session int, conn net.Conn) bool) {
	t.Helper()
	obj, err := rlnc.Split(media, p)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for session := 0; ; session++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			h := sessionHeader{params: p, segments: len(obj.Segments), length: int64(obj.Length)}
			if err := writeSessionHeader(conn, h); err != nil {
				conn.Close()
				continue
			}
			if inject != nil && inject(session, conn) {
				conn.Close()
				continue
			}
			rng := rand.New(rand.NewSource(int64(session) + 1000))
			encoders := make([]*rlnc.Encoder, len(obj.Segments))
			for i, seg := range obj.Segments {
				encoders[i] = rlnc.NewEncoder(seg, rng)
			}
			for r := 0; r < recordsPerSession; r++ {
				rec, err := frameRecord(encoders[r%len(encoders)].NextBlock(), nil)
				if err != nil {
					break
				}
				if _, err := conn.Write(rec); err != nil {
					break
				}
			}
			conn.Close()
		}
	}()
}

// TestFetcherSurvivesServerRestarts: a server that dies every few records
// must still be fully drained, with rank carried across every reconnect.
func TestFetcherSurvivesServerRestarts(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 3*p.SegmentSize()-37, 21)
	l := newPipeListener()
	defer l.Close()
	flakyServer(t, l, media, p, 7, nil) // 24 innovative blocks needed, 7 records per session

	type rankSnap struct {
		reconnect int
		total     int
	}
	var snaps []rankSnap
	prev := map[uint32]int{}
	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithBackoff(time.Millisecond, 4*time.Millisecond),
		WithBackoffSeed(1),
		WithReconnectHook(func(reconnect int, ranks map[uint32]int) {
			total := 0
			for id, r := range ranks {
				if r < prev[id] {
					panic(fmt.Sprintf("segment %d rank fell %d -> %d across reconnect", id, prev[id], r))
				}
				prev[id] = r
				total += r
			}
			snaps = append(snaps, rankSnap{reconnect, total})
		}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs after restarts")
	}
	if res.Stats.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3 (server dies every 7 records)", res.Stats.Reconnects)
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("no rank was carried across reconnects")
	}
	if len(snaps) != res.Stats.Reconnects {
		t.Fatalf("hook fired %d times, reconnects = %d", len(snaps), res.Stats.Reconnects)
	}
	// Rank carried into later reconnects must be positive: nothing restarts
	// from scratch.
	if last := snaps[len(snaps)-1]; last.total == 0 {
		t.Fatal("final reconnect carried zero rank")
	}
}

// TestFetcherBudgetReturnsPartialProgress: exhausting the attempt budget
// must surface the decoded-so-far segments and per-segment ranks alongside
// the error, not discard them.
func TestFetcherBudgetReturnsPartialProgress(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 2*p.SegmentSize(), 22)
	l := newPipeListener()
	defer l.Close()
	// Every session serves only segment 0: segment 1 can never finish.
	flakyServer(t, l, media, p, 0, func(session int, conn net.Conn) bool {
		obj, _ := rlnc.Split(media, p)
		enc := rlnc.NewEncoder(obj.Segments[0], rand.New(rand.NewSource(int64(session))))
		for i := 0; i < p.BlockCount+2; i++ {
			rec, _ := frameRecord(enc.NextBlock(), nil)
			if _, err := conn.Write(rec); err != nil {
				return true
			}
		}
		return true
	})

	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithMaxAttempts(3),
		WithBackoff(time.Millisecond, time.Millisecond),
	)
	res, err := f.Fetch(context.Background())
	if !errors.Is(err, ErrFetchBudget) {
		t.Fatalf("err = %v, want ErrFetchBudget", err)
	}
	if res == nil || res.Stats == nil {
		t.Fatal("no result/stats returned with the error")
	}
	if res.Payload != nil {
		t.Fatal("partial fetch returned a payload")
	}
	if res.Stats.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Stats.Attempts)
	}
	if res.Ranks[0] != p.BlockCount {
		t.Fatalf("segment 0 rank = %d, want full %d", res.Ranks[0], p.BlockCount)
	}
	seg, ok := res.Segments[0]
	if !ok {
		t.Fatal("completed segment 0 missing from partial result")
	}
	if !bytes.Equal(seg.Data(), media[:p.SegmentSize()]) {
		t.Fatal("partial result segment 0 payload differs")
	}
}

// TestFetcherResumeState: a failed fetch's serialized state seeds a new
// Fetcher — in principle in a new process — which finishes without
// re-earning the saved rank.
func TestFetcherResumeState(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, p.SegmentSize(), 23)
	l := newPipeListener()
	defer l.Close()
	// Sessions deliver 5 records: never enough for rank 8 in one attempt.
	flakyServer(t, l, media, p, 5, nil)

	first := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithMaxAttempts(1),
	)
	res, err := first.Fetch(context.Background())
	if err == nil {
		t.Fatal("single truncated session unexpectedly completed")
	}
	if got := res.Ranks[0]; got != 5 {
		t.Fatalf("rank after one 5-record session = %d, want 5", got)
	}
	state, err := first.State()
	if err != nil {
		t.Fatal(err)
	}

	second := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithResumeState(state),
		WithBackoff(time.Millisecond, time.Millisecond),
	)
	res2, err := second.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res2.Payload, media) {
		t.Fatal("resumed fetch payload differs")
	}
	// 3 missing ranks, 5 records per session: one session must do it, and
	// the resumed fetch must not have re-downloaded the first 5 ranks.
	if res2.Stats.Records > 5 {
		t.Fatalf("resumed fetch consumed %d records, want <= 5 (saved rank was re-earned?)", res2.Stats.Records)
	}

	// Damaged state is rejected up front, with the error.
	bad := append([]byte(nil), state...)
	bad[len(bad)/2] ^= 1
	res3, err := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithResumeState(bad),
	).Fetch(context.Background())
	if !errors.Is(err, ErrBadResumeState) {
		t.Fatalf("err = %v, want ErrBadResumeState", err)
	}
	if res3 == nil || res3.Stats == nil {
		t.Fatal("no stats with resume-state error")
	}
}

// TestFetcherRejectClassification: CRC-valid records with hostile segment
// IDs must not allocate decoders or stall convergence, and shape-vs-noise
// rejects land in separate counters.
func TestFetcherRejectClassification(t *testing.T) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 32}
	media := testMedia(t, p.SegmentSize(), 24)
	l := newPipeListener()
	defer l.Close()
	flakyServer(t, l, media, p, 2*p.BlockCount+4, func(session int, conn net.Conn) bool {
		// Session 0 leads with hostile-but-checksummed records: an
		// out-of-range segment ID, and a wrong-shape block whose wire size
		// matches the session's records (n+1, k-1).
		if session != 0 {
			return false
		}
		hostile := &rlnc.CodedBlock{
			SegmentID: 4_000_000,
			Coeffs:    make([]byte, p.BlockCount),
			Payload:   make([]byte, p.BlockSize),
		}
		hostile.Coeffs[0] = 1
		rec, err := frameRecord(hostile, nil)
		if err != nil || writeAll(conn, rec) != nil {
			return true
		}
		shape := &rlnc.CodedBlock{
			SegmentID: 0,
			Coeffs:    make([]byte, p.BlockCount+1),
			Payload:   make([]byte, p.BlockSize-1),
		}
		shape.Coeffs[0] = 1
		rec, err = frameRecord(shape, nil)
		if err != nil || writeAll(conn, rec) != nil {
			return true
		}
		return false // continue with the honest stream
	})

	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithBackoff(time.Millisecond, time.Millisecond),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs")
	}
	if res.Stats.BadSegment != 1 {
		t.Fatalf("bad-segment records = %d, want 1", res.Stats.BadSegment)
	}
	if res.Stats.Malformed != 1 {
		t.Fatalf("malformed records = %d, want 1", res.Stats.Malformed)
	}
	if res.Stats.Corrupt != 0 {
		t.Fatalf("corrupt = %d on an uncorrupted link", res.Stats.Corrupt)
	}
	if _, leaked := res.Ranks[4_000_000]; leaked {
		t.Fatal("hostile segment ID allocated a decoder")
	}
	if res.Stats.BytesDiscarded == 0 {
		t.Fatal("rejected records not counted as discarded bytes")
	}
}

func writeAll(c net.Conn, b []byte) error {
	_, err := c.Write(b)
	return err
}

// TestFetcherHeaderMismatch: a reconnect answered with a different object
// is fatal — accumulated rank cannot be extended by a different stream.
func TestFetcherHeaderMismatch(t *testing.T) {
	l := newPipeListener()
	defer l.Close()
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			h := sessionHeader{params: rlnc.Params{BlockCount: 4, BlockSize: 64}, segments: 1, length: 256}
			if i > 0 {
				h.segments = 2
				h.length = 512
			}
			writeSessionHeader(conn, h)
			conn.Close() // truncate: force a reconnect
		}
	}()
	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithMaxAttempts(4),
		WithBackoff(time.Millisecond, time.Millisecond),
	)
	res, err := f.Fetch(context.Background())
	if !errors.Is(err, ErrHeaderMismatch) {
		t.Fatalf("err = %v, want ErrHeaderMismatch", err)
	}
	if res.Stats.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (mismatch is fatal, not retried)", res.Stats.Attempts)
	}
}

// TestBackoffSchedule is the table-driven contract of backoffDelay:
// doubling, caps, jitter bounds, and degenerate configurations.
func TestBackoffSchedule(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 80 * time.Millisecond
	cases := []struct {
		name   string
		retry  int
		base   time.Duration
		max    time.Duration
		jitter float64
		lo, hi time.Duration
	}{
		{"first retry", 1, base, cap, 0, base, base},
		{"doubles", 2, base, cap, 0, 2 * base, 2 * base},
		{"doubles again", 3, base, cap, 0, 4 * base, 4 * base},
		{"hits cap", 4, base, cap, 0, cap, cap},
		{"stays capped", 20, base, cap, 0, cap, cap},
		{"huge retry no overflow", 500, base, cap, 0, cap, cap},
		{"jitter half", 2, base, cap, 0.5, base, 3 * base},
		{"jitter full", 1, base, cap, 1, 0, 2 * base},
		{"jitter capped", 20, base, cap, 0.5, cap / 2, cap},
		{"zero base disables", 5, 0, cap, 0.5, 0, 0},
		{"cap below base", 3, base, base / 2, 0, base, base},
	}
	rng := rand.New(rand.NewSource(77))
	for _, tc := range cases {
		for i := 0; i < 200; i++ {
			d := backoffDelay(tc.retry, tc.base, tc.max, tc.jitter, rng)
			if d < tc.lo || d > tc.hi {
				t.Fatalf("%s: delay %v outside [%v, %v]", tc.name, d, tc.lo, tc.hi)
			}
		}
	}
}

// TestBackoffCtxCancel: cancelling the context mid-backoff unblocks the
// fetch immediately with the context error and the partial result.
func TestBackoffCtxCancel(t *testing.T) {
	dialErr := errors.New("refused")
	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return nil, dialErr },
		WithBackoff(time.Hour, time.Hour), // without cancellation this never returns
	)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		res, err := f.Fetch(ctx)
		if res == nil || res.Stats == nil {
			err = errors.New("no result with cancellation")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not unblock on cancel during backoff")
	}
}

// TestFetcherDialBudget: dial failures consume attempts and surface both
// the budget sentinel and the dial error.
func TestFetcherDialBudget(t *testing.T) {
	dialErr := errors.New("connection refused")
	f := NewFetcher(
		func(context.Context) (net.Conn, error) { return nil, dialErr },
		WithMaxAttempts(3),
		WithBackoff(time.Microsecond, time.Microsecond),
	)
	res, err := f.Fetch(context.Background())
	if !errors.Is(err, ErrFetchBudget) || !errors.Is(err, dialErr) {
		t.Fatalf("err = %v, want ErrFetchBudget wrapping the dial error", err)
	}
	if res.Stats.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Stats.Attempts)
	}
}
