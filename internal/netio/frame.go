package netio

import (
	"sync"
	"sync/atomic"
)

// frameRef is one framed record on its way through the fan-out: the pump
// frames a record once, wraps it in a frameRef holding one reference, and
// offers the same buffer to every session in the shard — zero-copy fan-out.
// Each successful enqueue retains the frame; writers (and teardown drains)
// release after the wire write or the shed. When the count hits zero the
// buffer returns to the server's frame pool, so a steady-state server
// recycles its frame storage instead of churning the GC at queue depth ×
// session count.
type frameRef struct {
	buf    []byte
	refs   atomic.Int32
	pooled bool // buf came from pool and may be recycled
	pool   *framePool

	// Trace attribution, stamped by a traced pump: the round span that
	// encoded this record (written as the wire prelude) and its segment.
	round uint64
	seg   int32
}

func (f *frameRef) retain() { f.refs.Add(1) }

// release drops one reference, recycling the frame at zero. Releasing below
// zero is a fan-out accounting bug and panics rather than corrupting a
// recycled buffer silently.
func (f *frameRef) release() {
	switch n := f.refs.Add(-1); {
	case n == 0:
		f.pool.recycle(f)
	case n < 0:
		panic("netio: frame released more often than retained")
	}
}

// framePool recycles frame buffers and their frameRef headers. Buffers are a
// single size class: a recycled buffer too small for the next record is
// simply dropped for the GC (systematic sessions mix compact XNC2 records
// with larger dense-tail records, so capacities converge to the largest).
type framePool struct {
	bufs   sync.Pool // *[]byte, len reset, cap preserved
	frames sync.Pool // *frameRef, cleared
}

// allocBuf returns a length-n buffer, reusing a recycled one when its
// capacity suffices. It is the allocator handed to pooled record sources.
func (p *framePool) allocBuf(n int) []byte {
	if v := p.bufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// wrap adopts buf as a new single-reference frame. pooled marks whether buf
// came from allocBuf and may be recycled on release.
func (p *framePool) wrap(buf []byte, pooled bool) *frameRef {
	var fr *frameRef
	if v := p.frames.Get(); v != nil {
		fr = v.(*frameRef)
	} else {
		fr = &frameRef{}
	}
	fr.buf = buf
	fr.pooled = pooled
	fr.pool = p
	fr.round = 0
	fr.seg = -1
	fr.refs.Store(1)
	return fr
}

func (p *framePool) recycle(f *frameRef) {
	if f.pooled {
		buf := f.buf[:0]
		p.bufs.Put(&buf)
	}
	f.buf = nil
	f.pool = nil
	p.frames.Put(f)
}

// frameQueue is a session's bounded send queue: a mutex-guarded ring of
// frame references with a doorbell for the writer. One lock covers an entire
// batched offer or pop, which is what makes the amortized fan-out rung
// cheap — the per-record channel send of the original pump becomes one
// critical section per session per round.
type frameQueue struct {
	mu       sync.Mutex
	ring     []*frameRef
	head     int // index of the oldest queued frame
	n        int // queued frames
	draining bool

	bell chan struct{} // cap 1: queue went non-empty
}

func newFrameQueue(depth int) *frameQueue {
	return &frameQueue{
		ring: make([]*frameRef, depth),
		bell: make(chan struct{}, 1),
	}
}

// offerBatch enqueues as many of frs as fit, in order, retaining each
// enqueued frame, and returns how many were accepted. A draining queue
// accepts nothing. The caller accounts the remainder as shed.
func (q *frameQueue) offerBatch(frs []*frameRef) int {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		return 0
	}
	k := min(len(q.ring)-q.n, len(frs))
	for i := 0; i < k; i++ {
		frs[i].retain()
		q.ring[(q.head+q.n+i)%len(q.ring)] = frs[i]
	}
	q.n += k
	q.mu.Unlock()
	if k > 0 {
		select {
		case q.bell <- struct{}{}:
		default:
		}
	}
	return k
}

// popBatch moves up to len(dst) frames into dst and returns the count. The
// caller owns the references it receives.
func (q *frameQueue) popBatch(dst []*frameRef) int {
	q.mu.Lock()
	k := min(q.n, len(dst))
	for i := 0; i < k; i++ {
		idx := (q.head + i) % len(q.ring)
		dst[i] = q.ring[idx]
		q.ring[idx] = nil
	}
	q.head = (q.head + k) % len(q.ring)
	q.n -= k
	q.mu.Unlock()
	return k
}

// drain marks the queue closed to offers and returns every still-queued
// frame; the caller sheds and releases them, so offered == sent + shed holds
// exactly at teardown.
func (q *frameQueue) drain() []*frameRef {
	q.mu.Lock()
	q.draining = true
	rest := make([]*frameRef, 0, q.n)
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) % len(q.ring)
		rest = append(rest, q.ring[idx])
		q.ring[idx] = nil
	}
	q.head, q.n = 0, 0
	q.mu.Unlock()
	return rest
}

func (q *frameQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

func (q *frameQueue) cap() int { return len(q.ring) }
