package netio

import (
	"testing"
)

// TestFrameQueueOfferPopDrain pins the batched queue semantics the amortized
// fan-out relies on: bounded offers in order, caller-owned pops, and a drain
// that seals the queue and returns the residue exactly once.
func TestFrameQueueOfferPopDrain(t *testing.T) {
	pool := &framePool{}
	q := newFrameQueue(4)
	if q.cap() != 4 {
		t.Fatalf("cap = %d, want 4", q.cap())
	}
	frames := make([]*frameRef, 6)
	for i := range frames {
		frames[i] = pool.wrap([]byte{byte(i)}, true)
	}
	if k := q.offerBatch(frames); k != 4 {
		t.Fatalf("offerBatch accepted %d of 6 into depth 4, want 4", k)
	}
	if q.len() != 4 {
		t.Fatalf("len = %d after full offer, want 4", q.len())
	}

	dst := make([]*frameRef, 2)
	if k := q.popBatch(dst); k != 2 {
		t.Fatalf("popBatch = %d, want 2", k)
	}
	for i, fr := range dst[:2] {
		if fr.buf[0] != byte(i) {
			t.Fatalf("pop %d returned frame %d: FIFO order broken", i, fr.buf[0])
		}
		fr.release() // writer's reference
	}

	// Two slots free again; offering the two rejects from before now fits.
	if k := q.offerBatch(frames[4:]); k != 2 {
		t.Fatalf("re-offer accepted %d, want 2", k)
	}

	rest := q.drain()
	if len(rest) != 4 {
		t.Fatalf("drain returned %d frames, want 4", len(rest))
	}
	for _, fr := range rest {
		fr.release()
	}
	if q.offerBatch(frames[:1]) != 0 {
		t.Fatal("a drained queue accepted an offer")
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after drain, want 0", q.len())
	}

	// Drop the pump's own references; every frame must round-trip the pool
	// without a refcount underflow.
	for _, fr := range frames {
		fr.release()
	}
}

// TestFramePoolRecycles: a released pooled frame's storage is reused by the
// next allocation of equal-or-smaller size, and wrap hands back cleared
// headers.
func TestFramePoolRecycles(t *testing.T) {
	pool := &framePool{}
	buf := pool.allocBuf(64)
	buf[0] = 0xEE
	fr := pool.wrap(buf, true)
	fr.release()

	again := pool.allocBuf(16)
	if cap(again) < 64 {
		t.Fatalf("recycled capacity %d, want the original 64", cap(again))
	}
	if len(again) != 16 {
		t.Fatalf("recycled length %d, want requested 16", len(again))
	}

	// A too-small recycled buffer is dropped, never resliced past cap.
	small := pool.wrap(pool.allocBuf(8), true)
	small.release()
	big := pool.allocBuf(1 << 16)
	if len(big) != 1<<16 {
		t.Fatalf("oversized alloc length %d", len(big))
	}
}

// TestFrameReleaseUnderflowPanics: releasing more often than retaining is a
// fan-out accounting bug and must fail loudly, not corrupt a recycled buffer.
func TestFrameReleaseUnderflowPanics(t *testing.T) {
	pool := &framePool{}
	fr := pool.wrap(make([]byte, 8), false)
	fr.retain()
	fr.release()
	fr.release() // refcount hits zero: frame recycled
	defer func() {
		if recover() == nil {
			t.Fatal("release below zero did not panic")
		}
	}()
	fr.release()
}
