package netio

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// fuzzSession builds a well-formed session stream — header plus records —
// that the mutator can then damage byte by byte.
func fuzzSession(f *testing.F, mutate func(stream []byte) []byte) []byte {
	f.Helper()
	p := rlnc.Params{BlockCount: 4, BlockSize: 16}
	media := make([]byte, p.SegmentSize())
	rand.New(rand.NewSource(3)).Read(media)
	obj, err := rlnc.Split(media, p)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	h := sessionHeader{params: p, segments: 1, length: int64(len(media))}
	if err := writeSessionHeader(&buf, h); err != nil {
		f.Fatal(err)
	}
	enc := rlnc.NewEncoder(obj.Segments[0], rand.New(rand.NewSource(4)))
	for i := 0; i < p.BlockCount+2; i++ {
		rec, err := frameRecord(enc.NextBlock(), nil)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(rec)
	}
	stream := buf.Bytes()
	if mutate != nil {
		stream = mutate(append([]byte(nil), stream...))
	}
	return stream
}

// FuzzFetchRecords feeds arbitrary bytes to the client record loop through
// a real net.Pipe. Whatever the stream claims — hostile length prefixes,
// truncated records, out-of-range segment IDs, corrupted handshakes — the
// client must neither panic nor over-allocate, must always produce stats,
// and must only report success with an intact payload.
func FuzzFetchRecords(f *testing.F) {
	// A complete healthy session (the only seed that decodes), then
	// targeted damage to each protocol layer.
	f.Add(fuzzSession(f, nil))
	f.Add(fuzzSession(f, func(s []byte) []byte { // adversarial length prefix
		binary.BigEndian.PutUint32(s[protoHeaderLen:], 0xFFFFFFF0)
		return s
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // truncated final record
		return s[:len(s)-7]
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // hostile segment ID, CRC refreshed
		size := int(binary.BigEndian.Uint32(s[protoHeaderLen:]))
		body := s[protoHeaderLen+4 : protoHeaderLen+4+size]
		binary.BigEndian.PutUint32(body[4:], 1<<30)
		binary.BigEndian.PutUint32(body[size-4:], crc32.ChecksumIEEE(body[:size-4]))
		return s
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // bit damage mid-record
		s[protoHeaderLen+20] ^= 0x40
		return s
	}))
	f.Add([]byte{})
	f.Add([]byte(protoMagic))
	f.Add(bytes.Repeat([]byte{0xFF}, protoHeaderLen+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		go func() {
			b.Write(data)
			b.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		payload, stats, err := Fetch(ctx, a)
		if stats == nil {
			t.Fatal("fetch returned nil stats")
		}
		if err == nil && payload == nil {
			t.Fatal("fetch reported success without a payload")
		}
		if err != nil && payload != nil {
			t.Fatal("fetch reported failure with a payload")
		}
		if rejected := stats.Corrupt + stats.Malformed + stats.BadSegment; rejected > stats.Records {
			t.Fatalf("rejected %d records but only %d arrived", rejected, stats.Records)
		}
	})
}
