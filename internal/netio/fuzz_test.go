package netio

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// fuzzSession builds a well-formed session stream — header plus records —
// that the mutator can then damage byte by byte.
func fuzzSession(f *testing.F, mutate func(stream []byte) []byte) []byte {
	f.Helper()
	p := rlnc.Params{BlockCount: 4, BlockSize: 16}
	media := make([]byte, p.SegmentSize())
	rand.New(rand.NewSource(3)).Read(media)
	obj, err := rlnc.Split(media, p)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	h := sessionHeader{params: p, segments: 1, length: int64(len(media))}
	if err := writeSessionHeader(&buf, h); err != nil {
		f.Fatal(err)
	}
	enc := rlnc.NewEncoder(obj.Segments[0], rand.New(rand.NewSource(4)))
	for i := 0; i < p.BlockCount+2; i++ {
		rec, err := frameRecord(enc.NextBlock(), nil)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(rec)
	}
	stream := buf.Bytes()
	if mutate != nil {
		stream = mutate(append([]byte(nil), stream...))
	}
	return stream
}

// FuzzFetchRecords feeds arbitrary bytes to the client record loop through
// a real net.Pipe. Whatever the stream claims — hostile length prefixes,
// truncated records, out-of-range segment IDs, corrupted handshakes — the
// client must neither panic nor over-allocate, must always produce stats,
// and must only report success with an intact payload.
func FuzzFetchRecords(f *testing.F) {
	// A complete healthy session (the only seed that decodes), then
	// targeted damage to each protocol layer.
	f.Add(fuzzSession(f, nil))
	f.Add(fuzzSession(f, func(s []byte) []byte { // adversarial length prefix
		binary.BigEndian.PutUint32(s[protoHeaderLen:], 0xFFFFFFF0)
		return s
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // truncated final record
		return s[:len(s)-7]
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // hostile segment ID, CRC refreshed
		size := int(binary.BigEndian.Uint32(s[protoHeaderLen:]))
		body := s[protoHeaderLen+4 : protoHeaderLen+4+size]
		binary.BigEndian.PutUint32(body[4:], 1<<30)
		binary.BigEndian.PutUint32(body[size-4:], crc32.ChecksumIEEE(body[:size-4]))
		return s
	}))
	f.Add(fuzzSession(f, func(s []byte) []byte { // bit damage mid-record
		s[protoHeaderLen+20] ^= 0x40
		return s
	}))
	f.Add([]byte{})
	f.Add([]byte(protoMagic))
	f.Add(bytes.Repeat([]byte{0xFF}, protoHeaderLen+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		go func() {
			b.Write(data)
			b.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		payload, stats, err := Fetch(ctx, a)
		if stats == nil {
			t.Fatal("fetch returned nil stats")
		}
		if err == nil && payload == nil {
			t.Fatal("fetch reported success without a payload")
		}
		if err != nil && payload != nil {
			t.Fatal("fetch reported failure with a payload")
		}
		if rejected := stats.Corrupt + stats.Malformed + stats.BadSegment; rejected > stats.Records {
			t.Fatalf("rejected %d records but only %d arrived", rejected, stats.Records)
		}
	})
}

// fuzzDecision marshals a decision record for seeding, optionally mutated.
func fuzzDecision(f *testing.F, d admissionDecision, mutate func([]byte) []byte) []byte {
	f.Helper()
	rec, err := appendDecision(nil, d)
	if err != nil {
		f.Fatal(err)
	}
	if mutate != nil {
		rec = mutate(rec)
	}
	return rec
}

// FuzzDecisionRecord feeds arbitrary bytes to the handshake dispatcher.
// Whatever arrives — forged decision records, flipped CRCs, unknown codes,
// truncated streams, or decision-then-header sequences — readHandshake must
// never panic, and any decision it does accept must itself be valid and
// re-marshalable: the parser admits exactly what a real server could write.
func FuzzDecisionRecord(f *testing.F) {
	f.Add(fuzzDecision(f, admissionDecision{code: admissionBusy, retryAfter: 250 * time.Millisecond}, nil))
	f.Add(fuzzDecision(f, admissionDecision{code: admissionRedirect, addr: "127.0.0.1:9999"}, nil))
	f.Add(fuzzDecision(f, admissionDecision{code: admissionBusy}, func(rec []byte) []byte {
		rec[len(rec)-1] ^= 0x01 // flipped CRC bit
		return rec
	}))
	f.Add(fuzzDecision(f, admissionDecision{code: admissionBusy}, func(rec []byte) []byte {
		rec[4] = 7 // unknown code, CRC refreshed
		binary.BigEndian.PutUint32(rec[len(rec)-4:], crc32.ChecksumIEEE(rec[:len(rec)-4]))
		return rec
	}))
	f.Add(fuzzDecision(f, admissionDecision{code: admissionRedirect, addr: "x"}, func(rec []byte) []byte {
		return rec[:6] // truncated mid-record
	}))
	// Explicit ACCEPT followed by a full session header, and a bare header.
	var accept bytes.Buffer
	hdr := sessionHeader{params: rlnc.Params{BlockCount: 4, BlockSize: 16}, segments: 1, length: 64}
	if err := writeDecision(&accept, admissionDecision{code: admissionAccept}); err != nil {
		f.Fatal(err)
	}
	if err := writeSessionHeader(&accept, hdr); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), accept.Bytes()...))
	var bare bytes.Buffer
	if err := writeSessionHeader(&bare, hdr); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), bare.Bytes()...))
	f.Add([]byte(decisionMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		hs, err := readHandshake(bytes.NewReader(data))
		if err != nil {
			return
		}
		if hs.dec != nil {
			if verr := hs.dec.validate(); verr != nil {
				t.Fatalf("accepted invalid decision %+v: %v", hs.dec, verr)
			}
			if _, merr := appendDecision(nil, *hs.dec); merr != nil {
				t.Fatalf("accepted unmarshalable decision %+v: %v", hs.dec, merr)
			}
		}
		if hs.dec == nil || hs.dec.code == admissionAccept {
			// ACCEPT paths must have produced a header a client could serve.
			if verr := hs.hdr.params.Validate(); verr != nil {
				t.Fatalf("accepted handshake with bad params: %v", verr)
			}
		}
	})
}
