package netio

import (
	"sync/atomic"
	"time"
)

// Counters is a lock-free set of serving counters. The session server
// (server.go) increments one per Server, and stream.Server routes its modeled
// serving totals through the same type, so every serving surface in the
// repository reports traffic in one vocabulary. All methods are safe for
// concurrent use; reads through View are monotonic but not mutually atomic
// (a snapshot taken mid-increment can be off by the blocks in flight).
type Counters struct {
	blocksEncoded atomic.Int64
	blocksOffered atomic.Int64
	blocksSent    atomic.Int64
	blocksShed    atomic.Int64
	bytesSent     atomic.Int64
	encodeStallNs atomic.Int64
	maxStallNs    atomic.Int64
}

// AddEncoded records n freshly encoded coded blocks.
func (c *Counters) AddEncoded(n int64) { c.blocksEncoded.Add(n) }

// AddOffered records n blocks offered to a delivery queue.
func (c *Counters) AddOffered(n int64) { c.blocksOffered.Add(n) }

// AddSent records n blocks (bytes wire bytes) fully written to a peer.
func (c *Counters) AddSent(n, bytes int64) {
	c.blocksSent.Add(n)
	c.bytesSent.Add(bytes)
}

// AddShed records n blocks dropped instead of delivered — a full queue, a
// failed write, or a queue residue at session teardown. Shedding is the
// backpressure mechanism, not an error: RLNC streams lose nothing but time
// when blocks vanish.
func (c *Counters) AddShed(n int64) { c.blocksShed.Add(n) }

// AddEncodeStall records one interval the encoder pump spent blocked because
// no session could accept a block.
func (c *Counters) AddEncodeStall(d time.Duration) {
	ns := d.Nanoseconds()
	c.encodeStallNs.Add(ns)
	for {
		cur := c.maxStallNs.Load()
		if ns <= cur || c.maxStallNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// CounterView is a point-in-time copy of a Counters.
type CounterView struct {
	BlocksEncoded  int64
	BlocksOffered  int64
	BlocksSent     int64
	BlocksShed     int64
	BytesSent      int64
	EncodeStall    time.Duration
	MaxEncodeStall time.Duration
}

// View copies the counters.
func (c *Counters) View() CounterView {
	return CounterView{
		BlocksEncoded:  c.blocksEncoded.Load(),
		BlocksOffered:  c.blocksOffered.Load(),
		BlocksSent:     c.blocksSent.Load(),
		BlocksShed:     c.blocksShed.Load(),
		BytesSent:      c.bytesSent.Load(),
		EncodeStall:    time.Duration(c.encodeStallNs.Load()),
		MaxEncodeStall: time.Duration(c.maxStallNs.Load()),
	}
}

// SessionSnapshot describes one live session.
type SessionSnapshot struct {
	ID       int64
	Addr     string
	QueueLen int
	QueueCap int
	Offered  int64
	Sent     int64
	Shed     int64
	Bytes    int64
	Duration time.Duration
}

// Snapshot is the server-wide observability surface: aggregate counters plus
// one entry per live session. Counters for finished sessions remain in the
// aggregates. Once every session has ended, Offered == Sent + Shed holds
// exactly — each offered block was either fully written or explicitly shed
// (full queue, failed write, or teardown residue) — which the serving tests
// assert block-for-block.
type Snapshot struct {
	Sessions         int
	SessionsTotal    int64
	SessionsRejected int64
	SessionSeconds   float64 // summed wall-clock duration of finished sessions

	CounterView

	PerSession []SessionSnapshot
}
