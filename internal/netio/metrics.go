package netio

import (
	"time"

	"extremenc/internal/obs"
)

// Counters is a lock-free set of serving counters backed by obs metric
// values. The session server (server.go) increments one per Server, and
// stream.Server routes its modeled serving totals through the same type, so
// every serving surface in the repository reports traffic in one vocabulary.
// Register attaches the counters to an obs.Registry for scraping; the typed
// View stays a thin read over the same storage either way. All methods are
// safe for concurrent use; reads through View are monotonic but not mutually
// atomic (a snapshot taken mid-increment can be off by the blocks in
// flight).
type Counters struct {
	blocksEncoded obs.Counter
	blocksOffered obs.Counter
	blocksSent    obs.Counter
	blocksShed    obs.Counter
	bytesSent     obs.Counter
	encodeStallNs obs.Counter
	maxStallNs    obs.Gauge
}

// Register attaches every counter to reg under prefix (e.g. "netio" yields
// "netio.blocks_sent"). The counters work identically unregistered;
// registration only adds them to the exposition. It fails if the names are
// already taken — each Counters instance needs its own registry or prefix.
func (c *Counters) Register(reg *obs.Registry, prefix string) error {
	for _, m := range []struct {
		name, help string
		c          *obs.Counter
	}{
		{"blocks_encoded", "coded blocks produced by the encoder", &c.blocksEncoded},
		{"blocks_offered", "blocks offered to delivery queues", &c.blocksOffered},
		{"blocks_sent", "blocks fully written to peers", &c.blocksSent},
		{"blocks_shed", "blocks dropped by backpressure, failed writes, or teardown", &c.blocksShed},
		{"bytes_sent", "wire bytes fully written to peers", &c.bytesSent},
		{"encode_stall_ns", "total nanoseconds the encoder pump spent blocked", &c.encodeStallNs},
	} {
		if err := reg.RegisterCounter(prefix+"."+m.name, m.help, m.c); err != nil {
			return err
		}
	}
	return reg.RegisterGauge(prefix+".encode_stall_max_ns",
		"longest single encoder-pump stall in nanoseconds", &c.maxStallNs)
}

// AddEncoded records n freshly encoded coded blocks.
func (c *Counters) AddEncoded(n int64) { c.blocksEncoded.Add(n) }

// AddOffered records n blocks offered to a delivery queue.
func (c *Counters) AddOffered(n int64) { c.blocksOffered.Add(n) }

// AddSent records n blocks (bytes wire bytes) fully written to a peer.
func (c *Counters) AddSent(n, bytes int64) {
	c.blocksSent.Add(n)
	c.bytesSent.Add(bytes)
}

// AddShed records n blocks dropped instead of delivered — a full queue, a
// failed write, or a queue residue at session teardown. Shedding is the
// backpressure mechanism, not an error: RLNC streams lose nothing but time
// when blocks vanish.
func (c *Counters) AddShed(n int64) { c.blocksShed.Add(n) }

// AddEncodeStall records one interval the encoder pump spent blocked because
// no session could accept a block.
func (c *Counters) AddEncodeStall(d time.Duration) {
	ns := d.Nanoseconds()
	c.encodeStallNs.Add(ns)
	c.maxStallNs.SetMax(ns)
}

// CounterView is a point-in-time copy of a Counters.
type CounterView struct {
	BlocksEncoded  int64
	BlocksOffered  int64
	BlocksSent     int64
	BlocksShed     int64
	BytesSent      int64
	EncodeStall    time.Duration
	MaxEncodeStall time.Duration
}

// View copies the counters.
func (c *Counters) View() CounterView {
	return CounterView{
		BlocksEncoded:  c.blocksEncoded.Load(),
		BlocksOffered:  c.blocksOffered.Load(),
		BlocksSent:     c.blocksSent.Load(),
		BlocksShed:     c.blocksShed.Load(),
		BytesSent:      c.bytesSent.Load(),
		EncodeStall:    time.Duration(c.encodeStallNs.Load()),
		MaxEncodeStall: time.Duration(c.maxStallNs.Load()),
	}
}

// Consistent reports whether the offered-block ledger balances:
// Offered == Sent + Shed.
//
// This invariant is only guaranteed once every session has ended (after
// Server.Shutdown, or once Serve returns and the sessions drain): each
// offered block is then either fully written or explicitly shed. A view
// taken while sessions are live may see offered blocks still sitting in
// queues — neither sent nor shed yet — so Consistent can legitimately be
// false mid-flight; live snapshots should assert the weaker
// Offered >= Sent + Shed instead. The serving tests use this helper rather
// than re-deriving the equality.
func (v CounterView) Consistent() bool {
	return v.BlocksOffered == v.BlocksSent+v.BlocksShed
}

// SessionSnapshot describes one live session.
type SessionSnapshot struct {
	ID       int64
	Shard    int // encoder-pump shard feeding this session
	Addr     string
	QueueLen int
	QueueCap int
	Offered  int64
	Sent     int64
	Shed     int64
	Bytes    int64
	Duration time.Duration
}

// ShardSnapshot is one encoder-pump shard's slice of the traffic ledger:
// its live session count and its own CounterView. Summed over every shard,
// the counter fields equal the aggregate CounterView of the Snapshot they
// arrived in (modulo in-flight increments when taken live), and the
// offered == sent + shed ledger holds per shard after teardown exactly as
// it does in aggregate.
type ShardSnapshot struct {
	Shard    int
	Sessions int
	CounterView
}

// SnapshotVersion is the schema version of the Snapshot struct. Version 2
// added the version field itself, the per-shard ledger (Shards), and
// SessionSnapshot.Shard. Version 3 added the graceful-degradation surface:
// admission-decision counters, the brownout rung and transition count, and
// the draining flag.
const SnapshotVersion = 3

// Snapshot is the server-wide observability surface: aggregate counters,
// each pump shard's slice of them, and one entry per live session. Counters
// for finished sessions remain in the aggregates. Once every session has
// ended, CounterView.Consistent holds exactly — each offered block was
// either fully written or explicitly shed (full queue, failed write, or
// teardown residue) — per shard and in aggregate, which the serving tests
// assert block-for-block; while sessions are live, queued blocks make the
// ledger lag and only Offered >= Sent + Shed is guaranteed.
type Snapshot struct {
	Version          int      // SnapshotVersion of the producing server
	Mode             WireMode // session coding discipline declared in handshakes
	Sessions         int
	SessionsTotal    int64
	SessionsRejected int64
	SessionSeconds   float64 // summed wall-clock duration of finished sessions

	// Graceful-degradation surface (version 3): structured rejections
	// written to new connections, the brownout ladder position, and whether
	// a Drain is in progress.
	AdmissionBusy       int64
	AdmissionRedirected int64
	BrownoutRung        int
	BrownoutTransitions int64
	Draining            bool

	CounterView

	Shards     []ShardSnapshot
	PerSession []SessionSnapshot
}
