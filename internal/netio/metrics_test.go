package netio

import (
	"strings"
	"testing"

	"extremenc/internal/obs"
)

// TestCounterViewConsistent pins the documented lifecycle of the ledger
// invariant: it holds trivially at rest, can legitimately break while
// offered blocks sit in queues, and must hold again once every block has
// been resolved to sent or shed.
func TestCounterViewConsistent(t *testing.T) {
	var c Counters
	if !c.View().Consistent() {
		t.Fatal("zero ledger must be consistent")
	}
	c.AddOffered(3)
	if v := c.View(); v.Consistent() {
		t.Fatalf("mid-flight view %+v cannot be consistent: 3 blocks unresolved", v)
	} else if v.BlocksOffered < v.BlocksSent+v.BlocksShed {
		t.Fatalf("mid-flight view %+v violates the weak invariant", v)
	}
	c.AddSent(2, 2*96)
	c.AddShed(1)
	if v := c.View(); !v.Consistent() {
		t.Fatalf("post-teardown view %+v must be consistent", v)
	}
}

// TestCountersRegister checks that registration is exposition-only: the
// counters keep working through the same storage, duplicate names are
// rejected, and the registered values appear in the text exposition.
func TestCountersRegister(t *testing.T) {
	reg := obs.NewRegistry()
	var c Counters
	c.AddEncoded(5) // pre-registration traffic must survive registration
	if err := c.Register(reg, "netio"); err != nil {
		t.Fatal(err)
	}
	var other Counters
	if err := other.Register(reg, "netio"); err == nil {
		t.Fatal("second Counters registered under the same prefix")
	}
	c.AddSent(4, 400)
	if got, ok := reg.CounterValue("netio.blocks_sent"); !ok || got != 4 {
		t.Fatalf("netio.blocks_sent = %d (ok=%v), want 4", got, ok)
	}
	if got, ok := reg.CounterValue("netio.blocks_encoded"); !ok || got != 5 {
		t.Fatalf("netio.blocks_encoded = %d (ok=%v), want 5", got, ok)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "netio_bytes_sent 400") {
		t.Fatalf("exposition missing netio_bytes_sent:\n%s", sb.String())
	}
}
