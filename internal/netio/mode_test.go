package netio

import (
	"bytes"
	"context"
	"net"
	"testing"

	"extremenc/internal/rlnc"
)

// TestWireModeParse pins the flag-value spelling both ways.
func TestWireModeParse(t *testing.T) {
	for _, m := range []WireMode{ModeDense, ModeSystematic} {
		got, err := ParseWireMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseWireMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseWireMode("turbo"); err == nil {
		t.Fatal("unknown mode string accepted")
	}
}

// TestHandshakeCarriesMode: the session header round-trips the mode and
// rejects modes this client does not speak.
func TestHandshakeCarriesMode(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	for _, m := range []WireMode{ModeDense, ModeSystematic} {
		var buf bytes.Buffer
		h := sessionHeader{params: p, segments: 2, length: 999, mode: m}
		if err := writeSessionHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		got, err := readSessionHeader(&buf)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if got != h {
			t.Fatalf("header round trip: got %+v, want %+v", got, h)
		}
	}
	var buf bytes.Buffer
	if err := writeSessionHeader(&buf, sessionHeader{params: p, segments: 1, mode: WireMode(7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := readSessionHeader(&buf); err == nil {
		t.Fatal("unknown wire mode accepted in handshake")
	}
}

// TestNewServerRejectsUnknownMode: the mode is validated at construction, not
// first handshake.
func TestNewServerRejectsUnknownMode(t *testing.T) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 32}
	if _, err := NewServer(testMedia(t, p.SegmentSize(), 3), p, WithWireMode(WireMode(9))); err == nil {
		t.Fatal("NewServer accepted an unknown wire mode")
	}
}

// TestSystematicFetchOverPipe runs the one-shot path in systematic mode: the
// stream interleaves XNC2 and XNC1 records and the client must still recover
// the object byte-identically.
func TestSystematicFetchOverPipe(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 512}
	media := testMedia(t, 3*p.SegmentSize()-99, 21)
	srv, err := NewServer(media, p, WithWireMode(ModeSystematic))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Mode() != ModeSystematic {
		t.Fatalf("server mode = %v", srv.Mode())
	}

	l := startPipeServer(t, srv)
	f := NewFetcher(func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithMaxAttempts(1))
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSystematic {
		t.Fatalf("negotiated mode = %v, want systematic", res.Mode)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("systematic fetch payload differs")
	}
	if res.Stats.Corrupt != 0 || res.Stats.Malformed != 0 {
		t.Fatalf("clean systematic pipe rejected records: %+v", res.Stats)
	}
}

// TestModeDifferentialSessionPath serves the same media through the shared
// encoder pump in both modes and demands byte-identical results — the
// systematic + XOR session is an optimization of the wire discipline, never
// of the recovered bytes.
func TestModeDifferentialSessionPath(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	media := testMedia(t, 3*p.SegmentSize()-41, 22)

	fetchVia := func(mode WireMode) []byte {
		srv, err := NewServer(media, p, WithWireMode(mode), WithServerSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback listen unavailable: %v", err)
		}
		defer l.Close()
		go srv.Serve(context.Background(), l)
		defer srv.Shutdown()

		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		f := NewFetcher(func(context.Context) (net.Conn, error) { return conn, nil },
			WithMaxAttempts(1))
		res, err := f.Fetch(context.Background())
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Mode != mode {
			t.Fatalf("negotiated mode = %v, want %v", res.Mode, mode)
		}
		if snap := srv.Snapshot(); snap.Mode != mode {
			t.Fatalf("snapshot mode = %v, want %v", snap.Mode, mode)
		}
		return res.Payload
	}

	dense := fetchVia(ModeDense)
	systematic := fetchVia(ModeSystematic)
	if !bytes.Equal(dense, media) {
		t.Fatal("dense session payload differs from media")
	}
	if !bytes.Equal(systematic, dense) {
		t.Fatal("systematic and dense sessions are not byte-identical")
	}
}
