// Package netio streams network-coded content over real connections (TCP
// or any net.Conn): the deployment path of the paper's streaming-server
// scenario (Sec. 5.1). A server pushes an endless stream of coded blocks
// for every segment of an object; a client decodes progressively and hangs
// up as soon as it holds full rank for everything — no acknowledgements,
// retransmissions, or block scheduling needed, because any blocks work.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"

	"extremenc/internal/rlnc"
)

// Protocol:
//
//	session header: magic "XNCP" | u32 version | u32 n | u32 k |
//	                u32 segment count | u64 payload length | u32 CRC
//	then records:   u32 length | marshaled rlnc.CodedBlock, round-robin
//	                across segments, until the client closes.
const (
	protoMagic     = "XNCP"
	protoVersion   = 1
	protoHeaderLen = 4 + 4 + 4 + 4 + 4 + 8 + 4
)

// ErrBadHandshake reports a malformed session header.
var ErrBadHandshake = errors.New("netio: bad session header")

// sessionHeader describes the stream.
type sessionHeader struct {
	params   rlnc.Params
	segments int
	length   int64
}

func writeSessionHeader(w io.Writer, h sessionHeader) error {
	buf := make([]byte, protoHeaderLen)
	copy(buf, protoMagic)
	binary.BigEndian.PutUint32(buf[4:], protoVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(h.params.BlockCount))
	binary.BigEndian.PutUint32(buf[12:], uint32(h.params.BlockSize))
	binary.BigEndian.PutUint32(buf[16:], uint32(h.segments))
	binary.BigEndian.PutUint64(buf[20:], uint64(h.length))
	binary.BigEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	_, err := w.Write(buf)
	return err
}

func readSessionHeader(r io.Reader) (sessionHeader, error) {
	buf := make([]byte, protoHeaderLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return sessionHeader{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(buf[:4]) != protoMagic {
		return sessionHeader{}, fmt.Errorf("%w: wrong magic", ErrBadHandshake)
	}
	if v := binary.BigEndian.Uint32(buf[4:]); v != protoVersion {
		return sessionHeader{}, fmt.Errorf("%w: version %d", ErrBadHandshake, v)
	}
	if crc32.ChecksumIEEE(buf[:28]) != binary.BigEndian.Uint32(buf[28:]) {
		return sessionHeader{}, fmt.Errorf("%w: checksum", ErrBadHandshake)
	}
	h := sessionHeader{
		params: rlnc.Params{
			BlockCount: int(binary.BigEndian.Uint32(buf[8:])),
			BlockSize:  int(binary.BigEndian.Uint32(buf[12:])),
		},
		segments: int(binary.BigEndian.Uint32(buf[16:])),
		length:   int64(binary.BigEndian.Uint64(buf[20:])),
	}
	if err := h.params.Validate(); err != nil {
		return sessionHeader{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if h.segments <= 0 || h.length < 0 {
		return sessionHeader{}, fmt.Errorf("%w: shape", ErrBadHandshake)
	}
	return h, nil
}

// Server pushes coded blocks for one object to every connection.
type Server struct {
	object *rlnc.Object

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	nextID int64
}

// NewServer builds a server over media split at p.
func NewServer(media []byte, p rlnc.Params) (*Server, error) {
	obj, err := rlnc.Split(media, p)
	if err != nil {
		return nil, err
	}
	return &Server{object: obj, conns: make(map[net.Conn]struct{})}, nil
}

// Segments returns the number of media segments served.
func (s *Server) Segments() int { return len(s.object.Segments) }

// Serve accepts connections from l until the listener or the server is
// closed, handling each in its own goroutine. It returns nil after a clean
// Shutdown.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.ServeConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.nextID++
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Shutdown stops accepting, closes every live connection and waits for the
// handlers to exit. The caller closes the listener.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeConn streams to a single connection until the peer closes (the
// normal end: the client has decoded) or a write fails. Each connection
// gets its own coefficient stream.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()

	s.mu.Lock()
	seed := s.nextID*int64(0x5851F42D4C957F2D) + 1
	s.mu.Unlock()

	h := sessionHeader{
		params:   s.object.Params,
		segments: len(s.object.Segments),
		length:   int64(s.object.Length),
	}
	if err := writeSessionHeader(conn, h); err != nil {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	encoders := make([]*rlnc.Encoder, len(s.object.Segments))
	for i, seg := range s.object.Segments {
		encoders[i] = rlnc.NewEncoder(seg, rng)
	}
	var lenBuf [4]byte
	for i := 0; ; i = (i + 1) % len(encoders) {
		rec, err := encoders[i].NextBlock().MarshalBinary()
		if err != nil {
			return
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			return // client hung up: done
		}
		if _, err := conn.Write(rec); err != nil {
			return
		}
	}
}

// FetchStats reports a client download.
type FetchStats struct {
	Records   int
	Dependent int
	Corrupt   int
	Bytes     int64
}

// Fetch downloads and decodes the served object from conn, closing it once
// every segment reaches full rank. Records that fail their checksum are
// skipped — coded streams need no retransmission.
func Fetch(conn net.Conn) ([]byte, *FetchStats, error) {
	defer conn.Close()
	h, err := readSessionHeader(conn)
	if err != nil {
		return nil, nil, err
	}
	decoders := make(map[uint32]*rlnc.Decoder, h.segments)
	remaining := h.segments
	stats := &FetchStats{}

	var lenBuf [4]byte
	for remaining > 0 {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, nil, fmt.Errorf("netio: stream ended early: %w", err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > 64<<20 {
			return nil, nil, fmt.Errorf("netio: implausible record length %d", n)
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(conn, rec); err != nil {
			return nil, nil, fmt.Errorf("netio: truncated record: %w", err)
		}
		stats.Records++
		stats.Bytes += int64(len(rec)) + 4

		var blk rlnc.CodedBlock
		if err := blk.UnmarshalBinary(rec); err != nil || blk.Validate(h.params) != nil {
			stats.Corrupt++
			continue
		}
		dec := decoders[blk.SegmentID]
		if dec == nil {
			if dec, err = rlnc.NewDecoder(h.params); err != nil {
				return nil, nil, err
			}
			decoders[blk.SegmentID] = dec
		}
		if dec.Ready() {
			continue
		}
		innovative, err := dec.AddBlock(&blk)
		if err != nil {
			return nil, nil, err
		}
		if !innovative {
			stats.Dependent++
		} else if dec.Ready() {
			remaining--
		}
	}

	segs := make([]*rlnc.Segment, 0, h.segments)
	for _, dec := range decoders {
		seg, err := dec.Segment()
		if err != nil {
			return nil, nil, err
		}
		segs = append(segs, seg)
	}
	payload, err := rlnc.ReassembleSegments(segs, int(h.length), h.params)
	if err != nil {
		return nil, nil, err
	}
	return payload, stats, nil
}
