// Package netio streams network-coded content over real connections (TCP
// or any net.Conn): the deployment path of the paper's streaming-server
// scenario (Sec. 5.1). A server pushes an endless stream of coded blocks
// for every segment of an object; a client decodes progressively and hangs
// up as soon as it holds full rank for everything — no acknowledgements,
// retransmissions, or block scheduling needed, because any blocks work.
//
// The Server (server.go) multiplexes many concurrent sessions over one
// shared encoder with bounded per-client queues, write deadlines, and a
// metrics snapshot; this file holds the wire protocol and the client side.
package netio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"extremenc/internal/rlnc"
)

// Protocol:
//
//	session header: magic "XNCP" | u32 version | u32 n | u32 k |
//	                u32 segment count | u64 payload length | u32 CRC
//	then records:   u32 length | marshaled rlnc.CodedBlock, round-robin
//	                across segments, until the client closes.
const (
	protoMagic     = "XNCP"
	protoVersion   = 1
	protoHeaderLen = 4 + 4 + 4 + 4 + 4 + 8 + 4

	// maxRecordLen bounds a record claim before allocation.
	maxRecordLen = 64 << 20
)

// Client-side protocol errors.
var (
	// ErrBadHandshake reports a malformed session header.
	ErrBadHandshake = errors.New("netio: bad session header")
	// ErrRecordLength reports an implausible record length prefix.
	ErrRecordLength = errors.New("netio: implausible record length")
	// ErrStreamTruncated reports a stream that ended before the client
	// reached full rank.
	ErrStreamTruncated = errors.New("netio: stream ended early")
)

// sessionHeader describes the stream.
type sessionHeader struct {
	params   rlnc.Params
	segments int
	length   int64
}

func writeSessionHeader(w io.Writer, h sessionHeader) error {
	buf := make([]byte, protoHeaderLen)
	copy(buf, protoMagic)
	binary.BigEndian.PutUint32(buf[4:], protoVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(h.params.BlockCount))
	binary.BigEndian.PutUint32(buf[12:], uint32(h.params.BlockSize))
	binary.BigEndian.PutUint32(buf[16:], uint32(h.segments))
	binary.BigEndian.PutUint64(buf[20:], uint64(h.length))
	binary.BigEndian.PutUint32(buf[28:], crc32.ChecksumIEEE(buf[:28]))
	_, err := w.Write(buf)
	return err
}

func readSessionHeader(r io.Reader) (sessionHeader, error) {
	buf := make([]byte, protoHeaderLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return sessionHeader{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(buf[:4]) != protoMagic {
		return sessionHeader{}, fmt.Errorf("%w: wrong magic", ErrBadHandshake)
	}
	if v := binary.BigEndian.Uint32(buf[4:]); v != protoVersion {
		return sessionHeader{}, fmt.Errorf("%w: version %d", ErrBadHandshake, v)
	}
	if crc32.ChecksumIEEE(buf[:28]) != binary.BigEndian.Uint32(buf[28:]) {
		return sessionHeader{}, fmt.Errorf("%w: checksum", ErrBadHandshake)
	}
	h := sessionHeader{
		params: rlnc.Params{
			BlockCount: int(binary.BigEndian.Uint32(buf[8:])),
			BlockSize:  int(binary.BigEndian.Uint32(buf[12:])),
		},
		segments: int(binary.BigEndian.Uint32(buf[16:])),
		length:   int64(binary.BigEndian.Uint64(buf[20:])),
	}
	if err := h.params.Validate(); err != nil {
		return sessionHeader{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if h.segments <= 0 || h.length < 0 {
		return sessionHeader{}, fmt.Errorf("%w: shape", ErrBadHandshake)
	}
	return h, nil
}

// FetchStats reports a client download.
type FetchStats struct {
	Records   int
	Dependent int
	Corrupt   int
	Bytes     int64
}

// Fetch downloads and decodes the served object from conn, closing it once
// every segment reaches full rank. Records that fail their checksum are
// skipped — coded streams need no retransmission. Cancelling ctx (or its
// deadline expiring) unblocks any pending read and returns ctx.Err().
func Fetch(ctx context.Context, conn net.Conn) ([]byte, *FetchStats, error) {
	defer conn.Close()

	// A cancelled context forces every blocked and future read to fail
	// immediately by moving the read deadline into the past.
	unhook := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Unix(1, 0))
	})
	defer unhook()
	ctxErr := func(err error) error {
		if ctx.Err() != nil {
			return fmt.Errorf("netio: fetch cancelled: %w", ctx.Err())
		}
		return err
	}

	h, err := readSessionHeader(conn)
	if err != nil {
		return nil, nil, ctxErr(err)
	}
	decoders := make(map[uint32]*rlnc.Decoder, h.segments)
	remaining := h.segments
	stats := &FetchStats{}

	var lenBuf [4]byte
	for remaining > 0 {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, nil, ctxErr(fmt.Errorf("%w: %v", ErrStreamTruncated, err))
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxRecordLen {
			return nil, nil, fmt.Errorf("%w: %d", ErrRecordLength, n)
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(conn, rec); err != nil {
			return nil, nil, ctxErr(fmt.Errorf("%w: truncated record: %v", ErrStreamTruncated, err))
		}
		stats.Records++
		stats.Bytes += int64(len(rec)) + 4

		var blk rlnc.CodedBlock
		if err := blk.UnmarshalBinary(rec); err != nil || blk.Validate(h.params) != nil {
			stats.Corrupt++
			continue
		}
		dec := decoders[blk.SegmentID]
		if dec == nil {
			if dec, err = rlnc.NewDecoder(h.params); err != nil {
				return nil, nil, err
			}
			decoders[blk.SegmentID] = dec
		}
		if dec.Ready() {
			continue
		}
		innovative, err := dec.AddBlock(&blk)
		if err != nil {
			return nil, nil, err
		}
		if !innovative {
			stats.Dependent++
		} else if dec.Ready() {
			remaining--
		}
	}

	segs := make([]*rlnc.Segment, 0, h.segments)
	for _, dec := range decoders {
		seg, err := dec.Segment()
		if err != nil {
			return nil, nil, err
		}
		segs = append(segs, seg)
	}
	payload, err := rlnc.ReassembleSegments(segs, int(h.length), h.params)
	if err != nil {
		return nil, nil, err
	}
	return payload, stats, nil
}
