// Package netio streams network-coded content over real connections (TCP
// or any net.Conn): the deployment path of the paper's streaming-server
// scenario (Sec. 5.1). A server pushes an endless stream of coded blocks
// for every segment of an object; a client decodes progressively and hangs
// up as soon as it holds full rank for everything — no acknowledgements,
// retransmissions, or block scheduling needed, because any blocks work.
//
// The Server (server.go) multiplexes many concurrent sessions over one
// shared encoder with bounded per-client queues, write deadlines, and a
// metrics snapshot; this file holds the wire protocol and the client side.
package netio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"

	"extremenc/internal/rlnc"
)

// Protocol:
//
//	session header: magic "XNCP" | u32 version | u32 n | u32 k |
//	                u32 segment count | u64 payload length | u32 wire mode |
//	                u32 flags | u32 CRC
//	then records:   u32 length | marshaled rlnc.CodedBlock, round-robin
//	                across segments, until the client closes.
//
// A server may instead open with an admission decision record (magic "XNCD",
// see admission.go): BUSY and REDIRECT end the connection with a structured
// reason; an explicit ACCEPT is followed by the session header above. A bare
// session header is an implied ACCEPT.
//
// The flags word declares optional stream features. With hsFlagTrace set,
// the header is followed by a trace-context record (magic "XNCT", see
// tracectx.go) carrying the transfer's trace ID and the server's root span,
// and every record is preceded by a CRC-guarded 12-byte prelude naming the
// pump round (span ID) that encoded it — the causal link that lets one
// generation's records be attributed across mesh tiers. Unknown flag bits
// are rejected: a client that cannot parse a feature's framing must not
// guess at record boundaries.
//
// The wire mode is the server's declaration of the coding discipline for the
// whole session; the client adapts its record parser to it. In ModeDense
// every record is an XNC1 dense block. In ModeSystematic records interleave
// XNC2 GF(2) blocks (systematic sweep + XOR repair) with XNC1 dense-tail
// blocks, and the receiver's decoder rides its XOR-only fast path until the
// first dense record arrives.
const (
	protoMagic     = "XNCP"
	protoVersion   = 3
	protoHeaderLen = 4 + 4 + 4 + 4 + 4 + 8 + 4 + 4 + 4

	// maxRecordLen bounds a record claim before allocation.
	maxRecordLen = 64 << 20
)

// Session flag bits (the u32 flags word of the session header).
const (
	// hsFlagTrace: an XNCT trace-context record follows the header and every
	// record carries a round-span prelude.
	hsFlagTrace uint32 = 1 << 0

	// hsFlagKnown masks the bits this implementation understands.
	hsFlagKnown = hsFlagTrace
)

// WireMode selects the session's coding discipline, negotiated in the
// handshake (declared by the server, adopted by the client).
type WireMode uint32

const (
	// ModeDense streams dense GF(2^8) coded blocks for every record: the
	// maximum-innovation discipline (dependence probability ≈ 1/256 per
	// missing rank) at full table-driven arithmetic cost.
	ModeDense WireMode = 0
	// ModeSystematic streams each segment as a systematic sweep (source
	// blocks verbatim), then GF(2) XOR repair blocks, then a dense GF(2^8)
	// tail — the wire-speed discipline for lightly-lossy links.
	ModeSystematic WireMode = 1
)

// String returns the flag-value spelling of the mode.
func (m WireMode) String() string {
	switch m {
	case ModeDense:
		return "dense"
	case ModeSystematic:
		return "systematic"
	default:
		return fmt.Sprintf("mode(%d)", uint32(m))
	}
}

// ParseWireMode parses the flag-value spelling ("dense" or "systematic").
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "dense":
		return ModeDense, nil
	case "systematic":
		return ModeSystematic, nil
	default:
		return 0, fmt.Errorf("netio: unknown wire mode %q (want dense or systematic)", s)
	}
}

// Client-side protocol errors.
var (
	// ErrBadHandshake reports a malformed session header.
	ErrBadHandshake = errors.New("netio: bad session header")
	// ErrRecordLength reports an implausible record length prefix.
	ErrRecordLength = errors.New("netio: implausible record length")
	// ErrStreamTruncated reports a stream that ended before the client
	// reached full rank.
	ErrStreamTruncated = errors.New("netio: stream ended early")
)

// sessionHeader describes the stream.
type sessionHeader struct {
	params   rlnc.Params
	segments int
	length   int64
	mode     WireMode
}

// writeSessionHeader writes a header with no optional features — the
// common path for untraced servers, tests, and the codec round trip.
func writeSessionHeader(w io.Writer, h sessionHeader) error {
	return writeSessionHeaderFlags(w, h, 0)
}

// writeSessionHeaderFlags writes the v3 header with the given feature
// flags. The flags word is deliberately NOT part of sessionHeader: feature
// negotiation is per-connection (a redirect may land on a server with
// different features), while sessionHeader identity gates reconnect safety.
func writeSessionHeaderFlags(w io.Writer, h sessionHeader, flags uint32) error {
	_, err := w.Write(appendSessionHeader(make([]byte, 0, protoHeaderLen), h, flags))
	return err
}

// appendSessionHeader marshals the v3 header onto dst — the building block
// for a traced server's single handshake write (header + XNCT context).
func appendSessionHeader(dst []byte, h sessionHeader, flags uint32) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, protoHeaderLen)...)
	buf := dst[start:]
	copy(buf, protoMagic)
	binary.BigEndian.PutUint32(buf[4:], protoVersion)
	binary.BigEndian.PutUint32(buf[8:], uint32(h.params.BlockCount))
	binary.BigEndian.PutUint32(buf[12:], uint32(h.params.BlockSize))
	binary.BigEndian.PutUint32(buf[16:], uint32(h.segments))
	binary.BigEndian.PutUint64(buf[20:], uint64(h.length))
	binary.BigEndian.PutUint32(buf[28:], uint32(h.mode))
	binary.BigEndian.PutUint32(buf[32:], flags)
	binary.BigEndian.PutUint32(buf[36:], crc32.ChecksumIEEE(buf[:36]))
	return dst
}

func readSessionHeader(r io.Reader) (sessionHeader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return sessionHeader{}, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	h, _, err := readSessionHeaderTail(r, magic)
	return h, err
}

// readSessionHeaderTail parses a session header whose magic has already been
// consumed — the tail of readHandshake's dispatch between bare headers and
// admission decision records. It returns the header and the feature flags.
func readSessionHeaderTail(r io.Reader, magic [4]byte) (sessionHeader, uint32, error) {
	if string(magic[:]) != protoMagic {
		return sessionHeader{}, 0, fmt.Errorf("%w: wrong magic", ErrBadHandshake)
	}
	buf := make([]byte, protoHeaderLen)
	copy(buf, magic[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return sessionHeader{}, 0, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if v := binary.BigEndian.Uint32(buf[4:]); v != protoVersion {
		return sessionHeader{}, 0, fmt.Errorf("%w: version %d", ErrBadHandshake, v)
	}
	if crc32.ChecksumIEEE(buf[:36]) != binary.BigEndian.Uint32(buf[36:]) {
		return sessionHeader{}, 0, fmt.Errorf("%w: checksum", ErrBadHandshake)
	}
	h := sessionHeader{
		params: rlnc.Params{
			BlockCount: int(binary.BigEndian.Uint32(buf[8:])),
			BlockSize:  int(binary.BigEndian.Uint32(buf[12:])),
		},
		segments: int(binary.BigEndian.Uint32(buf[16:])),
		length:   int64(binary.BigEndian.Uint64(buf[20:])),
		mode:     WireMode(binary.BigEndian.Uint32(buf[28:])),
	}
	flags := binary.BigEndian.Uint32(buf[32:])
	if err := h.params.Validate(); err != nil {
		return sessionHeader{}, 0, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if h.segments <= 0 || h.length < 0 {
		return sessionHeader{}, 0, fmt.Errorf("%w: shape", ErrBadHandshake)
	}
	if h.mode > ModeSystematic {
		return sessionHeader{}, 0, fmt.Errorf("%w: %v", ErrBadHandshake, h.mode)
	}
	if flags&^hsFlagKnown != 0 {
		// An unknown feature may change record framing; guessing at stream
		// boundaries would corrupt every downstream decoder.
		return sessionHeader{}, 0, fmt.Errorf("%w: unknown flags %#x", ErrBadHandshake, flags&^hsFlagKnown)
	}
	return h, flags, nil
}

// FetchStats reports a client download, including its fault history. The
// reject counters are split by cause so operators can tell line damage
// (Corrupt), a misbehaving server (Malformed, BadSegment), and framing loss
// (FramingResyncs) apart at a glance.
type FetchStats struct {
	// Attempts counts connection attempts, including the first; Reconnects
	// counts the successful handshakes after the first.
	Attempts   int
	Reconnects int

	Records   int // complete records received
	Dependent int // linearly dependent blocks (innovation overhead)

	Corrupt    int // records rejected for bit damage (bad magic or checksum)
	Malformed  int // checksummed records whose shape disagrees with the session
	BadSegment int // checksummed records with an out-of-range segment ID

	// FramingResyncs counts corrupted length prefixes: each one makes the
	// rest of the stream unparseable and forces a reconnect (rank is kept).
	FramingResyncs int

	// ResumedRank accumulates, over all reconnects, the total decoder rank
	// carried into the new session — direct evidence that no reconnect
	// restarted a segment from zero.
	ResumedRank int

	Bytes          int64 // wire bytes consumed in complete records
	BytesDiscarded int64 // bytes thrown away: rejected records, bad prefixes, partials

	// AdmissionBusy and AdmissionRedirected count handshakes answered with
	// a structured rejection instead of a session: the server was shedding
	// load (BUSY) or draining toward a named survivor (REDIRECT).
	AdmissionBusy       int
	AdmissionRedirected int
}

// Fetch downloads and decodes the served object from conn, closing it once
// every segment reaches full rank. Records that fail their checksum are
// skipped — coded streams need no retransmission. Cancelling ctx (or its
// deadline expiring) unblocks any pending read and returns ctx.Err().
//
// Fetch is the one-shot path: it consumes exactly the given connection and
// any stream failure is final. The returned stats are non-nil even on
// error. For a client that survives resets, framing loss, and server
// restarts without losing decoder rank, use a Fetcher with a dial function.
func Fetch(ctx context.Context, conn net.Conn) ([]byte, *FetchStats, error) {
	defer conn.Close()
	f := NewFetcher(func(context.Context) (net.Conn, error) {
		return conn, nil
	}, WithMaxAttempts(1))
	res, err := f.Fetch(ctx)
	return res.Payload, res.Stats, err
}
