package netio

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

func testMedia(t testing.TB, size int, seed int64) []byte {
	t.Helper()
	b := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// TestFetchOverPipe runs the full protocol over an in-memory connection.
func TestFetchOverPipe(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 512}
	media := testMedia(t, 3*p.SegmentSize()-99, 1)
	srv, err := NewServer(media, p)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Segments() != 3 {
		t.Fatalf("segments = %d", srv.Segments())
	}

	l := startPipeServer(t, srv)
	payload, stats, err := Fetch(context.Background(), l.Dial())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, media) {
		t.Fatal("fetched payload differs")
	}
	if stats.Records < 3*p.BlockCount {
		t.Fatalf("records = %d, need at least %d", stats.Records, 3*p.BlockCount)
	}
	if stats.Corrupt != 0 {
		t.Fatalf("corrupt records on a clean pipe: %d", stats.Corrupt)
	}
}

// TestFetchOverTCP runs the server over real loopback TCP with several
// concurrent clients and a clean shutdown.
func TestFetchOverTCP(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, 2*p.SegmentSize(), 2)
	srv, err := NewServer(media, p)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			payload, _, err := Fetch(context.Background(), conn)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				errs[i] = errors.New("payload differs")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}

	srv.Shutdown()
	l.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// TestFetchBadHandshake rejects garbage servers.
func TestFetchBadHandshake(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		server.Write(bytes.Repeat([]byte{0xAB}, protoHeaderLen))
		server.Close()
	}()
	if _, _, err := Fetch(context.Background(), client); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("err = %v, want ErrBadHandshake", err)
	}
}

// TestFetchSkipsCorruptRecords: a middlebox flips bytes; the client skips
// the damaged records and still finishes.
func TestFetchSkipsCorruptRecords(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, p.SegmentSize(), 3)
	srv, err := NewServer(media, p)
	if err != nil {
		t.Fatal(err)
	}
	client, mangler := net.Pipe()
	upstreamClient := startPipeServer(t, srv).Dial()

	// A relay that corrupts every third record's payload region.
	go func() {
		defer mangler.Close()
		defer upstreamClient.Close()
		buf := make([]byte, 4)
		record := 0
		for {
			if _, err := readFull(upstreamClient, buf); err != nil {
				return
			}
			n := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
			if n <= 0 || n > 1<<20 {
				// First read is the session header (not length-prefixed):
				// forward its remaining bytes verbatim.
				rest := make([]byte, protoHeaderLen-4)
				if _, err := readFull(upstreamClient, rest); err != nil {
					return
				}
				if _, err := mangler.Write(append(buf, rest...)); err != nil {
					return
				}
				continue
			}
			rec := make([]byte, n)
			if _, err := readFull(upstreamClient, rec); err != nil {
				return
			}
			record++
			if record%3 == 0 {
				rec[len(rec)/2] ^= 0x55
			}
			if _, err := mangler.Write(buf); err != nil {
				return
			}
			if _, err := mangler.Write(rec); err != nil {
				return
			}
		}
	}()

	payload, stats, err := Fetch(context.Background(), client)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, media) {
		t.Fatal("payload differs through corrupting relay")
	}
	if stats.Corrupt == 0 {
		t.Fatal("no corrupt records detected")
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(nil, rlnc.Params{}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// BenchmarkFetchPipe measures real end-to-end coded transfer throughput
// (encode, frame, pipe, parse, decode) on this machine.
func BenchmarkFetchPipe(b *testing.B) {
	p := rlnc.Params{BlockCount: 32, BlockSize: 4096}
	media := testMedia(b, 4*p.SegmentSize(), 9)
	srv, err := NewServer(media, p)
	if err != nil {
		b.Fatal(err)
	}
	l := startPipeServer(b, srv)
	b.SetBytes(int64(len(media)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := l.Dial()
		payload, _, err := Fetch(context.Background(), conn)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
		if len(payload) != len(media) {
			b.Fatal("short payload")
		}
	}
}
