package netio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"extremenc/internal/rlnc"
)

// RawClient consumes a serving session at wire speed without decoding: it
// validates the handshake, then reads length-prefixed records and discards
// their payloads. It exists for capacity measurement — the ncload harness
// drives thousands of these against one server so the saturation curve
// reflects server-side coding and framing cost, not client decode speed.
// Records are framing-checked only (plausible length prefix); checksum and
// shape validation are the decoding client's job.
//
// A RawClient is not safe for concurrent use. Close unblocks a pending Next.
type RawClient struct {
	conn    net.Conn
	br      *bufio.Reader
	hdr     sessionHeader
	traced  bool // session negotiated round preludes before every record
	records int64
	bytes   int64
}

// NewRawClient performs the client side of the handshake on conn and returns
// a reader positioned at the first record. A BUSY or REDIRECT admission
// decision is returned as its sentinel error (ErrAdmissionBusy,
// ErrAdmissionRedirect); on any handshake failure the connection is closed.
func NewRawClient(conn net.Conn) (*RawClient, error) {
	br := bufio.NewReaderSize(conn, 32<<10)
	hs, err := readHandshake(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if hs.dec != nil && hs.dec.code != admissionAccept {
		conn.Close()
		return nil, hs.dec.Err()
	}
	return &RawClient{conn: conn, br: br, hdr: hs.hdr, traced: hs.traced()}, nil
}

// Params returns the coding parameters declared in the handshake.
func (c *RawClient) Params() rlnc.Params { return c.hdr.params }

// Mode returns the wire mode declared in the handshake.
func (c *RawClient) Mode() WireMode { return c.hdr.mode }

// Segments returns the segment count declared in the handshake.
func (c *RawClient) Segments() int { return c.hdr.segments }

// Length returns the payload length declared in the handshake.
func (c *RawClient) Length() int64 { return c.hdr.length }

// Next reads and discards one record, returning its wire size (payload plus
// the 4-byte length prefix). It blocks until a record arrives, the peer
// closes, or Close is called; stream errors (including io.EOF at hang-up)
// are returned verbatim.
func (c *RawClient) Next() (int, error) {
	pre := 0
	if c.traced {
		// A traced session prefixes each record with a round prelude; the
		// raw client validates its CRC (framing) and discards the ID.
		var preBuf [recordPreludeLen]byte
		if _, err := io.ReadFull(c.br, preBuf[:]); err != nil {
			return 0, err
		}
		if _, err := parseRecordPrelude(preBuf[:]); err != nil {
			return 0, err
		}
		pre = recordPreludeLen
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxRecordLen {
		return 0, fmt.Errorf("%w: %d", ErrRecordLength, n)
	}
	if _, err := c.br.Discard(int(n)); err != nil {
		return 0, err
	}
	c.records++
	c.bytes += int64(n) + 4 + int64(pre)
	return int(n) + 4 + pre, nil
}

// Records returns how many complete records Next has consumed.
func (c *RawClient) Records() int64 { return c.records }

// Bytes returns the total wire bytes consumed in complete records.
func (c *RawClient) Bytes() int64 { return c.bytes }

// Close closes the underlying connection, unblocking a pending Next.
func (c *RawClient) Close() error { return c.conn.Close() }
