package netio

import (
	"net"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// TestRawClientDrains: the wire-speed measurement client handshakes, reports
// the declared session shape, and consumes framed records without decoding.
func TestRawClientDrains(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 2*p.SegmentSize()-9, 58)
	srv, err := NewServer(media, p, WithWriteDeadline(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)

	rc, err := NewRawClient(l.Dial())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Params() != p || rc.Segments() != 2 || rc.Length() != int64(len(media)) {
		t.Fatalf("handshake shape: params %+v segments %d length %d",
			rc.Params(), rc.Segments(), rc.Length())
	}
	if rc.Mode() != ModeDense {
		t.Fatalf("mode = %v, want dense", rc.Mode())
	}
	var wire int64
	for i := 0; i < 32; i++ {
		n, err := rc.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n <= 4 {
			t.Fatalf("record %d wire size %d", i, n)
		}
		wire += int64(n)
	}
	if rc.Records() != 32 || rc.Bytes() != wire {
		t.Fatalf("ledger: records %d bytes %d, want 32 / %d", rc.Records(), rc.Bytes(), wire)
	}
}

// TestRawClientRejectsBadHandshake: a stream that is not an XNCP session is
// refused at handshake and the connection is closed.
func TestRawClientRejectsBadHandshake(t *testing.T) {
	client, server := net.Pipe()
	go func() {
		junk := make([]byte, protoHeaderLen)
		copy(junk, "JUNK")
		server.Write(junk)
	}()
	if _, err := NewRawClient(client); err == nil {
		t.Fatal("garbage handshake accepted")
	}
	// The failed constructor closed the conn.
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection left open after handshake failure")
	}
}
