package netio

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
)

// Redirector is a mutable dial target: its Dial method satisfies DialFunc,
// but the address it connects to can be swapped at any time by a control
// plane. A leaf fetcher built over a Redirector keeps all the resilience of
// the Fetcher — reconnect with backoff, rank carried across connections —
// and gains re-routing for free: when the mesh coordinator detects a dead
// relay it calls SetTarget with a healthy one, and the fetcher's very next
// reconnect lands there. Because the Fetcher insists on an identical session
// header across reconnects, a Redirector must only ever be pointed at
// servers declaring the same SessionInfo.
//
// Safe for concurrent use: SetTarget may race with in-flight Dial calls
// (each dial snapshots the target once).
type Redirector struct {
	mu     sync.Mutex
	target string

	dialer    net.Dialer
	redirects atomic.Int64
	dials     atomic.Int64
}

// NewRedirector returns a Redirector initially pointed at target
// (a "host:port" TCP address).
func NewRedirector(target string) *Redirector {
	return &Redirector{target: target}
}

// Target returns the address the next Dial will connect to.
func (r *Redirector) Target() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.target
}

// SetTarget re-points the Redirector at addr; subsequent Dial calls connect
// there. It reports whether the target actually changed (a no-op re-point
// at the current target is not counted as a redirect). The redirect count is
// bumped inside the same critical section that swaps the target, so an
// observer reading Target then Redirects never sees a new target with a
// stale count or vice versa.
func (r *Redirector) SetTarget(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == r.target {
		return false
	}
	r.target = addr
	r.redirects.Add(1)
	return true
}

// Redirects returns how many times SetTarget changed the target.
func (r *Redirector) Redirects() int64 { return r.redirects.Load() }

// Dials returns how many connection attempts have been made through the
// Redirector.
func (r *Redirector) Dials() int64 { return r.dials.Load() }

// Dial connects to the current target. It is a DialFunc: pass r.Dial to
// NewFetcher. The target snapshot and the dial count share one critical
// section, so a SetTarget racing an in-flight Dial either lands entirely
// before the attempt (which then dials the new target) or entirely after —
// never a dial accounted against a target it did not use.
func (r *Redirector) Dial(ctx context.Context) (net.Conn, error) {
	r.mu.Lock()
	target := r.target
	r.dials.Add(1)
	r.mu.Unlock()
	return r.dialer.DialContext(ctx, "tcp", target)
}
