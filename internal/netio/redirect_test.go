package netio

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// dribbleServer serves the object over l a few records at a time: each
// accepted session gets the handshake plus recordsPerSession dense records,
// then a hangup — a server no single session can finish against. Session i
// is seeded distinctly so every session pushes fresh combinations.
func dribbleServer(t *testing.T, l net.Listener, obj *rlnc.Object, recordsPerSession int) {
	t.Helper()
	go func() {
		for session := 0; ; session++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			h := sessionHeader{params: obj.Params, segments: len(obj.Segments), length: int64(obj.Length)}
			if err := writeSessionHeader(conn, h); err != nil {
				conn.Close()
				continue
			}
			rng := rand.New(rand.NewSource(int64(session)*7919 + 11))
			encs := make([]*rlnc.Encoder, len(obj.Segments))
			for i, seg := range obj.Segments {
				encs[i] = rlnc.NewEncoder(seg, rng)
			}
			for r := 0; r < recordsPerSession; r++ {
				rec, err := frameRecord(encs[r%len(encs)].NextBlock(), nil)
				if err != nil {
					break
				}
				if _, err := conn.Write(rec); err != nil {
					break
				}
			}
			conn.Close()
		}
	}()
}

// TestRedirectorReroutesMidFetch is the dial-target redirection acceptance
// test: a leaf fetches through a Redirector pointed at a server that dies
// mid-transfer; the control plane (here: the test) re-points the Redirector
// at a healthy server declaring the same session, and the same fetch must
// complete byte-identical with the rank accumulated on the first server
// carried over.
func TestRedirectorReroutesMidFetch(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 3*p.SegmentSize()-5, 41)
	obj, err := rlnc.Split(media, p)
	if err != nil {
		t.Fatal(err)
	}

	// Server A: dribbles 4 records per session, so no session against it can
	// decode 3 segments of 8 blocks each.
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	dribbleServer(t, la, obj, 4)

	// Server B: a full pump server over the same object.
	srvB, err := NewServer(media, p, WithServerSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srvB.Serve(serveCtx, lb)
	defer srvB.Shutdown()

	rd := NewRedirector(la.Addr().String())
	var tapped atomic.Int64
	rerouted := make(chan struct{})
	var rerouteOnce atomic.Bool
	f := NewFetcher(rd.Dial,
		WithBackoff(time.Millisecond, 20*time.Millisecond),
		WithBackoffSeed(3),
		WithRecordTap(func(b *rlnc.CodedBlock) {
			if b.Validate(p) != nil {
				t.Error("tap saw a block that does not validate")
			}
			// Once the leaf has real progress against A, kill A and hand the
			// fetcher a fresh dial target — the remediation path in miniature.
			if tapped.Add(1) == 6 && rerouteOnce.CompareAndSwap(false, true) {
				la.Close()
				rd.SetTarget(lb.Addr().String())
				close(rerouted)
			}
		}),
	)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("rerouted fetch failed: %v (stats %+v)", err, res.Stats)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical after reroute")
	}
	select {
	case <-rerouted:
	default:
		t.Fatal("fetch completed without ever being rerouted")
	}
	if rd.Redirects() != 1 {
		t.Fatalf("redirects = %d, want 1", rd.Redirects())
	}
	if res.Stats.Reconnects == 0 {
		t.Fatal("reroute happened without a reconnect")
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("reroute carried no rank: leaf restarted from scratch")
	}
	if int64(res.Stats.Records) != tapped.Load() {
		t.Fatalf("tap saw %d records, fetch absorbed %d", tapped.Load(), res.Stats.Records)
	}
}

// TestRedirectorConcurrentSetAndDial hammers Dial from many goroutines while
// the target flips between two live listeners, pinning the repaired tear:
// every dial lands on a target that was current at some instant, the dial
// count matches the attempts exactly, and the redirect count matches the
// SetTarget calls that reported a change. Run under -race this also proves
// the re-point path never races an in-flight dial's snapshot.
func TestRedirectorConcurrentSetAndDial(t *testing.T) {
	accepting := func() net.Listener {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback listen unavailable: %v", err)
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				conn.Close()
			}
		}()
		return l
	}
	la, lb := accepting(), accepting()
	defer la.Close()
	defer lb.Close()
	addrs := []string{la.Addr().String(), lb.Addr().String()}

	rd := NewRedirector(addrs[0])
	const (
		dialers       = 8
		dialsPer      = 25
		repoints      = 200
		totalAttempts = dialers * dialsPer
	)
	var (
		wg      sync.WaitGroup
		changes atomic.Int64
	)
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < dialsPer; j++ {
				conn, err := rd.Dial(context.Background())
				if err != nil {
					t.Errorf("dial: %v", err)
					return
				}
				conn.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < repoints; j++ {
			if rd.SetTarget(addrs[j%2]) {
				changes.Add(1)
			}
		}
	}()
	wg.Wait()

	if got := rd.Dials(); got != totalAttempts {
		t.Fatalf("dials = %d, want %d", got, totalAttempts)
	}
	if got := rd.Redirects(); got != changes.Load() {
		t.Fatalf("redirects = %d, but %d SetTarget calls reported a change", got, changes.Load())
	}
	// The flipper starts by re-pointing at the already-current addrs[0]: the
	// very first call must be a no-op, so changes < repoints strictly.
	if c := changes.Load(); c == 0 || c >= repoints {
		t.Fatalf("changed re-points = %d, want within (0, %d)", c, repoints)
	}
}

// TestSessionHookSeesDeclaredInfo: the session hook must fire on every
// successful handshake with exactly the SessionInfo the server declares.
func TestSessionHookSeesDeclaredInfo(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, 2*p.SegmentSize()-9, 17)
	srv, err := NewServer(media, p, WithWireMode(ModeSystematic), WithServerSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	go srv.Serve(context.Background(), l)
	defer func() {
		srv.Shutdown()
		l.Close()
	}()

	var infos []SessionInfo
	f := NewFetcher(
		func(ctx context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithSessionHook(func(si SessionInfo) { infos = append(infos, si) }),
		WithMaxAttempts(1),
	)
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatalf("fetch: %v (stats %+v)", err, res.Stats)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs")
	}
	if len(infos) != 1 {
		t.Fatalf("session hook fired %d times, want 1", len(infos))
	}
	if infos[0] != srv.Info() {
		t.Fatalf("hook info %+v != server info %+v", infos[0], srv.Info())
	}
	if err := infos[0].Validate(); err != nil {
		t.Fatalf("hooked info does not validate: %v", err)
	}
}

// poolSource is a minimal out-of-package-style RecordSource: a fixed
// pre-encoded pool of dense records per segment, handed out cyclically.
type poolSource struct {
	info SessionInfo
	recs [][][]byte // [segment][record]
	next []int
}

func newPoolSource(t *testing.T, obj *rlnc.Object, perSeg int) *poolSource {
	t.Helper()
	src := &poolSource{
		info: SessionInfo{Params: obj.Params, Segments: len(obj.Segments), Length: int64(obj.Length)},
		recs: make([][][]byte, len(obj.Segments)),
		next: make([]int, len(obj.Segments)),
	}
	rng := rand.New(rand.NewSource(71))
	for i, seg := range obj.Segments {
		enc := rlnc.NewEncoder(seg, rng)
		for r := 0; r < perSeg; r++ {
			rec, err := FrameRecord(enc.NextBlock(), src.info.Mode)
			if err != nil {
				t.Fatal(err)
			}
			src.recs[i] = append(src.recs[i], rec)
		}
	}
	return src
}

func (s *poolSource) Info() SessionInfo { return s.info }

func (s *poolSource) Records(seg, batch int) [][]byte {
	out := make([][]byte, 0, batch)
	for i := 0; i < batch; i++ {
		out = append(out, s.recs[seg][s.next[seg]%len(s.recs[seg])])
		s.next[seg]++
	}
	return out
}

// TestSourceServer: a server over an arbitrary RecordSource must drive a
// stock fetcher to a byte-identical object through the same pump machinery.
func TestSourceServer(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 2*p.SegmentSize()-3, 23)
	obj, err := rlnc.Split(media, p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewSourceServer(newPoolSource(t, obj, 2*p.BlockCount))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	go srv.Serve(context.Background(), l)
	defer func() {
		srv.Shutdown()
		l.Close()
	}()

	payload, stats, err := Fetch(context.Background(), l.Dial())
	if err != nil {
		t.Fatalf("fetch from source server: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(payload, media) {
		t.Fatal("payload differs through the source server")
	}
}
