package netio

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"extremenc/internal/rlnc"
)

// pipeListener turns net.Pipe connections into a net.Listener so the
// session server can be driven entirely in memory.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

// Dial hands the server side of a fresh pipe to Accept and returns the
// client side.
func (l *pipeListener) Dial() net.Conn {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client
	case <-l.done:
		client.Close()
		server.Close()
		return nil
	}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeListenerAddr struct{}

func (pipeListenerAddr) Network() string { return "pipe" }
func (pipeListenerAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeListenerAddr{} }

// startPipeServer serves srv on a fresh in-memory listener for the lifetime
// of the test, shutting both down at cleanup. Sessions come from l.Dial().
func startPipeServer(t testing.TB, srv *Server) *pipeListener {
	t.Helper()
	l := newPipeListener()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(context.Background(), l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		l.Close()
		<-done
	})
	return l
}

// checkAccounting asserts the snapshot's core invariant once all sessions
// have ended: every offered block was either fully written or shed.
func checkAccounting(t *testing.T, snap Snapshot) {
	t.Helper()
	if snap.Sessions != 0 {
		t.Fatalf("still %d live sessions", snap.Sessions)
	}
	if !snap.Consistent() {
		t.Fatalf("accounting: offered %d != sent %d + shed %d",
			snap.BlocksOffered, snap.BlocksSent, snap.BlocksShed)
	}
}

// TestServeSlowAndFailingClients is the loss-injection harness of the
// serving layer: over in-memory pipes, two healthy clients fetch while one
// client stalls mid-transfer (stops reading without closing) and one
// disconnects abruptly. The healthy fetches must finish, the stalled
// session must be dropped by the write-deadline budget with its queue shed,
// and the counters must account for every block.
func TestServeSlowAndFailingClients(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, 2*p.SegmentSize()-17, 7)
	srv, err := NewServer(media, p,
		WithQueueDepth(8),
		WithWriteDeadline(50*time.Millisecond),
		WithWriteRetries(1),
		WithServerSeed(1234))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	var wg sync.WaitGroup
	healthyErr := make([]error, 2)
	for i := range healthyErr {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := l.Dial()
			payload, _, err := Fetch(context.Background(), conn)
			if err != nil {
				healthyErr[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				healthyErr[i] = errors.New("payload differs")
			}
		}(i)
	}

	// The staller: reads the handshake, then stops reading entirely. Over a
	// synchronous pipe the server's first record write blocks immediately,
	// so the write-deadline budget (50ms + one retry) must fire, the session
	// must be dropped with its queue shed, and the connection closed.
	stallerDropped := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn := l.Dial()
		defer conn.Close()
		hdr := make([]byte, protoHeaderLen)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.Errorf("staller handshake: %v", err)
			return
		}
		// Stall well past the deadline budget without consuming a byte.
		time.Sleep(500 * time.Millisecond)
		// The server must have hung up by now; confirm without a fresh
		// record ever arriving.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		one := make([]byte, 1)
		for {
			if _, err := conn.Read(one); err != nil {
				close(stallerDropped)
				return
			}
		}
	}()

	// The quitter: reads the handshake and disconnects immediately.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn := l.Dial()
		hdr := make([]byte, protoHeaderLen)
		io.ReadFull(conn, hdr)
		conn.Close()
	}()

	wg.Wait()
	for i, err := range healthyErr {
		if err != nil {
			t.Fatalf("healthy client %d: %v", i, err)
		}
	}
	select {
	case <-stallerDropped:
	default:
		t.Fatal("stalled session was not dropped by the deadline budget")
	}

	srv.Shutdown()
	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	snap := srv.Snapshot()
	checkAccounting(t, snap)
	if snap.SessionsTotal != 4 {
		t.Fatalf("sessions_total = %d, want 4", snap.SessionsTotal)
	}
	if snap.BlocksShed == 0 {
		t.Fatal("no blocks shed despite a stalled and a failed client")
	}
	if snap.BlocksSent == 0 {
		t.Fatal("no blocks sent")
	}
}

// TestServeAcceptance64Clients is the acceptance harness: a 64-client
// loopback serve with 2 deliberately slow readers. The 62 healthy clients
// must complete, no single encoder stall may exceed 100ms, and the snapshot
// must account for every block sent or shed.
func TestServeAcceptance64Clients(t *testing.T) {
	if testing.Short() {
		t.Skip("64-client serve in -short mode")
	}
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, 2*p.SegmentSize(), 8)
	srv, err := NewServer(media, p,
		WithQueueDepth(32),
		WithWriteDeadline(200*time.Millisecond),
		WithWriteRetries(1))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	const (
		healthy = 62
		slow    = 2
	)
	var wg sync.WaitGroup
	errs := make([]error, healthy)
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			payload, _, err := Fetch(ctx, conn)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				errs[i] = fmt.Errorf("client %d: payload differs", i)
			}
		}(i)
	}
	// Slow readers: connect, read the handshake, then go silent. Their TCP
	// buffers fill, the write deadline fires, and the sessions are dropped
	// without ever stalling the shared encoder.
	slowConns := make([]net.Conn, 0, slow)
	for i := 0; i < slow; i++ {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		slowConns = append(slowConns, conn)
		hdr := make([]byte, protoHeaderLen)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.Fatalf("slow reader %d handshake: %v", i, err)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("healthy client %d: %v", i, err)
		}
	}
	for _, conn := range slowConns {
		conn.Close()
	}
	srv.Shutdown()
	l.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	snap := srv.Snapshot()
	checkAccounting(t, snap)
	if snap.SessionsTotal != healthy+slow {
		t.Fatalf("sessions_total = %d, want %d", snap.SessionsTotal, healthy+slow)
	}
	if snap.MaxEncodeStall > 100*time.Millisecond {
		t.Fatalf("encoder stalled %v (> 100ms) with healthy clients present", snap.MaxEncodeStall)
	}
	if snap.BlocksSent == 0 || snap.BytesSent == 0 {
		t.Fatalf("no traffic recorded: %+v", snap)
	}
}

// TestServeSessionCap: connections beyond WithMaxSessions are rejected and
// counted, while the admitted session still completes.
func TestServeSessionCap(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 128}
	media := testMedia(t, p.SegmentSize(), 9)
	srv, err := NewServer(media, p, WithMaxSessions(1), WithWriteDeadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	// First client holds its session open mid-fetch while the second tries
	// to join and must be rejected at the door.
	first := l.Dial()
	hdr := make([]byte, protoHeaderLen)
	if _, err := io.ReadFull(first, hdr); err != nil {
		t.Fatal(err)
	}
	// The session joins the fan-out set just after its handshake write
	// returns; wait for the registration before probing the cap.
	for deadline := time.Now().Add(5 * time.Second); srv.Snapshot().Sessions == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first session never registered")
		}
		time.Sleep(time.Millisecond)
	}

	second := l.Dial()
	if _, _, err := Fetch(context.Background(), second); !errors.Is(err, ErrAdmissionBusy) {
		t.Fatalf("over-cap fetch: %v, want ErrAdmissionBusy", err)
	}
	first.Close()

	srv.Shutdown()
	l.Close()
	<-serveDone
	snap := srv.Snapshot()
	if snap.SessionsRejected != 1 {
		t.Fatalf("sessions_rejected = %d, want 1", snap.SessionsRejected)
	}
	if snap.SessionsTotal != 1 {
		t.Fatalf("sessions_total = %d, want 1", snap.SessionsTotal)
	}
}

// TestServeAfterShutdown: Serve on a shut-down server fails fast with
// ErrServerClosed.
func TestServeAfterShutdown(t *testing.T) {
	p := rlnc.Params{BlockCount: 4, BlockSize: 64}
	srv, err := NewServer(testMedia(t, p.SegmentSize(), 10), p)
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	l := newPipeListener()
	defer l.Close()
	if err := srv.Serve(context.Background(), l); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Shutdown: %v, want ErrServerClosed", err)
	}
}

// TestServeContextCancel: cancelling the Serve context shuts the server
// down and live fetches fail instead of hanging.
func TestServeContextCancel(t *testing.T) {
	p := rlnc.Params{BlockCount: 64, BlockSize: 4096}
	media := testMedia(t, 4*p.SegmentSize(), 11)
	srv, err := NewServer(media, p, WithWriteDeadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()

	fetchDone := make(chan error, 1)
	go func() {
		_, _, err := Fetch(context.Background(), l.Dial())
		fetchDone <- err
	}()
	// Let the session start moving, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-serveDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Serve: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	select {
	case err := <-fetchDone:
		if err == nil {
			t.Fatal("fetch succeeded against a cancelled server on a huge object")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not unblock after server cancel")
	}
}

// TestFetchSentinels: the client-side protocol failures expose errors.Is
// sentinels.
func TestFetchSentinels(t *testing.T) {
	// Implausible record length after a valid header.
	client1, server1 := net.Pipe()
	go func() {
		writeSessionHeader(server1, sessionHeader{
			params:   rlnc.Params{BlockCount: 4, BlockSize: 64},
			segments: 1,
			length:   256,
		})
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], maxRecordLen+1)
		server1.Write(lenBuf[:])
		server1.Close()
	}()
	if _, _, err := Fetch(context.Background(), client1); !errors.Is(err, ErrRecordLength) {
		t.Fatalf("err = %v, want ErrRecordLength", err)
	}

	// Stream cut before full rank.
	client2, server2 := net.Pipe()
	go func() {
		writeSessionHeader(server2, sessionHeader{
			params:   rlnc.Params{BlockCount: 4, BlockSize: 64},
			segments: 1,
			length:   256,
		})
		server2.Close()
	}()
	if _, _, err := Fetch(context.Background(), client2); !errors.Is(err, ErrStreamTruncated) {
		t.Fatalf("err = %v, want ErrStreamTruncated", err)
	}
}

// TestSnapshotDuringTraffic: Snapshot is safe and self-consistent while
// sessions are live, and per-session queue bounds are respected.
func TestSnapshotDuringTraffic(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 1024}
	media := testMedia(t, 2*p.SegmentSize(), 12)
	srv, err := NewServer(media, p, WithQueueDepth(4), WithWriteDeadline(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(context.Background(), l) }()

	// A raw client keeps the session pinned open: it reads the handshake and
	// then records one at a time, so the session stays live for exactly as
	// long as the test wants to observe it.
	conn := l.Dial()
	hdr := make([]byte, protoHeaderLen)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatal(err)
	}
	readRecord := func() {
		t.Helper()
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			t.Fatal(err)
		}
		rec := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(conn, rec); err != nil {
			t.Fatal(err)
		}
	}

	for deadline := time.Now().Add(5 * time.Second); srv.Snapshot().Sessions == 0; {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		readRecord()
		snap := srv.Snapshot()
		if len(snap.PerSession) != 1 {
			t.Fatalf("per-session snapshots = %d, want 1", len(snap.PerSession))
		}
		ss := snap.PerSession[0]
		if ss.QueueCap != 4 {
			t.Fatalf("queue cap = %d, want 4", ss.QueueCap)
		}
		if ss.QueueLen > ss.QueueCap {
			t.Fatalf("queue len %d exceeds cap %d", ss.QueueLen, ss.QueueCap)
		}
		if ss.Offered < ss.Sent+ss.Shed {
			t.Fatalf("session accounting: offered %d < sent %d + shed %d",
				ss.Offered, ss.Sent, ss.Shed)
		}
		if ss.ID == 0 || ss.Duration <= 0 {
			t.Fatalf("session identity not populated: %+v", ss)
		}
	}
	conn.Close()

	srv.Shutdown()
	l.Close()
	<-serveDone
	checkAccounting(t, srv.Snapshot())
}
