package netio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

// Serving-stage spans. Free when no obs sink is installed; with one, each
// records a latency sample per operation (not per byte): one handshake span
// per session, one queue-offer span per fanned-out record, one record-send
// span per wire write.
var (
	stageHandshake  = obs.StageOf("netio.handshake")
	stageQueueOffer = obs.StageOf("netio.queue_offer")
	stageRecordSend = obs.StageOf("netio.record_send")
)

// Serving errors.
var (
	// ErrServerClosed reports an operation on a server after Shutdown.
	ErrServerClosed = errors.New("netio: server closed")
	// ErrShortWrite reports a record write that could not be completed
	// within the session's deadline budget.
	ErrShortWrite = errors.New("netio: short record write")
)

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	queueDepth    int
	writeDeadline time.Duration
	writeRetries  int
	batchBlocks   int
	maxSessions   int
	workers       int
	seed          int64
	mode          WireMode
	pace          time.Duration
	metrics       *obs.Registry
}

// WithQueueDepth bounds each session's send queue to n coded-block records.
// When a client drains slower than the encoder produces, records beyond the
// bound are shed instead of stalling the shared encoder — RLNC makes the
// loss harmless, the peer only needs *enough* blocks, not specific ones.
func WithQueueDepth(n int) ServerOption {
	return func(c *serverConfig) { c.queueDepth = n }
}

// WithWriteDeadline bounds every record write to d. A write that misses the
// deadline is retried (resuming at the byte where it stopped) up to the
// configured retry count and the session is then dropped — slow clients cost
// bounded writer time, never unbounded blocking. Zero disables deadlines.
func WithWriteDeadline(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.writeDeadline = d }
}

// WithWriteRetries sets how many extra deadline windows a timed-out record
// write gets before the session is dropped (default 1: retry once, then
// drop).
func WithWriteRetries(n int) ServerOption {
	return func(c *serverConfig) { c.writeRetries = n }
}

// WithEncodeBatch sets how many coded blocks the pump generates per segment
// per round. Larger batches amortize encoder dispatch; smaller ones tighten
// the round-robin interleave across segments. The default adapts to the
// segment's block count.
func WithEncodeBatch(n int) ServerOption {
	return func(c *serverConfig) { c.batchBlocks = n }
}

// WithMaxSessions caps concurrent sessions; connections beyond the cap are
// closed immediately and counted in Snapshot.SessionsRejected. Zero (the
// default) means unlimited.
func WithMaxSessions(n int) ServerOption {
	return func(c *serverConfig) { c.maxSessions = n }
}

// WithServePace floors the interval between pump rounds at d, bounding the
// server's aggregate emission rate at batch-size records per d regardless of
// CPU headroom. It models a capacity-constrained origin uplink — the regime
// where a recoding relay tier multiplies effective serving capacity — and
// keeps capacity comparisons meaningful on machines where every tier is
// otherwise compute-bound. Zero (the default) leaves the pump unpaced.
func WithServePace(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.pace = d }
}

// WithEncoderWorkers sets the worker count of the shared parallel encoder
// the pump dispatches on (default: the SharedPool's worker count).
func WithEncoderWorkers(n int) ServerOption {
	return func(c *serverConfig) { c.workers = n }
}

// WithServerSeed fixes the base seed of the pump's coefficient stream, making
// the served block sequence reproducible.
func WithServerSeed(seed int64) ServerOption {
	return func(c *serverConfig) { c.seed = seed }
}

// WithWireMode sets the session coding discipline the server declares in
// every handshake (default ModeDense). In ModeSystematic the pump cycles each
// segment through the systematic + GF(2) XOR repair + dense tail schedule of
// rlnc.SystematicEncoder, framing binary blocks in the compact XNC2 encoding;
// queueing, shedding, deadlines, and reconnect semantics are unchanged.
func WithWireMode(m WireMode) ServerOption {
	return func(c *serverConfig) { c.mode = m }
}

// WithMetricsRegistry registers the server's counters and session gauges
// into reg under the "netio" prefix, so the server scrapes alongside every
// other obs surface. Each registry admits one server: NewServer fails on a
// second registration with the same names.
func WithMetricsRegistry(reg *obs.Registry) ServerOption {
	return func(c *serverConfig) { c.metrics = reg }
}

// Server pushes coded blocks for one object to every connection.
//
// Two serving paths share the Server:
//
//   - The session path (Serve): one goroutine per accepted connection, all
//     fed from a single shared record-source pump. For a media-backed server
//     (NewServer) the source batch-encodes through a rlnc.ParallelEncoder on
//     the process-wide worker pool; a source server (NewSourceServer) pulls
//     records from any RecordSource — a mesh relay's recoders, a generator,
//     a replayed capture. The pump fans each framed record out to every
//     session's bounded queue without blocking; a full queue sheds the
//     record for that session only. Per-connection write deadlines with
//     retry-then-drop semantics bound the cost of a stuck peer.
//
//   - The one-shot path (ServeConn): the original single-connection blocking
//     push loop, kept for direct pipe/test use on media-backed servers only.
//     Deprecated: it encodes per connection and a slow peer stalls its
//     goroutine.
//
// Metrics for both paths accumulate in the same counters, exposed via
// Snapshot.
type Server struct {
	src RecordSource
	cfg serverConfig

	// object is non-nil only for media-backed servers (NewServer); it backs
	// the deprecated per-connection ServeConn path.
	object *rlnc.Object

	counters         Counters
	sessionsTotal    obs.Counter
	sessionsRejected obs.Counter
	sessionSecs      atomic.Int64 // summed finished-session durations, in ns

	mu       sync.Mutex
	sessions map[*session]struct{}
	conns    map[net.Conn]struct{} // one-shot ServeConn connections
	closed   bool
	nextID   int64

	wake     chan struct{} // pump wake-up: a session arrived
	consumed chan struct{} // pump wake-up: a session drained a record
	stop     chan struct{} // closed by Shutdown
	pumpOnce sync.Once
	pumpDone chan struct{}
	wg       sync.WaitGroup
}

// NewServer builds a media-backed server over media split at p: the server
// encodes fresh coded blocks from the source segments.
func NewServer(media []byte, p rlnc.Params, opts ...ServerOption) (*Server, error) {
	obj, err := rlnc.Split(media, p)
	if err != nil {
		return nil, err
	}
	cfg, err := buildServerConfig(p.BlockCount, opts)
	if err != nil {
		return nil, err
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = rlnc.SharedPool().Workers()
	}
	penc, err := rlnc.NewParallelEncoder(workers, rlnc.FullBlock)
	if err != nil {
		return nil, err
	}
	s, err := newServer(newObjectSource(obj, cfg.mode, penc, cfg.seed), cfg)
	if err != nil {
		return nil, err
	}
	s.object = obj
	return s, nil
}

// NewSourceServer builds a server over an arbitrary RecordSource: the
// serving half of a mesh relay, which recodes upstream blocks instead of
// encoding source media it does not have. The session machinery — pump
// fan-out, bounded queues with shed-don't-stall, write deadlines, session
// caps, metrics — is identical to a media-backed server; only where records
// come from differs. The handshake is declared by src.Info(), so the
// WithWireMode option is ignored here; WithEncodeBatch sizes the per-round
// Records request. The deprecated ServeConn path is unavailable (it needs
// source media) and closes the connection immediately.
func NewSourceServer(src RecordSource, opts ...ServerOption) (*Server, error) {
	info := src.Info()
	if err := info.Validate(); err != nil {
		return nil, fmt.Errorf("netio: bad source session info: %w", err)
	}
	cfg, err := buildServerConfig(info.Params.BlockCount, opts)
	if err != nil {
		return nil, err
	}
	cfg.mode = info.Mode
	return newServer(src, cfg)
}

// buildServerConfig applies options over the defaults, deriving the batch
// default from the generation size.
func buildServerConfig(blockCount int, opts []ServerOption) (serverConfig, error) {
	cfg := serverConfig{
		queueDepth:    64,
		writeDeadline: 5 * time.Second,
		writeRetries:  1,
		seed:          1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 1
	}
	if cfg.batchBlocks <= 0 {
		// Default: a quarter generation per round, so late-joining clients
		// wait at most a short interleave for every segment, but at least 4
		// to amortize dispatch.
		cfg.batchBlocks = max(4, blockCount/4)
	}
	if cfg.mode > ModeSystematic {
		return cfg, fmt.Errorf("netio: unknown wire mode %d", cfg.mode)
	}
	return cfg, nil
}

func newServer(src RecordSource, cfg serverConfig) (*Server, error) {
	s := &Server{
		src:      src,
		cfg:      cfg,
		sessions: make(map[*session]struct{}),
		conns:    make(map[net.Conn]struct{}),
		wake:     make(chan struct{}, 1),
		consumed: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	if cfg.metrics != nil {
		if err := s.registerMetrics(cfg.metrics); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// registerMetrics attaches the server's observability surface to reg: the
// shared traffic counters plus the session ledger, all under the "netio"
// prefix.
func (s *Server) registerMetrics(reg *obs.Registry) error {
	if err := s.counters.Register(reg, "netio"); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.sessions_total",
		"sessions accepted since start", &s.sessionsTotal); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.sessions_rejected",
		"connections refused by the session cap", &s.sessionsRejected); err != nil {
		return err
	}
	if err := reg.RegisterFunc("netio.sessions_live",
		"sessions currently connected", func() float64 {
			s.mu.Lock()
			n := len(s.sessions)
			s.mu.Unlock()
			return float64(n)
		}); err != nil {
		return err
	}
	return reg.RegisterFunc("netio.session_seconds",
		"summed wall-clock duration of finished sessions", func() float64 {
			return time.Duration(s.sessionSecs.Load()).Seconds()
		})
}

// Segments returns the number of media segments served.
func (s *Server) Segments() int { return s.src.Info().Segments }

// Mode returns the session coding discipline the server declares in every
// handshake.
func (s *Server) Mode() WireMode { return s.src.Info().Mode }

// Info returns the session handshake the server declares.
func (s *Server) Info() SessionInfo { return s.src.Info() }

// session is one connected client on the session path.
type session struct {
	id      int64
	conn    net.Conn
	q       chan []byte
	started time.Time

	offered atomic.Int64
	sent    atomic.Int64
	shed    atomic.Int64
	bytes   atomic.Int64

	mu       sync.Mutex
	draining bool // no further offers may enter q

	stop chan struct{} // closed on server shutdown
}

// offer hands one framed record to the session without blocking. It reports
// whether the record was enqueued; a full queue or a draining session sheds
// it instead.
func (ss *session) offer(rec []byte, agg *Counters) bool {
	ss.offered.Add(1)
	agg.AddOffered(1)
	ss.mu.Lock()
	if ss.draining {
		ss.mu.Unlock()
		ss.shed.Add(1)
		agg.AddShed(1)
		return false
	}
	ok := false
	select {
	case ss.q <- rec:
		ok = true
	default:
	}
	ss.mu.Unlock()
	if !ok {
		ss.shed.Add(1)
		agg.AddShed(1)
	}
	return ok
}

// drain marks the session closed to offers and sheds whatever is still
// queued, so offered == sent + shed holds exactly at teardown.
func (ss *session) drain(agg *Counters) {
	ss.mu.Lock()
	ss.draining = true
	ss.mu.Unlock()
	for {
		select {
		case <-ss.q:
			ss.shed.Add(1)
			agg.AddShed(1)
		default:
			return
		}
	}
}

// Serve accepts connections from l until ctx is cancelled, the listener
// fails, or the server is shut down. Every accepted connection becomes a
// session fed from the shared encoder pump. It returns nil after a clean
// Shutdown and ctx.Err() after cancellation (which also shuts the server
// down).
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.mu.Unlock()
	s.startPump()

	unhook := context.AfterFunc(ctx, func() { l.Close() })
	defer unhook()

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				s.Shutdown()
				return ctx.Err()
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.startSession(conn) {
			conn.Close()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Session cap: reject and keep accepting.
		}
	}
}

// startSession registers a session for conn and spawns its writer. It
// reports false when the server is closed or at its session cap.
func (s *Server) startSession(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.cfg.maxSessions > 0 && len(s.sessions) >= s.cfg.maxSessions {
		s.mu.Unlock()
		s.sessionsRejected.Add(1)
		return false
	}
	s.nextID++
	ss := &session{
		id:      s.nextID,
		conn:    conn,
		q:       make(chan []byte, s.cfg.queueDepth),
		started: time.Now(),
		stop:    s.stop,
	}
	s.wg.Add(1)
	s.mu.Unlock()

	s.sessionsTotal.Add(1)
	go s.runSession(ss)
	return true
}

// runSession writes the handshake, joins the fan-out set, and streams queued
// records until the peer hangs up, a write fails its deadline budget, or the
// server shuts down.
func (s *Server) runSession(ss *session) {
	defer s.wg.Done()
	defer ss.conn.Close()

	h := s.src.Info().header()
	// The handshake gets one deadline window and no retry: a peer that
	// connects and never reads must not pin the session goroutine.
	if s.cfg.writeDeadline > 0 {
		ss.conn.SetWriteDeadline(time.Now().Add(s.cfg.writeDeadline))
	}
	hsp := stageHandshake.Start()
	err := writeSessionHeader(ss.conn, h)
	hsp.End()
	if err == nil {
		s.mu.Lock()
		joined := !s.closed
		if joined {
			s.sessions[ss] = struct{}{}
		}
		s.mu.Unlock()
		if joined {
			s.signalWake()
			s.writeLoop(ss)
			s.mu.Lock()
			delete(s.sessions, ss)
			s.mu.Unlock()
		}
	}
	ss.drain(&s.counters)
	s.sessionSecs.Add(int64(time.Since(ss.started)))
}

// writeLoop drains the session queue onto the connection.
func (s *Server) writeLoop(ss *session) {
	for {
		select {
		case rec := <-ss.q:
			s.signalConsumed()
			wsp := stageRecordSend.Start()
			err := s.writeRecord(ss, rec)
			wsp.End()
			if err != nil {
				ss.shed.Add(1)
				s.counters.AddShed(1)
				return
			}
			ss.sent.Add(1)
			ss.bytes.Add(int64(len(rec)))
			s.counters.AddSent(1, int64(len(rec)))
		case <-ss.stop:
			return
		}
	}
}

// writeRecord writes one framed record under the session's write deadline,
// resuming partial writes. A write that times out gets writeRetries extra
// deadline windows (retry-then-drop); any other error, or exhausting the
// budget, fails the session.
func (s *Server) writeRecord(ss *session, rec []byte) error {
	retries := s.cfg.writeRetries
	off := 0
	for off < len(rec) {
		if s.cfg.writeDeadline > 0 {
			ss.conn.SetWriteDeadline(time.Now().Add(s.cfg.writeDeadline))
		}
		n, err := ss.conn.Write(rec[off:])
		off += n
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && retries > 0 {
			retries--
			continue
		}
		if off > 0 && off < len(rec) {
			return fmt.Errorf("%w: %d of %d bytes: %v", ErrShortWrite, off, len(rec), err)
		}
		return err
	}
	return nil
}

func (s *Server) signalWake() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Server) signalConsumed() {
	select {
	case s.consumed <- struct{}{}:
	default:
	}
}

func (s *Server) startPump() {
	s.pumpOnce.Do(func() { go s.pump() })
}

// pump is the shared record loop: it pulls a batch from the source for each
// segment in turn and fans the framed records out to every session's queue
// without ever blocking on a client. When no session can take a block
// (every queue full) the pump parks briefly and the wait is charged to the
// encode-stall counters; when no session exists at all it sleeps until one
// arrives, with nothing charged. A dry source (a relay whose recoders have
// no rank yet) parks the pump briefly without charging a stall.
func (s *Server) pump() {
	defer close(s.pumpDone)
	segments := s.src.Info().Segments
	segIdx := 0
	live := make([]*session, 0, 16)
	for {
		select {
		case <-s.stop:
			return
		default:
		}

		s.mu.Lock()
		live = live[:0]
		for ss := range s.sessions {
			live = append(live, ss)
		}
		s.mu.Unlock()
		if len(live) == 0 {
			select {
			case <-s.wake:
			case <-s.stop:
				return
			}
			continue
		}

		recs := s.src.Records(segIdx, s.cfg.batchBlocks)
		segIdx = (segIdx + 1) % segments
		if len(recs) == 0 {
			// Nothing to say for this segment yet. Park briefly — this is
			// source starvation, not client backpressure, so no stall is
			// charged.
			select {
			case <-s.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		s.counters.AddEncoded(int64(len(recs)))

		delivered := false
		for _, rec := range recs {
			osp := stageQueueOffer.Start()
			for _, ss := range live {
				if ss.offer(rec, &s.counters) {
					delivered = true
				}
			}
			osp.End()
		}
		if !delivered {
			// Backpressure: every queue is full. Park until a writer drains
			// a record (or briefly, as a backstop) and charge the wait as
			// encoder stall time.
			t0 := time.Now()
			select {
			case <-s.consumed:
			case <-s.stop:
				s.counters.AddEncodeStall(time.Since(t0))
				return
			case <-time.After(2 * time.Millisecond):
			}
			s.counters.AddEncodeStall(time.Since(t0))
		}
		if s.cfg.pace > 0 {
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.pace):
			}
		}
	}
}

// frameRecord marshals a coded block with its length prefix.
func frameRecord(b *rlnc.CodedBlock) ([]byte, error) {
	body, err := b.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return frameBody(body), nil
}

// frameSystematicRecord marshals a coded block in the systematic session's
// per-block encoding: the compact XNC2 GF(2) format for binary blocks
// (systematic sweep and XOR repair), XNC1 for the dense tail.
func frameSystematicRecord(b *rlnc.CodedBlock) ([]byte, error) {
	var body []byte
	var err error
	if b.IsBinary() {
		body, err = b.MarshalBinaryXor()
	} else {
		body, err = b.MarshalBinary()
	}
	if err != nil {
		return nil, err
	}
	return frameBody(body), nil
}

func frameBody(body []byte) []byte {
	rec := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(rec, uint32(len(body)))
	copy(rec[4:], body)
	return rec
}

// Snapshot copies the server's aggregate counters and the state of every
// live session.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{
		Mode:             s.Mode(),
		SessionsTotal:    s.sessionsTotal.Load(),
		SessionsRejected: s.sessionsRejected.Load(),
		SessionSeconds:   time.Duration(s.sessionSecs.Load()).Seconds(),
		CounterView:      s.counters.View(),
	}
	s.mu.Lock()
	snap.Sessions = len(s.sessions)
	snap.PerSession = make([]SessionSnapshot, 0, len(s.sessions))
	for ss := range s.sessions {
		snap.PerSession = append(snap.PerSession, SessionSnapshot{
			ID:       ss.id,
			Addr:     remoteAddr(ss.conn),
			QueueLen: len(ss.q),
			QueueCap: cap(ss.q),
			Offered:  ss.offered.Load(),
			Sent:     ss.sent.Load(),
			Shed:     ss.shed.Load(),
			Bytes:    ss.bytes.Load(),
			Duration: time.Since(ss.started),
		})
	}
	s.mu.Unlock()
	return snap
}

func remoteAddr(c net.Conn) string {
	if a := c.RemoteAddr(); a != nil {
		return a.String()
	}
	return ""
}

// Shutdown stops accepting, closes every live connection and waits for the
// sessions and the pump to exit. The caller closes the listener.
func (s *Server) Shutdown() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	for ss := range s.sessions {
		ss.conn.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.stop)
	}
	// Stop the pump even if Serve was never called (startPump not run).
	s.pumpOnce.Do(func() { close(s.pumpDone) })
	<-s.pumpDone
	s.wg.Wait()
}

// ServeConn streams to a single connection until the peer closes (the
// normal end: the client has decoded) or a write fails. Each connection
// gets its own coefficient stream and its own encoder.
//
// Deprecated: this is the one-shot single-connection path kept for direct
// use over pipes and for backward compatibility; a slow peer blocks its
// goroutine indefinitely. Servers should use Serve, which multiplexes the
// shared encoder with backpressure and deadlines. Traffic still lands in
// the same counters.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()

	if s.object == nil {
		// Source-backed servers (NewSourceServer) have no media to encode
		// per connection; only the pump path serves them.
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.nextID++
	seed := s.nextID*int64(0x5851F42D4C957F2D) + 1
	s.mu.Unlock()
	s.sessionsTotal.Add(1)
	start := time.Now()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.sessionSecs.Add(int64(time.Since(start)))
	}()

	h := sessionHeader{
		params:   s.object.Params,
		segments: len(s.object.Segments),
		length:   int64(s.object.Length),
		mode:     s.cfg.mode,
	}
	if err := writeSessionHeader(conn, h); err != nil {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	next := make([]func() ([]byte, error), len(s.object.Segments))
	if s.cfg.mode == ModeSystematic {
		for i, seg := range s.object.Segments {
			se := rlnc.NewSystematicEncoder(seg, rng)
			next[i] = func() ([]byte, error) { return frameSystematicRecord(se.Block()) }
		}
	} else {
		for i, seg := range s.object.Segments {
			enc := rlnc.NewEncoder(seg, rng)
			next[i] = func() ([]byte, error) { return frameRecord(enc.NextBlock()) }
		}
	}
	for i := 0; ; i = (i + 1) % len(next) {
		rec, err := next[i]()
		if err != nil {
			return
		}
		s.counters.AddEncoded(1)
		s.counters.AddOffered(1)
		if _, err := conn.Write(rec); err != nil {
			s.counters.AddShed(1)
			return // client hung up: done
		}
		s.counters.AddSent(1, int64(len(rec)))
	}
}
