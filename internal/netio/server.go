package netio

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"extremenc/internal/obs"
	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

// Serving-stage spans. Free when no obs sink is installed; with one, each
// records a latency sample per operation (not per byte): one handshake span
// per session, one queue-offer span per fan-out operation (per record in
// FanoutPerRecord, per pump round in FanoutAmortized), one record-send span
// per wire flush (per record in FanoutPerRecord, per vectored batch in
// FanoutAmortized).
var (
	stageHandshake  = obs.StageOf("netio.handshake")
	stageQueueOffer = obs.StageOf("netio.queue_offer")
	stageRecordSend = obs.StageOf("netio.record_send")
)

// Serving errors.
var (
	// ErrServerClosed reports an operation on a server after Shutdown.
	ErrServerClosed = errors.New("netio: server closed")
	// ErrShortWrite reports a record write that could not be completed
	// within the session's deadline budget.
	ErrShortWrite = errors.New("netio: short record write")
)

// writerBatch caps how many queued records one vectored flush covers in the
// amortized fan-out rung; FanoutPerRecord always flushes one.
const writerBatch = 16

// Server pushes coded blocks for one object to every connection. Sessions
// are partitioned across one or more encoder-pump shards: each shard owns a
// record source, a pump goroutine, and its sessions' queues, and new
// sessions join the least-loaded shard. Within a shard the pump frames each
// record once and fans the same refcounted buffer out to every session's
// bounded queue without blocking; a full queue sheds the record for that
// session only, and per-connection write deadlines with retry-then-drop
// semantics bound the cost of a stuck peer. Metrics accumulate both in the
// aggregate counters and per shard, exposed via Snapshot.
type Server struct {
	cfg  ServerConfig // normalized
	info SessionInfo

	frames *framePool
	shards []*pumpShard

	counters         Counters
	sessionsTotal    obs.Counter
	sessionsRejected obs.Counter
	sessionSecs      atomic.Int64 // summed finished-session durations, in ns

	// Admission and degradation surface: decisions written to rejected
	// connections, the brownout ladder position, and the sources that can
	// thin their schedule at BrownoutLean.
	admissionBusy       obs.Counter
	admissionRedirected obs.Counter
	brownoutRung        atomic.Int32 // BrownoutRung, written by the controller
	brownoutTransitions obs.Counter
	degradable          []DegradableSource

	mu        sync.Mutex
	joined    int // sessions currently past handshake, across all shards
	closed    bool
	draining  bool
	drainAddr string        // REDIRECT target while draining ("" → BUSY)
	drainDone chan struct{} // closed when the active Drain finishes
	listeners map[net.Listener]struct{}
	nextID    int64

	stop     chan struct{} // closed by Shutdown
	pumpOnce sync.Once
	pumpWG   sync.WaitGroup
	wg       sync.WaitGroup // session goroutines
	auxWG    sync.WaitGroup // decision-writer goroutines

	// Distributed tracing (tracectx.go). traced is latched at construction —
	// cfg.TraceNode set AND the process-global recorder enabled — so every
	// session of one server negotiates the same framing. rootSpan opens at
	// construction and closes in Shutdown; pump rounds and flushes parent
	// under it, and its (traceID, ID) pair is the XNCT context every client
	// receives.
	traced   bool
	traceID  trace.TraceID
	rootSpan trace.Span
}

// pumpShard is one encoder pump and the sessions it feeds. Every shard runs
// the same loop as the original single shared pump; sharding multiplies the
// number of independent fan-out loops, and the per-shard counters make the
// offered == sent + shed ledger checkable shard by shard.
type pumpShard struct {
	id     int
	s      *Server
	src    RecordSource
	pooled bool // src allocates its frames from s.frames

	mu       sync.Mutex
	sessions map[*session]struct{}

	wake     chan struct{} // a session arrived
	consumed chan struct{} // a session drained a record

	c shardCounters
}

// shardCounters is a shard's slice of the traffic ledger, kept as plain
// atomics (the obs-registered aggregate counters stay server-wide so metric
// cardinality does not scale with the shard count).
type shardCounters struct {
	encoded, offered, sent, shed, bytes atomic.Int64
	stallNs, maxStallNs                 atomic.Int64
}

func (c *shardCounters) addStall(d time.Duration) {
	ns := d.Nanoseconds()
	c.stallNs.Add(ns)
	for {
		cur := c.maxStallNs.Load()
		if ns <= cur || c.maxStallNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func (c *shardCounters) view() CounterView {
	return CounterView{
		BlocksEncoded:  c.encoded.Load(),
		BlocksOffered:  c.offered.Load(),
		BlocksSent:     c.sent.Load(),
		BlocksShed:     c.shed.Load(),
		BytesSent:      c.bytes.Load(),
		EncodeStall:    time.Duration(c.stallNs.Load()),
		MaxEncodeStall: time.Duration(c.maxStallNs.Load()),
	}
}

// NewServer builds a media-backed server over media split at p: the server
// encodes fresh coded blocks from the source segments.
func NewServer(media []byte, p rlnc.Params, opts ...ServerOption) (*Server, error) {
	cfg := DefaultServerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewServerFromConfig(media, p, cfg)
}

// NewServerFromConfig is NewServer with a literal configuration; see
// ServerConfig for the zero-value semantics.
func NewServerFromConfig(media []byte, p rlnc.Params, cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	obj, err := rlnc.Split(media, p)
	if err != nil {
		return nil, err
	}
	cfg = cfg.normalized(p.BlockCount)
	pool := &framePool{}
	srcs := make([]RecordSource, cfg.PumpShards)
	pooled := make([]bool, cfg.PumpShards)
	for i := range srcs {
		penc, err := rlnc.NewParallelEncoder(cfg.EncoderWorkers, rlnc.FullBlock)
		if err != nil {
			return nil, err
		}
		osrc := newObjectSource(obj, cfg.Mode, penc, shardSeed(cfg.Seed, i))
		osrc.alloc = pool.allocBuf
		srcs[i] = osrc
		pooled[i] = true
	}
	return newServer(srcs[0].Info(), cfg, pool, srcs, pooled)
}

// NewSourceServer builds a server over an arbitrary RecordSource: the
// serving half of a mesh relay, which recodes upstream blocks instead of
// encoding source media it does not have. The session machinery — pump
// fan-out, bounded queues with shed-don't-stall, write deadlines, session
// caps, metrics — is identical to a media-backed server; only where records
// come from differs. The handshake is declared by src.Info(), so the
// WithWireMode option is ignored here; WithEncodeBatch sizes the per-round
// Records request. With more than one pump shard, a source implementing
// ShardedRecordSource provides one sub-source per shard; any other source is
// shared behind a lock, serializing Records calls across the shards.
func NewSourceServer(src RecordSource, opts ...ServerOption) (*Server, error) {
	cfg := DefaultServerConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewSourceServerFromConfig(src, cfg)
}

// NewSourceServerFromConfig is NewSourceServer with a literal configuration.
func NewSourceServerFromConfig(src RecordSource, cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	info := src.Info()
	if err := info.Validate(); err != nil {
		return nil, fmt.Errorf("netio: bad source session info: %w", err)
	}
	cfg = cfg.normalized(info.Params.BlockCount)
	cfg.Mode = info.Mode
	srcs := make([]RecordSource, cfg.PumpShards)
	switch {
	case cfg.PumpShards == 1:
		srcs[0] = src
	default:
		if sh, ok := src.(ShardedRecordSource); ok {
			for i := range srcs {
				srcs[i] = sh.ShardSource(i, cfg.PumpShards)
			}
		} else {
			shared := &lockedSource{src: src}
			for i := range srcs {
				srcs[i] = shared
			}
		}
	}
	return newServer(info, cfg, &framePool{}, srcs, make([]bool, cfg.PumpShards))
}

// shardSeed derives shard i's coefficient-stream seed. Shard 0 keeps the
// base seed unchanged, so a single-shard server reproduces the historical
// block sequence exactly.
func shardSeed(seed int64, i int) int64 {
	const lane = int64(0x5851F42D4C957F2D) // odd multiplier: distinct lanes per shard
	return seed + int64(i)*lane
}

func newServer(info SessionInfo, cfg ServerConfig, pool *framePool, srcs []RecordSource, pooled []bool) (*Server, error) {
	s := &Server{
		cfg:       cfg,
		info:      info,
		frames:    pool,
		stop:      make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
	}
	s.shards = make([]*pumpShard, len(srcs))
	seen := make(map[DegradableSource]struct{})
	for i, src := range srcs {
		s.shards[i] = &pumpShard{
			id:       i,
			s:        s,
			src:      src,
			pooled:   pooled[i],
			sessions: make(map[*session]struct{}),
			wake:     make(chan struct{}, 1),
			consumed: make(chan struct{}, 1),
		}
		// Dedupe: a lockedSource shared across shards appears once.
		if deg, ok := src.(DegradableSource); ok {
			if _, dup := seen[deg]; !dup {
				seen[deg] = struct{}{}
				s.degradable = append(s.degradable, deg)
			}
		}
	}
	if cfg.Metrics != nil {
		if err := s.registerMetrics(cfg.Metrics); err != nil {
			return nil, err
		}
	}
	if cfg.TraceNode != "" && trace.Enabled() {
		s.traced = true
		s.traceID = cfg.TraceID
		if s.traceID == 0 {
			s.traceID = trace.NewTrace()
		}
		s.rootSpan = trace.Begin(cfg.TraceNode, "serve", s.traceID, cfg.TraceParent, -1)
	}
	return s, nil
}

// registerMetrics attaches the server's observability surface to reg: the
// shared traffic counters plus the session ledger, all under the "netio"
// prefix.
func (s *Server) registerMetrics(reg *obs.Registry) error {
	if err := s.counters.Register(reg, "netio"); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.sessions_total",
		"sessions accepted since start", &s.sessionsTotal); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.sessions_rejected",
		"connections refused by the session cap or brownout", &s.sessionsRejected); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.admission_busy",
		"BUSY admission decisions written to new connections", &s.admissionBusy); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.admission_redirected",
		"REDIRECT admission decisions written to new connections", &s.admissionRedirected); err != nil {
		return err
	}
	if err := reg.RegisterCounter("netio.brownout_transitions",
		"brownout ladder rung changes, both directions", &s.brownoutTransitions); err != nil {
		return err
	}
	if err := reg.RegisterFunc("netio.brownout_rung",
		"current brownout ladder rung (0 off, 1 paced, 2 lean, 3 reject)", func() float64 {
			return float64(s.brownoutRung.Load())
		}); err != nil {
		return err
	}
	if err := reg.RegisterFunc("netio.sessions_live",
		"sessions currently connected", func() float64 {
			s.mu.Lock()
			n := s.joined
			s.mu.Unlock()
			return float64(n)
		}); err != nil {
		return err
	}
	if err := reg.RegisterFunc("netio.pump_shards",
		"independent encoder pumps serving sessions", func() float64 {
			return float64(len(s.shards))
		}); err != nil {
		return err
	}
	return reg.RegisterFunc("netio.session_seconds",
		"summed wall-clock duration of finished sessions", func() float64 {
			return time.Duration(s.sessionSecs.Load()).Seconds()
		})
}

// Segments returns the number of media segments served.
func (s *Server) Segments() int { return s.info.Segments }

// Mode returns the session coding discipline the server declares in every
// handshake.
func (s *Server) Mode() WireMode { return s.info.Mode }

// Info returns the session handshake the server declares.
func (s *Server) Info() SessionInfo { return s.info }

// Shards returns the number of encoder-pump shards.
func (s *Server) Shards() int { return len(s.shards) }

// session is one connected client.
type session struct {
	id      int64
	conn    net.Conn
	shard   *pumpShard // set at join; nil for sessions that never joined
	q       *frameQueue
	started time.Time

	offered atomic.Int64
	sent    atomic.Int64
	shed    atomic.Int64
	bytes   atomic.Int64

	stop chan struct{} // closed on server shutdown
}

// Serve accepts connections from l until ctx is cancelled, the listener
// fails, or the server is shut down. Every accepted connection becomes a
// session fed from a shard's encoder pump. It returns nil after a clean
// Shutdown and ctx.Err() after cancellation (which also shuts the server
// down).
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	// Register the listener so Shutdown (and therefore Drain) can unblock
	// the accept loop; the historical contract that the caller also closes
	// the listener still holds — a double close is harmless.
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	s.startPumps()

	unhook := context.AfterFunc(ctx, func() { l.Close() })
	defer unhook()

	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				s.Shutdown()
				return ctx.Err()
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.startSession(conn) {
			conn.Close()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Unreachable today (every live-server reject writes a
			// decision instead), kept as the accept-loop backstop.
		}
	}
}

// startSession decides admission for conn: an admitted connection gets a
// session goroutine; a rejected one (session cap, brownout shed, drain) gets
// a short-lived decision writer that answers BUSY or REDIRECT and closes it.
// It reports false only when the server is closed — the caller then owns the
// connection.
func (s *Server) startSession(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.draining {
		d := admissionDecision{code: admissionRedirect, addr: s.drainAddr}
		if d.addr == "" {
			d = admissionDecision{code: admissionBusy, retryAfter: s.cfg.RetryAfter}
		}
		s.rejectSession(conn, d)
		return true
	}
	atCap := s.cfg.MaxSessions > 0 && s.joined >= s.cfg.MaxSessions
	if atCap || BrownoutRung(s.brownoutRung.Load()) >= BrownoutReject {
		s.sessionsRejected.Add(1)
		s.rejectSession(conn, admissionDecision{code: admissionBusy, retryAfter: s.cfg.RetryAfter})
		return true
	}
	s.nextID++
	ss := &session{
		id:      s.nextID,
		conn:    conn,
		q:       newFrameQueue(s.cfg.QueueDepth),
		started: time.Now(),
		stop:    s.stop,
	}
	s.wg.Add(1)
	s.mu.Unlock()

	s.sessionsTotal.Add(1)
	trace.Emit(trace.KindAdmission, s.traceNodeName(), "accept", -1, ss.id)
	go s.runSession(ss)
	return true
}

// traceNodeName labels flight-recorder events from this server even when the
// session framing is untraced.
func (s *Server) traceNodeName() string {
	if s.cfg.TraceNode != "" {
		return s.cfg.TraceNode
	}
	return "netio"
}

// rejectSession hands conn to a decision-writer goroutine and releases s.mu,
// which the caller must hold: the auxWG.Add has to be ordered before
// Shutdown's closed flip (also under s.mu) so Shutdown's auxWG.Wait covers
// every writer.
func (s *Server) rejectSession(conn net.Conn, d admissionDecision) {
	switch d.code {
	case admissionBusy:
		s.admissionBusy.Add(1)
		trace.Emit(trace.KindAdmission, s.traceNodeName(), "busy", -1, d.retryAfter.Milliseconds())
	case admissionRedirect:
		s.admissionRedirected.Add(1)
		trace.Emit(trace.KindAdmission, s.traceNodeName(), "redirect:"+d.addr, -1, 0)
	}
	s.auxWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.auxWG.Done()
		defer conn.Close()
		if s.cfg.WriteDeadline > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteDeadline))
		}
		writeDecision(conn, d) //nolint:errcheck — best effort; the peer may already be gone
	}()
}

// runSession writes the handshake, joins the least-loaded shard's fan-out
// set, and streams queued records until the peer hangs up, a write fails its
// deadline budget, or the server shuts down.
func (s *Server) runSession(ss *session) {
	defer s.wg.Done()
	defer ss.conn.Close()

	h := s.info.header()
	// The handshake gets one deadline window and no retry: a peer that
	// connects and never reads must not pin the session goroutine.
	if s.cfg.WriteDeadline > 0 {
		ss.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteDeadline))
	}
	hsp := stageHandshake.Start()
	var err error
	if s.traced {
		// One write covers header and trace context so a slow peer cannot
		// split the handshake across deadline windows.
		buf := appendSessionHeader(make([]byte, 0, protoHeaderLen+traceFixedLen+traceCtxMax+traceCRCLen), h, hsFlagTrace)
		buf = appendTraceContext(buf, traceContext{trace: s.traceID, root: s.rootSpan.ID()})
		_, err = ss.conn.Write(buf)
	} else {
		err = writeSessionHeader(ss.conn, h)
	}
	hsp.End()
	if err == nil {
		s.mu.Lock()
		joined := !s.closed
		if joined {
			sh := s.leastLoadedShard()
			ss.shard = sh
			sh.mu.Lock()
			sh.sessions[ss] = struct{}{}
			sh.mu.Unlock()
			s.joined++
		}
		s.mu.Unlock()
		if joined {
			ss.shard.signalWake()
			s.writeLoop(ss)
			s.mu.Lock()
			ss.shard.mu.Lock()
			delete(ss.shard.sessions, ss)
			ss.shard.mu.Unlock()
			s.joined--
			s.mu.Unlock()
		}
	}
	s.shedResidue(ss)
	s.sessionSecs.Add(int64(time.Since(ss.started)))
}

// leastLoadedShard picks the shard with the fewest sessions (ties go to the
// lowest id). Called with s.mu held.
func (s *Server) leastLoadedShard() *pumpShard {
	best := s.shards[0]
	if len(s.shards) == 1 {
		return best
	}
	best.mu.Lock()
	bestN := len(best.sessions)
	best.mu.Unlock()
	for _, sh := range s.shards[1:] {
		sh.mu.Lock()
		n := len(sh.sessions)
		sh.mu.Unlock()
		if n < bestN {
			best, bestN = sh, n
		}
	}
	return best
}

// shedResidue empties the session queue at teardown, shedding and releasing
// whatever never reached the wire so offered == sent + shed holds exactly.
func (s *Server) shedResidue(ss *session) {
	rest := ss.q.drain()
	if len(rest) == 0 {
		return
	}
	n := int64(len(rest))
	ss.shed.Add(n)
	s.counters.AddShed(n)
	if ss.shard != nil {
		ss.shard.c.shed.Add(n)
	}
	trace.Emit(trace.KindShed, s.traceNodeName(), "teardown", -1, n)
	for _, fr := range rest {
		fr.release()
	}
}

// writeLoop drains the session queue onto the connection, flushing up to
// writerBatch records per vectored write in the amortized rung and exactly
// one in the per-record rung.
func (s *Server) writeLoop(ss *session) {
	batchCap := 1
	if s.cfg.Fanout == FanoutAmortized {
		batchCap = min(writerBatch, s.cfg.QueueDepth)
	}
	batch := make([]*frameRef, batchCap)
	// Traced sessions interleave a 12-byte prelude buffer before every frame
	// in the vectored write, so bufs holds two entries per record.
	bufs := make(net.Buffers, 0, 2*batchCap)
	var preludes []byte
	if s.traced {
		preludes = make([]byte, batchCap*recordPreludeLen)
	}
	for {
		n := ss.q.popBatch(batch)
		if n == 0 {
			select {
			case <-ss.q.bell:
				continue
			case <-ss.stop:
				return
			}
		}
		ss.shard.signalConsumed()
		wsp := stageRecordSend.Start()
		var fsp trace.Span
		if s.traced {
			// The flush span parents under the first frame's round — batches
			// usually drain in round order, so the attribution error is at
			// most one round boundary per flush.
			fsp = trace.Begin(s.cfg.TraceNode, "flush", s.traceID, trace.SpanID(batch[0].round), batch[0].seg)
		}
		sentN, sentBytes, err := s.writeFrames(ss, batch[:n], &bufs, preludes)
		fsp.End()
		if s.traced {
			wsp.EndTraced(uint64(s.traceID), uint64(fsp.ID()))
		} else {
			wsp.End()
		}
		if sentN > 0 {
			ss.sent.Add(int64(sentN))
			ss.bytes.Add(sentBytes)
			s.counters.AddSent(int64(sentN), sentBytes)
			ss.shard.c.sent.Add(int64(sentN))
			ss.shard.c.bytes.Add(sentBytes)
		}
		if dropped := int64(n - sentN); dropped > 0 {
			ss.shed.Add(dropped)
			s.counters.AddShed(dropped)
			ss.shard.c.shed.Add(dropped)
			trace.Emit(trace.KindShed, s.traceNodeName(), "write_failed", -1, dropped)
		}
		for i := 0; i < n; i++ {
			batch[i].release()
			batch[i] = nil
		}
		if err != nil {
			return
		}
	}
}

// writeFrames flushes frs in one vectored write (TCP connections use a
// single writev per attempt) under the session's write deadline, resuming
// partial writes. A flush that times out gets WriteRetries extra deadline
// windows (retry-then-drop); any other error, or exhausting the budget,
// fails the session. It returns how many frames were fully written and
// their byte count — on failure the remainder is the caller's to shed.
func (s *Server) writeFrames(ss *session, frs []*frameRef, scratch *net.Buffers, preludes []byte) (int, int64, error) {
	bufs := (*scratch)[:0]
	total := 0
	preludeLen := 0
	if s.traced {
		preludeLen = recordPreludeLen
	}
	for i, fr := range frs {
		if preludeLen > 0 {
			p := preludes[i*recordPreludeLen : (i+1)*recordPreludeLen]
			putRecordPrelude(p, trace.SpanID(fr.round))
			bufs = append(bufs, p)
		}
		bufs = append(bufs, fr.buf)
		total += preludeLen + len(fr.buf)
	}
	written := 0
	retries := s.cfg.WriteRetries
	for written < total {
		if s.cfg.WriteDeadline > 0 {
			ss.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteDeadline))
		}
		n, err := bufs.WriteTo(ss.conn)
		written += int(n)
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && retries > 0 {
			retries--
			continue
		}
		sentN, sentBytes, partial := framesDone(frs, written, preludeLen)
		if partial {
			err = fmt.Errorf("%w: %d of %d bytes: %v", ErrShortWrite, written, total, err)
		}
		return sentN, sentBytes, err
	}
	return len(frs), int64(total), nil
}

// framesDone maps a written byte count onto the frame sequence: how many
// frames the bytes fully cover, their summed wire length (preludes included),
// and whether the count ends inside a frame.
func framesDone(frs []*frameRef, written, preludeLen int) (int, int64, bool) {
	var k int
	var bytes int64
	for _, fr := range frs {
		l := preludeLen + len(fr.buf)
		if written < l {
			return k, bytes, written > 0
		}
		k++
		bytes += int64(l)
		written -= l
	}
	return k, bytes, false
}

func (sh *pumpShard) signalWake() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

func (sh *pumpShard) signalConsumed() {
	select {
	case sh.consumed <- struct{}{}:
	default:
	}
}

func (s *Server) startPumps() {
	s.pumpOnce.Do(func() {
		for _, sh := range s.shards {
			s.pumpWG.Add(1)
			go sh.run()
		}
		if s.cfg.Brownout.Interval > 0 {
			s.pumpWG.Add(1)
			go s.runBrownout()
		}
	})
}

// effectivePace is the pump-round floor after brownout: the configured Pace,
// raised to the brownout PacedDelay from BrownoutPaced up.
func (s *Server) effectivePace() time.Duration {
	pace := s.cfg.Pace
	if BrownoutRung(s.brownoutRung.Load()) >= BrownoutPaced && s.cfg.Brownout.PacedDelay > pace {
		pace = s.cfg.Brownout.PacedDelay
	}
	return pace
}

// run is one shard's record loop: it pulls a batch from the shard's source
// for each segment in turn and fans the framed records out to every shard
// session's queue without ever blocking on a client. When no session can
// take a block (every queue full) the pump parks briefly and the wait is
// charged to the encode-stall counters; when no session exists at all it
// sleeps until one arrives, with nothing charged. A dry source (a relay
// whose recoders have no rank yet) parks the pump briefly without charging
// a stall.
func (sh *pumpShard) run() {
	s := sh.s
	defer s.pumpWG.Done()
	segments := sh.src.Info().Segments
	segIdx := sh.id % segments // stagger shards across segments
	live := make([]*session, 0, 16)
	frames := make([]*frameRef, 0, s.cfg.EncodeBatch)
	for {
		select {
		case <-s.stop:
			return
		default:
		}

		sh.mu.Lock()
		live = live[:0]
		for ss := range sh.sessions {
			live = append(live, ss)
		}
		sh.mu.Unlock()
		if len(live) == 0 {
			select {
			case <-sh.wake:
			case <-s.stop:
				return
			}
			continue
		}

		// A traced pump opens a round span per non-empty batch: its ID is the
		// wire prelude of every record it produced and the parent of the
		// encode and queue-offer child spans. Spans of dry rounds are simply
		// never ended, so idle parking does not flood the ring.
		seg := segIdx
		var round, enc trace.Span
		if s.traced {
			round = trace.Begin(s.cfg.TraceNode, "round", s.traceID, s.rootSpan.ID(), int32(seg))
			enc = trace.Begin(s.cfg.TraceNode, "encode", s.traceID, round.ID(), int32(seg))
		}
		recs := sh.src.Records(seg, s.cfg.EncodeBatch)
		segIdx = (segIdx + 1) % segments
		if len(recs) == 0 {
			// Nothing to say for this segment yet. Park briefly — this is
			// source starvation, not client backpressure, so no stall is
			// charged.
			select {
			case <-s.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			continue
		}
		enc.End()
		s.counters.AddEncoded(int64(len(recs)))
		sh.c.encoded.Add(int64(len(recs)))

		frames = frames[:0]
		for _, rec := range recs {
			fr := s.frames.wrap(rec, sh.pooled)
			fr.round = uint64(round.ID())
			fr.seg = int32(seg)
			frames = append(frames, fr)
		}
		var offer trace.Span
		if s.traced {
			offer = trace.Begin(s.cfg.TraceNode, "queue_offer", s.traceID, round.ID(), int32(seg))
		}
		delivered := sh.fanOut(frames, live)
		offer.End()
		round.End()
		// Drop the pump's own reference; queued copies keep the frames
		// alive until their writers flush or shed them.
		for i := range frames {
			frames[i].release()
			frames[i] = nil
		}
		if !delivered {
			// Backpressure: every queue is full. Park until a writer drains
			// a record (or briefly, as a backstop) and charge the wait as
			// encoder stall time.
			t0 := time.Now()
			stopped := false
			select {
			case <-sh.consumed:
			case <-s.stop:
				stopped = true
			case <-time.After(2 * time.Millisecond):
			}
			d := time.Since(t0)
			s.counters.AddEncodeStall(d)
			sh.c.addStall(d)
			if stopped {
				return
			}
		}
		if pace := s.effectivePace(); pace > 0 {
			select {
			case <-s.stop:
				return
			case <-time.After(pace):
			}
		}
	}
}

// fanOut offers the round's frames to every live session and reports whether
// any session accepted at least one record. FanoutAmortized takes one bulk
// offer (one lock, one batched counter update) per session per round;
// FanoutPerRecord replays the original per-record cost profile.
func (sh *pumpShard) fanOut(frames []*frameRef, live []*session) bool {
	s := sh.s
	delivered := false
	if s.cfg.Fanout == FanoutPerRecord {
		one := make([]*frameRef, 1)
		var shedTotal int64
		for _, fr := range frames {
			one[0] = fr
			osp := stageQueueOffer.Start()
			for _, ss := range live {
				ss.offered.Add(1)
				s.counters.AddOffered(1)
				sh.c.offered.Add(1)
				if ss.q.offerBatch(one) == 1 {
					delivered = true
				} else {
					ss.shed.Add(1)
					s.counters.AddShed(1)
					sh.c.shed.Add(1)
					shedTotal++
				}
			}
			osp.End()
		}
		if shedTotal > 0 {
			trace.Emit(trace.KindShed, s.traceNodeName(), "queue_full", -1, shedTotal)
		}
		return delivered
	}
	nf := int64(len(frames))
	var roundOffered, roundShed int64
	osp := stageQueueOffer.Start()
	for _, ss := range live {
		acc := int64(ss.q.offerBatch(frames))
		ss.offered.Add(nf)
		if acc < nf {
			ss.shed.Add(nf - acc)
			roundShed += nf - acc
		}
		if acc > 0 {
			delivered = true
		}
		roundOffered += nf
	}
	osp.End()
	s.counters.AddOffered(roundOffered)
	s.counters.AddShed(roundShed)
	sh.c.offered.Add(roundOffered)
	sh.c.shed.Add(roundShed)
	if roundShed > 0 {
		trace.Emit(trace.KindShed, s.traceNodeName(), "queue_full", -1, roundShed)
	}
	return delivered
}

// frameRecord marshals a coded block with its length prefix.
func frameRecord(b *rlnc.CodedBlock, alloc func(int) []byte) ([]byte, error) {
	body, err := b.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return frameBody(body, alloc), nil
}

// frameSystematicRecord marshals a coded block in the systematic session's
// per-block encoding: the compact XNC2 GF(2) format for binary blocks
// (systematic sweep and XOR repair), XNC1 for the dense tail.
func frameSystematicRecord(b *rlnc.CodedBlock, alloc func(int) []byte) ([]byte, error) {
	var body []byte
	var err error
	if b.IsBinary() {
		body, err = b.MarshalBinaryXor()
	} else {
		body, err = b.MarshalBinary()
	}
	if err != nil {
		return nil, err
	}
	return frameBody(body, alloc), nil
}

// frameBody prefixes body with its length, writing into a buffer from alloc
// (pooled for the server's own sources, plain make elsewhere).
func frameBody(body []byte, alloc func(int) []byte) []byte {
	if alloc == nil {
		alloc = func(n int) []byte { return make([]byte, n) }
	}
	rec := alloc(4 + len(body))
	binary.BigEndian.PutUint32(rec, uint32(len(body)))
	copy(rec[4:], body)
	return rec
}

// Snapshot copies the server's aggregate counters, each shard's slice of
// them, and the state of every live session.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	snap := Snapshot{
		Version:             SnapshotVersion,
		Mode:                s.Mode(),
		SessionsTotal:       s.sessionsTotal.Load(),
		SessionsRejected:    s.sessionsRejected.Load(),
		SessionSeconds:      time.Duration(s.sessionSecs.Load()).Seconds(),
		AdmissionBusy:       s.admissionBusy.Load(),
		AdmissionRedirected: s.admissionRedirected.Load(),
		BrownoutRung:        int(s.brownoutRung.Load()),
		BrownoutTransitions: s.brownoutTransitions.Load(),
		Draining:            draining,
		CounterView:         s.counters.View(),
	}
	snap.Shards = make([]ShardSnapshot, len(s.shards))
	snap.PerSession = make([]SessionSnapshot, 0, 16)
	for i, sh := range s.shards {
		sh.mu.Lock()
		snap.Shards[i] = ShardSnapshot{
			Shard:       sh.id,
			Sessions:    len(sh.sessions),
			CounterView: sh.c.view(),
		}
		for ss := range sh.sessions {
			snap.PerSession = append(snap.PerSession, SessionSnapshot{
				ID:       ss.id,
				Shard:    sh.id,
				Addr:     remoteAddr(ss.conn),
				QueueLen: ss.q.len(),
				QueueCap: ss.q.cap(),
				Offered:  ss.offered.Load(),
				Sent:     ss.sent.Load(),
				Shed:     ss.shed.Load(),
				Bytes:    ss.bytes.Load(),
				Duration: time.Since(ss.started),
			})
		}
		sh.mu.Unlock()
		snap.Sessions += snap.Shards[i].Sessions
	}
	return snap
}

func remoteAddr(c net.Conn) string {
	if a := c.RemoteAddr(); a != nil {
		return a.String()
	}
	return ""
}

// Shutdown stops accepting, closes the registered listeners and every live
// connection, and waits for the sessions, decision writers, and pumps to
// exit. It is idempotent and safe to race with Serve, Drain, and itself:
// every call blocks until the teardown is complete. For a teardown that lets
// in-flight sessions finish first, use Drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for ss := range sh.sessions {
			ss.conn.Close()
		}
		sh.mu.Unlock()
	}
	s.mu.Unlock()
	if !alreadyClosed {
		close(s.stop)
	}
	// Ensure no pump can start after this point, even if Serve was never
	// called; a started pump set observes s.stop and exits.
	s.pumpOnce.Do(func() {})
	s.pumpWG.Wait()
	s.wg.Wait()
	s.auxWG.Wait()
	if !alreadyClosed {
		s.rootSpan.End()
	}
}

// closeSessions force-closes every live session connection without marking
// the server closed — the drain-deadline hammer.
func (s *Server) closeSessions() {
	s.mu.Lock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		for ss := range sh.sessions {
			ss.conn.Close()
		}
		sh.mu.Unlock()
	}
	s.mu.Unlock()
}

// Drain gracefully retires the server: it keeps accepting connections but
// answers every new handshake with REDIRECT to redirectAddr (BUSY when
// redirectAddr is empty), lets in-flight sessions run to completion — an
// RLNC client hangs up on its own at full rank — and then shuts down. If ctx
// ends first the remaining sessions are force-closed, the shutdown still
// completes, and ctx.Err() is returned; the shed-at-teardown accounting
// keeps the offered == sent + shed ledger exact either way.
//
// Drain is idempotent and safe to race with Shutdown, Serve, and itself: a
// concurrent Drain waits for the first one to finish, and Drain on a
// shut-down server is a no-op.
func (s *Server) Drain(ctx context.Context, redirectAddr string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.draining {
		done := s.drainDone
		s.mu.Unlock()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.draining = true
	s.drainAddr = redirectAddr
	done := make(chan struct{})
	s.drainDone = done
	joined := s.joined
	s.mu.Unlock()
	defer close(done)
	trace.Emit(trace.KindDrain, s.traceNodeName(), redirectAddr, -1, int64(joined))

	// No session wg.Add can happen once draining is set (the admission path
	// rejects under the same mutex), so waiting here cannot race a late Add.
	waited := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(waited)
	}()
	var err error
	select {
	case <-waited:
	case <-ctx.Done():
		err = ctx.Err()
		s.closeSessions()
		<-waited
	}
	s.Shutdown()
	return err
}
