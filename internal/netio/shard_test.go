package netio

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"extremenc/internal/faultnet"
	"extremenc/internal/obs"
	"extremenc/internal/rlnc"
)

// TestShardedServeAccounting pins the sharded serving ledger: with four pump
// shards and eight concurrently pinned sessions, the least-loaded assignment
// must spread sessions evenly, and after teardown the offered == sent + shed
// invariant must hold for every shard individually, with the per-shard
// counters summing exactly to the aggregate.
func TestShardedServeAccounting(t *testing.T) {
	const shards = 4
	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, 2*p.SegmentSize()-17, 55)
	srv, err := NewServer(media, p,
		WithPumpShards(shards),
		WithQueueDepth(16),
		WithWriteDeadline(2*time.Second),
		WithServerSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", srv.Shards(), shards)
	}
	l := startPipeServer(t, srv)

	// Phase 1: pin 2×shards raw sessions open simultaneously and check the
	// spread. Sessions join one at a time and pick the least-loaded shard, so
	// with no departures every shard must hold exactly two.
	const pinned = 2 * shards
	conns := make([]net.Conn, pinned)
	for i := range conns {
		conns[i] = l.Dial()
		hdr := make([]byte, protoHeaderLen)
		if _, err := io.ReadFull(conns[i], hdr); err != nil {
			t.Fatalf("pinned session %d handshake: %v", i, err)
		}
	}
	for deadline := time.Now().Add(5 * time.Second); srv.Snapshot().Sessions < pinned; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d pinned sessions registered", srv.Snapshot().Sessions, pinned)
		}
		time.Sleep(time.Millisecond)
	}
	snap := srv.Snapshot()
	if snap.Version != SnapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, SnapshotVersion)
	}
	if len(snap.Shards) != shards {
		t.Fatalf("snapshot shards = %d, want %d", len(snap.Shards), shards)
	}
	for _, sh := range snap.Shards {
		if sh.Sessions != 2 {
			t.Fatalf("shard %d holds %d sessions, want 2 (least-loaded spread): %+v",
				sh.Shard, sh.Sessions, snap.Shards)
		}
	}
	perShard := map[int]int{}
	for _, ss := range snap.PerSession {
		perShard[ss.Shard]++
	}
	for i := 0; i < shards; i++ {
		if perShard[i] != 2 {
			t.Fatalf("per-session snapshots count %d on shard %d, want 2", perShard[i], i)
		}
	}
	for _, c := range conns {
		c.Close()
	}

	// Phase 2: full concurrent fetches through every shard.
	var wg sync.WaitGroup
	errs := make([]error, pinned)
	for i := 0; i < pinned; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _, err := Fetch(context.Background(), l.Dial())
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				errs[i] = io.ErrUnexpectedEOF
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetcher %d: %v", i, err)
		}
	}

	srv.Shutdown()
	snap = srv.Snapshot()
	checkAccounting(t, snap)
	if snap.SessionsTotal != 2*pinned {
		t.Fatalf("sessions_total = %d, want %d", snap.SessionsTotal, 2*pinned)
	}

	// The ledger holds shard by shard, and the shards sum to the aggregate.
	var sum CounterView
	for _, sh := range snap.Shards {
		if !sh.Consistent() {
			t.Fatalf("shard %d ledger: offered %d != sent %d + shed %d",
				sh.Shard, sh.BlocksOffered, sh.BlocksSent, sh.BlocksShed)
		}
		if sh.BlocksOffered == 0 {
			t.Fatalf("shard %d never offered a block: sessions did not spread", sh.Shard)
		}
		sum.BlocksEncoded += sh.BlocksEncoded
		sum.BlocksOffered += sh.BlocksOffered
		sum.BlocksSent += sh.BlocksSent
		sum.BlocksShed += sh.BlocksShed
		sum.BytesSent += sh.BytesSent
	}
	if sum.BlocksEncoded != snap.BlocksEncoded ||
		sum.BlocksOffered != snap.BlocksOffered ||
		sum.BlocksSent != snap.BlocksSent ||
		sum.BlocksShed != snap.BlocksShed ||
		sum.BytesSent != snap.BytesSent {
		t.Fatalf("shard sums %+v != aggregate %+v", sum, snap.CounterView)
	}
}

// TestFanoutDifferential serves the same media through both fan-out rungs and
// demands byte-identical recovery with an exact ledger from each: the
// amortized rung is an optimization of the hand-off cost, never of the bytes
// or the accounting.
func TestFanoutDifferential(t *testing.T) {
	p := rlnc.Params{BlockCount: 16, BlockSize: 256}
	media := testMedia(t, 3*p.SegmentSize()-41, 56)
	for _, mode := range []FanoutMode{FanoutPerRecord, FanoutAmortized} {
		t.Run(mode.String(), func(t *testing.T) {
			srv, err := NewServer(media, p,
				WithFanout(mode),
				WithServerSeed(5),
				WithWriteDeadline(2*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			l := startPipeServer(t, srv)
			payload, stats, err := Fetch(context.Background(), l.Dial())
			if err != nil {
				t.Fatalf("fetch via %v fan-out: %v (stats %+v)", mode, err, stats)
			}
			if !bytes.Equal(payload, media) {
				t.Fatalf("payload differs via %v fan-out", mode)
			}
			srv.Shutdown()
			checkAccounting(t, srv.Snapshot())
		})
	}
}

// TestSourceServerSharded: a sharded source server over a plain (non-sharded)
// RecordSource serializes it behind a lock and still drives fetchers to a
// byte-identical object with an exact per-shard ledger.
func TestSourceServerSharded(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 2*p.SegmentSize()-3, 57)
	obj, err := rlnc.Split(media, p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewSourceServer(newPoolSource(t, obj, 2*p.BlockCount),
		WithPumpShards(3), WithWriteDeadline(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if srv.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", srv.Shards())
	}
	l := startPipeServer(t, srv)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _, err := Fetch(context.Background(), l.Dial())
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(payload, media) {
				errs[i] = io.ErrUnexpectedEOF
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetcher %d through sharded source server: %v", i, err)
		}
	}
	srv.Shutdown()
	snap := srv.Snapshot()
	checkAccounting(t, snap)
	for _, sh := range snap.Shards {
		if !sh.Consistent() {
			t.Fatalf("shard %d ledger: offered %d != sent %d + shed %d",
				sh.Shard, sh.BlocksOffered, sh.BlocksSent, sh.BlocksShed)
		}
	}
}

// TestChaosFetchSharded re-runs the chaos gate against a four-shard server:
// the same hostile link (corruption, resets, stalls) against the sharded
// pump, with the fetch still completing byte-identical and the per-shard
// ledger balancing exactly after teardown.
func TestChaosFetchSharded(t *testing.T) {
	p := rlnc.Params{BlockCount: 8, BlockSize: 64}
	media := testMedia(t, 4*p.SegmentSize()-13, 97)

	reg := obs.NewRegistry()
	obs.SetSink(reg)
	defer obs.SetSink(nil)

	srv, err := NewServer(media, p, WithPumpShards(4), WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	go srv.Serve(serveCtx, l)
	defer srv.Shutdown()

	dial, ctr := faultnet.Dialer(faultnet.Config{
		Seed:         777,
		CorruptEvery: 1500,
		ResetEvery:   600,
		StallEvery:   2000,
		Stall:        time.Millisecond,
		MaxReadChunk: 512,
	}, func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", l.Addr().String())
	})
	if err := ctr.Register(reg, "faultnet"); err != nil {
		t.Fatal(err)
	}

	f := NewFetcher(dial,
		WithBackoff(time.Millisecond, 10*time.Millisecond),
		WithBackoffSeed(9),
		WithMetrics(reg),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := f.Fetch(ctx)
	if err != nil {
		t.Fatalf("sharded chaos fetch failed: %v (stats %+v, faults %+v)", err, res.Stats, ctr.View())
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload not byte-identical through the chaos link with sharded pumps")
	}
	if res.Stats.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3; faults %+v", res.Stats.Reconnects, ctr.View())
	}
	if res.Stats.ResumedRank == 0 {
		t.Fatal("reconnects carried no rank against the sharded server")
	}

	srv.Shutdown()
	snap := srv.Snapshot()
	checkAccounting(t, snap)
	if len(snap.Shards) != 4 {
		t.Fatalf("snapshot shards = %d, want 4", len(snap.Shards))
	}
	for _, sh := range snap.Shards {
		if !sh.Consistent() {
			t.Fatalf("shard %d ledger after chaos: offered %d != sent %d + shed %d",
				sh.Shard, sh.BlocksOffered, sh.BlocksSent, sh.BlocksShed)
		}
	}
	// The shard count is part of the scraped exposition.
	var sb bytes.Buffer
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range samples {
		if s.Key() == "netio_pump_shards" {
			found = true
			if s.Value != 4 {
				t.Fatalf("netio_pump_shards = %v, want 4", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("netio_pump_shards missing from the exposition")
	}
}
