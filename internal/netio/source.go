package netio

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"

	"extremenc/internal/rlnc"
)

// SessionInfo describes the object a server declares in its session
// handshake: the coding parameters, segment count, reassembled byte length,
// and wire mode. It is the exported face of the wire header — a relay that
// fetches upstream learns the SessionInfo from its fetcher's session hook
// and re-declares the same object (possibly in a different mode) downstream.
type SessionInfo struct {
	Params   rlnc.Params
	Segments int
	Length   int64
	Mode     WireMode
}

// header converts to the wire-protocol form.
func (si SessionInfo) header() sessionHeader {
	return sessionHeader{params: si.Params, segments: si.Segments, length: si.Length, mode: si.Mode}
}

// info converts a parsed wire header to the exported form.
func (h sessionHeader) info() SessionInfo {
	return SessionInfo{Params: h.params, Segments: h.segments, Length: h.length, Mode: h.mode}
}

// Validate rejects a SessionInfo no handshake would accept.
func (si SessionInfo) Validate() error {
	if _, err := (sessionHeaderCodec{}).roundTrip(si.header()); err != nil {
		return err
	}
	return nil
}

// RecordSource produces the framed records a Server's pump fans out. It
// abstracts where coded blocks come from: a media-backed server encodes
// fresh blocks from source segments (NewServer), while a mesh relay emits
// recombinations of blocks it received upstream without ever decoding
// (NewSourceServer). The pump is a single goroutine, so Records is never
// called concurrently by one server; a source shared across servers must
// synchronize internally.
type RecordSource interface {
	// Info returns the session handshake the server declares. It must be
	// constant for the server's lifetime: fetchers treat a changed header
	// across reconnects as fatal.
	Info() SessionInfo

	// Records returns up to batch framed records (length prefix included —
	// use FrameRecord) for segment index seg. Returning fewer, or none, is
	// allowed: a relay that has not yet accumulated rank for seg simply has
	// nothing to say, and the pump backs off briefly instead of treating it
	// as an error.
	Records(seg, batch int) [][]byte
}

// DegradableSource is a RecordSource with a cheaper degraded schedule the
// brownout controller can toggle. Lean semantics are the source's own; the
// contract is only that lean output stays protocol-valid and that SetLean is
// safe to call concurrently with Records (the server calls it from the
// brownout goroutine while the pumps run). The media-backed systematic
// source drops its dense tail and halves its XOR repair rate when lean;
// dense sources have no cheaper schedule and treat SetLean as a no-op.
type DegradableSource interface {
	RecordSource

	// SetLean switches between the full (false) and degraded (true)
	// schedule. Redundant calls are cheap and idempotent.
	SetLean(bool)
}

// ShardedRecordSource is a RecordSource that can split itself into
// independent per-shard sub-sources. A server configured with more than one
// pump shard asks for one sub-source per shard, each called only from that
// shard's pump goroutine; a plain RecordSource is instead shared behind a
// lock, serializing Records across the shards.
type ShardedRecordSource interface {
	RecordSource

	// ShardSource returns the sub-source for shard (0 ≤ shard < shards).
	// Every sub-source must declare the same Info as the parent.
	ShardSource(shard, shards int) RecordSource
}

// lockedSource shares one RecordSource across several pump shards by
// serializing Records; Info stays lock-free (it must be constant anyway).
type lockedSource struct {
	mu  sync.Mutex
	src RecordSource
}

func (l *lockedSource) Info() SessionInfo { return l.src.Info() }

func (l *lockedSource) Records(seg, batch int) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.src.Records(seg, batch)
}

// SetLean forwards the brownout lever to the wrapped source when it has one;
// the Records lock keeps the schedule change ordered against emits.
func (l *lockedSource) SetLean(lean bool) {
	if deg, ok := l.src.(DegradableSource); ok {
		l.mu.Lock()
		defer l.mu.Unlock()
		deg.SetLean(lean)
	}
}

// FrameRecord marshals one coded block as a length-prefixed wire record in
// the given mode's encoding: ModeSystematic frames binary blocks in the
// compact XNC2 format and dense blocks as XNC1; ModeDense frames everything
// as XNC1. This is the framing the Server pumps use internally, exported so
// RecordSource implementations outside this package (mesh relays) produce
// bit-identical records.
func FrameRecord(b *rlnc.CodedBlock, mode WireMode) ([]byte, error) {
	if mode == ModeSystematic {
		return frameSystematicRecord(b, nil)
	}
	return frameRecord(b, nil)
}

// objectSource is the media-backed RecordSource behind NewServer: dense
// batches through the shared parallel encoder, or the systematic sweep →
// XOR repair → dense tail schedule per segment in ModeSystematic. A sharded
// server builds one objectSource per shard, each with its own seed lane.
type objectSource struct {
	obj  *rlnc.Object
	mode WireMode

	// alloc supplies record buffers; the server points it at its frame pool
	// so fan-out frames recycle instead of churning the GC. Nil means plain
	// allocation.
	alloc func(int) []byte

	// Dense path: the shared parallel encoder plus a per-batch seed
	// counter (each pump is single-goroutine, so plain increments suffice).
	penc *rlnc.ParallelEncoder
	seed int64

	// Systematic path: one cycling schedule encoder per segment, plus the
	// brownout lever: lean is flipped by the controller goroutine, observed
	// by the pump, and applied to the encoders lazily (they are not safe to
	// retune from another goroutine). defXor/defTail remember the configured
	// schedule so leaving lean restores it exactly.
	sysEncs     []*rlnc.SystematicEncoder
	lean        atomic.Bool
	leanApplied bool // pump-goroutine local
	defXor      int
	defTail     int
}

func newObjectSource(obj *rlnc.Object, mode WireMode, penc *rlnc.ParallelEncoder, seed int64) *objectSource {
	src := &objectSource{obj: obj, mode: mode, penc: penc, seed: seed}
	if mode == ModeSystematic {
		rng := rand.New(rand.NewSource(seed))
		src.sysEncs = make([]*rlnc.SystematicEncoder, len(obj.Segments))
		for i, seg := range obj.Segments {
			src.sysEncs[i] = rlnc.NewSystematicEncoder(seg, rng)
		}
		src.defXor = src.sysEncs[0].XorRepair()
		src.defTail = src.sysEncs[0].DenseTail()
	}
	return src
}

// SetLean flips the systematic schedule between the configured full cycle and
// a degraded one — half the XOR repair rate (floor 2), no dense tail — that
// trades repair margin for encode CPU under brownout. Safe to call from the
// controller goroutine while the pump runs; a dense-mode source has no
// cheaper schedule and ignores the flip.
func (o *objectSource) SetLean(lean bool) { o.lean.Store(lean) }

// applyLean retunes the segment encoders when the lean flag changed since the
// last pump round. Runs only on the pump goroutine, which is the sole caller
// of the encoders.
func (o *objectSource) applyLean() {
	lean := o.lean.Load()
	if lean == o.leanApplied {
		return
	}
	o.leanApplied = lean
	xor, tail := o.defXor, o.defTail
	if lean {
		xor, tail = max(o.defXor/2, 2), 0
	}
	for _, se := range o.sysEncs {
		se.SetSchedule(xor, tail)
	}
}

func (o *objectSource) Info() SessionInfo {
	return SessionInfo{
		Params:   o.obj.Params,
		Segments: len(o.obj.Segments),
		Length:   int64(o.obj.Length),
		Mode:     o.mode,
	}
}

func (o *objectSource) Records(seg, batch int) [][]byte {
	if o.mode == ModeSystematic {
		// Systematic schedule: the per-segment encoder cycles sweep → XOR
		// repair → dense tail; binary blocks go out in the compact GF(2)
		// encoding. Block is the non-retaining emit — the record is
		// marshaled before the next call reuses its storage.
		o.applyLean()
		se := o.sysEncs[seg]
		recs := make([][]byte, 0, batch)
		for i := 0; i < batch; i++ {
			rec, err := frameSystematicRecord(se.Block(), o.alloc)
			if err != nil {
				continue
			}
			recs = append(recs, rec)
		}
		return recs
	}
	blocks, err := o.penc.Encode(o.obj.Segments[seg], batch, o.seed)
	o.seed++
	if err != nil {
		// Unreachable for a validated object; drop the batch.
		return nil
	}
	recs := make([][]byte, 0, len(blocks))
	for _, blk := range blocks {
		rec, err := frameRecord(blk, o.alloc)
		if err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	return recs
}

// sessionHeaderCodec bounces a header through the wire marshal/parse pair so
// SessionInfo.Validate rejects exactly what a real handshake would.
type sessionHeaderCodec struct{}

func (sessionHeaderCodec) roundTrip(h sessionHeader) (sessionHeader, error) {
	var buf headerBuffer
	if err := writeSessionHeader(&buf, h); err != nil {
		return sessionHeader{}, err
	}
	return readSessionHeader(&buf)
}

// headerBuffer is a minimal in-memory io.ReadWriter for the round trip.
type headerBuffer struct{ b []byte }

func (h *headerBuffer) Write(p []byte) (int, error) { h.b = append(h.b, p...); return len(p), nil }

func (h *headerBuffer) Read(p []byte) (int, error) {
	if len(h.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, h.b)
	h.b = h.b[n:]
	return n, nil
}
