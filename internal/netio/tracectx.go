package netio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"extremenc/internal/obs/trace"
)

// Trace-context record (magic "XNCT"), sent by a server directly after a
// session header whose flags carry hsFlagTrace:
//
//	magic "XNCT" | u8 body length | body | u32 CRC over magic+len+body
//
// The body is a sequence of type-length-value fields (u8 type, u8 length,
// bytes), mirroring the XNCD admission record's CRC discipline while
// staying extensible: unknown field types are skipped, so an old client
// keeps linking spans when a newer server adds context. Known fields:
//
//	1  trace ID  (8 bytes, big endian) — the transfer's end-to-end trace
//	2  root span (8 bytes, big endian) — the sending server's root span
//
// Traced sessions additionally prefix every record with a 12-byte round
// prelude:
//
//	u64 round span ID | u32 CRC over the 8 ID bytes
//
// naming the pump round that encoded the record. The prelude has its own
// CRC so line damage to the causal link is detected exactly like a damaged
// length prefix (framing loss → reconnect) instead of silently attributing
// records to a phantom round.
const (
	traceMagic    = "XNCT"
	traceCtxMax   = 255
	traceFixedLen = 4 + 1 // magic + body length
	traceCRCLen   = 4

	traceFieldTrace    = 1
	traceFieldRootSpan = 2

	// recordPreludeLen is the per-record framing overhead of a traced
	// session: 8 bytes of round span ID plus its CRC.
	recordPreludeLen = 8 + 4
)

// traceContext is the causal identity a server hands its clients: the
// transfer's trace ID and the server's root span, which downstream spans
// reference as their parent.
type traceContext struct {
	trace trace.TraceID
	root  trace.SpanID
}

// appendTraceContext appends the wire form of tc to dst.
func appendTraceContext(dst []byte, tc traceContext) []byte {
	start := len(dst)
	dst = append(dst, traceMagic...)
	body := []byte{
		traceFieldTrace, 8, 0, 0, 0, 0, 0, 0, 0, 0,
		traceFieldRootSpan, 8, 0, 0, 0, 0, 0, 0, 0, 0,
	}
	binary.BigEndian.PutUint64(body[2:], uint64(tc.trace))
	binary.BigEndian.PutUint64(body[12:], uint64(tc.root))
	dst = append(dst, byte(len(body)))
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// readTraceContext reads and validates an XNCT record from r.
func readTraceContext(r io.Reader) (traceContext, error) {
	var fixed [traceFixedLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return traceContext{}, fmt.Errorf("%w: trace context: %v", ErrBadHandshake, err)
	}
	if string(fixed[:4]) != traceMagic {
		return traceContext{}, fmt.Errorf("%w: trace context magic", ErrBadHandshake)
	}
	bodyLen := int(fixed[4])
	rest := make([]byte, bodyLen+traceCRCLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return traceContext{}, fmt.Errorf("%w: trace context: %v", ErrBadHandshake, err)
	}
	crc := crc32.ChecksumIEEE(fixed[:])
	crc = crc32.Update(crc, crc32.IEEETable, rest[:bodyLen])
	if crc != binary.BigEndian.Uint32(rest[bodyLen:]) {
		return traceContext{}, fmt.Errorf("%w: trace context checksum", ErrBadHandshake)
	}
	var tc traceContext
	body := rest[:bodyLen]
	for len(body) > 0 {
		if len(body) < 2 {
			return traceContext{}, fmt.Errorf("%w: trace context field truncated", ErrBadHandshake)
		}
		typ, n := body[0], int(body[1])
		body = body[2:]
		if len(body) < n {
			return traceContext{}, fmt.Errorf("%w: trace context field truncated", ErrBadHandshake)
		}
		val := body[:n]
		body = body[n:]
		switch typ {
		case traceFieldTrace:
			if n != 8 {
				return traceContext{}, fmt.Errorf("%w: trace context field size", ErrBadHandshake)
			}
			tc.trace = trace.TraceID(binary.BigEndian.Uint64(val))
		case traceFieldRootSpan:
			if n != 8 {
				return traceContext{}, fmt.Errorf("%w: trace context field size", ErrBadHandshake)
			}
			tc.root = trace.SpanID(binary.BigEndian.Uint64(val))
		default:
			// Unknown field: skip. Forward compatibility mirrors XNCD.
		}
	}
	return tc, nil
}

// putRecordPrelude fills a 12-byte round prelude for a traced record.
func putRecordPrelude(dst []byte, round trace.SpanID) {
	binary.BigEndian.PutUint64(dst, uint64(round))
	binary.BigEndian.PutUint32(dst[8:], crc32.ChecksumIEEE(dst[:8]))
}

// parseRecordPrelude validates a 12-byte round prelude. A CRC mismatch is
// framing loss: the reader cannot trust the causal link (or its own
// position in the stream) and must resynchronize by reconnecting.
func parseRecordPrelude(buf []byte) (trace.SpanID, error) {
	if crc32.ChecksumIEEE(buf[:8]) != binary.BigEndian.Uint32(buf[8:]) {
		return 0, fmt.Errorf("%w: round prelude checksum", ErrRecordLength)
	}
	return trace.SpanID(binary.BigEndian.Uint64(buf)), nil
}
