package netio

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"testing"

	"extremenc/internal/obs/trace"
	"extremenc/internal/rlnc"
)

// TestTraceContextRoundTrip: the XNCT record carries the trace ID and root
// span through a marshal/parse cycle intact.
func TestTraceContextRoundTrip(t *testing.T) {
	want := traceContext{trace: 0xDEADBEEFCAFE, root: 42}
	rec := appendTraceContext(nil, want)
	got, err := readTraceContext(bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

// buildTraceRecord assembles an XNCT record from a raw TLV body, CRC included
// — the forgery helper for tolerance and rejection tests.
func buildTraceRecord(body []byte) []byte {
	rec := append([]byte(traceMagic), byte(len(body)))
	rec = append(rec, body...)
	return binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
}

// TestTraceContextSkipsUnknownFields: a newer server adding TLV fields must
// not break an old client — unknown types are skipped, known ones still land.
func TestTraceContextSkipsUnknownFields(t *testing.T) {
	body := []byte{
		9, 3, 0xAA, 0xBB, 0xCC, // unknown type 9: skipped
		traceFieldTrace, 8, 0, 0, 0, 0, 0, 0, 0, 7,
		250, 0, // unknown zero-length type: skipped
		traceFieldRootSpan, 8, 0, 0, 0, 0, 0, 0, 0, 9,
	}
	got, err := readTraceContext(bytes.NewReader(buildTraceRecord(body)))
	if err != nil {
		t.Fatal(err)
	}
	if got.trace != 7 || got.root != 9 {
		t.Fatalf("tolerant parse: %+v", got)
	}
}

// TestTraceContextRejectsDamage: CRC flips, magic damage, truncated TLVs,
// and wrong-size known fields are all ErrBadHandshake.
func TestTraceContextRejectsDamage(t *testing.T) {
	good := appendTraceContext(nil, traceContext{trace: 1, root: 2})

	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := readTraceContext(bytes.NewReader(flipped)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad CRC: %v", err)
	}

	badMagic := bytes.Clone(good)
	badMagic[0] = 'Y'
	if _, err := readTraceContext(bytes.NewReader(badMagic)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("bad magic: %v", err)
	}

	if _, err := readTraceContext(bytes.NewReader(good[:7])); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("truncated: %v", err)
	}

	// A known field with the wrong size is a framing bug, not tolerable.
	wrongSize := buildTraceRecord([]byte{traceFieldTrace, 4, 0, 0, 0, 7})
	if _, err := readTraceContext(bytes.NewReader(wrongSize)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("wrong field size: %v", err)
	}

	// A TLV whose declared length overruns the body.
	overrun := buildTraceRecord([]byte{traceFieldTrace, 200, 1, 2})
	if _, err := readTraceContext(bytes.NewReader(overrun)); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("overrun field: %v", err)
	}
}

// TestRecordPreludeRoundTrip: the per-record round prelude survives a cycle
// and any single corrupted byte is detected as framing loss.
func TestRecordPreludeRoundTrip(t *testing.T) {
	var buf [recordPreludeLen]byte
	putRecordPrelude(buf[:], 0x0123456789ABCDEF)
	got, err := parseRecordPrelude(buf[:])
	if err != nil || got != 0x0123456789ABCDEF {
		t.Fatalf("round trip: %v %v", got, err)
	}
	for i := 0; i < recordPreludeLen; i++ {
		dam := buf
		dam[i] ^= 0x40
		if _, err := parseRecordPrelude(dam[:]); !errors.Is(err, ErrRecordLength) {
			t.Fatalf("byte %d corrupted: err = %v, want ErrRecordLength", i, err)
		}
	}
}

// TestUnknownHeaderFlagsRejected: a header declaring a feature bit this
// implementation does not know must be rejected — the feature may change
// record framing, so parsing on is stream corruption.
func TestUnknownHeaderFlagsRejected(t *testing.T) {
	h := sessionHeader{params: rlnc.Params{BlockCount: 4, BlockSize: 64}, segments: 1, length: 100}
	var buf bytes.Buffer
	if err := writeSessionHeaderFlags(&buf, h, hsFlagTrace|1<<9); err != nil {
		t.Fatal(err)
	}
	if _, err := readSessionHeader(&buf); !errors.Is(err, ErrBadHandshake) {
		t.Fatalf("unknown flag: %v, want ErrBadHandshake", err)
	}
}

// TestTracedSessionEndToEnd is the causal-linkage test: a traced server and
// a traced fetcher over an in-memory pipe must produce a span dump in which
// every record's absorb span parents under a real pump-round span — zero
// orphans — and the fetcher inherits the server's trace context.
func TestTracedSessionEndToEnd(t *testing.T) {
	trace.Enable(1 << 14)
	defer trace.Disable()

	p := rlnc.Params{BlockCount: 8, BlockSize: 256}
	media := testMedia(t, 2*p.SegmentSize(), 7)
	srv, err := NewServer(media, p, WithServerTrace("origin"))
	if err != nil {
		t.Fatal(err)
	}
	if !srv.traced || srv.traceID == 0 {
		t.Fatalf("server not traced: traced=%v id=%d", srv.traced, srv.traceID)
	}
	l := startPipeServer(t, srv)

	f := NewFetcher(func(context.Context) (net.Conn, error) { return l.Dial(), nil },
		WithFetchTrace("leaf"), WithMaxAttempts(1))
	res, err := f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, media) {
		t.Fatal("payload differs")
	}

	tr, root, ok := f.TraceContext()
	if !ok || tr != srv.traceID || root == 0 {
		t.Fatalf("inherited context: ok=%v trace=%d root=%d (server %d)", ok, tr, root, srv.traceID)
	}
	if f.LastRoundSpan() == 0 {
		t.Fatal("no round prelude observed")
	}

	srv.Shutdown() // ends the root span so the dump holds the full tree
	asm := trace.Assemble(trace.Dump())
	if asm.Orphans != 0 {
		t.Fatalf("%d orphan spans", asm.Orphans)
	}
	if asm.Spans == 0 || len(asm.Generations) == 0 {
		t.Fatalf("no spans assembled: %+v", asm)
	}
	for _, stage := range []string{"encode", "absorb"} {
		found := false
		for _, g := range asm.Generations {
			if g.StageTotal(stage) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no generation carries stage %q", stage)
		}
	}
}

// TestRawClientTracedSession: the capacity-measurement client consumes a
// traced stream (prelude per record) without miscounting framing.
func TestRawClientTracedSession(t *testing.T) {
	trace.Enable(1 << 12)
	defer trace.Disable()

	p := rlnc.Params{BlockCount: 4, BlockSize: 128}
	media := testMedia(t, p.SegmentSize(), 11)
	srv, err := NewServer(media, p, WithServerTrace("origin"))
	if err != nil {
		t.Fatal(err)
	}
	l := startPipeServer(t, srv)

	rc, err := NewRawClient(l.Dial())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if !rc.traced {
		t.Fatal("raw client did not negotiate tracing")
	}
	want := wireSize(p) + 4 + recordPreludeLen
	for i := 0; i < 8; i++ {
		n, err := rc.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if n != want {
			t.Fatalf("record %d: %d wire bytes, want %d", i, n, want)
		}
	}
}
