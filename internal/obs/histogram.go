package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed log-scale (powers of two) duration buckets.
// Bucket i (i < histBuckets) holds observations v with
//
//	upperBound(i-1) < v ≤ upperBound(i),   upperBound(i) = 2^(histMinPow+i) ns
//
// and bucket 0 additionally absorbs everything ≤ 2^histMinPow ns. The last
// bucket (index histBuckets) is the +Inf overflow. The span covers 256 ns to
// ~2.3 minutes before overflowing — sub-microsecond kernel dispatches through
// multi-second reconnect backoffs — with a worst-case quantile error of one
// octave (the reported quantile is the bucket's upper bound, at most 2× the
// true sample quantile and never below it).
const (
	histMinPow  = 8  // first upper bound: 2^8 ns = 256 ns
	histBuckets = 29 // finite buckets: 2^8 .. 2^36 ns (~68.7 s)
)

// bucketIndex returns the bucket for a duration of ns nanoseconds.
func bucketIndex(ns int64) int {
	if ns <= 1<<histMinPow {
		return 0
	}
	// Smallest i with ns <= 2^(histMinPow+i): for 2^(m-1) < ns <= 2^m the
	// high bit of ns-1 is at position m-1, so Len64(ns-1) == m.
	i := bits.Len64(uint64(ns-1)) - histMinPow
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// bucketBound returns upperBound(i) in nanoseconds; the overflow bucket has
// no finite bound and reports -1.
func bucketBound(i int) int64 {
	if i >= histBuckets {
		return -1
	}
	return 1 << (histMinPow + i)
}

// Histogram is a lock-free fixed-bucket log-scale latency histogram. The
// zero value is ready to use. Observe is a handful of atomic adds plus one
// CAS loop for the max; concurrent Observe/View are safe, and a View taken
// mid-observation can be off by the observations in flight (counts, sum, and
// max are each monotonic but not mutually atomic).
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64

	// Exemplar capture (off unless EnableExemplars was called): exQ holds
	// math.Float64bits of the quantile threshold, exThresh the cached bucket
	// index of that quantile (recomputed every exemplarRecompute traced
	// observations), ex the latest outlier. All hot-path reads are single
	// atomic loads so plain Observe stays untouched.
	exQ      atomic.Uint64
	exThresh atomic.Int32
	exSeen   atomic.Int64
	ex       atomic.Pointer[Exemplar]
}

// Exemplar links one outlier observation to the trace and span that
// produced it, so a histogram's p99 tail can be attributed to a concrete
// causal path in a flight-recorder dump. IDs are plain uint64s (the obs
// package stays independent of obs/trace).
type Exemplar struct {
	TraceID uint64
	SpanID  uint64
	Value   time.Duration
	When    time.Time
}

// exemplarRecompute is how many traced observations pass between threshold
// bucket refreshes. The threshold starts at bucket 0, so the first traced
// observation is always captured; it then tightens toward the configured
// quantile as counts accumulate.
const exemplarRecompute = 64

// EnableExemplars turns on exemplar capture for observations at or above
// the q-quantile (clamped to [0, 1]). Only ObserveTraced observations with
// a nonzero trace ID are candidates.
func (h *Histogram) EnableExemplars(q float64) {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.exQ.Store(math.Float64bits(q) | 1) // |1 so q=0 still reads as enabled
}

// Exemplar returns the latest captured outlier, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	e := h.ex.Load()
	if e == nil {
		return Exemplar{}, false
	}
	return *e, true
}

// ObserveTraced records one duration exactly like Observe and, when
// exemplar capture is enabled and the observation lands at or above the
// cached threshold bucket, publishes it as the histogram's exemplar.
func (h *Histogram) ObserveTraced(d time.Duration, traceID, spanID uint64) {
	h.Observe(d)
	qb := h.exQ.Load()
	if qb == 0 || traceID == 0 {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	if int32(bucketIndex(ns)) >= h.exThresh.Load() {
		h.ex.Store(&Exemplar{TraceID: traceID, SpanID: spanID, Value: d, When: time.Now()})
	}
	if h.exSeen.Add(1)%exemplarRecompute == 0 {
		h.refreshExemplarThreshold(math.Float64frombits(qb &^ 1))
	}
}

// refreshExemplarThreshold recomputes the bucket holding the q-quantile
// from the live counts and caches it for the capture fast path.
func (h *Histogram) refreshExemplarThreshold(q float64) {
	var total int64
	var buckets [histBuckets + 1]int64
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	if total == 0 {
		return
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			h.exThresh.Store(int32(i))
			return
		}
	}
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Merge adds every observation of o into h. The result is equivalent (bucket
// by bucket, and in count/sum/max) to h having observed both streams.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNs.Add(o.sumNs.Load())
	om := o.maxNs.Load()
	for {
		cur := h.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			return
		}
	}
}

// HistogramView is a point-in-time copy of a Histogram with its headline
// quantiles extracted.
type HistogramView struct {
	Count int64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	// Buckets[i] is the observation count of bucket i (not cumulative);
	// BucketBounds[i] is its upper bound, with the final entry the +Inf
	// overflow reported as -1.
	Buckets      [histBuckets + 1]int64
	BucketBounds [histBuckets + 1]time.Duration
}

// View copies the histogram and extracts p50/p95/p99/max.
func (h *Histogram) View() HistogramView {
	var v HistogramView
	for i := range h.counts {
		v.Buckets[i] = h.counts[i].Load()
		v.BucketBounds[i] = time.Duration(bucketBound(i))
	}
	v.Count = h.count.Load()
	v.Sum = time.Duration(h.sumNs.Load())
	v.Max = time.Duration(h.maxNs.Load())
	v.P50 = v.quantile(0.50)
	v.P95 = v.quantile(0.95)
	v.P99 = v.quantile(0.99)
	return v
}

// Quantile returns the q-quantile (q ∈ [0, 1]) of the view's observations:
// the upper bound of the bucket holding the ⌈q·count⌉-th smallest
// observation, which is ≥ the true sample quantile and < 2× it. The overflow
// bucket reports the observed max. Zero observations report zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	v := h.View()
	return v.quantile(q)
}

// Quantile returns the q-quantile of the view's observations under the same
// bucket-upper-bound semantics as Histogram.Quantile. Exposed on the view so
// windowed measurements (a Sub of two snapshots) can extract quantiles from
// the delta.
func (v *HistogramView) Quantile(q float64) time.Duration {
	return v.quantile(q)
}

// Sub returns the view of the observations recorded between prev and v, v
// and prev being two snapshots of the same histogram with prev taken first:
// bucket-wise and count/sum differences, quantiles recomputed from the
// differenced buckets. Max cannot be windowed from snapshots and reports the
// later view's running max. Mid-observation skew (count ahead of bucket
// adds) can leave individual deltas off by the observations in flight;
// negative differences clamp to zero.
func (v HistogramView) Sub(prev HistogramView) HistogramView {
	var d HistogramView
	d.BucketBounds = v.BucketBounds
	for i := range v.Buckets {
		if n := v.Buckets[i] - prev.Buckets[i]; n > 0 {
			d.Buckets[i] = n
		}
	}
	if d.Count = v.Count - prev.Count; d.Count < 0 {
		d.Count = 0
	}
	if d.Sum = v.Sum - prev.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	d.Max = v.Max
	d.P50 = d.quantile(0.50)
	d.P95 = d.quantile(0.95)
	d.P99 = d.quantile(0.99)
	return d
}

func (v *HistogramView) quantile(q float64) time.Duration {
	// Quantiles come from the bucket totals, not v.Count: a concurrent View
	// can catch count ahead of the bucket adds, and the rank must stay
	// consistent with the buckets actually copied.
	var total int64
	for _, n := range v.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range v.Buckets {
		cum += n
		if cum >= rank {
			if i >= histBuckets {
				return v.Max
			}
			return time.Duration(bucketBound(i))
		}
	}
	return v.Max
}
