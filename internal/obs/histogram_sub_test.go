package obs

import (
	"sync"
	"testing"
	"time"
)

// TestSubEmptyWindow covers ncload's windowed-quantile path when nothing
// was observed between the two snapshots.
func TestSubEmptyWindow(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(10 * time.Millisecond)
	v1 := h.View()
	v2 := h.View()
	d := v2.Sub(v1)
	if d.Count != 0 || d.Sum != 0 {
		t.Fatalf("empty window delta: count=%d sum=%v, want zeros", d.Count, d.Sum)
	}
	for i, n := range d.Buckets {
		if n != 0 {
			t.Fatalf("bucket %d delta %d, want 0", i, n)
		}
	}
	if d.P50 != 0 || d.P99 != 0 {
		t.Fatalf("empty window quantiles p50=%v p99=%v, want zeros", d.P50, d.P99)
	}
	// Max is the later view's running max by contract.
	if d.Max != v2.Max {
		t.Fatalf("Max = %v, want running max %v", d.Max, v2.Max)
	}
}

// TestSubIdenticalSnapshots subtracts a snapshot from itself.
func TestSubIdenticalSnapshots(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	v := h.View()
	d := v.Sub(v)
	if d.Count != 0 || d.Sum != 0 || d.P50 != 0 {
		t.Fatalf("self-subtraction not zero: %+v", d)
	}
}

// TestSubWindowQuantiles sanity-checks that a window's quantiles reflect
// only the observations inside the window.
func TestSubWindowQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Observe(time.Microsecond) // old fast observations
	}
	v1 := h.View()
	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Millisecond) // slow window
	}
	d := h.View().Sub(v1)
	if d.Count != 50 {
		t.Fatalf("window count %d, want 50", d.Count)
	}
	if d.P50 < 50*time.Millisecond {
		t.Fatalf("window p50 %v contaminated by pre-window samples", d.P50)
	}
}

// TestSubNeverNegativeUnderRace hammers Observe from writers while the main
// goroutine takes back-to-back snapshots: no delta may ever go negative,
// even when a snapshot lands mid-Observe (count ahead of bucket adds). Run
// with -race this also guards the snapshot path itself.
func TestSubNeverNegativeUnderRace(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * 100 * time.Nanosecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	prev := h.View()
	for time.Now().Before(deadline) {
		cur := h.View()
		d := cur.Sub(prev)
		if d.Count < 0 || d.Sum < 0 {
			t.Fatalf("negative aggregate delta: count=%d sum=%v", d.Count, d.Sum)
		}
		for i, n := range d.Buckets {
			if n < 0 {
				t.Fatalf("negative bucket delta at %d: %d", i, n)
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}

func TestExemplarCapture(t *testing.T) {
	var h Histogram
	if _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram must have no exemplar")
	}
	// Capture disabled: traced observations record but never capture.
	h.ObserveTraced(time.Millisecond, 7, 8)
	if _, ok := h.Exemplar(); ok {
		t.Fatal("exemplar captured while disabled")
	}
	h.EnableExemplars(0.99)
	// Zero trace IDs are never candidates.
	h.ObserveTraced(time.Second, 0, 9)
	if _, ok := h.Exemplar(); ok {
		t.Fatal("exemplar captured for zero trace ID")
	}
	// The threshold starts at bucket 0, so the first traced observation is
	// always captured.
	h.ObserveTraced(2*time.Millisecond, 11, 12)
	ex, ok := h.Exemplar()
	if !ok {
		t.Fatal("no exemplar after traced observation")
	}
	if ex.TraceID != 11 || ex.SpanID != 12 || ex.Value != 2*time.Millisecond {
		t.Fatalf("exemplar = %+v", ex)
	}
}

// TestExemplarPrefersTail floods the histogram with fast observations and a
// few slow outliers: once the threshold refreshes, only tail observations
// replace the exemplar.
func TestExemplarPrefersTail(t *testing.T) {
	var h Histogram
	h.EnableExemplars(0.99)
	// 98% fast observations with a 2% slow tail: the refreshed p99 threshold
	// bucket lands in the tail, so fast observations stop qualifying.
	for i := 0; i < 1000; i++ {
		d := time.Microsecond
		if i%50 == 0 {
			d = 100 * time.Millisecond
		}
		h.ObserveTraced(d, 1, uint64(i+1))
	}
	// Threshold has been refreshed from the flood; a fast observation must
	// no longer displace the exemplar once a slow one lands.
	h.ObserveTraced(time.Second, 42, 4242)
	h.ObserveTraced(time.Microsecond, 2, 2)
	ex, ok := h.Exemplar()
	if !ok {
		t.Fatal("no exemplar captured")
	}
	if ex.TraceID != 42 || ex.SpanID != 4242 {
		t.Fatalf("tail exemplar displaced by fast observation: %+v", ex)
	}
}

func TestObserveTracedMatchesObserve(t *testing.T) {
	var a, b Histogram
	b.EnableExemplars(0.5)
	for i := 0; i < 100; i++ {
		d := time.Duration(i) * time.Millisecond
		a.Observe(d)
		b.ObserveTraced(d, uint64(i+1), uint64(i+1))
	}
	va, vb := a.View(), b.View()
	if va.Count != vb.Count || va.Sum != vb.Sum || va.Buckets != vb.Buckets {
		t.Fatal("ObserveTraced diverged from Observe on the histogram itself")
	}
}
