package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the exact bucket edges: every power-of-two
// boundary value lands in the lower bucket, one nanosecond more in the next.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {255, 0}, {256, 0}, // ≤ 2^8 → bucket 0
		{257, 1}, {511, 1}, {512, 1}, // (2^8, 2^9] → bucket 1
		{513, 2}, {1024, 2},
		{1 << 20, 12}, {1<<20 + 1, 13},
		{1 << (histMinPow + histBuckets - 1), histBuckets - 1}, // last finite bound
		{1<<(histMinPow+histBuckets-1) + 1, histBuckets},       // first overflow value
		{time.Hour.Nanoseconds(), histBuckets},                 // deep overflow
		{1 << 62, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every finite bucket's recorded bound must be exactly its upper edge.
	for i := 0; i < histBuckets; i++ {
		b := bucketBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %d of bucket %d maps to bucket %d", b, i, got)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bound+1 %d maps to bucket %d, want %d", b+1, got, i+1)
		}
	}
	if bucketBound(histBuckets) != -1 {
		t.Errorf("overflow bucket bound = %d, want -1", bucketBound(histBuckets))
	}
}

// TestHistogramQuantilesAgainstSort drives random samples through the
// histogram and checks every extracted quantile against a reference sort:
// the histogram answer must be ≥ the true sample quantile and < 2× it (one
// log-scale bucket of error), with the max exact.
func TestHistogramQuantilesAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4000)
		samples := make([]int64, n)
		var h Histogram
		for i := range samples {
			// Log-uniform over ~7 decades, the histogram's working range.
			ns := int64(1) << rng.Intn(40)
			ns += rng.Int63n(ns)
			samples[i] = ns
			h.Observe(time.Duration(ns))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		v := h.View()
		if v.Count != int64(n) {
			t.Fatalf("trial %d: count = %d, want %d", trial, v.Count, n)
		}
		if v.Max != time.Duration(samples[n-1]) {
			t.Fatalf("trial %d: max = %v, want %v", trial, v.Max, time.Duration(samples[n-1]))
		}
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			rank := int(float64(n) * q)
			if float64(rank) < q*float64(n) {
				rank++
			}
			if rank < 1 {
				rank = 1
			}
			truth := samples[rank-1]
			got := h.Quantile(q).Nanoseconds()
			if got < truth {
				t.Fatalf("trial %d q=%v: histogram %d below true quantile %d", trial, q, got, truth)
			}
			// Overflow-bucket answers are the exact max; bucket 0 collapses
			// everything ≤ its bound; other finite buckets are within one
			// octave.
			if got >= 2*truth && got != v.Max.Nanoseconds() && got != bucketBound(0) {
				t.Fatalf("trial %d q=%v: histogram %d ≥ 2× true quantile %d", trial, q, got, truth)
			}
		}
	}
}

// TestHistogramQuantileEdges pins degenerate quantile inputs.
func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	h.Observe(300 * time.Nanosecond) // bucket 1: (256, 512]
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 512*time.Nanosecond {
			t.Fatalf("single-sample quantile(%v) = %v, want 512ns", q, got)
		}
	}
}

// TestHistogramMerge checks Merge against observing the union directly.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, union Histogram
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(int64(3 * time.Second)))
		if i%3 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	a.Merge(&b)
	got, want := a.View(), union.View()
	if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
		t.Fatalf("merge headline mismatch: got count=%d sum=%v max=%v, want count=%d sum=%v max=%v",
			got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
	}
	if got.Buckets != want.Buckets {
		t.Fatalf("merged buckets differ from union:\n got %v\nwant %v", got.Buckets, want.Buckets)
	}
	if got.P50 != want.P50 || got.P99 != want.P99 {
		t.Fatalf("merged quantiles differ: got p50=%v p99=%v, want p50=%v p99=%v",
			got.P50, got.P99, want.P50, want.P99)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many goroutines;
// under -race this is the data-race gate, and the totals must balance
// exactly afterwards.
func TestHistogramConcurrentObserve(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Concurrent readers must never see torn state that breaks the
		// bucket/total invariant by more than the writes in flight.
		for i := 0; i < 200; i++ {
			_ = h.View()
			_ = h.Quantile(0.99)
		}
	}()
	wg.Wait()
	<-done
	v := h.View()
	if v.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", v.Count, goroutines*perG)
	}
	var sum int64
	for _, n := range v.Buckets {
		sum += n
	}
	if sum != v.Count {
		t.Fatalf("bucket total %d != count %d after quiesce", sum, v.Count)
	}
}

// TestHistogramViewSub pins the windowed-delta semantics: the Sub of two
// snapshots reports exactly the observations recorded between them, with
// quantiles recomputed from the differenced buckets.
func TestHistogramViewSub(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond) // early window: all fast
	}
	before := h.View()
	for i := 0; i < 50; i++ {
		h.Observe(10 * time.Millisecond) // late window: all slow
	}
	after := h.View()

	d := after.Sub(before)
	if d.Count != 50 {
		t.Fatalf("windowed count = %d, want 50", d.Count)
	}
	if d.Sum != 50*10*time.Millisecond {
		t.Fatalf("windowed sum = %v, want 500ms", d.Sum)
	}
	// The whole-histogram p50 is dominated by the 100 fast samples, but the
	// window holds only slow ones: its p50 must bound 10ms from above within
	// one octave.
	if d.P50 < 10*time.Millisecond || d.P50 >= 20*time.Millisecond {
		t.Fatalf("windowed p50 = %v, want in [10ms, 20ms)", d.P50)
	}
	if after.P50 >= 10*time.Millisecond {
		t.Fatalf("whole-histogram p50 = %v, expected fast-dominated", after.P50)
	}
	if got := d.Quantile(0.99); got != d.P99 {
		t.Fatalf("Quantile(0.99) = %v, P99 = %v", got, d.P99)
	}
	// Sub against a fresh zero view is the identity on buckets and count.
	id := after.Sub(HistogramView{})
	if id.Count != after.Count || id.Buckets != after.Buckets {
		t.Fatal("Sub of zero view is not the identity")
	}
}
