package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"extremenc/internal/obs/trace"
)

// Handler wires the observability endpoints onto one mux:
//
//	/metrics        Prometheus text format (the scrape target)
//	/metrics.json   JSON snapshot (Content-Type: application/json)
//	/debug/flight   flight-recorder dump (JSON; empty doc when disabled)
//	/debug/pprof/*  the standard runtime profiles
//
// and a 404 everywhere else. Every response carries
// X-Content-Type-Options: nosniff, and the metrics and flight routes answer
// non-GET methods with 405 (HEAD rides along as usual). extra, if non-nil,
// is merged into the JSON snapshot under its own keys at request time (the
// server snapshot rides along here), sampled per request.
func Handler(reg *Registry, extra func() map[string]any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w) //nolint:errcheck — best-effort scrape
	}))
	mux.HandleFunc("/metrics.json", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := reg.SnapshotJSON()
		if extra != nil {
			for k, v := range extra() {
				body[k] = v
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body) //nolint:errcheck — best-effort metrics
	}))
	mux.HandleFunc("/debug/flight", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(trace.DumpJSON()) //nolint:errcheck — best-effort dump
	}))
	// net/http/pprof registers on DefaultServeMux at import; wiring the
	// handlers explicitly keeps this mux self-contained (and the index page
	// routes the named profiles itself).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	return nosniff(mux)
}

// getOnly rejects non-GET methods with 405 and an Allow header, per RFC
// 9110 — probes and misconfigured pushers get a correct status instead of
// the mux's catch-all 404.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// nosniff stamps X-Content-Type-Options on every response so browsers never
// content-sniff an exposition (or a pprof binary profile) into something
// executable.
func nosniff(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Content-Type-Options", "nosniff")
		next.ServeHTTP(w, r)
	})
}

// LogEvery writes one structured progress line (a single-line JSON object of
// every counter, gauge, and histogram headline in reg, plus a timestamp) to
// w every interval, until ctx ends. It blocks; run it in a goroutine. A
// non-positive interval returns immediately.
func LogEvery(ctx context.Context, w io.Writer, interval time.Duration, reg *Registry) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			writeLogLine(w, now, reg)
		}
	}
}

// writeLogLine emits one compact progress record.
func writeLogLine(w io.Writer, now time.Time, reg *Registry) {
	line := map[string]any{"ts": now.UTC().Format(time.RFC3339Nano)}
	for _, e := range reg.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			line[e.name] = e.counter.Load()
		case kindGauge:
			line[e.name] = e.gauge.Load()
		case kindFunc:
			line[e.name] = e.fn()
		case kindHistogram:
			v := e.hist.View()
			line[e.name] = map[string]any{
				"count": v.Count,
				"p50_s": v.P50.Seconds(),
				"p99_s": v.P99.Seconds(),
				"max_s": v.Max.Seconds(),
			}
		}
	}
	enc := json.NewEncoder(w) // Encode appends the newline
	enc.Encode(line)          //nolint:errcheck — best-effort logging
}
